// Package popana is a library for population analysis of hierarchical
// data structures, reproducing and extending R. C. Nelson and H. Samet,
// "A Population Analysis for Hierarchical Data Structures" (SIGMOD 1987).
//
// Population analysis predicts the steady-state distribution of node
// occupancies in bucketing hierarchical structures — PR quadtrees,
// bintrees, octrees, PMR quadtrees — from nothing but the local
// statistics of one node split. The structure is modeled as populations
// of nodes (one population per occupancy); one insertion transforms a
// node according to a transform matrix T; and the expected distribution
// ē is the stationary point ē·T = a·ē, a positive Perron eigenproblem
// solved in microseconds. From ē follow the engineering quantities:
// average node occupancy, storage utilization, and nodes per stored
// item.
//
// # Quick start
//
//	model, _ := popana.NewPointModel(8, 4) // capacity 8, quadtree fanout
//	e, _ := model.Solve()
//	fmt.Printf("expected occupancy: %.2f\n", e.AverageOccupancy())
//
//	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 8})
//	// ... insert points, then compare:
//	fmt.Printf("observed occupancy: %.2f\n", qt.Census().AverageOccupancy())
//
// The packages under internal/ hold the implementations; this package is
// the supported surface. See DESIGN.md for the system inventory and
// EXPERIMENTS.md for the reproduction of every table and figure in the
// paper.
package popana

import (
	"io"

	"popana/internal/bintree"
	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/excell"
	"popana/internal/exthash"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/gridfile"
	"popana/internal/hypertree"
	"popana/internal/pm"
	"popana/internal/pmr"
	"popana/internal/pointquadtree"
	"popana/internal/quadtree"
	"popana/internal/regionquad"
	"popana/internal/solver"
	"popana/internal/spatialdb"
	"popana/internal/statmodel"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// ---- Geometry ----

// Point is a point in the plane.
type Point = geom.Point

// Rect is an axis-aligned rectangle, half-open on its max edges.
type Rect = geom.Rect

// Segment is a line segment.
type Segment = geom.Segment

// UnitSquare is the canonical [0,1)×[0,1) region.
var UnitSquare = geom.UnitSquare

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// R is shorthand for Rect{minX, minY, maxX, maxY}.
func R(minX, minY, maxX, maxY float64) Rect { return geom.R(minX, minY, maxX, maxY) }

// Seg is shorthand for Segment{a, b}.
func Seg(a, b Point) Segment { return geom.Seg(a, b) }

// ---- The population model (the paper's contribution) ----

// Model is a population model: node types plus the transform matrix
// describing the average result of one insertion.
type Model = core.Model

// Distribution is an expected distribution ē over node occupancies,
// with its normalization scalar a and solver diagnostics.
type Distribution = core.Distribution

// LineModelOptions configures NewLineModel.
type LineModelOptions = core.LineModelOptions

// SolverOptions tunes the numerical solvers.
type SolverOptions = solver.Options

// NewPointModel builds the generalized PR point model for node capacity
// m and fanout F (4 = quadtree, 2 = bintree, 8 = octree, 2^d in
// general). See Section III of the paper.
func NewPointModel(capacity, fanout int) (*Model, error) {
	return core.NewPointModel(capacity, fanout)
}

// NewLineModel builds the PMR quadtree line model for the given
// splitting threshold (the [Nels86b] reconstruction).
func NewLineModel(threshold, fanout int, opts LineModelOptions) (*Model, error) {
	return core.NewLineModel(threshold, fanout, opts)
}

// SimplePRExact returns Section III's closed-form solution for the
// simple PR quadtree: ē = (1/2, 1/2).
func SimplePRExact() Distribution { return core.SimplePRExact() }

// ---- Structures ----

// Quadtree is a PR quadtree mapping distinct points to values.
type Quadtree = quadtree.Tree[any]

// QuadtreeConfig configures a Quadtree.
type QuadtreeConfig = quadtree.Config

// NewQuadtree returns an empty PR quadtree; it panics on invalid
// configuration (use internal validation errors via NewQuadtreeErr for
// recoverable construction).
func NewQuadtree(cfg QuadtreeConfig) *Quadtree {
	return quadtree.MustNew[any](cfg)
}

// NewQuadtreeErr is NewQuadtree returning configuration errors.
func NewQuadtreeErr(cfg QuadtreeConfig) (*Quadtree, error) {
	return quadtree.New[any](cfg)
}

// SyncQuadtree is a PR quadtree safe for concurrent use (RW-locked).
type SyncQuadtree = quadtree.SyncTree[any]

// NewSyncQuadtree returns an empty concurrency-safe PR quadtree.
func NewSyncQuadtree(cfg QuadtreeConfig) (*SyncQuadtree, error) {
	return quadtree.NewSync[any](cfg)
}

// Bintree is a 2D PR bintree (fanout 2).
type Bintree = bintree.Tree

// BintreeConfig configures a Bintree.
type BintreeConfig = bintree.Config

// NewBintree returns an empty bintree.
func NewBintree(cfg BintreeConfig) (*Bintree, error) { return bintree.New(cfg) }

// Hypertree is the 2^d-ary generalization (d=2 quadtree, d=3 octree).
type Hypertree = hypertree.Tree

// HypertreeConfig configures a Hypertree.
type HypertreeConfig = hypertree.Config

// NewHypertree returns an empty hypertree.
func NewHypertree(cfg HypertreeConfig) (*Hypertree, error) { return hypertree.New(cfg) }

// PMRTree is a PMR quadtree for line segments.
type PMRTree = pmr.Tree

// PMRConfig configures a PMRTree.
type PMRConfig = pmr.Config

// NewPMRTree returns an empty PMR quadtree.
func NewPMRTree(cfg PMRConfig) (*PMRTree, error) { return pmr.New(cfg) }

// PM3Tree is a PM3 quadtree for polygonal subdivisions (vertex-rule
// splitting: at most one distinct vertex per block).
type PM3Tree = pm.Tree

// PM3Config configures a PM3Tree.
type PM3Config = pm.Config

// NewPM3Tree returns an empty PM3 quadtree.
func NewPM3Tree(cfg PM3Config) (*PM3Tree, error) { return pm.New(cfg) }

// ExtHash is an extendible-hashing table (the Fagin et al. baseline).
type ExtHash = exthash.Table

// ExtHashConfig configures an ExtHash.
type ExtHashConfig = exthash.Config

// NewExtHash returns an empty extendible-hashing table.
func NewExtHash(cfg ExtHashConfig) (*ExtHash, error) { return exthash.New(cfg) }

// GridFile is a grid file (Nievergelt et al.).
type GridFile = gridfile.File

// GridFileConfig configures a GridFile.
type GridFileConfig = gridfile.Config

// NewGridFile returns an empty grid file.
func NewGridFile(cfg GridFileConfig) (*GridFile, error) { return gridfile.New(cfg) }

// Excell is an EXCELL file (Tamminen).
type Excell = excell.File

// ExcellConfig configures an Excell.
type ExcellConfig = excell.Config

// NewExcell returns an empty EXCELL file.
func NewExcell(cfg ExcellConfig) (*Excell, error) { return excell.New(cfg) }

// PointQuadtree is the classical (data-dependent) point quadtree of
// Finkel and Bentley — the Section II contrast to regular decomposition.
type PointQuadtree = pointquadtree.Tree

// NewPointQuadtree returns an empty point quadtree over region (the
// zero rectangle selects the unit square).
func NewPointQuadtree(region Rect) (*PointQuadtree, error) { return pointquadtree.New(region) }

// RegionQuadtree is a region quadtree over a binary image.
type RegionQuadtree = regionquad.Tree

// FromBitmap builds the minimal region quadtree for a square
// power-of-two bitmap (row-major, true = black).
func FromBitmap(bitmap [][]bool) (*RegionQuadtree, error) { return regionquad.FromBitmap(bitmap) }

// RegionUnion returns the pixelwise OR of two same-size region
// quadtrees.
func RegionUnion(a, b *RegionQuadtree) (*RegionQuadtree, error) { return regionquad.Union(a, b) }

// RegionIntersect returns the pixelwise AND of two same-size region
// quadtrees.
func RegionIntersect(a, b *RegionQuadtree) (*RegionQuadtree, error) {
	return regionquad.Intersect(a, b)
}

// ---- Persistence and bulk construction ----

// EncodeQuadtree writes a quadtree to w in a stable binary format.
func EncodeQuadtree(t *Quadtree, w io.Writer) error { return t.Encode(w) }

// DecodeQuadtree reads a quadtree written by EncodeQuadtree.
func DecodeQuadtree(r io.Reader) (*Quadtree, error) { return quadtree.Decode[any](r) }

// BulkLoadQuadtree builds a quadtree from a batch of points in one
// recursive partitioning pass (no transient splits).
func BulkLoadQuadtree(cfg QuadtreeConfig, points []Point, values []any) (*Quadtree, error) {
	return quadtree.BulkLoad[any](cfg, points, values)
}

// ---- Spatial query layer ----

// SpatialDB is a small database of spatially indexed tables with
// model-based query cost estimation (EXPLAIN).
type SpatialDB = spatialdb.DB

// SpatialTable is one spatially indexed record collection.
type SpatialTable = spatialdb.Table

// SpatialRecord is a located row in a SpatialTable.
type SpatialRecord = spatialdb.Record

// SpatialQuery selects records by window, nearest, or radius.
type SpatialQuery = spatialdb.Query

// NearestSpec and WithinSpec parameterize SpatialQuery predicates.
type (
	NearestSpec = spatialdb.NearestSpec
	WithinSpec  = spatialdb.WithinSpec
)

// SpatialTableOptions parameterizes SpatialDB.CreateTableWith: node
// capacity, region, shard-key depth (ShardBits), and the snapshot
// staleness threshold.
type SpatialTableOptions = spatialdb.TableOptions

// SpatialSingleShard, passed as SpatialTableOptions.ShardBits, forces a
// single-shard table — bit-identical to the pre-sharding engine.
const SpatialSingleShard = spatialdb.SingleShard

// SpatialDurableOptions parameterizes a table's durable storage:
// directory, background auto-flush/compaction thresholds, the
// per-append fsync policy, and the lazy serving mode (Lazy +
// CacheBytes) that answers queries from sealed runs through a block
// cache instead of materializing records in RAM. Pass it to
// SpatialDB.CreateDurableTable / OpenDurableTable.
type SpatialDurableOptions = spatialdb.DurableOptions

// SpatialBatchScratch carries the reusable buffers of the batched
// table reads — SpatialTable.GetBatch, SpatialTable.ContainsBatch,
// and SpatialTable.CountRangeBatch. The zero value is ready to use;
// buffers grow to the largest batch passed and are reused across
// calls, so steady-state batches allocate nothing. A scratch must not
// be shared between concurrent callers — give each serving goroutine
// its own.
type SpatialBatchScratch = spatialdb.BatchScratch

// NewSpatialDB returns an empty spatial database.
func NewSpatialDB() *SpatialDB { return spatialdb.NewDB() }

// FaultInjector arms deterministic, seedable failure points (forced
// solver divergence, injected latency, forced insert failures) for
// chaos-testing a SpatialDB; see SpatialDB.SetFaultInjector. The nil
// default costs nothing on production paths.
type FaultInjector = faultinject.Injector

// NewFaultInjector returns an injector with no points armed, drawing
// firing decisions deterministically from the seed.
func NewFaultInjector(seed uint64) *FaultInjector { return faultinject.New(seed) }

// Failure points a FaultInjector can arm.
const (
	// FaultSolverNewton fails the Newton rung of the solver ladder.
	FaultSolverNewton = faultinject.SolverNewton
	// FaultSolverFixedPoint fails the fixed-point rungs of the ladder.
	FaultSolverFixedPoint = faultinject.SolverFixedPoint
	// FaultInsert fails a table insert before it mutates state.
	FaultInsert = faultinject.InsertFault
	// FaultInsertLatency delays a table insert.
	FaultInsertLatency = faultinject.InsertLatency
	// FaultQueryLatency delays a table select.
	FaultQueryLatency = faultinject.QueryLatency
	// FaultSnapshotRebuild fails a shard's frozen-snapshot rebuild;
	// queries on that shard fall back to its live tree.
	FaultSnapshotRebuild = faultinject.SnapshotRebuild
	// FaultWALTornWrite tears a write-ahead-log append mid-frame, as a
	// crash during the write syscall would.
	FaultWALTornWrite = faultinject.WALTornWrite
	// FaultSegmentPartialFlush cuts a sealed-run write short, leaving a
	// torn run file with no footer.
	FaultSegmentPartialFlush = faultinject.SegmentPartialFlush
	// FaultSegmentCorruption damages a sealed-run block after its
	// checksum was computed.
	FaultSegmentCorruption = faultinject.SegmentCorruption
	// FaultCompactionInterrupted kills a disk compaction after the
	// merged run is durable but before the inputs are deleted.
	FaultCompactionInterrupted = faultinject.CompactionInterrupted
	// FaultSegmentBlockPoison damages the in-flight buffer of a
	// sealed-run block read; the reader's checksum must catch it and
	// the retry must heal it.
	FaultSegmentBlockPoison = faultinject.SegmentBlockPoison
	// FaultDiskCursorSeal seals every pinned shard's WAL tail between a
	// disk query's pin and its scan, racing the cursor against a
	// growing run ladder.
	FaultDiskCursorSeal = faultinject.DiskCursorSeal
)

// Typed errors of the spatial layer, matchable with errors.Is.
var (
	// ErrInjected wraps every fault-injected failure.
	ErrInjected = faultinject.ErrInjected
	// ErrInvalidPoint rejects NaN/Inf coordinates at the API boundary.
	ErrInvalidPoint = spatialdb.ErrInvalidPoint
	// ErrInvalidRegion rejects degenerate regions and query windows.
	ErrInvalidRegion = spatialdb.ErrInvalidRegion
	// ErrNoTable is returned for operations on unknown table names.
	ErrNoTable = spatialdb.ErrNoTable
	// ErrDuplicateID is returned when inserting an existing record ID.
	ErrDuplicateID = spatialdb.ErrDuplicateID
	// ErrTableClosed is returned by durable operations after Close.
	ErrTableClosed = spatialdb.ErrTableClosed
	// ErrCorruptRun is returned when recovery meets a sealed run file
	// whose checksums no longer validate.
	ErrCorruptRun = spatialdb.ErrCorruptRun
	// ErrPayloadNotDurable rejects record payloads whose dynamic type
	// the durable codec cannot serialize.
	ErrPayloadNotDurable = spatialdb.ErrPayloadNotDurable
	// ErrShardLayoutMismatch rejects reopening a durable table under a
	// different shard layout than it was created with.
	ErrShardLayoutMismatch = spatialdb.ErrShardLayoutMismatch
	// ErrManifestMismatch rejects reopening a durable table with pinned
	// options that disagree with its manifest.
	ErrManifestMismatch = spatialdb.ErrManifestMismatch
)

// ---- Model diagnostics ----

// Spectrum holds the dominant spectral structure of a model's transform
// matrix: λ₁ (= a), |λ₂|, and the spectral gap governing convergence.
type Spectrum = core.Spectrum

// ---- Workloads ----

// Rand is the deterministic random number generator used by all
// experiments.
type Rand = xrand.Rand

// NewRand returns a deterministic generator seeded from seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// PointSource yields a stream of points inside a region.
type PointSource = dist.PointSource

// SegmentSource yields a stream of segments inside a region.
type SegmentSource = dist.SegmentSource

// NewUniform returns the paper's uniform point source.
func NewUniform(r Rect, rng *Rand) PointSource { return dist.NewUniform(r, rng) }

// NewGaussian returns the paper's Gaussian source (2σ-wide, centered).
func NewGaussian(r Rect, rng *Rand) PointSource { return dist.NewGaussian(r, rng) }

// NewClusters returns a k-cluster mixture source.
func NewClusters(r Rect, k int, sigma float64, rng *Rand) PointSource {
	return dist.NewClusters(r, k, sigma, rng)
}

// NewChords returns the random-chord segment source for PMR experiments.
func NewChords(r Rect, rng *Rand) SegmentSource { return dist.NewChords(r, rng) }

// NewShortSegments returns a source of fixed-length segments (length as
// a fraction of the region width) with uniform position and direction —
// the GIS-like line workload.
func NewShortSegments(r Rect, lengthFrac float64, rng *Rand) SegmentSource {
	return dist.NewShortSegments(r, lengthFrac, rng)
}

// ---- Measurement ----

// Census is a structure's occupancy census (leaf populations by
// occupancy and depth).
type Census = stats.Census

// TrialSummary aggregates censuses over repeated trials.
type TrialSummary = stats.TrialSummary

// Summarize aggregates trial censuses into distribution vectors of
// length n.
func Summarize(censuses []Census, n int) TrialSummary { return stats.Summarize(censuses, n) }

// ---- Exact statistical baseline ----

// StatAnalysis is the exact Fagin-style expected-occupancy analysis.
type StatAnalysis = statmodel.Analysis

// NewStatAnalysis computes the exact analysis for capacity, fanout, and
// all point counts up to maxN (O(maxN²·capacity) work).
func NewStatAnalysis(capacity, fanout, maxN int) (*StatAnalysis, error) {
	return statmodel.New(capacity, fanout, maxN)
}
