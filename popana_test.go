package popana_test

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"popana"
)

// The facade tests exercise the public API end to end the way README
// tells users to; deeper behavior is covered by the internal package
// suites.

func TestFacadeModelRoundTrip(t *testing.T) {
	model, err := popana.NewPointModel(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.AverageOccupancy()-4.25) > 0.02 {
		t.Errorf("m=8 occupancy %v, paper's Table 2 says 4.25", e.AverageOccupancy())
	}
	exact := popana.SimplePRExact()
	if exact.E[0] != 0.5 || exact.E[1] != 0.5 {
		t.Errorf("exact anchor %v", exact.E)
	}
}

func TestFacadeQuadtree(t *testing.T) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 4})
	rng := popana.NewRand(1)
	src := popana.NewUniform(qt.Region(), rng)
	for qt.Len() < 1000 {
		if _, err := qt.Insert(src.Next(), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	c := qt.Census()
	if c.Items != 1000 {
		t.Fatalf("census items %d", c.Items)
	}
	if n := qt.CountRange(popana.R(0, 0, 1, 1)); n != 1000 {
		t.Fatalf("full-region range %d", n)
	}
	if _, _, ok := qt.Nearest(popana.Pt(0.5, 0.5)); !ok {
		t.Fatal("Nearest failed")
	}
	if _, err := popana.NewQuadtreeErr(popana.QuadtreeConfig{Capacity: 0}); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestFacadeStructures(t *testing.T) {
	rng := popana.NewRand(2)
	if bt, err := popana.NewBintree(popana.BintreeConfig{Capacity: 2}); err != nil {
		t.Fatal(err)
	} else if _, err := bt.Insert(popana.Pt(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if ht, err := popana.NewHypertree(popana.HypertreeConfig{Dim: 3, Capacity: 2}); err != nil {
		t.Fatal(err)
	} else if _, err := ht.Insert([]float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatal(err)
	}
	if pt, err := popana.NewPMRTree(popana.PMRConfig{Threshold: 2}); err != nil {
		t.Fatal(err)
	} else if err := pt.Insert(popana.Seg(popana.Pt(0.1, 0.1), popana.Pt(0.4, 0.4))); err != nil {
		t.Fatal(err)
	}
	if eh, err := popana.NewExtHash(popana.ExtHashConfig{BucketCapacity: 2}); err != nil {
		t.Fatal(err)
	} else if _, err := eh.Put(rng.Uint64(), nil); err != nil {
		t.Fatal(err)
	}
	if gf, err := popana.NewGridFile(popana.GridFileConfig{BucketCapacity: 2}); err != nil {
		t.Fatal(err)
	} else if _, err := gf.Put(popana.Pt(0.3, 0.3), nil); err != nil {
		t.Fatal(err)
	}
	if ex, err := popana.NewExcell(popana.ExcellConfig{BucketCapacity: 2}); err != nil {
		t.Fatal(err)
	} else if _, err := ex.Put(popana.Pt(0.7, 0.7), nil); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeLineModel(t *testing.T) {
	model, err := popana.NewLineModel(4, 4, popana.LineModelOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if e.AverageOccupancy() <= 0 {
		t.Fatal("line model degenerate")
	}
}

func TestFacadeStatAnalysis(t *testing.T) {
	a, err := popana.NewStatAnalysis(2, 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if occ := a.AverageOccupancy(100); occ <= 0 || occ > 2 {
		t.Fatalf("exact occupancy %v", occ)
	}
}

func TestFacadeSummarize(t *testing.T) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 2})
	src := popana.NewUniform(qt.Region(), popana.NewRand(3))
	for qt.Len() < 100 {
		if _, err := qt.Insert(src.Next(), nil); err != nil {
			t.Fatal(err)
		}
	}
	s := popana.Summarize([]popana.Census{qt.Census()}, 3)
	if s.Trials != 1 || s.MeanOccupancy <= 0 {
		t.Fatalf("summary %+v", s)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	rng := popana.NewRand(4)
	r := popana.UnitSquare
	for _, src := range []popana.PointSource{
		popana.NewUniform(r, rng),
		popana.NewGaussian(r, rng),
		popana.NewClusters(r, 3, 0.05, rng),
	} {
		for i := 0; i < 100; i++ {
			if p := src.Next(); !r.Contains(p) {
				t.Fatalf("point %v escaped region", p)
			}
		}
	}
	chords := popana.NewChords(r, rng)
	if s := chords.Next(); s.Length() == 0 {
		t.Fatal("degenerate chord")
	}
	short := popana.NewShortSegments(r, 0.1, rng)
	if s := short.Next(); s.Length() <= 0 || s.Length() > 0.1+1e-9 {
		t.Fatalf("short segment length %v", s.Length())
	}
}

func TestFacadeNewStructures(t *testing.T) {
	pq, err := popana.NewPointQuadtree(popana.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.Insert(popana.Pt(0.5, 0.5), "x"); err != nil {
		t.Fatal(err)
	}
	if !pq.Contains(popana.Pt(0.5, 0.5)) {
		t.Fatal("point quadtree lost its point")
	}
	bm := [][]bool{{true, false}, {false, true}}
	rq, err := popana.FromBitmap(bm)
	if err != nil {
		t.Fatal(err)
	}
	if rq.BlackArea() != 2 {
		t.Fatalf("black area %d", rq.BlackArea())
	}
	u, err := popana.RegionUnion(rq, rq.Complement())
	if err != nil {
		t.Fatal(err)
	}
	if u.BlackArea() != 4 {
		t.Fatalf("union with complement area %d", u.BlackArea())
	}
	x, err := popana.RegionIntersect(rq, rq.Complement())
	if err != nil {
		t.Fatal(err)
	}
	if x.BlackArea() != 0 {
		t.Fatalf("intersection with complement area %d", x.BlackArea())
	}
}

func TestFacadePersistence(t *testing.T) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 2})
	src := popana.NewUniform(qt.Region(), popana.NewRand(9))
	for qt.Len() < 200 {
		if _, err := qt.Insert(src.Next(), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := popana.EncodeQuadtree(qt, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := popana.DecodeQuadtree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != qt.Len() {
		t.Fatalf("decoded %d points, want %d", got.Len(), qt.Len())
	}
}

func TestFacadeBulkLoad(t *testing.T) {
	pts := []popana.Point{popana.Pt(0.1, 0.1), popana.Pt(0.9, 0.9)}
	qt, err := popana.BulkLoadQuadtree(popana.QuadtreeConfig{Capacity: 1}, pts, []any{nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if qt.Len() != 2 {
		t.Fatalf("Len = %d", qt.Len())
	}
}

func TestFacadeSpectrum(t *testing.T) {
	model, err := popana.NewPointModel(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := model.Spectrum(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Lambda1-3) > 1e-9 || math.Abs(s.Gap-1.0/3) > 1e-6 {
		t.Fatalf("spectrum %+v", s)
	}
}

func TestFacadeSpatialDB(t *testing.T) {
	db := popana.NewSpatialDB()
	tab, err := db.CreateTable("pts", 4, popana.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	rng := popana.NewRand(10)
	src := popana.NewUniform(popana.UnitSquare, rng)
	for i := 0; tab.Len() < 500; i++ {
		if err := tab.Insert(popana.SpatialRecord{ID: uint64(i), Loc: src.Next(), Data: i}); err != nil {
			t.Fatal(err)
		}
	}
	w := popana.R(0.25, 0.25, 0.75, 0.75)
	recs, cost, err := tab.Select(popana.SpatialQuery{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || cost.LeavesVisited == 0 {
		t.Fatalf("select returned %d records, cost %+v", len(recs), cost)
	}
	est, err := tab.Explain(popana.SpatialQuery{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if est.Blocks <= 0 || est.Selectivity <= 0 {
		t.Fatalf("estimate %+v", est)
	}
}

// TestFacadeFrozenSnapshot is the README "Lock-free reads" example: after
// Compact, range reads come from the frozen snapshot and CountRange
// agrees with Select.
func TestFacadeFrozenSnapshot(t *testing.T) {
	db := popana.NewSpatialDB()
	tab, err := db.CreateTable("cities", 8, popana.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	rng := popana.NewRand(11)
	src := popana.NewUniform(popana.UnitSquare, rng)
	recs := make([]popana.SpatialRecord, 200)
	for i := range recs {
		recs[i] = popana.SpatialRecord{ID: uint64(i + 1), Loc: src.Next()}
	}
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	window := popana.R(0.2, 0.2, 0.6, 0.5)
	hits, cost, err := tab.Select(popana.SpatialQuery{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	n, _, err := tab.CountRange(window, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(hits) || cost.LeavesVisited == 0 {
		t.Fatalf("CountRange = %d, Select = %d records, cost %+v", n, len(hits), cost)
	}
}

// TestFacadeDurableTable is the README "Durability" example: create a
// durable table, close it, reopen the directory, and find every record
// recovered; reopening under a different layout is refused with the
// typed mismatch error.
func TestFacadeDurableTable(t *testing.T) {
	opts := popana.SpatialTableOptions{Capacity: 8, ShardBits: 2}
	dopts := popana.SpatialDurableOptions{Dir: t.TempDir()}
	tab, err := popana.NewSpatialDB().CreateDurableTable("cities", opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(popana.SpatialRecord{ID: 1, Loc: popana.Pt(0.1, 0.1), Data: "lisbon"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	tab2, err := popana.NewSpatialDB().OpenDurableTable("cities", opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := tab2.Get(1)
	if !ok || rec.Data != "lisbon" {
		t.Fatalf("recovered record %+v, ok=%v", rec, ok)
	}
	if err := tab2.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = popana.NewSpatialDB().OpenDurableTable("cities",
		popana.SpatialTableOptions{Capacity: 8, ShardBits: 1}, dopts)
	if !errors.Is(err, popana.ErrShardLayoutMismatch) {
		t.Fatalf("layout mismatch error = %v", err)
	}
	if err := tab2.Insert(popana.SpatialRecord{ID: 2, Loc: popana.Pt(0.2, 0.2)}); !errors.Is(err, popana.ErrTableClosed) {
		t.Fatalf("insert after close = %v", err)
	}
}

// TestFacadeLazyDurableTable is the README "Larger-than-memory tables"
// example: a lazy durable table with a bounded block cache answers
// window queries from its sealed runs, and Stats exposes the disk-run
// count and cache counters.
func TestFacadeLazyDurableTable(t *testing.T) {
	db := popana.NewSpatialDB()
	tab, err := db.CreateDurableTable("cities",
		popana.SpatialTableOptions{Capacity: 8, ShardBits: 2},
		popana.SpatialDurableOptions{
			Dir:        t.TempDir(),
			Lazy:       true,
			CacheBytes: 1 << 20,
		})
	if err != nil {
		t.Fatal(err)
	}
	records := []popana.SpatialRecord{
		{ID: 1, Loc: popana.Pt(0.25, 0.25), Data: "lisbon"},
		{ID: 2, Loc: popana.Pt(0.5, 0.4), Data: "madrid"},
		{ID: 3, Loc: popana.Pt(0.9, 0.9), Data: "oslo"},
	}
	if err := tab.InsertBatch(records); err != nil {
		t.Fatal(err)
	}
	if err := tab.CompactDisk(); err != nil {
		t.Fatal(err)
	}
	window := popana.R(0.2, 0.2, 0.6, 0.5)
	hits, cost, err := tab.Select(popana.SpatialQuery{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 || cost.Truncated {
		t.Fatalf("window hits = %d (truncated=%v), want 2", len(hits), cost.Truncated)
	}
	st := tab.Stats()
	if st.DiskRuns == 0 {
		t.Fatal("Stats.DiskRuns = 0 on a compacted lazy table")
	}
	if st.CacheHits+st.CacheMisses == 0 {
		t.Fatal("no cache traffic recorded for a disk-served query")
	}
	if st.CacheUsedBytes > st.CacheBudgetBytes {
		t.Fatalf("cache over budget: %d > %d", st.CacheUsedBytes, st.CacheBudgetBytes)
	}
	e, err := tab.Explain(popana.SpatialQuery{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if !e.FromDisk {
		t.Fatal("Explain.FromDisk = false for a lazy table")
	}
}

func TestFacadeSyncQuadtree(t *testing.T) {
	sq, err := popana.NewSyncQuadtree(popana.QuadtreeConfig{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sq.Insert(popana.Pt(0.4, 0.4), 1); err != nil {
		t.Fatal(err)
	}
	if v, ok := sq.Get(popana.Pt(0.4, 0.4)); !ok || v != 1 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if sq.Len() != 1 {
		t.Fatalf("Len = %d", sq.Len())
	}
}

func TestFacadePM3(t *testing.T) {
	tr, err := popana.NewPM3Tree(popana.PM3Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(popana.Seg(popana.Pt(0.2, 0.2), popana.Pt(0.7, 0.6))); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
	if got := tr.RangeEdges(popana.UnitSquare); len(got) != 1 {
		t.Fatalf("range edges %d", len(got))
	}
}

// TestFacadeBatchedReads is the README "Batched reads" example: a
// reusable SpatialBatchScratch serves GetBatch and CountRangeBatch,
// and every batched answer matches its scalar counterpart.
func TestFacadeBatchedReads(t *testing.T) {
	db := popana.NewSpatialDB()
	tab, err := db.CreateTableWith("pts", popana.SpatialTableOptions{Capacity: 8, ShardBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := popana.NewRand(11)
	src := popana.NewUniform(popana.UnitSquare, rng)
	for i := 0; tab.Len() < 500; i++ {
		if err := tab.Insert(popana.SpatialRecord{ID: uint64(i), Loc: src.Next(), Data: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}

	var sc popana.SpatialBatchScratch // reusable; one per serving goroutine
	ids := []uint64{1, 2, 3, 42, 9999}
	out := make([]popana.SpatialRecord, len(ids))
	found := make([]bool, len(ids))
	n := tab.GetBatch(&sc, ids, out, found) // results == calling Get per id
	if n == 0 {
		t.Fatal("GetBatch found nothing")
	}
	for i, id := range ids {
		rec, ok := tab.Get(id)
		if ok != found[i] || rec != out[i] {
			t.Fatalf("id %d: batch (%+v, %v) != scalar (%+v, %v)", id, out[i], found[i], rec, ok)
		}
	}

	windows := []popana.Rect{popana.R(0, 0, 0.25, 0.25), popana.R(0.5, 0.5, 1, 1)}
	counts := make([]int, len(windows))
	if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
		t.Fatal(err)
	}
	for i, w := range windows {
		want, _, err := tab.CountRange(w, 0)
		if err != nil {
			t.Fatal(err)
		}
		if counts[i] != want {
			t.Fatalf("window %d: batch count %d != scalar %d", i, counts[i], want)
		}
	}
}
