// Command paper regenerates every table and figure of the paper's
// evaluation, plus the extension experiments of DESIGN.md, printing the
// artifacts to stdout (or a file via -o). It is the one-shot
// reproduction entry point:
//
//	go run ./cmd/paper            # full run (paper-scale parameters)
//	go run ./cmd/paper -quick     # reduced trials for smoke testing
//	go run ./cmd/paper -only t1,t2,f2
//
// Artifact names: t1 t2 t3 t4 t5 f2 f3 anchor e7 e8 e9 e10 e11 e12 e13
// e14 e15 e16 e17.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"popana/internal/experiment"
	"popana/internal/report"
)

func main() {
	var (
		trials  = flag.Int("trials", 10, "trees averaged per data point")
		points  = flag.Int("points", 1000, "points per tree for Tables 1-3")
		seed    = flag.Uint64("seed", 0, "base RNG seed")
		workers = flag.Int("workers", 0, "trial worker pool size (0 = GOMAXPROCS); output is identical at any width")
		quick   = flag.Bool("quick", false, "reduced parameters for a fast smoke run")
		only    = flag.String("only", "", "comma-separated artifact list (default: all)")
		out     = flag.String("o", "", "write output to file instead of stdout")
	)
	flag.Parse()

	cfg := experiment.Config{Trials: *trials, Points: *points, Seed: *seed, Workers: *workers}
	maxN := 4096
	maxCap := 8
	if *quick {
		cfg.Trials = 3
		cfg.Points = 300
		maxN = 1024
		maxCap = 4
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	want := map[string]bool{}
	if *only != "" {
		for _, a := range strings.Split(*only, ",") {
			want[strings.TrimSpace(a)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	if sel("anchor") {
		a, err := experiment.RunAnchor(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(w, "Section III anchor (simple PR quadtree, m=1):\n")
		fmt.Fprintf(w, "  exact       %s\n", report.FormatVec(a.Exact.E))
		fmt.Fprintf(w, "  fixed point %s  (%d iterations, residual %.2g)\n",
			report.FormatVec(a.FixedPoint.E), a.FixedPoint.Iterations, a.FixedPoint.Residual)
		fmt.Fprintf(w, "  newton      %s  (%d iterations, residual %.2g)\n",
			report.FormatVec(a.Newton.E), a.Newton.Iterations, a.Newton.Residual)
		fmt.Fprintf(w, "  experiment  %s  (paper observed (0.536, 0.464))\n\n", report.FormatVec(a.Experimental))
	}

	var caps []experiment.CapacityResult
	if sel("t1") || sel("t2") {
		var err error
		caps, err = experiment.RunTables12(cfg, maxCap)
		if err != nil {
			fatal(err)
		}
	}
	if sel("t1") {
		fmt.Fprintln(w, experiment.RenderTable1(caps))
	}
	if sel("t2") {
		fmt.Fprintln(w, experiment.RenderTable2(caps))
	}

	if sel("t3") {
		t3, err := experiment.RunTable3(cfg, 1, 9)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderTable3(t3))
	}

	var uniform, gaussian experiment.SweepResult
	sizes := experiment.GeometricSizes(64, maxN)
	if sel("t4") || sel("f2") {
		var err error
		uniform, err = experiment.RunSweep(cfg, 8, sizes, false)
		if err != nil {
			fatal(err)
		}
	}
	if sel("t4") {
		fmt.Fprintln(w, experiment.RenderSweepTable(uniform, 4))
	}
	if sel("f2") {
		fmt.Fprintln(w, experiment.RenderSweepFigure(uniform, 2))
		if exact, err := experiment.RunStatModel(8, maxN); err == nil {
			fmt.Fprintln(w, experiment.RenderFigureWithExact(uniform, exact, 2))
		}
	}
	if sel("t5") || sel("f3") {
		var err error
		gaussian, err = experiment.RunSweep(cfg, 8, sizes, true)
		if err != nil {
			fatal(err)
		}
	}
	if sel("t5") {
		fmt.Fprintln(w, experiment.RenderSweepTable(gaussian, 5))
	}
	if sel("f3") {
		fmt.Fprintln(w, experiment.RenderSweepFigure(gaussian, 3))
	}

	if sel("e7") {
		rows, err := experiment.RunFanoutSweep(cfg, maxCap)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderFanoutSweep(rows))
	}
	if sel("e8") {
		rows, err := experiment.RunPMR(cfg, maxCap)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderPMR(rows))
	}
	if sel("e9") {
		r, err := experiment.RunStatModel(8, maxN)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderStatModel(r))
	}
	if sel("e10") {
		rows, err := experiment.RunBucketBaselines(cfg, 8, 4096)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderBucketBaselines(rows))
	}
	if sel("e11") {
		rows, err := experiment.RunAging(cfg, maxCap)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderAging(rows))
	}
	if sel("e12") {
		var rs []experiment.ChurnResult
		for _, m := range []int{1, 4, 8} {
			if m > maxCap {
				continue
			}
			r, err := experiment.RunChurn(cfg, m, 3)
			if err != nil {
				fatal(err)
			}
			rs = append(rs, r)
		}
		fmt.Fprintln(w, experiment.RenderChurn(rs))
	}
	if sel("e13") {
		r, err := experiment.RunPointQuadtree(cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderPointQuadtree(r))
	}
	if sel("e14") {
		rows, err := experiment.RunRobustness(cfg, 4)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderRobustness(rows, 4))
	}
	if sel("e15") {
		rows, err := experiment.RunSpectrum([]int{2, 4, 8}, maxCap)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderSpectrum(rows))
	}
	if sel("e16") {
		r, err := experiment.RunExtHashAnalysis(cfg, 8, maxN)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderExtHashAnalysis(r))
	}
	if sel("e17") {
		r, err := experiment.RunSearchCost(cfg, 4, experiment.GeometricSizes(256, maxN))
		if err != nil {
			fatal(err)
		}
		fmt.Fprintln(w, experiment.RenderSearchCost(r))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paper:", err)
	os.Exit(1)
}
