// Command treestat builds hierarchical structures over synthetic
// workloads and prints their occupancy statistics next to the population
// model's prediction — the per-structure experimental half of the paper,
// as a tool.
//
//	treestat -structure quadtree -capacity 8 -points 4096
//	treestat -structure octree -capacity 4 -dist gaussian
//	treestat -structure pmr -capacity 4 -points 2000
//	treestat -structure exthash -capacity 8 -points 10000
package main

import (
	"flag"
	"fmt"
	"os"

	"popana/internal/bintree"
	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/excell"
	"popana/internal/exthash"
	"popana/internal/geom"
	"popana/internal/gridfile"
	"popana/internal/hypertree"
	"popana/internal/pmr"
	"popana/internal/quadtree"
	"popana/internal/report"
	"popana/internal/stats"
	"popana/internal/xrand"
)

func main() {
	var (
		structure = flag.String("structure", "quadtree", "quadtree|bintree|octree|pmr|gridfile|exthash|excell")
		capacity  = flag.Int("capacity", 8, "node/bucket capacity (pmr: threshold)")
		points    = flag.Int("points", 1000, "data items per trial")
		trials    = flag.Int("trials", 10, "independent trials to average")
		distName  = flag.String("dist", "uniform", "uniform|gaussian|clusters|diagonal (point structures)")
		seed      = flag.Uint64("seed", 0, "base RNG seed")
		draw      = flag.Bool("draw", false, "render the decomposition as ASCII art (quadtree only)")
	)
	flag.Parse()

	var censuses []stats.Census
	fanout := 0
	for trial := 0; trial < *trials; trial++ {
		rng := xrand.New(*seed + uint64(trial)*0x9e3779b97f4a7c15 + 1)
		c, f, err := buildOne(*structure, *capacity, *points, *distName, rng)
		if err != nil {
			fatal(err)
		}
		censuses = append(censuses, c)
		fanout = f
	}

	n := *capacity + 1
	for _, c := range censuses {
		if len(c.ByOccupancy) > n {
			n = len(c.ByOccupancy)
		}
	}
	sum := stats.Summarize(censuses, n)

	fmt.Printf("%s: capacity %d, %d points x %d trials, %s data\n\n",
		*structure, *capacity, *points, *trials, *distName)
	fmt.Printf("mean leaf/bucket count : %.1f\n", sum.MeanLeaves)
	fmt.Printf("mean occupancy         : %.3f items/node\n", sum.MeanOccupancy)
	fmt.Printf("occupancy spread       : %.1f%% across trials\n", 100*sum.OccupancySpread)
	fmt.Printf("distribution           : %s\n", report.FormatVec(sum.MeanProportions))

	// Model prediction where one exists.
	switch *structure {
	case "quadtree", "bintree", "octree":
		model, err := core.NewPointModel(*capacity, fanout)
		if err != nil {
			fatal(err)
		}
		d, err := model.Solve()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\npopulation model       : %s\n", report.FormatVec(d.E))
		fmt.Printf("predicted occupancy    : %.3f (%.1f%% vs observed)\n",
			d.AverageOccupancy(),
			100*(d.AverageOccupancy()-sum.MeanOccupancy)/sum.MeanOccupancy)
	case "pmr":
		model, err := core.NewLineModel(*capacity, 4, core.LineModelOptions{})
		if err != nil {
			fatal(err)
		}
		d, err := model.Solve()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nline model (chord p)   : occupancy %.3f\n", d.AverageOccupancy())
	case "exthash":
		fmt.Printf("\nFagin asymptote        : utilization ln 2 = 0.693\n")
	}

	if *draw {
		if *structure != "quadtree" {
			fatal(fmt.Errorf("-draw supports only -structure quadtree"))
		}
		rng := xrand.New(*seed + 12345)
		t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: *capacity})
		src, err := func() (dist.PointSource, error) {
			switch *distName {
			case "uniform":
				return dist.NewUniform(t.Region(), rng), nil
			case "gaussian":
				return dist.NewGaussian(t.Region(), rng), nil
			case "clusters":
				return dist.NewClusters(t.Region(), 8, 0.03, rng), nil
			case "diagonal":
				return dist.NewDiagonal(t.Region(), 0.05, rng), nil
			default:
				return nil, fmt.Errorf("unknown distribution %q", *distName)
			}
		}()
		if err != nil {
			fatal(err)
		}
		for t.Len() < *points {
			if _, err := t.Insert(src.Next(), struct{}{}); err != nil {
				fatal(err)
			}
		}
		var blocks []report.Block
		t.WalkBlocks(func(block geom.Rect, _, occ int) bool {
			blocks = append(blocks, report.Block{Rect: block, Occupancy: occ})
			return true
		})
		fmt.Println()
		fmt.Print(report.DrawBlocks(t.Region(), blocks, 96))
	}
}

// buildOne builds one structure instance and returns its census and the
// structure's fanout (0 when the model does not apply).
func buildOne(structure string, capacity, points int, distName string, rng *xrand.Rand) (stats.Census, int, error) {
	mkPoints := func(r geom.Rect) (dist.PointSource, error) {
		switch distName {
		case "uniform":
			return dist.NewUniform(r, rng), nil
		case "gaussian":
			return dist.NewGaussian(r, rng), nil
		case "clusters":
			return dist.NewClusters(r, 8, 0.03, rng), nil
		case "diagonal":
			return dist.NewDiagonal(r, 0.05, rng), nil
		default:
			return nil, fmt.Errorf("unknown distribution %q", distName)
		}
	}
	switch structure {
	case "quadtree":
		t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: capacity})
		src, err := mkPoints(t.Region())
		if err != nil {
			return stats.Census{}, 0, err
		}
		for t.Len() < points {
			if _, err := t.Insert(src.Next(), struct{}{}); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return t.Census(), 4, nil
	case "bintree":
		t := bintree.MustNew(bintree.Config{Capacity: capacity})
		src, err := mkPoints(t.Region())
		if err != nil {
			return stats.Census{}, 0, err
		}
		for t.Len() < points {
			if _, err := t.Insert(src.Next()); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return t.Census(), 2, nil
	case "octree":
		t := hypertree.MustNew(hypertree.Config{Dim: 3, Capacity: capacity})
		for t.Len() < points {
			if _, err := t.Insert(hypertree.RandomPoint(3, rng)); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return t.Census(), 8, nil
	case "pmr":
		t := pmr.MustNew(pmr.Config{Threshold: capacity, MaxDepth: 12})
		src := dist.NewShortSegments(t.Region(), 0.05, rng)
		for t.Len() < points {
			if err := t.Insert(src.Next()); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return t.Census(), 0, nil
	case "gridfile":
		f := gridfile.MustNew(gridfile.Config{BucketCapacity: capacity})
		src, err := mkPoints(geom.UnitSquare)
		if err != nil {
			return stats.Census{}, 0, err
		}
		for f.Len() < points {
			if _, err := f.Put(src.Next(), nil); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return f.Census(), 0, nil
	case "exthash":
		t := exthash.MustNew(exthash.Config{BucketCapacity: capacity})
		for t.Len() < points {
			if _, err := t.Put(rng.Uint64(), nil); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return t.Census(), 0, nil
	case "excell":
		f := excell.MustNew(excell.Config{BucketCapacity: capacity})
		src, err := mkPoints(geom.UnitSquare)
		if err != nil {
			return stats.Census{}, 0, err
		}
		for f.Len() < points {
			if _, err := f.Put(src.Next(), nil); err != nil {
				return stats.Census{}, 0, err
			}
		}
		return f.Census(), 0, nil
	default:
		return stats.Census{}, 0, fmt.Errorf("unknown structure %q", structure)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treestat:", err)
	os.Exit(1)
}
