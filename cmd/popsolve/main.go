// Command popsolve solves a population model and prints the expected
// distribution and its derived storage metrics.
//
//	popsolve -capacity 8 -fanout 4          # generalized PR quadtree
//	popsolve -capacity 4 -fanout 8          # PR octree
//	popsolve -line -capacity 4              # PMR line model (threshold 4)
//	popsolve -capacity 8 -matrix            # also print the transform matrix
//
// The solution is cross-checked with the Newton solver before printing;
// a disagreement aborts (it would mean a numerical bug, not a usage
// error).
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"popana/internal/core"
	"popana/internal/report"
	"popana/internal/solver"
)

func main() {
	var (
		capacity  = flag.Int("capacity", 8, "node capacity m (line mode: splitting threshold)")
		fanout    = flag.Int("fanout", 4, "children per split (4 quadtree, 2 bintree, 8 octree)")
		line      = flag.Bool("line", false, "solve the PMR line model instead of the point model")
		crossProb = flag.Float64("p", 0, "line mode: quadrant crossing probability (0 = random-chord default)")
		matrix    = flag.Bool("matrix", false, "print the transform matrix")
		spectrum  = flag.Bool("spectrum", false, "print spectral diagnostics (lambda2, gap, mixing)")
	)
	flag.Parse()

	var (
		model *core.Model
		err   error
	)
	if *line {
		model, err = core.NewLineModel(*capacity, *fanout, core.LineModelOptions{CrossProb: *crossProb})
	} else {
		model, err = core.NewPointModel(*capacity, *fanout)
	}
	if err != nil {
		fatal(err)
	}

	d, err := model.Solve()
	if err != nil {
		fatal(err)
	}
	nw, err := model.SolveNewton(solver.Options{Tolerance: 1e-12})
	if err != nil {
		fatal(fmt.Errorf("newton cross-check failed: %w", err))
	}
	for i := range d.E {
		if diff := math.Abs(d.E[i] - nw.E[i]); diff > 1e-8 {
			fatal(fmt.Errorf("solvers disagree at component %d by %g", i, diff))
		}
	}

	fmt.Printf("%s\n\n", model.Desc)
	if *matrix {
		fmt.Printf("transform matrix T:\n%s\n\n", model.T)
	}
	fmt.Printf("expected distribution e = %s\n", report.FormatVec(d.E))
	fmt.Printf("normalization a         = %.6f (nodes produced per insertion)\n", d.A)
	fmt.Printf("average occupancy       = %.4f items/node\n", d.AverageOccupancy())
	fmt.Printf("storage utilization     = %.4f of capacity\n", d.Utilization(*capacity))
	fmt.Printf("nodes per item          = %.4f\n", d.NodesPerItem())
	fmt.Printf("empty-node fraction     = %.4f\n", d.EmptyFraction())
	if !*line {
		fmt.Printf("post-split occupancy    = %.4f items/node\n", model.PostSplitOccupancy())
	}
	fmt.Printf("\nsolved in %d iterations, residual %.2g (newton: %d iterations)\n",
		d.Iterations, d.Residual, nw.Iterations)

	if *spectrum {
		s, err := model.Spectrum(0)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nspectral diagnostics:\n")
		fmt.Printf("  lambda1 (=a)  = %.6f\n", s.Lambda1)
		fmt.Printf("  |lambda2|     = %.6f\n", s.Lambda2Abs)
		fmt.Printf("  spectral gap  = %.6f\n", s.Gap)
		fmt.Printf("  mixing        = %.2f insertions/node to forget a perturbation\n", s.MixingInsertions())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "popsolve:", err)
	os.Exit(1)
}
