// Command doccheck verifies that the code identifiers the prose
// documentation refers to still exist. It parses every Go file in the
// module, collects exported package-level identifiers, methods, and
// struct fields, then scans the documentation files for qualified
// references — `pkg.Name` where pkg is a package in this module, or
// `Type.Member` where Type is an exported type — and fails with a
// file:line listing for every reference that no longer resolves.
//
// The point is refactoring safety for the docs: renaming an exported
// symbol breaks README/DESIGN/ARCHITECTURE silently, and stale docs
// that name nonexistent API are worse than no docs. CI runs doccheck
// as a blocking step.
//
// Usage:
//
//	go run ./cmd/doccheck                          # README.md DESIGN.md ARCHITECTURE.md
//	go run ./cmd/doccheck README.md EXPERIMENTS.md # explicit doc list
//
// Only references whose qualifier is known to the module are checked:
// `cities.db` (a path) and `qt.Census` (a local variable) are skipped
// because `cities` and `qt` name no package or exported type, so prose
// and code examples need no annotations.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	docs := os.Args[1:]
	if len(docs) == 0 {
		docs = []string{"README.md", "DESIGN.md", "ARCHITECTURE.md"}
	}
	idx, err := indexModule(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	var broken []string
	for _, doc := range docs {
		refs, err := checkDoc(doc, idx)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(1)
		}
		broken = append(broken, refs...)
	}
	if len(broken) > 0 {
		for _, r := range broken {
			fmt.Fprintln(os.Stderr, r)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d stale reference(s)\n", len(broken))
		os.Exit(1)
	}
	fmt.Printf("doccheck: %d doc file(s) consistent with the module's exported API\n", len(docs))
}

// index maps the module's documentable surface: exported package-level
// identifiers by package name, and exported methods/fields by exported
// receiver/struct type name. Type aliases (`type A = pkg.B`) resolve
// through to their target's members, so a doc reference like
// `SpatialTable.GetBatch` is checked against spatialdb.Table's methods
// instead of being silently skipped.
type index struct {
	pkgIdents   map[string]map[string]bool // package name -> exported top-level idents
	typeMembers map[string]map[string]bool // exported type name -> exported methods + fields
	aliases     map[string]string          // exported alias name -> target base type name
}

// indexModule parses every .go file under root (tests included — docs
// may cite test names; vendored fixtures and hidden dirs excluded) and
// builds the reference index.
func indexModule(root string) (*index, error) {
	idx := &index{
		pkgIdents:   map[string]map[string]bool{},
		typeMembers: map[string]map[string]bool{},
		aliases:     map[string]string{},
	}
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			// testdata holds analyzer fixtures (deliberately wrong code);
			// hidden dirs hold tool state, not API.
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if perr != nil {
			return fmt.Errorf("parse %s: %w", path, perr)
		}
		idx.addFile(f)
		return nil
	})
	if err != nil {
		return nil, err
	}
	idx.resolveAliases()
	return idx, nil
}

// resolveAliases points every exported alias at its target's member
// set, following alias-of-alias chains (bounded by the alias count, so
// a cycle terminates). An alias of a type with no recorded members
// resolves to nothing and its references stay unchecked, as before.
func (idx *index) resolveAliases() {
	for alias, target := range idx.aliases {
		for range idx.aliases {
			next, ok := idx.aliases[target]
			if !ok {
				break
			}
			target = next
		}
		if members := idx.typeMembers[target]; members != nil && idx.typeMembers[alias] == nil {
			idx.typeMembers[alias] = members
		}
	}
}

func (idx *index) addFile(f *ast.File) {
	pkg := f.Name.Name
	add := func(m map[string]map[string]bool, key, name string) {
		if !ast.IsExported(name) {
			return
		}
		if m[key] == nil {
			m[key] = map[string]bool{}
		}
		m[key][name] = true
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Recv == nil || len(d.Recv.List) == 0 {
				add(idx.pkgIdents, pkg, d.Name.Name)
				continue
			}
			if recv := receiverTypeName(d.Recv.List[0].Type); recv != "" && ast.IsExported(recv) {
				add(idx.typeMembers, recv, d.Name.Name)
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					add(idx.pkgIdents, pkg, s.Name.Name)
					if st, ok := s.Type.(*ast.StructType); ok && ast.IsExported(s.Name.Name) {
						for _, field := range st.Fields.List {
							for _, fn := range field.Names {
								add(idx.typeMembers, s.Name.Name, fn.Name)
							}
						}
					}
					if s.Assign.IsValid() && ast.IsExported(s.Name.Name) {
						if target := aliasTargetName(s.Type); target != "" {
							idx.aliases[s.Name.Name] = target
						}
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						add(idx.pkgIdents, pkg, n.Name)
					}
				}
			}
		}
	}
}

// receiverTypeName unwraps a method receiver type expression — `T`,
// `*T`, `T[V]`, `*T[K, V]` — to the base type name.
func receiverTypeName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// aliasTargetName unwraps an alias declaration's right-hand side —
// `B`, `pkg.B`, `B[V]`, `*B` — to the base type name the alias stands
// for. Anything more structural (func types, struct literals) returns
// "" and the alias keeps no members.
func aliasTargetName(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.StarExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.IndexListExpr:
			expr = e.X
		case *ast.SelectorExpr:
			return e.Sel.Name
		case *ast.Ident:
			return e.Name
		default:
			return ""
		}
	}
}

// refPattern matches a qualified reference: a qualifier followed by a
// dot and an exported identifier. The qualifier decides whether the
// reference is checked at all (known package or exported type).
var refPattern = regexp.MustCompile(`([A-Za-z_][A-Za-z0-9_]*)\.([A-Z][A-Za-z0-9_]*)`)

// checkDoc scans one documentation file and returns a "file:line: ref"
// diagnostic for every reference whose qualifier the module knows but
// whose member it does not.
func checkDoc(path string, idx *index) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var broken []string
	for lineNo, line := range strings.Split(string(data), "\n") {
		for _, m := range refPattern.FindAllStringSubmatch(line, -1) {
			qual, member := m[1], m[2]
			switch {
			case idx.pkgIdents[qual] != nil:
				if !idx.pkgIdents[qual][member] {
					broken = append(broken, fmt.Sprintf("%s:%d: %s.%s: package %s has no exported %q",
						path, lineNo+1, qual, member, qual, member))
				}
			case idx.typeMembers[qual] != nil:
				if !idx.typeMembers[qual][member] {
					broken = append(broken, fmt.Sprintf("%s:%d: %s.%s: type %s has no exported method or field %q",
						path, lineNo+1, qual, member, qual, member))
				}
			}
		}
	}
	sort.Strings(broken)
	return broken, nil
}
