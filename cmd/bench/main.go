// Command bench runs the repository's benchmark suite, writes a
// machine-readable BENCH_*.json report, and compares it against the
// previous report in the trajectory, exiting non-zero when any
// benchmark regressed beyond the threshold.
//
// Usage:
//
//	go run ./cmd/bench -o BENCH_PR2.json            # full suite, auto-baseline
//	go run ./cmd/bench -short -benchtime 100ms      # CI smoke run
//	go run ./cmd/bench -baseline BENCH_PR2.json     # explicit baseline
//
// The baseline defaults to the lexicographically latest BENCH_*.json in
// the current directory other than the output file, so committing one
// report per PR yields a regression gate against the previous PR for
// free.
package main

import (
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"popana/internal/bench"
)

func main() {
	var (
		out       = flag.String("o", "", "write the JSON report to this file (empty: don't write)")
		label     = flag.String("label", "", "label recorded in the report")
		baseline  = flag.String("baseline", "", "compare against this report (empty: latest BENCH_*.json, '-' to disable)")
		threshold = flag.Float64("threshold", 0.20, "regression threshold as a fraction (0.20 = +20%)")
		short     = flag.Bool("short", false, "run only the fast micro-benchmarks")
		benchtime = flag.Duration("benchtime", time.Second, "target duration per benchmark")
		cpuprof   = flag.String("cpuprofile", "", "write a CPU profile of the measured benchmark loops to this file")
		memprof   = flag.String("memprofile", "", "write a heap profile taken after the measured loops to this file")
		runPat    = flag.String("run", "", "run only benchmarks whose name matches this regexp")
		frzAllocs = flag.Int64("freeze-allocs", 6900, "max allocs/op allowed for FreezeBuild64k when it runs (0: no gate)")
		frSpeedup = flag.Float64("frozen-range-speedup", 0, "minimum geomean ns/op speedup of FrozenRange* vs the baseline (0: no gate)")
		gbSpeedup = flag.Float64("getbatch-speedup", 0, "minimum within-report geomean speedup of TableGetBatch* vs the scalar Get loop (0: no gate)")
	)
	flag.Parse()
	if err := run(*out, *label, *baseline, *threshold, *short, *benchtime, *cpuprof, *memprof, *runPat, *frzAllocs, *frSpeedup, *gbSpeedup); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(out, label, baseline string, threshold float64, short bool, benchtime time.Duration, cpuprof, memprof, runPat string, frzAllocs int64, frSpeedup, gbSpeedup float64) error {
	if err := bench.SetBenchtime(benchtime); err != nil {
		return err
	}
	specs := bench.Suite(short)
	if runPat != "" {
		re, err := regexp.Compile(runPat)
		if err != nil {
			return fmt.Errorf("bad -run pattern: %w", err)
		}
		kept := specs[:0]
		for _, s := range specs {
			if re.MatchString(s.Name) {
				kept = append(kept, s)
			}
		}
		specs = kept
		if len(specs) == 0 {
			return fmt.Errorf("no benchmarks match -run %q", runPat)
		}
	}
	// Profiling brackets exactly the measured loops: started after flag
	// parsing and setup, stopped before report writing and comparison,
	// so the profile is benchmark work and nothing else.
	if cpuprof != "" {
		f, err := os.Create(cpuprof)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("start CPU profile: %w", err)
		}
	}
	// The environment header up front: timing numbers are only
	// comparable with the machine they ran on in view.
	fmt.Printf("%s %s/%s GOMAXPROCS=%d NumCPU=%d\n",
		runtime.Version(), runtime.GOOS, runtime.GOARCH,
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	report := bench.Run(label, specs, func(line string) {
		fmt.Print(line)
	})
	if cpuprof != "" {
		pprof.StopCPUProfile()
		fmt.Printf("wrote CPU profile %s\n", cpuprof)
	}
	if memprof != "" {
		f, err := os.Create(memprof)
		if err != nil {
			return err
		}
		runtime.GC() // flush pending allocations so the heap profile is settled
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote heap profile %s\n", memprof)
	}
	report.When = time.Now().UTC().Format(time.RFC3339)
	// A benchmark that dies mid-run (b.Fatal, b.Skip) makes
	// testing.Benchmark return a zero result, whose 0/0 ns/op would
	// poison the report with NaN and fail only later, anonymously, at
	// JSON encoding. Name the casualty here instead.
	for _, res := range report.Results {
		if res.Iterations == 0 || math.IsNaN(res.NsPerOp) {
			return fmt.Errorf("benchmark %s produced no result (it fataled or skipped; see output above)", res.Name)
		}
	}
	// Every gate this run could not apply is announced with a SKIPPED
	// line and recorded in the report's gates_skipped field, so a green
	// run that proved less than usual is loud about it both on the
	// console and in the archived JSON.
	skipGate := func(gate, reason string) {
		fmt.Printf("%s gate SKIPPED (%s)\n", gate, reason)
		report.GatesSkipped = append(report.GatesSkipped, gate+": "+reason)
	}
	// The sharded write path's headline claim: with 8 writers the
	// sharded table beats the single-lock baseline by at least 2x. The
	// gate only fires on machines with enough cores for 8 workers to
	// run meaningfully in parallel — mirroring the comparability rule
	// the regression check applies across architectures — but the
	// measured speedup is always recorded in the report.
	speedupErr := error(nil)
	if sp, ok := report.InsertSpeedup8(); ok {
		report.ParallelInsertSpeedup8W = sp
		fmt.Printf("parallel-insert speedup at 8 workers (sharded vs single-lock): %.2fx\n", sp)
		switch {
		case runtime.NumCPU() < 4:
			skipGate("parallel-insert-speedup",
				fmt.Sprintf("%d CPU(s) available, assertion needs >= 4", runtime.NumCPU()))
		case sp < 2:
			speedupErr = fmt.Errorf("parallel-insert speedup %.2fx at 8 workers is below the 2x gate", sp)
		}
	} else {
		skipGate("parallel-insert-speedup", "ParallelInsert benchmarks not in this run")
	}
	// The zero-alloc freeze claim is an absolute, machine-independent
	// gate: allocation counts are deterministic, so FreezeBuild64k must
	// stay under the budget on every machine it runs on.
	allocsErr := error(nil)
	if frzAllocs > 0 {
		found := false
		for _, res := range report.Results {
			if res.Name != "FreezeBuild64k" {
				continue
			}
			found = true
			fmt.Printf("FreezeBuild64k: %d allocs/op (budget %d)\n", res.AllocsPerOp, frzAllocs)
			if res.AllocsPerOp > frzAllocs {
				allocsErr = fmt.Errorf("FreezeBuild64k allocated %d allocs/op, budget is %d", res.AllocsPerOp, frzAllocs)
			}
		}
		if !found {
			skipGate("freeze-allocs", "FreezeBuild64k not in this run")
		}
	}
	// The batched-read headline claim: one GetBatch call beats the
	// equivalent scalar Get loop over the identical probe stream. Both
	// sides of each pair live in this report, so the gate needs no
	// baseline and no CPU-count comparability check — it is a
	// within-run ratio over single-threaded benchmarks. The measured
	// speedup is always recorded when the pairs ran; -getbatch-speedup
	// turns it into a gate.
	gbErr := error(nil)
	if sp, n := report.GetBatchSpeedup(); n > 0 {
		report.TableGetBatchSpeedup = sp
		fmt.Printf("table GetBatch speedup vs scalar Get loop: %.2fx over %d pair(s)\n", sp, n)
		if gbSpeedup > 0 && sp < gbSpeedup {
			gbErr = fmt.Errorf("table GetBatch speedup %.2fx is below the %.2fx gate", sp, gbSpeedup)
		}
	} else if gbSpeedup > 0 {
		skipGate("getbatch-speedup", "TableGetScalar/TableGetBatch pairs not in this run")
	}
	// The baseline is resolved before the report is written so skipped
	// gates — an absent baseline, a cross-machine timing skip — land in
	// the JSON, not just on the console.
	basePath, err := resolveBaseline(baseline, out)
	if err != nil {
		return err
	}
	var base bench.Report
	if basePath == "" {
		skipGate("regression", "no baseline BENCH_*.json found")
	} else {
		base, err = bench.ReadFile(basePath)
		if err != nil {
			return err
		}
		if !bench.ComparableTiming(base, report) {
			skipGate("regression-timing",
				fmt.Sprintf("baseline ran on %s/%s, this run on %s/%s; comparing allocs/op only",
					base.GOOS, base.GOARCH, report.GOOS, report.GOARCH))
		}
		if !bench.CPUComparable(base, report) {
			skipGate("regression-concurrency",
				fmt.Sprintf("baseline ran with %d CPU(s), this run with %d; skipping ns/op on concurrency-sensitive benchmarks",
					base.NumCPU, report.NumCPU))
		}
	}
	// The FrozenRange* speedup gate: the geometric mean of the
	// baseline-over-current ns/op ratios across every FrozenRange
	// benchmark present in both reports must clear the requested factor.
	// Opt-in (-frozen-range-speedup 2) because it only means something
	// against a chosen baseline on the same machine.
	frErr := error(nil)
	if frSpeedup > 0 {
		switch {
		case basePath == "":
			skipGate("frozen-range-speedup", "no baseline to compare against")
		case !bench.ComparableTiming(base, report):
			skipGate("frozen-range-speedup", "baseline ran on a different GOOS/GOARCH")
		case !bench.CPUComparable(base, report):
			skipGate("frozen-range-speedup", "baseline ran with a different CPU count")
		default:
			sp, n := bench.FrozenRangeSpeedup(base, report)
			if n == 0 {
				skipGate("frozen-range-speedup", "no FrozenRange benchmark present in both reports")
			} else {
				fmt.Printf("FrozenRange geomean speedup vs %s: %.2fx over %d benchmarks\n", basePath, sp, n)
				if sp < frSpeedup {
					frErr = fmt.Errorf("FrozenRange geomean speedup %.2fx is below the %.2fx gate", sp, frSpeedup)
				}
			}
		}
	}
	if out != "" {
		if err := report.WriteFile(out); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d benchmarks)\n", out, len(report.Results))
	}
	gateErr := errors.Join(speedupErr, allocsErr, gbErr, frErr)
	if basePath == "" {
		return gateErr
	}
	regs := bench.Compare(base, report, threshold)
	regErr := error(nil)
	if len(regs) == 0 {
		fmt.Printf("no regressions beyond %+.0f%% vs %s\n", threshold*100, basePath)
	} else {
		for _, g := range regs {
			fmt.Fprintf(os.Stderr, "REGRESSION %s\n", g)
		}
		regErr = fmt.Errorf("%d regression(s) beyond %+.0f%% vs %s", len(regs), threshold*100, basePath)
	}
	// A failing run prints the full per-benchmark delta table, worst
	// first, so the console leads with where the damage is instead of
	// making the reader diff two JSON files by hand.
	if gateErr != nil || regErr != nil {
		printDeltaTable(base, report)
	}
	return errors.Join(gateErr, regErr)
}

// printDeltaTable writes every benchmark present in both reports to
// stderr with its ns/op and allocs/op movement, sorted worst-first by
// the ns/op growth ratio (ties broken by allocs growth, then name).
// Benchmarks only in one report are omitted — they have no delta.
func printDeltaTable(base, cur bench.Report) {
	old := make(map[string]bench.Result, len(base.Results))
	for _, r := range base.Results {
		old[r.Name] = r
	}
	type row struct {
		name          string
		nsRatio       float64
		baseNs, curNs float64
		allocRatio    float64
		baseAl, curAl int64
	}
	ratio := func(baseV, curV float64) float64 {
		if baseV <= 0 {
			return 1
		}
		return curV / baseV
	}
	var rows []row
	for _, c := range cur.Results {
		b, ok := old[c.Name]
		if !ok {
			continue
		}
		rows = append(rows, row{
			name:       c.Name,
			nsRatio:    ratio(b.NsPerOp, c.NsPerOp),
			baseNs:     b.NsPerOp,
			curNs:      c.NsPerOp,
			allocRatio: ratio(float64(b.AllocsPerOp), float64(c.AllocsPerOp)),
			baseAl:     b.AllocsPerOp,
			curAl:      c.AllocsPerOp,
		})
	}
	if len(rows) == 0 {
		return
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].nsRatio != rows[j].nsRatio {
			return rows[i].nsRatio > rows[j].nsRatio
		}
		if rows[i].allocRatio != rows[j].allocRatio {
			return rows[i].allocRatio > rows[j].allocRatio
		}
		return rows[i].name < rows[j].name
	})
	fmt.Fprintf(os.Stderr, "per-benchmark deltas vs baseline, worst first:\n")
	fmt.Fprintf(os.Stderr, "  %-28s %14s %14s %8s %12s %8s\n",
		"benchmark", "base ns/op", "ns/op", "delta", "allocs/op", "delta")
	for _, r := range rows {
		fmt.Fprintf(os.Stderr, "  %-28s %14.0f %14.0f %+7.1f%% %5d->%-5d %+7.1f%%\n",
			r.name, r.baseNs, r.curNs, (r.nsRatio-1)*100,
			r.baseAl, r.curAl, (r.allocRatio-1)*100)
	}
}

// resolveBaseline picks the report to compare against: an explicit path,
// "-" (or "none") to disable, or by default the lexicographically latest
// BENCH_*.json other than the output file.
func resolveBaseline(baseline, out string) (string, error) {
	switch baseline {
	case "-", "none":
		return "", nil
	case "":
		matches, err := filepath.Glob("BENCH_*.json")
		if err != nil {
			return "", err
		}
		sort.Strings(matches)
		for i := len(matches) - 1; i >= 0; i-- {
			if out == "" || filepath.Clean(matches[i]) != filepath.Clean(out) {
				return matches[i], nil
			}
		}
		return "", nil
	default:
		return baseline, nil
	}
}
