// Package wal is cmd/popvet's -json fixture: one open syncdiscipline
// finding and one suppressed one, so the golden output pins both the
// wire format and the suppressed marker.
package wal

import "os"

// leaky forgets Close on one path.
func leaky(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil // flagged: f may still be open
	}
	return f.Close()
}

// parked intentionally leaks the handle, with a justification.
func parked(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	//popvet:allow syncdiscipline -- handle is parked in a process-lifetime registry
	return f.Name(), nil
}
