package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"popana/internal/analysis"
	"popana/internal/analysis/suite"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden.json from current output")

// TestJSONGolden pins the -json wire format: the fixture package holds
// one open syncdiscipline finding and one suppressed one, and the
// golden file records exactly what popvet -json emits for them —
// field names, ordering, indentation, the suppressed marker, and []
// instead of null.
func TestJSONGolden(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, fset, deps, err := analysis.Load(analysis.Config{Root: root}, []string{"wal"})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAll(fset, pkgs, deps, suite.All())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeJSON(&buf, root, findings); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output drifted from %s (run with -update to regenerate):\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestJSONEmpty pins the no-findings form: an empty array, not null.
func TestJSONEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, ".", nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings rendered %q, want %q", got, "[]\n")
	}
}
