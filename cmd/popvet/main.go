// Command popvet runs the repository's custom static-analysis suite:
// machine checks for the invariants the test suite cannot see.
//
//	go run ./cmd/popvet ./...
//
// Analyzers (see internal/analysis/<name> for the full story):
//
//	detrand         no global math/rand, time.Now, or map-iteration
//	                dependence in code reachable from experiment runners
//	floatcmp        no naked ==/!= on floats in core, solver, vecmat,
//	                statmodel; comparisons go through internal/fmath
//	lockdiscipline  no re-entrant table locking in spatialdb; snapshot
//	                atomics only through sanctioned accessors
//	faultpoint      fault-injection point names must be registered
//	                Point constants
//
// popvet loads the whole module (the detrand reachability analysis
// needs the full import graph) and reports findings for the packages
// matching the argument patterns: "./..." for everything, or package
// directories like ./internal/solver. Exit status is 1 when findings
// remain, 2 on usage or load errors. A finding can be suppressed at the
// site with "//popvet:allow <analyzer> -- justification"; popvet is a
// blocking CI step, so an unjustified suppression has to survive code
// review.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"popana/internal/analysis"
	"popana/internal/analysis/detrand"
	"popana/internal/analysis/suite"
)

func main() {
	os.Exit(run())
}

func run() int {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and the detrand deterministic core, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout (including suppressed ones, marked)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: popvet [-only names] [-list] [-json] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "popvet machine-checks the repository's determinism, locking,\nnumeric, and fault-injection invariants.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := suite.All()
	if *only != "" {
		analyzers = suite.ByName(strings.Split(*only, ","))
		if analyzers == nil {
			fmt.Fprintf(os.Stderr, "popvet: unknown analyzer in -only=%s\n", *only)
			return 2
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}
	root, err := analysis.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}
	module, err := analysis.ModulePath(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}

	// Load the whole module: detrand's reachability facts need the full
	// import graph even when only a subset is being reported on.
	pkgs, fset, deps, err := analysis.Load(analysis.Config{Root: root, Module: module}, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}

	if *list {
		fmt.Println("analyzers:")
		for _, a := range suite.All() {
			fmt.Printf("  %-15s %s\n", a.Name, a.Doc)
		}
		fmt.Println("\ndetrand deterministic core (experiment-reachable packages):")
		for _, p := range detrand.Targets(deps) {
			fmt.Printf("  %s\n", p)
		}
		return 0
	}

	keep, err := matchPatterns(root, module, cwd, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}
	var selected []*analysis.Package
	for _, p := range pkgs {
		if keep(p.Path) {
			selected = append(selected, p)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "popvet: no packages match %v\n", flag.Args())
		return 2
	}

	findings, err := analysis.RunAll(fset, selected, deps, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
		return 2
	}
	open := 0
	for _, f := range findings {
		if !f.Suppressed {
			open++
		}
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, cwd, findings); err != nil {
			fmt.Fprintf(os.Stderr, "popvet: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			if f.Suppressed {
				continue
			}
			fmt.Printf("%s: [%s] %s\n", relPos(cwd, f.Pos), f.Analyzer, f.Message)
		}
	}
	if open > 0 {
		fmt.Fprintf(os.Stderr, "popvet: %d finding(s)\n", open)
		return 1
	}
	return 0
}

// jsonFinding is the -json wire form of one diagnostic.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// writeJSON renders findings (suppressed ones included, marked) as an
// indented JSON array, with file paths relative to dir when possible.
// An empty run renders as [], never null, so downstream jq stays
// unconditional.
func writeJSON(w io.Writer, dir string, findings []analysis.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		pos := relPos(dir, f.Pos)
		out = append(out, jsonFinding{
			File:       pos.Filename,
			Line:       pos.Line,
			Col:        pos.Column,
			Analyzer:   f.Analyzer,
			Message:    f.Message,
			Suppressed: f.Suppressed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// relPos rewrites pos.Filename relative to dir when it lies inside it.
func relPos(dir string, pos token.Position) token.Position {
	if rel, err := filepath.Rel(dir, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		pos.Filename = filepath.ToSlash(rel)
	}
	return pos
}

// matchPatterns converts go-style package patterns ("./...",
// "./internal/core", "popana/internal/core") into a predicate over
// import paths. No arguments means everything.
func matchPatterns(root, module, cwd string, args []string) (func(string) bool, error) {
	if len(args) == 0 {
		return func(string) bool { return true }, nil
	}
	var exact []string
	var prefixes []string
	for _, arg := range args {
		recursive := false
		if rest, ok := strings.CutSuffix(arg, "/..."); ok {
			recursive = true
			arg = rest
			if arg == "." || arg == "" {
				arg = "."
			}
		}
		path := arg
		if arg == "." || strings.HasPrefix(arg, "./") || strings.HasPrefix(arg, "../") {
			abs, err := filepath.Abs(filepath.Join(cwd, arg))
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("pattern %q is outside the module", arg)
			}
			if rel == "." {
				path = module
			} else {
				path = module + "/" + filepath.ToSlash(rel)
			}
		}
		if recursive {
			prefixes = append(prefixes, path)
		} else {
			exact = append(exact, path)
		}
	}
	return func(pkg string) bool {
		for _, e := range exact {
			if pkg == e {
				return true
			}
		}
		for _, p := range prefixes {
			if pkg == p || strings.HasPrefix(pkg, p+"/") {
				return true
			}
		}
		return false
	}, nil
}
