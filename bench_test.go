package popana_test

// The benchmark harness: one benchmark per table and figure of the
// paper's evaluation, plus the extension experiments of DESIGN.md and
// micro-benchmarks of the primitives. Each paper benchmark runs the
// corresponding experiment at a reduced-but-faithful scale per iteration
// and reports the headline quantity via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the shape of every artifact. The full paper-scale run
// (10 trees × 1000 points, n up to 4096) is `go run ./cmd/paper`; its
// output is recorded in EXPERIMENTS.md.

import (
	"sync"
	"sync/atomic"
	"testing"

	"popana"
	"popana/internal/experiment"
)

// benchCfg is the per-iteration experiment scale: large enough for the
// statistics to hold their shape, small enough to keep -bench=. minutes
// not hours. Workers is left zero (GOMAXPROCS): results are bit-identical
// at any pool width, so parallelism changes only the wall clock.
func benchCfg() experiment.Config {
	return experiment.Config{Trials: 3, Points: 500, Seed: 11}
}

// BenchmarkTable1ExpectedDistribution regenerates Table 1: theoretical
// vs experimental expected distribution for capacities 1..8.
func BenchmarkTable1ExpectedDistribution(b *testing.B) {
	var rs []experiment.CapacityResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = experiment.RunTables12(benchCfg(), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: worst absolute component error across all capacities.
	worst := 0.0
	for _, r := range rs {
		for j := range r.Experimental {
			d := r.Theory.E[j] - r.Experimental[j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	b.ReportMetric(worst, "maxComponentErr")
}

// BenchmarkTable2AverageOccupancy regenerates Table 2: average node
// occupancy, theory vs experiment, with the percent difference the
// paper reports (4-13%, theory uniformly high).
func BenchmarkTable2AverageOccupancy(b *testing.B) {
	var rs []experiment.CapacityResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = experiment.RunTables12(benchCfg(), 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	mean := 0.0
	for _, r := range rs {
		mean += r.PercentDifference
	}
	b.ReportMetric(mean/float64(len(rs)), "meanPctDiff")
}

// BenchmarkTable3OccupancyByDepth regenerates Table 3: per-depth
// occupancy decaying toward the post-split value 0.40 (aging).
func BenchmarkTable3OccupancyByDepth(b *testing.B) {
	var res experiment.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunTable3(benchCfg(), 1, 9)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline: occupancy of the most populated depth band's last row
	// relative to the 0.40 asymptote.
	if len(res.Rows) > 0 {
		b.ReportMetric(res.Rows[len(res.Rows)-1].Occupancy, "deepestOccupancy")
		b.ReportMetric(res.PostSplitOccupancy, "asymptote")
	}
}

// BenchmarkTable4UniformPhasing regenerates Table 4: occupancy vs tree
// size under uniform data (m=8), oscillating without damping.
func BenchmarkTable4UniformPhasing(b *testing.B) {
	sizes := experiment.GeometricSizes(64, 1024)
	var res experiment.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSweep(benchCfg(), 8, sizes, false)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OscillationAmplitude(64, 1024), "amplitude")
}

// BenchmarkTable4Sequential is Table 4 pinned to one worker; the ratio
// to BenchmarkTable4UniformPhasing is the trial engine's parallel
// speedup on this machine.
func BenchmarkTable4Sequential(b *testing.B) {
	cfg := benchCfg()
	cfg.Workers = 1
	sizes := experiment.GeometricSizes(64, 1024)
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RunSweep(cfg, 8, sizes, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2 renders Figure 2 (the semi-log chart of Table 4).
func BenchmarkFigure2(b *testing.B) {
	sizes := experiment.GeometricSizes(64, 1024)
	res, err := experiment.RunSweep(benchCfg(), 8, sizes, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var chart string
	for i := 0; i < b.N; i++ {
		chart = experiment.RenderSweepFigure(res, 2)
	}
	if len(chart) == 0 {
		b.Fatal("empty figure")
	}
}

// BenchmarkTable5GaussianPhasing regenerates Table 5: the same sweep
// under the Gaussian distribution, with the oscillation damping out.
func BenchmarkTable5GaussianPhasing(b *testing.B) {
	sizes := experiment.GeometricSizes(64, 1024)
	var res experiment.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunSweep(benchCfg(), 8, sizes, true)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.OscillationAmplitude(256, 1024), "lateAmplitude")
}

// BenchmarkFigure3 renders Figure 3 (the semi-log chart of Table 5).
func BenchmarkFigure3(b *testing.B) {
	sizes := experiment.GeometricSizes(64, 1024)
	res, err := experiment.RunSweep(benchCfg(), 8, sizes, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var chart string
	for i := 0; i < b.N; i++ {
		chart = experiment.RenderSweepFigure(res, 3)
	}
	if len(chart) == 0 {
		b.Fatal("empty figure")
	}
}

// BenchmarkSimplePRAnchor verifies the Section III closed form
// ē = (1/2, 1/2) against both solvers and simulation (E6).
func BenchmarkSimplePRAnchor(b *testing.B) {
	var a experiment.AnchorResult
	for i := 0; i < b.N; i++ {
		var err error
		a, err = experiment.RunAnchor(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(a.Experimental[0], "observedEmptyFrac") // paper: 0.536
}

// BenchmarkFanoutSweep runs E7: the generalized model on fanout-2, -4,
// and -8 structures.
func BenchmarkFanoutSweep(b *testing.B) {
	var rows []experiment.FanoutRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunFanoutSweep(experiment.Config{Trials: 2, Points: 300, Seed: 11}, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		d := r.PercentDifference
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worstPctDiff")
}

// BenchmarkPMRLineModel runs E8: the reconstructed line model against
// simulated PMR quadtrees.
func BenchmarkPMRLineModel(b *testing.B) {
	var rows []experiment.PMRRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunPMR(experiment.Config{Trials: 2, Points: 400, Seed: 11}, 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		d := r.PercentDifference
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worstPctDiff")
}

// BenchmarkStatModelPhasing runs E9: the exact statistical baseline and
// its non-damping oscillation (lim d̄_n does not exist).
func BenchmarkStatModelPhasing(b *testing.B) {
	var res experiment.StatModelResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiment.RunStatModel(8, 2048)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.EarlyAmplitude, "earlyAmplitude")
	b.ReportMetric(res.LateAmplitude, "lateAmplitude")
}

// BenchmarkExtHashUtilization runs E10: utilization of the bucketing
// baselines (extendible hashing's ln 2, grid file, EXCELL).
func BenchmarkExtHashUtilization(b *testing.B) {
	var rows []experiment.BucketRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunBucketBaselines(experiment.Config{Trials: 2, Seed: 11}, 8, 2048)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[0].Utilization, "exthashUtil") // ln 2 ≈ 0.693
}

// BenchmarkAgingCorrection runs E11: the area-weighted model ablation.
func BenchmarkAgingCorrection(b *testing.B) {
	var rows []experiment.AgingRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunAging(experiment.Config{Trials: 3, Points: 500, Seed: 11}, 6)
		if err != nil {
			b.Fatal(err)
		}
	}
	base, corr := 0.0, 0.0
	for _, r := range rows {
		if r.BaseErr < 0 {
			base -= r.BaseErr
		} else {
			base += r.BaseErr
		}
		if r.CorrectedErr < 0 {
			corr -= r.CorrectedErr
		} else {
			corr += r.CorrectedErr
		}
	}
	b.ReportMetric(base/float64(len(rows)), "baseMeanAbsErr%")
	b.ReportMetric(corr/float64(len(rows)), "correctedMeanAbsErr%")
}

// BenchmarkChurnSteadyState runs E12: the model under a dynamic
// insert/delete workload at stable size.
func BenchmarkChurnSteadyState(b *testing.B) {
	var r experiment.ChurnResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunChurn(experiment.Config{Trials: 2, Points: 400, Seed: 11}, 4, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ChurnedOccupancy, "churnedOcc")
	b.ReportMetric(r.FreshOccupancy, "freshOcc")
}

// BenchmarkPointQuadtreeContrast runs E13: order dependence of the
// classical point quadtree vs the canonical PR quadtree.
func BenchmarkPointQuadtreeContrast(b *testing.B) {
	var r experiment.PointQuadtreeResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunPointQuadtree(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*r.HeightSpread, "heightSpread%")
}

// BenchmarkRobustness runs E14: the uniform-data model on non-uniform
// inputs.
func BenchmarkRobustness(b *testing.B) {
	var rows []experiment.RobustnessRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunRobustness(benchCfg(), 4)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst := 0.0
	for _, r := range rows {
		d := r.PercentDifference
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "worstPctDiff")
}

// BenchmarkExtHashExactAnalysis runs E16: the exact F=2 recursion
// against a simulated extendible-hashing table.
func BenchmarkExtHashExactAnalysis(b *testing.B) {
	var r experiment.ExtHashAnalysis
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunExtHashAnalysis(experiment.Config{Trials: 2, Seed: 11}, 8, 1024)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ExactMean, "exactCycleMeanUtil")
}

// BenchmarkSpectrum runs E15: spectral diagnostics across fanouts.
func BenchmarkSpectrum(b *testing.B) {
	var rows []experiment.SpectrumRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiment.RunSpectrum([]int{2, 4, 8}, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].Gap, "octreeM8Gap")
}

// BenchmarkSearchCost runs E17: measured vs model-predicted point-search
// depth.
func BenchmarkSearchCost(b *testing.B) {
	var r experiment.SearchCostResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiment.RunSearchCost(experiment.Config{Trials: 2, Seed: 11}, 4, []int{256, 1024})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := r.Rows[len(r.Rows)-1]
	b.ReportMetric(last.MeasuredSearchDepth, "measuredDepth")
	b.ReportMetric(last.PredictedDepth, "predictedDepth")
}

// ---- Micro-benchmarks of the primitives ----

func BenchmarkModelSolveM8(b *testing.B) {
	model, err := popana.NewPointModel(8, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := model.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelSolveM32(b *testing.B) {
	model, err := popana.NewPointModel(32, 4)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := model.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuadtreeInsert(b *testing.B) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 8})
	rng := popana.NewRand(1)
	src := popana.NewUniform(qt.Region(), rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qt.Insert(src.Next(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuadtreeBulkLoad(b *testing.B) {
	rng := popana.NewRand(10)
	src := popana.NewUniform(popana.UnitSquare, rng)
	const batch = 10000
	pts := make([]popana.Point, batch)
	vals := make([]any, batch)
	for i := range pts {
		pts[i] = src.Next()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := popana.BulkLoadQuadtree(popana.QuadtreeConfig{Capacity: 8}, pts, vals)
		if err != nil {
			b.Fatal(err)
		}
		if t.Len() == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkSpatialInsertBatch(b *testing.B) {
	rng := popana.NewRand(11)
	src := popana.NewUniform(popana.UnitSquare, rng)
	const batch = 1000
	recs := make([]popana.SpatialRecord, batch)
	for i := range recs {
		recs[i] = popana.SpatialRecord{ID: uint64(i), Loc: src.Next()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		db := popana.NewSpatialDB()
		tab, err := db.CreateTable("t", 8, popana.Rect{})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := tab.InsertBatch(recs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuadtreeGet(b *testing.B) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 8})
	rng := popana.NewRand(2)
	src := popana.NewUniform(qt.Region(), rng)
	pts := make([]popana.Point, 100000)
	for i := range pts {
		pts[i] = src.Next()
		if _, err := qt.Insert(pts[i], nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := qt.Get(pts[i%len(pts)]); !ok {
			b.Fatal("lost point")
		}
	}
}

func BenchmarkQuadtreeRange(b *testing.B) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 8})
	src := popana.NewUniform(qt.Region(), popana.NewRand(3))
	for qt.Len() < 100000 {
		if _, err := qt.Insert(src.Next(), nil); err != nil {
			b.Fatal(err)
		}
	}
	q := popana.R(0.4, 0.4, 0.6, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n := qt.CountRange(q); n == 0 {
			b.Fatal("empty range")
		}
	}
}

func BenchmarkQuadtreeNearest(b *testing.B) {
	qt := popana.NewQuadtree(popana.QuadtreeConfig{Capacity: 8})
	rng := popana.NewRand(4)
	src := popana.NewUniform(qt.Region(), rng)
	for qt.Len() < 100000 {
		if _, err := qt.Insert(src.Next(), nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := qt.Nearest(popana.Pt(rng.Float64(), rng.Float64())); !ok {
			b.Fatal("nearest failed")
		}
	}
}

func BenchmarkExtHashPut(b *testing.B) {
	t, err := popana.NewExtHash(popana.ExtHashConfig{BucketCapacity: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := popana.NewRand(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := t.Put(rng.Uint64(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGridFilePut(b *testing.B) {
	f, err := popana.NewGridFile(popana.GridFileConfig{BucketCapacity: 8})
	if err != nil {
		b.Fatal(err)
	}
	rng := popana.NewRand(6)
	src := popana.NewUniform(popana.UnitSquare, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Put(src.Next(), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPM3Insert(b *testing.B) {
	tree, err := popana.NewPM3Tree(popana.PM3Config{})
	if err != nil {
		b.Fatal(err)
	}
	src := popana.NewShortSegments(tree.Region(), 0.05, popana.NewRand(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(src.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegionQuadtreeBuild(b *testing.B) {
	rng := popana.NewRand(9)
	const size = 128
	bm := make([][]bool, size)
	for y := range bm {
		bm[y] = make([]bool, size)
		for x := range bm[y] {
			bm[y][x] = rng.Float64() < 0.3
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := popana.FromBitmap(bm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPMRInsert(b *testing.B) {
	tree, err := popana.NewPMRTree(popana.PMRConfig{Threshold: 8, MaxDepth: 12})
	if err != nil {
		b.Fatal(err)
	}
	src := popana.NewShortSegments(tree.Region(), 0.05, popana.NewRand(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tree.Insert(src.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelInsert measures concurrent insert throughput through
// the sharded write path against the single-lock baseline at 1, 4, and
// 8 writer goroutines. One op = 8192 records landed; the internal/bench
// suite records the same workload in BENCH_*.json and cmd/bench gates
// on the 8-worker speedup on multi-core machines.
func BenchmarkParallelInsert(b *testing.B) {
	const total = 8192
	rng := popana.NewRand(77)
	src := popana.NewUniform(popana.UnitSquare, rng)
	seen := make(map[popana.Point]bool, total)
	recs := make([]popana.SpatialRecord, 0, total)
	for len(recs) < total {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, popana.SpatialRecord{ID: uint64(len(recs)), Loc: p})
	}
	for _, bc := range []struct {
		name    string
		bits    int
		workers int
	}{
		{"Sharded/1", 2, 1}, {"Sharded/4", 2, 4}, {"Sharded/8", 2, 8},
		{"Single/1", popana.SpatialSingleShard, 1},
		{"Single/4", popana.SpatialSingleShard, 4},
		{"Single/8", popana.SpatialSingleShard, 8},
	} {
		b.Run(bc.name, func(b *testing.B) {
			chunk := total / bc.workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				db := popana.NewSpatialDB()
				tab, err := db.CreateTableWith("t", popana.SpatialTableOptions{Capacity: 8, ShardBits: bc.bits})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				var wg sync.WaitGroup
				for w := 0; w < bc.workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for _, r := range recs[w*chunk : (w+1)*chunk] {
							if err := tab.Insert(r); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
			b.ReportMetric(total, "records/op")
		})
	}
}

// BenchmarkMixedRW90 measures a 90/10 read/write mix (window counts vs
// inserts) with 8 workers, sharded vs single-lock.
func BenchmarkMixedRW90(b *testing.B) {
	for _, bc := range []struct {
		name string
		bits int
	}{
		{"Sharded", 2},
		{"Single", popana.SpatialSingleShard},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const (
				workers      = 8
				prefill      = 20000
				opsPerWorker = 1000
			)
			db := popana.NewSpatialDB()
			tab, err := db.CreateTableWith("t", popana.SpatialTableOptions{Capacity: 8, ShardBits: bc.bits})
			if err != nil {
				b.Fatal(err)
			}
			src := popana.NewUniform(popana.UnitSquare, popana.NewRand(5))
			seen := make(map[popana.Point]bool, prefill)
			recs := make([]popana.SpatialRecord, 0, prefill)
			for len(recs) < prefill {
				p := src.Next()
				if seen[p] {
					continue
				}
				seen[p] = true
				recs = append(recs, popana.SpatialRecord{ID: uint64(len(recs)), Loc: p})
			}
			if err := tab.InsertBatch(recs); err != nil {
				b.Fatal(err)
			}
			if err := tab.Compact(); err != nil {
				b.Fatal(err)
			}
			var nextID atomic.Uint64
			nextID.Store(prefill)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := popana.NewRand(uint64(i)*64 + uint64(w) + 1)
						for op := 0; op < opsPerWorker; op++ {
							if op%10 == 9 {
								_ = tab.Insert(popana.SpatialRecord{ID: nextID.Add(1), Loc: popana.Pt(rng.Float64(), rng.Float64())})
								continue
							}
							x, y := rng.Float64()*0.95, rng.Float64()*0.95
							win := popana.R(x, y, x+0.05, y+0.05)
							if _, _, err := tab.CountRange(win, 0); err != nil {
								b.Error(err)
								return
							}
						}
					}(w)
				}
				wg.Wait()
			}
			b.ReportMetric(workers*opsPerWorker, "ops/op")
		})
	}
}
