package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Title", "name", "value").AlignLeft(0)
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "10000")
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line %q", lines[0])
	}
	// All rows share the same width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) > w+1 {
			t.Fatalf("ragged table:\n%s", s)
		}
	}
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "10000") {
		t.Fatalf("missing cells:\n%s", s)
	}
	// Numbers right-aligned: lines[3] is the first data row ("alpha"
	// then the padded "    1").
	if !strings.Contains(lines[3], "    1") || strings.HasSuffix(lines[3], "1 ") {
		t.Fatalf("right alignment broken:\n%s", s)
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "a", "b", "c")
	tb.AddRowf("%.2f", 3, 1.23456, "x")
	s := tb.String()
	if !strings.Contains(s, "3") || !strings.Contains(s, "1.23") || !strings.Contains(s, "x") {
		t.Fatalf("AddRowf rendering:\n%s", s)
	}
	if strings.Contains(s, "1.2345") {
		t.Fatalf("float format ignored:\n%s", s)
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("1", "2", "3") // more cells than headers must not panic
	if s := tb.String(); !strings.Contains(s, "3") {
		t.Fatalf("extra cells dropped:\n%s", s)
	}
}

func TestFormatVec(t *testing.T) {
	got := FormatVec([]float64{0.5, 0.25})
	if got != "(0.500, 0.250)" {
		t.Fatalf("FormatVec = %q", got)
	}
}

func TestChartRendersSeries(t *testing.T) {
	ch := Chart{
		Title:    "test",
		XLabel:   "n",
		YLabel:   "occ",
		SemiLogX: true,
		Width:    40,
		Height:   10,
		Series: []Series{{
			Name: "s",
			X:    []float64{64, 128, 256, 512, 1024},
			Y:    []float64{3.8, 3.6, 3.8, 3.5, 3.8},
		}},
	}
	s := ch.Render()
	if !strings.Contains(s, "test") || !strings.Contains(s, "*") {
		t.Fatalf("chart missing content:\n%s", s)
	}
	if !strings.Contains(s, "n (log scale)") {
		t.Fatalf("x label missing:\n%s", s)
	}
	// Frame present.
	if !strings.Contains(s, "+----") {
		t.Fatalf("axis missing:\n%s", s)
	}
}

func TestChartEmpty(t *testing.T) {
	s := Chart{Title: "empty"}.Render()
	if !strings.Contains(s, "(no data)") {
		t.Fatalf("empty chart: %q", s)
	}
}

func TestChartConstantSeries(t *testing.T) {
	ch := Chart{
		Series: []Series{{Name: "flat", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}},
	}
	s := ch.Render()
	if s == "" || strings.Contains(s, "NaN") {
		t.Fatalf("constant series render:\n%s", s)
	}
}

func TestChartMultipleSeriesLegend(t *testing.T) {
	ch := Chart{
		Series: []Series{
			{Name: "uniform", X: []float64{1, 10}, Y: []float64{1, 2}},
			{Name: "gaussian", X: []float64{1, 10}, Y: []float64{2, 1}},
		},
	}
	s := ch.Render()
	if !strings.Contains(s, "uniform") || !strings.Contains(s, "gaussian") {
		t.Fatalf("legend missing:\n%s", s)
	}
}

func TestChartSinglePoint(t *testing.T) {
	ch := Chart{Series: []Series{{Name: "pt", X: []float64{5}, Y: []float64{1}}}}
	if s := ch.Render(); s == "" {
		t.Fatal("single-point chart empty")
	}
}
