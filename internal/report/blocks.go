package report

import (
	"fmt"
	"strings"

	"popana/internal/geom"
)

// Block is one leaf block for DrawBlocks: its rectangle and occupancy.
type Block struct {
	Rect      geom.Rect
	Occupancy int
}

// DrawBlocks renders a decomposition as ASCII art: each character cell
// shows the occupancy digit of the leaf block covering it ('.' for
// empty, '+' for 10 or more), with block boundaries implied by the
// digit changes. width counts character columns; the aspect ratio is
// corrected for terminal cells being roughly twice as tall as wide.
func DrawBlocks(region geom.Rect, blocks []Block, width int) string {
	if width <= 0 {
		width = 64
	}
	height := width / 2
	if height < 1 {
		height = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, b := range blocks {
		// Map block rect to character cells.
		c0 := int(float64(width) * (b.Rect.MinX - region.MinX) / region.Width())
		c1 := int(float64(width) * (b.Rect.MaxX - region.MinX) / region.Width())
		r0 := int(float64(height) * (region.MaxY - b.Rect.MaxY) / region.Height())
		r1 := int(float64(height) * (region.MaxY - b.Rect.MinY) / region.Height())
		if c1 <= c0 {
			c1 = c0 + 1
		}
		if r1 <= r0 {
			r1 = r0 + 1
		}
		ch := occupancyGlyph(b.Occupancy)
		for r := max(r0, 0); r < min(r1, height); r++ {
			for c := max(c0, 0); c < min(c1, width); c++ {
				grid[r][c] = ch
			}
		}
	}
	var sb strings.Builder
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteString("|\n")
	}
	sb.WriteString("+" + strings.Repeat("-", width) + "+\n")
	sb.WriteString(fmt.Sprintf("%d blocks; '.'=0 points, digits=occupancy, '+'=10+\n", len(blocks)))
	return sb.String()
}

func occupancyGlyph(occ int) byte {
	switch {
	case occ == 0:
		return '.'
	case occ < 10:
		return byte('0' + occ)
	default:
		return '+'
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
