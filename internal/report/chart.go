package report

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (x, y) points on a chart.
type Series struct {
	Name   string
	X, Y   []float64
	Marker byte
}

// Chart renders one or more series as an ASCII scatter/line chart.
// SemiLogX reproduces the paper's Figures 2 and 3, which plot average
// node occupancy against the number of points on a semi-log scale.
type Chart struct {
	Title    string
	XLabel   string
	YLabel   string
	Width    int // plot area columns; zero selects 64
	Height   int // plot area rows; zero selects 16
	SemiLogX bool
	Series   []Series
}

// Render draws the chart.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w == 0 {
		w = 64
	}
	if h == 0 {
		h = 16
	}
	tx := func(x float64) float64 {
		if c.SemiLogX {
			return math.Log(x)
		}
		return x
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			minX = math.Min(minX, tx(s.X[i]))
			maxX = math.Max(maxX, tx(s.X[i]))
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return c.Title + "\n(no data)\n"
	}
	// Pad the y range slightly so extremes don't sit on the frame.
	if maxY == minY {
		maxY += 1
		minY -= 1
	} else {
		pad := (maxY - minY) * 0.05
		maxY += pad
		minY -= pad
	}
	if maxX == minX {
		maxX += 1
		minX -= 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		marker := s.Marker
		if marker == 0 {
			marker = "*+ox#@"[si%6]
		}
		// Plot points, then connect consecutive points with linear
		// interpolation so the cycles read as curves.
		var prevC, prevR = -1, -1
		for i := range s.X {
			col := int(math.Round((tx(s.X[i]) - minX) / (maxX - minX) * float64(w-1)))
			row := int(math.Round((maxY - s.Y[i]) / (maxY - minY) * float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			if prevC >= 0 {
				steps := maxInt(absInt(col-prevC), absInt(row-prevR))
				for t := 1; t < steps; t++ {
					cc := prevC + (col-prevC)*t/steps
					rr := prevR + (row-prevR)*t/steps
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '.'
					}
				}
			}
			grid[row][col] = marker
			prevC, prevR = col, row
		}
	}
	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yTop := fmt.Sprintf("%.3g", maxY)
	yBot := fmt.Sprintf("%.3g", minY)
	labelW := maxInt(len(yTop), len(yBot))
	for r := 0; r < h; r++ {
		switch r {
		case 0:
			fmt.Fprintf(&b, "%*s |", labelW, yTop)
		case h - 1:
			fmt.Fprintf(&b, "%*s |", labelW, yBot)
		default:
			fmt.Fprintf(&b, "%*s |", labelW, "")
		}
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%*s +%s\n", labelW, "", strings.Repeat("-", w))
	xl, xr := minX, maxX
	if c.SemiLogX {
		xl, xr = math.Exp(minX), math.Exp(maxX)
	}
	left := fmt.Sprintf("%.4g", xl)
	right := fmt.Sprintf("%.4g", xr)
	gap := w - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%*s %s%s%s\n", labelW, "", left, strings.Repeat(" ", gap), right)
	if c.XLabel != "" {
		scale := ""
		if c.SemiLogX {
			scale = " (log scale)"
		}
		fmt.Fprintf(&b, "%*s %s%s\n", labelW, "", c.XLabel, scale)
	}
	if len(c.Series) > 1 || c.YLabel != "" {
		legend := make([]string, 0, len(c.Series)+1)
		if c.YLabel != "" {
			legend = append(legend, "y: "+c.YLabel)
		}
		for si, s := range c.Series {
			marker := s.Marker
			if marker == 0 {
				marker = "*+ox#@"[si%6]
			}
			legend = append(legend, fmt.Sprintf("%c %s", marker, s.Name))
		}
		fmt.Fprintf(&b, "%*s %s\n", labelW, "", strings.Join(legend, "   "))
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}
