package report

import (
	"strings"
	"testing"

	"popana/internal/geom"
)

func TestDrawBlocksBasic(t *testing.T) {
	region := geom.R(0, 0, 1, 1)
	blocks := []Block{
		{Rect: geom.R(0, 0, 0.5, 0.5), Occupancy: 0},
		{Rect: geom.R(0.5, 0, 1, 0.5), Occupancy: 3},
		{Rect: geom.R(0, 0.5, 0.5, 1), Occupancy: 12},
		{Rect: geom.R(0.5, 0.5, 1, 1), Occupancy: 1},
	}
	s := DrawBlocks(region, blocks, 40)
	if !strings.Contains(s, ".") || !strings.Contains(s, "3") || !strings.Contains(s, "+") || !strings.Contains(s, "1") {
		t.Fatalf("glyphs missing:\n%s", s)
	}
	if !strings.Contains(s, "4 blocks") {
		t.Fatalf("legend missing:\n%s", s)
	}
	// The north-west quadrant (occupancy 12) renders in the top-left.
	lines := strings.Split(s, "\n")
	if len(lines) < 3 || lines[1][1] != '+' {
		t.Fatalf("orientation wrong (top-left should be '+'):\n%s", s)
	}
}

func TestDrawBlocksTinyBlocks(t *testing.T) {
	// Blocks smaller than a character cell still paint at least one
	// cell and never panic.
	region := geom.R(0, 0, 1, 1)
	var blocks []Block
	for i := 0; i < 64; i++ {
		x := float64(i%8) / 8
		y := float64(i/8) / 8
		blocks = append(blocks, Block{Rect: geom.R(x, y, x+1.0/8, y+1.0/8), Occupancy: i % 11})
	}
	s := DrawBlocks(region, blocks, 8) // narrower than the grid
	if s == "" {
		t.Fatal("empty drawing")
	}
}

func TestDrawBlocksDefaults(t *testing.T) {
	s := DrawBlocks(geom.UnitSquare, nil, 0)
	if !strings.Contains(s, "0 blocks") {
		t.Fatalf("empty drawing:\n%s", s)
	}
}

func TestOccupancyGlyph(t *testing.T) {
	if occupancyGlyph(0) != '.' || occupancyGlyph(7) != '7' || occupancyGlyph(10) != '+' || occupancyGlyph(42) != '+' {
		t.Fatal("glyph mapping wrong")
	}
}
