// Package report renders experiment results as aligned text tables and
// ASCII charts, so the benchmark harness can print the same artifacts —
// Tables 1-5 and Figures 2-3 — that the paper's evaluation contains,
// directly to a terminal or into EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table with a title.
type Table struct {
	Title   string
	Header  []string
	rows    [][]string
	alignL  map[int]bool
	started bool
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header, alignL: map[int]bool{}}
}

// AlignLeft marks columns (by index) as left-aligned; columns default to
// right alignment, which suits numbers.
func (t *Table) AlignLeft(cols ...int) *Table {
	for _, c := range cols {
		t.alignL[c] = true
	}
	return t
}

// AddRow appends a row of preformatted cells.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from values: strings pass through, float64
// render with the given default format, ints with %d.
func (t *Table) AddRowf(floatFormat string, values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case string:
			cells[i] = x
		case float64:
			cells[i] = fmt.Sprintf(floatFormat, x)
		case int:
			cells[i] = fmt.Sprintf("%d", x)
		default:
			cells[i] = fmt.Sprint(x)
		}
	}
	t.AddRow(cells...)
}

// String renders the table.
func (t *Table) String() string {
	ncols := len(t.Header)
	for _, r := range t.rows {
		if len(r) > ncols {
			ncols = len(r)
		}
	}
	widths := make([]int, ncols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(r []string) {
		for i := 0; i < ncols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(cell)
			if t.alignL[i] {
				b.WriteString(cell)
				if i < ncols-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			} else {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for i, w := range widths {
		total += w
		if i > 0 {
			total += 2
		}
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatVec renders a distribution vector the way the paper's Table 1
// prints them: parenthesized three-decimal proportions.
func FormatVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.3f", x)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
