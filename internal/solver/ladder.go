package solver

import (
	"errors"
	"fmt"

	"popana/internal/vecmat"
)

// ErrLadderExhausted is wrapped by the error Ladder returns when every
// rung — Newton and each damped fixed-point variant — has failed.
var ErrLadderExhausted = errors.New("solver: fallback ladder exhausted")

// Attempt records one rung of a fallback-ladder solve: which method ran
// (or was failed by fault injection before running), with what damping,
// and how it ended.
type Attempt struct {
	// Method is "newton" or "fixed-point".
	Method string
	// Damping is the relaxation factor ω of a fixed-point rung; zero for
	// Newton.
	Damping float64
	// Iterations and Residual are the rung's final diagnostics (zero when
	// the rung was failed by fault injection before running).
	Iterations int
	Residual   float64
	// Err is nil iff the rung converged.
	Err error
}

// LadderConfig tunes a fallback-ladder solve.
type LadderConfig struct {
	// Options applies to every rung (Damping is overridden per rung).
	Options Options
	// MinDamping is the smallest relaxation factor tried before giving
	// up. Zero means 1/16.
	MinDamping float64
	// Fault, when non-nil, is consulted before each rung with the rung's
	// method name and damping; returning a non-nil error fails the rung
	// without running it. It exists as a fault-injection hook for chaos
	// tests and stays nil in production.
	Fault func(method string, damping float64) error
}

// Ladder solves the fixed-point problem x = f(x) by an escalating
// fallback ladder: Newton–Raphson on F(x) = f(x) − x first (quadratic
// convergence when it works), then fixed-point iteration with damping
// ω = 1, 1/2, 1/4, ..., MinDamping. Damping trades speed for stability:
// an undamped iteration that oscillates between two states converges
// once averaged with its previous iterate, so each rung retries the
// solve with a more conservative step — backoff in step size rather
// than in time. The first converged rung wins; every attempt, including
// failures, is returned for diagnostics.
func Ladder(f func(vecmat.Vec) vecmat.Vec, x0 vecmat.Vec, cfg LadderConfig) (Result, []Attempt, error) {
	minDamping := cfg.MinDamping
	if minDamping <= 0 {
		minDamping = 1.0 / 16
	}
	var attempts []Attempt
	run := func(method string, damping float64, solve func() (Result, error)) (Result, bool) {
		if cfg.Fault != nil {
			if err := cfg.Fault(method, damping); err != nil {
				attempts = append(attempts, Attempt{Method: method, Damping: damping, Err: err})
				return Result{}, false
			}
		}
		res, err := solve()
		attempts = append(attempts, Attempt{
			Method:     method,
			Damping:    damping,
			Iterations: res.Iterations,
			Residual:   res.Residual,
			Err:        err,
		})
		return res, err == nil && res.Converged
	}

	F := func(x vecmat.Vec) vecmat.Vec { return f(x).Sub(x) }
	if res, ok := run("newton", 0, func() (Result, error) {
		return Newton(F, x0, cfg.Options)
	}); ok {
		return res, attempts, nil
	}
	for omega := 1.0; omega >= minDamping*(1-1e-12); omega /= 2 {
		opts := cfg.Options
		opts.Damping = omega
		if res, ok := run("fixed-point", omega, func() (Result, error) {
			return FixedPoint(f, x0, opts)
		}); ok {
			return res, attempts, nil
		}
	}
	return Result{}, attempts,
		fmt.Errorf("solver: all %d ladder rungs failed: %w", len(attempts), ErrLadderExhausted)
}
