// Package solver contains the nonlinear equation solvers behind the
// population model.
//
// The steady-state condition of Section III of the paper, ē·T = a(ē)·ē,
// is a system of quadratic equations whose unique positive solution the
// authors found "numerically using an iterative technique which converged
// on the positive solution". Two independent methods are provided:
//
//   - FixedPoint: damped fixed-point iteration x ← (1-ω)x + ω·f(x),
//     the method the paper used (with normalization folded into f);
//   - Newton: Newton–Raphson with a numerically differenced Jacobian,
//     used by the tests to cross-validate the fixed point to ~1e-12.
//
// Both report convergence diagnostics instead of silently returning a
// possibly-bogus answer.
package solver

import (
	"errors"
	"fmt"
	"math"

	"popana/internal/fmath"
	"popana/internal/vecmat"
)

// ErrMaxIterations is wrapped by errors returned when an iteration limit
// is exhausted before the tolerance is met.
var ErrMaxIterations = errors.New("solver: maximum iterations exceeded")

// Options tunes an iterative solve. The zero value selects sensible
// defaults (tolerance 1e-14, 10000 iterations, no damping).
type Options struct {
	// Tolerance is the convergence threshold on the infinity norm of the
	// step (FixedPoint) or the residual (Newton). Zero means 1e-14.
	Tolerance float64
	// MaxIterations bounds the iteration count. Zero means 10000.
	MaxIterations int
	// Damping is the relaxation factor ω in (0, 1] for FixedPoint.
	// Zero means 1 (undamped).
	Damping float64
}

func (o Options) withDefaults() Options {
	if fmath.Zero(o.Tolerance) {
		o.Tolerance = 1e-14
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 10000
	}
	if fmath.Zero(o.Damping) {
		o.Damping = 1
	}
	return o
}

// Result reports how a solve went.
type Result struct {
	X          vecmat.Vec // the solution estimate
	Iterations int        // iterations actually used
	Residual   float64    // final step/residual infinity norm
	Converged  bool
}

// FixedPoint iterates x ← (1-ω)·x + ω·f(x) from x0 until the step norm
// falls below the tolerance. f must not retain or mutate its argument.
func FixedPoint(f func(vecmat.Vec) vecmat.Vec, x0 vecmat.Vec, opts Options) (Result, error) {
	o := opts.withDefaults()
	if o.Damping <= 0 || o.Damping > 1 {
		return Result{}, fmt.Errorf("solver: damping %v out of (0,1]", opts.Damping)
	}
	x := x0.Clone()
	var step float64
	for it := 1; it <= o.MaxIterations; it++ {
		fx := f(x)
		if len(fx) != len(x) {
			return Result{}, fmt.Errorf("solver: f changed dimension from %d to %d", len(x), len(fx))
		}
		next := x.Scale(1 - o.Damping).Add(fx.Scale(o.Damping))
		step = next.Sub(x).NormInf()
		x = next
		if !isFinite(x) {
			return Result{X: x, Iterations: it, Residual: math.Inf(1)},
				fmt.Errorf("solver: fixed-point iterate diverged at iteration %d", it)
		}
		if step <= o.Tolerance {
			return Result{X: x, Iterations: it, Residual: step, Converged: true}, nil
		}
	}
	return Result{X: x, Iterations: o.MaxIterations, Residual: step},
		fmt.Errorf("fixed-point residual %.3g after %d iterations: %w", step, o.MaxIterations, ErrMaxIterations)
}

// Newton solves F(x) = 0 by Newton–Raphson from x0, using a forward
// finite-difference Jacobian. F must not retain or mutate its argument.
func Newton(F func(vecmat.Vec) vecmat.Vec, x0 vecmat.Vec, opts Options) (Result, error) {
	o := opts.withDefaults()
	x := x0.Clone()
	var res float64
	for it := 1; it <= o.MaxIterations; it++ {
		fx := F(x)
		if len(fx) != len(x) {
			return Result{}, fmt.Errorf("solver: F must map R^n to R^n, got %d to %d", len(x), len(fx))
		}
		res = fx.NormInf()
		if res <= o.Tolerance {
			return Result{X: x, Iterations: it, Residual: res, Converged: true}, nil
		}
		j := jacobian(F, x, fx)
		step, err := vecmat.Solve(j, fx)
		if err != nil {
			return Result{X: x, Iterations: it, Residual: res},
				fmt.Errorf("solver: Newton Jacobian singular at iteration %d: %w", it, err)
		}
		// Backtracking line search: halve the step until the residual
		// decreases, guarding against overshoot on strongly curved F.
		lambda := 1.0
		for k := 0; k < 40; k++ {
			trial := x.Sub(step.Scale(lambda))
			if r := F(trial).NormInf(); r < res || k == 39 {
				x = trial
				break
			}
			lambda /= 2
		}
		if !isFinite(x) {
			return Result{X: x, Iterations: it, Residual: math.Inf(1)},
				fmt.Errorf("solver: Newton iterate diverged at iteration %d", it)
		}
	}
	return Result{X: x, Iterations: o.MaxIterations, Residual: res},
		fmt.Errorf("newton residual %.3g after %d iterations: %w", res, o.MaxIterations, ErrMaxIterations)
}

// jacobian builds the forward-difference Jacobian of F at x, reusing the
// already-computed F(x).
func jacobian(F func(vecmat.Vec) vecmat.Vec, x, fx vecmat.Vec) *vecmat.Mat {
	n := len(x)
	j := vecmat.NewMat(n, n)
	for c := 0; c < n; c++ {
		h := 1e-8 * math.Max(math.Abs(x[c]), 1)
		xp := x.Clone()
		xp[c] += h
		fp := F(xp)
		for r := 0; r < n; r++ {
			j.Set(r, c, (fp[r]-fx[r])/h)
		}
	}
	return j
}

// Bisect finds a root of the scalar function f in [lo, hi], which must
// bracket a sign change. It is used for scalar calibration problems
// (e.g. fitting the chord-crossing probability of the line model).
func Bisect(f func(float64) float64, lo, hi float64, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if fmath.Zero(flo) {
		return lo, nil
	}
	if fmath.Zero(fhi) {
		return hi, nil
	}
	if (flo > 0) == (fhi > 0) {
		return 0, fmt.Errorf("solver: Bisect endpoints do not bracket a root: f(%g)=%g, f(%g)=%g", lo, flo, hi, fhi)
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fmath.Zero(fm) {
			return mid, nil
		}
		if (fm > 0) == (flo > 0) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

func isFinite(v vecmat.Vec) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
