package solver

import (
	"errors"
	"math"
	"testing"

	"popana/internal/vecmat"
)

func TestFixedPointLinearContraction(t *testing.T) {
	// x ← x/2 + 1 converges to 2.
	f := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{x[0]/2 + 1}
	}
	res, err := FixedPoint(f, vecmat.Vec{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
	if math.Abs(res.X[0]-2) > 1e-10 {
		t.Fatalf("fixed point %v, want 2", res.X[0])
	}
}

func TestFixedPointMultidimensional(t *testing.T) {
	// Rotation-contraction with fixed point (1, 1).
	f := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{
			0.5*x[1] + 0.5,
			0.5*x[0] + 0.5,
		}
	}
	res, err := FixedPoint(f, vecmat.Vec{0, 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.X {
		if math.Abs(res.X[i]-1) > 1e-10 {
			t.Fatalf("fixed point %v, want (1,1)", res.X)
		}
	}
}

func TestFixedPointDampingStabilizes(t *testing.T) {
	// x ← 3 - x oscillates forever undamped but converges to 1.5 with
	// damping 0.5 (the damped map is a strict contraction).
	f := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{3 - x[0]} }
	if _, err := FixedPoint(f, vecmat.Vec{0}, Options{MaxIterations: 100}); err == nil {
		t.Fatal("undamped oscillation converged unexpectedly")
	}
	res, err := FixedPoint(f, vecmat.Vec{0}, Options{Damping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1.5) > 1e-10 {
		t.Fatalf("damped fixed point %v, want 1.5", res.X[0])
	}
}

func TestFixedPointMaxIterations(t *testing.T) {
	f := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{x[0] + 1} } // no fixed point
	_, err := FixedPoint(f, vecmat.Vec{0}, Options{MaxIterations: 50})
	if !errors.Is(err, ErrMaxIterations) {
		t.Fatalf("err = %v, want ErrMaxIterations", err)
	}
}

func TestFixedPointRejectsBadDamping(t *testing.T) {
	f := func(x vecmat.Vec) vecmat.Vec { return x }
	if _, err := FixedPoint(f, vecmat.Vec{0}, Options{Damping: 1.5}); err == nil {
		t.Fatal("damping 1.5 accepted")
	}
}

func TestFixedPointDimensionChange(t *testing.T) {
	f := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{1, 2} }
	if _, err := FixedPoint(f, vecmat.Vec{0}, Options{}); err == nil {
		t.Fatal("dimension change accepted")
	}
}

func TestNewtonScalarRoot(t *testing.T) {
	// x² - 4 = 0 from x₀ = 3.
	F := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{x[0]*x[0] - 4} }
	res, err := Newton(F, vecmat.Vec{3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-8 {
		t.Fatalf("root %v, want 2", res.X[0])
	}
}

func TestNewtonSystem(t *testing.T) {
	// x+y = 3, x·y = 2 → (1,2) or (2,1).
	F := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{x[0] + x[1] - 3, x[0]*x[1] - 2}
	}
	res, err := Newton(F, vecmat.Vec{0.5, 2.5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := F(res.X)
	if r.NormInf() > 1e-10 {
		t.Fatalf("residual %v at %v", r.NormInf(), res.X)
	}
}

func TestNewtonQuadraticConvergenceIsFast(t *testing.T) {
	F := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{x[0]*x[0]*x[0] - 8} }
	res, err := Newton(F, vecmat.Vec{3}, Options{Tolerance: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 20 {
		t.Fatalf("Newton took %d iterations for a cubic", res.Iterations)
	}
}

func TestNewtonSingularJacobian(t *testing.T) {
	// F(x) = 1 (constant): zero Jacobian.
	F := func(x vecmat.Vec) vecmat.Vec { return vecmat.Vec{1} }
	if _, err := Newton(F, vecmat.Vec{0}, Options{MaxIterations: 10}); err == nil {
		t.Fatal("constant F solved")
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root %v, want √2", root)
	}
}

func TestBisectExactEndpoint(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12)
	if err != nil || root != 0 {
		t.Fatalf("root %v err %v", root, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, -1, 1, 1e-9); err == nil {
		t.Fatal("non-bracketing interval accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Tolerance != 1e-14 || o.MaxIterations != 10000 || o.Damping != 1 {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit values survive.
	o = Options{Tolerance: 1e-3, MaxIterations: 7, Damping: 0.25}.withDefaults()
	if o.Tolerance != 1e-3 || o.MaxIterations != 7 || o.Damping != 0.25 {
		t.Fatalf("explicit options clobbered: %+v", o)
	}
}
