package solver

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"popana/internal/vecmat"
)

// TestLadderNewtonWinsFirst: on a benign linear contraction the Newton
// rung converges immediately and no fallback runs.
func TestLadderNewtonWinsFirst(t *testing.T) {
	f := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{0.5*x[0] + 1} // fixed point 2
	}
	res, attempts, err := Ladder(f, vecmat.Vec{0}, LadderConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.X[0]-2) > 1e-10 {
		t.Fatalf("result %+v", res)
	}
	if len(attempts) != 1 || attempts[0].Method != "newton" || attempts[0].Err != nil {
		t.Fatalf("attempts %+v", attempts)
	}
}

// TestLadderDampedRungRescuesOscillation is the case the ladder exists
// for: the coordinate-swap map f(x, y) = (y, x). Newton fails outright
// (the Jacobian of f(v)−v is singular everywhere), the undamped fixed
// point oscillates forever between (a, b) and (b, a), but ω = 1/2
// averages the oscillation away and converges in two iterations.
func TestLadderDampedRungRescuesOscillation(t *testing.T) {
	swap := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{x[1], x[0]}
	}
	x0 := vecmat.Vec{0.25, 0.75}
	res, attempts, err := Ladder(swap, x0, LadderConfig{
		Options: Options{MaxIterations: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("result %+v", res)
	}
	if math.Abs(res.X[0]-0.5) > 1e-12 || math.Abs(res.X[1]-0.5) > 1e-12 {
		t.Fatalf("converged to %v, want (0.5, 0.5)", res.X)
	}
	if len(attempts) != 3 {
		t.Fatalf("attempts %+v", attempts)
	}
	if attempts[0].Method != "newton" || attempts[0].Err == nil {
		t.Fatalf("Newton should have failed: %+v", attempts[0])
	}
	if attempts[1].Damping != 1 || attempts[1].Err == nil {
		t.Fatalf("undamped rung should have oscillated: %+v", attempts[1])
	}
	if attempts[2].Damping != 0.5 || attempts[2].Err != nil {
		t.Fatalf("damped rung should have converged: %+v", attempts[2])
	}
}

// TestLadderFaultHookFailsRungs: a fault hook that rejects Newton and
// the undamped rung forces the solve onto the first damped rung.
func TestLadderFaultHookFailsRungs(t *testing.T) {
	injected := errors.New("injected")
	f := func(x vecmat.Vec) vecmat.Vec {
		return vecmat.Vec{0.5*x[0] + 1}
	}
	res, attempts, err := Ladder(f, vecmat.Vec{0}, LadderConfig{
		Fault: func(method string, damping float64) error {
			if method == "newton" || damping == 1 {
				return injected
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || math.Abs(res.X[0]-2) > 1e-10 {
		t.Fatalf("result %+v", res)
	}
	if len(attempts) != 3 {
		t.Fatalf("attempts %+v", attempts)
	}
	if !errors.Is(attempts[0].Err, injected) || !errors.Is(attempts[1].Err, injected) {
		t.Fatalf("fault hook not recorded: %+v", attempts[:2])
	}
	if attempts[2].Method != "fixed-point" || attempts[2].Damping != 0.5 || attempts[2].Err != nil {
		t.Fatalf("surviving rung %+v", attempts[2])
	}
}

// TestLadderExhausted: when every rung is failed the error wraps
// ErrLadderExhausted and every attempt carries an error.
func TestLadderExhausted(t *testing.T) {
	f := func(x vecmat.Vec) vecmat.Vec { return x.Clone() }
	_, attempts, err := Ladder(f, vecmat.Vec{1}, LadderConfig{
		Fault: func(method string, damping float64) error {
			return fmt.Errorf("forced failure of %s ω=%g", method, damping)
		},
	})
	if !errors.Is(err, ErrLadderExhausted) {
		t.Fatalf("err = %v", err)
	}
	// Newton plus ω = 1, 1/2, 1/4, 1/8, 1/16.
	if len(attempts) != 6 {
		t.Fatalf("attempts %+v", attempts)
	}
	for i, a := range attempts {
		if a.Err == nil {
			t.Fatalf("attempt %d succeeded: %+v", i, a)
		}
	}
}

// TestLadderMinDamping: a custom floor shortens the ladder.
func TestLadderMinDamping(t *testing.T) {
	_, attempts, err := Ladder(func(x vecmat.Vec) vecmat.Vec { return x.Clone() },
		vecmat.Vec{1}, LadderConfig{
			MinDamping: 0.5,
			Fault: func(string, float64) error {
				return errors.New("forced")
			},
		})
	if !errors.Is(err, ErrLadderExhausted) {
		t.Fatalf("err = %v", err)
	}
	if len(attempts) != 3 { // newton, ω=1, ω=1/2
		t.Fatalf("attempts %+v", attempts)
	}
}
