package excell

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func randomPoints(rng *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

func TestPutGet(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 3})
	pts := randomPoints(xrand.New(1), 1000)
	for i, p := range pts {
		replaced, err := f.Put(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatal("fresh point reported replaced")
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 1000 {
		t.Fatalf("Len = %d", f.Len())
	}
	for i, p := range pts {
		v, ok := f.Get(p)
		if !ok || v != i {
			t.Fatalf("Get(%v) = %v, %v; want %d", p, v, ok, i)
		}
	}
	if _, ok := f.Get(geom.Pt(0.111111, 0.77777)); ok {
		t.Fatal("found absent point")
	}
}

func TestPutOutOfRegion(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 2})
	if _, err := f.Put(geom.Pt(-0.5, 0.5), nil); err == nil {
		t.Fatal("out-of-region point accepted")
	}
	if _, ok := f.Get(geom.Pt(2, 2)); ok {
		t.Fatal("Get out of region returned ok")
	}
}

func TestSameCellReplaces(t *testing.T) {
	// Two points in the same resolution cell (2^-31 apart) share a key.
	f := MustNew(Config{BucketCapacity: 2})
	a := geom.Pt(0.5, 0.5)
	b := geom.Pt(0.5+1e-12, 0.5)
	if _, err := f.Put(a, "a"); err != nil {
		t.Fatal(err)
	}
	replaced, err := f.Put(b, "b")
	if err != nil || !replaced {
		t.Fatalf("same-cell put = %v, %v", replaced, err)
	}
	if f.Len() != 1 {
		t.Fatalf("Len = %d", f.Len())
	}
}

func TestDelete(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 2})
	pts := randomPoints(xrand.New(3), 300)
	for i, p := range pts {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		if !f.Delete(p) {
			t.Fatalf("Delete(%v) failed", p)
		}
	}
	if f.Len() != 0 {
		t.Fatalf("Len = %d", f.Len())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := xrand.New(5)
	f := MustNew(Config{BucketCapacity: 4})
	pts := randomPoints(rng, 400)
	for i, p := range pts {
		if _, err := f.Put(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 50; trial++ {
		x1, y1 := rng.Float64(), rng.Float64()
		x2, y2 := rng.Float64(), rng.Float64()
		q := geom.R(math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2))
		want := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				want++
			}
		}
		got := 0
		f.Range(q, func(geom.Point, any) bool { got++; return true })
		if got != want {
			t.Fatalf("trial %d: range %d, want %d", trial, got, want)
		}
	}
}

func TestUtilizationPlausible(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 8})
	rng := xrand.New(7)
	for f.Len() < 4000 {
		if _, err := f.Put(geom.Pt(rng.Float64(), rng.Float64()), nil); err != nil {
			t.Fatal(err)
		}
	}
	// EXCELL on uniform points behaves like extendible hashing: near
	// ln 2 with oscillation.
	if u := f.Utilization(); u < 0.55 || u > 0.85 {
		t.Fatalf("utilization %v", u)
	}
}

func TestMortonKeyLocality(t *testing.T) {
	// Directory doubling must decompose space regularly: all four
	// corner regions must land in different buckets once the directory
	// has depth ≥ 2. Proxy check: the four corner points have distinct
	// 2-bit key prefixes.
	f := MustNew(Config{BucketCapacity: 1})
	corners := []geom.Point{
		geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.1), geom.Pt(0.1, 0.9), geom.Pt(0.9, 0.9),
	}
	prefixes := map[uint64]bool{}
	for _, p := range corners {
		prefixes[f.key(p)>>62] = true
	}
	if len(prefixes) != 4 {
		t.Fatalf("corner prefixes not distinct: %v", prefixes)
	}
}

func TestCensusDepthsAndAreas(t *testing.T) {
	f := MustNew(Config{BucketCapacity: 4})
	rng := xrand.New(9)
	for f.Len() < 800 {
		if _, err := f.Put(geom.Pt(rng.Float64(), rng.Float64()), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := f.Census()
	if c.Items != 800 {
		t.Fatalf("items %d", c.Items)
	}
	total := 0.0
	for _, a := range c.AreaByOccupancy {
		total += a
	}
	// Bucket regions partition space, so relative areas sum to 1.
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("areas sum to %v", total)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{BucketCapacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{BucketCapacity: 1, Region: geom.R(3, 3, 2, 2)}); err == nil {
		t.Error("inverted region accepted")
	}
}
