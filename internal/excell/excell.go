// Package excell implements EXCELL, Tamminen's extendible cell method
// [Tamm81, Tamm83]: a regular, data-independent decomposition of the
// plane whose directory doubles as a whole when any cell's bucket
// overflows a region that cannot be shared further. Structurally it is
// extendible hashing applied to the bit-interleaved (Morton) encoding of
// point coordinates, which is exactly how this implementation realizes
// it: the high bits of the Morton code alternate y/x halvings, so each
// directory doubling halves cells along alternating axes, and a bucket
// of local depth l covers a region of relative area 2^-l.
//
// EXCELL is one of the bucketing methods the paper's introduction cites
// (Tamminen published its statistical analysis); here it provides a
// further bucket population for the model comparison experiments.
package excell

import (
	"errors"
	"fmt"

	"popana/internal/exthash"
	"popana/internal/geom"
	"popana/internal/stats"
)

// CoordBits is the per-axis resolution of the Morton encoding. Two
// distinct points closer than 2^-31 of the region's extent along both
// axes fall into the same cell key and are treated as one location
// (documented limitation; far below the resolution of any experiment).
const CoordBits = 31

// ErrOutOfRegion is returned when a point outside the region is inserted.
var ErrOutOfRegion = errors.New("excell: point outside region")

// Config configures an EXCELL file.
type Config struct {
	// BucketCapacity is the bucket size b >= 1.
	BucketCapacity int
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxGlobalDepth bounds directory doubling; zero selects 2*CoordBits.
	MaxGlobalDepth int
}

// File is an EXCELL file mapping distinct points to values.
type File struct {
	cfg   Config
	table *exthash.Table
}

type record struct {
	p geom.Point
	v any
}

// New returns an empty EXCELL file.
func New(cfg Config) (*File, error) {
	if cfg.BucketCapacity < 1 {
		return nil, fmt.Errorf("excell: bucket capacity %d < 1", cfg.BucketCapacity)
	}
	if cfg.Region == (geom.Rect{}) {
		cfg.Region = geom.UnitSquare
	}
	if cfg.Region.Empty() {
		return nil, fmt.Errorf("excell: empty region %v", cfg.Region)
	}
	if cfg.MaxGlobalDepth == 0 {
		cfg.MaxGlobalDepth = 2 * CoordBits
	}
	t, err := exthash.New(exthash.Config{
		BucketCapacity: cfg.BucketCapacity,
		MaxGlobalDepth: cfg.MaxGlobalDepth,
		Hash:           exthash.Identity,
	})
	if err != nil {
		return nil, fmt.Errorf("excell: %w", err)
	}
	return &File{cfg: cfg, table: t}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *File {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of stored points.
func (f *File) Len() int { return f.table.Len() }

// DirectorySize returns the number of directory cells.
func (f *File) DirectorySize() int { return f.table.DirectorySize() }

// key encodes p as a Morton code left-aligned in 64 bits, interleaving
// from the most significant bit (y first), so directory doubling halves
// the region along y, then x, then y, ...
func (f *File) key(p geom.Point) uint64 {
	r := f.cfg.Region
	xs := uint32(float64(uint64(1)<<CoordBits) * (p.X - r.MinX) / r.Width())
	ys := uint32(float64(uint64(1)<<CoordBits) * (p.Y - r.MinY) / r.Height())
	var k uint64
	for b := CoordBits - 1; b >= 0; b-- {
		k = k<<1 | uint64(ys>>uint(b)&1)
		k = k<<1 | uint64(xs>>uint(b)&1)
	}
	return k << (64 - 2*CoordBits)
}

// Put stores v at point p, replacing the value of a point in the same
// resolution cell (see CoordBits).
func (f *File) Put(p geom.Point, v any) (replaced bool, err error) {
	if !f.cfg.Region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, f.cfg.Region)
	}
	return f.table.Put(f.key(p), record{p, v})
}

// Get returns the value stored at p's resolution cell.
func (f *File) Get(p geom.Point) (any, bool) {
	if !f.cfg.Region.Contains(p) {
		return nil, false
	}
	rv, ok := f.table.Get(f.key(p))
	if !ok {
		return nil, false
	}
	return rv.(record).v, true
}

// Delete removes the point at p's resolution cell.
func (f *File) Delete(p geom.Point) bool {
	if !f.cfg.Region.Contains(p) {
		return false
	}
	return f.table.Delete(f.key(p))
}

// Range calls visit for every stored point inside the closed query
// rectangle; returning false stops the scan. (EXCELL's directory is
// spatial, but a record scan keeps this reference implementation simple;
// the experiments only measure bucket populations.)
func (f *File) Range(query geom.Rect, visit func(p geom.Point, v any) bool) bool {
	return f.table.Walk(func(_ uint64, val any) bool {
		rec := val.(record)
		if query.ContainsClosed(rec.p) {
			return visit(rec.p, rec.v)
		}
		return true
	})
}

// Utilization returns stored records over total bucket capacity.
func (f *File) Utilization() float64 { return f.table.Utilization() }

// Census returns the bucket-occupancy census; a bucket of local depth l
// covers relative area 2^-l.
func (f *File) Census() stats.Census { return f.table.Census() }

// CheckInvariants delegates to the underlying extendible-hashing table.
func (f *File) CheckInvariants() error { return f.table.CheckInvariants() }
