package pmr

import (
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestInsertAndStab(t *testing.T) {
	tr := MustNew(Config{Threshold: 2})
	segs := []geom.Segment{
		geom.Seg(geom.Pt(0.1, 0.5), geom.Pt(0.9, 0.5)),
		geom.Seg(geom.Pt(0.5, 0.1), geom.Pt(0.5, 0.9)),
		geom.Seg(geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9)),
	}
	for _, s := range segs {
		if err := tr.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// A stab near the horizontal segment must return it.
	got := tr.Stab(geom.Pt(0.2, 0.5))
	found := false
	for _, s := range got {
		if s == segs[0] {
			found = true
		}
	}
	if !found {
		t.Fatalf("Stab(0.2, 0.5) = %v, missing horizontal segment", got)
	}
	if tr.Stab(geom.Pt(1.5, 1.5)) != nil {
		t.Fatal("Stab outside region returned segments")
	}
}

func TestInsertRejectsOutside(t *testing.T) {
	tr := MustNew(Config{Threshold: 1})
	if err := tr.Insert(geom.Seg(geom.Pt(2, 2), geom.Pt(3, 3))); err == nil {
		t.Fatal("outside segment accepted")
	}
	if tr.Len() != 0 {
		t.Fatal("rejected insert changed size")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Threshold: 0}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, err := New(Config{Threshold: 1, Region: geom.R(0, 0, 0, 0)}); err != nil {
		t.Errorf("zero region should default to the unit square: %v", err)
	}
	if _, err := New(Config{Threshold: 1, Region: geom.R(1, 1, 1, 2)}); err == nil {
		t.Error("degenerate non-zero region accepted")
	}
	if _, err := New(Config{Threshold: 1, MaxDepth: -1}); err == nil {
		t.Error("negative max depth accepted")
	}
}

func TestSplitOncePerInsertion(t *testing.T) {
	// Threshold 1: inserting a second crossing segment splits the leaf
	// exactly once, even if a child still exceeds the threshold.
	tr := MustNew(Config{Threshold: 1})
	// Two nearly parallel diagonals crossing all four quadrants.
	a := geom.Seg(geom.Pt(0.0, 0.01), geom.Pt(0.99, 1.0))
	b := geom.Seg(geom.Pt(0.01, 0.0), geom.Pt(1.0, 0.99))
	if err := tr.Insert(a); err != nil {
		t.Fatal(err)
	}
	h0 := tr.Census().Height
	if h0 != 0 {
		t.Fatalf("single segment split the root: height %d", h0)
	}
	if err := tr.Insert(b); err != nil {
		t.Fatal(err)
	}
	// One split only: height exactly 1.
	if h := tr.Census().Height; h != 1 {
		t.Fatalf("height %d after one overflowing insertion, want 1 (split once)", h)
	}
}

func TestOccupancyCanExceedThreshold(t *testing.T) {
	tr := MustNew(Config{Threshold: 1, MaxDepth: 8})
	rng := xrand.New(5)
	src := dist.NewShortSegments(tr.Region(), 0.1, rng)
	for tr.Len() < 200 {
		if err := tr.Insert(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Census()
	over := 0
	for occ, cnt := range c.ByOccupancy {
		if occ > 1 {
			over += cnt
		}
	}
	if over == 0 {
		t.Fatal("no block ever exceeded the threshold — that is the defining PMR behavior")
	}
}

func TestSegmentsStoredInEveryCrossedLeaf(t *testing.T) {
	tr := MustNew(Config{Threshold: 1})
	// Force a split with two crossing diagonals, then verify via
	// WalkLeaves that each leaf a segment crosses actually stores it.
	if err := tr.Insert(geom.Seg(geom.Pt(0, 0.3), geom.Pt(1, 0.3))); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Seg(geom.Pt(0.3, 0), geom.Pt(0.3, 1))); err != nil {
		t.Fatal(err)
	}
	ok := tr.WalkLeaves(func(block geom.Rect, segs []geom.Segment) bool {
		for _, s := range segs {
			clipped, has := s.ClipToRect(block)
			if !has || clipped.Length() <= 1e-12 {
				t.Errorf("leaf %v stores non-crossing segment %v", block, s)
			}
		}
		return true
	})
	if !ok {
		t.Fatal("walk stopped early")
	}
}

func TestRangeSegments(t *testing.T) {
	tr := MustNew(Config{Threshold: 2})
	h := geom.Seg(geom.Pt(0.1, 0.2), geom.Pt(0.9, 0.2))
	v := geom.Seg(geom.Pt(0.8, 0.6), geom.Pt(0.8, 0.95))
	if err := tr.Insert(h); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(v); err != nil {
		t.Fatal(err)
	}
	got := tr.RangeSegments(geom.R(0, 0, 1, 0.4))
	if len(got) != 1 || got[0] != h {
		t.Fatalf("range = %v, want only horizontal", got)
	}
	all := tr.RangeSegments(geom.R(0, 0, 1, 1))
	if len(all) != 2 {
		t.Fatalf("full range = %d segments", len(all))
	}
	// Duplicate tenancies must be deduplicated.
	tr2 := MustNew(Config{Threshold: 1})
	long := geom.Seg(geom.Pt(0.05, 0.55), geom.Pt(0.95, 0.55))
	cross := geom.Seg(geom.Pt(0.5, 0.05), geom.Pt(0.5, 0.95))
	if err := tr2.Insert(long); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Insert(cross); err != nil {
		t.Fatal(err)
	}
	if got := tr2.RangeSegments(geom.R(0, 0, 1, 1)); len(got) != 2 {
		t.Fatalf("dedup failed: %d segments", len(got))
	}
}

func TestCensusTenancies(t *testing.T) {
	tr := MustNew(Config{Threshold: 1})
	// One horizontal and one vertical segment that cross: after the
	// split each lives in multiple leaves — Items counts tenancies.
	if err := tr.Insert(geom.Seg(geom.Pt(0.1, 0.5), geom.Pt(0.9, 0.5))); err != nil {
		t.Fatal(err)
	}
	if err := tr.Insert(geom.Seg(geom.Pt(0.5, 0.1), geom.Pt(0.5, 0.9))); err != nil {
		t.Fatal(err)
	}
	c := tr.Census()
	if c.Items <= 2 {
		t.Fatalf("tenancies %d, expected more than segment count after split", c.Items)
	}
	if c.Leaves != 4 || c.Internal != 1 {
		t.Fatalf("census %+v", c)
	}
}

func TestMaxDepthStopsSplitting(t *testing.T) {
	tr := MustNew(Config{Threshold: 1, MaxDepth: 2})
	rng := xrand.New(11)
	src := dist.NewChords(tr.Region(), rng)
	for tr.Len() < 50 {
		if err := tr.Insert(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if h := tr.Census().Height; h > 2 {
		t.Fatalf("height %d > max depth 2", h)
	}
}

func TestDeterministicGivenSegmentSequence(t *testing.T) {
	build := func() int {
		tr := MustNew(Config{Threshold: 2, MaxDepth: 10})
		rng := xrand.New(77)
		src := dist.NewShortSegments(tr.Region(), 0.08, rng)
		for tr.Len() < 300 {
			if err := tr.Insert(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		c := tr.Census()
		return c.Leaves*1000003 + c.Items
	}
	if build() != build() {
		t.Fatal("identical segment sequences produced different trees")
	}
}
