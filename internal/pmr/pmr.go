// Package pmr implements the PMR quadtree of Nelson and Samet [Nels86a]:
// a hierarchical structure for line segments. Each segment is stored in
// every leaf block it crosses. When inserting a segment pushes a leaf's
// occupancy above the splitting threshold k, that leaf is split exactly
// once — never recursively — and its segments are redistributed into the
// quadrants they cross. Blocks may therefore transiently hold more than
// k segments; the threshold bounds expected, not worst-case, occupancy.
//
// This is the structure whose population analysis the paper reports
// applying "with results which agree with experimental data even better
// than in the case of the PR quadtree" ([Nels86b]); experiment E8
// validates our reconstruction of that model (core.NewLineModel) against
// this implementation.
package pmr

import (
	"errors"
	"fmt"
	"sort"

	"popana/internal/geom"
	"popana/internal/stats"
)

// DefaultMaxDepth bounds decomposition when Config.MaxDepth is zero.
const DefaultMaxDepth = 24

// ErrOutsideRegion is returned when a segment does not intersect the
// tree's region at all.
var ErrOutsideRegion = errors.New("pmr: segment outside region")

// Config configures a tree.
type Config struct {
	// Threshold is the splitting threshold k >= 1.
	Threshold int
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxDepth truncates decomposition; zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Threshold < 1 {
		return c, fmt.Errorf("pmr: threshold %d < 1", c.Threshold)
	}
	if c.Region == (geom.Rect{}) {
		c.Region = geom.UnitSquare
	}
	if c.Region.Empty() {
		return c, fmt.Errorf("pmr: empty region %v", c.Region)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("pmr: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

// segRef is a stored segment; ids distinguish identical geometries.
type segRef struct {
	id  int
	seg geom.Segment
}

type node struct {
	children *[4]*node // nil iff leaf
	segs     []segRef
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a PMR quadtree over a rectangle.
type Tree struct {
	cfg    Config
	root   *node
	size   int // distinct segments stored
	nextID int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: c, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of distinct segments stored.
func (t *Tree) Len() int { return t.size }

// Region returns the universe rectangle.
func (t *Tree) Region() geom.Rect { return t.cfg.Region }

// Threshold returns the splitting threshold k.
func (t *Tree) Threshold() int { return t.cfg.Threshold }

// crosses reports whether seg occupies block: their intersection has
// positive length. Segments that merely touch a block's corner or run
// along the shared boundary with measure zero inside do not count as
// tenants, matching the geometric model in internal/core.
func crosses(seg geom.Segment, block geom.Rect) bool {
	clipped, ok := seg.ClipToRect(block)
	return ok && clipped.Length() > 1e-12
}

// Insert stores the segment, splitting overflowing leaves once each, per
// the PMR rule. Segments wholly outside the region are rejected.
func (t *Tree) Insert(seg geom.Segment) error {
	if !crosses(seg, t.cfg.Region) {
		return fmt.Errorf("%w: %v vs %v", ErrOutsideRegion, seg, t.cfg.Region)
	}
	ref := segRef{id: t.nextID, seg: seg}
	t.nextID++
	t.size++
	t.insert(t.root, t.cfg.Region, 0, ref)
	return nil
}

func (t *Tree) insert(n *node, block geom.Rect, depth int, ref segRef) {
	if !n.leaf() {
		for q := 0; q < 4; q++ {
			child := block.Quadrant(q)
			if crosses(ref.seg, child) {
				t.insert(n.children[q], child, depth+1, ref)
			}
		}
		return
	}
	n.segs = append(n.segs, ref)
	// PMR rule: split once if the insertion pushed occupancy above the
	// threshold (and the depth cap permits).
	if len(n.segs) > t.cfg.Threshold && depth < t.cfg.MaxDepth {
		t.split(n, block)
	}
}

// split turns leaf n into an internal node, distributing segments into
// the quadrants they cross. Children are NOT split further even if over
// the threshold — that is the defining difference from the PR quadtree.
func (t *Tree) split(n *node, block geom.Rect) {
	var ch [4]*node
	for q := range ch {
		ch[q] = &node{}
	}
	for _, ref := range n.segs {
		for q := 0; q < 4; q++ {
			if crosses(ref.seg, block.Quadrant(q)) {
				ch[q].segs = append(ch[q].segs, ref)
			}
		}
	}
	n.segs = nil
	n.children = &ch
}

// Stab returns the distinct segments whose blocks contain p — the
// candidates for an exact point-on-segment test, which is how a PMR
// quadtree answers "what passes through here" queries.
func (t *Tree) Stab(p geom.Point) []geom.Segment {
	n, block := t.root, t.cfg.Region
	if !block.Contains(p) {
		return nil
	}
	for !n.leaf() {
		q := block.QuadrantOf(p)
		block = block.Quadrant(q)
		n = n.children[q]
	}
	out := make([]geom.Segment, len(n.segs))
	for i, r := range n.segs {
		out[i] = r.seg
	}
	return out
}

// RangeSegments returns the distinct segments crossing the closed query
// rectangle, in insertion-id order. The order is part of the contract:
// traversal visits blocks in quadrant order but a segment can be found
// in any of the blocks it crosses, so emitting in discovery (or map)
// order would make the result depend on tree shape or map hashing.
func (t *Tree) RangeSegments(query geom.Rect) []geom.Segment {
	seen := map[int]geom.Segment{}
	t.rangeSegs(t.root, t.cfg.Region, query, seen)
	ids := make([]int, 0, len(seen))
	for id := range seen { //popvet:allow detrand -- ids are sorted before use
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]geom.Segment, 0, len(ids))
	for _, id := range ids {
		out = append(out, seen[id])
	}
	return out
}

func (t *Tree) rangeSegs(n *node, block, query geom.Rect, seen map[int]geom.Segment) {
	if n.leaf() {
		for _, r := range n.segs {
			if _, ok := seen[r.id]; ok {
				continue
			}
			if crosses(r.seg, query) {
				seen[r.id] = r.seg
			}
		}
		return
	}
	for q := 0; q < 4; q++ {
		child := block.Quadrant(q)
		if child.Intersects(query) {
			t.rangeSegs(n.children[q], child, query, seen)
		}
	}
}

// WalkLeaves visits every leaf block with the segments stored in it;
// returning false stops the walk. It exposes the raw populations for
// analyses that need more than the census (e.g. estimating the
// equilibrium quadrant-crossing probability of stored segments).
func (t *Tree) WalkLeaves(fn func(block geom.Rect, segs []geom.Segment) bool) bool {
	return t.walkLeaves(t.root, t.cfg.Region, fn)
}

func (t *Tree) walkLeaves(n *node, block geom.Rect, fn func(geom.Rect, []geom.Segment) bool) bool {
	if n.leaf() {
		segs := make([]geom.Segment, len(n.segs))
		for i, r := range n.segs {
			segs[i] = r.seg
		}
		return fn(block, segs)
	}
	for q := 0; q < 4; q++ {
		if !t.walkLeaves(n.children[q], block.Quadrant(q), fn) {
			return false
		}
	}
	return true
}

// Census returns the occupancy census of the tree's leaves. Note that
// Items counts segment *tenancies* (a segment crossing five leaves adds
// five), since populations are defined over blocks, matching the line
// population model.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := t.cfg.Region.Area()
	t.census(t.root, t.cfg.Region, 0, total, &b)
	return b.Census()
}

func (t *Tree) census(n *node, block geom.Rect, depth int, total float64, b *stats.CensusBuilder) {
	if n.leaf() {
		b.AddLeaf(depth, len(n.segs), block.Area()/total)
		return
	}
	b.AddInternal(depth)
	for q := 0; q < 4; q++ {
		t.census(n.children[q], block.Quadrant(q), depth+1, total, b)
	}
}
