package experiment

import (
	"fmt"
	"math"

	"popana/internal/bintree"
	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/excell"
	"popana/internal/exthash"
	"popana/internal/geom"
	"popana/internal/gridfile"
	"popana/internal/hypertree"
	"popana/internal/pmr"
	"popana/internal/report"
	"popana/internal/statmodel"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// FanoutRow is one configuration of experiment E7: the population model
// at fanout F validated on a structure with that fanout.
type FanoutRow struct {
	Structure             string
	Fanout                int
	Capacity              int
	TheoryOccupancy       float64
	ExperimentalOccupancy float64
	PercentDifference     float64
}

// RunFanoutSweep validates the generalized model on bintrees (F=2),
// quadtrees via hypertree d=2 (F=4), and octrees via hypertree d=3
// (F=8) for capacities 1..maxCapacity.
//
// Because the model predicts the phasing-cycle mean while any fixed tree
// size sits at one phase of the cycle (and the cycle amplitude grows
// with fanout), each configuration is measured at four sizes spaced
// log-uniformly across one full period n ∈ [N, F·N) and averaged —
// the experimental estimate of the cycle mean.
func RunFanoutSweep(cfg Config, maxCapacity int) ([]FanoutRow, error) {
	c := cfg.withDefaults()
	var rows []FanoutRow
	type structSpec struct {
		name   string
		fanout int
		build  func(capacity int, rng *xrand.Rand, n int) stats.Census
	}
	specs := []structSpec{
		{"bintree (2D)", 2, func(m int, rng *xrand.Rand, n int) stats.Census {
			t := bintree.MustNew(bintree.Config{Capacity: m})
			u := dist.NewUniform(t.Region(), rng)
			for t.Len() < n {
				if _, err := t.Insert(u.Next()); err != nil {
					panic(err)
				}
			}
			return t.Census()
		}},
		{"hypertree d=1", 2, func(m int, rng *xrand.Rand, n int) stats.Census {
			t := hypertree.MustNew(hypertree.Config{Dim: 1, Capacity: m})
			for t.Len() < n {
				if _, err := t.Insert(hypertree.RandomPoint(1, rng)); err != nil {
					panic(err)
				}
			}
			return t.Census()
		}},
		{"hypertree d=2", 4, func(m int, rng *xrand.Rand, n int) stats.Census {
			t := hypertree.MustNew(hypertree.Config{Dim: 2, Capacity: m})
			for t.Len() < n {
				if _, err := t.Insert(hypertree.RandomPoint(2, rng)); err != nil {
					panic(err)
				}
			}
			return t.Census()
		}},
		{"octree (d=3)", 8, func(m int, rng *xrand.Rand, n int) stats.Census {
			t := hypertree.MustNew(hypertree.Config{Dim: 3, Capacity: m})
			for t.Len() < n {
				if _, err := t.Insert(hypertree.RandomPoint(3, rng)); err != nil {
					panic(err)
				}
			}
			return t.Census()
		}},
	}
	for si, spec := range specs {
		for m := 1; m <= maxCapacity; m++ {
			model, err := core.NewPointModel(m, spec.fanout)
			if err != nil {
				return nil, err
			}
			thy, err := model.Solve()
			if err != nil {
				return nil, err
			}
			// Four sizes log-uniform across one phasing period.
			sizes := make([]int, 4)
			for k := range sizes {
				sizes[k] = int(float64(c.Points) * math.Pow(float64(spec.fanout), float64(k)/4))
			}
			occs := make([]float64, 0, len(sizes))
			for k, n := range sizes {
				censuses := make([]stats.Census, c.Trials)
				c.forTrials(func(trial int) {
					rng := c.rng(expFanout, si*1000+m*10+k, trial)
					censuses[trial] = spec.build(m, rng, n)
				})
				occs = append(occs, stats.Summarize(censuses, m+1).MeanOccupancy)
			}
			expOcc := stats.Mean(occs)
			thyOcc := thy.AverageOccupancy()
			rows = append(rows, FanoutRow{
				Structure:             spec.name,
				Fanout:                spec.fanout,
				Capacity:              m,
				TheoryOccupancy:       thyOcc,
				ExperimentalOccupancy: expOcc,
				PercentDifference:     100 * (thyOcc - expOcc) / expOcc,
			})
		}
	}
	return rows, nil
}

// RenderFanoutSweep prints E7.
func RenderFanoutSweep(rows []FanoutRow) string {
	t := report.NewTable("E7: generalized model across fanouts (theory vs experiment, avg occupancy)",
		"structure", "fanout", "capacity", "exp occ", "thy occ", "% diff").AlignLeft(0)
	for _, r := range rows {
		t.AddRow(r.Structure, fmt.Sprintf("%d", r.Fanout), fmt.Sprintf("%d", r.Capacity),
			fmt.Sprintf("%.2f", r.ExperimentalOccupancy), fmt.Sprintf("%.2f", r.TheoryOccupancy),
			fmt.Sprintf("%.1f", r.PercentDifference))
	}
	return t.String()
}

// PMRRow is one threshold of experiment E8: the reconstructed line model
// against a simulated PMR quadtree over GIS-like short segments.
type PMRRow struct {
	Threshold int
	// CrossProb is the measured equilibrium quadrant-crossing
	// probability p̂ of the stored segments; the model is solved with
	// it ("only the local probabilities ... need be evaluated").
	CrossProb             float64
	TheoryOccupancy       float64
	ExperimentalOccupancy float64
	PercentDifference     float64
	// ChordTheoryOccupancy is the model solved with the long-chord
	// geometric value p = 1/2, for reference.
	ChordTheoryOccupancy float64
	TheoryDistribution   []float64
	ExpDistribution      []float64
	TailMass             float64
}

// PMRSegmentLength is the E8 workload's segment length as a fraction of
// the region width — short, road-like segments in the spirit of the
// authors' GIS line maps. (Full-square random chords at low thresholds
// are a known pathological PMR workload: blocks along a chord stay at
// the threshold forever and the structure grows super-linearly, so the
// steady-state premise of the model does not apply.)
const PMRSegmentLength = 0.05

// RunPMR validates the line model for thresholds 1..maxThreshold with
// Config.Points short segments per tree. The quadrant-crossing
// probability is measured from the built trees (it depends on the
// segment-length-to-block-size ratio at equilibrium, so it is a local
// geometric statistic exactly as the paper's method prescribes).
func RunPMR(cfg Config, maxThreshold int) ([]PMRRow, error) {
	c := cfg.withDefaults()
	var rows []PMRRow
	for k := 1; k <= maxThreshold; k++ {
		censuses := make([]stats.Census, c.Trials)
		// Per-trial crossing counts, reduced in trial order after the
		// pool drains so the float sums match a sequential run exactly.
		perCross := make([]float64, c.Trials)
		perInc := make([]float64, c.Trials)
		c.forTrials(func(trial int) {
			rng := c.rng(expPMR, k, trial)
			t := pmr.MustNew(pmr.Config{Threshold: k, MaxDepth: 12})
			src := dist.NewShortSegments(t.Region(), PMRSegmentLength, rng)
			for t.Len() < c.Points {
				if err := t.Insert(src.Next()); err != nil {
					panic(err)
				}
			}
			censuses[trial] = t.Census()
			t.WalkLeaves(func(block geom.Rect, segs []geom.Segment) bool {
				for _, s := range segs {
					for q := 0; q < 4; q++ {
						if clipped, ok := s.ClipToRect(block.Quadrant(q)); ok && clipped.Length() > 1e-12 {
							perCross[trial]++
						}
					}
					perInc[trial] += 4
				}
				return true
			})
		})
		crossings, incidences := 0.0, 0.0
		for trial := 0; trial < c.Trials; trial++ {
			crossings += perCross[trial]
			incidences += perInc[trial]
		}
		pHat := crossings / incidences
		model, err := core.NewLineModel(k, 4, core.LineModelOptions{CrossProb: pHat})
		if err != nil {
			return nil, err
		}
		thy, err := model.Solve()
		if err != nil {
			return nil, err
		}
		chordModel, err := core.NewLineModel(k, 4, core.LineModelOptions{})
		if err != nil {
			return nil, err
		}
		chordThy, err := chordModel.Solve()
		if err != nil {
			return nil, err
		}
		sum := stats.Summarize(censuses, model.Types())
		expOcc := occupancyOf(sum.MeanProportions)
		thyOcc := thy.AverageOccupancy()
		rows = append(rows, PMRRow{
			Threshold:             k,
			CrossProb:             pHat,
			TheoryOccupancy:       thyOcc,
			ExperimentalOccupancy: expOcc,
			PercentDifference:     100 * (thyOcc - expOcc) / expOcc,
			ChordTheoryOccupancy:  chordThy.AverageOccupancy(),
			TheoryDistribution:    thy.E,
			ExpDistribution:       sum.MeanProportions,
			TailMass:              core.TailMass(thy),
		})
	}
	return rows, nil
}

func occupancyOf(proportions []float64) float64 {
	s := 0.0
	for i, p := range proportions {
		s += float64(i) * p
	}
	return s
}

// RenderPMR prints E8.
func RenderPMR(rows []PMRRow) string {
	t := report.NewTable(
		fmt.Sprintf("E8: PMR line model vs simulation (short segments, length %.2f of region)", PMRSegmentLength),
		"threshold", "measured p", "exp occ", "thy occ", "% diff", "thy occ (chord p=.5)", "truncation tail")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Threshold),
			fmt.Sprintf("%.3f", r.CrossProb),
			fmt.Sprintf("%.2f", r.ExperimentalOccupancy),
			fmt.Sprintf("%.2f", r.TheoryOccupancy),
			fmt.Sprintf("%.1f", r.PercentDifference),
			fmt.Sprintf("%.2f", r.ChordTheoryOccupancy),
			fmt.Sprintf("%.2g", r.TailMass))
	}
	return t.String()
}

// StatModelResult is experiment E9: the exact statistical baseline.
type StatModelResult struct {
	Capacity int
	Sizes    []int
	// Occupancy[i] is the exact expected average occupancy at Sizes[i].
	Occupancy []float64
	// EarlyAmplitude and LateAmplitude are occupancy oscillation
	// amplitudes over the first and last factor-of-4 window — phasing
	// means the late amplitude does not shrink.
	EarlyAmplitude, LateAmplitude float64
	// PopulationPrediction is the (n-independent) population-model
	// occupancy for comparison.
	PopulationPrediction float64
}

// RunStatModel computes the exact Fagin-style analysis for the given
// capacity over the paper's size grid up to maxN.
func RunStatModel(capacity, maxN int) (StatModelResult, error) {
	a, err := statmodel.New(capacity, 4, maxN)
	if err != nil {
		return StatModelResult{}, err
	}
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return StatModelResult{}, err
	}
	thy, err := model.Solve()
	if err != nil {
		return StatModelResult{}, err
	}
	sizes := GeometricSizes(64, maxN)
	res := StatModelResult{
		Capacity:             capacity,
		Sizes:                sizes,
		PopulationPrediction: thy.AverageOccupancy(),
	}
	for _, n := range sizes {
		res.Occupancy = append(res.Occupancy, a.AverageOccupancy(n))
	}
	early := a.Oscillation(64, 256)
	late := a.Oscillation(maxN/4, maxN)
	res.EarlyAmplitude = early.Amplitude
	res.LateAmplitude = late.Amplitude
	return res, nil
}

// RenderStatModel prints E9 as a table plus the oscillation summary.
func RenderStatModel(r StatModelResult) string {
	t := report.NewTable(
		fmt.Sprintf("E9: exact statistical baseline, m=%d (population model predicts %.2f)",
			r.Capacity, r.PopulationPrediction),
		"points", "exact E[occupancy]")
	for i, n := range r.Sizes {
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%.3f", r.Occupancy[i]))
	}
	s := t.String()
	s += fmt.Sprintf("oscillation amplitude: early window %.3f, late window %.3f (phasing: no damping)\n",
		r.EarlyAmplitude, r.LateAmplitude)
	return s
}

// BucketRow is one structure of experiment E10: steady-state utilization
// of the bucketing baselines.
type BucketRow struct {
	Structure   string
	Capacity    int
	Records     int
	Utilization float64
	Buckets     int
}

// RunBucketBaselines measures storage utilization of extendible hashing,
// the grid file, and EXCELL under uniform data — the ln 2 ≈ 0.693
// expectation of [Fagi79] for extendible hashing, and comparable
// figures for the spatial baselines.
func RunBucketBaselines(cfg Config, capacity, records int) ([]BucketRow, error) {
	c := cfg.withDefaults()
	var rows []BucketRow
	// Extendible hashing over uniform keys.
	{
		utils := make([]float64, c.Trials)
		bucketCounts := make([]int, c.Trials)
		err := c.forTrialsErr(func(trial int) error {
			rng := c.rng(expExtHash, capacity, trial)
			t := exthash.MustNew(exthash.Config{BucketCapacity: capacity})
			for t.Len() < records {
				if _, err := t.Put(rng.Uint64(), nil); err != nil {
					return err
				}
			}
			utils[trial] = t.Utilization()
			bucketCounts[trial] = t.Buckets()
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BucketRow{"extendible hashing", capacity, records, stats.Mean(utils), bucketCounts[c.Trials-1]})
	}
	// Grid file over uniform points.
	{
		utils := make([]float64, c.Trials)
		bucketCounts := make([]int, c.Trials)
		err := c.forTrialsErr(func(trial int) error {
			rng := c.rng(expBuckets, capacity, trial)
			f := gridfile.MustNew(gridfile.Config{BucketCapacity: capacity})
			u := dist.NewUniform(geom.UnitSquare, rng)
			for f.Len() < records {
				if _, err := f.Put(u.Next(), nil); err != nil {
					return err
				}
			}
			utils[trial] = f.Utilization()
			bucketCounts[trial] = f.Buckets()
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BucketRow{"grid file", capacity, records, stats.Mean(utils), bucketCounts[c.Trials-1]})
	}
	// EXCELL over uniform points.
	{
		utils := make([]float64, c.Trials)
		bucketCounts := make([]int, c.Trials)
		err := c.forTrialsErr(func(trial int) error {
			rng := c.rng(expBuckets, capacity+1000, trial)
			f := excell.MustNew(excell.Config{BucketCapacity: capacity})
			u := dist.NewUniform(geom.UnitSquare, rng)
			for f.Len() < records {
				if _, err := f.Put(u.Next(), nil); err != nil {
					return err
				}
			}
			utils[trial] = f.Utilization()
			bucketCounts[trial] = f.Census().Leaves
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, BucketRow{"EXCELL", capacity, records, stats.Mean(utils), bucketCounts[c.Trials-1]})
	}
	// PR quadtree utilization for the same capacity, via the model.
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return nil, err
	}
	thy, err := model.Solve()
	if err != nil {
		return nil, err
	}
	rows = append(rows, BucketRow{"PR quadtree (model)", capacity, records, thy.Utilization(capacity), 0})
	return rows, nil
}

// RenderBucketBaselines prints E10.
func RenderBucketBaselines(rows []BucketRow) string {
	t := report.NewTable("E10: bucket utilization of the baseline structures (ln 2 = 0.693 is the Fagin asymptote)",
		"structure", "bucket capacity", "records", "utilization").AlignLeft(0)
	for _, r := range rows {
		t.AddRow(r.Structure, fmt.Sprintf("%d", r.Capacity), fmt.Sprintf("%d", r.Records),
			fmt.Sprintf("%.3f", r.Utilization))
	}
	return t.String()
}

// AgingRow is one capacity of experiment E11: the aging-corrected model
// against the base model and experiment.
type AgingRow struct {
	Capacity     int
	ExpOccupancy float64
	BaseModel    float64
	Corrected    float64
	// Weights are the measured area-by-occupancy insertion weights fed
	// to the corrected model.
	Weights []float64
	// BaseErr and CorrectedErr are percent differences vs experiment.
	BaseErr, CorrectedErr float64
}

// RunAging runs E11: for each capacity, measure the mean relative block
// area by occupancy from simulation, solve the area-weighted fixed point,
// and compare both predictions to the simulated occupancy.
func RunAging(cfg Config, maxCapacity int) ([]AgingRow, error) {
	c := cfg.withDefaults()
	var rows []AgingRow
	for m := 1; m <= maxCapacity; m++ {
		model, err := core.NewPointModel(m, 4)
		if err != nil {
			return nil, err
		}
		base, err := model.Solve()
		if err != nil {
			return nil, err
		}
		censuses := c.buildTrees(expAging, m, c.Points, m, 0,
			func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) })
		sum := stats.Summarize(censuses, m+1)
		weights := make([]float64, m+1)
		ok := true
		for i, w := range sum.MeanAreaWeights {
			if w <= 0 {
				ok = false
			}
			weights[i] = w
		}
		row := AgingRow{
			Capacity:     m,
			ExpOccupancy: sum.MeanOccupancy,
			BaseModel:    base.AverageOccupancy(),
			Weights:      weights,
		}
		row.BaseErr = 100 * (row.BaseModel - row.ExpOccupancy) / row.ExpOccupancy
		if ok {
			corrected, err := model.SolveWeighted(weights, solverOptions())
			if err != nil {
				return nil, fmt.Errorf("experiment: aging solve m=%d: %w", m, err)
			}
			row.Corrected = corrected.AverageOccupancy()
			row.CorrectedErr = 100 * (row.Corrected - row.ExpOccupancy) / row.ExpOccupancy
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderAging prints E11.
func RenderAging(rows []AgingRow) string {
	t := report.NewTable("E11: aging correction — area-weighted vs count-weighted model (avg occupancy)",
		"capacity", "experiment", "base model", "base % err", "corrected", "corrected % err")
	for _, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Capacity),
			fmt.Sprintf("%.2f", r.ExpOccupancy),
			fmt.Sprintf("%.2f", r.BaseModel),
			fmt.Sprintf("%.1f", r.BaseErr),
			fmt.Sprintf("%.2f", r.Corrected),
			fmt.Sprintf("%.1f", r.CorrectedErr))
	}
	return t.String()
}
