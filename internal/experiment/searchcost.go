package experiment

import (
	"fmt"
	"math"

	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/report"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// E17 — search cost. The population model predicts the number of leaf
// blocks (n / avg-occupancy); under uniform data a regular decomposition
// with L leaves sits within one level of depth log₄ L, so the model
// implicitly prices a point search:
//
//	E[search depth] ≈ log₄( n / (model avg occupancy) ).
//
// E17 measures the area-weighted search depth of simulated trees against
// that prediction across tree sizes, and also reports the
// count-weighted mean leaf depth — the gap between the two is the aging
// effect viewed through the cost lens.

// SearchCostRow is one tree size of E17.
type SearchCostRow struct {
	Points int
	// MeasuredSearchDepth is the area-weighted mean leaf depth.
	MeasuredSearchDepth float64
	// MeanLeafDepth is the count-weighted mean leaf depth.
	MeanLeafDepth float64
	// PredictedDepth is log₄ of the model-predicted leaf count.
	PredictedDepth float64
}

// SearchCostResult is the E17 result.
type SearchCostResult struct {
	Capacity int
	Rows     []SearchCostRow
}

// RunSearchCost runs E17 for one capacity over the given tree sizes.
func RunSearchCost(cfg Config, capacity int, sizes []int) (SearchCostResult, error) {
	c := cfg.withDefaults()
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return SearchCostResult{}, err
	}
	thy, err := model.Solve()
	if err != nil {
		return SearchCostResult{}, err
	}
	res := SearchCostResult{Capacity: capacity}
	for _, n := range sizes {
		censuses := c.buildTrees(expSearchCost, n, n, capacity, 0,
			func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) })
		var search, mean []float64
		for _, cs := range censuses {
			search = append(search, cs.ExpectedSearchDepth())
			mean = append(mean, cs.MeanLeafDepth())
		}
		res.Rows = append(res.Rows, SearchCostRow{
			Points:              n,
			MeasuredSearchDepth: stats.Mean(search),
			MeanLeafDepth:       stats.Mean(mean),
			PredictedDepth:      math.Log(float64(n)/thy.AverageOccupancy()) / math.Log(4),
		})
	}
	return res, nil
}

// RenderSearchCost prints E17.
func RenderSearchCost(r SearchCostResult) string {
	t := report.NewTable(
		fmt.Sprintf("E17: point-search cost (m=%d) — levels descended for a uniform query", r.Capacity),
		"points", "measured E[depth]", "mean leaf depth", "model log4(n/occ)")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Points),
			fmt.Sprintf("%.2f", row.MeasuredSearchDepth),
			fmt.Sprintf("%.2f", row.MeanLeafDepth),
			fmt.Sprintf("%.2f", row.PredictedDepth))
	}
	return t.String()
}
