package experiment

import (
	"math"
	"strings"
	"testing"
)

// Reduced config keeps the experiment tests fast while still exercising
// every code path; the full paper-scale run lives in cmd/paper and the
// benchmarks.
func quickCfg() Config { return Config{Trials: 3, Points: 250, Seed: 7} }

func TestGeometricSizesMatchesPaper(t *testing.T) {
	want := []int{64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896, 4096}
	got := GeometricSizes(64, 4096)
	if len(got) != len(want) {
		t.Fatalf("sizes %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sizes[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestRunTables12(t *testing.T) {
	rs, err := RunTables12(quickCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("%d results", len(rs))
	}
	for _, r := range rs {
		if len(r.Experimental) != r.Capacity+1 {
			t.Fatalf("m=%d: experimental vector %v", r.Capacity, r.Experimental)
		}
		sum := 0.0
		for _, p := range r.Experimental {
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("m=%d: proportions sum %v", r.Capacity, sum)
		}
		// Theory consistently above experiment (aging).
		if r.PercentDifference < -5 {
			t.Errorf("m=%d: theory below experiment by %v%%", r.Capacity, r.PercentDifference)
		}
		if r.TheoryOccupancy <= 0 || r.ExperimentalOccupancy <= 0 {
			t.Errorf("m=%d: non-positive occupancy", r.Capacity)
		}
	}
	if s := RenderTable1(rs); !strings.Contains(s, "thy") || !strings.Contains(s, "exp") {
		t.Error("Table 1 rendering incomplete")
	}
	if s := RenderTable2(rs); !strings.Contains(s, "percent difference") {
		t.Error("Table 2 rendering incomplete")
	}
}

func TestRunTables12Validation(t *testing.T) {
	if _, err := RunTables12(quickCfg(), 0); err == nil {
		t.Error("max capacity 0 accepted")
	}
}

func TestRunTable3(t *testing.T) {
	res, err := RunTable3(quickCfg(), 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PostSplitOccupancy-0.4) > 1e-12 {
		t.Fatalf("post-split occupancy %v", res.PostSplitOccupancy)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no depth rows")
	}
	// Aging: the most populated depths show decreasing occupancy.
	var occs []float64
	for _, row := range res.Rows {
		total := 0.0
		for _, v := range row.MeanLeavesByOccupancy {
			total += v
		}
		if total >= 5 {
			occs = append(occs, row.Occupancy)
		}
	}
	if len(occs) >= 3 && !(occs[0] > occs[len(occs)-1]) {
		t.Errorf("occupancy does not decrease with depth: %v", occs)
	}
	if s := RenderTable3(res); !strings.Contains(s, "depth") {
		t.Error("Table 3 rendering incomplete")
	}
}

func TestRunSweep(t *testing.T) {
	sizes := []int{64, 128, 256}
	uni, err := RunSweep(quickCfg(), 4, sizes, false)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Distribution != "uniform" || len(uni.Rows) != 3 {
		t.Fatalf("sweep %+v", uni)
	}
	for i, row := range uni.Rows {
		if row.Points != sizes[i] || row.MeanLeaves <= 0 || row.MeanOccupancy <= 0 {
			t.Fatalf("row %+v", row)
		}
	}
	g, err := RunSweep(quickCfg(), 4, sizes, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.Distribution != "gaussian" {
		t.Fatalf("gaussian sweep labeled %q", g.Distribution)
	}
	if s := RenderSweepTable(uni, 4); !strings.Contains(s, "Table 4") {
		t.Error("sweep table rendering")
	}
	if s := RenderSweepFigure(uni, 2); !strings.Contains(s, "Figure 2") {
		t.Error("figure rendering")
	}
	if amp := uni.OscillationAmplitude(64, 256); amp < 0 {
		t.Error("negative amplitude")
	}
	if amp := uni.OscillationAmplitude(10000, 20000); amp != 0 {
		t.Error("empty window amplitude nonzero")
	}
}

func TestRunSweepValidation(t *testing.T) {
	if _, err := RunSweep(quickCfg(), 0, []int{64}, false); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestRunAnchor(t *testing.T) {
	a, err := RunAnchor(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Exact.E {
		if math.Abs(a.FixedPoint.E[i]-a.Exact.E[i]) > 1e-10 {
			t.Errorf("fixed point differs from exact at %d", i)
		}
		if math.Abs(a.Newton.E[i]-a.Exact.E[i]) > 1e-8 {
			t.Errorf("newton differs from exact at %d", i)
		}
	}
	// Experiment lands near (0.53, 0.47).
	if math.Abs(a.Experimental[0]-0.53) > 0.05 {
		t.Errorf("experimental empty fraction %v", a.Experimental[0])
	}
}

func TestRunFanoutSweep(t *testing.T) {
	rows, err := RunFanoutSweep(quickCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// 4 structures × 2 capacities.
	if len(rows) != 8 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.PercentDifference) > 30 {
			t.Errorf("%s m=%d: theory %v vs experiment %v (%.1f%%)",
				r.Structure, r.Capacity, r.TheoryOccupancy, r.ExperimentalOccupancy, r.PercentDifference)
		}
	}
	if s := RenderFanoutSweep(rows); !strings.Contains(s, "bintree") {
		t.Error("fanout rendering")
	}
}

func TestRunPMR(t *testing.T) {
	rows, err := RunPMR(quickCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CrossProb <= 0.2 || r.CrossProb >= 0.6 {
			t.Errorf("k=%d: implausible measured p %v", r.Threshold, r.CrossProb)
		}
		if math.Abs(r.PercentDifference) > 35 {
			t.Errorf("k=%d: %v%% difference", r.Threshold, r.PercentDifference)
		}
		if r.TailMass > 1e-6 {
			t.Errorf("k=%d: tail %v", r.Threshold, r.TailMass)
		}
	}
	if s := RenderPMR(rows); !strings.Contains(s, "threshold") {
		t.Error("PMR rendering")
	}
}

func TestRunStatModel(t *testing.T) {
	r, err := RunStatModel(4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Sizes) != len(r.Occupancy) {
		t.Fatal("ragged result")
	}
	if r.LateAmplitude < 0.5*r.EarlyAmplitude {
		t.Errorf("phasing damped: early %v late %v", r.EarlyAmplitude, r.LateAmplitude)
	}
	if r.PopulationPrediction <= 0 {
		t.Error("no population prediction")
	}
	if s := RenderStatModel(r); !strings.Contains(s, "oscillation") {
		t.Error("statmodel rendering")
	}
}

func TestRunBucketBaselines(t *testing.T) {
	rows, err := RunBucketBaselines(quickCfg(), 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Utilization <= 0.2 || r.Utilization > 1 {
			t.Errorf("%s: utilization %v", r.Structure, r.Utilization)
		}
	}
	// Extendible hashing near ln 2.
	if math.Abs(rows[0].Utilization-0.693) > 0.12 {
		t.Errorf("exthash utilization %v", rows[0].Utilization)
	}
	if s := RenderBucketBaselines(rows); !strings.Contains(s, "EXCELL") {
		t.Error("baseline rendering")
	}
}

func TestRunAging(t *testing.T) {
	rows, err := RunAging(quickCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The corrected model must beat the base model (that is the
		// entire point of E11); allow equality margin for m=1 noise.
		if math.Abs(r.CorrectedErr) > math.Abs(r.BaseErr)+2 {
			t.Errorf("m=%d: corrected %.1f%% worse than base %.1f%%", r.Capacity, r.CorrectedErr, r.BaseErr)
		}
		if len(r.Weights) != r.Capacity+1 {
			t.Errorf("m=%d: %d weights", r.Capacity, len(r.Weights))
		}
	}
	if s := RenderAging(rows); !strings.Contains(s, "corrected") {
		t.Error("aging rendering")
	}
}

func TestConfigDeterminism(t *testing.T) {
	a, err := RunTables12(quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunTables12(quickCfg(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Experimental {
		if a[0].Experimental[i] != b[0].Experimental[i] {
			t.Fatal("same config produced different results")
		}
	}
	// Different seed changes results.
	c := quickCfg()
	c.Seed = 1234
	d, err := RunTables12(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Experimental[0] == d[0].Experimental[0] {
		t.Error("different seeds produced identical results (suspicious)")
	}
}
