// Package experiment contains one runner per artifact of the paper's
// evaluation (Tables 1-5, Figures 2-3, the Section III anchor) plus the
// extension experiments listed in DESIGN.md (fanout sweep, PMR line
// model, exact statistical baseline, extendible-hashing utilization, and
// the aging-correction ablation). Each runner is deterministic given its
// Config and returns typed results; rendering to text lives beside each
// result type so cmd/paper and the benchmarks share one code path.
package experiment

import (
	"fmt"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// Config holds the shared experimental parameters. The zero value
// reproduces the paper: 10 trees of 1000 points per data point.
type Config struct {
	// Trials is the number of independently built trees averaged per
	// data point; zero selects the paper's 10.
	Trials int
	// Points is the number of points per tree for the fixed-size
	// experiments (Tables 1-3); zero selects the paper's 1000.
	Points int
	// Seed is the base RNG seed; trial t of experiment e derives its
	// stream independently. Zero is a valid (and the default) seed.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Points == 0 {
		c.Points = 1000
	}
	return c
}

// rng derives a deterministic generator for (experiment, capacity/param,
// trial).
func (c Config) rng(experiment, param, trial int) *xrand.Rand {
	seed := c.Seed
	seed ^= uint64(experiment) * 0x9e3779b97f4a7c15
	seed ^= uint64(param) * 0xc2b2ae3d27d4eb4f
	seed ^= uint64(trial) * 0x165667b19e3779f9
	return xrand.New(seed + 1) // +1 keeps the all-defaults seed nonzero
}

// experiment identifiers for seed derivation.
const (
	expTables12 = iota + 1
	expTable3
	expSweepUniform
	expSweepGaussian
	expFanout
	expPMR
	expExtHash
	expAging
	expBuckets
)

// buildTrees builds cfg.Trials PR quadtrees of n points drawn from the
// source factory and returns their censuses. The factory receives the
// trial's RNG so every tree gets an independent stream.
func (c Config) buildTrees(expID, param, n, capacity, maxDepth int,
	mkSource func(r geom.Rect, rng *xrand.Rand) dist.PointSource) []stats.Census {
	censuses := make([]stats.Census, 0, c.Trials)
	for trial := 0; trial < c.Trials; trial++ {
		rng := c.rng(expID, param, trial)
		t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: capacity, MaxDepth: maxDepth})
		src := mkSource(t.Region(), rng)
		for t.Len() < n {
			if _, err := t.Insert(src.Next(), struct{}{}); err != nil {
				panic(fmt.Sprintf("experiment: insert: %v", err))
			}
		}
		censuses = append(censuses, t.Census())
	}
	return censuses
}

// GeometricSizes returns the paper's tree-size grid for Tables 4-5: from
// lo to hi, points quadrupling every four steps (each step multiplies by
// √2, truncated to an integer, which regenerates the paper's exact
// sequence 64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896,
// 4096).
func GeometricSizes(lo, hi int) []int {
	var out []int
	x := float64(lo)
	for {
		n := int(x)
		if n > hi {
			break
		}
		out = append(out, n)
		x *= 1.4142135623730951
	}
	return out
}
