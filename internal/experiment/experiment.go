// Package experiment contains one runner per artifact of the paper's
// evaluation (Tables 1-5, Figures 2-3, the Section III anchor) plus the
// extension experiments listed in DESIGN.md (fanout sweep, PMR line
// model, exact statistical baseline, extendible-hashing utilization, and
// the aging-correction ablation). Each runner is deterministic given its
// Config and returns typed results; rendering to text lives beside each
// result type so cmd/paper and the benchmarks share one code path.
//
// Independent trials run concurrently on a bounded worker pool sized by
// Config.Workers. Parallelism changes only the wall clock, never the
// numbers: every trial derives its RNG stream from its coordinates
// (experiment, parameter, trial) via xrand.Derive and writes only its
// own slot of a pre-sized result slice, and cross-trial reductions
// happen in trial order after the pool drains, so output is
// bit-identical at every pool width.
package experiment

import (
	"fmt"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// Config holds the shared experimental parameters. The zero value
// reproduces the paper: 10 trees of 1000 points per data point.
type Config struct {
	// Trials is the number of independently built trees averaged per
	// data point; zero selects the paper's 10.
	Trials int
	// Points is the number of points per tree for the fixed-size
	// experiments (Tables 1-3); zero selects the paper's 1000.
	Points int
	// Seed is the base RNG seed; trial t of experiment e derives its
	// stream independently. Zero is a valid (and the default) seed.
	Seed uint64
	// Workers bounds the goroutine pool that independent trials run on;
	// zero selects GOMAXPROCS. Results are bit-identical at every pool
	// width (including 1, an exact sequential mode), because each trial
	// derives its RNG stream from (experiment, parameter, trial) alone
	// and writes only its own slot of the result slice.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.Points == 0 {
		c.Points = 1000
	}
	return c
}

// rng derives a deterministic generator for (experiment, capacity/param,
// trial). The derivation is pure arithmetic on the coordinates (see
// xrand.Derive), so a trial's stream does not depend on which worker
// goroutine runs it or in what order — the invariant the parallel trial
// engine rests on.
func (c Config) rng(experiment, param, trial int) *xrand.Rand {
	seed := xrand.Derive(c.Seed, uint64(experiment), uint64(param), uint64(trial))
	return xrand.New(seed + 1) // +1 keeps the all-defaults seed nonzero
}

// experiment identifiers for seed derivation.
const (
	expTables12 = iota + 1
	expTable3
	expSweepUniform
	expSweepGaussian
	expFanout
	expPMR
	expExtHash
	expAging
	expBuckets
)

// buildTrees builds cfg.Trials PR quadtrees of n points drawn from the
// source factory and returns their censuses, one per trial in trial
// order. The factory receives the trial's RNG so every tree gets an
// independent stream; trials run concurrently on the Config.Workers
// pool, each writing only its own slot.
func (c Config) buildTrees(expID, param, n, capacity, maxDepth int,
	mkSource func(r geom.Rect, rng *xrand.Rand) dist.PointSource) []stats.Census {
	censuses := make([]stats.Census, c.Trials)
	c.forTrials(func(trial int) {
		rng := c.rng(expID, param, trial)
		t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: capacity, MaxDepth: maxDepth})
		src := mkSource(t.Region(), rng)
		for t.Len() < n {
			if _, err := t.Insert(src.Next(), struct{}{}); err != nil {
				panic(fmt.Sprintf("experiment: insert: %v", err))
			}
		}
		censuses[trial] = t.Census()
	})
	return censuses
}

// GeometricSizes returns the paper's tree-size grid for Tables 4-5: from
// lo to hi, points quadrupling every four steps (each step multiplies by
// √2, truncated to an integer, which regenerates the paper's exact
// sequence 64, 90, 128, 181, 256, 362, 512, 724, 1024, 1448, 2048, 2896,
// 4096).
func GeometricSizes(lo, hi int) []int {
	var out []int
	x := float64(lo)
	for {
		n := int(x)
		if n > hi {
			break
		}
		out = append(out, n)
		x *= 1.4142135623730951
	}
	return out
}
