package experiment

import (
	"fmt"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/report"
	"popana/internal/solver"
	"popana/internal/stats"
	"popana/internal/xrand"
)

func solverOptions() solver.Options {
	return solver.Options{Tolerance: 1e-13, MaxIterations: 100000}
}

// SweepPoint is one row of Table 4 or 5: tree-size n against mean leaf
// count and mean occupancy.
type SweepPoint struct {
	Points        int
	MeanLeaves    float64
	MeanOccupancy float64
}

// SweepResult holds a full occupancy-vs-size sweep (phasing experiment).
type SweepResult struct {
	Distribution string // "uniform" or "gaussian"
	Capacity     int
	Rows         []SweepPoint
}

// RunSweep reproduces Table 4 (uniform) or Table 5 (gaussian): build
// Config.Trials trees at every size in sizes and record mean leaves and
// occupancy. gaussian selects the paper's 2σ-wide centered normal
// distribution.
func RunSweep(cfg Config, capacity int, sizes []int, gaussian bool) (SweepResult, error) {
	c := cfg.withDefaults()
	if capacity < 1 {
		return SweepResult{}, fmt.Errorf("experiment: capacity %d < 1", capacity)
	}
	expID := expSweepUniform
	name := "uniform"
	mk := func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) }
	if gaussian {
		expID = expSweepGaussian
		name = "gaussian"
		mk = func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewGaussian(r, rng) }
	}
	res := SweepResult{Distribution: name, Capacity: capacity}
	for _, n := range sizes {
		censuses := c.buildTrees(expID, n, n, capacity, 0, mk)
		sum := stats.Summarize(censuses, capacity+1)
		res.Rows = append(res.Rows, SweepPoint{
			Points:        n,
			MeanLeaves:    sum.MeanLeaves,
			MeanOccupancy: sum.MeanOccupancy,
		})
	}
	return res, nil
}

// RenderSweepTable prints a sweep in the layout of Tables 4 and 5.
func RenderSweepTable(r SweepResult, tableNo int) string {
	t := report.NewTable(
		fmt.Sprintf("Table %d: Variation of occupancy with tree size, %s distribution (m=%d)",
			tableNo, r.Distribution, r.Capacity),
		"points", "nodes", "occupancy")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Points),
			fmt.Sprintf("%.1f", row.MeanLeaves),
			fmt.Sprintf("%.2f", row.MeanOccupancy))
	}
	return t.String()
}

// RenderSweepFigure renders a sweep as the semi-log chart of Figures 2
// and 3.
func RenderSweepFigure(r SweepResult, figNo int) string {
	xs := make([]float64, len(r.Rows))
	ys := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		xs[i] = float64(row.Points)
		ys[i] = row.MeanOccupancy
	}
	ch := report.Chart{
		Title: fmt.Sprintf("Figure %d: average node occupancy vs number of data points (%s distribution, m=%d)",
			figNo, r.Distribution, r.Capacity),
		XLabel:   "number of data points",
		YLabel:   "average occupancy",
		SemiLogX: true,
		Series:   []report.Series{{Name: r.Distribution, X: xs, Y: ys, Marker: '*'}},
	}
	return ch.Render()
}

// RenderFigureWithExact renders Figure 2 with both the simulated data
// points and the exact-recursion curve — the paper's figure shows
// "experimental results and interpolated curve", and the exact expected
// occupancy is precisely that curve, computed rather than fitted.
func RenderFigureWithExact(sim SweepResult, exact StatModelResult, figNo int) string {
	simX := make([]float64, len(sim.Rows))
	simY := make([]float64, len(sim.Rows))
	for i, row := range sim.Rows {
		simX[i] = float64(row.Points)
		simY[i] = row.MeanOccupancy
	}
	exX := make([]float64, len(exact.Sizes))
	exY := make([]float64, len(exact.Sizes))
	for i, n := range exact.Sizes {
		exX[i] = float64(n)
		exY[i] = exact.Occupancy[i]
	}
	ch := report.Chart{
		Title: fmt.Sprintf("Figure %d: occupancy vs points (%s, m=%d) — simulation and exact curve",
			figNo, sim.Distribution, sim.Capacity),
		XLabel:   "number of data points",
		YLabel:   "average occupancy",
		SemiLogX: true,
		Series: []report.Series{
			{Name: "simulated (10-tree mean)", X: simX, Y: simY, Marker: '*'},
			{Name: "exact recursion", X: exX, Y: exY, Marker: 'o'},
		},
	}
	return ch.Render()
}

// OscillationAmplitude measures max-min of occupancy over the rows whose
// point counts lie in [lo, hi]. Comparing early and late windows
// quantifies phasing persistence (uniform) vs damping (gaussian).
func (r SweepResult) OscillationAmplitude(lo, hi int) float64 {
	first := true
	var mn, mx float64
	for _, row := range r.Rows {
		if row.Points < lo || row.Points > hi {
			continue
		}
		if first {
			mn, mx = row.MeanOccupancy, row.MeanOccupancy
			first = false
			continue
		}
		if row.MeanOccupancy < mn {
			mn = row.MeanOccupancy
		}
		if row.MeanOccupancy > mx {
			mx = row.MeanOccupancy
		}
	}
	if first {
		return 0
	}
	return mx - mn
}
