package experiment

import (
	"math"
	"strings"
	"testing"
)

func TestRunChurn(t *testing.T) {
	r, err := RunChurn(quickCfg(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical shape: the churned distribution must match the fresh
	// one within Monte Carlo noise.
	if math.Abs(r.ChurnedOccupancy-r.FreshOccupancy)/r.FreshOccupancy > 0.10 {
		t.Errorf("churn changed steady state: fresh %v churned %v", r.FreshOccupancy, r.ChurnedOccupancy)
	}
	if r.ModelOccupancy <= 0 {
		t.Error("no model prediction")
	}
	if s := RenderChurn([]ChurnResult{r}); !strings.Contains(s, "churned") {
		t.Error("churn rendering")
	}
}

func TestRunPointQuadtree(t *testing.T) {
	r, err := RunPointQuadtree(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	// Random order: depth ~ log4(n); sorted order: a path of length
	// n-1 (all points in quadrant 3 of the previous one when sorted by
	// x then y... strictly, sorted x ascending need not be monotone in
	// y, but heights must still be far above random).
	if r.RandomOrderHeight >= r.SortedOrderHeight {
		t.Errorf("sorted height %v not worse than random %v", r.SortedOrderHeight, r.RandomOrderHeight)
	}
	if r.HeightSpread < 0 {
		t.Error("negative spread")
	}
	if r.RandomOrderMeanDepth <= 0 {
		t.Error("no mean depth")
	}
	if s := RenderPointQuadtree(r); !strings.Contains(s, "PR quadtree") {
		t.Error("E13 rendering")
	}
}

func TestRunRobustness(t *testing.T) {
	rows, err := RunRobustness(quickCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Uniform must be the best-predicted case.
	uniformErr := math.Abs(rows[0].PercentDifference)
	worst := 0.0
	for _, r := range rows[1:] {
		if e := math.Abs(r.PercentDifference); e > worst {
			worst = e
		}
	}
	if uniformErr > worst+5 {
		t.Errorf("uniform error %v worse than worst non-uniform %v", uniformErr, worst)
	}
	if s := RenderRobustness(rows, 4); !strings.Contains(s, "diagonal") {
		t.Error("E14 rendering")
	}
}

func TestRunSpectrum(t *testing.T) {
	rows, err := RunSpectrum([]int{2, 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.Lambda1 <= 1 {
			t.Errorf("F=%d m=%d: λ₁ %v", r.Fanout, r.Capacity, r.Lambda1)
		}
		if r.Gap < 0 || r.Gap > 1 {
			t.Errorf("F=%d m=%d: gap %v", r.Fanout, r.Capacity, r.Gap)
		}
	}
	// Gap grows with capacity at fixed fanout (slower mixing).
	for f := 0; f < 2; f++ {
		base := rows[f*3]
		for i := 1; i < 3; i++ {
			if rows[f*3+i].Gap <= base.Gap {
				t.Errorf("gap not increasing with capacity at fanout %d", rows[f*3].Fanout)
			}
			base = rows[f*3+i]
		}
	}
	if s := RenderSpectrum(rows); !strings.Contains(s, "lambda1") {
		t.Error("E15 rendering")
	}
}

func TestRunExtHashAnalysis(t *testing.T) {
	r, err := RunExtHashAnalysis(quickCfg(), 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range r.Rows {
		// Exact and simulated must track each other closely: the
		// simulation IS the process the recursion describes.
		d := row.ExactUtilization - row.SimUtilization
		if d < 0 {
			d = -d
		}
		if d > 0.08 {
			t.Errorf("n=%d: exact %v vs sim %v", row.Records, row.ExactUtilization, row.SimUtilization)
		}
	}
	// Cycle mean near ln 2.
	if r.ExactMean < 0.64 || r.ExactMean > 0.75 {
		t.Errorf("cycle mean %v, want near 0.693", r.ExactMean)
	}
	if s := RenderExtHashAnalysis(r); !strings.Contains(s, "exact util") {
		t.Error("E16 rendering")
	}
}

func TestRunSearchCost(t *testing.T) {
	r, err := RunSearchCost(quickCfg(), 4, []int{256, 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Search depth within 1.5 levels of the model prediction.
		if math.Abs(row.MeasuredSearchDepth-row.PredictedDepth) > 1.5 {
			t.Errorf("n=%d: measured %v vs predicted %v", row.Points, row.MeasuredSearchDepth, row.PredictedDepth)
		}
		// Aging: searches land shallower than counting leaves suggests.
		if row.MeasuredSearchDepth >= row.MeanLeafDepth {
			t.Errorf("n=%d: search depth %v not below mean leaf depth %v", row.Points, row.MeasuredSearchDepth, row.MeanLeafDepth)
		}
	}
	if s := RenderSearchCost(r); !strings.Contains(s, "log4") {
		t.Error("E17 rendering")
	}
	// Depth grows by ~1 when n quadruples.
	d := r.Rows[1].MeasuredSearchDepth - r.Rows[0].MeasuredSearchDepth
	if d < 0.5 || d > 1.5 {
		t.Errorf("depth growth per 4x points: %v, want ~1", d)
	}
}

func TestRenderFigureWithExact(t *testing.T) {
	sim, err := RunSweep(quickCfg(), 8, []int{64, 128, 256}, false)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := RunStatModel(8, 256)
	if err != nil {
		t.Fatal(err)
	}
	s := RenderFigureWithExact(sim, exact, 2)
	if !strings.Contains(s, "exact recursion") || !strings.Contains(s, "simulated") {
		t.Fatalf("combined figure incomplete:\n%s", s)
	}
}
