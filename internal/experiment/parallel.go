package experiment

import (
	"fmt"
	"runtime"
	"sync"
)

// workers resolves Config.Workers to a concrete pool size for n
// independent units of work: Workers if positive, else GOMAXPROCS,
// never more than n (an idle goroutine buys nothing).
func (c Config) workers(n int) int {
	w := c.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// forTrials runs fn(trial) for every trial in [0, c.Trials) on a bounded
// worker pool and blocks until all complete. Each trial must be
// independent: it derives its own RNG stream via Config.rng and writes
// only to its own index of a pre-sized result slice, so the output is
// bit-identical whether the pool has one worker (fully sequential) or
// many. A panic in any trial is re-raised in the caller after the pool
// drains, mirroring the sequential failure mode.
func (c Config) forTrials(fn func(trial int)) {
	c.parFor(c.Trials, fn)
}

// forTrialsErr is forTrials for trial bodies that can fail: every trial
// still runs (no cancellation — trials are short and side-effect-free),
// and the error of the lowest-numbered failing trial is returned, which
// is the error a sequential run would have surfaced first.
func (c Config) forTrialsErr(fn func(trial int) error) error {
	errs := make([]error, c.Trials)
	c.forTrials(func(trial int) { errs[trial] = fn(trial) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// parFor is the engine under forTrials: it fans n index-addressed tasks
// out to c.workers(n) goroutines over a shared channel and fans back in
// with a WaitGroup. With one worker it degenerates to a plain loop in
// index order, which keeps Workers=1 an exact sequential-execution mode
// (useful for bisecting any suspected nondeterminism, not just for
// reproducing results — those are identical at any width).
func (c Config) parFor(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := c.workers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	tasks := make(chan int)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range tasks {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		tasks <- i
	}
	close(tasks)
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("experiment: worker panic: %v", panicked))
	}
}
