package experiment

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// TestWorkersResolution pins the pool-size policy.
func TestWorkersResolution(t *testing.T) {
	if w := (Config{Workers: 3}).workers(10); w != 3 {
		t.Errorf("explicit Workers: got %d, want 3", w)
	}
	if w := (Config{Workers: 8}).workers(2); w != 2 {
		t.Errorf("clamp to task count: got %d, want 2", w)
	}
	if w := (Config{}).workers(10); w < 1 {
		t.Errorf("default workers must be >= 1, got %d", w)
	}
}

// TestParForCoversAllIndices checks every index runs exactly once at
// several pool widths.
func TestParForCoversAllIndices(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		c := Config{Workers: w}
		counts := make([]int, 100)
		c.parFor(len(counts), func(i int) { counts[i]++ })
		for i, n := range counts {
			if n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", w, i, n)
			}
		}
	}
}

// TestForTrialsErrReturnsLowestTrialError checks the error surfaced is
// the one a sequential run would have hit first.
func TestForTrialsErrReturnsLowestTrialError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	c := Config{Trials: 10, Workers: 4}
	err := c.forTrialsErr(func(trial int) error {
		switch trial {
		case 3:
			return errLow
		case 7:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("got %v, want the trial-3 error", err)
	}
}

// TestParForPanicPropagates checks a worker panic reaches the caller.
func TestParForPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic swallowed by the worker pool")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic payload lost: %v", r)
		}
	}()
	c := Config{Workers: 4}
	c.parFor(8, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestParallelDeterminism is the engine's core guarantee: every
// experiment family produces bit-identical results at any worker-pool
// width, because per-trial RNG streams are derived from coordinates, not
// from execution order.
func TestParallelDeterminism(t *testing.T) {
	base := Config{Trials: 6, Points: 200, Seed: 7}
	run := func(workers int) map[string]any {
		cfg := base
		cfg.Workers = workers
		out := map[string]any{}
		caps, err := RunTables12(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		out["tables12"] = caps
		sweep, err := RunSweep(cfg, 4, GeometricSizes(64, 256), false)
		if err != nil {
			t.Fatal(err)
		}
		out["sweep"] = sweep
		pmr, err := RunPMR(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		out["pmr"] = pmr
		churn, err := RunChurn(cfg, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		out["churn"] = churn
		buckets, err := RunBucketBaselines(cfg, 4, 512)
		if err != nil {
			t.Fatal(err)
		}
		out["buckets"] = buckets
		pq, err := RunPointQuadtree(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out["pointquadtree"] = pq
		rob, err := RunRobustness(cfg, 2)
		if err != nil {
			t.Fatal(err)
		}
		out["robustness"] = rob
		eh, err := RunExtHashAnalysis(cfg, 4, 512)
		if err != nil {
			t.Fatal(err)
		}
		out["exthash"] = eh
		return out
	}
	sequential := run(1)
	parallel := run(8)
	for name := range sequential {
		if !reflect.DeepEqual(sequential[name], parallel[name]) {
			t.Errorf("%s: workers=8 differs from workers=1\nseq: %+v\npar: %+v",
				name, sequential[name], parallel[name])
		}
	}
}
