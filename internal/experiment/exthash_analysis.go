package experiment

import (
	"fmt"

	"popana/internal/exthash"
	"popana/internal/report"
	"popana/internal/statmodel"
	"popana/internal/stats"
)

// E16 — exact analysis of extendible hashing.
//
// Fagin et al.'s analysis of extendible hashing and the quadtree
// statistical baseline are the same mathematics: a bucket splits its
// keys by one more hash bit, i.e. Binomial(n, 1/2) per child — the
// fanout-2 instance of the recursion in internal/statmodel. E16 makes
// the identification concrete: the exact expected utilization from the
// F=2 recursion is compared against a simulated extendible-hashing
// table at every size on the paper's √2 grid, exhibiting the ln 2
// asymptote with the non-damping oscillation Fagin et al. predicted and
// Section IV reinterprets as phasing.

// ExtHashPoint is one row of E16.
type ExtHashPoint struct {
	Records          int
	ExactUtilization float64
	SimUtilization   float64
}

// ExtHashAnalysis is the E16 result.
type ExtHashAnalysis struct {
	BucketCapacity int
	Rows           []ExtHashPoint
	// ExactMean is the cycle-mean exact utilization over the last
	// period — the quantity that converges to ln 2 as capacity grows.
	ExactMean float64
}

// RunExtHashAnalysis runs E16 for one bucket capacity over sizes up to
// maxN.
func RunExtHashAnalysis(cfg Config, capacity, maxN int) (ExtHashAnalysis, error) {
	c := cfg.withDefaults()
	exact, err := statmodel.New(capacity, 2, maxN)
	if err != nil {
		return ExtHashAnalysis{}, err
	}
	sizes := GeometricSizes(64, maxN)
	res := ExtHashAnalysis{BucketCapacity: capacity}
	for _, n := range sizes {
		// Exact: utilization = n / (b · E[buckets]).
		exactUtil := float64(n) / (float64(capacity) * exact.ExpectedLeaves(n))
		// Simulated.
		utils := make([]float64, c.Trials)
		if err := c.forTrialsErr(func(trial int) error {
			rng := c.rng(expExtHash, n, trial)
			tab := exthash.MustNew(exthash.Config{BucketCapacity: capacity})
			for tab.Len() < n {
				if _, err := tab.Put(rng.Uint64(), nil); err != nil {
					return err
				}
			}
			utils[trial] = tab.Utilization()
			return nil
		}); err != nil {
			return ExtHashAnalysis{}, err
		}
		res.Rows = append(res.Rows, ExtHashPoint{
			Records:          n,
			ExactUtilization: exactUtil,
			SimUtilization:   stats.Mean(utils),
		})
	}
	// Cycle mean over the last factor-of-2 window (period of F=2).
	sum, cnt := 0.0, 0
	for _, r := range res.Rows {
		if r.Records > maxN/2 {
			sum += r.ExactUtilization
			cnt++
		}
	}
	if cnt > 0 {
		res.ExactMean = sum / float64(cnt)
	}
	return res, nil
}

// RenderExtHashAnalysis prints E16.
func RenderExtHashAnalysis(r ExtHashAnalysis) string {
	t := report.NewTable(
		fmt.Sprintf("E16: extendible hashing — exact analysis (F=2 recursion) vs simulation (b=%d; ln 2 = 0.693)",
			r.BucketCapacity),
		"records", "exact util", "simulated util")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.Records),
			fmt.Sprintf("%.4f", row.ExactUtilization),
			fmt.Sprintf("%.4f", row.SimUtilization))
	}
	s := t.String()
	s += fmt.Sprintf("cycle-mean exact utilization over the last period: %.4f\n", r.ExactMean)
	return s
}
