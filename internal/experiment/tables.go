package experiment

import (
	"fmt"
	"math"

	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/report"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// CapacityResult is one row of Tables 1 and 2: theory vs experiment for
// a single node capacity.
type CapacityResult struct {
	Capacity int
	// Theory is the model's expected distribution ē.
	Theory core.Distribution
	// Experimental is the trial-mean distribution of leaf occupancies.
	Experimental []float64
	// TheoryOccupancy and ExperimentalOccupancy are the average node
	// occupancies (Table 2's columns).
	TheoryOccupancy       float64
	ExperimentalOccupancy float64
	// PercentDifference is 100·(thy−exp)/exp, Table 2's last column.
	PercentDifference float64
	// Spread is the relative spread of per-trial occupancies — the
	// paper's "typically within about 10%" check.
	Spread float64
}

// RunTables12 reproduces Tables 1 and 2: for each node capacity in
// [1, maxCapacity], solve the model and build Config.Trials uniform
// random trees of Config.Points points.
func RunTables12(cfg Config, maxCapacity int) ([]CapacityResult, error) {
	c := cfg.withDefaults()
	if maxCapacity < 1 {
		return nil, fmt.Errorf("experiment: max capacity %d < 1", maxCapacity)
	}
	results := make([]CapacityResult, 0, maxCapacity)
	for m := 1; m <= maxCapacity; m++ {
		model, err := core.NewPointModel(m, 4)
		if err != nil {
			return nil, err
		}
		theory, err := model.Solve()
		if err != nil {
			return nil, err
		}
		censuses := c.buildTrees(expTables12, m, c.Points, m, 0,
			func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) })
		sum := stats.Summarize(censuses, m+1)
		expOcc := sum.MeanOccupancy
		thyOcc := theory.AverageOccupancy()
		results = append(results, CapacityResult{
			Capacity:              m,
			Theory:                theory,
			Experimental:          sum.MeanProportions,
			TheoryOccupancy:       thyOcc,
			ExperimentalOccupancy: expOcc,
			PercentDifference:     100 * (thyOcc - expOcc) / expOcc,
			Spread:                sum.OccupancySpread,
		})
	}
	return results, nil
}

// RenderTable1 prints the results in the layout of Table 1.
func RenderTable1(rs []CapacityResult) string {
	t := report.NewTable("Table 1: Expected distribution in PR quadtrees, theoretical (thy) and experimental (exp)",
		"bucket size", "", "expected distribution vector").AlignLeft(1, 2)
	for _, r := range rs {
		t.AddRow(fmt.Sprintf("%d", r.Capacity), "thy", report.FormatVec(r.Theory.E))
		t.AddRow("", "exp", report.FormatVec(r.Experimental))
	}
	return t.String()
}

// RenderTable2 prints the results in the layout of Table 2.
func RenderTable2(rs []CapacityResult) string {
	t := report.NewTable("Table 2: Average node occupancy",
		"node capacity", "experimental occupancy", "theoretical occupancy", "percent difference")
	for _, r := range rs {
		t.AddRowf("%.2f", r.Capacity, r.ExperimentalOccupancy, r.TheoryOccupancy,
			fmt.Sprintf("%.1f", r.PercentDifference))
	}
	return t.String()
}

// DepthRow is one row of Table 3: the mean leaf populations at a depth.
type DepthRow struct {
	Depth int
	// MeanLeavesByOccupancy[i] is the trial-mean count of occupancy-i
	// leaves at this depth (Table 3's n_0 and n_1 columns for m=1).
	MeanLeavesByOccupancy []float64
	// Occupancy is mean items per leaf at this depth.
	Occupancy float64
}

// Table3Result reproduces Table 3 (the aging measurement) plus the
// model's post-split occupancy the depths converge to.
type Table3Result struct {
	Capacity int
	Rows     []DepthRow
	// PostSplitOccupancy is the model's expected occupancy of a
	// freshly split population (0.40 for m=1), the asymptote of the
	// occupancy column.
	PostSplitOccupancy float64
}

// RunTable3 reproduces Table 3: occupancy by node depth for capacity m
// trees of Config.Points uniform points, truncated at maxDepth as the
// paper's implementation was (depth 9).
func RunTable3(cfg Config, capacity, maxDepth int) (Table3Result, error) {
	c := cfg.withDefaults()
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return Table3Result{}, err
	}
	censuses := c.buildTrees(expTable3, capacity, c.Points, capacity, maxDepth,
		func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) })
	// Aggregate per-depth occupancy histograms across trials.
	maxD := 0
	for _, cs := range censuses {
		if len(cs.ByDepth) > maxD {
			maxD = len(cs.ByDepth)
		}
	}
	rows := make([]DepthRow, maxD)
	for d := range rows {
		rows[d].Depth = d
		rows[d].MeanLeavesByOccupancy = make([]float64, capacity+1)
	}
	leaves := make([]float64, maxD)
	items := make([]float64, maxD)
	for _, cs := range censuses {
		for d, dc := range cs.ByDepth {
			leaves[d] += float64(dc.Leaves)
			items[d] += float64(dc.Items)
			for occ, cnt := range dc.ByOccupancy {
				i := occ
				if i > capacity {
					i = capacity
				}
				rows[d].MeanLeavesByOccupancy[i] += float64(cnt)
			}
		}
	}
	inv := 1 / float64(len(censuses))
	for d := range rows {
		for i := range rows[d].MeanLeavesByOccupancy {
			rows[d].MeanLeavesByOccupancy[i] *= inv
		}
		if leaves[d] > 0 {
			rows[d].Occupancy = items[d] / leaves[d]
		} else {
			rows[d].Occupancy = math.NaN()
		}
	}
	// Drop leading depths with no leaves (the paper's table starts at
	// the first populated depth).
	first := 0
	for first < len(rows) && leaves[first] == 0 {
		first++
	}
	return Table3Result{
		Capacity:           capacity,
		Rows:               rows[first:],
		PostSplitOccupancy: model.PostSplitOccupancy(),
	}, nil
}

// RenderTable3 prints the result in the layout of Table 3.
func RenderTable3(r Table3Result) string {
	header := []string{"depth"}
	for i := 0; i <= r.Capacity; i++ {
		header = append(header, fmt.Sprintf("n%d nodes", i))
	}
	header = append(header, "occupancy")
	t := report.NewTable(
		fmt.Sprintf("Table 3: Occupancy by node size (m=%d; post-split asymptote %.2f)", r.Capacity, r.PostSplitOccupancy),
		header...)
	for _, row := range r.Rows {
		cells := []string{fmt.Sprintf("%d", row.Depth)}
		for _, v := range row.MeanLeavesByOccupancy {
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row.Occupancy))
		t.AddRow(cells...)
	}
	return t.String()
}

// AnchorResult is experiment E6: the closed-form simple PR quadtree
// solution against both solvers and the simulation.
type AnchorResult struct {
	Exact        core.Distribution
	FixedPoint   core.Distribution
	Newton       core.Distribution
	Experimental []float64
}

// RunAnchor verifies the m=1 analytic anchor of Section III.
func RunAnchor(cfg Config) (AnchorResult, error) {
	c := cfg.withDefaults()
	model, err := core.NewPointModel(1, 4)
	if err != nil {
		return AnchorResult{}, err
	}
	fp, err := model.Solve()
	if err != nil {
		return AnchorResult{}, err
	}
	nw, err := model.SolveNewton(solverOptions())
	if err != nil {
		return AnchorResult{}, err
	}
	censuses := c.buildTrees(expTables12, 1, c.Points, 1, 0,
		func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) })
	sum := stats.Summarize(censuses, 2)
	return AnchorResult{
		Exact:        core.SimplePRExact(),
		FixedPoint:   fp,
		Newton:       nw,
		Experimental: sum.MeanProportions,
	}, nil
}
