package experiment

import (
	"fmt"
	"math"

	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/pointquadtree"
	"popana/internal/quadtree"
	"popana/internal/report"
	"popana/internal/stats"
	"popana/internal/xrand"
)

// experiment identifiers (continued).
const (
	expChurn = iota + 100
	expPointQuadtree
	expRobustness
	expSearchCost
)

// ChurnResult is experiment E12: the steady state under a dynamic
// insert/delete workload. The paper analyzes pure insertion; because
// the PR quadtree's shape is canonical in its point set (deletion
// merges blocks back), the population model should hold for a churning
// structure of stable size too — this experiment verifies it, and with
// it the delete/merge path's statistical correctness.
type ChurnResult struct {
	Capacity int
	// FreshOccupancy is the average occupancy of freshly built trees.
	FreshOccupancy float64
	// ChurnedOccupancy is the occupancy after ChurnOps random
	// insert/delete pairs at stable size.
	ChurnedOccupancy float64
	// ModelOccupancy is the population-model prediction.
	ModelOccupancy float64
	// FreshDistribution and ChurnedDistribution are the measured
	// distributions.
	FreshDistribution, ChurnedDistribution []float64
	ChurnOps                               int
}

// RunChurn runs E12 for one capacity: build to Config.Points, then
// churn with opsFactor·Points delete+insert pairs, comparing censuses.
func RunChurn(cfg Config, capacity, opsFactor int) (ChurnResult, error) {
	c := cfg.withDefaults()
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return ChurnResult{}, err
	}
	thy, err := model.Solve()
	if err != nil {
		return ChurnResult{}, err
	}
	fresh := make([]stats.Census, c.Trials)
	churned := make([]stats.Census, c.Trials)
	ops := opsFactor * c.Points
	if err := c.forTrialsErr(func(trial int) error {
		rng := c.rng(expChurn, capacity, trial)
		t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: capacity})
		src := dist.NewUniform(t.Region(), rng)
		var live []geom.Point
		for t.Len() < c.Points {
			p := src.Next()
			if replaced, err := t.Insert(p, struct{}{}); err != nil {
				return err
			} else if !replaced {
				live = append(live, p)
			}
		}
		fresh[trial] = t.Census()
		for op := 0; op < ops; op++ {
			// Delete a random live point, insert a fresh one.
			i := rng.Intn(len(live))
			if !t.Delete(live[i]) {
				return fmt.Errorf("experiment: churn delete failed")
			}
			p := src.Next()
			if replaced, err := t.Insert(p, struct{}{}); err != nil {
				return err
			} else if replaced {
				// Point collision (astronomically rare): retry once.
				op--
				continue
			}
			live[i] = p
		}
		churned[trial] = t.Census()
		return nil
	}); err != nil {
		return ChurnResult{}, err
	}
	fs := stats.Summarize(fresh, capacity+1)
	cs := stats.Summarize(churned, capacity+1)
	return ChurnResult{
		Capacity:            capacity,
		FreshOccupancy:      fs.MeanOccupancy,
		ChurnedOccupancy:    cs.MeanOccupancy,
		ModelOccupancy:      thy.AverageOccupancy(),
		FreshDistribution:   fs.MeanProportions,
		ChurnedDistribution: cs.MeanProportions,
		ChurnOps:            ops,
	}, nil
}

// RenderChurn prints E12.
func RenderChurn(rs []ChurnResult) string {
	t := report.NewTable("E12: steady state under churn (delete+insert pairs at stable size)",
		"capacity", "fresh occ", "churned occ", "model occ", "churn ops")
	for _, r := range rs {
		t.AddRow(fmt.Sprintf("%d", r.Capacity),
			fmt.Sprintf("%.3f", r.FreshOccupancy),
			fmt.Sprintf("%.3f", r.ChurnedOccupancy),
			fmt.Sprintf("%.3f", r.ModelOccupancy),
			fmt.Sprintf("%d", r.ChurnOps))
	}
	return t.String()
}

// PointQuadtreeResult is experiment E13: the Section II contrast between
// regular (PR) and data-dependent (point quadtree) decomposition.
type PointQuadtreeResult struct {
	Points int
	// RandomOrderMeanDepth and Height are averaged over trials with
	// random insertion order.
	RandomOrderMeanDepth float64
	RandomOrderHeight    float64
	// HeightSpread is (max-min)/mean of the point quadtree height
	// across insertion orders of the SAME point set — nonzero order
	// dependence.
	HeightSpread float64
	// SortedOrderHeight is the height when the same points are
	// inserted in sorted order (the degenerate case).
	SortedOrderHeight float64
	// PRHeight is the PR quadtree height for the same point sets (any
	// order — it is canonical).
	PRHeight float64
}

// RunPointQuadtree runs E13 with Config.Points uniform points.
func RunPointQuadtree(cfg Config) (PointQuadtreeResult, error) {
	c := cfg.withDefaults()
	meanDepths := make([]float64, c.Trials)
	heights := make([]float64, c.Trials)
	prHeights := make([]float64, c.Trials)
	var spreadHeights []float64
	var sortedHeight float64
	if err := c.forTrialsErr(func(trial int) error {
		rng := c.rng(expPointQuadtree, 0, trial)
		pts := make([]geom.Point, c.Points)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
		// Random order (as generated).
		pq := pointquadtree.MustNew(geom.Rect{})
		for _, p := range pts {
			if _, err := pq.Insert(p, nil); err != nil {
				return err
			}
		}
		s := pq.Analyze()
		meanDepths[trial] = s.MeanDepth()
		heights[trial] = float64(s.Height)
		// Order sensitivity: rebuild the same set under permutations.
		// Only trial 0 does this, so the single-writer invariant holds
		// for spreadHeights and sortedHeight too.
		if trial == 0 {
			var hs []float64
			for perm := 0; perm < 8; perm++ {
				order := rng.Perm(len(pts))
				pq2 := pointquadtree.MustNew(geom.Rect{})
				for _, i := range order {
					if _, err := pq2.Insert(pts[i], nil); err != nil {
						return err
					}
				}
				hs = append(hs, float64(pq2.Analyze().Height))
			}
			spreadHeights = hs
			// Sorted order: ascending x then y — strongly degenerate.
			sorted := append([]geom.Point{}, pts...)
			sortPoints(sorted)
			pq3 := pointquadtree.MustNew(geom.Rect{})
			for _, p := range sorted {
				if _, err := pq3.Insert(p, nil); err != nil {
					return err
				}
			}
			sortedHeight = float64(pq3.Analyze().Height)
		}
		// PR quadtree reference.
		pr := quadtree.MustNew[struct{}](quadtree.Config{Capacity: 1})
		for _, p := range pts {
			if _, err := pr.Insert(p, struct{}{}); err != nil {
				return err
			}
		}
		prHeights[trial] = float64(pr.Census().Height)
		return nil
	}); err != nil {
		return PointQuadtreeResult{}, err
	}
	return PointQuadtreeResult{
		Points:               c.Points,
		RandomOrderMeanDepth: stats.Mean(meanDepths),
		RandomOrderHeight:    stats.Mean(heights),
		HeightSpread:         stats.RelativeSpread(spreadHeights),
		SortedOrderHeight:    sortedHeight,
		PRHeight:             stats.Mean(prHeights),
	}, nil
}

// sortPoints sorts ascending by (X, Y) with a simple in-place heapsort
// (avoids importing sort for a slice of structs in two lines... sort is
// fine, actually — but keep allocation-free).
func sortPoints(pts []geom.Point) {
	less := func(a, b geom.Point) bool {
		if a.X != b.X {
			return a.X < b.X
		}
		return a.Y < b.Y
	}
	// Heapsort.
	n := len(pts)
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(pts, i, n, less)
	}
	for end := n - 1; end > 0; end-- {
		pts[0], pts[end] = pts[end], pts[0]
		siftDown(pts, 0, end, less)
	}
}

func siftDown(pts []geom.Point, root, end int, less func(a, b geom.Point) bool) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && less(pts[child], pts[child+1]) {
			child++
		}
		if !less(pts[root], pts[child]) {
			return
		}
		pts[root], pts[child] = pts[child], pts[root]
		root = child
	}
}

// RenderPointQuadtree prints E13.
func RenderPointQuadtree(r PointQuadtreeResult) string {
	t := report.NewTable(
		fmt.Sprintf("E13: point quadtree (data-dependent) vs PR quadtree (regular), %d points", r.Points),
		"statistic", "value").AlignLeft(0)
	t.AddRow("point quadtree mean depth (random order)", fmt.Sprintf("%.2f", r.RandomOrderMeanDepth))
	t.AddRow("point quadtree height (random order)", fmt.Sprintf("%.1f", r.RandomOrderHeight))
	t.AddRow("height spread across insertion orders", fmt.Sprintf("%.0f%%", 100*r.HeightSpread))
	t.AddRow("point quadtree height (sorted order)", fmt.Sprintf("%.0f", r.SortedOrderHeight))
	t.AddRow("PR quadtree height (any order)", fmt.Sprintf("%.1f", r.PRHeight))
	return t.String()
}

// RobustnessRow is experiment E14: how the uniform-data model degrades
// on non-uniform inputs.
type RobustnessRow struct {
	Distribution          string
	ExperimentalOccupancy float64
	ModelOccupancy        float64
	PercentDifference     float64
}

// RunRobustness runs E14 for one capacity over a ladder of increasingly
// non-uniform distributions.
func RunRobustness(cfg Config, capacity int) ([]RobustnessRow, error) {
	c := cfg.withDefaults()
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return nil, err
	}
	thy, err := model.Solve()
	if err != nil {
		return nil, err
	}
	thyOcc := thy.AverageOccupancy()
	type spec struct {
		name string
		mk   func(r geom.Rect, rng *xrand.Rand) dist.PointSource
	}
	specs := []spec{
		{"uniform", func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewUniform(r, rng) }},
		{"gaussian (2σ wide)", func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewGaussian(r, rng) }},
		{"clusters k=16 σ=0.05", func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewClusters(r, 16, 0.05, rng) }},
		{"clusters k=4 σ=0.01", func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewClusters(r, 4, 0.01, rng) }},
		{"diagonal jitter=0.05", func(r geom.Rect, rng *xrand.Rand) dist.PointSource { return dist.NewDiagonal(r, 0.05, rng) }},
	}
	var rows []RobustnessRow
	for si, sp := range specs {
		censuses := make([]stats.Census, c.Trials)
		if err := c.forTrialsErr(func(trial int) error {
			rng := c.rng(expRobustness, si*10+capacity, trial)
			t := quadtree.MustNew[struct{}](quadtree.Config{Capacity: capacity})
			src := sp.mk(t.Region(), rng)
			for t.Len() < c.Points {
				if _, err := t.Insert(src.Next(), struct{}{}); err != nil {
					return err
				}
			}
			censuses[trial] = t.Census()
			return nil
		}); err != nil {
			return nil, err
		}
		sum := stats.Summarize(censuses, capacity+1)
		rows = append(rows, RobustnessRow{
			Distribution:          sp.name,
			ExperimentalOccupancy: sum.MeanOccupancy,
			ModelOccupancy:        thyOcc,
			PercentDifference:     100 * (thyOcc - sum.MeanOccupancy) / sum.MeanOccupancy,
		})
	}
	return rows, nil
}

// RenderRobustness prints E14.
func RenderRobustness(rows []RobustnessRow, capacity int) string {
	t := report.NewTable(
		fmt.Sprintf("E14: model robustness to non-uniform data (m=%d; model predicts %.2f)",
			capacity, rows[0].ModelOccupancy),
		"distribution", "exp occ", "% diff vs model").AlignLeft(0)
	for _, r := range rows {
		t.AddRow(r.Distribution,
			fmt.Sprintf("%.2f", r.ExperimentalOccupancy),
			fmt.Sprintf("%.1f", r.PercentDifference))
	}
	return t.String()
}

// SpectrumRow is experiment E15: spectral diagnostics of the transform
// matrices — the quantity that governs how fast the paper's iteration
// converges and how quickly the physical structure forgets its past.
type SpectrumRow struct {
	Fanout, Capacity int
	Lambda1          float64
	Lambda2Abs       float64
	Gap              float64
	Mixing           float64
	SolverIterations int
}

// RunSpectrum computes E15 for the given fanouts and capacities.
func RunSpectrum(fanouts []int, maxCapacity int) ([]SpectrumRow, error) {
	var rows []SpectrumRow
	for _, f := range fanouts {
		for m := 1; m <= maxCapacity; m++ {
			model, err := core.NewPointModel(m, f)
			if err != nil {
				return nil, err
			}
			s, err := model.Spectrum(0)
			if err != nil {
				return nil, err
			}
			d, err := model.Solve()
			if err != nil {
				return nil, err
			}
			rows = append(rows, SpectrumRow{
				Fanout:           f,
				Capacity:         m,
				Lambda1:          s.Lambda1,
				Lambda2Abs:       s.Lambda2Abs,
				Gap:              s.Gap,
				Mixing:           s.MixingInsertions(),
				SolverIterations: d.Iterations,
			})
		}
	}
	return rows, nil
}

// RenderSpectrum prints E15.
func RenderSpectrum(rows []SpectrumRow) string {
	t := report.NewTable("E15: spectral diagnostics of the transform matrices",
		"fanout", "capacity", "lambda1 (=a)", "|lambda2|", "gap", "mixing (insertions/node)", "solver iterations")
	for _, r := range rows {
		mix := fmt.Sprintf("%.1f", r.Mixing)
		if math.IsInf(r.Mixing, 1) {
			mix = "inf"
		}
		t.AddRow(fmt.Sprintf("%d", r.Fanout), fmt.Sprintf("%d", r.Capacity),
			fmt.Sprintf("%.4f", r.Lambda1), fmt.Sprintf("%.4f", r.Lambda2Abs),
			fmt.Sprintf("%.4f", r.Gap), mix, fmt.Sprintf("%d", r.SolverIterations))
	}
	return t.String()
}
