// Package hypertree generalizes the PR quadtree to d dimensions: a
// regular recursive decomposition of a d-dimensional unit box into 2^d
// congruent orthants, with leaf capacity m. For d = 2 it is the PR
// quadtree, d = 3 the PR octree [Jack80, Meag82], d = 1 a bucketed
// binary trie over an interval.
//
// The paper asserts that "the same principles apply in the case of
// octrees and higher dimensional data structures"; this package is the
// substrate on which the fanout-F population model (F = 2^d) is
// validated experimentally (experiment E7).
package hypertree

import (
	"errors"
	"fmt"

	"popana/internal/stats"
	"popana/internal/xrand"
)

// DefaultMaxDepth bounds decomposition when Config.MaxDepth is zero.
const DefaultMaxDepth = 40

// ErrOutOfRegion is returned for points outside the unit box.
var ErrOutOfRegion = errors.New("hypertree: point outside unit box")

// Point is a point in [0,1)^d; its length fixes the dimension.
type Point []float64

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

func (p Point) equal(q Point) bool {
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// RandomPoint draws a uniform point in [0,1)^d.
func RandomPoint(d int, rng *xrand.Rand) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()
	}
	return p
}

// Config configures a tree.
type Config struct {
	// Dim is the dimension d >= 1; fanout is 2^d.
	Dim int
	// Capacity is the leaf capacity m >= 1.
	Capacity int
	// MaxDepth truncates decomposition; zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Dim < 1 || c.Dim > 16 {
		return c, fmt.Errorf("hypertree: dimension %d outside 1..16", c.Dim)
	}
	if c.Capacity < 1 {
		return c, fmt.Errorf("hypertree: capacity %d < 1", c.Capacity)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("hypertree: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

type node struct {
	children []*node // nil iff leaf; length 2^d otherwise
	pts      []Point
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a PR 2^d-tree over the unit box storing distinct points.
type Tree struct {
	cfg    Config
	fanout int
	root   *node
	size   int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: c, fanout: 1 << c.Dim, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// Fanout returns 2^d.
func (t *Tree) Fanout() int { return t.fanout }

// Dim returns the dimension d.
func (t *Tree) Dim() int { return t.cfg.Dim }

// orthant computes the orthant index of p within the block identified by
// origin/size: bit i of the index is set when p lies in the upper half
// along axis i. It also advances origin to the chosen child's origin.
func (t *Tree) orthant(p Point, origin []float64, size float64) int {
	idx := 0
	half := size / 2
	for i := 0; i < t.cfg.Dim; i++ {
		if p[i] >= origin[i]+half {
			idx |= 1 << i
			origin[i] += half
		}
	}
	return idx
}

// Insert stores p, returning whether an equal point was replaced.
// The point must lie in [0,1)^d and have the tree's dimension.
func (t *Tree) Insert(p Point) (replaced bool, err error) {
	if len(p) != t.cfg.Dim {
		return false, fmt.Errorf("hypertree: point dimension %d, tree dimension %d", len(p), t.cfg.Dim)
	}
	for _, x := range p {
		if x < 0 || x >= 1 {
			return false, fmt.Errorf("%w: %v", ErrOutOfRegion, p)
		}
	}
	origin := make([]float64, t.cfg.Dim)
	size := 1.0
	n, depth := t.root, 0
	for !n.leaf() {
		q := t.orthant(p, origin, size)
		size /= 2
		n = n.children[q]
		depth++
	}
	for i := range n.pts {
		if n.pts[i].equal(p) {
			n.pts[i] = p.Clone()
			return true, nil
		}
	}
	n.pts = append(n.pts, p.Clone())
	t.size++
	for len(n.pts) > t.cfg.Capacity && depth < t.cfg.MaxDepth {
		t.split(n, origin, size)
		over := -1
		for c, ch := range n.children {
			if len(ch.pts) > t.cfg.Capacity {
				over = c
				break
			}
		}
		if over < 0 {
			break
		}
		half := size / 2
		for i := 0; i < t.cfg.Dim; i++ {
			if over&(1<<i) != 0 {
				origin[i] += half
			}
		}
		size = half
		n = n.children[over]
		depth++
	}
	return false, nil
}

func (t *Tree) split(n *node, origin []float64, size float64) {
	n.children = make([]*node, t.fanout)
	for q := range n.children {
		n.children[q] = &node{}
	}
	half := size / 2
	for _, p := range n.pts {
		idx := 0
		for i := 0; i < t.cfg.Dim; i++ {
			if p[i] >= origin[i]+half {
				idx |= 1 << i
			}
		}
		n.children[idx].pts = append(n.children[idx].pts, p)
	}
	n.pts = nil
}

// Contains reports whether an equal point is stored.
func (t *Tree) Contains(p Point) bool {
	if len(p) != t.cfg.Dim {
		return false
	}
	for _, x := range p {
		if x < 0 || x >= 1 {
			return false
		}
	}
	origin := make([]float64, t.cfg.Dim)
	size := 1.0
	n := t.root
	for !n.leaf() {
		q := t.orthant(p, origin, size)
		size /= 2
		n = n.children[q]
	}
	for i := range n.pts {
		if n.pts[i].equal(p) {
			return true
		}
	}
	return false
}

// Census returns the occupancy census of the tree's leaves. Relative
// block volume at depth k is 2^(-dk).
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	t.census(t.root, 0, &b)
	return b.Census()
}

func (t *Tree) census(n *node, depth int, b *stats.CensusBuilder) {
	if n.leaf() {
		vol := 1.0
		for i := 0; i < depth*t.cfg.Dim; i++ {
			vol /= 2
		}
		b.AddLeaf(depth, len(n.pts), vol)
		return
	}
	b.AddInternal(depth)
	for _, c := range n.children {
		t.census(c, depth+1, b)
	}
}
