package hypertree

import (
	"fmt"
	"testing"

	"popana/internal/xrand"
)

func TestInsertContains(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4} {
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			tr := MustNew(Config{Dim: d, Capacity: 2})
			rng := xrand.New(uint64(d))
			pts := make([]Point, 200)
			for i := range pts {
				pts[i] = RandomPoint(d, rng)
				replaced, err := tr.Insert(pts[i])
				if err != nil {
					t.Fatal(err)
				}
				if replaced {
					t.Fatalf("fresh point reported replaced")
				}
			}
			if tr.Len() != 200 {
				t.Fatalf("Len = %d", tr.Len())
			}
			for _, p := range pts {
				if !tr.Contains(p) {
					t.Fatalf("lost point %v", p)
				}
			}
			if tr.Contains(RandomPoint(d, rng)) {
				t.Fatal("contains never-inserted point (astronomically unlikely)")
			}
		})
	}
}

func TestFanout(t *testing.T) {
	for d := 1; d <= 4; d++ {
		tr := MustNew(Config{Dim: d, Capacity: 1})
		if tr.Fanout() != 1<<d {
			t.Errorf("d=%d: fanout %d", d, tr.Fanout())
		}
		if tr.Dim() != d {
			t.Errorf("d=%d: Dim() = %d", d, tr.Dim())
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, Capacity: 1}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(Config{Dim: 17, Capacity: 1}); err == nil {
		t.Error("dim 17 accepted")
	}
	if _, err := New(Config{Dim: 2, Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(Config{Dim: 2, Capacity: 1, MaxDepth: -1}); err == nil {
		t.Error("negative max depth accepted")
	}
	tr := MustNew(Config{Dim: 2, Capacity: 1})
	if _, err := tr.Insert(Point{0.5}); err == nil {
		t.Error("wrong-dimension point accepted")
	}
	if _, err := tr.Insert(Point{0.5, 1.0}); err == nil {
		t.Error("out-of-box point accepted")
	}
	if _, err := tr.Insert(Point{-0.1, 0.5}); err == nil {
		t.Error("negative coordinate accepted")
	}
}

func TestReplace(t *testing.T) {
	tr := MustNew(Config{Dim: 2, Capacity: 1})
	p := Point{0.5, 0.5}
	if _, err := tr.Insert(p); err != nil {
		t.Fatal(err)
	}
	replaced, err := tr.Insert(Point{0.5, 0.5})
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestInsertCopiesPoint(t *testing.T) {
	tr := MustNew(Config{Dim: 2, Capacity: 1})
	p := Point{0.3, 0.3}
	if _, err := tr.Insert(p); err != nil {
		t.Fatal(err)
	}
	p[0] = 0.9 // caller mutates their slice
	if !tr.Contains(Point{0.3, 0.3}) {
		t.Fatal("tree aliased the caller's point slice")
	}
}

func TestCensusCapacityInvariant(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for _, m := range []int{1, 3, 6} {
			tr := MustNew(Config{Dim: d, Capacity: m})
			rng := xrand.New(uint64(100*d + m))
			for i := 0; i < 500; i++ {
				if _, err := tr.Insert(RandomPoint(d, rng)); err != nil {
					t.Fatal(err)
				}
			}
			c := tr.Census()
			if c.Items != 500 {
				t.Fatalf("d=%d m=%d: census items %d", d, m, c.Items)
			}
			for occ, cnt := range c.ByOccupancy {
				if occ > m && cnt > 0 && c.Height < tr.cfg.MaxDepth {
					t.Fatalf("d=%d m=%d: leaf with occupancy %d", d, m, occ)
				}
			}
		}
	}
}

func TestMaxDepthTruncation(t *testing.T) {
	tr := MustNew(Config{Dim: 2, Capacity: 1, MaxDepth: 2})
	// Nearly coincident points cannot be separated within 2 levels.
	pts := []Point{{0.01, 0.01}, {0.011, 0.011}, {0.012, 0.012}}
	for _, p := range pts {
		if _, err := tr.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Census()
	if c.Height > 2 {
		t.Fatalf("height %d > max depth 2", c.Height)
	}
	for _, p := range pts {
		if !tr.Contains(p) {
			t.Fatalf("lost %v", p)
		}
	}
}

func TestOctreeMatchesQuadtreePrinciple(t *testing.T) {
	// Same uniform data volume: a d=3 tree's leaf count grows with the
	// same capacity logic; just verify censuses are self-consistent.
	tr := MustNew(Config{Dim: 3, Capacity: 4})
	rng := xrand.New(8)
	for i := 0; i < 2000; i++ {
		if _, err := tr.Insert(RandomPoint(3, rng)); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Census()
	sum := 0
	for _, cnt := range c.ByOccupancy {
		sum += cnt
	}
	if sum != c.Leaves {
		t.Fatalf("occupancy histogram sums to %d, leaves %d", sum, c.Leaves)
	}
	// Internal node count: leaves = 1 + (fanout-1)*internal for a
	// complete 2^d-ary forest grown by splits.
	if c.Leaves != 1+(tr.Fanout()-1)*c.Internal {
		t.Fatalf("leaves %d, internal %d violate split arithmetic", c.Leaves, c.Internal)
	}
}
