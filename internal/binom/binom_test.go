package binom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChooseSmall(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {1, 0, 1}, {1, 1, 1}, {4, 2, 6}, {5, 2, 10},
		{9, 3, 84}, {10, 5, 252}, {52, 5, 2598960}, {60, 30, 118264581564861424},
		{5, -1, 0}, {5, 6, 0},
	}
	for _, c := range cases {
		if got := Choose(c.n, c.k); got != c.want {
			t.Errorf("Choose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

func TestChooseSymmetry(t *testing.T) {
	f := func(n, k uint8) bool {
		nn := int(n%50) + 1
		kk := int(k) % (nn + 1)
		return Choose(nn, kk) == Choose(nn, nn-kk)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChoosePascal(t *testing.T) {
	// C(n,k) = C(n-1,k-1) + C(n-1,k) exactly for small n.
	for n := 2; n <= 40; n++ {
		for k := 1; k < n; k++ {
			if got, want := Choose(n, k), Choose(n-1, k-1)+Choose(n-1, k); got != want {
				t.Fatalf("Pascal violated at C(%d,%d): %v vs %v", n, k, got, want)
			}
		}
	}
}

func TestChooseLargeMatchesLog(t *testing.T) {
	for _, nk := range [][2]int{{100, 50}, {200, 13}, {500, 250}} {
		got := Choose(nk[0], nk[1])
		want := math.Exp(LogChoose(nk[0], nk[1]))
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("Choose(%d,%d) = %v, log-space %v", nk[0], nk[1], got, want)
		}
	}
}

func TestLogFactorial(t *testing.T) {
	fact := 1.0
	for n := 1; n <= 20; n++ {
		fact *= float64(n)
		if got := LogFactorial(n); math.Abs(got-math.Log(fact)) > 1e-9 {
			t.Errorf("LogFactorial(%d) = %v, want %v", n, got, math.Log(fact))
		}
	}
}

func TestLogFactorialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("LogFactorial(-1) did not panic")
		}
	}()
	LogFactorial(-1)
}

func TestPMFSumsToOne(t *testing.T) {
	for _, n := range []int{1, 5, 17, 100} {
		for _, p := range []float64{0.25, 0.5, 0.9} {
			sum := 0.0
			for k := 0; k <= n; k++ {
				sum += PMF(n, p, k)
			}
			if math.Abs(sum-1) > 1e-12 {
				t.Errorf("PMF(%d, %v) sums to %v", n, p, sum)
			}
		}
	}
}

func TestPMFMean(t *testing.T) {
	// E[Binomial(n,p)] = np.
	n, p := 30, 0.25
	mean := 0.0
	for k := 0; k <= n; k++ {
		mean += float64(k) * PMF(n, p, k)
	}
	if math.Abs(mean-float64(n)*p) > 1e-10 {
		t.Errorf("binomial mean %v, want %v", mean, float64(n)*p)
	}
}

func TestPMFEdgeProbabilities(t *testing.T) {
	if PMF(5, 0, 0) != 1 || PMF(5, 0, 3) != 0 {
		t.Error("p=0 PMF wrong")
	}
	if PMF(5, 1, 5) != 1 || PMF(5, 1, 2) != 0 {
		t.Error("p=1 PMF wrong")
	}
	if PMF(5, 0.5, -1) != 0 || PMF(5, 0.5, 6) != 0 {
		t.Error("out-of-range k PMF wrong")
	}
}

func TestDist(t *testing.T) {
	d := Dist(10, 0.25)
	if len(d) != 11 {
		t.Fatalf("Dist length %d", len(d))
	}
	sum := 0.0
	for k, v := range d {
		if v != PMF(10, 0.25, k) {
			t.Errorf("Dist[%d] mismatch", k)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("Dist sums to %v", sum)
	}
}

func TestExpectedBucketsTotals(t *testing.T) {
	// Σ_k E[buckets with k] = f and Σ_k k·E[buckets with k] = n.
	for _, f := range []int{2, 4, 8} {
		for _, n := range []int{1, 3, 9} {
			totBuckets, totItems := 0.0, 0.0
			for k := 0; k <= n; k++ {
				e := ExpectedBuckets(n, f, k)
				totBuckets += e
				totItems += float64(k) * e
			}
			if math.Abs(totBuckets-float64(f)) > 1e-10 {
				t.Errorf("f=%d n=%d: bucket total %v", f, n, totBuckets)
			}
			if math.Abs(totItems-float64(n)) > 1e-10 {
				t.Errorf("f=%d n=%d: item total %v", f, n, totItems)
			}
		}
	}
}

func TestExpectedBucketsPaperValues(t *testing.T) {
	// Section III: P_i = C(m+1, i)·3^(m+1-i)/4^m for the quadtree.
	m := 3
	for i := 0; i <= m+1; i++ {
		want := Choose(m+1, i) * math.Pow(3, float64(m+1-i)) / math.Pow(4, float64(m))
		if got := ExpectedBuckets(m+1, 4, i); math.Abs(got-want) > 1e-12 {
			t.Errorf("P_%d = %v, want %v", i, got, want)
		}
	}
	// P_{m+1} = 4^{-m}.
	if got := ExpectedBuckets(m+1, 4, m+1); math.Abs(got-math.Pow(4, -float64(m))) > 1e-15 {
		t.Errorf("P_{m+1} = %v", got)
	}
}

func TestMultinomialLogPMF(t *testing.T) {
	// Two items in two buckets: (2,0) has prob 1/4, (1,1) has 1/2.
	if got := math.Exp(MultinomialLogPMF([]int{2, 0})); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("P(2,0) = %v", got)
	}
	if got := math.Exp(MultinomialLogPMF([]int{1, 1})); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("P(1,1) = %v", got)
	}
}

func TestMultinomialSumsToOne(t *testing.T) {
	// All compositions of n=4 into 3 buckets.
	n := 4
	sum := 0.0
	for a := 0; a <= n; a++ {
		for b := 0; a+b <= n; b++ {
			sum += math.Exp(MultinomialLogPMF([]int{a, b, n - a - b}))
		}
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("multinomial total %v", sum)
	}
}

func TestConcurrentLogFactorial(t *testing.T) {
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for n := 0; n < 500; n++ {
				LogFactorial(n + g)
			}
			done <- true
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
