// Package binom supplies numerically stable binomial coefficients and
// binomial/multinomial probability mass functions.
//
// Population analysis reduces a hierarchical structure's splitting rule to
// the distribution of m+1 items placed independently into F congruent
// buckets — a binomial law — so these functions sit underneath every
// transform matrix in internal/core, and underneath the exact statistical
// baseline in internal/statmodel. Coefficients are computed in log space
// so that the statistical recursion remains accurate for n in the
// thousands.
package binom

import (
	"fmt"
	"math"
	"sync"
)

// logFactCache memoizes log(n!) values; index i holds log(i!).
var (
	logFactMu    sync.Mutex
	logFactCache = []float64{0, 0} // log(0!)=log(1!)=0
)

// LogFactorial returns log(n!). It panics if n < 0.
func LogFactorial(n int) float64 {
	if n < 0 {
		panic(fmt.Sprintf("binom: LogFactorial(%d)", n))
	}
	logFactMu.Lock()
	defer logFactMu.Unlock()
	for len(logFactCache) <= n {
		k := len(logFactCache)
		logFactCache = append(logFactCache, logFactCache[k-1]+math.Log(float64(k)))
	}
	return logFactCache[n]
}

// LogChoose returns log C(n, k). Out-of-range k yields -Inf.
func LogChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	return LogFactorial(n) - LogFactorial(k) - LogFactorial(n-k)
}

// Choose returns the binomial coefficient C(n, k) as a float64.
// For n beyond float64's exact-integer range the result is an
// approximation accurate to within a few ulps.
func Choose(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	// Exact for small n via the multiplicative formula; avoids exp/log
	// roundoff on the sizes the transform matrices need (n <= ~60).
	if n <= 60 {
		if k > n-k {
			k = n - k
		}
		c := 1.0
		for i := 0; i < k; i++ {
			c = c * float64(n-i) / float64(i+1)
		}
		return math.Round(c)
	}
	return math.Exp(LogChoose(n, k))
}

// PMF returns the binomial probability P[X = k] for X ~ Binomial(n, p).
func PMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p)
	return math.Exp(lp)
}

// Dist returns the full binomial PMF for X ~ Binomial(n, p) as a slice of
// length n+1 whose entries sum to 1 up to roundoff.
func Dist(n int, p float64) []float64 {
	d := make([]float64, n+1)
	for k := 0; k <= n; k++ {
		d[k] = PMF(n, p, k)
	}
	return d
}

// ExpectedBuckets returns, for n items placed independently and uniformly
// into f buckets, the expected number of buckets that contain exactly k
// items: f * C(n,k) * (1/f)^k * ((f-1)/f)^(n-k).
//
// This is the quantity the paper calls P_i (for f = 4, n = m+1): the
// expected occupancy profile of the children of a splitting node.
func ExpectedBuckets(n, f, k int) float64 {
	if f < 2 {
		panic("binom: ExpectedBuckets requires at least two buckets")
	}
	return float64(f) * PMF(n, 1/float64(f), k)
}

// MultinomialLogPMF returns the log-probability that n items distributed
// uniformly over len(counts) buckets land exactly as counts. The counts
// must sum to n.
func MultinomialLogPMF(counts []int) float64 {
	n := 0
	for _, c := range counts {
		if c < 0 {
			panic("binom: negative count")
		}
		n += c
	}
	f := float64(len(counts))
	lp := LogFactorial(n) - float64(n)*math.Log(f)
	for _, c := range counts {
		lp -= LogFactorial(c)
	}
	return lp
}
