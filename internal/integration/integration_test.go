// Package integration_test exercises the substrates against each other:
// the same workload pushed through every spatial structure must agree
// with brute force and with each other, the analytical layers must agree
// with the simulated layers, and the persistence/bulk paths must
// reproduce the exact canonical shapes. These are the cross-module
// checks no single package's unit tests can perform.
package integration_test

import (
	"bytes"
	"math"
	"testing"

	"popana/internal/bintree"
	"popana/internal/core"
	"popana/internal/dist"
	"popana/internal/excell"
	"popana/internal/geom"
	"popana/internal/gridfile"
	"popana/internal/pointquadtree"
	"popana/internal/quadtree"
	"popana/internal/statmodel"
	"popana/internal/xrand"
)

// TestRangeQueryAgreementAcrossStructures pushes one point set through
// every point structure and verifies all range counts agree with brute
// force for many random windows.
func TestRangeQueryAgreementAcrossStructures(t *testing.T) {
	rng := xrand.New(100)
	const n = 700
	pts := make([]geom.Point, n)
	src := dist.NewClusters(geom.UnitSquare, 6, 0.05, rng)
	for i := range pts {
		pts[i] = src.Next()
	}

	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 4})
	gf := gridfile.MustNew(gridfile.Config{BucketCapacity: 4})
	ex := excell.MustNew(excell.Config{BucketCapacity: 4})
	pq := pointquadtree.MustNew(geom.Rect{})
	for i, p := range pts {
		if _, err := qt.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		if _, err := gf.Put(p, i); err != nil {
			t.Fatal(err)
		}
		if _, err := ex.Put(p, i); err != nil {
			t.Fatal(err)
		}
		if _, err := pq.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}

	for trial := 0; trial < 150; trial++ {
		x1, y1 := rng.Float64(), rng.Float64()
		x2, y2 := rng.Float64(), rng.Float64()
		q := geom.R(math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2))
		want := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				want++
			}
		}
		if got := qt.CountRange(q); got != want {
			t.Fatalf("quadtree: %d, brute force %d", got, want)
		}
		count := func(rangeFn func(geom.Rect, func(geom.Point, any) bool) bool) int {
			c := 0
			rangeFn(q, func(geom.Point, any) bool { c++; return true })
			return c
		}
		if got := count(gf.Range); got != want {
			t.Fatalf("gridfile: %d, brute force %d", got, want)
		}
		if got := count(ex.Range); got != want {
			t.Fatalf("excell: %d, brute force %d", got, want)
		}
		if got := count(pq.Range); got != want {
			t.Fatalf("pointquadtree: %d, brute force %d", got, want)
		}
	}
}

// TestMembershipAgreement verifies Get/Contains parity across all
// key-value structures after mixed inserts.
func TestMembershipAgreement(t *testing.T) {
	rng := xrand.New(101)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 3})
	bt := bintree.MustNew(bintree.Config{Capacity: 3})
	pq := pointquadtree.MustNew(geom.Rect{})
	var pts []geom.Point
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		pts = append(pts, p)
		if _, err := qt.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		if _, err := bt.Insert(p); err != nil {
			t.Fatal(err)
		}
		if _, err := pq.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pts {
		if !qt.Contains(p) || !bt.Contains(p) || !pq.Contains(p) {
			t.Fatalf("membership disagreement for %v", p)
		}
	}
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		a, b, c := qt.Contains(p), bt.Contains(p), pq.Contains(p)
		if a != b || b != c {
			t.Fatalf("absent-point disagreement at %v: %v %v %v", p, a, b, c)
		}
	}
}

// TestModelBracketsExactCycleMean checks the three analytical layers
// against each other: the exact recursion's cycle-mean occupancy must
// sit below the population model's prediction (aging pushes reality
// down) but within the model's documented error band.
func TestModelBracketsExactCycleMean(t *testing.T) {
	for _, m := range []int{2, 4, 8} {
		model, err := core.NewPointModel(m, 4)
		if err != nil {
			t.Fatal(err)
		}
		thy, err := model.Solve()
		if err != nil {
			t.Fatal(err)
		}
		exact, err := statmodel.New(m, 4, 4096)
		if err != nil {
			t.Fatal(err)
		}
		// Cycle mean over the last period [1024, 4096].
		sum, cnt := 0.0, 0
		for n := 1024; n <= 4096; n += 64 {
			sum += exact.AverageOccupancy(n)
			cnt++
		}
		cycleMean := sum / float64(cnt)
		pred := thy.AverageOccupancy()
		if pred <= cycleMean {
			t.Errorf("m=%d: model %v not above exact cycle mean %v (aging direction)", m, pred, cycleMean)
		}
		if (pred-cycleMean)/cycleMean > 0.20 {
			t.Errorf("m=%d: model %v vs exact cycle mean %v — error beyond the documented band", m, pred, cycleMean)
		}
	}
}

// TestChurnProducesCanonicalTree is the strongest dynamic check: after
// arbitrary interleaved inserts and deletes, the tree must be *exactly*
// the canonical tree of the surviving point set — verified by comparing
// its serialized form against a bulk-loaded twin.
func TestChurnProducesCanonicalTree(t *testing.T) {
	rng := xrand.New(102)
	tr := quadtree.MustNew[int](quadtree.Config{Capacity: 3})
	live := map[geom.Point]int{}
	var keys []geom.Point
	for op := 0; op < 4000; op++ {
		if rng.Float64() < 0.6 || len(keys) == 0 {
			p := geom.Pt(rng.Float64(), rng.Float64())
			if _, err := tr.Insert(p, op); err != nil {
				t.Fatal(err)
			}
			if _, had := live[p]; !had {
				keys = append(keys, p)
			}
			live[p] = op
		} else {
			i := rng.Intn(len(keys))
			p := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			tr.Delete(p)
			delete(live, p)
		}
	}
	pts := make([]geom.Point, 0, len(live))
	vals := make([]int, 0, len(live))
	for p, v := range live {
		pts = append(pts, p)
		vals = append(vals, v)
	}
	twin, err := quadtree.BulkLoad[int](quadtree.Config{Capacity: 3}, pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := tr.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := twin.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("churned tree is not the canonical tree of its point set")
	}
}

// TestNearestAgreement cross-checks nearest-neighbor answers between
// the PR quadtree and the point quadtree on the same data.
func TestNearestAgreement(t *testing.T) {
	rng := xrand.New(103)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 2})
	pq := pointquadtree.MustNew(geom.Rect{})
	for i := 0; i < 400; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if _, err := qt.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		if _, err := pq.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		a, _, ok1 := qt.Nearest(q)
		b, _, ok2 := pq.Nearest(q)
		if !ok1 || !ok2 {
			t.Fatal("nearest failed")
		}
		if math.Abs(a.Dist2(q)-b.Dist2(q)) > 1e-15 {
			t.Fatalf("nearest disagreement at %v: %v vs %v", q, a, b)
		}
	}
}

// TestLineModelEndToEnd runs the full PMR pipeline at small scale: the
// measured crossing probability fed to the line model must predict the
// simulated distribution's shape (correlation of distribution vectors).
func TestLineModelEndToEnd(t *testing.T) {
	p := core.DefaultCrossProb()
	if p < 0.45 || p > 0.55 {
		t.Fatalf("chord crossing probability %v", p)
	}
	model, err := core.NewLineModel(3, 4, core.LineModelOptions{CrossProb: 0.45})
	if err != nil {
		t.Fatal(err)
	}
	d, err := model.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// The stationary distribution must peak at or just above the
	// threshold (blocks split past it, children keep ~45% each).
	peak := 0
	for i, v := range d.E {
		if v > d.E[peak] {
			peak = i
		}
	}
	if peak < 2 || peak > 4 {
		t.Errorf("line model peak at occupancy %d, expected near the threshold", peak)
	}
}
