package quadtree

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// walkRecord is one leaf observation, for comparing traversals.
type walkRecord struct {
	path  uint64
	depth int
	pts   []geom.Point
	vals  []int
}

func walkViaClosures(t *Tree[int]) []walkRecord {
	var out []walkRecord
	t.WalkLeaves(func(path uint64, depth int, each func(func(geom.Point, int) bool)) bool {
		r := walkRecord{path: path, depth: depth}
		each(func(p geom.Point, v int) bool {
			r.pts = append(r.pts, p)
			r.vals = append(r.vals, v)
			return true
		})
		out = append(out, r)
		return true
	})
	return out
}

func walkViaIter(it *LeafIter[int]) []walkRecord {
	var out []walkRecord
	for it.Next() {
		r := walkRecord{path: it.Path(), depth: it.Depth()}
		for i := 0; i < it.Len(); i++ {
			p, v := it.Entry(i)
			r.pts = append(r.pts, p)
			r.vals = append(r.vals, v)
		}
		out = append(out, r)
	}
	return out
}

func sameWalk(t *testing.T, want, got []walkRecord) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("leaf count: WalkLeaves %d, LeafIter %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.path != g.path || w.depth != g.depth {
			t.Fatalf("leaf %d: (path %d, depth %d) vs (path %d, depth %d)", i, w.path, w.depth, g.path, g.depth)
		}
		if len(w.pts) != len(g.pts) {
			t.Fatalf("leaf %d: %d entries vs %d", i, len(w.pts), len(g.pts))
		}
		for k := range w.pts {
			if w.pts[k] != g.pts[k] || w.vals[k] != g.vals[k] {
				t.Fatalf("leaf %d entry %d: (%v, %d) vs (%v, %d)", i, k, w.pts[k], w.vals[k], g.pts[k], g.vals[k])
			}
		}
	}
}

// TestLeafIterMatchesWalkLeaves checks that the iterator yields exactly
// the WalkLeaves traversal — same leaves, same Z-order, same entries in
// the same order — across tree shapes from empty to a few thousand
// points, and that Reset replays it.
func TestLeafIterMatchesWalkLeaves(t *testing.T) {
	rng := xrand.New(42)
	for _, n := range []int{0, 1, 5, 100, 4096} {
		qt := MustNew[int](Config{Capacity: 4})
		for qt.Len() < n {
			if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
				t.Fatal(err)
			}
		}
		want := walkViaClosures(qt)
		it := NewLeafIter(qt)
		sameWalk(t, want, walkViaIter(it))
		// Reset replays the identical traversal with no fresh state.
		it.Reset(qt)
		sameWalk(t, want, walkViaIter(it))
	}
}

// TestLeafIterAppendPlanes checks the bulk export primitive against the
// per-entry accessor.
func TestLeafIterAppendPlanes(t *testing.T) {
	rng := xrand.New(7)
	qt := MustNew[int](Config{Capacity: 8})
	for qt.Len() < 1000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	var xs, ys []float64
	var vals []int
	it := NewLeafIter(qt)
	for it.Next() {
		base := len(xs)
		xs, ys, vals = it.AppendPlanes(xs, ys, vals)
		if len(xs) != base+it.Len() {
			t.Fatalf("AppendPlanes grew by %d, leaf holds %d", len(xs)-base, it.Len())
		}
		for i := 0; i < it.Len(); i++ {
			p, v := it.Entry(i)
			if xs[base+i] != p.X || ys[base+i] != p.Y || vals[base+i] != v {
				t.Fatalf("plane entry %d disagrees with Entry", base+i)
			}
		}
	}
	if len(xs) != qt.Len() || len(ys) != qt.Len() || len(vals) != qt.Len() {
		t.Fatalf("planes hold %d/%d/%d entries, tree %d", len(xs), len(ys), len(vals), qt.Len())
	}
}

// TestLeafIterSkip checks that skipping an internal node prunes exactly
// its subtree: skipping every internal node at depth 1 leaves only the
// leaves at depth <= 1.
func TestLeafIterSkip(t *testing.T) {
	rng := xrand.New(11)
	qt := MustNew[int](Config{Capacity: 2})
	for qt.Len() < 500 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	it := NewLeafIter(qt)
	leaves := 0
	for it.NextNode() {
		if it.Internal() {
			if it.Depth() >= 1 {
				it.Skip()
			}
			continue
		}
		if it.Depth() > 2 {
			t.Fatalf("leaf at depth %d survived skipping depth-1 subtrees", it.Depth())
		}
		leaves++
	}
	// The skipped traversal must see exactly the full traversal's leaves
	// at depth <= 2 whose path prefix is an unskipped chain; with every
	// depth-1 internal node skipped that is the set of depth <= 2 leaves
	// whose depth-1 ancestor is a leaf or the node itself.
	want := 0
	qt.WalkLeaves(func(_ uint64, depth int, _ func(func(geom.Point, int) bool)) bool {
		if depth <= 1 {
			want++
		}
		return true
	})
	if leaves != want {
		t.Fatalf("skip traversal saw %d leaves, want %d", leaves, want)
	}
}

// TestLeafIterSkipOnLeaf checks Skip is a harmless no-op on leaves.
func TestLeafIterSkipOnLeaf(t *testing.T) {
	rng := xrand.New(13)
	qt := MustNew[int](Config{Capacity: 4})
	for qt.Len() < 300 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	want := walkViaClosures(qt)
	var got []walkRecord
	it := NewLeafIter(qt)
	for it.NextNode() {
		if it.Internal() {
			continue
		}
		it.Skip() // must not suppress any sibling
		r := walkRecord{path: it.Path(), depth: it.Depth()}
		for i := 0; i < it.Len(); i++ {
			p, v := it.Entry(i)
			r.pts = append(r.pts, p)
			r.vals = append(r.vals, v)
		}
		got = append(got, r)
	}
	sameWalk(t, want, got)
}

// TestLeafIterDeepTree grows a tree deeper than the preallocated stack
// (two coincident-ish points force max-depth splitting) and checks the
// traversal still completes.
func TestLeafIterDeepTree(t *testing.T) {
	qt := MustNew[int](Config{Capacity: 1, MaxDepth: 60})
	pts := []geom.Point{geom.Pt(0.1000000000001, 0.1), geom.Pt(0.1000000000002, 0.1)}
	for i, p := range pts {
		if _, err := qt.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	it := NewLeafIter(qt)
	entries := 0
	maxDepth := 0
	for it.Next() {
		entries += it.Len()
		if it.Depth() > maxDepth {
			maxDepth = it.Depth()
		}
	}
	if entries != 2 {
		t.Fatalf("deep traversal saw %d entries, want 2", entries)
	}
	if maxDepth <= 32 {
		t.Fatalf("test tree only reached depth %d; wanted deeper than the uint64 path range", maxDepth)
	}
}
