package quadtree

import "popana/internal/geom"

// LeafVisitor receives one leaf block during WalkLeaves: the leaf's
// locational path code, its depth, and an iterator over the leaf's
// entries. Returning false stops the walk.
//
// The path packs the quadrant index (geom convention: bit 0 = east,
// bit 1 = north) of every level, two bits per level with the root's
// choice in the most significant pair, so leaves sort by
// path<<(2*(maxDepth-depth)) exactly in Morton (Z-order). The path is
// only meaningful while depth <= 32; deeper leaves overflow the uint64
// (Tree.Height reports the deepest leaf, and DefaultMaxDepth allows 48).
type LeafVisitor[V any] func(path uint64, depth int, each func(yield func(p geom.Point, v V) bool)) bool

// WalkLeaves visits every leaf block in Z-order — children in quadrant
// order 0..3 at each level, the order locational codes sort in. It is
// the export point for building linear (pointerless) representations of
// the tree: a single pass yields each leaf's locational code and its
// entries in the order a sorted code array wants them. It reports
// whether the walk ran to completion.
func (t *Tree[V]) WalkLeaves(visit LeafVisitor[V]) bool {
	return walkLeaves(t.root, 0, 0, visit)
}

func walkLeaves[V any](n *node[V], path uint64, depth int, visit LeafVisitor[V]) bool {
	if n.leaf() {
		return visit(path, depth, func(yield func(geom.Point, V) bool) {
			for i := range n.entries {
				if !yield(n.entries[i].p, n.entries[i].v) {
					return
				}
			}
		})
	}
	for q := 0; q < 4; q++ {
		if !walkLeaves(&n.children[q], path<<2|uint64(q), depth+1, visit) {
			return false
		}
	}
	return true
}
