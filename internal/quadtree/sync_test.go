package quadtree

import (
	"sync"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestSyncTreeBasics(t *testing.T) {
	s, err := NewSync[int](Config{Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSync[int](Config{Capacity: 0}); err == nil {
		t.Fatal("bad config accepted")
	}
	p := geom.Pt(0.5, 0.5)
	if _, err := s.Insert(p, 7); err != nil {
		t.Fatal(err)
	}
	if v, ok := s.Get(p); !ok || v != 7 {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	if !s.Contains(p) || s.Len() != 1 {
		t.Fatal("basic state wrong")
	}
	if s.Region() != geom.UnitSquare {
		t.Fatal("region wrong")
	}
	if got, _, ok := s.Nearest(geom.Pt(0, 0)); !ok || got != p {
		t.Fatal("nearest wrong")
	}
	if got := s.KNearest(geom.Pt(0, 0), 1); len(got) != 1 {
		t.Fatal("knearest wrong")
	}
	if s.CountRange(geom.UnitSquare) != 1 {
		t.Fatal("range wrong")
	}
	if c := s.Census(); c.Items != 1 {
		t.Fatal("census wrong")
	}
	if !s.Delete(p) || s.Len() != 0 {
		t.Fatal("delete wrong")
	}
	if s.Unwrap() == nil {
		t.Fatal("unwrap nil")
	}
}

// TestSyncTreeConcurrent hammers the tree from parallel writers and
// readers; run with -race to catch synchronization bugs. The assertions
// only check self-consistency (exact contents are racy by design).
func TestSyncTreeConcurrent(t *testing.T) {
	s, err := NewSync[int](Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	const writers, readers, ops = 4, 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed)
			var mine []geom.Point
			for i := 0; i < ops; i++ {
				if rng.Float64() < 0.7 || len(mine) == 0 {
					p := geom.Pt(rng.Float64(), rng.Float64())
					if _, err := s.Insert(p, i); err != nil {
						t.Error(err)
						return
					}
					mine = append(mine, p)
				} else {
					j := rng.Intn(len(mine))
					s.Delete(mine[j])
					mine[j] = mine[len(mine)-1]
					mine = mine[:len(mine)-1]
				}
			}
		}(uint64(w) + 1)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := xrand.New(seed + 100)
			for i := 0; i < ops; i++ {
				switch i % 4 {
				case 0:
					s.CountRange(geom.R(0.2, 0.2, 0.8, 0.8))
				case 1:
					s.Nearest(geom.Pt(rng.Float64(), rng.Float64()))
				case 2:
					s.Contains(geom.Pt(rng.Float64(), rng.Float64()))
				case 3:
					c := s.Census()
					sum := 0
					for occ, cnt := range c.ByOccupancy {
						sum += occ * cnt
					}
					if c.Items != sum {
						t.Error("torn census")
						return
					}
				}
			}
		}(uint64(r))
	}
	wg.Wait()
	// Final state is a consistent tree.
	checkInvariants(t, s.Unwrap())
}
