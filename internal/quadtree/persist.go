package quadtree

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"popana/internal/geom"
)

// Persistence. Because the PR quadtree's shape is a function of the
// point set alone (regular decomposition), the wire format stores only
// the configuration and the entries; decoding rebuilds the canonical
// tree. This keeps the format independent of internal node layout and
// trivially forward-compatible.

// wireHeader is the serialized form's envelope.
type wireHeader struct {
	Version  int
	Capacity int
	MaxDepth int
	Region   geom.Rect
	Count    int
}

// wireEntry is one serialized point.
type wireEntry[V any] struct {
	X, Y  float64
	Value V
}

const wireVersion = 1

// Encode writes the tree to w in a stable binary format (encoding/gob).
// The value type V must be gob-encodable.
func (t *Tree[V]) Encode(w io.Writer) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(wireHeader{
		Version:  wireVersion,
		Capacity: t.cfg.Capacity,
		MaxDepth: t.cfg.MaxDepth,
		Region:   t.cfg.Region,
		Count:    t.size,
	}); err != nil {
		return fmt.Errorf("quadtree: encode header: %w", err)
	}
	// Deterministic output: entries in sorted point order.
	entries := make([]wireEntry[V], 0, t.size)
	t.Walk(func(p geom.Point, v V) bool {
		entries = append(entries, wireEntry[V]{p.X, p.Y, v})
		return true
	})
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].X != entries[j].X {
			return entries[i].X < entries[j].X
		}
		return entries[i].Y < entries[j].Y
	})
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return fmt.Errorf("quadtree: encode entry %d: %w", i, err)
		}
	}
	return nil
}

// Decode reads a tree previously written by Encode.
func Decode[V any](r io.Reader) (*Tree[V], error) {
	dec := gob.NewDecoder(r)
	var h wireHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("quadtree: decode header: %w", err)
	}
	if h.Version != wireVersion {
		return nil, fmt.Errorf("quadtree: unsupported wire version %d", h.Version)
	}
	t, err := New[V](Config{Capacity: h.Capacity, MaxDepth: h.MaxDepth, Region: h.Region})
	if err != nil {
		return nil, fmt.Errorf("quadtree: decode config: %w", err)
	}
	for i := 0; i < h.Count; i++ {
		var e wireEntry[V]
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("quadtree: decode entry %d: %w", i, err)
		}
		if _, err := t.Insert(geom.Pt(e.X, e.Y), e.Value); err != nil {
			return nil, fmt.Errorf("quadtree: decode entry %d: %w", i, err)
		}
	}
	return t, nil
}

// BulkLoad builds a tree from a batch of entries more efficiently than
// repeated Insert: points are partitioned recursively, so each point is
// routed O(depth) once with no transient splits. Duplicate points keep
// the last value, matching Insert semantics. It is the constructor form
// of (*Tree[V]).BulkLoad.
func BulkLoad[V any](cfg Config, points []geom.Point, values []V) (*Tree[V], error) {
	if len(points) != len(values) {
		return nil, fmt.Errorf("quadtree: %d points but %d values", len(points), len(values))
	}
	t, err := New[V](cfg)
	if err != nil {
		return nil, err
	}
	if _, err := t.BulkLoad(points, values); err != nil {
		return nil, err
	}
	return t, nil
}
