package quadtree

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestRangeMatchesBruteForce(t *testing.T) {
	rng := xrand.New(21)
	tr := MustNew[int](Config{Capacity: 3})
	pts := randomPoints(rng, 800)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	for trial := 0; trial < 200; trial++ {
		x1, y1 := rng.Float64(), rng.Float64()
		x2, y2 := rng.Float64(), rng.Float64()
		q := geom.R(math.Min(x1, x2), math.Min(y1, y2), math.Max(x1, x2), math.Max(y1, y2))
		want := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				want++
			}
		}
		if got := tr.CountRange(q); got != want {
			t.Fatalf("trial %d: CountRange(%v) = %d, want %d", trial, q, got, want)
		}
	}
}

func TestRangeOnBlockBoundary(t *testing.T) {
	// A query whose edge coincides with a block boundary must still
	// find points on that boundary.
	tr := MustNew[int](Config{Capacity: 1})
	p := geom.Pt(0.5, 0.5) // lands exactly on the root's center
	mustInsert(t, tr, p, geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.1))
	q := geom.R(0.5, 0.5, 0.5, 0.5) // degenerate query exactly at the point
	if got := tr.CountRange(q); got != 1 {
		t.Fatalf("boundary point not found: %d", got)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	for i, p := range randomPoints(xrand.New(4), 100) {
		mustInsertV(t, tr, p, i)
	}
	visits := 0
	completed := tr.Range(geom.UnitSquare, func(geom.Point, int) bool {
		visits++
		return visits < 5
	})
	if completed || visits != 5 {
		t.Fatalf("early stop: completed=%v visits=%d", completed, visits)
	}
}

func TestRangeEmptyTree(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	if got := tr.CountRange(geom.UnitSquare); got != 0 {
		t.Fatalf("empty tree range count %d", got)
	}
}

func TestNearestMatchesBruteForce(t *testing.T) {
	rng := xrand.New(31)
	tr := MustNew[int](Config{Capacity: 4})
	pts := randomPoints(rng, 600)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(rng.Float64()*1.4-0.2, rng.Float64()*1.4-0.2) // also outside region
		best, _, ok := tr.Nearest(q)
		if !ok {
			t.Fatal("Nearest failed on non-empty tree")
		}
		bestD := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist2(q); d < bestD {
				bestD = d
			}
		}
		if math.Abs(best.Dist2(q)-bestD) > 1e-15 {
			t.Fatalf("trial %d: nearest %v at %v, brute force %v", trial, best, best.Dist2(q), bestD)
		}
	}
}

func TestNearestEmptyTree(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	if _, _, ok := tr.Nearest(geom.Pt(0.5, 0.5)); ok {
		t.Fatal("Nearest on empty tree returned ok")
	}
}

func TestNearestReturnsValue(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	mustInsertV(t, tr, geom.Pt(0.2, 0.2), 7)
	mustInsertV(t, tr, geom.Pt(0.8, 0.8), 9)
	p, v, ok := tr.Nearest(geom.Pt(0.75, 0.75))
	if !ok || v != 9 || p != geom.Pt(0.8, 0.8) {
		t.Fatalf("Nearest = %v, %v, %v", p, v, ok)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	rng := xrand.New(41)
	tr := MustNew[int](Config{Capacity: 3})
	pts := randomPoints(rng, 300)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	for trial := 0; trial < 50; trial++ {
		q := geom.Pt(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(20)
		got := tr.KNearest(q, k)
		if len(got) != k {
			t.Fatalf("KNearest returned %d points, want %d", len(got), k)
		}
		sorted := append([]geom.Point{}, pts...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Dist2(q) < sorted[j].Dist2(q) })
		for i := range got {
			if math.Abs(got[i].Dist2(q)-sorted[i].Dist2(q)) > 1e-15 {
				t.Fatalf("trial %d: k-nearest[%d] at %v, want %v", trial, i, got[i].Dist2(q), sorted[i].Dist2(q))
			}
		}
		// Ordering: nearest first.
		for i := 1; i < len(got); i++ {
			if got[i-1].Dist2(q) > got[i].Dist2(q) {
				t.Fatalf("k-nearest not sorted at %d", i)
			}
		}
	}
}

func TestKNearestEdgeCases(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	if got := tr.KNearest(geom.Pt(0.5, 0.5), 0); got != nil {
		t.Fatal("k=0 returned points")
	}
	mustInsertV(t, tr, geom.Pt(0.3, 0.3), 0)
	if got := tr.KNearest(geom.Pt(0.5, 0.5), 10); len(got) != 1 {
		t.Fatalf("k beyond size returned %d points", len(got))
	}
}

func TestWalkAndPoints(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	pts := randomPoints(xrand.New(51), 100)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	if got := len(tr.Points()); got != 100 {
		t.Fatalf("Points returned %d", got)
	}
	n := 0
	tr.Walk(func(geom.Point, int) bool { n++; return true })
	if n != 100 {
		t.Fatalf("Walk visited %d", n)
	}
	n = 0
	if tr.Walk(func(geom.Point, int) bool { n++; return n < 3 }) {
		t.Fatal("early-stopped walk reported complete")
	}
}

func TestQuickPropertyInsertedAlwaysFound(t *testing.T) {
	f := func(seed uint64, capRaw uint8) bool {
		m := int(capRaw%8) + 1
		tr := MustNew[uint64](Config{Capacity: m})
		rng := xrand.New(seed)
		pts := randomPoints(rng, 64)
		for i, p := range pts {
			if _, err := tr.Insert(p, uint64(i)); err != nil {
				return false
			}
		}
		for _, p := range pts {
			if !tr.Contains(p) {
				return false
			}
		}
		// Range over the whole region sees everything.
		return tr.CountRange(geom.R(0, 0, 1, 1)) == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRectDist2(t *testing.T) {
	r := geom.R(0, 0, 1, 1)
	cases := []struct {
		p    geom.Point
		want float64
	}{
		{geom.Pt(0.5, 0.5), 0}, // inside
		{geom.Pt(2, 0.5), 1},   // east
		{geom.Pt(0.5, -1), 1},  // south
		{geom.Pt(2, 2), 2},     // corner
		{geom.Pt(-3, 0.5), 9},  // west
		{geom.Pt(1, 1), 0},     // on corner
		{geom.Pt(1.5, -0.5), 0.5},
	}
	for _, c := range cases {
		if got := rectDist2(r, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("rectDist2(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}
