package quadtree

import (
	"bytes"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 3})
	pts := randomPoints(xrand.New(1), 500)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode[int](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != tr.Len() || got.Capacity() != tr.Capacity() || got.Region() != tr.Region() {
		t.Fatalf("metadata mismatch: %d/%d", got.Len(), tr.Len())
	}
	for i, p := range pts {
		v, ok := got.Get(p)
		if !ok || v != i {
			t.Fatalf("Get(%v) after decode = %v, %v", p, v, ok)
		}
	}
	// Canonical shape: censuses identical.
	a, b := tr.Census(), got.Census()
	if a.Leaves != b.Leaves || a.Height != b.Height || a.Internal != b.Internal {
		t.Fatalf("shape changed across the wire: %+v vs %+v", a, b)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	// Two trees with the same point set inserted in different orders
	// encode to identical bytes.
	rng := xrand.New(2)
	pts := randomPoints(rng, 200)
	enc := func(order []int) []byte {
		tr := MustNew[int](Config{Capacity: 2})
		for _, i := range order {
			mustInsertV(t, tr, pts[i], i)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	id := make([]int, len(pts))
	for i := range id {
		id[i] = i
	}
	if !bytes.Equal(enc(id), enc(rng.Perm(len(pts)))) {
		t.Fatal("encoding depends on insertion order")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode[int](bytes.NewReader([]byte("not a quadtree"))); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Decode[int](bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input decoded")
	}
}

func TestDecodeTruncated(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	for i, p := range randomPoints(xrand.New(3), 50) {
		mustInsertV(t, tr, p, i)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	if _, err := Decode[int](bytes.NewReader(cut)); err == nil {
		t.Fatal("truncated stream decoded")
	}
}

func TestEncodeEmptyTree(t *testing.T) {
	tr := MustNew[string](Config{Capacity: 1})
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode[string](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Fatalf("decoded empty tree has %d points", got.Len())
	}
}

func TestBulkLoadMatchesIncremental(t *testing.T) {
	rng := xrand.New(4)
	pts := randomPoints(rng, 1000)
	vals := make([]int, len(pts))
	for i := range vals {
		vals[i] = i
	}
	bulk, err := BulkLoad[int](Config{Capacity: 4}, pts, vals)
	if err != nil {
		t.Fatal(err)
	}
	inc := MustNew[int](Config{Capacity: 4})
	for i, p := range pts {
		mustInsertV(t, inc, p, i)
	}
	a, b := bulk.Census(), inc.Census()
	if a.Leaves != b.Leaves || a.Height != b.Height || a.Internal != b.Internal || a.Items != b.Items {
		t.Fatalf("bulk shape %+v != incremental %+v", a, b)
	}
	for i, p := range pts {
		v, ok := bulk.Get(p)
		if !ok || v != i {
			t.Fatalf("bulk Get(%v) = %v, %v", p, v, ok)
		}
	}
	checkInvariants(t, bulk)
}

func TestBulkLoadDuplicatesKeepLast(t *testing.T) {
	p := geom.Pt(0.5, 0.5)
	tr, err := BulkLoad[int](Config{Capacity: 2},
		[]geom.Point{p, geom.Pt(0.1, 0.1), p}, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Get(p); v != 3 {
		t.Fatalf("duplicate kept %v, want last", v)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	if _, err := BulkLoad[int](Config{Capacity: 1}, randomPoints(xrand.New(5), 3), []int{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := BulkLoad[int](Config{Capacity: 1}, []geom.Point{geom.Pt(5, 5)}, []int{1}); err == nil {
		t.Error("out-of-region point accepted")
	}
	if _, err := BulkLoad[int](Config{Capacity: 0}, nil, nil); err == nil {
		t.Error("bad config accepted")
	}
}

func TestBulkLoadRespectsMaxDepth(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.001, 0.001), geom.Pt(0.0011, 0.0011), geom.Pt(0.0012, 0.0012)}
	tr, err := BulkLoad[int](Config{Capacity: 1, MaxDepth: 3}, pts, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if h := tr.Census().Height; h > 3 {
		t.Fatalf("height %d > 3", h)
	}
	for _, p := range pts {
		if !tr.Contains(p) {
			t.Fatalf("lost %v", p)
		}
	}
}
