package quadtree

import (
	"errors"
	"fmt"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func randomPoints(rng *xrand.Rand, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	return pts
}

// checkInvariants walks the tree verifying every structural invariant:
// points live in the leaf whose block contains them, leaves respect
// capacity (except at max depth), internal nodes hold no entries, and
// the size counter matches.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	total := 0
	var walk func(n *node[V], block geom.Rect, depth int)
	walk = func(n *node[V], block geom.Rect, depth int) {
		if n.leaf() {
			if len(n.entries) > tr.cfg.Capacity && depth < tr.cfg.MaxDepth {
				t.Fatalf("leaf at depth %d holds %d > capacity %d", depth, len(n.entries), tr.cfg.Capacity)
			}
			for _, e := range n.entries {
				if !block.Contains(e.p) {
					t.Fatalf("point %v filed in wrong block %v", e.p, block)
				}
			}
			total += len(n.entries)
			return
		}
		if len(n.entries) != 0 {
			t.Fatalf("internal node holds %d entries", len(n.entries))
		}
		for q := 0; q < 4; q++ {
			walk(&n.children[q], block.Quadrant(q), depth+1)
		}
	}
	walk(tr.root, tr.cfg.Region, 0)
	if total != tr.size {
		t.Fatalf("tree claims %d points, found %d", tr.size, total)
	}
}

func TestInsertGet(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	pts := randomPoints(xrand.New(1), 500)
	for i, p := range pts {
		replaced, err := tr.Insert(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced {
			t.Fatalf("fresh point %v reported replaced", p)
		}
	}
	checkInvariants(t, tr)
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i, p := range pts {
		v, ok := tr.Get(p)
		if !ok || v != i {
			t.Fatalf("Get(%v) = %v, %v; want %d, true", p, v, ok, i)
		}
	}
	if _, ok := tr.Get(geom.Pt(0.123456789, 0.987654321)); ok {
		t.Fatal("Get of absent point succeeded")
	}
}

func TestInsertReplace(t *testing.T) {
	tr := MustNew[string](Config{Capacity: 1})
	p := geom.Pt(0.5, 0.5)
	if _, err := tr.Insert(p, "a"); err != nil {
		t.Fatal(err)
	}
	replaced, err := tr.Insert(p, "b")
	if err != nil || !replaced {
		t.Fatalf("replace = %v, %v", replaced, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after replace", tr.Len())
	}
	if v, _ := tr.Get(p); v != "b" {
		t.Fatalf("value %v after replace", v)
	}
}

func TestInsertOutOfRegion(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	_, err := tr.Insert(geom.Pt(1.5, 0.5), 0)
	if !errors.Is(err, ErrOutOfRegion) {
		t.Fatalf("err = %v", err)
	}
	// Max edges are exclusive.
	if _, err := tr.Insert(geom.Pt(1, 0.5), 0); !errors.Is(err, ErrOutOfRegion) {
		t.Fatalf("boundary err = %v", err)
	}
	if tr.Len() != 0 {
		t.Fatal("rejected insert changed size")
	}
}

func TestSplittingRule(t *testing.T) {
	// m=1: two points in one quadrant force recursive splits until
	// separated.
	tr := MustNew[int](Config{Capacity: 1})
	a := geom.Pt(0.1, 0.1)
	b := geom.Pt(0.1001, 0.1001)
	mustInsert(t, tr, a, b)
	checkInvariants(t, tr)
	c := tr.Census()
	if c.Height < 3 {
		t.Fatalf("close points at height %d, expected deep split", c.Height)
	}
	// Both still findable.
	if !tr.Contains(a) || !tr.Contains(b) {
		t.Fatal("points lost in split")
	}
}

func TestOrderIndependence(t *testing.T) {
	// Regular decomposition: tree shape depends only on the point set.
	rng := xrand.New(42)
	pts := randomPoints(rng, 300)
	build := func(perm []int) *Tree[int] {
		tr := MustNew[int](Config{Capacity: 3})
		for _, i := range perm {
			if _, err := tr.Insert(pts[i], i); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	id := make([]int, len(pts))
	for i := range id {
		id[i] = i
	}
	t1 := build(id)
	t2 := build(rng.Perm(len(pts)))
	c1, c2 := t1.Census(), t2.Census()
	if c1.Leaves != c2.Leaves || c1.Height != c2.Height || c1.Internal != c2.Internal {
		t.Fatalf("shape depends on insertion order: %+v vs %+v", c1, c2)
	}
	for i := range c1.ByOccupancy {
		if c1.ByOccupancy[i] != c2.ByOccupancy[i] {
			t.Fatalf("occupancy histograms differ at %d", i)
		}
	}
}

func TestDelete(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	pts := randomPoints(xrand.New(3), 400)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	for i, p := range pts {
		if !tr.Delete(p) {
			t.Fatalf("Delete(%v) failed", p)
		}
		if tr.Contains(p) {
			t.Fatalf("point %v present after delete", p)
		}
		if tr.Len() != len(pts)-i-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), i+1)
		}
		if i%50 == 0 {
			checkInvariants(t, tr)
		}
	}
	// Fully merged back to a single empty leaf.
	c := tr.Census()
	if c.Leaves != 1 || c.Internal != 0 {
		t.Fatalf("after deleting all: %d leaves, %d internal", c.Leaves, c.Internal)
	}
}

func TestDeleteAbsent(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	mustInsertV(t, tr, geom.Pt(0.5, 0.5), 1)
	if tr.Delete(geom.Pt(0.25, 0.25)) {
		t.Fatal("deleted absent point")
	}
	if tr.Delete(geom.Pt(2, 2)) {
		t.Fatal("deleted out-of-region point")
	}
	if tr.Len() != 1 {
		t.Fatal("size changed")
	}
}

func TestDeleteMergesBlocks(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	a, b := geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.9)
	mustInsert(t, tr, a, b)
	before := tr.Census()
	if before.Internal == 0 {
		t.Fatal("expected a split")
	}
	tr.Delete(b)
	after := tr.Census()
	if after.Internal != 0 || after.Leaves != 1 {
		t.Fatalf("no merge after delete: %+v", after)
	}
	if !tr.Contains(a) {
		t.Fatal("survivor lost in merge")
	}
}

func TestInsertDeleteChurn(t *testing.T) {
	// Random interleaving of inserts and deletes preserves exactly the
	// live set (model-based test against a map).
	rng := xrand.New(99)
	tr := MustNew[int](Config{Capacity: 4})
	live := map[geom.Point]int{}
	var keys []geom.Point
	for op := 0; op < 5000; op++ {
		if rng.Float64() < 0.6 || len(keys) == 0 {
			p := geom.Pt(rng.Float64(), rng.Float64())
			replaced, err := tr.Insert(p, op)
			if err != nil {
				t.Fatal(err)
			}
			if _, had := live[p]; had != replaced {
				t.Fatalf("replace flag wrong for %v", p)
			}
			if !replaced {
				keys = append(keys, p)
			}
			live[p] = op
		} else {
			i := rng.Intn(len(keys))
			p := keys[i]
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			if !tr.Delete(p) {
				t.Fatalf("delete of live key %v failed", p)
			}
			delete(live, p)
		}
		if tr.Len() != len(live) {
			t.Fatalf("size %d, want %d", tr.Len(), len(live))
		}
	}
	checkInvariants(t, tr)
	for p, v := range live {
		got, ok := tr.Get(p)
		if !ok || got != v {
			t.Fatalf("Get(%v) = %v, %v", p, got, ok)
		}
	}
}

func TestMaxDepthTruncation(t *testing.T) {
	// Identical-quadrant points at max depth accumulate in one leaf
	// instead of splitting forever — the paper's depth-9 artifact.
	tr := MustNew[int](Config{Capacity: 1, MaxDepth: 3})
	pts := []geom.Point{
		geom.Pt(0.01, 0.01), geom.Pt(0.011, 0.011), geom.Pt(0.012, 0.012),
		geom.Pt(0.013, 0.013), geom.Pt(0.014, 0.014),
	}
	mustInsert(t, tr, pts...)
	c := tr.Census()
	if c.Height > 3 {
		t.Fatalf("height %d exceeds max depth 3", c.Height)
	}
	for _, p := range pts {
		if !tr.Contains(p) {
			t.Fatalf("point %v lost at max depth", p)
		}
	}
	// The truncated leaf holds all five.
	if len(c.ByOccupancy) <= 5 || c.ByOccupancy[5] != 1 {
		t.Fatalf("expected one occupancy-5 leaf, got histogram %v", c.ByOccupancy)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New[int](Config{Capacity: 0}); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New[int](Config{Capacity: 1, MaxDepth: -1}); err == nil {
		t.Error("negative max depth accepted")
	}
	if _, err := New[int](Config{Capacity: 1, Region: geom.R(1, 1, 1, 2)}); err == nil {
		t.Error("empty region accepted")
	}
	// Custom region works.
	tr, err := New[int](Config{Capacity: 1, Region: geom.R(-10, -10, 10, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Insert(geom.Pt(-5, 5), 0); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNew[int](Config{Capacity: 0})
}

func TestCensusCounts(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	// Four points in separate quadrants: exactly one split.
	mustInsert(t, tr,
		geom.Pt(0.25, 0.25), geom.Pt(0.75, 0.25),
		geom.Pt(0.25, 0.75), geom.Pt(0.75, 0.75))
	c := tr.Census()
	if c.Leaves != 4 || c.Internal != 1 || c.Items != 4 || c.Height != 1 {
		t.Fatalf("census %+v", c)
	}
	if c.ByOccupancy[0] != 0 || c.ByOccupancy[1] != 4 {
		t.Fatalf("occupancy histogram %v", c.ByOccupancy)
	}
	if got := c.AverageOccupancy(); got != 1 {
		t.Fatalf("avg occupancy %v", got)
	}
	// Areas: each leaf is a quarter of the region.
	if len(c.AreaByOccupancy) < 2 || !close(c.AreaByOccupancy[1], 1.0) {
		t.Fatalf("area by occupancy %v", c.AreaByOccupancy)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < 1e-12
}

func mustInsert(t *testing.T, tr *Tree[int], pts ...geom.Point) {
	t.Helper()
	for i, p := range pts {
		if _, err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
}

func mustInsertV(t *testing.T, tr *Tree[int], p geom.Point, v int) {
	t.Helper()
	if _, err := tr.Insert(p, v); err != nil {
		t.Fatal(err)
	}
}

func TestManyCapacities(t *testing.T) {
	for m := 1; m <= 10; m++ {
		t.Run(fmt.Sprintf("m=%d", m), func(t *testing.T) {
			tr := MustNew[int](Config{Capacity: m})
			pts := randomPoints(xrand.New(uint64(m)), 300)
			for i, p := range pts {
				mustInsertV(t, tr, p, i)
			}
			checkInvariants(t, tr)
			c := tr.Census()
			if c.Items != 300 {
				t.Fatalf("census items %d", c.Items)
			}
		})
	}
}
