// Package quadtree implements the PR (point-region) quadtree of
// Orenstein and Samet, the experimental structure of Sections III-IV of
// the paper: a regular recursive decomposition of a square region in
// which every leaf block holds at most Capacity distinct points, blocks
// splitting into four congruent quadrants whenever the capacity is
// exceeded ("split until no block contains more than m points").
//
// The tree is a key-value map from points to arbitrary values, with
// point, range, and nearest-neighbor queries, deletion with block
// merging, and the occupancy statistics (overall and per depth) that the
// paper's experiments measure. It is deterministic: shape depends only on
// the point set, not on insertion order (a defining property of regular
// decomposition that the classical point quadtree lacks).
//
// Not safe for concurrent mutation; wrap with a lock if needed.
package quadtree

import (
	"errors"
	"fmt"

	"popana/internal/geom"
)

// DefaultMaxDepth bounds recursion when Config.MaxDepth is zero. With
// float64 coordinates, 48 halvings exhaust the mantissa for most regions;
// the paper's own implementation truncated at depth 9.
const DefaultMaxDepth = 48

// ErrOutOfRegion is returned when a point outside the tree's region is
// inserted.
var ErrOutOfRegion = errors.New("quadtree: point outside region")

// Config configures a tree.
type Config struct {
	// Capacity is the node capacity m >= 1: the maximum number of
	// distinct points a leaf block may hold (except at MaxDepth).
	Capacity int
	// Region is the square (or rectangular) universe. Empty selects
	// geom.UnitSquare.
	Region geom.Rect
	// MaxDepth truncates decomposition: a leaf at MaxDepth absorbs
	// points beyond capacity rather than splitting, mirroring the
	// truncation in the paper's implementation (their Table 3 notes
	// the artifact at depth 9). Zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Capacity < 1 {
		return c, fmt.Errorf("quadtree: capacity %d < 1", c.Capacity)
	}
	if c.Region.Empty() {
		if c.Region == (geom.Rect{}) {
			c.Region = geom.UnitSquare
		} else {
			return c, fmt.Errorf("quadtree: empty region %v", c.Region)
		}
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("quadtree: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

// entry is one stored point with its value.
type entry[V any] struct {
	p geom.Point
	v V
}

// node is a quadtree node: a leaf holds entries; an internal node holds
// four children and no entries. The children live in a single [4]node
// block, so a split costs one allocation (not five), and blocks
// reclaimed by merges are recycled through the tree's free list.
type node[V any] struct {
	children *[4]node[V] // nil iff leaf
	entries  []entry[V]
}

func (n *node[V]) leaf() bool { return n.children == nil }

// freeListMax bounds the per-tree node free list and entry-slice pool so
// a mass deletion cannot pin an arbitrarily large arena; beyond it,
// reclaimed memory is left to the garbage collector.
const freeListMax = 1024

// Tree is a PR quadtree mapping distinct points to values of type V.
type Tree[V any] struct {
	cfg  Config
	root *node[V]
	size int

	// free recycles child blocks reclaimed by merges; spare recycles
	// entry slices parked by splits. Together they make the split/merge
	// hot path allocation-free at steady state (churn workloads).
	free  []*[4]node[V]
	spare [][]entry[V]
}

// New returns an empty tree for the given configuration.
func New[V any](cfg Config) (*Tree[V], error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree[V]{cfg: c, root: &node[V]{}}, nil
}

// MustNew is New for configurations known to be valid; it panics on error.
func MustNew[V any](cfg Config) *Tree[V] {
	t, err := New[V](cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of stored points.
func (t *Tree[V]) Len() int { return t.size }

// Capacity returns the node capacity m.
func (t *Tree[V]) Capacity() int { return t.cfg.Capacity }

// Region returns the tree's universe rectangle.
func (t *Tree[V]) Region() geom.Rect { return t.cfg.Region }

// MaxDepth returns the configured depth truncation.
func (t *Tree[V]) MaxDepth() int { return t.cfg.MaxDepth }

// Insert stores value v at point p. If p is already present its value is
// replaced and replaced=true is returned (the PR quadtree stores distinct
// points; re-inserting an existing point does not split anything).
// Inserting a point outside the region returns ErrOutOfRegion.
func (t *Tree[V]) Insert(p geom.Point, v V) (replaced bool, err error) {
	if !t.cfg.Region.Contains(p) {
		return false, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.cfg.Region)
	}
	replaced = t.insert(t.root, t.cfg.Region, 0, entry[V]{p, v})
	if !replaced {
		t.size++
	}
	return replaced, nil
}

func (t *Tree[V]) insert(n *node[V], block geom.Rect, depth int, e entry[V]) (replaced bool) {
	for !n.leaf() {
		q := block.QuadrantOf(e.p)
		block = block.Quadrant(q)
		n = &n.children[q]
		depth++
	}
	for i := range n.entries {
		if n.entries[i].p == e.p {
			n.entries[i].v = e.v
			return true
		}
	}
	n.entries = append(n.entries, e)
	// Split until no block holds more than Capacity points, stopping at
	// the depth truncation.
	for len(n.entries) > t.cfg.Capacity && depth < t.cfg.MaxDepth {
		t.split(n, block)
		// At most one child can still be over capacity (the block held
		// capacity+1 entries, so an overfull child must have received
		// all of them); recurse into it if it exists.
		over := -1
		for c := 0; c < 4; c++ {
			if len(n.children[c].entries) > t.cfg.Capacity {
				over = c
				break
			}
		}
		if over < 0 {
			break
		}
		block = block.Quadrant(over)
		n = &n.children[over]
		depth++
	}
	return false
}

// split turns leaf n into an internal node, distributing its entries into
// the four quadrants of block. The child block comes from the tree's
// free list when one is available, and the parent's entry slice is
// parked for reuse by a future leaf.
func (t *Tree[V]) split(n *node[V], block geom.Rect) {
	ch := t.newChildren()
	for _, e := range n.entries {
		q := block.QuadrantOf(e.p)
		c := &ch[q]
		if c.entries == nil {
			c.entries = t.newEntries()
		}
		c.entries = append(c.entries, e)
	}
	t.releaseEntries(n.entries)
	n.entries = nil
	n.children = ch
}

// newChildren pops a recycled child block from the free list, or
// allocates a fresh one. Recycled blocks arrive as four empty leaves.
func (t *Tree[V]) newChildren() *[4]node[V] {
	if k := len(t.free); k > 0 {
		b := t.free[k-1]
		t.free = t.free[:k-1]
		return b
	}
	return new([4]node[V])
}

// releaseChildren resets b's four nodes to empty leaves and returns the
// block to the free list. Callers must guarantee every node in b is a
// leaf (maybeMerge checks this). Entries are cleared so the block does
// not pin caller values against the garbage collector.
func (t *Tree[V]) releaseChildren(b *[4]node[V]) {
	for q := range b {
		clear(b[q].entries)
		b[q].entries = b[q].entries[:0]
	}
	if len(t.free) < freeListMax {
		t.free = append(t.free, b)
	}
}

// newEntries pops a recycled entry slice (len 0, spare capacity) from
// the pool; nil means the caller's append will allocate as usual.
func (t *Tree[V]) newEntries() []entry[V] {
	if k := len(t.spare); k > 0 {
		s := t.spare[k-1]
		t.spare = t.spare[:k-1]
		return s
	}
	return nil
}

// releaseEntries clears s and parks its backing array for reuse.
func (t *Tree[V]) releaseEntries(s []entry[V]) {
	if cap(s) == 0 || len(t.spare) >= freeListMax {
		return
	}
	clear(s)
	t.spare = append(t.spare, s[:0])
}

// Get returns the value stored at p, if any.
func (t *Tree[V]) Get(p geom.Point) (V, bool) {
	n, block := t.root, t.cfg.Region
	if !block.Contains(p) {
		var zero V
		return zero, false
	}
	for !n.leaf() {
		q := block.QuadrantOf(p)
		block = block.Quadrant(q)
		n = &n.children[q]
	}
	for i := range n.entries {
		if n.entries[i].p == p {
			return n.entries[i].v, true
		}
	}
	var zero V
	return zero, false
}

// Contains reports whether point p is stored in the tree.
func (t *Tree[V]) Contains(p geom.Point) bool {
	_, ok := t.Get(p)
	return ok
}

// Delete removes the point p, returning whether it was present. After
// removal, sibling blocks whose combined occupancy fits in one block are
// merged back, so the tree shape stays the canonical shape for the
// remaining point set.
func (t *Tree[V]) Delete(p geom.Point) bool {
	if !t.cfg.Region.Contains(p) {
		return false
	}
	removed := t.delete(t.root, t.cfg.Region, p)
	if removed {
		t.size--
	}
	return removed
}

func (t *Tree[V]) delete(n *node[V], block geom.Rect, p geom.Point) bool {
	if n.leaf() {
		for i := range n.entries {
			if n.entries[i].p == p {
				last := len(n.entries) - 1
				n.entries[i] = n.entries[last]
				n.entries = n.entries[:last]
				return true
			}
		}
		return false
	}
	q := block.QuadrantOf(p)
	if !t.delete(&n.children[q], block.Quadrant(q), p) {
		return false
	}
	t.maybeMerge(n)
	return true
}

// maybeMerge collapses n's children back into n when all four are leaves
// and their combined occupancy fits a single block. The reclaimed child
// block goes back on the free list for the next split to reuse.
func (t *Tree[V]) maybeMerge(n *node[V]) {
	total := 0
	for q := range n.children {
		c := &n.children[q]
		if !c.leaf() {
			return
		}
		total += len(c.entries)
	}
	if total > t.cfg.Capacity {
		return
	}
	merged := t.newEntries()
	if cap(merged) < total {
		merged = make([]entry[V], 0, total)
	}
	for q := range n.children {
		merged = append(merged, n.children[q].entries...)
	}
	t.releaseChildren(n.children)
	n.children = nil
	n.entries = merged
}
