package quadtree

import (
	"popana/internal/geom"
	"popana/internal/stats"
)

// Census walks the tree and returns its occupancy census: the leaf
// populations by occupancy and depth that the paper's experiments
// measure. Relative block areas are recorded for the aging analysis.
func (t *Tree[V]) Census() stats.Census {
	var b stats.CensusBuilder
	totalArea := t.cfg.Region.Area()
	census(t.root, t.cfg.Region, 0, totalArea, &b)
	return b.Census()
}

func census[V any](n *node[V], block geom.Rect, depth int, totalArea float64, b *stats.CensusBuilder) {
	if n.leaf() {
		b.AddLeaf(depth, len(n.entries), block.Area()/totalArea)
		return
	}
	b.AddInternal(depth)
	for q := 0; q < 4; q++ {
		census(&n.children[q], block.Quadrant(q), depth+1, totalArea, b)
	}
}

// WalkBlocks visits every leaf block with its depth and occupancy;
// returning false stops the walk. It exposes the decomposition geometry
// for visualization and analyses beyond the census.
func (t *Tree[V]) WalkBlocks(visit func(block geom.Rect, depth, occupancy int) bool) bool {
	return walkBlocks(t.root, t.cfg.Region, 0, visit)
}

func walkBlocks[V any](n *node[V], block geom.Rect, depth int, visit func(geom.Rect, int, int) bool) bool {
	if n.leaf() {
		return visit(block, depth, len(n.entries))
	}
	for q := 0; q < 4; q++ {
		if !walkBlocks(&n.children[q], block.Quadrant(q), depth+1, visit) {
			return false
		}
	}
	return true
}

// NodeCount returns the total number of nodes (leaves plus internal).
func (t *Tree[V]) NodeCount() int {
	c := t.Census()
	return c.Leaves + c.Internal
}

// LeafCount returns the number of leaf blocks — the paper's "nodes"
// column (populations are defined over leaves).
func (t *Tree[V]) LeafCount() int { return t.Census().Leaves }

// Height returns the maximum leaf depth (an empty tree has height 0).
func (t *Tree[V]) Height() int { return t.Census().Height }
