package quadtree

import (
	"math"

	"popana/internal/geom"
)

// Visit is a callback for spatial queries; returning false stops the
// query early.
type Visit[V any] func(p geom.Point, v V) bool

// Range calls visit for every stored point inside the closed query
// rectangle, in an unspecified order, pruning whole blocks that do not
// intersect the query. It reports whether the traversal ran to
// completion (i.e. visit never returned false).
func (t *Tree[V]) Range(query geom.Rect, visit Visit[V]) bool {
	return rangeQuery(t.root, t.cfg.Region, query, visit)
}

func rangeQuery[V any](n *node[V], block, query geom.Rect, visit Visit[V]) bool {
	if n.leaf() {
		for i := range n.entries {
			if query.ContainsClosed(n.entries[i].p) {
				if !visit(n.entries[i].p, n.entries[i].v) {
					return false
				}
			}
		}
		return true
	}
	for q := 0; q < 4; q++ {
		child := block.Quadrant(q)
		if !overlapsClosed(child, query) {
			continue
		}
		if !rangeQuery(&n.children[q], child, query, visit) {
			return false
		}
	}
	return true
}

// overlapsClosed is the single pruning predicate of range traversals: it
// reports whether the closed query rectangle touches the half-open
// block. It delegates to geom.OverlapsClosed so the spatialdb shard
// fan-out, which prunes whole shard regions before any tree is
// touched, applies the bit-identical test.
func overlapsClosed(block, query geom.Rect) bool {
	return block.OverlapsClosed(query)
}

// CountRange returns the number of stored points inside the closed query
// rectangle. It runs the same traversal as Range but with no per-match
// callback, so it allocates nothing.
func (t *Tree[V]) CountRange(query geom.Rect) int {
	return t.CountRangeBudgeted(query, 0).Matched
}

// CountRangeBudgeted counts the stored points inside the closed query
// rectangle under a node-visit budget, through the exact traversal
// RangeBudgeted uses: the count is RangeStats.Matched, and Truncated
// reports a budget stop identically to a budgeted Range over the same
// query. maxNodes <= 0 means unlimited. It allocates nothing.
func (t *Tree[V]) CountRangeBudgeted(query geom.Rect, maxNodes int) RangeStats {
	var st RangeStats
	rangeCounted[V](t.root, t.cfg.Region, query, nil, &st, maxNodes)
	return st
}

// RangeStats reports the work a Range traversal performed — the
// measured counterpart of a cost model's estimate.
type RangeStats struct {
	// NodesVisited counts every node (internal and leaf) the
	// traversal descended into after pruning.
	NodesVisited int
	// LeavesVisited counts leaf blocks scanned.
	LeavesVisited int
	// RecordsScanned counts stored points inspected (visited leaves'
	// occupancies), whether or not they matched.
	RecordsScanned int
	// Matched counts points inside the query.
	Matched int
	// Truncated reports that a node-visit budget stopped the traversal
	// before it finished; the results delivered so far are a partial
	// answer.
	Truncated bool
}

// RangeCounted is Range with instrumentation: it returns the traversal
// statistics alongside invoking visit for each match.
func (t *Tree[V]) RangeCounted(query geom.Rect, visit Visit[V]) RangeStats {
	return t.RangeBudgeted(query, 0, visit)
}

// RangeBudgeted is RangeCounted with a guardrail: the traversal stops
// after descending into maxNodes nodes, marking the returned stats
// Truncated and leaving whatever matches were delivered so far as a
// partial result. maxNodes <= 0 means unlimited. It bounds the worst
// case of adversarially large or clustered tables, where an unbudgeted
// window query can touch every block.
func (t *Tree[V]) RangeBudgeted(query geom.Rect, maxNodes int, visit Visit[V]) RangeStats {
	var st RangeStats
	rangeCounted(t.root, t.cfg.Region, query, visit, &st, maxNodes)
	return st
}

// rangeCounted is the shared instrumented traversal behind
// RangeBudgeted and CountRangeBudgeted. A nil visit counts matches
// without delivering them.
func rangeCounted[V any](n *node[V], block, query geom.Rect, visit Visit[V], st *RangeStats, maxNodes int) bool {
	if maxNodes > 0 && st.NodesVisited >= maxNodes {
		st.Truncated = true
		return false
	}
	st.NodesVisited++
	if n.leaf() {
		st.LeavesVisited++
		st.RecordsScanned += len(n.entries)
		for i := range n.entries {
			if query.ContainsClosed(n.entries[i].p) {
				st.Matched++
				if visit != nil && !visit(n.entries[i].p, n.entries[i].v) {
					return false
				}
			}
		}
		return true
	}
	for q := 0; q < 4; q++ {
		child := block.Quadrant(q)
		if !overlapsClosed(child, query) {
			continue
		}
		if !rangeCounted(&n.children[q], child, query, visit, st, maxNodes) {
			return false
		}
	}
	return true
}

// Nearest returns the stored point closest to p in Euclidean distance,
// breaking ties arbitrarily. ok is false when the tree is empty. The
// query point need not lie inside the region.
func (t *Tree[V]) Nearest(p geom.Point) (best geom.Point, v V, ok bool) {
	if t.size == 0 {
		return geom.Point{}, v, false
	}
	bestD := math.Inf(1)
	nearest(t.root, t.cfg.Region, p, &bestD, &best, &v)
	return best, v, true
}

func nearest[V any](n *node[V], block geom.Rect, p geom.Point, bestD *float64, best *geom.Point, bestV *V) {
	if n.leaf() {
		for i := range n.entries {
			if d := n.entries[i].p.Dist2(p); d < *bestD {
				*bestD = d
				*best = n.entries[i].p
				*bestV = n.entries[i].v
			}
		}
		return
	}
	// Visit children nearest-first so pruning bites early.
	type cand struct {
		q int
		d float64
	}
	var cands [4]cand
	for q := 0; q < 4; q++ {
		cands[q] = cand{q, rectDist2(block.Quadrant(q), p)}
	}
	// Insertion sort of four elements.
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		if c.d >= *bestD {
			return // remaining children are at least as far
		}
		nearest(&n.children[c.q], block.Quadrant(c.q), p, bestD, best, bestV)
	}
}

// KNearest returns the k stored points closest to p, nearest first.
// Fewer than k are returned if the tree is smaller than k.
func (t *Tree[V]) KNearest(p geom.Point, k int) []geom.Point {
	if k <= 0 {
		return nil
	}
	h := &maxHeap{}
	kNearest(t.root, t.cfg.Region, p, k, h)
	out := make([]geom.Point, len(h.pts))
	for i := len(h.pts) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}

func kNearest[V any](n *node[V], block geom.Rect, p geom.Point, k int, h *maxHeap) {
	if n.leaf() {
		for i := range n.entries {
			d := n.entries[i].p.Dist2(p)
			if len(h.pts) < k {
				h.push(n.entries[i].p, d)
			} else if d < h.top() {
				h.pop()
				h.push(n.entries[i].p, d)
			}
		}
		return
	}
	type cand struct {
		q int
		d float64
	}
	var cands [4]cand
	for q := 0; q < 4; q++ {
		cands[q] = cand{q, rectDist2(block.Quadrant(q), p)}
	}
	for i := 1; i < 4; i++ {
		for j := i; j > 0 && cands[j].d < cands[j-1].d; j-- {
			cands[j], cands[j-1] = cands[j-1], cands[j]
		}
	}
	for _, c := range cands {
		if len(h.pts) == k && c.d >= h.top() {
			return
		}
		kNearest(&n.children[c.q], block.Quadrant(c.q), p, k, h)
	}
}

// maxHeap is a small max-heap of points keyed by squared distance, used
// by KNearest to keep the current best k.
type maxHeap struct {
	pts []geom.Point
	ds  []float64
}

func (h *maxHeap) top() float64 { return h.ds[0] }

func (h *maxHeap) push(p geom.Point, d float64) {
	h.pts = append(h.pts, p)
	h.ds = append(h.ds, d)
	i := len(h.ds) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.ds[parent] >= h.ds[i] {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *maxHeap) pop() geom.Point {
	p := h.pts[0]
	last := len(h.ds) - 1
	h.swap(0, last)
	h.pts, h.ds = h.pts[:last], h.ds[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && h.ds[l] > h.ds[big] {
			big = l
		}
		if r < last && h.ds[r] > h.ds[big] {
			big = r
		}
		if big == i {
			break
		}
		h.swap(i, big)
		i = big
	}
	return p
}

func (h *maxHeap) swap(i, j int) {
	h.pts[i], h.pts[j] = h.pts[j], h.pts[i]
	h.ds[i], h.ds[j] = h.ds[j], h.ds[i]
}

// rectDist2 returns the squared distance from p to the closest point of
// rectangle r (zero when p is inside).
func rectDist2(r geom.Rect, p geom.Point) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return dx*dx + dy*dy
}

// Walk visits every stored point in an unspecified order; returning false
// from visit stops the walk.
func (t *Tree[V]) Walk(visit Visit[V]) bool {
	return walk(t.root, visit)
}

func walk[V any](n *node[V], visit Visit[V]) bool {
	if n.leaf() {
		for i := range n.entries {
			if !visit(n.entries[i].p, n.entries[i].v) {
				return false
			}
		}
		return true
	}
	for q := range n.children {
		if !walk(&n.children[q], visit) {
			return false
		}
	}
	return true
}

// Points returns all stored points in an unspecified order.
func (t *Tree[V]) Points() []geom.Point {
	pts := make([]geom.Point, 0, t.size)
	t.Walk(func(p geom.Point, _ V) bool {
		pts = append(pts, p)
		return true
	})
	return pts
}
