package quadtree

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// TestPruningPredicateBoundaryRegression pins the behavior of the
// collapsed pruning predicate (overlapsClosed alone, which subsumes the
// former open-intersection test): queries whose edges coincide with
// block boundaries, and points lying exactly on those boundaries, match
// identically to a brute-force scan.
func TestPruningPredicateBoundaryRegression(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1})
	// A grid of points on dyadic coordinates: every one sits exactly on
	// a block boundary at some depth once the tree splits this far.
	var pts []geom.Point
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			p := geom.Pt(float64(i)/8, float64(j)/8)
			pts = append(pts, p)
			if _, err := tr.Insert(p, i*8+j); err != nil {
				t.Fatal(err)
			}
		}
	}
	brute := func(q geom.Rect) int {
		n := 0
		for _, p := range pts {
			if q.ContainsClosed(p) {
				n++
			}
		}
		return n
	}
	queries := []geom.Rect{
		geom.R(0.25, 0.25, 0.5, 0.5), // edges on depth-2 boundaries
		geom.R(0.5, 0.5, 0.5, 0.5),   // degenerate: a single boundary point
		geom.R(0.125, 0, 0.125, 1),   // zero-width slab on a depth-3 boundary
		geom.R(0, 0.875, 1, 0.875),   // zero-height slab at the top row
		geom.R(0.375, 0.375, 0.625, .625),
		geom.R(0, 0, 1, 1),           // whole region
		geom.R(-0.5, -0.5, 1.5, 1.5), // superset
		geom.R(0.875, 0.875, 2, 2),   // touching the max corner block
	}
	// Random windows snapped to the dyadic grid: edges always coincide
	// with some block boundary.
	rng := xrand.New(31)
	for k := 0; k < 500; k++ {
		x0, y0 := float64(rng.Intn(9))/8, float64(rng.Intn(9))/8
		x1, y1 := float64(rng.Intn(9))/8, float64(rng.Intn(9))/8
		if x1 < x0 {
			x0, x1 = x1, x0
		}
		if y1 < y0 {
			y0, y1 = y1, y0
		}
		queries = append(queries, geom.R(x0, y0, x1, y1))
	}
	for _, q := range queries {
		want := brute(q)
		got := 0
		tr.Range(q, func(geom.Point, int) bool { got++; return true })
		if got != want {
			t.Errorf("Range(%v) matched %d points, brute force %d", q, got, want)
		}
		if c := tr.CountRange(q); c != want {
			t.Errorf("CountRange(%v) = %d, brute force %d", q, c, want)
		}
	}
}

// TestCountRangeBudgetedMatchesRangeBudgeted: the count path runs the
// exact same traversal as the visiting path — identical stats,
// including Truncated, at every budget.
func TestCountRangeBudgetedMatchesRangeBudgeted(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	rng := xrand.New(32)
	for tr.Len() < 3000 {
		if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), tr.Len()); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.R(0.1, 0.1, 0.8, 0.8)
	for _, budget := range []int{0, 1, 2, 7, 100, 1 << 20} {
		visited := tr.RangeBudgeted(q, budget, func(geom.Point, int) bool { return true })
		counted := tr.CountRangeBudgeted(q, budget)
		if visited != counted {
			t.Errorf("budget %d: RangeBudgeted stats %+v != CountRangeBudgeted %+v", budget, visited, counted)
		}
	}
	if n := tr.CountRange(q); n != tr.CountRangeBudgeted(q, 0).Matched {
		t.Errorf("CountRange %d != unbudgeted Matched", n)
	}
}

// TestCountRangeAllocationFree: counting allocates nothing — the former
// closure-based implementation allocated its capture.
func TestCountRangeAllocationFree(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 8})
	rng := xrand.New(33)
	for tr.Len() < 5000 {
		if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), tr.Len()); err != nil {
			t.Fatal(err)
		}
	}
	q := geom.R(0.2, 0.2, 0.6, 0.6)
	allocs := testing.AllocsPerRun(100, func() {
		if tr.CountRange(q) == 0 {
			t.Fatal("empty count")
		}
	})
	if allocs != 0 {
		t.Errorf("CountRange allocates %.1f per op, want 0", allocs)
	}
	budgeted := testing.AllocsPerRun(100, func() {
		if st := tr.CountRangeBudgeted(q, 50); !st.Truncated {
			t.Fatal("expected truncation")
		}
	})
	if budgeted != 0 {
		t.Errorf("CountRangeBudgeted allocates %.1f per op, want 0", budgeted)
	}
}

// TestWalkLeavesZOrder: WalkLeaves emits every entry exactly once, in
// leaf Z-order (normalized codes strictly increasing), tiling the
// region completely.
func TestWalkLeavesZOrder(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 3})
	rng := xrand.New(34)
	for tr.Len() < 2000 {
		if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), tr.Len()); err != nil {
			t.Fatal(err)
		}
	}
	height := tr.Height()
	prev := int64(-1)
	leaves, entries := 0, 0
	total := uint64(0)
	tr.WalkLeaves(func(path uint64, depth int, each func(func(geom.Point, int) bool)) bool {
		leaves++
		if depth > height {
			t.Fatalf("leaf depth %d exceeds height %d", depth, height)
		}
		norm := path << (2 * uint(height-depth))
		if int64(norm) <= prev {
			t.Fatalf("leaf codes not strictly increasing: %d after %d", norm, prev)
		}
		prev = int64(norm)
		total += 1 << (2 * uint(height-depth))
		each(func(geom.Point, int) bool { entries++; return true })
		return true
	})
	if leaves != tr.LeafCount() {
		t.Errorf("walked %d leaves, census says %d", leaves, tr.LeafCount())
	}
	if entries != tr.Len() {
		t.Errorf("walked %d entries, tree holds %d", entries, tr.Len())
	}
	if total != 1<<(2*uint(height)) {
		t.Errorf("leaf intervals cover %d cells, want %d (perfect tiling)", total, uint64(1)<<(2*uint(height)))
	}
	// Early stop works.
	n := 0
	tr.WalkLeaves(func(uint64, int, func(func(geom.Point, int) bool)) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("early stop visited %d leaves, want 3", n)
	}
}
