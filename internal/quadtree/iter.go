package quadtree

import "popana/internal/geom"

// LeafIter is an allocation-free traversal of a tree's nodes in
// Z-order (pre-order, children in quadrant order 0..3). It exists for
// the bulk export paths — building a linear snapshot walks every leaf
// twice (sizing, then emission), and the WalkLeaves closure protocol
// allocates per call frame — and for incremental consumers that skip
// whole subtrees: NextNode surfaces internal nodes too, and Skip
// prunes the subtree under the current one.
//
// The iterator borrows the tree: the tree must not be mutated between
// Reset and the last Next/NextNode call. Path follows the WalkLeaves
// convention (two bits per level, root's quadrant choice most
// significant; meaningful only while Depth <= 32).
type LeafIter[V any] struct {
	root  *node[V]
	cur   *node[V]
	path  uint64
	depth int
	// stack holds the internal nodes whose children are still being
	// visited; frame q is the next quadrant to descend into.
	stack   []iterFrame[V]
	started bool
	skip    bool
}

type iterFrame[V any] struct {
	children *[4]node[V]
	path     uint64
	depth    int32
	q        int8
}

// NewLeafIter returns an iterator positioned before t's root. The only
// allocations the iterator ever performs are here and — for trees
// deeper than the preallocated DefaultMaxDepth frames — when the stack
// grows.
func NewLeafIter[V any](t *Tree[V]) *LeafIter[V] {
	it := &LeafIter[V]{stack: make([]iterFrame[V], 0, DefaultMaxDepth+1)}
	it.Reset(t)
	return it
}

// Reset re-targets the iterator at t's root, reusing the stack.
func (it *LeafIter[V]) Reset(t *Tree[V]) {
	it.root = t.root
	it.cur = nil
	it.path, it.depth = 0, 0
	it.stack = it.stack[:0]
	it.started = false
	it.skip = false
}

// NextNode advances to the next node in pre-order — internal nodes
// included — and reports whether one exists. The root is the first
// node.
func (it *LeafIter[V]) NextNode() bool {
	if !it.started {
		it.started = true
		it.cur = it.root
		return true
	}
	if it.cur != nil && it.cur.children != nil && !it.skip {
		it.stack = append(it.stack, iterFrame[V]{
			children: it.cur.children,
			path:     it.path,
			depth:    int32(it.depth),
		})
	}
	it.skip = false
	for len(it.stack) > 0 {
		fr := &it.stack[len(it.stack)-1]
		if fr.q < 4 {
			q := fr.q
			fr.q++
			it.cur = &fr.children[q]
			it.path = fr.path<<2 | uint64(q)
			it.depth = int(fr.depth) + 1
			return true
		}
		it.stack = it.stack[:len(it.stack)-1]
	}
	it.cur = nil
	return false
}

// Skip prunes the subtree under the current node: the following
// NextNode continues with its next sibling. A no-op on leaves (their
// subtree is themselves) and before the first NextNode.
func (it *LeafIter[V]) Skip() { it.skip = true }

// Next advances to the next leaf, descending past internal nodes, and
// reports whether one exists.
func (it *LeafIter[V]) Next() bool {
	for it.NextNode() {
		if it.cur.leaf() {
			return true
		}
	}
	return false
}

// Internal reports whether the current node is internal (has children).
func (it *LeafIter[V]) Internal() bool { return it.cur != nil && !it.cur.leaf() }

// Path returns the current node's locational path code (see LeafVisitor).
func (it *LeafIter[V]) Path() uint64 { return it.path }

// Depth returns the current node's depth; the root is depth 0.
func (it *LeafIter[V]) Depth() int { return it.depth }

// Len returns the number of entries stored in the current node (zero
// for internal nodes).
func (it *LeafIter[V]) Len() int { return len(it.cur.entries) }

// Entry returns the current leaf's i-th entry.
func (it *LeafIter[V]) Entry(i int) (geom.Point, V) {
	e := &it.cur.entries[i]
	return e.p, e.v
}

// AppendPlanes appends the current leaf's entries to the three
// structure-of-arrays planes and returns the extended slices. It is the
// bulk export primitive: one call per leaf, no per-entry closures.
func (it *LeafIter[V]) AppendPlanes(xs, ys []float64, vals []V) ([]float64, []float64, []V) {
	for i := range it.cur.entries {
		e := &it.cur.entries[i]
		xs = append(xs, e.p.X)
		ys = append(ys, e.p.Y)
		vals = append(vals, e.v)
	}
	return xs, ys, vals
}
