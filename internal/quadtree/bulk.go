package quadtree

// Bulk insertion. A batch of points is routed down the tree with a
// recursive stable 4-way partition: one quadrant-counting pass computes
// group offsets, the groups are copied into a scratch buffer, and the
// recursion descends with the roles of the two buffers swapped
// (ping-pong), so the whole load does O(n · depth) work with two O(n)
// buffers instead of per-insert descents and transient splits. Because
// the PR quadtree's shape depends only on the point set, the result is
// identical to inserting the batch point by point.

import (
	"fmt"

	"popana/internal/geom"
)

// BulkLoad inserts a batch of point-value pairs into the tree in one
// partitioning pass and reports how many points were new. Semantics
// match a sequential loop of Insert calls: a point equal to one already
// stored (or repeated within the batch) keeps the last value and adds
// nothing to Len. If any point lies outside the region, ErrOutOfRegion
// is returned and the tree is left unchanged.
func (t *Tree[V]) BulkLoad(points []geom.Point, values []V) (added int, err error) {
	if len(points) != len(values) {
		return 0, fmt.Errorf("quadtree: %d points but %d values", len(points), len(values))
	}
	for _, p := range points {
		if !t.cfg.Region.Contains(p) {
			return 0, fmt.Errorf("%w: %v not in %v", ErrOutOfRegion, p, t.cfg.Region)
		}
	}
	if len(points) == 0 {
		return 0, nil
	}
	es := make([]entry[V], len(points))
	for i := range points {
		es[i] = entry[V]{points[i], values[i]}
	}
	before := t.size
	t.bulkInsert(t.root, t.cfg.Region, 0, es, make([]entry[V], len(es)))
	return t.size - before, nil
}

// bulkInsert routes the batch es into the subtree at n. scratch is a
// buffer of the same length as es; the two swap roles at each level.
// The batch's order is preserved within each quadrant group (stable
// partition), which is what makes duplicates resolve last-wins exactly
// as sequential insertion would.
func (t *Tree[V]) bulkInsert(n *node[V], block geom.Rect, depth int, es, scratch []entry[V]) {
	if len(es) == 0 {
		return
	}
	merge := false
	if n.leaf() {
		if depth >= t.cfg.MaxDepth || len(n.entries)+len(es) <= t.cfg.Capacity {
			// Small enough to resolve in place (or pinned by the depth
			// truncation): fold the batch into the leaf, last value wins.
			for _, e := range es {
				replaced := false
				for i := range n.entries {
					if n.entries[i].p == e.p {
						n.entries[i].v = e.v
						replaced = true
						break
					}
				}
				if !replaced {
					n.entries = append(n.entries, e)
					t.size++
				}
			}
			return
		}
		// The combined set may overflow the block: split now and route
		// the batch through the resulting children. If duplicates end up
		// keeping the distinct count within capacity after all, the
		// merge check below collapses the block back, so the final shape
		// is still the canonical one for the point set.
		t.split(n, block)
		merge = true
	}
	// Stable 4-way partition of es into scratch.
	var count, pos [4]int
	for i := range es {
		count[block.QuadrantOf(es[i].p)]++
	}
	for q := 1; q < 4; q++ {
		pos[q] = pos[q-1] + count[q-1]
	}
	off := pos
	for i := range es {
		q := block.QuadrantOf(es[i].p)
		scratch[pos[q]] = es[i]
		pos[q]++
	}
	for q := 0; q < 4; q++ {
		lo, hi := off[q], off[q]+count[q]
		t.bulkInsert(&n.children[q], block.Quadrant(q), depth+1, scratch[lo:hi], es[lo:hi])
	}
	if merge {
		t.maybeMerge(n)
	}
}
