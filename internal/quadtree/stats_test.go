package quadtree

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestAccessors(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 3, MaxDepth: 7})
	if tr.MaxDepth() != 7 {
		t.Fatalf("MaxDepth = %d", tr.MaxDepth())
	}
	mustInsert(t, tr,
		geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.1),
		geom.Pt(0.1, 0.9), geom.Pt(0.9, 0.9))
	if tr.NodeCount() != tr.LeafCount()+tr.Census().Internal {
		t.Fatal("NodeCount inconsistent")
	}
	if tr.LeafCount() != tr.Census().Leaves {
		t.Fatal("LeafCount inconsistent")
	}
	if tr.Height() != tr.Census().Height {
		t.Fatal("Height inconsistent")
	}
}

func TestWalkBlocksPartitionsRegion(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	for i, p := range randomPoints(xrand.New(7), 300) {
		mustInsertV(t, tr, p, i)
	}
	area := 0.0
	items := 0
	ok := tr.WalkBlocks(func(block geom.Rect, depth, occ int) bool {
		area += block.Area()
		items += occ
		if depth < 0 {
			t.Fatal("negative depth")
		}
		return true
	})
	if !ok {
		t.Fatal("walk stopped early")
	}
	if math.Abs(area-tr.Region().Area()) > 1e-9 {
		t.Fatalf("leaf blocks cover area %v, region is %v", area, tr.Region().Area())
	}
	if items != 300 {
		t.Fatalf("blocks hold %d items", items)
	}
	// Early stop works.
	n := 0
	if tr.WalkBlocks(func(geom.Rect, int, int) bool { n++; return false }) {
		t.Fatal("early stop reported complete")
	}
	if n != 1 {
		t.Fatalf("visited %d blocks before stopping", n)
	}
}

func TestRangeCountedMatchesRange(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 3})
	pts := randomPoints(xrand.New(8), 500)
	for i, p := range pts {
		mustInsertV(t, tr, p, i)
	}
	q := geom.R(0.2, 0.3, 0.7, 0.8)
	want := tr.CountRange(q)
	got := 0
	st := tr.RangeCounted(q, func(geom.Point, int) bool { got++; return true })
	if got != want || st.Matched != want {
		t.Fatalf("RangeCounted matched %d/%d, want %d", got, st.Matched, want)
	}
	if st.RecordsScanned < want {
		t.Fatalf("scanned %d < matched %d", st.RecordsScanned, want)
	}
	if st.LeavesVisited == 0 || st.NodesVisited < st.LeavesVisited {
		t.Fatalf("stats %+v inconsistent", st)
	}
	// Pruning: scanning must not touch every record for a small query.
	small := geom.R(0.1, 0.1, 0.15, 0.15)
	st2 := tr.RangeCounted(small, func(geom.Point, int) bool { return true })
	if st2.RecordsScanned >= len(pts) {
		t.Fatalf("small query scanned everything (%d)", st2.RecordsScanned)
	}
	// Early stop propagates.
	n := 0
	st3 := tr.RangeCounted(geom.UnitSquare, func(geom.Point, int) bool { n++; return n < 3 })
	if st3.Matched < 3 {
		t.Fatalf("early-stopped stats %+v", st3)
	}
}

func TestCensusSearchDepth(t *testing.T) {
	// Four leaves at depth 1 with distinct occupancies: search depth
	// is exactly 1 (all areas equal), mean leaf depth 1.
	tr := MustNew[int](Config{Capacity: 1})
	mustInsert(t, tr,
		geom.Pt(0.1, 0.1), geom.Pt(0.9, 0.1),
		geom.Pt(0.1, 0.9), geom.Pt(0.9, 0.9))
	c := tr.Census()
	if d := c.ExpectedSearchDepth(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("search depth %v, want 1", d)
	}
	if d := c.MeanLeafDepth(); math.Abs(d-1) > 1e-12 {
		t.Fatalf("mean leaf depth %v, want 1", d)
	}
	// Uneven depths: area weighting must be below count weighting when
	// the deep blocks are small (aging in cost form).
	tr2 := MustNew[int](Config{Capacity: 1})
	mustInsert(t, tr2, geom.Pt(0.01, 0.01), geom.Pt(0.02, 0.02), geom.Pt(0.9, 0.9))
	c2 := tr2.Census()
	if c2.ExpectedSearchDepth() >= c2.MeanLeafDepth() {
		t.Fatalf("area-weighted %v not below count-weighted %v",
			c2.ExpectedSearchDepth(), c2.MeanLeafDepth())
	}
}
