package quadtree

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestRangeBudgetedTruncates(t *testing.T) {
	rng := xrand.New(7)
	tr := MustNew[int](Config{Capacity: 2})
	for i, p := range randomPoints(rng, 2000) {
		mustInsertV(t, tr, p, i)
	}
	full := tr.RangeCounted(geom.UnitSquare, func(geom.Point, int) bool { return true })
	if full.Truncated {
		t.Fatalf("unbudgeted traversal truncated: %+v", full)
	}
	if full.Matched != 2000 {
		t.Fatalf("full scan matched %d", full.Matched)
	}

	const budget = 16
	got := 0
	st := tr.RangeBudgeted(geom.UnitSquare, budget, func(geom.Point, int) bool {
		got++
		return true
	})
	if !st.Truncated {
		t.Fatalf("budget %d did not truncate a %d-node scan: %+v", budget, full.NodesVisited, st)
	}
	if st.NodesVisited > budget {
		t.Fatalf("visited %d nodes, budget %d", st.NodesVisited, budget)
	}
	if got != st.Matched {
		t.Fatalf("callback count %d != Matched %d", got, st.Matched)
	}
	if st.Matched >= full.Matched {
		t.Fatalf("truncated scan matched everything (%d)", st.Matched)
	}
}

func TestRangeBudgetedLargeBudgetEqualsUnbudgeted(t *testing.T) {
	rng := xrand.New(8)
	tr := MustNew[int](Config{Capacity: 4})
	for i, p := range randomPoints(rng, 500) {
		mustInsertV(t, tr, p, i)
	}
	q := geom.R(0.1, 0.1, 0.7, 0.7)
	full := tr.RangeCounted(q, func(geom.Point, int) bool { return true })
	budgeted := tr.RangeBudgeted(q, full.NodesVisited+1, func(geom.Point, int) bool { return true })
	if budgeted.Truncated {
		t.Fatalf("ample budget truncated: %+v", budgeted)
	}
	if budgeted != full {
		t.Fatalf("budgeted %+v != unbudgeted %+v", budgeted, full)
	}
}

func TestRangeBudgetedZeroAndNegativeMeanUnlimited(t *testing.T) {
	rng := xrand.New(9)
	tr := MustNew[int](Config{Capacity: 2})
	for i, p := range randomPoints(rng, 300) {
		mustInsertV(t, tr, p, i)
	}
	for _, budget := range []int{0, -5} {
		st := tr.RangeBudgeted(geom.UnitSquare, budget, func(geom.Point, int) bool { return true })
		if st.Truncated || st.Matched != 300 {
			t.Fatalf("budget %d: %+v", budget, st)
		}
	}
}

// TestMaxDepthAdversarialCluster: hundreds of near-coincident points —
// the worst case for a regular decomposition, which would otherwise
// split forever trying to separate them — must terminate at MaxDepth
// with the overflow absorbed into one deep leaf, and stay fully
// queryable and deletable.
func TestMaxDepthAdversarialCluster(t *testing.T) {
	const (
		maxDepth = 8
		n        = 300
	)
	tr := MustNew[int](Config{Capacity: 2, MaxDepth: maxDepth})
	pts := make([]geom.Point, n)
	for i := range pts {
		// Distinct points packed into a span of ~3e-11 — far below the
		// 2^-8 leaf size at MaxDepth, so they can never be separated.
		pts[i] = geom.Pt(0.30000000001+float64(i)*1e-13, 0.70000000001)
		mustInsertV(t, tr, pts[i], i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d", tr.Len())
	}
	c := tr.Census()
	if c.Height > maxDepth {
		t.Fatalf("height %d exceeds max depth %d", c.Height, maxDepth)
	}
	for i, p := range pts {
		if v, ok := tr.Get(p); !ok || v != i {
			t.Fatalf("Get(%v) = %v, %v", p, v, ok)
		}
	}
	// Range over the cluster sees every point and terminates.
	box := geom.R(0.3, 0.7, 0.30001, 0.70001)
	if got := tr.CountRange(box); got != n {
		t.Fatalf("CountRange = %d, want %d", got, n)
	}
	// Deleting half the cluster keeps the rest intact.
	for i := 0; i < n/2; i++ {
		if !tr.Delete(pts[i]) {
			t.Fatalf("Delete(%v) failed", pts[i])
		}
	}
	if tr.Len() != n-n/2 {
		t.Fatalf("Len after deletes = %d", tr.Len())
	}
	for i := n / 2; i < n; i++ {
		if !tr.Contains(pts[i]) {
			t.Fatalf("survivor %v lost after deletes", pts[i])
		}
	}
}

// TestMaxDepthCoincidentReplacement: exactly coincident points are a
// replacement, not an occupancy explosion, even at tiny MaxDepth.
func TestMaxDepthCoincidentReplacement(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 1, MaxDepth: 2})
	p := geom.Pt(0.125, 0.125)
	for i := 0; i < 50; i++ {
		replaced, err := tr.Insert(p, i)
		if err != nil {
			t.Fatal(err)
		}
		if (i == 0) == replaced {
			t.Fatalf("insert %d: replaced = %v", i, replaced)
		}
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if v, _ := tr.Get(p); v != 49 {
		t.Fatalf("value %v", v)
	}
}
