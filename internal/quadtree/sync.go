package quadtree

import (
	"io"
	"sync"

	"popana/internal/geom"
	"popana/internal/stats"
)

// SyncTree wraps a Tree with a readers-writer lock so it can back a
// concurrent service (the GIS servers that motivated the paper are
// multi-client). Reads run concurrently; mutations are exclusive.
//
// The wrapper covers the operational API. Analyses that need a stable
// snapshot (Census during a long report, Encode to disk) take the read
// lock for their whole duration, so writers see bounded delay rather
// than torn state.
type SyncTree[V any] struct {
	mu sync.RWMutex
	t  *Tree[V]
}

// NewSync returns an empty synchronized tree.
func NewSync[V any](cfg Config) (*SyncTree[V], error) {
	t, err := New[V](cfg)
	if err != nil {
		return nil, err
	}
	return &SyncTree[V]{t: t}, nil
}

// Len returns the number of stored points.
func (s *SyncTree[V]) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Len()
}

// Region returns the tree's universe rectangle (immutable, no lock).
func (s *SyncTree[V]) Region() geom.Rect { return s.t.Region() }

// Insert stores value v at point p.
func (s *SyncTree[V]) Insert(p geom.Point, v V) (replaced bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Insert(p, v)
}

// Get returns the value stored at p, if any.
func (s *SyncTree[V]) Get(p geom.Point) (V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Get(p)
}

// Contains reports whether p is stored.
func (s *SyncTree[V]) Contains(p geom.Point) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Contains(p)
}

// Delete removes the point p.
func (s *SyncTree[V]) Delete(p geom.Point) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t.Delete(p)
}

// Range calls visit for every stored point in the closed query
// rectangle while holding the read lock: visit must not call mutating
// methods of the same tree (it would deadlock) and should be quick.
func (s *SyncTree[V]) Range(query geom.Rect, visit Visit[V]) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Range(query, visit)
}

// CountRange returns the number of stored points in the closed query
// rectangle.
func (s *SyncTree[V]) CountRange(query geom.Rect) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.CountRange(query)
}

// Nearest returns the stored point closest to p.
func (s *SyncTree[V]) Nearest(p geom.Point) (geom.Point, V, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Nearest(p)
}

// KNearest returns the k stored points closest to p, nearest first.
func (s *SyncTree[V]) KNearest(p geom.Point, k int) []geom.Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.KNearest(p, k)
}

// Census snapshots the occupancy census under the read lock.
func (s *SyncTree[V]) Census() stats.Census {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Census()
}

// Encode writes a consistent snapshot of the tree to w.
func (s *SyncTree[V]) Encode(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.t.Encode(w)
}

// Unwrap returns the underlying tree for single-threaded phases (bulk
// analysis after the writers are done). The caller takes responsibility
// for synchronization from that point on.
func (s *SyncTree[V]) Unwrap() *Tree[V] { return s.t }
