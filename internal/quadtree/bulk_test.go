package quadtree

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// treeFingerprint captures the exact shape and contents of a tree for
// equality checks: every leaf block with its depth and sorted census,
// via the public walkers.
func treeFingerprint(t *Tree[int]) (blocks []struct {
	block geom.Rect
	depth int
	occ   int
}, points map[geom.Point]int) {
	t.WalkBlocks(func(b geom.Rect, depth, occ int) bool {
		blocks = append(blocks, struct {
			block geom.Rect
			depth int
			occ   int
		}{b, depth, occ})
		return true
	})
	points = map[geom.Point]int{}
	t.Walk(func(p geom.Point, v int) bool {
		points[p] = v
		return true
	})
	return blocks, points
}

// TestBulkLoadMatchesSequentialInsert is the core equivalence: loading a
// batch must leave the tree in exactly the state a loop of Inserts
// would, including shape, because the PR quadtree is canonical.
func TestBulkLoadMatchesSequentialInsert(t *testing.T) {
	rng := xrand.New(99)
	for _, n := range []int{0, 1, 7, 100, 3000} {
		cfg := Config{Capacity: 4}
		points := make([]geom.Point, n)
		values := make([]int, n)
		for i := range points {
			points[i] = geom.Pt(rng.Float64(), rng.Float64())
			values[i] = i
		}
		// Add duplicates: re-insert some earlier points with new values.
		if n >= 100 {
			for i := 0; i < 20; i++ {
				points = append(points, points[i*3])
				values = append(values, 100000+i)
			}
		}

		seq := MustNew[int](cfg)
		for i := range points {
			if _, err := seq.Insert(points[i], values[i]); err != nil {
				t.Fatal(err)
			}
		}
		bulk := MustNew[int](cfg)
		added, err := bulk.BulkLoad(points, values)
		if err != nil {
			t.Fatal(err)
		}
		if added != seq.Len() || bulk.Len() != seq.Len() {
			t.Fatalf("n=%d: bulk added %d / len %d, sequential len %d", n, added, bulk.Len(), seq.Len())
		}
		sb, sp := treeFingerprint(seq)
		bb, bp := treeFingerprint(bulk)
		if len(sb) != len(bb) {
			t.Fatalf("n=%d: %d leaf blocks sequentially, %d bulk", n, len(sb), len(bb))
		}
		for i := range sb {
			if sb[i] != bb[i] {
				t.Fatalf("n=%d: leaf %d differs: seq %+v bulk %+v", n, i, sb[i], bb[i])
			}
		}
		for p, v := range sp {
			if bp[p] != v {
				t.Fatalf("n=%d: point %v has value %d bulk, %d sequential", n, p, bp[p], v)
			}
		}
	}
}

// TestBulkLoadIntoPopulatedTree loads a second batch into a tree that
// already has points, overlapping some of them.
func TestBulkLoadIntoPopulatedTree(t *testing.T) {
	rng := xrand.New(5)
	cfg := Config{Capacity: 4}
	first := make([]geom.Point, 500)
	for i := range first {
		first[i] = geom.Pt(rng.Float64(), rng.Float64())
	}
	second := make([]geom.Point, 500)
	for i := range second {
		if i < 50 {
			second[i] = first[i] // overlap: replace, don't grow
		} else {
			second[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
	}
	vals := func(base int, n int) []int {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = base + i
		}
		return vs
	}

	seq := MustNew[int](cfg)
	incr := MustNew[int](cfg)
	for i, p := range first {
		if _, err := seq.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := incr.BulkLoad(first, vals(0, len(first))); err != nil {
		t.Fatal(err)
	}
	for i, p := range second {
		if _, err := seq.Insert(p, 1000+i); err != nil {
			t.Fatal(err)
		}
	}
	added, err := incr.BulkLoad(second, vals(1000, len(second)))
	if err != nil {
		t.Fatal(err)
	}
	if added != 450 {
		t.Fatalf("second batch added %d new points, want 450", added)
	}
	sb, sp := treeFingerprint(seq)
	bb, bp := treeFingerprint(incr)
	if len(sb) != len(bb) {
		t.Fatalf("%d leaf blocks sequentially, %d bulk", len(sb), len(bb))
	}
	for i := range sb {
		if sb[i] != bb[i] {
			t.Fatalf("leaf %d differs: seq %+v bulk %+v", i, sb[i], bb[i])
		}
	}
	for p, v := range sp {
		if bp[p] != v {
			t.Fatalf("point %v: bulk value %d, sequential %d", p, bp[p], v)
		}
	}
}

// TestBulkLoadRejectsOutOfRegion checks validation happens before any
// mutation: a batch with one bad point must leave the tree untouched.
func TestBulkLoadRejectsOutOfRegion(t *testing.T) {
	tr := MustNew[int](Config{Capacity: 2})
	if _, err := tr.Insert(geom.Pt(0.5, 0.5), 1); err != nil {
		t.Fatal(err)
	}
	_, err := tr.BulkLoad(
		[]geom.Point{{X: 0.1, Y: 0.1}, {X: 5, Y: 5}},
		[]int{2, 3},
	)
	if err == nil {
		t.Fatal("out-of-region point accepted")
	}
	if tr.Len() != 1 || tr.Contains(geom.Pt(0.1, 0.1)) {
		t.Fatal("failed bulk load mutated the tree")
	}
	if _, err := tr.BulkLoad([]geom.Point{{X: 0.1, Y: 0.1}}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestFreeListRecycling drives splits and merges through a churn
// workload and checks invariants hold with the free list active.
func TestFreeListRecycling(t *testing.T) {
	rng := xrand.New(17)
	tr := MustNew[int](Config{Capacity: 2})
	live := make([]geom.Point, 0, 200)
	for i := 0; i < 200; i++ {
		p := geom.Pt(rng.Float64(), rng.Float64())
		if _, err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	for round := 0; round < 5; round++ {
		// Delete half (forcing merges), reinsert fresh (forcing splits).
		for i := 0; i < 100; i++ {
			if !tr.Delete(live[i]) {
				t.Fatalf("round %d: lost point %v", round, live[i])
			}
		}
		for i := 0; i < 100; i++ {
			live[i] = geom.Pt(rng.Float64(), rng.Float64())
			if _, err := tr.Insert(live[i], i); err != nil {
				t.Fatal(err)
			}
		}
		checkInvariants(t, tr)
		for _, p := range live {
			if !tr.Contains(p) {
				t.Fatalf("round %d: point %v missing after churn", round, p)
			}
		}
	}
	if len(tr.free) == 0 {
		t.Error("churn produced no recycled child blocks; free list inert")
	}
}
