// Package pm implements the PM3 quadtree of Samet and Webber [Same85b]:
// a hierarchical structure for polygonal subdivisions (collections of
// edges). Unlike the PMR quadtree's occupancy threshold, PM quadtrees
// split on a *vertex* rule — PM3's is "split until no block contains
// more than one vertex" — so edges meeting at a shared vertex, however
// many, stay together in one block. Edges are stored in every leaf
// block they cross.
//
// The PM3 member was chosen because its splitting rule is the direct
// vertex analogue of the simple PR quadtree's point rule, making it the
// natural bridge between the paper's point analysis and its line-data
// extension.
package pm

import (
	"errors"
	"fmt"

	"popana/internal/geom"
	"popana/internal/stats"
)

// DefaultMaxDepth bounds decomposition when Config.MaxDepth is zero.
// Two distinct vertices closer than 2^-24 of the region cannot be
// separated; such blocks keep both (the same truncation the other trees
// apply).
const DefaultMaxDepth = 24

// ErrOutsideRegion is returned when an edge does not intersect the
// region.
var ErrOutsideRegion = errors.New("pm: edge outside region")

// Config configures a tree.
type Config struct {
	// Region is the universe; the zero rectangle selects geom.UnitSquare.
	Region geom.Rect
	// MaxDepth truncates decomposition; zero selects DefaultMaxDepth.
	MaxDepth int
}

func (c Config) withDefaults() (Config, error) {
	if c.Region == (geom.Rect{}) {
		c.Region = geom.UnitSquare
	}
	if c.Region.Empty() {
		return c, fmt.Errorf("pm: empty region %v", c.Region)
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = DefaultMaxDepth
	}
	if c.MaxDepth < 1 {
		return c, fmt.Errorf("pm: max depth %d < 1", c.MaxDepth)
	}
	return c, nil
}

type edgeRef struct {
	id  int
	seg geom.Segment
}

type node struct {
	children *[4]*node
	edges    []edgeRef
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is a PM3 quadtree over a rectangle.
type Tree struct {
	cfg    Config
	root   *node
	size   int
	nextID int
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	c, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{cfg: c, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(cfg Config) *Tree {
	t, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Len returns the number of distinct edges stored.
func (t *Tree) Len() int { return t.size }

// Region returns the universe rectangle.
func (t *Tree) Region() geom.Rect { return t.cfg.Region }

// crosses reports whether seg occupies block with positive length.
func crosses(seg geom.Segment, block geom.Rect) bool {
	clipped, ok := seg.ClipToRect(block)
	return ok && clipped.Length() > 1e-12
}

// vertexCount returns the number of distinct edge endpoints lying
// strictly inside (half-open) block among the given edges.
func vertexCount(edges []edgeRef, block geom.Rect) int {
	seen := map[geom.Point]bool{}
	for _, e := range edges {
		for _, p := range [2]geom.Point{e.seg.A, e.seg.B} {
			if block.Contains(p) {
				seen[p] = true
			}
		}
	}
	return len(seen)
}

// Insert stores the edge, splitting blocks recursively until no block
// holds more than one distinct vertex (PM3 rule), subject to the depth
// truncation. Degenerate (zero-length) edges are rejected.
func (t *Tree) Insert(seg geom.Segment) error {
	if seg.Length() <= 1e-12 {
		return fmt.Errorf("pm: degenerate edge %v", seg)
	}
	if !crosses(seg, t.cfg.Region) {
		return fmt.Errorf("%w: %v vs %v", ErrOutsideRegion, seg, t.cfg.Region)
	}
	ref := edgeRef{id: t.nextID, seg: seg}
	t.nextID++
	t.size++
	t.insert(t.root, t.cfg.Region, 0, ref)
	return nil
}

func (t *Tree) insert(n *node, block geom.Rect, depth int, ref edgeRef) {
	if !n.leaf() {
		for q := 0; q < 4; q++ {
			child := block.Quadrant(q)
			if crosses(ref.seg, child) {
				t.insert(n.children[q], child, depth+1, ref)
			}
		}
		return
	}
	n.edges = append(n.edges, ref)
	t.enforce(n, block, depth)
}

// enforce recursively splits leaf n while it violates the PM3 vertex
// rule and the depth cap permits.
func (t *Tree) enforce(n *node, block geom.Rect, depth int) {
	if vertexCount(n.edges, block) <= 1 || depth >= t.cfg.MaxDepth {
		return
	}
	var ch [4]*node
	for q := range ch {
		ch[q] = &node{}
	}
	for _, e := range n.edges {
		for q := 0; q < 4; q++ {
			if crosses(e.seg, block.Quadrant(q)) {
				ch[q].edges = append(ch[q].edges, e)
			}
		}
	}
	n.edges = nil
	n.children = &ch
	for q := 0; q < 4; q++ {
		t.enforce(ch[q], block.Quadrant(q), depth+1)
	}
}

// Stab returns the edges stored in the leaf block containing p.
func (t *Tree) Stab(p geom.Point) []geom.Segment {
	if !t.cfg.Region.Contains(p) {
		return nil
	}
	n, block := t.root, t.cfg.Region
	for !n.leaf() {
		q := block.QuadrantOf(p)
		block = block.Quadrant(q)
		n = n.children[q]
	}
	out := make([]geom.Segment, len(n.edges))
	for i, e := range n.edges {
		out[i] = e.seg
	}
	return out
}

// RangeEdges returns the distinct edges crossing the query rectangle.
func (t *Tree) RangeEdges(query geom.Rect) []geom.Segment {
	seen := map[int]geom.Segment{}
	t.rangeEdges(t.root, t.cfg.Region, query, seen)
	out := make([]geom.Segment, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	return out
}

func (t *Tree) rangeEdges(n *node, block, query geom.Rect, seen map[int]geom.Segment) {
	if n.leaf() {
		for _, e := range n.edges {
			if _, ok := seen[e.id]; ok {
				continue
			}
			if crosses(e.seg, query) {
				seen[e.id] = e.seg
			}
		}
		return
	}
	for q := 0; q < 4; q++ {
		child := block.Quadrant(q)
		if child.Intersects(query) {
			t.rangeEdges(n.children[q], child, query, seen)
		}
	}
}

// CheckVertexRule walks the tree verifying the PM3 invariant: every
// leaf above the depth cap holds at most one distinct vertex.
func (t *Tree) CheckVertexRule() error {
	return t.check(t.root, t.cfg.Region, 0)
}

func (t *Tree) check(n *node, block geom.Rect, depth int) error {
	if n.leaf() {
		if depth < t.cfg.MaxDepth {
			if v := vertexCount(n.edges, block); v > 1 {
				return fmt.Errorf("pm: leaf %v at depth %d holds %d vertices", block, depth, v)
			}
		}
		return nil
	}
	for q := 0; q < 4; q++ {
		if err := t.check(n.children[q], block.Quadrant(q), depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Census returns the edge-tenancy census of the leaves (occupancy =
// edges stored per block), comparable with the PMR census.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := t.cfg.Region.Area()
	t.census(t.root, t.cfg.Region, 0, total, &b)
	return b.Census()
}

func (t *Tree) census(n *node, block geom.Rect, depth int, total float64, b *stats.CensusBuilder) {
	if n.leaf() {
		b.AddLeaf(depth, len(n.edges), block.Area()/total)
		return
	}
	b.AddInternal(depth)
	for q := 0; q < 4; q++ {
		t.census(n.children[q], block.Quadrant(q), depth+1, total, b)
	}
}
