package pm

import (
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestInsertAndVertexRule(t *testing.T) {
	tr := MustNew(Config{})
	// A star of edges sharing one vertex in generic position (not on
	// any split line): PM3 keeps the hub's incident edges together —
	// splits isolate the outer endpoints, and the block containing the
	// hub holds every spoke.
	hub := geom.Pt(0.53, 0.51)
	spokes := []geom.Segment{
		geom.Seg(hub, geom.Pt(0.91, 0.57)),
		geom.Seg(hub, geom.Pt(0.47, 0.93)),
		geom.Seg(hub, geom.Pt(0.11, 0.43)),
		geom.Seg(hub, geom.Pt(0.59, 0.09)),
	}
	for _, s := range spokes {
		if err := tr.Insert(s); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
	// The hub's block holds all four spokes.
	got := tr.Stab(hub)
	if len(got) != 4 {
		t.Fatalf("hub stab returned %d edges", len(got))
	}
}

func TestTwoVerticesForceSplit(t *testing.T) {
	tr := MustNew(Config{})
	if err := tr.Insert(geom.Seg(geom.Pt(0.2, 0.2), geom.Pt(0.3, 0.3))); err != nil {
		t.Fatal(err)
	}
	// One edge has two endpoints in the root: must have split until
	// they are separated.
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
	if tr.Census().Height == 0 {
		t.Fatal("two-vertex edge did not split the root")
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{MaxDepth: -1}); err == nil {
		t.Error("negative max depth accepted")
	}
	if _, err := New(Config{Region: geom.R(1, 1, 1, 2)}); err == nil {
		t.Error("empty region accepted")
	}
	tr := MustNew(Config{})
	if err := tr.Insert(geom.Seg(geom.Pt(0.5, 0.5), geom.Pt(0.5, 0.5))); err == nil {
		t.Error("degenerate edge accepted")
	}
	if err := tr.Insert(geom.Seg(geom.Pt(2, 2), geom.Pt(3, 3))); err == nil {
		t.Error("outside edge accepted")
	}
}

func TestRandomSubdivision(t *testing.T) {
	tr := MustNew(Config{})
	rng := xrand.New(5)
	src := dist.NewShortSegments(tr.Region(), 0.1, rng)
	for tr.Len() < 300 {
		if err := tr.Insert(src.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
	c := tr.Census()
	if c.Leaves == 0 || c.Items < 300 {
		t.Fatalf("census %+v", c)
	}
}

func TestPolygonStaysQueryable(t *testing.T) {
	// A closed polygon: consecutive edges share vertices, so the PM3
	// rule never separates a vertex from its incident edges.
	tr := MustNew(Config{})
	poly := []geom.Point{
		geom.Pt(0.2, 0.2), geom.Pt(0.8, 0.25), geom.Pt(0.7, 0.7), geom.Pt(0.3, 0.75),
	}
	for i := range poly {
		if err := tr.Insert(geom.Seg(poly[i], poly[(i+1)%len(poly)])); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
	// Every vertex's block contains its two incident edges.
	for i, v := range poly {
		segs := tr.Stab(geom.Pt(v.X+1e-6, v.Y+1e-6))
		if len(segs) < 2 {
			t.Errorf("vertex %d block holds %d edges, want >= 2", i, len(segs))
		}
	}
	// Range query over the whole region returns all 4 distinct edges.
	if got := tr.RangeEdges(geom.UnitSquare); len(got) != 4 {
		t.Fatalf("range returned %d edges", len(got))
	}
	// A window over one side only.
	if got := tr.RangeEdges(geom.R(0.0, 0.0, 0.25, 0.25)); len(got) == 0 {
		t.Fatal("corner window empty")
	}
}

func TestStabOutsideRegion(t *testing.T) {
	tr := MustNew(Config{})
	if tr.Stab(geom.Pt(2, 2)) != nil {
		t.Fatal("stab outside region returned edges")
	}
}

func TestMaxDepthTruncation(t *testing.T) {
	tr := MustNew(Config{MaxDepth: 3})
	// Two vertices too close to separate within 3 levels.
	if err := tr.Insert(geom.Seg(geom.Pt(0.01, 0.01), geom.Pt(0.011, 0.011))); err != nil {
		t.Fatal(err)
	}
	if h := tr.Census().Height; h > 3 {
		t.Fatalf("height %d > 3", h)
	}
	// CheckVertexRule tolerates the depth-cap truncation.
	if err := tr.CheckVertexRule(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicShape(t *testing.T) {
	build := func() (int, int) {
		tr := MustNew(Config{})
		rng := xrand.New(42)
		src := dist.NewShortSegments(tr.Region(), 0.08, rng)
		for tr.Len() < 150 {
			if err := tr.Insert(src.Next()); err != nil {
				t.Fatal(err)
			}
		}
		c := tr.Census()
		return c.Leaves, c.Items
	}
	l1, i1 := build()
	l2, i2 := build()
	if l1 != l2 || i1 != i2 {
		t.Fatal("same edges, different shapes")
	}
}
