// Package fmath holds the approved floating-point comparison helpers
// for the numeric packages (core, solver, vecmat, statmodel).
//
// Naked ==/!= between float64 values is banned in those packages by the
// popvet floatcmp analyzer (cmd/popvet): a careless exact comparison in
// a convergence check is exactly the kind of silent fragility that makes
// analytical predictions drift from simulation. Routing every comparison
// through a named helper makes the intent machine-checkable: Zero and Eq
// say "this exactness is deliberate" (division guards, sentinel
// defaults, detecting an exactly-degenerate input), while Near and
// NearZero say "this is a tolerance test" and force the caller to state
// the tolerance.
package fmath

import "math"

// Zero reports whether x is exactly zero (either sign). Use it for
// division guards, unset-option sentinels, and exact singularity
// detection — places where the bit pattern, not a neighborhood, is the
// question.
func Zero(x float64) bool { return x == 0 }

// Eq reports whether a and b are exactly equal. NaN compares unequal to
// everything, including itself, exactly as with ==. Use it only where
// bit-for-bit reproducibility is the contract (e.g. comparing a cached
// value against its recomputation).
func Eq(a, b float64) bool { return a == b }

// Near reports whether a and b differ by at most tol in absolute value.
// It is false when either value is NaN.
func Near(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// NearZero reports whether |x| <= tol. It is false when x is NaN.
func NearZero(x, tol float64) bool { return math.Abs(x) <= tol }
