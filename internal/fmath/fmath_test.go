package fmath

import (
	"math"
	"testing"
)

func TestZero(t *testing.T) {
	if !Zero(0) || !Zero(math.Copysign(0, -1)) {
		t.Error("Zero must accept both signed zeros")
	}
	for _, x := range []float64{1e-300, -1e-300, 1, math.NaN(), math.Inf(1)} {
		if Zero(x) {
			t.Errorf("Zero(%g) = true", x)
		}
	}
}

func TestEq(t *testing.T) {
	if !Eq(1.5, 1.5) {
		t.Error("Eq(1.5, 1.5) = false")
	}
	a, b := 1.5, 1e-16
	if Eq(a, a+b) != (a == a+b) {
		t.Error("Eq disagrees with ==")
	}
	if Eq(math.NaN(), math.NaN()) {
		t.Error("Eq(NaN, NaN) must be false, matching ==")
	}
}

func TestNear(t *testing.T) {
	if !Near(1, 1+1e-10, 1e-9) {
		t.Error("Near failed inside tolerance")
	}
	if Near(1, 1.1, 1e-9) {
		t.Error("Near passed outside tolerance")
	}
	if Near(math.NaN(), 0, 1) || Near(0, math.NaN(), 1) {
		t.Error("Near with NaN must be false")
	}
	if !NearZero(-1e-12, 1e-9) || NearZero(1e-6, 1e-9) || NearZero(math.NaN(), 1) {
		t.Error("NearZero tolerance handling wrong")
	}
}
