// Package linearquad is the read-optimized linear form of a PR
// quadtree: a pointerless, immutable snapshot in which every leaf block
// is a Morton (Z-order) locational code plus an offset into one flat
// entry array, sorted in code order.
//
// The paper's population model says that at steady state almost all of
// a PR quadtree's information lives in its leaves — the internal nodes
// a pointer traversal chases are pure read-path overhead — and the
// partial-match and split-tree analyses (Curien–Joseph, Flajolet et
// al., Broutin–Holmgren; see PAPERS.md) measure query cost in blocks
// visited. The linear form takes both seriously: Freeze walks the tree
// once and keeps only the leaf level, and queries touch O(matching
// leaves) contiguous memory with zero pointer dereferences. Range
// queries decompose the implicit grid over the sorted code array:
// quadrants outside the query rectangle are skipped with one binary
// search regardless of how many leaves they hold, and quadrants inside
// it are contiguous runs of entries swept with no per-point geometry —
// counting such a run is O(log leaves). Budgeted queries instead walk
// the query's Z-interval leaf by leaf with BIGMIN jumps (Tropf–Herzog)
// so each examined leaf counts against the node budget exactly like a
// node visit in the live tree.
//
// Entries are stored structure-of-arrays — the x plane, the y plane,
// and the value plane as three parallel slices — so the boundary-leaf
// filters of a range scan stream one coordinate plane at cache-line
// density instead of striding through interleaved points.
//
// A Frozen is a snapshot: it never observes later mutations of the
// source tree, and it is safe for concurrent use by any number of
// goroutines with no locking whatsoever. Result sets are identical to
// the live tree's Range/Get at freeze time — the same closed-rectangle
// float comparisons decide matches; the grid only prunes.
package linearquad

import (
	"errors"
	"fmt"
	"math"

	"popana/internal/geom"
	"popana/internal/quadtree"
)

// MaxDepth is the deepest tree Freeze can encode: two bits per level
// must fit a uint64 alongside a one-past-the-end sentinel, so 31 levels
// (a 2^31-cell grid side, finer than float64 geometry is meaningful
// for). Trees deeper than this — possible only under adversarial
// clustering near DefaultMaxDepth — cannot be frozen; callers keep
// serving from the live tree.
//
// The bound applies per frozen tree, not per universe: a spatialdb
// table sharded at level k freezes each shard's subtree independently,
// so the deepest freezable point concentration sits k levels lower in
// the global decomposition than it would under a single table-wide
// snapshot.
const MaxDepth = 31

// ErrTooDeep is returned by Freeze when the tree's height exceeds
// MaxDepth.
var ErrTooDeep = errors.New("linearquad: tree too deep to freeze")

// Frozen is an immutable linear-quadtree snapshot of a quadtree.Tree.
// The zero value is not useful; build with Freeze.
type Frozen[V any] struct {
	region geom.Rect
	depth  int // grid depth D: the source tree's height at freeze time

	// csX, csY are the precomputed coordinate-to-cell mappings for the
	// two axes (the cellCoord fast path when the region extents allow
	// it).
	csX, csY cellScale

	// codes[i] is leaf i's locational code normalized to depth D (the
	// Morton code of its minimum-corner grid cell); codes[len-1] is the
	// 4^D sentinel. Leaves tile the region, so leaf i covers the cell
	// interval [codes[i], codes[i+1]).
	codes []uint64
	// starts[i] is leaf i's offset into the entry planes; starts[len-1]
	// is the entry count.
	starts []int32

	// The flat entry planes, grouped by leaf in code order,
	// structure-of-arrays: entry k is the point (xs[k], ys[k]) carrying
	// vals[k].
	xs, ys []float64
	vals   []V

	// dir is the leaf directory: dir[c] is the index of the first leaf
	// whose code is >= c << dirShift, over the 4^min(dirLevel, depth)
	// cells of a coarse fixed-level grid, with one final entry holding
	// the sentinel leaf index. It turns every seek into one table load
	// plus a search over the handful of leaves inside one directory
	// cell — and into no search at all for targets aligned to the
	// directory grid, which is every quadrant boundary at or above
	// dirLevel.
	dir      []int32
	dirShift uint
}

// dirMaxLevel caps the leaf directory's grid level: 4^8 cells (256 KiB
// of int32) bounds the table for adversarially leafy snapshots; the
// level is otherwise chosen so a directory cell holds a handful of
// leaves (see buildDir).
const dirMaxLevel = 8

// FreezeScratch carries the reusable state of repeated freezes: the
// leaf iterator and donated plane storage. The zero value is valid.
// A scratch must not be shared between concurrent FreezeInto calls.
type FreezeScratch[V any] struct {
	it     *quadtree.LeafIter[V]
	codes  []uint64
	starts []int32
	xs, ys []float64
	vals   []V
	dir    []int32
}

// Recycle donates a retired snapshot's plane storage to the scratch so
// the next FreezeInto reuses it instead of allocating. The caller must
// own f exclusively: no goroutine may still be reading it (a snapshot
// published to concurrent readers can never be recycled). f is
// unusable afterwards — its value plane is cleared so recycled storage
// does not pin the caller's values against the garbage collector.
func (s *FreezeScratch[V]) Recycle(f *Frozen[V]) {
	s.codes = f.codes[:0]
	s.starts = f.starts[:0]
	s.xs, s.ys = f.xs[:0], f.ys[:0]
	clear(f.vals)
	s.vals = f.vals[:0]
	s.dir = f.dir[:0]
	f.codes, f.starts, f.xs, f.ys, f.vals, f.dir = nil, nil, nil, nil, nil, nil
}

// reuse returns s with length 0 and capacity at least n, reusing the
// backing array when it is big enough.
func reuse[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:0]
	}
	return make([]T, 0, n)
}

// Freeze builds the linear snapshot of t in one leaf walk (plus a
// sizing pass), emitting leaves in Z-order so no sort is needed. It
// returns ErrTooDeep if the tree's height exceeds MaxDepth.
func Freeze[V any](t *quadtree.Tree[V]) (*Frozen[V], error) {
	return FreezeInto(t, &FreezeScratch[V]{})
}

// FreezeInto is Freeze with scratch reuse: the iterator persists across
// calls and plane storage donated via Recycle is reused when large
// enough, so a steady-state rebuild cycle allocates only the Frozen
// header. The snapshot it returns owns whatever storage it was built
// in; the scratch forgets donated planes once they are handed out.
func FreezeInto[V any](t *quadtree.Tree[V], s *FreezeScratch[V]) (*Frozen[V], error) {
	if s.it == nil {
		s.it = quadtree.NewLeafIter(t)
	}
	it := s.it
	it.Reset(t)
	leaves, entries, height := 0, 0, 0
	for it.Next() {
		leaves++
		entries += it.Len()
		if d := it.Depth(); d > height {
			height = d
		}
	}
	if height > MaxDepth {
		return nil, fmt.Errorf("%w: height %d > %d", ErrTooDeep, height, MaxDepth)
	}
	f := &Frozen[V]{
		region: t.Region(),
		depth:  height,
		codes:  reuse(s.codes, leaves+1),
		starts: reuse(s.starts, leaves+1),
		xs:     reuse(s.xs, entries),
		ys:     reuse(s.ys, entries),
		vals:   reuse(s.vals, entries),
	}
	s.codes, s.starts, s.xs, s.ys, s.vals = nil, nil, nil, nil, nil
	it.Reset(t)
	for it.Next() {
		f.codes = append(f.codes, it.Path()<<(2*uint(height-it.Depth())))
		f.starts = append(f.starts, int32(len(f.xs)))
		f.xs, f.ys, f.vals = it.AppendPlanes(f.xs, f.ys, f.vals)
	}
	f.codes = append(f.codes, 1<<(2*uint(height)))
	f.starts = append(f.starts, int32(len(f.xs)))
	f.csX = makeCellScale(f.region.MinX, f.region.MaxX, height)
	f.csY = makeCellScale(f.region.MinY, f.region.MaxY, height)
	f.buildDir(s.dir)
	s.dir = nil
	return f, nil
}

// buildDir fills the leaf directory from the finished code plane in one
// merged pass over the directory cells and the leaves, reusing scratch
// storage when it is large enough. The level is the shallowest at which
// a directory cell averages at most four leaves — deep enough that a
// seek's binary phase is two or three probes, shallow enough that the
// table stays a small fraction of the code plane it indexes.
func (f *Frozen[V]) buildDir(scratch []int32) {
	l := 0
	for l < dirMaxLevel && 1<<uint(2*l) < len(f.codes)/8 {
		l++
	}
	if l > f.depth {
		l = f.depth
	}
	f.dirShift = uint(2 * (f.depth - l))
	cells := 1 << uint(2*l)
	dir := reuse(scratch, cells+1)
	j := 0
	for c := 0; c < cells; c++ {
		target := uint64(c) << f.dirShift
		for f.codes[j] < target {
			j++
		}
		dir = append(dir, int32(j))
	}
	dir = append(dir, int32(len(f.codes)-1))
	f.dir = dir
}

// Len returns the number of stored points.
//
//popvet:noalloc
func (f *Frozen[V]) Len() int { return len(f.xs) }

// Leaves returns the number of leaf blocks (including empty ones).
func (f *Frozen[V]) Leaves() int { return len(f.codes) - 1 }

// Depth returns the grid depth: the source tree's height at freeze
// time.
func (f *Frozen[V]) Depth() int { return f.depth }

// AvgOccupancy returns records per leaf block — the paper's occupancy
// statistic, identical to stats.Census.AverageOccupancy on the live
// tree the snapshot was frozen from — or NaN for a snapshot with no
// leaves. It lets monitoring reads serve the measured occupancy from
// the snapshot without a Census walk of the pointer tree.
func (f *Frozen[V]) AvgOccupancy() float64 {
	if f.Leaves() == 0 {
		return math.NaN()
	}
	return float64(f.Len()) / float64(f.Leaves())
}

// Region returns the snapshot's universe rectangle.
func (f *Frozen[V]) Region() geom.Rect { return f.region }

// leafOf returns the index of the leaf whose cell interval contains
// code z: the largest i with codes[i] <= z. The directory narrows the
// search to the leaves inside one directory cell, so the binary phase
// is two or three probes on a typical snapshot instead of log(leaves).
// Requires 0 <= z < 4^depth.
//
//popvet:noalloc
func (f *Frozen[V]) leafOf(z uint64) int {
	c := z >> f.dirShift
	lo := int(f.dir[c])
	if f.codes[lo] > z {
		// The cell's first leaf starts past z: z is inside a leaf that
		// spans across the cell boundary, necessarily the one before.
		return lo - 1
	}
	hi := int(f.dir[c+1]) // codes[hi] >= (c+1)<<shift > z
	for hi-lo > 1 {       // invariant: codes[lo] <= z < codes[hi]
		mid := int(uint(lo+hi) >> 1)
		if f.codes[mid] <= z {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// dirAt returns the index of the first leaf whose code is >= target,
// valid only for targets aligned to the directory grid (every quadrant
// boundary at or above the directory level): one table load, no
// search. The scan loops hoist the alignment decision out of their
// child loops; everything finer goes through seekFrom.
//
//popvet:noalloc
func (f *Frozen[V]) dirAt(target uint64) int { return int(f.dir[target>>f.dirShift]) }

// seekFrom returns the index of the first leaf at or after i whose
// code is >= target. Scan cursors seek past a handful of skipped
// leaves at a time, so the fast path gallops from the cursor — the
// probes stay on the cache lines the scan is already touching. A far
// target (past 64 leaves) switches to the directory, which jumps
// straight into the right cell; inside a dense cell the window can
// still be wide, but far seeks are rare. Requires target <= the
// 4^depth sentinel.
//
//popvet:noalloc
func (f *Frozen[V]) seekFrom(i int, target uint64) int {
	codes := f.codes
	lo := i
	if codes[lo] >= target {
		return lo
	}
	last := len(codes) - 1
	for step := 1; step <= 64; step <<= 1 {
		hi := lo + step
		if hi > last {
			hi = last
		}
		if codes[hi] >= target {
			for hi-lo > 1 { // invariant: codes[lo] < target <= codes[hi]
				mid := int(uint(lo+hi) >> 1)
				if codes[mid] < target {
					lo = mid
				} else {
					hi = mid
				}
			}
			return hi
		}
		lo = hi
	}
	c := target >> f.dirShift
	if d := int(f.dir[c]); d > lo {
		// Every leaf before d has a code below c<<shift <= target, so d
		// is the global first candidate; codes[lo] < target puts it at
		// or after lo.
		if codes[d] >= target {
			return d
		}
		lo = d
	}
	hi := int(f.dir[c+1]) // in range: codes[lo] < target < (c+1)<<shift <= 4^depth
	for hi-lo > 1 {       // invariant: codes[lo] < target <= codes[hi]
		mid := int(uint(lo+hi) >> 1)
		if codes[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// Get returns the value stored at p, if any: one cell mapping, one
// binary search, one bounded leaf scan, zero allocations.
//
//popvet:noalloc
func (f *Frozen[V]) Get(p geom.Point) (V, bool) {
	var zero V
	if !f.region.Contains(p) {
		return zero, false
	}
	i := f.leafOf(Interleave(f.csX.coord(p.X), f.csY.coord(p.Y)))
	for k := f.starts[i]; k < f.starts[i+1]; k++ {
		if f.xs[k] == p.X && f.ys[k] == p.Y {
			return f.vals[k], true
		}
	}
	return zero, false
}

// Contains reports whether point p is stored in the snapshot.
//
//popvet:noalloc
func (f *Frozen[V]) Contains(p geom.Point) bool {
	_, ok := f.Get(p)
	return ok
}

// GetInto is Get writing the stored value directly into *dst, which is
// left untouched when p is absent. It saves one value copy per hit —
// the difference matters to the batch sweeps, which resolve thousands
// of probes back to back into caller-owned output slots.
//
//popvet:noalloc
func (f *Frozen[V]) GetInto(p geom.Point, dst *V) bool {
	if !f.region.Contains(p) {
		return false
	}
	i := f.leafOf(Interleave(f.csX.coord(p.X), f.csY.coord(p.Y)))
	for k := f.starts[i]; k < f.starts[i+1]; k++ {
		if f.xs[k] == p.X && f.ys[k] == p.Y {
			*dst = f.vals[k]
			return true
		}
	}
	return false
}

// Range calls visit for every stored point inside the closed query
// rectangle, in Z-order of leaf blocks, and reports whether the scan
// ran to completion (visit never returned false). Results are
// identical to quadtree.Tree.Range on the frozen tree.
func (f *Frozen[V]) Range(query geom.Rect, visit quadtree.Visit[V]) bool {
	_, done := f.rangeScan(query, 0, visit)
	return done
}

// RangeBudgeted is Range with the node-budget instrumentation of
// quadtree.Tree.RangeBudgeted. With maxNodes > 0 the scan walks the
// query's Z-interval leaf by leaf: every leaf whose code interval it
// examines counts toward NodesVisited (the linear form has no internal
// nodes — examining a leaf's interval is its analogue of descending
// into a node), leaves whose block overlaps the query additionally
// count toward LeavesVisited and have their entries scanned, and
// exhausting the budget sets Truncated and returns the partial result.
// maxNodes <= 0 means unlimited and uses the faster recursive scan, in
// which NodesVisited and LeavesVisited both count only the leaves that
// overlap the query. A nil visit counts without delivering.
func (f *Frozen[V]) RangeBudgeted(query geom.Rect, maxNodes int, visit quadtree.Visit[V]) quadtree.RangeStats {
	st, _ := f.rangeScan(query, maxNodes, visit)
	return st
}

// CountRange returns the number of stored points inside the closed
// query rectangle, allocation-free. It is the pure counting kernel: no
// visitor dispatch and no traversal statistics, just the grid
// decomposition with per-axis filters on the boundary leaves.
//
//popvet:noalloc
func (f *Frozen[V]) CountRange(query geom.Rect) int {
	var s countState[V]
	if !f.prepare(query, &s.scanRect) {
		return 0
	}
	s.f = f
	side := int64(1) << uint(f.depth)
	switch {
	case s.fx0 == 0 && s.fy0 == 0 && s.fx1 == side-1 && s.fy1 == side-1:
		// The query covers the whole region: every entry matches.
		return f.Len()
	case len(f.codes) == 2:
		// The tree never split: the root is the only leaf.
		s.countRun(0, 0, side, 1)
	default:
		s.scan(0, f.depth, 0, 0)
	}
	return s.n
}

// CountRangeBudgeted counts matches under a node-visit budget,
// mirroring quadtree.Tree.CountRangeBudgeted: the count is
// RangeStats.Matched and Truncated reports a budget stop.
//
//popvet:noalloc
func (f *Frozen[V]) CountRangeBudgeted(query geom.Rect, maxNodes int) quadtree.RangeStats {
	st, _ := f.rangeScan(query, maxNodes, nil)
	return st
}

// scanRect is the shared geometry of one range scan: the query, its
// grid-cell rectangle, and the full-containment rectangle.
type scanRect struct {
	query              geom.Rect
	x0, y0, x1, y1     int64 // the query's cell rectangle, inclusive
	fx0, fy0, fx1, fy1 int64 // cells guaranteed inside the closed query
}

// prepare clips the query against the region and fills r; it reports
// false when the query cannot match anything.
//
//popvet:noalloc
func (f *Frozen[V]) prepare(query geom.Rect, r *scanRect) bool {
	// Clip: a query strictly outside the region matches nothing.
	if query.MinX > f.region.MaxX || query.MaxX < f.region.MinX ||
		query.MinY > f.region.MaxY || query.MaxY < f.region.MinY {
		return false
	}
	r.query = query
	// The query's grid rectangle, inclusive on both ends: every point
	// the closed query can contain lives in a cell within it, because
	// the cell mapping is monotone and agrees with the tree's float
	// midpoint geometry exactly.
	r.x0 = int64(f.csX.coord(query.MinX))
	r.y0 = int64(f.csY.coord(query.MinY))
	r.x1 = int64(f.csX.coord(query.MaxX))
	r.y1 = int64(f.csY.coord(query.MaxY))
	// The full-containment rectangle: a cell column strictly inside
	// (x0, x1) holds only points within the closed query bounds, by
	// monotonicity of the cell mapping; the boundary columns x0 and x1
	// are included only when the query edge extends to (or past) the
	// region edge, where no point can fall outside it.
	r.fx0, r.fy0, r.fx1, r.fy1 = r.x0, r.y0, r.x1, r.y1
	if query.MinX > f.region.MinX {
		r.fx0++
	}
	if query.MinY > f.region.MinY {
		r.fy0++
	}
	if query.MaxX < f.region.MaxX {
		r.fx1--
	}
	if query.MaxY < f.region.MaxY {
		r.fy1--
	}
	return true
}

// rangeScan is the shared scan behind Range, RangeBudgeted, and
// CountRangeBudgeted. done reports that neither the budget nor the
// visitor stopped the scan.
//
// The unbudgeted path decomposes the implicit grid recursively over the
// code array: a quadrant disjoint from the query's cell rectangle is
// skipped with one galloped binary search no matter how many leaves it
// holds, and a quadrant strictly interior to it is one contiguous run
// of entries swept with no per-leaf or per-point geometry at all. Only
// quadrants crossing the query boundary descend to individual leaves
// and closed-rectangle float tests. The budgeted path instead walks the
// query's Z-interval leaf by leaf with BIGMIN jumps (Tropf–Herzog), so
// NodesVisited counts each examined leaf interval and the budget cuts
// off exactly like the live tree's node budget.
//
//popvet:noalloc
func (f *Frozen[V]) rangeScan(query geom.Rect, maxNodes int, visit quadtree.Visit[V]) (st quadtree.RangeStats, done bool) {
	var r scanRect
	if !f.prepare(query, &r) {
		return st, true
	}
	if maxNodes > 0 {
		return f.scanBudgeted(query, maxNodes, visit, uint32(r.x0), uint32(r.y0), uint32(r.x1), uint32(r.y1))
	}
	s := scanState[V]{f: f, visit: visit, scanRect: r}
	side := int64(1) << uint(f.depth)
	switch {
	case s.fx0 == 0 && s.fy0 == 0 && s.fx1 == side-1 && s.fy1 == side-1:
		// The query covers the whole region: one flat sweep.
		done = s.bulk(uint64(1) << (2 * uint(f.depth)))
	case len(f.codes) == 2:
		// The tree never split: the root is the only leaf.
		done = s.leafScan()
	default:
		done = s.scan(0, f.depth, 0, 0)
	}
	return s.st, done
}

// scanState is the cursor of one recursive range scan: i is the index
// of the next unprocessed leaf, and every scan call maintains the
// invariant codes[i] == the quadrant's first cell code.
type scanState[V any] struct {
	f *Frozen[V]
	scanRect
	visit quadtree.Visit[V]
	st    quadtree.RangeStats
	i     int
}

// bulk sweeps every entry from the cursor's leaf up to (excluding) the
// first leaf at or past code end, with no geometry tests: the caller
// guarantees the whole run lies inside the closed query. Returns false
// when the visitor stopped the scan.
//
//popvet:noalloc
func (s *scanState[V]) bulk(end uint64) bool {
	return s.bulkTo(s.f.seekFrom(s.i, end))
}

// bulkTo is bulk with the run's end leaf already resolved (the scan
// loops resolve directory-aligned quadrant boundaries with one table
// load instead of a seek).
//
//popvet:noalloc
func (s *scanState[V]) bulkTo(j int) bool {
	f := s.f
	lo, hi := f.starts[s.i], f.starts[j]
	s.st.NodesVisited += j - s.i
	s.st.LeavesVisited += j - s.i
	s.st.RecordsScanned += int(hi - lo)
	s.i = j
	if s.visit == nil {
		s.st.Matched += int(hi - lo)
		return true
	}
	for k := lo; k < hi; k++ {
		if !s.visit(geom.Point{X: f.xs[k], Y: f.ys[k]}, f.vals[k]) {
			s.st.Matched += int(k-lo) + 1
			return false
		}
	}
	s.st.Matched += int(hi - lo)
	return true
}

// leafScan processes the single leaf at the cursor under the closed
// float test, advancing the cursor past it. Returns false when the
// visitor stopped the scan.
//
//popvet:noalloc
func (s *scanState[V]) leafScan() bool {
	f := s.f
	s.st.NodesVisited++
	s.st.LeavesVisited++
	lo, hi := f.starts[s.i], f.starts[s.i+1]
	s.st.RecordsScanned += int(hi - lo)
	s.i++
	for k := lo; k < hi; k++ {
		p := geom.Point{X: f.xs[k], Y: f.ys[k]}
		if s.query.ContainsClosed(p) {
			s.st.Matched++
			if s.visit != nil && !s.visit(p, f.vals[k]) {
				return false
			}
		}
	}
	return true
}

// scan processes the quadrant of 4^level cells starting at code codeLo
// with minimum cell (cx, cy). The caller guarantees the quadrant
// overlaps the query rectangle but is not fully inside it, that it is
// subdivided (no single leaf covers it), and that the cursor sits on
// its first leaf. It returns false when the visitor stopped the scan.
//
// Each subquadrant is classified here, paying the recursive call only
// for ones that cross the query boundary and are subdivided further.
// Disjoint quadrants cost nothing: the cursor is positioned lazily,
// with one seek when the next overlapping quadrant is entered (a no-op
// if no skip intervened). Fully-inside quadrants are swept flat, and
// quadrants a single leaf covers are scanned under the float test.
//
//popvet:noalloc
func (s *scanState[V]) scan(codeLo uint64, level int, cx, cy int64) bool {
	f := s.f
	quarter := uint64(1) << (2 * uint(level-1))
	half := int64(1) << uint(level-1)
	xcl := [2]int{
		classify(cx, half, s.x0, s.x1, s.fx0, s.fx1),
		classify(cx+half, half, s.x0, s.x1, s.fx0, s.fx1),
	}
	ycl := [2]int{
		classify(cy, half, s.y0, s.y1, s.fy0, s.fy1),
		classify(cy+half, half, s.y0, s.y1, s.fy0, s.fy1),
	}
	codes := f.codes
	aligned := uint(2*(level-1)) >= f.dirShift
	for q := 0; q < 4; q++ {
		xc, yc := xcl[q&1], ycl[q>>1]
		if xc == axisOut || yc == axisOut {
			continue
		}
		subLo := codeLo + uint64(q)*quarter
		if codes[s.i] < subLo {
			if aligned {
				s.i = f.dirAt(subLo)
			} else {
				s.i = f.seekFrom(s.i, subLo)
			}
		}
		switch {
		case xc == axisContained && yc == axisContained:
			j := 0
			if aligned {
				j = f.dirAt(subLo + quarter)
			} else {
				j = f.seekFrom(s.i, subLo+quarter)
			}
			if !s.bulkTo(j) {
				return false
			}
		case codes[s.i+1] >= subLo+quarter:
			// A single leaf covers the subquadrant (the tree never
			// split this deep here).
			if !s.leafScan() {
				return false
			}
		default:
			if !s.scan(subLo, level-1, cx+int64(q&1)*half, cy+int64(q>>1)*half) {
				return false
			}
		}
	}
	return true
}

// countState is the cursor of one counting scan: the same quadrant
// classification as scanState, stripped of visitor dispatch and
// traversal statistics, with per-axis filters on boundary leaves. The
// scan's answer is exactly scanState's Matched; only the bookkeeping
// differs.
type countState[V any] struct {
	f *Frozen[V]
	scanRect
	i int
	n int
}

// Interval classes for one child column or row of a quadrant against
// one axis of the query: disjoint children are skipped, contained ones
// need no further tests on that axis, boundary ones keep descending.
const (
	axisOut       = iota // no overlap with the query's cell interval
	axisBoundary         // overlaps, but crosses a query edge
	axisContained        // entirely inside the full-containment interval
)

// classify places the child interval [lo, lo+half) against one query
// axis: [q0, q1] is the query's cell interval and [f0, f1] its
// full-containment interval.
//
//popvet:noalloc
func classify(lo, half, q0, q1, f0, f1 int64) int {
	if lo > q1 || lo+half-1 < q0 {
		return axisOut
	}
	if lo >= f0 && lo+half-1 <= f1 {
		return axisContained
	}
	return axisBoundary
}

// scan is scanState.scan for counting; see there for the protocol. The
// two child columns and two child rows are classified against their
// axes once, ahead of the child loop — each child then combines its
// column and row class with no further geometry — and a child fully
// contained on one axis descends into the scanX/scanY variants, which
// never test that axis again.
//
//popvet:noalloc
func (s *countState[V]) scan(codeLo uint64, level int, cx, cy int64) {
	f := s.f
	quarter := uint64(1) << (2 * uint(level-1))
	half := int64(1) << uint(level-1)
	xcl := [2]int{
		classify(cx, half, s.x0, s.x1, s.fx0, s.fx1),
		classify(cx+half, half, s.x0, s.x1, s.fx0, s.fx1),
	}
	ycl := [2]int{
		classify(cy, half, s.y0, s.y1, s.fy0, s.fy1),
		classify(cy+half, half, s.y0, s.y1, s.fy0, s.fy1),
	}
	codes := f.codes
	last := len(codes) - 1
	aligned := uint(2*(level-1)) >= f.dirShift
	for q := 0; q < 4; q++ {
		xc, yc := xcl[q&1], ycl[q>>1]
		if xc == axisOut || yc == axisOut {
			continue
		}
		subLo := codeLo + uint64(q)*quarter
		if codes[s.i] < subLo {
			if aligned {
				s.i = f.dirAt(subLo)
			} else {
				s.i = f.seekFrom(s.i, subLo)
			}
		}
		subHi := subLo + quarter
		switch {
		case xc == axisContained && yc == axisContained:
			j := 0
			if aligned {
				j = f.dirAt(subHi)
			} else {
				j = f.seekFrom(s.i, subHi)
			}
			s.n += int(f.starts[j] - f.starts[s.i])
			s.i = j
		default:
			if shortRun(s.i, last, codes, subHi) {
				// A short leaf run covers the subquadrant: when it is one
				// leaf (recursing cannot split it) or holds few entries,
				// filtering its points beats more recursion. An axis the
				// run's quadrant is contained on needs no test; dispatch
				// the one-axis filters directly.
				j := s.i + 1
				for codes[j] < subHi {
					j++
				}
				if j == s.i+1 || int(f.starts[j]-f.starts[s.i]) <= entryCut {
					switch {
					case yc == axisContained:
						s.countRunX(cx+int64(q&1)*half, half, j)
					case xc == axisContained:
						s.countRunY(cy+int64(q>>1)*half, half, j)
					default:
						s.countRun(cx+int64(q&1)*half, cy+int64(q>>1)*half, half, j)
					}
					continue
				}
			}
			switch {
			case yc == axisContained:
				s.scanX(subLo, level-1, cx+int64(q&1)*half)
			case xc == axisContained:
				s.scanY(subLo, level-1, cy+int64(q>>1)*half)
			default:
				s.scan(subLo, level-1, cx+int64(q&1)*half, cy+int64(q>>1)*half)
			}
		}
	}
}

// runCut and entryCut bound the leaf runs the scans count directly: a
// boundary subquadrant covered by at most runCut leaves holding at
// most entryCut entries (or by a single leaf, which descending cannot
// split) is filtered in one pass instead of descending. Small buckets
// make the bottom of the tree exactly this shape, so most of the
// recursion disappears; the entry bound keeps large buckets on the
// descending path, whose narrower per-axis filters win once a run
// carries enough points.
const (
	runCut   = 16
	entryCut = 64
)

// shortRun reports that at most runCut leaves cover [codes[i], subHi):
// one probe at i+runCut, no search.
//
//popvet:noalloc
func shortRun(i, last int, codes []uint64, subHi uint64) bool {
	i += runCut
	return i > last || codes[i] >= subHi
}

// scanX is scan for a quadrant whose rows are entirely inside the
// full-containment interval: only the x axis can exclude anything, so
// children test one axis and boundary leaves filter one coordinate
// plane. scanY is its mirror.
//
//popvet:noalloc
func (s *countState[V]) scanX(codeLo uint64, level int, cx int64) {
	f := s.f
	quarter := uint64(1) << (2 * uint(level-1))
	half := int64(1) << uint(level-1)
	xcl := [2]int{
		classify(cx, half, s.x0, s.x1, s.fx0, s.fx1),
		classify(cx+half, half, s.x0, s.x1, s.fx0, s.fx1),
	}
	codes := f.codes
	last := len(codes) - 1
	aligned := uint(2*(level-1)) >= f.dirShift
	for q := 0; q < 4; q++ {
		xc := xcl[q&1]
		if xc == axisOut {
			continue
		}
		subLo := codeLo + uint64(q)*quarter
		if codes[s.i] < subLo {
			if aligned {
				s.i = f.dirAt(subLo)
			} else {
				s.i = f.seekFrom(s.i, subLo)
			}
		}
		subHi := subLo + quarter
		switch {
		case xc == axisContained:
			j := 0
			if aligned {
				j = f.dirAt(subHi)
			} else {
				j = f.seekFrom(s.i, subHi)
			}
			s.n += int(f.starts[j] - f.starts[s.i])
			s.i = j
		default:
			if shortRun(s.i, last, codes, subHi) {
				j := s.i + 1
				for codes[j] < subHi {
					j++
				}
				if j == s.i+1 || int(f.starts[j]-f.starts[s.i]) <= entryCut {
					s.countRunX(cx+int64(q&1)*half, half, j)
					continue
				}
			}
			s.scanX(subLo, level-1, cx+int64(q&1)*half)
		}
	}
}

//popvet:noalloc
func (s *countState[V]) scanY(codeLo uint64, level int, cy int64) {
	f := s.f
	quarter := uint64(1) << (2 * uint(level-1))
	half := int64(1) << uint(level-1)
	ycl := [2]int{
		classify(cy, half, s.y0, s.y1, s.fy0, s.fy1),
		classify(cy+half, half, s.y0, s.y1, s.fy0, s.fy1),
	}
	codes := f.codes
	last := len(codes) - 1
	aligned := uint(2*(level-1)) >= f.dirShift
	for q := 0; q < 4; q++ {
		yc := ycl[q>>1]
		if yc == axisOut {
			continue
		}
		subLo := codeLo + uint64(q)*quarter
		if codes[s.i] < subLo {
			if aligned {
				s.i = f.dirAt(subLo)
			} else {
				s.i = f.seekFrom(s.i, subLo)
			}
		}
		subHi := subLo + quarter
		switch {
		case yc == axisContained:
			j := 0
			if aligned {
				j = f.dirAt(subHi)
			} else {
				j = f.seekFrom(s.i, subHi)
			}
			s.n += int(f.starts[j] - f.starts[s.i])
			s.i = j
		default:
			if shortRun(s.i, last, codes, subHi) {
				j := s.i + 1
				for codes[j] < subHi {
					j++
				}
				if j == s.i+1 || int(f.starts[j]-f.starts[s.i]) <= entryCut {
					s.countRunY(cy+int64(q>>1)*half, half, j)
					continue
				}
			}
			s.scanY(subLo, level-1, cy+int64(q>>1)*half)
		}
	}
}

// countRunX counts the leaf run [s.i, j) — boundary leaves of a
// quadrant whose rows are all inside the query — under whichever x
// edges the quadrant's column interval [scx, scx+half) can actually
// cross. countRunY mirrors it.
//
//popvet:noalloc
func (s *countState[V]) countRunX(scx, half int64, j int) {
	f := s.f
	lo, hi := f.starts[s.i], f.starts[j]
	s.i = j
	xs := f.xs[lo:hi]
	n := 0
	switch lim0, lim1 := s.query.MinX, s.query.MaxX; {
	case scx >= s.fx0: // cannot cross the low edge
		for _, x := range xs {
			if x <= lim1 {
				n++
			}
		}
	case scx+half-1 <= s.fx1: // cannot cross the high edge
		for _, x := range xs {
			if x >= lim0 {
				n++
			}
		}
	default:
		for _, x := range xs {
			if x >= lim0 && x <= lim1 {
				n++
			}
		}
	}
	s.n += n
}

//popvet:noalloc
func (s *countState[V]) countRunY(scy, half int64, j int) {
	f := s.f
	lo, hi := f.starts[s.i], f.starts[j]
	s.i = j
	ys := f.ys[lo:hi]
	n := 0
	switch lim0, lim1 := s.query.MinY, s.query.MaxY; {
	case scy >= s.fy0:
		for _, y := range ys {
			if y <= lim1 {
				n++
			}
		}
	case scy+half-1 <= s.fy1:
		for _, y := range ys {
			if y >= lim0 {
				n++
			}
		}
	default:
		for _, y := range ys {
			if y >= lim0 && y <= lim1 {
				n++
			}
		}
	}
	s.n += n
}

// countRun counts the leaf run [s.i, j) under only the query
// constraints its quadrant can actually violate: a boundary run whose
// cells sit entirely within the full-containment columns (rows) needs
// no x (y) test at all — the same monotonicity argument that lets
// interior quadrants skip geometry entirely, applied per axis. Most
// boundary runs cross a single query edge, so the common filter is one
// comparison streaming one coordinate plane.
//
//popvet:noalloc
func (s *countState[V]) countRun(scx, scy, half int64, j int) {
	switch {
	case scy >= s.fy0 && scy+half-1 <= s.fy1: // rows contained: x only
		s.countRunX(scx, half, j)
	case scx >= s.fx0 && scx+half-1 <= s.fx1: // columns contained: y only
		s.countRunY(scy, half, j)
	default: // a corner run: both axes can cut
		f := s.f
		lo, hi := f.starts[s.i], f.starts[j]
		s.i = j
		xs := f.xs[lo:hi]
		ys := f.ys[lo:hi][:len(xs)]
		n := 0
		for k, x := range xs {
			if x >= s.query.MinX && x <= s.query.MaxX &&
				ys[k] >= s.query.MinY && ys[k] <= s.query.MaxY {
				n++
			}
		}
		s.n += n
	}
}

// scanBudgeted walks the query's Z-interval leaf by leaf: each leaf
// interval examined counts toward NodesVisited (the linear form's
// analogue of descending into a node), runs of leaves outside the
// query rectangle are skipped with BIGMIN jumps, and exhausting the
// budget sets Truncated.
//
//popvet:noalloc
func (f *Frozen[V]) scanBudgeted(query geom.Rect, maxNodes int, visit quadtree.Visit[V], x0, y0, x1, y1 uint32) (st quadtree.RangeStats, done bool) {
	zmin := Interleave(x0, y0)
	zmax := Interleave(x1, y1)
	i := f.leafOf(zmin)
	for i < len(f.codes)-1 && f.codes[i] <= zmax {
		if st.NodesVisited >= maxNodes {
			st.Truncated = true
			return st, false
		}
		st.NodesVisited++
		// The leaf is an aligned square of side cells; test it against
		// the query's grid rectangle.
		lo := f.codes[i]
		side := uint64(cellSide(f.codes[i+1] - lo))
		lx, ly := Deinterleave(lo)
		if uint64(lx) > uint64(x1) || uint64(lx)+side-1 < uint64(x0) ||
			uint64(ly) > uint64(y1) || uint64(ly)+side-1 < uint64(y0) {
			// Off the rectangle: jump to the next leaf whose interval
			// can reach it instead of scanning the Z-interval linearly.
			nz, ok := bigmin(f.codes[i+1]-1, zmin, zmax)
			if !ok {
				break
			}
			i = f.leafOf(nz)
			continue
		}
		st.LeavesVisited++
		s, e := f.starts[i], f.starts[i+1]
		st.RecordsScanned += int(e - s)
		for k := s; k < e; k++ {
			p := geom.Point{X: f.xs[k], Y: f.ys[k]}
			if query.ContainsClosed(p) {
				st.Matched++
				if visit != nil && !visit(p, f.vals[k]) {
					return st, false
				}
			}
		}
		i++
	}
	return st, true
}
