// Package linearquad is the read-optimized linear form of a PR
// quadtree: a pointerless, immutable snapshot in which every leaf block
// is a Morton (Z-order) locational code plus an offset into one flat
// entry array, sorted in code order.
//
// The paper's population model says that at steady state almost all of
// a PR quadtree's information lives in its leaves — the internal nodes
// a pointer traversal chases are pure read-path overhead — and the
// partial-match and split-tree analyses (Curien–Joseph, Flajolet et
// al., Broutin–Holmgren; see PAPERS.md) measure query cost in blocks
// visited. The linear form takes both seriously: Freeze walks the tree
// once and keeps only the leaf level, and queries touch O(matching
// leaves) contiguous memory with zero pointer dereferences. Range
// queries decompose the implicit grid over the sorted code array:
// quadrants outside the query rectangle are skipped with one binary
// search regardless of how many leaves they hold, and quadrants inside
// it are contiguous runs of entries swept with no per-point geometry —
// counting such a run is O(log leaves). Budgeted queries instead walk
// the query's Z-interval leaf by leaf with BIGMIN jumps (Tropf–Herzog)
// so each examined leaf counts against the node budget exactly like a
// node visit in the live tree.
//
// A Frozen is a snapshot: it never observes later mutations of the
// source tree, and it is safe for concurrent use by any number of
// goroutines with no locking whatsoever. Result sets are identical to
// the live tree's Range/Get at freeze time — the same closed-rectangle
// float comparisons decide matches; the grid only prunes.
package linearquad

import (
	"errors"
	"fmt"
	"math"

	"popana/internal/geom"
	"popana/internal/quadtree"
)

// MaxDepth is the deepest tree Freeze can encode: two bits per level
// must fit a uint64 alongside a one-past-the-end sentinel, so 31 levels
// (a 2^31-cell grid side, finer than float64 geometry is meaningful
// for). Trees deeper than this — possible only under adversarial
// clustering near DefaultMaxDepth — cannot be frozen; callers keep
// serving from the live tree.
//
// The bound applies per frozen tree, not per universe: a spatialdb
// table sharded at level k freezes each shard's subtree independently,
// so the deepest freezable point concentration sits k levels lower in
// the global decomposition than it would under a single table-wide
// snapshot.
const MaxDepth = 31

// ErrTooDeep is returned by Freeze when the tree's height exceeds
// MaxDepth.
var ErrTooDeep = errors.New("linearquad: tree too deep to freeze")

// Frozen is an immutable linear-quadtree snapshot of a quadtree.Tree.
// The zero value is not useful; build with Freeze.
type Frozen[V any] struct {
	region geom.Rect
	depth  int // grid depth D: the source tree's height at freeze time

	// codes[i] is leaf i's locational code normalized to depth D (the
	// Morton code of its minimum-corner grid cell); codes[len-1] is the
	// 4^D sentinel. Leaves tile the region, so leaf i covers the cell
	// interval [codes[i], codes[i+1]).
	codes []uint64
	// starts[i] is leaf i's offset into pts/vals; starts[len-1] = len(pts).
	starts []int32

	// The flat entry array, grouped by leaf in code order.
	pts  []geom.Point
	vals []V
}

// Freeze builds the linear snapshot of t in one leaf walk (plus a
// sizing pass), emitting leaves in Z-order so no sort is needed. It
// returns ErrTooDeep if the tree's height exceeds MaxDepth.
func Freeze[V any](t *quadtree.Tree[V]) (*Frozen[V], error) {
	leaves, entries, height := 0, 0, 0
	t.WalkLeaves(func(_ uint64, depth int, each func(func(geom.Point, V) bool)) bool {
		leaves++
		if depth > height {
			height = depth
		}
		each(func(geom.Point, V) bool { entries++; return true })
		return true
	})
	if height > MaxDepth {
		return nil, fmt.Errorf("%w: height %d > %d", ErrTooDeep, height, MaxDepth)
	}
	f := &Frozen[V]{
		region: t.Region(),
		depth:  height,
		codes:  make([]uint64, 0, leaves+1),
		starts: make([]int32, 0, leaves+1),
		pts:    make([]geom.Point, 0, entries),
		vals:   make([]V, 0, entries),
	}
	t.WalkLeaves(func(path uint64, depth int, each func(func(geom.Point, V) bool)) bool {
		f.codes = append(f.codes, path<<(2*uint(height-depth)))
		f.starts = append(f.starts, int32(len(f.pts)))
		each(func(p geom.Point, v V) bool {
			f.pts = append(f.pts, p)
			f.vals = append(f.vals, v)
			return true
		})
		return true
	})
	f.codes = append(f.codes, 1<<(2*uint(height)))
	f.starts = append(f.starts, int32(len(f.pts)))
	return f, nil
}

// Len returns the number of stored points.
func (f *Frozen[V]) Len() int { return len(f.pts) }

// Leaves returns the number of leaf blocks (including empty ones).
func (f *Frozen[V]) Leaves() int { return len(f.codes) - 1 }

// Depth returns the grid depth: the source tree's height at freeze
// time.
func (f *Frozen[V]) Depth() int { return f.depth }

// AvgOccupancy returns records per leaf block — the paper's occupancy
// statistic, identical to stats.Census.AverageOccupancy on the live
// tree the snapshot was frozen from — or NaN for a snapshot with no
// leaves. It lets monitoring reads serve the measured occupancy from
// the snapshot without a Census walk of the pointer tree.
func (f *Frozen[V]) AvgOccupancy() float64 {
	if f.Leaves() == 0 {
		return math.NaN()
	}
	return float64(f.Len()) / float64(f.Leaves())
}

// Region returns the snapshot's universe rectangle.
func (f *Frozen[V]) Region() geom.Rect { return f.region }

// leafOf returns the index of the leaf whose cell interval contains
// code z: the largest i with codes[i] <= z, by branch-light binary
// search. Requires 0 <= z < 4^depth.
func (f *Frozen[V]) leafOf(z uint64) int {
	lo, hi := 0, len(f.codes)-1 // invariant: codes[lo] <= z < codes[hi]
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if f.codes[mid] <= z {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored at p, if any: one cell descent, one
// binary search, one bounded leaf scan, zero allocations.
func (f *Frozen[V]) Get(p geom.Point) (V, bool) {
	var zero V
	if !f.region.Contains(p) {
		return zero, false
	}
	cx := cellCoord(p.X, f.region.MinX, f.region.MaxX, f.depth)
	cy := cellCoord(p.Y, f.region.MinY, f.region.MaxY, f.depth)
	i := f.leafOf(Interleave(cx, cy))
	for k := f.starts[i]; k < f.starts[i+1]; k++ {
		if f.pts[k] == p {
			return f.vals[k], true
		}
	}
	return zero, false
}

// Contains reports whether point p is stored in the snapshot.
func (f *Frozen[V]) Contains(p geom.Point) bool {
	_, ok := f.Get(p)
	return ok
}

// Range calls visit for every stored point inside the closed query
// rectangle, in Z-order of leaf blocks, and reports whether the scan
// ran to completion (visit never returned false). Results are
// identical to quadtree.Tree.Range on the frozen tree.
func (f *Frozen[V]) Range(query geom.Rect, visit quadtree.Visit[V]) bool {
	_, done := f.rangeScan(query, 0, visit)
	return done
}

// RangeBudgeted is Range with the node-budget instrumentation of
// quadtree.Tree.RangeBudgeted. With maxNodes > 0 the scan walks the
// query's Z-interval leaf by leaf: every leaf whose code interval it
// examines counts toward NodesVisited (the linear form has no internal
// nodes — examining a leaf's interval is its analogue of descending
// into a node), leaves whose block overlaps the query additionally
// count toward LeavesVisited and have their entries scanned, and
// exhausting the budget sets Truncated and returns the partial result.
// maxNodes <= 0 means unlimited and uses the faster recursive scan, in
// which NodesVisited and LeavesVisited both count only the leaves that
// overlap the query. A nil visit counts without delivering.
func (f *Frozen[V]) RangeBudgeted(query geom.Rect, maxNodes int, visit quadtree.Visit[V]) quadtree.RangeStats {
	st, _ := f.rangeScan(query, maxNodes, visit)
	return st
}

// CountRange returns the number of stored points inside the closed
// query rectangle, allocation-free.
func (f *Frozen[V]) CountRange(query geom.Rect) int {
	st, _ := f.rangeScan(query, 0, nil)
	return st.Matched
}

// CountRangeBudgeted counts matches under a node-visit budget,
// mirroring quadtree.Tree.CountRangeBudgeted: the count is
// RangeStats.Matched and Truncated reports a budget stop.
func (f *Frozen[V]) CountRangeBudgeted(query geom.Rect, maxNodes int) quadtree.RangeStats {
	st, _ := f.rangeScan(query, maxNodes, nil)
	return st
}

// rangeScan is the shared scan behind Range, RangeBudgeted, and the
// count variants. done reports that neither the budget nor the visitor
// stopped the scan.
//
// The unbudgeted path decomposes the implicit grid recursively over the
// code array: a quadrant disjoint from the query's cell rectangle is
// skipped with one galloped binary search no matter how many leaves it
// holds, and a quadrant strictly interior to it is one contiguous run
// of entries swept with no per-leaf or per-point geometry at all. Only
// quadrants crossing the query boundary descend to individual leaves
// and closed-rectangle float tests. The budgeted path instead walks the
// query's Z-interval leaf by leaf with BIGMIN jumps (Tropf–Herzog), so
// NodesVisited counts each examined leaf interval and the budget cuts
// off exactly like the live tree's node budget.
func (f *Frozen[V]) rangeScan(query geom.Rect, maxNodes int, visit quadtree.Visit[V]) (st quadtree.RangeStats, done bool) {
	// Clip: a query strictly outside the region matches nothing.
	if query.MinX > f.region.MaxX || query.MaxX < f.region.MinX ||
		query.MinY > f.region.MaxY || query.MaxY < f.region.MinY {
		return st, true
	}
	// The query's grid rectangle, inclusive on both ends: every point
	// the closed query can contain lives in a cell within it, because
	// cellCoord is monotone and agrees with the tree's float midpoint
	// geometry exactly.
	x0 := cellCoord(query.MinX, f.region.MinX, f.region.MaxX, f.depth)
	y0 := cellCoord(query.MinY, f.region.MinY, f.region.MaxY, f.depth)
	x1 := cellCoord(query.MaxX, f.region.MinX, f.region.MaxX, f.depth)
	y1 := cellCoord(query.MaxY, f.region.MinY, f.region.MaxY, f.depth)
	if maxNodes > 0 {
		return f.scanBudgeted(query, maxNodes, visit, x0, y0, x1, y1)
	}
	s := scanState[V]{
		f:     f,
		query: query,
		visit: visit,
		x0:    int64(x0), y0: int64(y0), x1: int64(x1), y1: int64(y1),
		// The full-containment rectangle: a cell column strictly inside
		// (x0, x1) holds only points within the closed query bounds, by
		// monotonicity of cellCoord; the boundary columns x0 and x1 are
		// included only when the query edge extends to (or past) the
		// region edge, where no point can fall outside it.
		fx0: int64(x0), fy0: int64(y0), fx1: int64(x1), fy1: int64(y1),
	}
	if query.MinX > f.region.MinX {
		s.fx0++
	}
	if query.MinY > f.region.MinY {
		s.fy0++
	}
	if query.MaxX < f.region.MaxX {
		s.fx1--
	}
	if query.MaxY < f.region.MaxY {
		s.fy1--
	}
	side := int64(1) << uint(f.depth)
	switch {
	case s.fx0 == 0 && s.fy0 == 0 && s.fx1 == side-1 && s.fy1 == side-1:
		// The query covers the whole region: one flat sweep.
		done = s.bulk(uint64(1) << (2 * uint(f.depth)))
	case len(f.codes) == 2:
		// The tree never split: the root is the only leaf.
		done = s.leafScan()
	default:
		done = s.scan(0, f.depth, 0, 0)
	}
	return s.st, done
}

// scanState is the cursor of one recursive range scan: i is the index
// of the next unprocessed leaf, and every scan call maintains the
// invariant codes[i] == the quadrant's first cell code.
type scanState[V any] struct {
	f                  *Frozen[V]
	query              geom.Rect
	visit              quadtree.Visit[V]
	x0, y0, x1, y1     int64 // the query's cell rectangle, inclusive
	fx0, fy0, fx1, fy1 int64 // cells guaranteed inside the closed query
	st                 quadtree.RangeStats
	i                  int
}

// bulk sweeps every entry from the cursor's leaf up to (excluding) the
// first leaf at or past code end, with no geometry tests: the caller
// guarantees the whole run lies inside the closed query. Returns false
// when the visitor stopped the scan.
func (s *scanState[V]) bulk(end uint64) bool {
	f := s.f
	j := s.seek(end)
	lo, hi := f.starts[s.i], f.starts[j]
	s.st.NodesVisited += j - s.i
	s.st.LeavesVisited += j - s.i
	s.st.RecordsScanned += int(hi - lo)
	s.i = j
	if s.visit == nil {
		s.st.Matched += int(hi - lo)
		return true
	}
	for k := lo; k < hi; k++ {
		if !s.visit(f.pts[k], f.vals[k]) {
			s.st.Matched += int(k-lo) + 1
			return false
		}
	}
	s.st.Matched += int(hi - lo)
	return true
}

// leafScan processes the single leaf at the cursor under the closed
// float test, advancing the cursor past it. Returns false when the
// visitor stopped the scan.
func (s *scanState[V]) leafScan() bool {
	f := s.f
	s.st.NodesVisited++
	s.st.LeavesVisited++
	lo, hi := f.starts[s.i], f.starts[s.i+1]
	s.st.RecordsScanned += int(hi - lo)
	s.i++
	for k := lo; k < hi; k++ {
		if s.query.ContainsClosed(f.pts[k]) {
			s.st.Matched++
			if s.visit != nil && !s.visit(f.pts[k], f.vals[k]) {
				return false
			}
		}
	}
	return true
}

// scan processes the quadrant of 4^level cells starting at code codeLo
// with minimum cell (cx, cy). The caller guarantees the quadrant
// overlaps the query rectangle but is not fully inside it, that it is
// subdivided (no single leaf covers it), and that the cursor sits on
// its first leaf. It returns false when the visitor stopped the scan.
//
// Each subquadrant is classified here, paying the recursive call only
// for ones that cross the query boundary and are subdivided further.
// Disjoint quadrants cost nothing: the cursor is positioned lazily,
// with one seek when the next overlapping quadrant is entered (a no-op
// if no skip intervened). Fully-inside quadrants are swept flat, and
// quadrants a single leaf covers are scanned under the float test.
func (s *scanState[V]) scan(codeLo uint64, level int, cx, cy int64) bool {
	f := s.f
	quarter := uint64(1) << (2 * uint(level-1))
	half := int64(1) << uint(level-1)
	for q := int64(0); q < 4; q++ {
		scx := cx + (q&1)*half
		scy := cy + (q>>1)*half
		if scx > s.x1 || scx+half-1 < s.x0 || scy > s.y1 || scy+half-1 < s.y0 {
			continue
		}
		subLo := codeLo + uint64(q)*quarter
		if f.codes[s.i] < subLo {
			s.i = s.seek(subLo)
		}
		switch {
		case scx >= s.fx0 && scx+half-1 <= s.fx1 && scy >= s.fy0 && scy+half-1 <= s.fy1:
			if !s.bulk(subLo + quarter) {
				return false
			}
		case f.codes[s.i+1] >= subLo+quarter:
			// A single leaf covers the subquadrant (the tree never
			// split this deep here).
			if !s.leafScan() {
				return false
			}
		default:
			if !s.scan(subLo, level-1, scx, scy) {
				return false
			}
		}
	}
	return true
}

// seek returns the index of the first leaf at or after the cursor whose
// code is >= target, by galloping then binary search — cheap for the
// short skips that dominate and still O(log) for long ones.
func (s *scanState[V]) seek(target uint64) int {
	codes := s.f.codes
	lo := s.i
	if codes[lo] >= target {
		return lo
	}
	hi, step := lo+1, 1
	for hi < len(codes)-1 && codes[hi] < target {
		lo = hi
		hi += step
		step <<= 1
		if hi > len(codes)-1 {
			hi = len(codes) - 1
		}
	}
	// codes[lo] < target <= codes[hi]: the sentinel 4^depth bounds any
	// in-grid target.
	for hi-lo > 1 {
		mid := int(uint(lo+hi) >> 1)
		if codes[mid] < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// scanBudgeted walks the query's Z-interval leaf by leaf: each leaf
// interval examined counts toward NodesVisited (the linear form's
// analogue of descending into a node), runs of leaves outside the
// query rectangle are skipped with BIGMIN jumps, and exhausting the
// budget sets Truncated.
func (f *Frozen[V]) scanBudgeted(query geom.Rect, maxNodes int, visit quadtree.Visit[V], x0, y0, x1, y1 uint32) (st quadtree.RangeStats, done bool) {
	zmin := Interleave(x0, y0)
	zmax := Interleave(x1, y1)
	i := f.leafOf(zmin)
	for i < len(f.codes)-1 && f.codes[i] <= zmax {
		if st.NodesVisited >= maxNodes {
			st.Truncated = true
			return st, false
		}
		st.NodesVisited++
		// The leaf is an aligned square of side cells; test it against
		// the query's grid rectangle.
		lo := f.codes[i]
		side := uint64(cellSide(f.codes[i+1] - lo))
		lx, ly := Deinterleave(lo)
		if uint64(lx) > uint64(x1) || uint64(lx)+side-1 < uint64(x0) ||
			uint64(ly) > uint64(y1) || uint64(ly)+side-1 < uint64(y0) {
			// Off the rectangle: jump to the next leaf whose interval
			// can reach it instead of scanning the Z-interval linearly.
			nz, ok := bigmin(f.codes[i+1]-1, zmin, zmax)
			if !ok {
				break
			}
			i = f.leafOf(nz)
			continue
		}
		st.LeavesVisited++
		s, e := f.starts[i], f.starts[i+1]
		st.RecordsScanned += int(e - s)
		for k := s; k < e; k++ {
			if query.ContainsClosed(f.pts[k]) {
				st.Matched++
				if visit != nil && !visit(f.pts[k], f.vals[k]) {
					return st, false
				}
			}
		}
		i++
	}
	return st, true
}
