package linearquad

import (
	"fmt"
	"sort"
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/xrand"
)

// buildTree inserts n points from src into a fresh tree with the given
// capacity, returning the tree and the points.
func buildTree(t *testing.T, cfg quadtree.Config, src dist.PointSource, n int) (*quadtree.Tree[int], []geom.Point) {
	t.Helper()
	qt, err := quadtree.New[int](cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := make([]geom.Point, 0, n)
	for qt.Len() < n {
		p := src.Next()
		replaced, err := qt.Insert(p, qt.Len())
		if err != nil {
			t.Fatal(err)
		}
		if !replaced {
			pts = append(pts, p)
		}
	}
	return qt, pts
}

// sortPoints orders a result set canonically for comparison.
func sortPoints(pts []geom.Point) {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].X != pts[j].X {
			return pts[i].X < pts[j].X
		}
		return pts[i].Y < pts[j].Y
	})
}

func collectLive(qt *quadtree.Tree[int], q geom.Rect) []geom.Point {
	var out []geom.Point
	qt.Range(q, func(p geom.Point, _ int) bool { out = append(out, p); return true })
	sortPoints(out)
	return out
}

func collectFrozen(f *Frozen[int], q geom.Rect) []geom.Point {
	var out []geom.Point
	f.Range(q, func(p geom.Point, _ int) bool { out = append(out, p); return true })
	sortPoints(out)
	return out
}

// TestFreezeBasics: structure counters agree with the source tree.
func TestFreezeBasics(t *testing.T) {
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 2})
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.Leaves() != 1 || f.Depth() != 0 {
		t.Fatalf("empty freeze: len=%d leaves=%d depth=%d", f.Len(), f.Leaves(), f.Depth())
	}
	src := dist.NewUniform(qt.Region(), xrand.New(1))
	qt2, _ := buildTree(t, quadtree.Config{Capacity: 2}, src, 500)
	f2, err := Freeze(qt2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != qt2.Len() {
		t.Fatalf("Len %d != tree %d", f2.Len(), qt2.Len())
	}
	if f2.Leaves() != qt2.LeafCount() {
		t.Fatalf("Leaves %d != tree %d", f2.Leaves(), qt2.LeafCount())
	}
	if f2.Depth() != qt2.Height() {
		t.Fatalf("Depth %d != tree height %d", f2.Depth(), qt2.Height())
	}
	if f2.Region() != qt2.Region() {
		t.Fatalf("Region %v != %v", f2.Region(), qt2.Region())
	}
}

// TestFreezeGetEquivalence: every stored point is found with its value;
// perturbed points are not.
func TestFreezeGetEquivalence(t *testing.T) {
	for _, m := range []int{1, 4, 8} {
		src := dist.NewUniform(geom.UnitSquare, xrand.New(uint64(20+m)))
		qt, pts := buildTree(t, quadtree.Config{Capacity: m}, src, 2000)
		f, err := Freeze(qt)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range pts {
			v, ok := f.Get(p)
			wv, wok := qt.Get(p)
			if ok != wok || v != wv {
				t.Fatalf("m=%d Get(%v) = (%d,%v), live (%d,%v)", m, p, v, ok, wv, wok)
			}
			miss := geom.Pt(p.X+1e-9, p.Y)
			if f.Contains(miss) != qt.Contains(miss) {
				t.Fatalf("m=%d Contains(%v) disagrees with live tree", m, miss)
			}
			_ = i
		}
	}
}

// TestFreezeRangeEquivalence is the headline property test: Freeze →
// query returns exactly the live tree's result set on 1k random
// rectangles per capacity, uniform and clustered data.
func TestFreezeRangeEquivalence(t *testing.T) {
	for _, m := range []int{1, 2, 8} {
		for _, clustered := range []bool{false, true} {
			name := fmt.Sprintf("m=%d/clustered=%v", m, clustered)
			t.Run(name, func(t *testing.T) {
				rng := xrand.New(uint64(40 + m))
				var src dist.PointSource
				if clustered {
					src = dist.NewClusters(geom.UnitSquare, 5, 0.03, rng.Split())
				} else {
					src = dist.NewUniform(geom.UnitSquare, rng.Split())
				}
				qt, _ := buildTree(t, quadtree.Config{Capacity: m}, src, 3000)
				f, err := Freeze(qt)
				if err != nil {
					t.Fatal(err)
				}
				for trial := 0; trial < 1000; trial++ {
					x0, y0 := rng.Float64(), rng.Float64()
					w, h := rng.Float64()*rng.Float64(), rng.Float64()*rng.Float64()
					q := geom.R(x0-w/2, y0-h/2, x0+w/2, y0+h/2)
					if q.Empty() {
						continue
					}
					live := collectLive(qt, q)
					froz := collectFrozen(f, q)
					if len(live) != len(froz) {
						t.Fatalf("window %v: live %d matches, frozen %d", q, len(live), len(froz))
					}
					for i := range live {
						if live[i] != froz[i] {
							t.Fatalf("window %v: result sets differ at %d: %v vs %v", q, i, live[i], froz[i])
						}
					}
				}
			})
		}
	}
}

// TestFreezeRangeBoundaryWindows pins the closed-edge semantics: query
// edges lying exactly on block boundaries (dyadic coordinates) must
// return identical sets from both representations.
func TestFreezeRangeBoundaryWindows(t *testing.T) {
	rng := xrand.New(77)
	src := dist.NewUniform(geom.UnitSquare, rng.Split())
	qt, _ := buildTree(t, quadtree.Config{Capacity: 4}, src, 2000)
	// Also plant points exactly on dyadic boundaries.
	for i := 0; i < 8; i++ {
		p := geom.Pt(float64(i)/8, float64(i)/8)
		if _, err := qt.Insert(p, 9000+i); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Rect{
		geom.R(0.25, 0.25, 0.5, 0.5),
		geom.R(0.5, 0.5, 0.75, 0.75),
		geom.R(0, 0, 1, 1),
		geom.R(0.125, 0.125, 0.125, 0.875), // zero-width closed slab
		geom.R(0.375, 0, 0.375, 1),
		geom.R(-1, -1, 2, 2), // superset of region
	} {
		live := collectLive(qt, q)
		froz := collectFrozen(f, q)
		if len(live) != len(froz) {
			t.Fatalf("window %v: live %d, frozen %d", q, len(live), len(froz))
		}
		for i := range live {
			if live[i] != froz[i] {
				t.Fatalf("window %v: mismatch at %d", q, i)
			}
		}
	}
}

// TestFreezeSnapshotImmutable: mutations to the source tree after
// Freeze do not show through the snapshot.
func TestFreezeSnapshotImmutable(t *testing.T) {
	src := dist.NewUniform(geom.UnitSquare, xrand.New(88))
	qt, pts := buildTree(t, quadtree.Config{Capacity: 4}, src, 1000)
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	before := f.CountRange(geom.UnitSquare)
	for _, p := range pts[:500] {
		qt.Delete(p)
	}
	if got := f.CountRange(geom.UnitSquare); got != before {
		t.Fatalf("snapshot changed after source mutation: %d -> %d", before, got)
	}
	if _, ok := f.Get(pts[0]); !ok {
		t.Fatal("snapshot lost a point deleted from the source")
	}
}

// TestFrozenBudgetTruncation: the node budget stops the scan with
// Truncated set and a partial count, mirroring the live tree's
// contract.
func TestFrozenBudgetTruncation(t *testing.T) {
	src := dist.NewUniform(geom.UnitSquare, xrand.New(99))
	qt, _ := buildTree(t, quadtree.Config{Capacity: 2}, src, 4000)
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	full := f.CountRangeBudgeted(geom.UnitSquare, 0)
	if full.Truncated {
		t.Fatal("unbudgeted scan reported Truncated")
	}
	if full.Matched != qt.Len() {
		t.Fatalf("full scan matched %d of %d", full.Matched, qt.Len())
	}
	cut := f.CountRangeBudgeted(geom.UnitSquare, 3)
	if !cut.Truncated {
		t.Fatal("budget 3 not reported as truncated")
	}
	if cut.NodesVisited > 3 {
		t.Fatalf("budget exceeded: %d nodes", cut.NodesVisited)
	}
	if cut.Matched >= full.Matched {
		t.Fatalf("truncated scan matched %d >= full %d", cut.Matched, full.Matched)
	}
	// A budgeted visit delivers exactly the counted matches.
	n := 0
	st := f.RangeBudgeted(geom.UnitSquare, 3, func(geom.Point, int) bool { n++; return true })
	if n != st.Matched || !st.Truncated {
		t.Fatalf("visit count %d != Matched %d (truncated=%v)", n, st.Matched, st.Truncated)
	}
}

// TestFreezeTooDeep: a tree driven past MaxDepth by near-coincident
// points refuses to freeze with ErrTooDeep.
func TestFreezeTooDeep(t *testing.T) {
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 1, MaxDepth: 40})
	// Two points closer than 2^-32: splitting separates them only past
	// depth 32.
	if _, err := qt.Insert(geom.Pt(0.1, 0.1), 0); err != nil {
		t.Fatal(err)
	}
	const eps = 1.0 / (1 << 62) * float64(1<<24) // ~2^-38
	if _, err := qt.Insert(geom.Pt(0.1+eps, 0.1), 1); err != nil {
		t.Fatal(err)
	}
	if qt.Height() <= MaxDepth {
		t.Skipf("tree height %d did not exceed MaxDepth; adjust epsilon", qt.Height())
	}
	if _, err := Freeze(qt); err == nil {
		t.Fatal("Freeze of over-deep tree succeeded")
	}
}

// TestFrozenGetAllocs: point lookups on the frozen form are
// allocation-free.
func TestFrozenGetAllocs(t *testing.T) {
	src := dist.NewUniform(geom.UnitSquare, xrand.New(123))
	qt, pts := buildTree(t, quadtree.Config{Capacity: 8}, src, 5000)
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := f.Get(pts[42]); !ok {
			t.Fatal("lost point")
		}
	})
	if allocs != 0 {
		t.Fatalf("Frozen.Get allocates %.1f per op, want 0", allocs)
	}
	countAllocs := testing.AllocsPerRun(50, func() {
		if n := f.CountRange(geom.R(0.2, 0.2, 0.6, 0.6)); n == 0 {
			t.Fatal("empty count")
		}
	})
	if countAllocs != 0 {
		t.Fatalf("Frozen.CountRange allocates %.1f per op, want 0", countAllocs)
	}
}

func TestAvgOccupancyMatchesCensus(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		src := dist.NewUniform(geom.UnitSquare, xrand.New(uint64(90+m)))
		qt, _ := buildTree(t, quadtree.Config{Capacity: m}, src, 2500)
		f, err := Freeze(qt)
		if err != nil {
			t.Fatal(err)
		}
		want := qt.Census().AverageOccupancy()
		if got := f.AvgOccupancy(); got != want {
			t.Errorf("m=%d: AvgOccupancy = %v, Census.AverageOccupancy = %v", m, got, want)
		}
	}
	// Empty tree: the root is one empty leaf, so occupancy is 0 under
	// both the Census and Frozen conventions.
	qt, err := quadtree.New[int](quadtree.Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.AvgOccupancy(), qt.Census().AverageOccupancy(); got != want {
		t.Errorf("empty AvgOccupancy = %v, want %v", got, want)
	}
}
