package linearquad

import "math/bits"

// Morton (Z-order) locational codes: two grid coordinates interleaved
// bit by bit, x in the even positions and y in the odd ones, matching
// the geom quadrant convention (bit 0 = east, bit 1 = north) so that a
// quadtree path read root-first, two bits per level, IS the Morton code
// of the block's minimum-corner cell. Sorting blocks by code is exactly
// the depth-first quadrant-order traversal of the tree.

// Interleave returns the Morton code of grid cell (x, y): bit i of x
// lands in bit 2i of the code, bit i of y in bit 2i+1.
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Deinterleave inverts Interleave.
func Deinterleave(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread spaces the 32 bits of v into the even bit positions of a
// uint64 (the standard magic-mask dilation).
func spread(v uint32) uint64 {
	z := uint64(v)
	z = (z | z<<16) & 0x0000ffff0000ffff
	z = (z | z<<8) & 0x00ff00ff00ff00ff
	z = (z | z<<4) & 0x0f0f0f0f0f0f0f0f
	z = (z | z<<2) & 0x3333333333333333
	z = (z | z<<1) & 0x5555555555555555
	return z
}

// compact gathers the even bit positions of z back into 32 contiguous
// bits, inverting spread.
func compact(z uint64) uint32 {
	z &= 0x5555555555555555
	z = (z | z>>1) & 0x3333333333333333
	z = (z | z>>2) & 0x0f0f0f0f0f0f0f0f
	z = (z | z>>4) & 0x00ff00ff00ff00ff
	z = (z | z>>8) & 0x0000ffff0000ffff
	z = (z | z>>16) & 0x00000000ffffffff
	return uint32(z)
}

// evenMask is the x-dimension bit mask; the y dimension is evenMask<<1.
const evenMask uint64 = 0x5555555555555555

// bigmin is the BIGMIN operation of Tropf and Herzog: given a Z-range
// [zmin, zmax] (the Morton codes of a query rectangle's min and max
// cells) and a code z known to lie outside the rectangle, it returns
// the smallest code inside the rectangle that is strictly greater
// than z, and whether one exists. It is the jump that lets a linear
// Z-order scan skip runs of cells that are inside the [zmin, zmax]
// interval but outside the rectangle, visiting O(matching blocks)
// instead of the whole interval.
func bigmin(z, zmin, zmax uint64) (uint64, bool) {
	var bm uint64
	have := false
	for p := 63; p >= 0; p-- {
		zb := z >> uint(p) & 1
		minb := zmin >> uint(p) & 1
		maxb := zmax >> uint(p) & 1
		switch zb<<2 | minb<<1 | maxb {
		case 0b000:
			// All agree on 0: descend.
		case 0b001:
			// Range spans the bit, z goes low: the high half of the
			// range is a candidate BIGMIN; continue in the low half.
			bm, have = load1(zmin, p), true
			zmax = load0(zmax, p)
		case 0b011:
			// Range entirely above z's prefix: its minimum wins.
			return zmin, true
		case 0b100:
			// Range entirely below z's prefix: only a saved candidate
			// can answer.
			return bm, have
		case 0b101:
			// Range spans the bit, z goes high: the low half is below
			// z; continue in the high half.
			zmin = load1(zmin, p)
		case 0b111:
			// All agree on 1: descend.
		default:
			// 0b010 / 0b110 would need minb > maxb within a common
			// prefix — impossible for a well-formed range.
		}
	}
	// z itself lies inside the (narrowed) range; the caller guarantees
	// that cannot happen for a rectangle-outside z, but fall back to the
	// saved candidate for safety.
	return bm, have
}

// load1 returns v with bit p set to 1 and every lower bit of the same
// dimension cleared — the smallest code in v's subtree that takes the
// high branch of dimension p&1 at bit p.
func load1(v uint64, p int) uint64 {
	below := evenMask << (uint(p) & 1) & (1<<uint(p) - 1)
	return v&^below | 1<<uint(p)
}

// load0 returns v with bit p cleared and every lower bit of the same
// dimension set — the largest code in v's subtree that takes the low
// branch of dimension p&1 at bit p.
func load0(v uint64, p int) uint64 {
	below := evenMask << (uint(p) & 1) & (1<<uint(p) - 1)
	return v&^(1<<uint(p)) | below
}

// BigMin is the exported form of bigmin for the disk-resident read
// path (package segment's cursors and spatialdb's disk scans), which
// jumps over the same Z-interval gaps the in-memory budgeted scan does:
// given the Z-range [zmin, zmax] of a query rectangle and a code z
// outside the rectangle, it returns the smallest in-rectangle code
// strictly greater than z, and whether one exists.
func BigMin(z, zmin, zmax uint64) (uint64, bool) {
	return bigmin(z, zmin, zmax)
}

// cellSide returns the side length, in depth-D grid cells, of an
// aligned block covering span cells (span = 4^(D-depth)).
func cellSide(span uint64) uint32 {
	return uint32(1) << (uint(bits.TrailingZeros64(span)) / 2)
}

// cellCoord maps coordinate x into the depth-deep binary grid over
// [lo, hi) by the same repeated float midpoint descent the quadtree's
// quadrant decomposition uses (geom.Rect.QuadrantOf compares p >= mid
// with mid = lo + (hi-lo)/2), so cell boundaries agree with the tree's
// block boundaries bit for bit even when the region's extents are not
// exactly representable. Coordinates outside [lo, hi) clamp to the
// first or last cell, which is exactly the conservative behavior query
// corners need.
func cellCoord(x, lo, hi float64, depth int) uint32 {
	var c uint32
	for i := 0; i < depth; i++ {
		mid := lo + (hi-lo)/2
		c <<= 1
		if x >= mid {
			c |= 1
			lo = mid
		} else {
			hi = mid
		}
	}
	return c
}
