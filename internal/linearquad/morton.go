package linearquad

import (
	"math"
	"math/bits"

	"popana/internal/geom"
)

// Morton (Z-order) locational codes: two grid coordinates interleaved
// bit by bit, x in the even positions and y in the odd ones, matching
// the geom quadrant convention (bit 0 = east, bit 1 = north) so that a
// quadtree path read root-first, two bits per level, IS the Morton code
// of the block's minimum-corner cell. Sorting blocks by code is exactly
// the depth-first quadrant-order traversal of the tree.

// Interleave returns the Morton code of grid cell (x, y): bit i of x
// lands in bit 2i of the code, bit i of y in bit 2i+1.
//
//popvet:noalloc
func Interleave(x, y uint32) uint64 {
	return spread(x) | spread(y)<<1
}

// Deinterleave inverts Interleave.
//
//popvet:noalloc
func Deinterleave(z uint64) (x, y uint32) {
	return compact(z), compact(z >> 1)
}

// spread spaces the 32 bits of v into the even bit positions of a
// uint64 (the standard magic-mask dilation).
//
//popvet:noalloc
func spread(v uint32) uint64 {
	z := uint64(v)
	z = (z | z<<16) & 0x0000ffff0000ffff
	z = (z | z<<8) & 0x00ff00ff00ff00ff
	z = (z | z<<4) & 0x0f0f0f0f0f0f0f0f
	z = (z | z<<2) & 0x3333333333333333
	z = (z | z<<1) & 0x5555555555555555
	return z
}

// compact gathers the even bit positions of z back into 32 contiguous
// bits, inverting spread.
//
//popvet:noalloc
func compact(z uint64) uint32 {
	z &= 0x5555555555555555
	z = (z | z>>1) & 0x3333333333333333
	z = (z | z>>2) & 0x0f0f0f0f0f0f0f0f
	z = (z | z>>4) & 0x00ff00ff00ff00ff
	z = (z | z>>8) & 0x0000ffff0000ffff
	z = (z | z>>16) & 0x00000000ffffffff
	return uint32(z)
}

// evenMask is the x-dimension bit mask; the y dimension is evenMask<<1.
const evenMask uint64 = 0x5555555555555555

// bigmin is the BIGMIN operation of Tropf and Herzog: given a Z-range
// [zmin, zmax] (the Morton codes of a query rectangle's min and max
// cells) and a code z known to lie outside the rectangle, it returns
// the smallest code inside the rectangle that is strictly greater
// than z, and whether one exists. It is the jump that lets a linear
// Z-order scan skip runs of cells that are inside the [zmin, zmax]
// interval but outside the rectangle, visiting O(matching blocks)
// instead of the whole interval.
//
//popvet:noalloc
func bigmin(z, zmin, zmax uint64) (uint64, bool) {
	var bm uint64
	have := false
	for p := 63; p >= 0; p-- {
		zb := z >> uint(p) & 1
		minb := zmin >> uint(p) & 1
		maxb := zmax >> uint(p) & 1
		switch zb<<2 | minb<<1 | maxb {
		case 0b000:
			// All agree on 0: descend.
		case 0b001:
			// Range spans the bit, z goes low: the high half of the
			// range is a candidate BIGMIN; continue in the low half.
			bm, have = load1(zmin, p), true
			zmax = load0(zmax, p)
		case 0b011:
			// Range entirely above z's prefix: its minimum wins.
			return zmin, true
		case 0b100:
			// Range entirely below z's prefix: only a saved candidate
			// can answer.
			return bm, have
		case 0b101:
			// Range spans the bit, z goes high: the low half is below
			// z; continue in the high half.
			zmin = load1(zmin, p)
		case 0b111:
			// All agree on 1: descend.
		default:
			// 0b010 / 0b110 would need minb > maxb within a common
			// prefix — impossible for a well-formed range.
		}
	}
	// z itself lies inside the (narrowed) range; the caller guarantees
	// that cannot happen for a rectangle-outside z, but fall back to the
	// saved candidate for safety.
	return bm, have
}

// load1 returns v with bit p set to 1 and every lower bit of the same
// dimension cleared — the smallest code in v's subtree that takes the
// high branch of dimension p&1 at bit p.
//
//popvet:noalloc
func load1(v uint64, p int) uint64 {
	below := evenMask << (uint(p) & 1) & (1<<uint(p) - 1)
	return v&^below | 1<<uint(p)
}

// load0 returns v with bit p cleared and every lower bit of the same
// dimension set — the largest code in v's subtree that takes the low
// branch of dimension p&1 at bit p.
//
//popvet:noalloc
func load0(v uint64, p int) uint64 {
	below := evenMask << (uint(p) & 1) & (1<<uint(p) - 1)
	return v&^(1<<uint(p)) | below
}

// BigMin is the exported form of bigmin for the disk-resident read
// path (package segment's cursors and spatialdb's disk scans), which
// jumps over the same Z-interval gaps the in-memory budgeted scan does:
// given the Z-range [zmin, zmax] of a query rectangle and a code z
// outside the rectangle, it returns the smallest in-rectangle code
// strictly greater than z, and whether one exists.
func BigMin(z, zmin, zmax uint64) (uint64, bool) {
	return bigmin(z, zmin, zmax)
}

// cellSide returns the side length, in depth-D grid cells, of an
// aligned block covering span cells (span = 4^(D-depth)).
//
//popvet:noalloc
func cellSide(span uint64) uint32 {
	return uint32(1) << (uint(bits.TrailingZeros64(span)) / 2)
}

// cellCoord maps coordinate x into the depth-deep binary grid over
// [lo, hi) by the same repeated float midpoint descent the quadtree's
// quadrant decomposition uses (geom.Rect.QuadrantOf compares p >= mid
// with mid = lo + (hi-lo)/2), so cell boundaries agree with the tree's
// block boundaries bit for bit even when the region's extents are not
// exactly representable. Coordinates outside [lo, hi) clamp to the
// first or last cell, which is exactly the conservative behavior query
// corners need.
//
//popvet:noalloc
func cellCoord(x, lo, hi float64, depth int) uint32 {
	var c uint32
	for i := 0; i < depth; i++ {
		mid := lo + (hi-lo)/2
		c <<= 1
		if x >= mid {
			c |= 1
			lo = mid
		} else {
			hi = mid
		}
	}
	return c
}

// minNormal is the smallest positive normal float64 (2^-1022).
const minNormal = 0x1p-1022

// cellScale is the precomputed single-division replacement for
// cellCoord on one axis. When the region extent is an exactly
// representable dyadic interval — width a power of two 2^pw and lo an
// integer multiple i*2^pw with |i| <= 2^20 — every midpoint the
// iterative descent computes is exact (each is (2a+1)*2^(pw-k-1) with
// a below 2^52, so no rounding ever occurs), and the descent's cell is
// exactly floor(x*2^(depth-pw)) - i*2^depth. One multiply by a power
// of two (exact) and one floor then replace the 31-iteration loop.
// Regions that fail the representability test keep the descent; so do
// inputs whose scaled value is subnormal, where the multiply itself
// may round. FuzzCellCoordFastPath pins the bit-identity.
type cellScale struct {
	lo, hi   float64 // descent fallback parameters
	depth    int
	scale    float64 // 2^(depth-pw)
	min, max float64 // region edges in scaled units: base and base+2^depth
	base     int64   // i << depth
	last     uint32  // 2^depth - 1
	fast     bool
}

// makeCellScale builds the fast-path state for one axis of a
// depth-deep grid over [lo, hi). fast stays false — and coord falls
// back to the descent — unless the extent satisfies every exactness
// condition above.
func makeCellScale(lo, hi float64, depth int) cellScale {
	cs := cellScale{lo: lo, hi: hi, depth: depth, last: uint32(1)<<uint(depth) - 1}
	w := hi - lo
	frac, exp := math.Frexp(w) // w == frac * 2^exp, frac in [0.5, 1)
	if !(w > 0) || frac != 0.5 || lo+w != hi {
		return cs
	}
	pw := exp - 1 // w == 2^pw
	i := math.Ldexp(lo, -pw)
	if i != math.Trunc(i) || math.Abs(i) > 1<<20 || math.Ldexp(i, pw) != lo {
		return cs
	}
	scale := math.Ldexp(1, depth-pw)
	if scale <= 0 || math.IsInf(scale, 0) {
		return cs
	}
	cs.scale = scale
	cs.base = int64(i) << uint(depth)
	cs.min = float64(cs.base)
	cs.max = float64(cs.base + 1<<uint(depth))
	cs.fast = true
	return cs
}

// coord maps x to its grid cell, bit-identical to
// cellCoord(x, lo, hi, depth).
//
//popvet:noalloc
func (cs *cellScale) coord(x float64) uint32 {
	if !cs.fast {
		return cellCoord(x, cs.lo, cs.hi, cs.depth)
	}
	y := x * cs.scale // exact: scale is a power of two, y checked normal below
	if !(y >= cs.min) {
		return 0 // below the region, -Inf, or NaN: the descent clamps to cell 0
	}
	if y >= cs.max {
		return cs.last // at or past the top edge: clamp to the last cell
	}
	if y < minNormal && y > -minNormal && x != 0 {
		// The scaled value is subnormal: the multiply may have rounded
		// (possibly across the integer 0), so only the descent is exact.
		return cellCoord(x, cs.lo, cs.hi, cs.depth)
	}
	return uint32(int64(math.Floor(y)) - cs.base)
}

// CellCoder precomputes the per-axis cell mapping behind CellCode for
// one (region, depth) pair, so callers that encode many points against
// the same grid — the durable layer keys every entry this way — pay
// the representability analysis once instead of a 2*depth-iteration
// descent per point. Code agrees with CellCode bit for bit.
type CellCoder struct {
	x, y cellScale
}

// NewCellCoder returns the coder for the depth-level grid over region.
func NewCellCoder(region geom.Rect, depth int) CellCoder {
	return CellCoder{
		x: makeCellScale(region.MinX, region.MaxX, depth),
		y: makeCellScale(region.MinY, region.MaxY, depth),
	}
}

// Code returns p's Morton locational code on the coder's grid.
func (c *CellCoder) Code(p geom.Point) uint64 {
	return Interleave(c.x.coord(p.X), c.y.coord(p.Y))
}
