package linearquad

import (
	"testing"

	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/xrand"
)

// TestZeroAlloc pins the read kernels at zero allocations per
// operation, so an accidental escape (a closure capture, a slice
// header spill) fails go test instead of waiting for a bench run to
// notice the regression.
func TestZeroAlloc(t *testing.T) {
	rng := xrand.New(99)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 8})
	for qt.Len() < 10000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	probe := geom.Pt(rng.Float64(), rng.Float64())
	window := geom.R(0.2, 0.3, 0.55, 0.7)

	pts := make([]geom.Point, 64)
	for i := range pts {
		if i%2 == 0 {
			pts[i] = f.PointAt(i * 37 % f.Len())
		} else {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		}
	}
	vals := make([]int, len(pts))
	found := make([]bool, len(pts))
	queries := make([]geom.Rect, 16)
	for i := range queries {
		x, y := rng.Float64(), rng.Float64()
		queries[i] = geom.R(x-0.1, y-0.1, x+0.1, y+0.1)
	}
	counts := make([]int, len(queries))
	var sc Scratch
	// Warm the scratch so the pinned runs measure steady state.
	f.GetBatch(&sc, pts, vals, found)

	sink := 0
	cases := []struct {
		name string
		op   func()
	}{
		{"Get", func() {
			if v, ok := f.Get(probe); ok {
				sink += v
			}
		}},
		{"Contains", func() {
			if f.Contains(probe) {
				sink++
			}
		}},
		{"CountRange", func() { sink += f.CountRange(window) }},
		{"CountRangeBudgeted", func() { sink += f.CountRangeBudgeted(window, 0).Matched }},
		{"GetBatch", func() { sink += f.GetBatch(&sc, pts, vals, found) }},
		{"ContainsBatch", func() { sink += f.ContainsBatch(&sc, pts, found) }},
		{"CountRangeBatch", func() {
			f.CountRangeBatch(&sc, queries, counts)
			sink += counts[0]
		}},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.op); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
	_ = sink
}

// TestFreezeIntoReuse checks that a freeze into a recycled scratch
// allocates only the snapshot header: the planes and the iterator all
// come from the scratch.
func TestFreezeIntoReuse(t *testing.T) {
	rng := xrand.New(5)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 8})
	for qt.Len() < 20000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	var sc FreezeScratch[int]
	f, err := FreezeInto(qt, &sc)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		sc.Recycle(f)
		f, err = FreezeInto(qt, &sc)
		if err != nil {
			t.Fatal(err)
		}
	})
	// One Frozen header per freeze; everything else is recycled.
	if allocs > 1 {
		t.Errorf("steady-state FreezeInto: %.1f allocs/op, want <= 1", allocs)
	}
	if f.Len() != qt.Len() {
		t.Fatalf("recycled freeze lost entries: %d vs %d", f.Len(), qt.Len())
	}
}
