package linearquad

import (
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/xrand"
)

func batchFixture(t *testing.T, n int, clustered bool) (*quadtree.Tree[int], *Frozen[int]) {
	t.Helper()
	rng := xrand.New(321)
	var src dist.PointSource
	if clustered {
		src = dist.NewClusters(geom.UnitSquare, 6, 0.03, rng.Split())
	} else {
		src = dist.NewUniform(geom.UnitSquare, rng.Split())
	}
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 4})
	for qt.Len() < n {
		if _, err := qt.Insert(src.Next(), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	return qt, f
}

// TestGetBatchMatchesGet checks the batched lookup against per-point
// Get over a mix of present, absent, and out-of-region probes, on
// uniform and clustered snapshots.
func TestGetBatchMatchesGet(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		_, f := batchFixture(t, 20000, clustered)
		rng := xrand.New(77)
		pts := make([]geom.Point, 4096)
		for i := range pts {
			switch i % 4 {
			case 0, 1:
				pts[i] = f.PointAt(int(rng.Uint64() % uint64(f.Len())))
			case 2:
				pts[i] = geom.Pt(rng.Float64(), rng.Float64())
			default:
				pts[i] = geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2) // often outside
			}
		}
		vals := make([]int, len(pts))
		found := make([]bool, len(pts))
		var sc Scratch
		n := f.GetBatch(&sc, pts, vals, found)
		wantN := 0
		for i, p := range pts {
			wv, wok := f.Get(p)
			if wok {
				wantN++
			}
			if found[i] != wok || vals[i] != wv {
				t.Fatalf("clustered=%v probe %d (%v): batch (%d, %v), Get (%d, %v)",
					clustered, i, p, vals[i], found[i], wv, wok)
			}
		}
		if n != wantN {
			t.Fatalf("GetBatch returned %d, want %d", n, wantN)
		}
		// ContainsBatch agrees on the same probes.
		n2 := f.ContainsBatch(&sc, pts, found)
		if n2 != wantN {
			t.Fatalf("ContainsBatch returned %d, want %d", n2, wantN)
		}
		for i, p := range pts {
			if found[i] != f.Contains(p) {
				t.Fatalf("ContainsBatch probe %d (%v): %v, want %v", i, p, found[i], f.Contains(p))
			}
		}
	}
}

// TestCountRangeBatchMatchesCountRange checks the batched range count
// against per-query CountRange, including windows hanging off the
// region.
func TestCountRangeBatchMatchesCountRange(t *testing.T) {
	_, f := batchFixture(t, 20000, false)
	rng := xrand.New(55)
	queries := make([]geom.Rect, 256)
	for i := range queries {
		w := rng.Float64() * 0.5
		h := rng.Float64() * 0.5
		x := rng.Float64()*1.2 - 0.1
		y := rng.Float64()*1.2 - 0.1
		queries[i] = geom.R(x-w/2, y-h/2, x+w/2, y+h/2)
	}
	counts := make([]int, len(queries))
	var sc Scratch
	f.CountRangeBatch(&sc, queries, counts)
	total := 0
	for i, q := range queries {
		want := f.CountRange(q)
		if counts[i] != want {
			t.Fatalf("query %d (%v): batch %d, CountRange %d", i, q, counts[i], want)
		}
		total += want
	}
	if total == 0 {
		t.Fatal("query stream matched nothing; the test is vacuous")
	}
}

// TestCountRangeMatchesLive cross-checks the counting kernel (with its
// per-axis boundary filters) against the live tree over many windows.
func TestCountRangeMatchesLive(t *testing.T) {
	for _, clustered := range []bool{false, true} {
		qt, f := batchFixture(t, 20000, clustered)
		rng := xrand.New(31)
		for i := 0; i < 500; i++ {
			w := rng.Float64() * 0.6
			h := rng.Float64() * 0.6
			x := rng.Float64()*1.4 - 0.2
			y := rng.Float64()*1.4 - 0.2
			q := geom.R(x-w/2, y-h/2, x+w/2, y+h/2)
			if got, want := f.CountRange(q), qt.CountRange(q); got != want {
				t.Fatalf("clustered=%v window %v: frozen %d, live %d", clustered, q, got, want)
			}
		}
	}
}

// TestBatchLengthMismatchPanics pins the mis-sized-destination
// contract.
func TestBatchLengthMismatchPanics(t *testing.T) {
	_, f := batchFixture(t, 100, false)
	var sc Scratch
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s with mismatched lengths did not panic", name)
			}
		}()
		fn()
	}
	pts := make([]geom.Point, 4)
	mustPanic("GetBatch", func() { f.GetBatch(&sc, pts, make([]int, 3), make([]bool, 4)) })
	mustPanic("GetBatch", func() { f.GetBatch(&sc, pts, make([]int, 4), make([]bool, 5)) })
	mustPanic("ContainsBatch", func() { f.ContainsBatch(&sc, pts, make([]bool, 3)) })
	mustPanic("CountRangeBatch", func() { f.CountRangeBatch(&sc, make([]geom.Rect, 2), make([]int, 1)) })
}
