package linearquad

import (
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/quadtree"
	"popana/internal/xrand"
)

// markPoint marks p's dirty cell the way spatialdb does: the point's
// level-Level cell of the tree region, derived from its MaxDepth code.
func markPoint(d *Dirty, coder *CellCoder, p geom.Point) {
	d.Mark(coder.Code(p) >> uint(2*(MaxDepth-d.Level())))
}

// requireIdentical asserts two snapshots are bit-identical: same
// region, depth, codes, starts, and entry planes.
func requireIdentical[V comparable](t *testing.T, got, want *Frozen[V]) {
	t.Helper()
	if got.region != want.region || got.depth != want.depth {
		t.Fatalf("header: (%v, %d) vs (%v, %d)", got.region, got.depth, want.region, want.depth)
	}
	if len(got.codes) != len(want.codes) {
		t.Fatalf("leaf count: %d vs %d", len(got.codes)-1, len(want.codes)-1)
	}
	for i := range got.codes {
		if got.codes[i] != want.codes[i] {
			t.Fatalf("codes[%d]: %d vs %d", i, got.codes[i], want.codes[i])
		}
		if got.starts[i] != want.starts[i] {
			t.Fatalf("starts[%d]: %d vs %d", i, got.starts[i], want.starts[i])
		}
	}
	if len(got.xs) != len(want.xs) {
		t.Fatalf("entry count: %d vs %d", len(got.xs), len(want.xs))
	}
	for k := range got.xs {
		if got.xs[k] != want.xs[k] || got.ys[k] != want.ys[k] || got.vals[k] != want.vals[k] {
			t.Fatalf("entry %d: (%v, %v, %v) vs (%v, %v, %v)",
				k, got.xs[k], got.ys[k], got.vals[k], want.xs[k], want.ys[k], want.vals[k])
		}
	}
}

// TestFreezeDeltaBitIdentical runs rounds of random mutations (inserts,
// deletes, and value overwrites, clustered so most of the tree stays
// clean) against a tree, marking dirty cells as spatialdb would, and
// requires every incremental rebuild to be bit-identical to a
// from-scratch Freeze — codes, starts, and entries.
func TestFreezeDeltaBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name      string
		clustered bool
		level     int
	}{
		{"uniform-l6", false, 6},
		{"clustered-l6", true, 6},
		{"uniform-l3", false, 3},
		{"clustered-l0", true, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := xrand.New(2024)
			var src dist.PointSource
			if tc.clustered {
				src = dist.NewClusters(geom.UnitSquare, 5, 0.02, rng.Split())
			} else {
				src = dist.NewUniform(geom.UnitSquare, rng.Split())
			}
			qt := quadtree.MustNew[int](quadtree.Config{Capacity: 4})
			live := make([]geom.Point, 0, 8000)
			for qt.Len() < 8000 {
				p := src.Next()
				if rep, err := qt.Insert(p, qt.Len()); err != nil {
					t.Fatal(err)
				} else if !rep {
					live = append(live, p)
				}
			}
			prev, err := Freeze(qt)
			if err != nil {
				t.Fatal(err)
			}
			coder := NewCellCoder(qt.Region(), MaxDepth)
			d := NewDirty(tc.level)
			for round := 0; round < 12; round++ {
				// A burst of clustered churn: mutations concentrated
				// around one focus so splicing has clean runs to reuse.
				fx, fy := rng.Float64(), rng.Float64()
				for m := 0; m < 120; m++ {
					switch rng.Uint64() % 3 {
					case 0: // insert near the focus
						p := geom.Pt(
							math_clamp01(fx+(rng.Float64()-0.5)*0.05),
							math_clamp01(fy+(rng.Float64()-0.5)*0.05),
						)
						if rep, err := qt.Insert(p, round*1000+m); err != nil {
							t.Fatal(err)
						} else if !rep {
							live = append(live, p)
						}
						markPoint(d, &coder, p)
					case 1: // delete a random live point
						if len(live) == 0 {
							continue
						}
						i := int(rng.Uint64() % uint64(len(live)))
						p := live[i]
						if !qt.Delete(p) {
							t.Fatalf("live point %v missing", p)
						}
						live[i] = live[len(live)-1]
						live = live[:len(live)-1]
						markPoint(d, &coder, p)
					default: // overwrite a random live point's value
						if len(live) == 0 {
							continue
						}
						p := live[int(rng.Uint64()%uint64(len(live)))]
						if _, err := qt.Insert(p, -round); err != nil {
							t.Fatal(err)
						}
						markPoint(d, &coder, p)
					}
				}
				inc, err := FreezeDelta(qt, prev, d)
				if err != nil {
					t.Fatal(err)
				}
				full, err := Freeze(qt)
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, inc, full)
				d.Reset()
				prev = inc
			}
		})
	}
}

func math_clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}

// TestFreezeDeltaNoMarks checks the no-mutation shortcut: with no
// marked cells the previous snapshot itself is returned.
func TestFreezeDeltaNoMarks(t *testing.T) {
	rng := xrand.New(8)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 4})
	for qt.Len() < 1000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	prev, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirty(6)
	got, err := FreezeDelta(qt, prev, d)
	if err != nil {
		t.Fatal(err)
	}
	if got != prev {
		t.Fatal("FreezeDelta with no marks did not return prev")
	}
}

// TestFreezeDeltaFallbacks checks that a nil prev, nil bitmap, MarkAll,
// and a region mismatch all degrade to a correct full freeze.
func TestFreezeDeltaFallbacks(t *testing.T) {
	rng := xrand.New(9)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 4})
	for qt.Len() < 3000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	full, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	d := NewDirty(6)
	d.MarkAll()
	other := quadtree.MustNew[int](quadtree.Config{Capacity: 4, Region: geom.R(0, 0, 2, 2)})
	otherPrev, err := Freeze(other)
	if err != nil {
		t.Fatal(err)
	}
	for name, tc := range map[string]struct {
		prev *Frozen[int]
		d    *Dirty
	}{
		"nil-prev":        {nil, NewDirty(6)},
		"nil-dirty":       {full, nil},
		"mark-all":        {full, d},
		"region-mismatch": {otherPrev, NewDirty(6)},
	} {
		got, err := FreezeDelta(qt, tc.prev, tc.d)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireIdentical(t, got, full)
	}
}

// TestFreezeDeltaViolatedContract feeds FreezeDelta a stale prev with
// an understated dirty set — the contract is broken, identity is not
// promised — and checks it still returns a structurally valid
// snapshot (the defensive walk) rather than corrupting memory.
func TestFreezeDeltaViolatedContract(t *testing.T) {
	rng := xrand.New(10)
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 2})
	for qt.Len() < 2000 {
		if _, err := qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), qt.Len()); err != nil {
			t.Fatal(err)
		}
	}
	prev, err := Freeze(qt)
	if err != nil {
		t.Fatal(err)
	}
	// Mutate heavily but mark only one unrelated cell.
	for i := 0; i < 500; i++ {
		qt.Insert(geom.Pt(rng.Float64(), rng.Float64()), i)
		qt.Delete(geom.Pt(rng.Float64(), rng.Float64()))
	}
	d := NewDirty(6)
	d.Mark(0)
	got, err := FreezeDelta(qt, prev, d)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through FromParts to exercise the full invariant
	// checker on the spliced result.
	if _, err := FromParts(got.Region(), got.Depth(), got.Codes(), got.Starts(), got.Points(), got.Values()); err != nil {
		t.Fatalf("spliced snapshot violates Frozen invariants: %v", err)
	}
}
