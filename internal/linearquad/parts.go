package linearquad

// Parts access and reconstruction: the durable-storage layer serializes
// a Frozen's four planes (codes, starts, points, values) into sealed
// run files and rebuilds the snapshot on recovery without re-walking a
// pointer tree. The accessors expose the planes read-only — mutating a
// returned slice corrupts the snapshot for every concurrent reader —
// and FromParts is the validating inverse, refusing any plane set that
// does not satisfy the Frozen invariants Freeze guarantees.

import (
	"fmt"

	"popana/internal/geom"
)

// Codes returns the leaf locational-code plane, including the trailing
// 4^Depth sentinel. The slice is the snapshot's own storage: callers
// must treat it as read-only.
func (f *Frozen[V]) Codes() []uint64 { return f.codes }

// Starts returns the leaf offset plane; starts[i] is leaf i's first
// entry in Points/Values and the final element is Len. Read-only, as
// with Codes.
func (f *Frozen[V]) Starts() []int32 { return f.starts }

// Points returns the flat point array, grouped by leaf in code order.
// The snapshot stores coordinates as separate planes (see XYs), so
// this materializes a fresh slice on every call; hot paths should use
// XYs or PointAt instead.
func (f *Frozen[V]) Points() []geom.Point {
	pts := make([]geom.Point, len(f.xs))
	for i := range pts {
		pts[i] = geom.Point{X: f.xs[i], Y: f.ys[i]}
	}
	return pts
}

// XYs returns the snapshot's coordinate planes: entry k is the point
// (xs[k], ys[k]). The slices are the snapshot's own storage: callers
// must treat them as read-only.
func (f *Frozen[V]) XYs() (xs, ys []float64) { return f.xs, f.ys }

// PointAt returns entry k's location.
func (f *Frozen[V]) PointAt(k int) geom.Point {
	return geom.Point{X: f.xs[k], Y: f.ys[k]}
}

// Values returns the value array parallel to the coordinate planes.
// Read-only, as with Codes.
func (f *Frozen[V]) Values() []V { return f.vals }

// FromParts reassembles a Frozen from planes previously obtained via
// the accessors (typically deserialized from a sealed run file). It
// takes ownership of the codes, starts, and values slices, copies the
// points into the snapshot's coordinate planes, and validates every
// structural invariant a Freeze-built snapshot holds — a snapshot that violates
// them would serve silently wrong query results, so corrupt planes must
// fail here, loudly, not at query time:
//
//   - depth in [0, MaxDepth]
//   - codes and starts non-empty, equal length
//   - codes[0] == 0, strictly increasing, sentinel codes[last] == 4^depth
//   - starts[0] == 0, monotone non-decreasing, starts[last] == len(pts)
//   - len(pts) == len(vals), every point inside region
func FromParts[V any](region geom.Rect, depth int, codes []uint64, starts []int32, pts []geom.Point, vals []V) (*Frozen[V], error) {
	if depth < 0 || depth > MaxDepth {
		return nil, fmt.Errorf("linearquad: FromParts: depth %d outside [0, %d]", depth, MaxDepth)
	}
	if len(codes) == 0 || len(codes) != len(starts) {
		return nil, fmt.Errorf("linearquad: FromParts: %d codes, %d starts", len(codes), len(starts))
	}
	if len(pts) != len(vals) {
		return nil, fmt.Errorf("linearquad: FromParts: %d points, %d values", len(pts), len(vals))
	}
	if codes[0] != 0 {
		return nil, fmt.Errorf("linearquad: FromParts: first code %d, want 0", codes[0])
	}
	sentinel := uint64(1) << (2 * uint(depth))
	if codes[len(codes)-1] != sentinel {
		return nil, fmt.Errorf("linearquad: FromParts: sentinel %d, want 4^%d = %d", codes[len(codes)-1], depth, sentinel)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			return nil, fmt.Errorf("linearquad: FromParts: codes not strictly increasing at %d", i)
		}
	}
	if starts[0] != 0 {
		return nil, fmt.Errorf("linearquad: FromParts: first start %d, want 0", starts[0])
	}
	if int(starts[len(starts)-1]) != len(pts) {
		return nil, fmt.Errorf("linearquad: FromParts: final start %d, want %d entries", starts[len(starts)-1], len(pts))
	}
	for i := 1; i < len(starts); i++ {
		if starts[i] < starts[i-1] {
			return nil, fmt.Errorf("linearquad: FromParts: starts decrease at %d", i)
		}
	}
	for i, p := range pts {
		if !region.Contains(p) {
			return nil, fmt.Errorf("linearquad: FromParts: point %d (%v, %v) outside region", i, p.X, p.Y)
		}
	}
	f := &Frozen[V]{region: region, depth: depth, codes: codes, starts: starts, vals: vals}
	f.xs = make([]float64, len(pts))
	f.ys = make([]float64, len(pts))
	for i, p := range pts {
		f.xs[i] = p.X
		f.ys[i] = p.Y
	}
	f.csX = makeCellScale(region.MinX, region.MaxX, depth)
	f.csY = makeCellScale(region.MinY, region.MaxY, depth)
	f.buildDir(nil)
	return f, nil
}

// CellCode returns p's Morton locational code on the depth-level grid
// over region — the code Freeze would give a depth-level leaf holding
// p. The durable layer keys every stored entry by its depth-MaxDepth
// cell code so entries from different snapshots of the same shard merge
// in a single canonical order.
func CellCode(p geom.Point, region geom.Rect, depth int) uint64 {
	c := NewCellCoder(region, depth)
	return c.Code(p)
}
