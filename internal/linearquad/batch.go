package linearquad

import (
	"slices"

	"popana/internal/geom"
)

// Batched point kernels. A single Get pays a full binary search over
// the code array; a batch of lookups sorted by Morton code instead
// sweeps the array once with the galloping seek, so consecutive probes
// land in the same or nearby leaves and the code array stays hot in
// cache. The kernels allocate nothing once their Scratch has grown to
// the batch size.

// Scratch carries the reusable sort buffer of the batch kernels. The
// zero value is ready to use; the buffer grows to the largest batch
// passed and is reused across calls. A Scratch must not be shared
// between concurrent calls.
type Scratch struct {
	keys []batchKey
}

// batchKey pairs one input's Morton code with its batch index.
type batchKey struct {
	code uint64
	idx  int32
}

// cmpBatchKey orders keys by code, then by input position for
// determinism among equal codes.
func cmpBatchKey(a, b batchKey) int {
	switch {
	case a.code < b.code:
		return -1
	case a.code > b.code:
		return 1
	case a.idx < b.idx:
		return -1
	case a.idx > b.idx:
		return 1
	default:
		return 0
	}
}

// lookupBatch is the shared sweep behind GetBatch and ContainsBatch:
// encode every in-region input, sort by code, then resolve the sorted
// probes left to right, seeking forward through the leaf array. vals
// may be nil (existence only). Returns the number found.
//
//popvet:noalloc
func (f *Frozen[V]) lookupBatch(sc *Scratch, pts []geom.Point, vals []V, found []bool) int {
	if cap(sc.keys) < len(pts) {
		//popvet:allow allocfree -- the scratch grows once to the largest batch; steady state reuses it (TestZeroAlloc pins 0 allocs/op)
		sc.keys = make([]batchKey, len(pts))
	}
	keys := sc.keys[:len(pts)]
	nk := 0
	for i, p := range pts {
		found[i] = false
		if vals != nil {
			var zero V
			vals[i] = zero
		}
		if !f.region.Contains(p) {
			continue
		}
		keys[nk] = batchKey{
			code: Interleave(f.csX.coord(p.X), f.csY.coord(p.Y)),
			idx:  int32(i),
		}
		nk++
	}
	keys = keys[:nk]
	sc.keys = keys
	slices.SortFunc(keys, cmpBatchKey)
	n := 0
	li := 0
	for _, k := range keys {
		// Advance to the leaf containing k.code: codes are sorted, so
		// the target leaf is at or after the previous probe's leaf.
		if f.codes[li+1] <= k.code {
			li = f.seekFrom(li, k.code)
			if f.codes[li] > k.code {
				li--
			}
		}
		p := pts[k.idx]
		for e := f.starts[li]; e < f.starts[li+1]; e++ {
			if f.xs[e] == p.X && f.ys[e] == p.Y {
				if vals != nil {
					vals[k.idx] = f.vals[e]
				}
				found[k.idx] = true
				n++
				break
			}
		}
	}
	return n
}

// GetBatch looks up every point of pts, writing the stored value (or
// the zero value) to vals[i] and presence to found[i], and returns the
// number found. vals and found must have the same length as pts; the
// kernel panics otherwise, as with a mis-sized copy destination.
// Results are identical to calling Get per point; the batch is
// Morton-sorted internally so the probes sweep the snapshot once.
// Allocation-free once sc has grown to the batch size.
//
//popvet:noalloc
func (f *Frozen[V]) GetBatch(sc *Scratch, pts []geom.Point, vals []V, found []bool) int {
	if len(vals) != len(pts) || len(found) != len(pts) {
		panic("linearquad: GetBatch: pts, vals, found lengths differ")
	}
	return f.lookupBatch(sc, pts, vals, found)
}

// ContainsBatch reports the presence of every point of pts in found[i]
// and returns the number present. found must have the same length as
// pts. Results are identical to calling Contains per point.
//
//popvet:noalloc
func (f *Frozen[V]) ContainsBatch(sc *Scratch, pts []geom.Point, found []bool) int {
	if len(found) != len(pts) {
		panic("linearquad: ContainsBatch: pts and found lengths differ")
	}
	return f.lookupBatch(sc, pts, nil, found)
}

// CountRangeBatch answers every query rectangle, writing the count of
// stored points inside the closed rectangle queries[i] to counts[i].
// counts must have the same length as queries. Queries are answered in
// Z-order of their minimum corners, so adjacent windows reuse the
// cache lines the previous scan warmed; results are identical to
// calling CountRange per query. Allocation-free once sc has grown to
// the batch size.
//
//popvet:noalloc
func (f *Frozen[V]) CountRangeBatch(sc *Scratch, queries []geom.Rect, counts []int) {
	if len(counts) != len(queries) {
		panic("linearquad: CountRangeBatch: queries and counts lengths differ")
	}
	if cap(sc.keys) < len(queries) {
		//popvet:allow allocfree -- the scratch grows once to the largest batch; steady state reuses it (TestZeroAlloc pins 0 allocs/op)
		sc.keys = make([]batchKey, len(queries))
	}
	keys := sc.keys[:len(queries)]
	for i, q := range queries {
		keys[i] = batchKey{
			code: Interleave(f.csX.coord(q.MinX), f.csY.coord(q.MinY)),
			idx:  int32(i),
		}
	}
	sc.keys = keys
	slices.SortFunc(keys, cmpBatchKey)
	for _, k := range keys {
		counts[k.idx] = f.CountRange(queries[k.idx])
	}
}
