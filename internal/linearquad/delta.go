package linearquad

import (
	"fmt"
	"math/bits"

	"popana/internal/quadtree"
)

// Incremental freezing. A steady-state shard pays a full tree rewalk
// every SnapshotThreshold mutations even when the churn is confined to
// one corner of its region. Dirty tracks which fixed-level grid cells
// have absorbed mutations since the last snapshot, and FreezeDelta
// walks only the subtrees those cells touch, splicing every clean
// subtree's leaf run — codes, starts, and entry planes — straight out
// of the previous snapshot. The PR quadtree makes this sound: its
// shape is a function of the point set alone, and an insert or delete
// restructures nodes only along the mutated point's root-to-leaf path,
// so a subtree whose cells saw no mutation is bit-identical to what
// the previous freeze emitted.

// Dirty is a bitmap over the 4^level cells of a fixed-level grid,
// marking the cells whose contents may have changed since the last
// snapshot. The zero value is unusable; build with NewDirty. Callers
// must serialize access (spatialdb marks under the shard write lock
// and reads under its rebuild mutex).
type Dirty struct {
	level int
	words []uint64
	all   bool
}

// NewDirty returns an empty bitmap at the given grid level. Level 6
// (4096 cells, 512 bytes) tracks a 64k-point shard at roughly leaf
// granularity; levels outside [0, 12] (a 2 MiB bitmap) are rejected so
// a miscomputed level cannot allocate unboundedly.
func NewDirty(level int) *Dirty {
	if level < 0 || level > 12 {
		panic(fmt.Sprintf("linearquad: NewDirty: level %d outside [0, 12]", level))
	}
	cells := uint64(1) << uint(2*level)
	return &Dirty{level: level, words: make([]uint64, (cells+63)/64)}
}

// Level returns the bitmap's grid level.
func (d *Dirty) Level() int { return d.level }

// Mark records that the cell with the given level-Level Morton code
// may have changed. An out-of-range cell marks everything, the safe
// overapproximation.
func (d *Dirty) Mark(cell uint64) {
	if cell >= uint64(len(d.words))*64 {
		d.all = true
		return
	}
	d.words[cell/64] |= 1 << (cell % 64)
}

// MarkAll marks every cell, forcing the next FreezeDelta to walk the
// whole tree.
func (d *Dirty) MarkAll() { d.all = true }

// Reset clears every mark.
func (d *Dirty) Reset() {
	d.all = false
	clear(d.words)
}

// Any reports whether any cell is marked.
func (d *Dirty) Any() bool {
	if d.all {
		return true
	}
	for _, w := range d.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Count returns the number of marked cells.
func (d *Dirty) Count() int {
	if d.all {
		return len(d.words) * 64
	}
	n := 0
	for _, w := range d.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// cleanRange reports that no cell in [lo, hi) is marked.
func (d *Dirty) cleanRange(lo, hi uint64) bool {
	wl, bl := lo/64, lo%64
	wh, bh := hi/64, hi%64
	if wl == wh {
		return d.words[wl]&((uint64(1)<<(bh-bl)-1)<<bl) == 0
	}
	if d.words[wl]>>bl != 0 {
		return false
	}
	for w := wl + 1; w < wh; w++ {
		if d.words[w] != 0 {
			return false
		}
	}
	return bh == 0 || d.words[wh]&(uint64(1)<<bh-1) == 0
}

// cleanSubtree reports that the subtree at (path, depth) — in the
// WalkLeaves path convention — covers no marked cell, so its leaves
// are unchanged since the marks were last reset.
func (d *Dirty) cleanSubtree(path uint64, depth int) bool {
	if d.all || depth > MaxDepth {
		return false
	}
	if depth >= d.level {
		cell := path >> uint(2*(depth-d.level))
		return d.words[cell/64]&(1<<(cell%64)) == 0
	}
	shift := uint(2 * (d.level - depth))
	lo := path << shift
	return d.cleanRange(lo, lo+1<<shift)
}

// runOf locates the leaf run [ia, ib) of the previous snapshot that
// exactly tiles the subtree at (path, depth): codes[ia] is the
// subtree's first cell and codes[ib] its one-past-the-end cell. ok is
// false when the snapshot's leaf boundaries do not line up — the
// structure changed, so the caller must walk the live subtree instead.
func (f *Frozen[V]) runOf(path uint64, depth int) (ia, ib int, ok bool) {
	shift := 2 * uint(f.depth-depth)
	lo := path << shift
	hi := lo + 1<<shift
	ia = f.leafOf(lo)
	if f.codes[ia] != lo {
		return 0, 0, false
	}
	ib = f.seekFrom(ia, hi)
	if f.codes[ib] != hi {
		return 0, 0, false
	}
	return ia, ib, true
}

// runMaxDepth returns the deepest leaf in the run [ia, ib): a leaf
// spanning 4^(D-d) cells has depth d, so the deepest leaf is the one
// with the smallest code gap.
func (f *Frozen[V]) runMaxDepth(ia, ib int) int {
	minTZ := 64
	for i := ia; i < ib; i++ {
		if tz := bits.TrailingZeros64(f.codes[i+1] - f.codes[i]); tz < minTZ {
			minTZ = tz
		}
	}
	return f.depth - minTZ/2
}

// spliceRun appends src's leaf run [ia, ib) to dst, renormalizing the
// codes from src's grid depth to newDepth. Every leaf in the run must
// be at depth <= newDepth (guaranteed by the sizing pass, which folds
// runMaxDepth into the new grid depth), so a rightward renormalization
// never discards bits.
func spliceRun[V any](dst, src *Frozen[V], ia, ib, newDepth int) {
	base := int32(len(dst.xs)) - src.starts[ia]
	if shift := 2 * (newDepth - src.depth); shift >= 0 {
		for i := ia; i < ib; i++ {
			dst.codes = append(dst.codes, src.codes[i]<<uint(shift))
			dst.starts = append(dst.starts, base+src.starts[i])
		}
	} else {
		for i := ia; i < ib; i++ {
			dst.codes = append(dst.codes, src.codes[i]>>uint(-shift))
			dst.starts = append(dst.starts, base+src.starts[i])
		}
	}
	lo, hi := src.starts[ia], src.starts[ib]
	dst.xs = append(dst.xs, src.xs[lo:hi]...)
	dst.ys = append(dst.ys, src.ys[lo:hi]...)
	dst.vals = append(dst.vals, src.vals[lo:hi]...)
}

// FreezeDelta builds the linear snapshot of t, splicing unchanged leaf
// runs from prev instead of rewalking them: a subtree none of whose
// dirty-grid cells are marked is copied from prev wholesale, so the
// rebuild cost is O(mutated region + total entries copied) with no
// pointer chasing outside the dirty subtrees. The result is
// bit-identical to Freeze(t) — same codes, starts, and entry planes —
// provided d marks (at least) every cell in which a point was
// inserted, deleted, or overwritten since prev was built from this
// tree. With no marked cells prev itself is returned.
//
// A nil prev or d, a fully-marked d, or a region mismatch falls back
// to a full Freeze. prev is read, never modified; the returned
// snapshot shares no storage with it (unless it is prev).
func FreezeDelta[V any](t *quadtree.Tree[V], prev *Frozen[V], d *Dirty) (*Frozen[V], error) {
	if prev == nil || d == nil || d.all || prev.region != t.Region() {
		return Freeze(t)
	}
	if !d.Any() {
		return prev, nil
	}
	it := quadtree.NewLeafIter(t)
	leaves, entries, height := 0, 0, 0
	for it.NextNode() {
		path, depth := it.Path(), it.Depth()
		if depth <= prev.depth && d.cleanSubtree(path, depth) {
			if ia, ib, ok := prev.runOf(path, depth); ok {
				leaves += ib - ia
				entries += int(prev.starts[ib] - prev.starts[ia])
				if h := prev.runMaxDepth(ia, ib); h > height {
					height = h
				}
				it.Skip()
				continue
			}
			// prev does not tile this subtree exactly — the dirty
			// contract was violated somewhere. Walking the live subtree
			// is always correct, just slower.
		}
		if it.Internal() {
			continue
		}
		leaves++
		entries += it.Len()
		if depth > height {
			height = depth
		}
	}
	if height > MaxDepth {
		return nil, fmt.Errorf("%w: height %d > %d", ErrTooDeep, height, MaxDepth)
	}
	f := &Frozen[V]{
		region: prev.region,
		depth:  height,
		codes:  make([]uint64, 0, leaves+1),
		starts: make([]int32, 0, leaves+1),
		xs:     make([]float64, 0, entries),
		ys:     make([]float64, 0, entries),
		vals:   make([]V, 0, entries),
	}
	// Pass 2 repeats pass 1's splice decisions exactly: the tree and
	// the bitmap are unchanged between passes.
	it.Reset(t)
	for it.NextNode() {
		path, depth := it.Path(), it.Depth()
		if depth <= prev.depth && d.cleanSubtree(path, depth) {
			if ia, ib, ok := prev.runOf(path, depth); ok {
				spliceRun(f, prev, ia, ib, height)
				it.Skip()
				continue
			}
		}
		if it.Internal() {
			continue
		}
		f.codes = append(f.codes, path<<(2*uint(height-depth)))
		f.starts = append(f.starts, int32(len(f.xs)))
		f.xs, f.ys, f.vals = it.AppendPlanes(f.xs, f.ys, f.vals)
	}
	f.codes = append(f.codes, 1<<(2*uint(height)))
	f.starts = append(f.starts, int32(len(f.xs)))
	f.csX = makeCellScale(f.region.MinX, f.region.MaxX, height)
	f.csY = makeCellScale(f.region.MinY, f.region.MaxY, height)
	f.buildDir(nil)
	return f, nil
}
