package linearquad_test

import (
	"fmt"

	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
)

// ExampleFreeze builds a pointer quadtree, freezes it into the linear
// form, and queries the snapshot: same answers, no pointers, no locks.
func ExampleFreeze() {
	qt := quadtree.MustNew[string](quadtree.Config{Capacity: 2})
	pts := map[string]geom.Point{
		"a": geom.Pt(0.1, 0.1),
		"b": geom.Pt(0.2, 0.8),
		"c": geom.Pt(0.9, 0.4),
		"d": geom.Pt(0.6, 0.6),
	}
	for name, p := range pts {
		if _, err := qt.Insert(p, name); err != nil {
			fmt.Println(err)
			return
		}
	}
	f, err := linearquad.Freeze(qt)
	if err != nil {
		fmt.Println(err)
		return
	}
	if v, ok := f.Get(pts["c"]); ok {
		fmt.Println("found", v)
	}
	fmt.Println("in left half:", f.CountRange(geom.R(0, 0, 0.5, 1)))
	// Output:
	// found c
	// in left half: 2
}

// ExampleFromParts round-trips a snapshot through its four planes —
// exactly what the durable layer does when it seals a checkpoint run
// and rebuilds the snapshot on recovery.
func ExampleFromParts() {
	qt := quadtree.MustNew[int](quadtree.Config{Capacity: 2})
	for i, p := range []geom.Point{
		geom.Pt(0.25, 0.25), geom.Pt(0.75, 0.25), geom.Pt(0.25, 0.75),
	} {
		if _, err := qt.Insert(p, i); err != nil {
			fmt.Println(err)
			return
		}
	}
	f, err := linearquad.Freeze(qt)
	if err != nil {
		fmt.Println(err)
		return
	}

	// Serialize the planes (to a run file, in the real system) ...
	codes, starts := f.Codes(), f.Starts()
	pts, vals := f.Points(), f.Values()

	// ... and reassemble. FromParts re-validates every invariant, so
	// corrupt planes fail here instead of answering queries wrongly.
	g, err := linearquad.FromParts(f.Region(), f.Depth(), codes, starts, pts, vals)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("len:", g.Len(), "leaves:", g.Leaves())
	if v, ok := g.Get(geom.Pt(0.75, 0.25)); ok {
		fmt.Println("value:", v)
	}
	// Output:
	// len: 3 leaves: 4
	// value: 1
}

// ExampleBigMin shows the Z-order range-jump primitive: inside a scan
// of the Morton interval [zmin, zmax], a code that falls outside the
// query rectangle is advanced past the gap in one step instead of
// walking every intermediate code.
func ExampleBigMin() {
	// Query: the 4x4 grid cells with x in [2,3] and y in [2,3].
	zmin := linearquad.Interleave(2, 2) // 12
	zmax := linearquad.Interleave(3, 3) // 15
	// A scan positioned at code 5 (cell 1,1 — outside the query) asks
	// where the query range resumes.
	next, ok := linearquad.BigMin(5, zmin, zmax)
	x, y := linearquad.Deinterleave(next)
	fmt.Println(next, ok, "-> cell", x, y)
	// Output:
	// 12 true -> cell 2 2
}
