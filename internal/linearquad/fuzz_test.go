package linearquad

import "testing"

// FuzzMortonRoundTrip checks the three properties the snapshot read
// engine leans on: Interleave/Deinterleave are exact inverses, distinct
// cells get distinct codes, and the code order respects the coordinate
// partial order (x1 ≤ x2 ∧ y1 ≤ y2 ⇒ z1 ≤ z2), which is what makes a
// sorted code array answer rectangle queries.
func FuzzMortonRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0), uint32(0), uint32(0))
	f.Add(uint32(0), uint32(0), uint32(1), uint32(1))
	f.Add(uint32(3), uint32(5), uint32(3), uint32(5))
	f.Add(uint32(1)<<31, uint32(1)<<31, ^uint32(0), ^uint32(0))
	f.Add(uint32(0xdeadbeef), uint32(0xcafef00d), uint32(0x12345678), uint32(0x9abcdef0))
	f.Fuzz(func(t *testing.T, x1, y1, x2, y2 uint32) {
		z1 := Interleave(x1, y1)
		if gx, gy := Deinterleave(z1); gx != x1 || gy != y1 {
			t.Fatalf("Deinterleave(Interleave(%d, %d)) = (%d, %d)", x1, y1, gx, gy)
		}
		z2 := Interleave(x2, y2)
		if (x1 != x2 || y1 != y2) && z1 == z2 {
			t.Fatalf("distinct cells (%d,%d) and (%d,%d) share code %#x", x1, y1, x2, y2, z1)
		}
		if x1 <= x2 && y1 <= y2 && z1 > z2 {
			t.Fatalf("order violated: (%d,%d) ≤ (%d,%d) but Interleave gives %#x > %#x", x1, y1, x2, y2, z1, z2)
		}
	})
}
