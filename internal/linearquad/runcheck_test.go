package linearquad

import (
	"math/rand"
	"testing"

	"popana/internal/geom"
	"popana/internal/quadtree"
)

// TestCountRangeRandomEquivalence cross-checks CountRange against a
// brute-force scan over many random trees and windows, stressing the
// short-run cutoff and gallop seeks across bucket sizes and skews.
func TestCountRangeRandomEquivalence(t *testing.T) {
	region := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		m := []int{1, 2, 4, 8, 32}[trial%5]
		tr := quadtree.MustNew[int](quadtree.Config{Capacity: m, Region: region})
		n := 50 + rng.Intn(4000)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := 0; i < n; i++ {
			if trial%2 == 0 {
				xs[i], ys[i] = rng.Float64(), rng.Float64()
			} else { // clustered
				cx, cy := 0.3+0.4*float64(trial%3)/3, 0.6
				xs[i] = cx + rng.NormFloat64()*0.05
				ys[i] = cy + rng.NormFloat64()*0.05
				if xs[i] < 0 || xs[i] >= 1 || ys[i] < 0 || ys[i] >= 1 {
					xs[i], ys[i] = rng.Float64(), rng.Float64()
				}
			}
			if _, err := tr.Insert(geom.Point{X: xs[i], Y: ys[i]}, i); err != nil {
				t.Fatal(err)
			}
		}
		f, err := Freeze(tr)
		if err != nil {
			t.Fatal(err)
		}
		for w := 0; w < 40; w++ {
			x0, y0 := rng.Float64(), rng.Float64()
			q := geom.Rect{MinX: x0, MinY: y0,
				MaxX: x0 + rng.Float64()*0.5, MaxY: y0 + rng.Float64()*0.5}
			want := 0
			for i := 0; i < n; i++ {
				if xs[i] >= q.MinX && xs[i] <= q.MaxX && ys[i] >= q.MinY && ys[i] <= q.MaxY {
					want++
				}
			}
			if got := f.CountRange(q); got != want {
				t.Fatalf("trial %d m=%d window %d: CountRange=%d brute=%d", trial, m, w, got, want)
			}
		}
	}
}
