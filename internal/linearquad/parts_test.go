package linearquad

import (
	"math/rand"
	"sort"
	"testing"

	"popana/internal/geom"
	"popana/internal/quadtree"
)

// buildFrozen freezes a tree of n seeded random points.
func buildFrozen(t *testing.T, seed int64, n int) (*Frozen[int], *quadtree.Tree[int]) {
	t.Helper()
	tr, err := quadtree.New[int](quadtree.Config{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		if _, err := tr.Insert(geom.Pt(rng.Float64(), rng.Float64()), i); err != nil {
			t.Fatal(err)
		}
	}
	f, err := Freeze(tr)
	if err != nil {
		t.Fatal(err)
	}
	return f, tr
}

func TestPartsRoundTrip(t *testing.T) {
	f, _ := buildFrozen(t, 42, 500)
	g, err := FromParts(f.Region(), f.Depth(), f.Codes(), f.Starts(), f.Points(), f.Values())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != f.Len() || g.Leaves() != f.Leaves() || g.Depth() != f.Depth() {
		t.Fatalf("shape: got %d/%d/%d, want %d/%d/%d",
			g.Len(), g.Leaves(), g.Depth(), f.Len(), f.Leaves(), f.Depth())
	}
	// Reconstructed snapshot answers queries identically.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		x, y := rng.Float64(), rng.Float64()
		w := rng.Float64() * 0.3
		q := geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + w}
		var want, got []int
		f.Range(q, func(_ geom.Point, v int) bool { want = append(want, v); return true })
		g.Range(q, func(_ geom.Point, v int) bool { got = append(got, v); return true })
		sort.Ints(want)
		sort.Ints(got)
		if len(want) != len(got) {
			t.Fatalf("query %d: %d vs %d results", i, len(got), len(want))
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("query %d result %d: %d vs %d", i, j, got[j], want[j])
			}
		}
	}
}

func TestFromPartsEmpty(t *testing.T) {
	// A freeze of an empty tree has one leaf (the root) and no entries.
	f, _ := buildFrozen(t, 1, 0)
	g, err := FromParts(f.Region(), f.Depth(), f.Codes(), f.Starts(), f.Points(), f.Values())
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 || g.Leaves() != f.Leaves() {
		t.Fatalf("empty round-trip: len=%d leaves=%d", g.Len(), g.Leaves())
	}
}

func TestFromPartsRejectsBrokenInvariants(t *testing.T) {
	f, _ := buildFrozen(t, 42, 200)
	region, depth := f.Region(), f.Depth()
	clone := func() ([]uint64, []int32, []geom.Point, []int) {
		return append([]uint64(nil), f.Codes()...),
			append([]int32(nil), f.Starts()...),
			append([]geom.Point(nil), f.Points()...),
			append([]int(nil), f.Values()...)
	}
	cases := map[string]func() ([]uint64, []int32, []geom.Point, []int, int){
		"bad-depth": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			return c, s, p, v, MaxDepth + 1
		},
		"nonzero-first-code": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			c[0] = 1
			return c, s, p, v, depth
		},
		"wrong-sentinel": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			c[len(c)-1]++
			return c, s, p, v, depth
		},
		"non-increasing-codes": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			if len(c) < 3 {
				t.Skip("tree too small")
			}
			c[1] = c[2]
			return c, s, p, v, depth
		},
		"starts-decrease": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			s[len(s)-2] = s[len(s)-1] + 1
			return c, s, p, v, depth
		},
		"final-start-mismatch": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			s[len(s)-1]--
			return c, s, p, v, depth
		},
		"length-mismatch": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			return c, s[:len(s)-1], p, v, depth
		},
		"values-mismatch": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			return c, s, p, v[:len(v)-1], depth
		},
		"point-outside-region": func() ([]uint64, []int32, []geom.Point, []int, int) {
			c, s, p, v := clone()
			p[0] = geom.Pt(region.MaxX+1, region.MaxY+1)
			return c, s, p, v, depth
		},
	}
	for name, build := range cases {
		t.Run(name, func(t *testing.T) {
			c, s, p, v, d := build()
			if _, err := FromParts(region, d, c, s, p, v); err == nil {
				t.Fatal("FromParts accepted broken planes")
			}
		})
	}
}

func TestCellCodeMatchesFreezeLeafOrder(t *testing.T) {
	// Within every frozen leaf, each point's depth-D cell code must fall
	// inside the leaf's [codes[i], codes[i+1]) interval — that is the
	// invariant that lets the durable layer re-sort entries by CellCode
	// and recover the exact leaf grouping.
	f, _ := buildFrozen(t, 99, 1000)
	codes, starts, pts := f.Codes(), f.Starts(), f.Points()
	for leaf := 0; leaf < f.Leaves(); leaf++ {
		for i := starts[leaf]; i < starts[leaf+1]; i++ {
			c := CellCode(pts[i], f.Region(), f.Depth())
			if c < codes[leaf] || c >= codes[leaf+1] {
				t.Fatalf("leaf %d point %d: cell code %d outside [%d, %d)",
					leaf, i, c, codes[leaf], codes[leaf+1])
			}
		}
	}
}

func TestCellCodeMonotoneAcrossLeaves(t *testing.T) {
	// Sorting the flat entry array by max-depth CellCode preserves the
	// leaf grouping: deeper codes refine, never reorder, the grid.
	f, _ := buildFrozen(t, 7, 800)
	starts, pts := f.Starts(), f.Points()
	prevLeafMax := uint64(0)
	first := true
	for leaf := 0; leaf+1 < len(starts); leaf++ {
		var lo, hi uint64
		seen := false
		for i := starts[leaf]; i < starts[leaf+1]; i++ {
			c := CellCode(pts[i], f.Region(), MaxDepth)
			if !seen || c < lo {
				lo = c
			}
			if !seen || c > hi {
				hi = c
			}
			seen = true
		}
		if !seen {
			continue
		}
		if !first && lo < prevLeafMax {
			t.Fatalf("leaf %d: max-depth codes overlap previous leaf (%d < %d)", leaf, lo, prevLeafMax)
		}
		prevLeafMax = hi
		first = false
	}
}

func TestCellCodeDepthZero(t *testing.T) {
	if c := CellCode(geom.Pt(0.9, 0.9), geom.UnitSquare, 0); c != 0 {
		t.Fatalf("depth-0 cell code = %d, want 0", c)
	}
}
