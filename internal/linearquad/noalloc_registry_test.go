package linearquad

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"popana/internal/analysis/allocfree"
)

// TestNoallocRegistry mechanically ties TestZeroAlloc's kernel table
// to the //popvet:noalloc directive set: every kernel the dynamic
// test pins at 0 allocs/op must also carry the directive, so the
// allocfree analyzer audits it statically. The check parses both
// sides from source — renaming a kernel, adding a table row, or
// dropping a directive breaks it without any list to hand-maintain.
func TestNoallocRegistry(t *testing.T) {
	fset := token.NewFileSet()
	pinned := pinnedKernels(t, fset)
	if len(pinned) < 5 {
		t.Fatalf("parsed only %d pinned kernels from TestZeroAlloc; table extraction is broken", len(pinned))
	}
	marked := markedFuncs(t, fset)
	if len(marked) == 0 {
		t.Fatal("no " + allocfree.Directive + " directives found in the package")
	}
	for _, name := range pinned {
		if !marked[name] {
			t.Errorf("TestZeroAlloc pins %s at 0 allocs/op, but it does not carry %s", name, allocfree.Directive)
		}
	}
}

// pinnedKernels extracts the method names from TestZeroAlloc's cases
// table: each row is {"Name", func() { ... }}.
func pinnedKernels(t *testing.T, fset *token.FileSet) []string {
	f, err := parser.ParseFile(fset, "zeroalloc_test.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Name.Name != "TestZeroAlloc" {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			row, ok := n.(*ast.CompositeLit)
			if !ok || len(row.Elts) != 2 {
				return true
			}
			lit, ok := row.Elts[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err == nil && name != "" {
				names = append(names, name)
			}
			return true
		})
	}
	return names
}

// markedFuncs collects the names of every function in the package's
// non-test files whose doc comment carries the noalloc directive.
func markedFuncs(t *testing.T, fset *token.FileSet) map[string]bool {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	marked := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(".", name), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && allocfree.HasDirective(fn) {
				marked[fn.Name.Name] = true
			}
		}
	}
	return marked
}
