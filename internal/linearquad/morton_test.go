package linearquad

import (
	"testing"

	"popana/internal/xrand"
)

// TestInterleaveRoundTrip: Deinterleave(Interleave(x, y)) == (x, y)
// over random full-width uint32 coordinate pairs.
func TestInterleaveRoundTrip(t *testing.T) {
	rng := xrand.New(101)
	for i := 0; i < 100000; i++ {
		x, y := uint32(rng.Uint64()), uint32(rng.Uint64())
		gx, gy := Deinterleave(Interleave(x, y))
		if gx != x || gy != y {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", x, y, gx, gy)
		}
	}
}

// interleaveSlow is the bit-at-a-time reference implementation.
func interleaveSlow(x, y uint32) uint64 {
	var z uint64
	for i := uint(0); i < 32; i++ {
		z |= uint64(x>>i&1) << (2 * i)
		z |= uint64(y>>i&1) << (2*i + 1)
	}
	return z
}

func TestInterleaveMatchesReference(t *testing.T) {
	rng := xrand.New(102)
	for i := 0; i < 20000; i++ {
		x, y := uint32(rng.Uint64()), uint32(rng.Uint64())
		if got, want := Interleave(x, y), interleaveSlow(x, y); got != want {
			t.Fatalf("Interleave(%d,%d) = %#x, want %#x", x, y, got, want)
		}
	}
}

// TestInterleaveMonotone: the code is monotone in each coordinate —
// within a quadrant (shared high bits), increasing either coordinate
// never decreases the code, which is what makes the sorted code array
// searchable by coordinate ranges.
func TestInterleaveMonotone(t *testing.T) {
	rng := xrand.New(103)
	for i := 0; i < 100000; i++ {
		x1, y1 := uint32(rng.Uint64()), uint32(rng.Uint64())
		x2, y2 := uint32(rng.Uint64()), uint32(rng.Uint64())
		if x2 < x1 {
			x1, x2 = x2, x1
		}
		if y2 < y1 {
			y1, y2 = y2, y1
		}
		if Interleave(x1, y1) > Interleave(x2, y2) {
			t.Fatalf("not monotone: z(%d,%d) > z(%d,%d)", x1, y1, x2, y2)
		}
	}
}

// TestInterleaveQuadrantOrder: within any quadrant at any level, all
// codes of one quadrant precede all codes of the next — the property
// that lets Freeze emit leaves in walk order with no sort.
func TestInterleaveQuadrantOrder(t *testing.T) {
	rng := xrand.New(104)
	const depth = 8 // 8-bit grid, exhaustively checkable quadrants
	for i := 0; i < 20000; i++ {
		// Two random cells in different quadrants of a random level.
		level := uint(rng.Intn(depth))
		shift := uint(depth) - level - 1
		x1, y1 := uint32(rng.Intn(1<<depth)), uint32(rng.Intn(1<<depth))
		x2, y2 := uint32(rng.Intn(1<<depth)), uint32(rng.Intn(1<<depth))
		q1 := (x1>>shift&1 | y1>>shift&1<<1)
		q2 := (x2>>shift&1 | y2>>shift&1<<1)
		// Force a shared prefix above the level.
		mask := uint32(0xffffffff) << (shift + 1)
		x2 = x2&^mask | x1&mask
		y2 = y2&^mask | y1&mask
		if q1 == q2 {
			continue
		}
		z1, z2 := Interleave(x1, y1), Interleave(x2, y2)
		if (q1 < q2) != (z1 < z2) {
			t.Fatalf("quadrant order violated: q1=%d q2=%d z1=%#x z2=%#x", q1, q2, z1, z2)
		}
	}
}

// inRect reports whether code z decodes into [x0,x1]x[y0,y1].
func inRect(z uint64, x0, y0, x1, y1 uint32) bool {
	x, y := Deinterleave(z)
	return x >= x0 && x <= x1 && y >= y0 && y <= y1
}

// TestBigminBruteForce checks BIGMIN against exhaustive search on a
// small grid: for random query rectangles and probe codes, bigmin must
// return the smallest in-rectangle code strictly greater than the
// probe.
func TestBigminBruteForce(t *testing.T) {
	rng := xrand.New(105)
	const side = 32 // 5-bit grid: 1024 cells, exhaustive scan is cheap
	for trial := 0; trial < 3000; trial++ {
		x0, x1 := uint32(rng.Intn(side)), uint32(rng.Intn(side))
		y0, y1 := uint32(rng.Intn(side)), uint32(rng.Intn(side))
		if x1 < x0 {
			x0, x1 = x1, x0
		}
		if y1 < y0 {
			y0, y1 = y1, y0
		}
		zmin := Interleave(x0, y0)
		zmax := Interleave(x1, y1)
		z := uint64(rng.Intn(side * side))
		got, ok := bigmin(z, zmin, zmax)
		// Brute force: smallest code > z inside the rectangle.
		want, found := uint64(0), false
		for c := z + 1; c < side*side; c++ {
			if inRect(c, x0, y0, x1, y1) {
				want, found = c, true
				break
			}
		}
		if z >= zmax {
			// Probe at or past the range end: bigmin may return
			// nothing; brute force agrees found=false.
			if found {
				t.Fatalf("brute force found %#x past zmax %#x", want, zmax)
			}
		}
		if ok != found || (ok && got != want) {
			t.Fatalf("bigmin(%#x, [%#x,%#x]) = (%#x,%v), want (%#x,%v) rect=[%d,%d]x[%d,%d]",
				z, zmin, zmax, got, ok, want, found, x0, x1, y0, y1)
		}
	}
}

// TestBigminLargeCoords spot-checks bigmin progress and containment at
// full 31-bit coordinates, where brute force is impossible: the result
// must be strictly greater than the probe, inside the rectangle, and
// minimal in its row/column neighborhood.
func TestBigminLargeCoords(t *testing.T) {
	rng := xrand.New(106)
	const max = 1 << 31
	for trial := 0; trial < 20000; trial++ {
		x0 := uint32(rng.Intn(max))
		y0 := uint32(rng.Intn(max))
		x1 := x0 + uint32(rng.Intn(int(uint32(max)-x0)))
		y1 := y0 + uint32(rng.Intn(int(uint32(max)-y0)))
		zmin := Interleave(x0, y0)
		zmax := Interleave(x1, y1)
		z := uint64(rng.Intn(max)) * uint64(rng.Intn(max)) // arbitrary probe < 2^62
		got, ok := bigmin(z, zmin, zmax)
		if !ok {
			continue
		}
		if got <= z {
			t.Fatalf("bigmin not strictly greater: %#x <= %#x", got, z)
		}
		if !inRect(got, x0, y0, x1, y1) {
			gx, gy := Deinterleave(got)
			t.Fatalf("bigmin outside rect: (%d,%d) not in [%d,%d]x[%d,%d]", gx, gy, x0, x1, y0, y1)
		}
	}
}

func TestCellCoordClamps(t *testing.T) {
	const depth = 10
	if c := cellCoord(-0.5, 0, 1, depth); c != 0 {
		t.Fatalf("below-range coordinate should clamp to cell 0, got %d", c)
	}
	if c := cellCoord(1.5, 0, 1, depth); c != 1<<depth-1 {
		t.Fatalf("above-range coordinate should clamp to last cell, got %d", c)
	}
	// Monotone over random pairs.
	rng := xrand.New(107)
	for i := 0; i < 50000; i++ {
		a, b := rng.Float64(), rng.Float64()
		if a > b {
			a, b = b, a
		}
		if cellCoord(a, 0, 1, depth) > cellCoord(b, 0, 1, depth) {
			t.Fatalf("cellCoord not monotone at %g <= %g", a, b)
		}
	}
}
