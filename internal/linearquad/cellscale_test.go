package linearquad

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// TestCellScaleFastPathEligibility checks which extents the fast path
// accepts: exactly-representable dyadic intervals qualify, everything
// else must keep the descent.
func TestCellScaleFastPathEligibility(t *testing.T) {
	cases := []struct {
		lo, hi float64
		fast   bool
	}{
		{0, 1, true},
		{0, 1024, true},
		{-1, 1, false}, // width 2 but lo = -0.5 * width: i not integer? lo/w = -0.5 -> reject
		{-2, 2, false}, // lo/w = -0.5
		{-1, 0, true},
		{-4, 4, false},    // lo/w = -0.5
		{-4, 0, true},     // w=4, i=-1
		{2, 4, true},      // w=2, i=1
		{0.25, 0.5, true}, // w=0.25, i=1
		{0, 0.1, false},   // width not a power of two
		{0.1, 1.1, false}, // lo not a multiple of the width
		{0, 3, false},
		{1 << 21, 1<<21 + 1, false}, // |i| over the 2^20 bound
		{0, math.Inf(1), false},
		{5, 5, false}, // empty
	}
	for _, c := range cases {
		cs := makeCellScale(c.lo, c.hi, 8)
		if cs.fast != c.fast {
			t.Errorf("makeCellScale(%v, %v): fast=%v, want %v", c.lo, c.hi, cs.fast, c.fast)
		}
	}
}

// checkCoord requires the cellScale mapping to agree with the descent
// bit for bit.
func checkCoord(t *testing.T, lo, hi float64, depth int, x float64) {
	t.Helper()
	cs := makeCellScale(lo, hi, depth)
	got := cs.coord(x)
	want := cellCoord(x, lo, hi, depth)
	if got != want {
		t.Fatalf("coord(%v) over [%v, %v) depth %d: fast path %d, descent %d (fast=%v)",
			x, lo, hi, depth, got, want, cs.fast)
	}
}

// TestCellScaleEdgeCases hits the clamp and special-value paths the
// fuzzer may take a while to find.
func TestCellScaleEdgeCases(t *testing.T) {
	for _, depth := range []int{0, 1, 5, 31} {
		for _, r := range [][2]float64{{0, 1}, {-1024, 1024}, {-4, 0}, {0.25, 0.5}, {3, 4}} {
			lo, hi := r[0], r[1]
			w := hi - lo
			xs := []float64{
				lo, hi, lo + w/2, math.Nextafter(lo+w/2, lo), math.Nextafter(lo+w/2, hi),
				lo - w, hi + w, math.Nextafter(lo, -1e300), math.Nextafter(hi, -1e300),
				math.NaN(), math.Inf(1), math.Inf(-1),
				0, math.Copysign(0, -1), 5e-324, -5e-324, minNormal / 2, -minNormal / 2,
			}
			for _, x := range xs {
				checkCoord(t, lo, hi, depth, x)
			}
		}
	}
}

// TestCellCoderMatchesCellCode checks the exported coder against the
// definitional per-point CellCode on random shard-like regions.
func TestCellCoderMatchesCellCode(t *testing.T) {
	rng := xrand.New(17)
	regions := []geom.Rect{
		geom.UnitSquare,
		geom.R(0.25, 0.5, 0.5, 0.75), // a level-2 cell
		geom.R(0.1, 0.1, 0.9, 0.35),  // not dyadic: descent on both axes
	}
	for _, region := range regions {
		coder := NewCellCoder(region, MaxDepth)
		for i := 0; i < 2000; i++ {
			p := geom.Pt(
				region.MinX+(region.MaxX-region.MinX)*rng.Float64(),
				region.MinY+(region.MaxY-region.MinY)*rng.Float64(),
			)
			if got, want := coder.Code(p), CellCode(p, region, MaxDepth); got != want {
				t.Fatalf("region %v: coder %d, CellCode %d at %v", region, got, want, p)
			}
		}
	}
}

// FuzzCellCoordFastPath fuzzes the fast path against the midpoint
// descent over arbitrary regions (representable or not — the
// non-representable ones must fall back and still agree trivially) and
// arbitrary coordinates, including out-of-range and special values.
func FuzzCellCoordFastPath(f *testing.F) {
	f.Add(0.0, 1.0, 16, 0.5)
	f.Add(0.0, 1.0, 31, 0.9999999999999999)
	f.Add(-1024.0, 1024.0, 20, -5e-324)
	f.Add(0.25, 0.5, 31, 0.3)
	f.Add(0.1, 0.9, 16, 0.25)       // non-representable extent: descent fallback
	f.Add(3.0, 4.0, 31, 2.0)        // clamp below
	f.Add(0.0, 1.0, 8, math.Inf(1)) // clamp above
	f.Add(0.0, 0.0078125, 31, 1e-300)
	f.Fuzz(func(t *testing.T, lo, hi float64, depth int, x float64) {
		if depth < 0 || depth > MaxDepth {
			depth = ((depth % (MaxDepth + 1)) + MaxDepth + 1) % (MaxDepth + 1)
		}
		cs := makeCellScale(lo, hi, depth)
		got := cs.coord(x)
		want := cellCoord(x, lo, hi, depth)
		if got != want {
			t.Fatalf("coord(%v) over [%v, %v) depth %d: fast path %d, descent %d (fast=%v)",
				x, lo, hi, depth, got, want, cs.fast)
		}
	})
}
