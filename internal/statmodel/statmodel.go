// Package statmodel implements the direct statistical analysis that the
// paper positions population analysis against: the exact expected
// occupancy profile of a PR tree over n uniformly distributed points,
// in the style of Fagin et al.'s analysis of extendible hashing [Fagi79].
//
// For a node capacity m and fanout F, let L_j(n) be the expected number
// of leaf blocks of occupancy j in the tree built over n uniform points.
// Conditioning on the multinomial distribution of the n points over the
// F congruent children (marginally Binomial(n, 1/F) each, and linearity
// of expectation lets us use the marginal law):
//
//	L_j(n) = [j == n]                              for n <= m,
//	L_j(n) = F · Σ_k  B(n, 1/F)(k) · L_j(k)        for n  > m,
//
// where the k = n self-term (all points in one child) is moved to the
// left side, exactly as the paper's recurrence for t_m handles recursive
// splitting:
//
//	L_j(n) · (1 − F·F^(−n)) = F · Σ_{k<n} B(n,1/F)(k) · L_j(k).
//
// The resulting sequence of state vectors d̄_n = L(n)/Σ_j L_j(n) is the
// object whose limit the statistical approach would define as the
// expected distribution; computing it exposes the paper's Section IV
// claim that the limit does not exist — the average occupancy
// n/Σ_j L_j(n) oscillates without damping, with period one decade of
// log_F (phasing).
//
// The computation is O(N²·m) for all n up to N, which is exactly the
// "considerable mathematical effort" the population model replaces with
// an (m+1)-dimensional eigenproblem.
package statmodel

import (
	"fmt"

	"popana/internal/binom"
	"popana/internal/fmath"
)

// Analysis holds the exact expected leaf-occupancy profile for all tree
// sizes up to N.
type Analysis struct {
	Capacity int
	Fanout   int
	// L[n][j] is the expected number of leaves with occupancy j in a
	// tree of n uniform points, j = 0..Capacity; n = 0..N.
	L [][]float64
}

// New computes the exact analysis for node capacity m, fanout F, and all
// point counts up to maxN.
func New(capacity, fanout, maxN int) (*Analysis, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("statmodel: capacity %d < 1", capacity)
	}
	if fanout < 2 {
		return nil, fmt.Errorf("statmodel: fanout %d < 2", fanout)
	}
	if maxN < 0 {
		return nil, fmt.Errorf("statmodel: maxN %d < 0", maxN)
	}
	a := &Analysis{Capacity: capacity, Fanout: fanout}
	a.L = make([][]float64, maxN+1)
	p := 1 / float64(fanout)
	for n := 0; n <= maxN; n++ {
		row := make([]float64, capacity+1)
		if n <= capacity {
			row[n] = 1
			a.L[n] = row
			continue
		}
		// pmf over k = points landing in one particular child.
		pmf := binom.Dist(n, p)
		// selfCoef is the coefficient of L(n) on the right-hand side:
		// F · P[all n points in one given child] = F^(1-n).
		selfCoef := float64(fanout) * pmf[n]
		scale := 1 / (1 - selfCoef)
		for k := 0; k < n; k++ {
			if fmath.Zero(pmf[k]) {
				continue
			}
			w := float64(fanout) * pmf[k] * scale
			lk := a.L[k]
			for j := 0; j <= capacity; j++ {
				row[j] += w * lk[j]
			}
		}
		a.L[n] = row
	}
	return a, nil
}

// ExpectedLeaves returns the expected total number of leaf blocks for a
// tree of n points.
func (a *Analysis) ExpectedLeaves(n int) float64 {
	s := 0.0
	for _, v := range a.L[n] {
		s += v
	}
	return s
}

// StateVector returns d̄_n — the expected distribution of leaf
// occupancies for a tree of n points, normalized to sum to one.
func (a *Analysis) StateVector(n int) []float64 {
	total := a.ExpectedLeaves(n)
	out := make([]float64, a.Capacity+1)
	if fmath.Zero(total) {
		return out
	}
	for j, v := range a.L[n] {
		out[j] = v / total
	}
	return out
}

// AverageOccupancy returns the exact expected average occupancy
// n / E[leaves] for a tree of n points. (Strictly this is the ratio of
// expectations, the same estimator the paper's simulations report.)
func (a *Analysis) AverageOccupancy(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(n) / a.ExpectedLeaves(n)
}

// CycleMeanStateVector returns the average of the exact state vectors
// d̄_n over n in [lo, hi], weighting each n equally on a log grid (the
// natural measure for a log-periodic sequence). Comparing it against
// the population model's ē separates the aging bias from the phasing
// oscillation: phasing averages out over a full cycle, aging does not.
func (a *Analysis) CycleMeanStateVector(lo, hi int) []float64 {
	if lo < 1 {
		lo = 1
	}
	if hi >= len(a.L) {
		hi = len(a.L) - 1
	}
	out := make([]float64, a.Capacity+1)
	count := 0
	// Log grid: multiply by ~2^(1/8) per step.
	for n := lo; n <= hi; {
		v := a.StateVector(n)
		for j := range out {
			out[j] += v[j]
		}
		count++
		next := n * 1090 / 1000
		if next == n {
			next = n + 1
		}
		n = next
	}
	if count == 0 {
		return out
	}
	for j := range out {
		out[j] /= float64(count)
	}
	return out
}

// OscillationStats summarizes the non-convergence of the sequence d̄_n.
type OscillationStats struct {
	// MaxOccupancy and MinOccupancy are the extrema of the average
	// occupancy over the last full period examined.
	MaxOccupancy, MinOccupancy float64
	// Amplitude is their difference — phasing predicts this does not
	// decay as n grows.
	Amplitude float64
}

// Oscillation measures the occupancy oscillation over n in
// [lo, hi] (one or more periods of factor-F growth).
func (a *Analysis) Oscillation(lo, hi int) OscillationStats {
	if lo < 1 {
		lo = 1
	}
	if hi >= len(a.L) {
		hi = len(a.L) - 1
	}
	st := OscillationStats{MinOccupancy: a.AverageOccupancy(lo), MaxOccupancy: a.AverageOccupancy(lo)}
	for n := lo + 1; n <= hi; n++ {
		occ := a.AverageOccupancy(n)
		if occ > st.MaxOccupancy {
			st.MaxOccupancy = occ
		}
		if occ < st.MinOccupancy {
			st.MinOccupancy = occ
		}
	}
	st.Amplitude = st.MaxOccupancy - st.MinOccupancy
	return st
}
