package statmodel

import (
	"math"
	"testing"

	"popana/internal/dist"
	"popana/internal/quadtree"
	"popana/internal/xrand"
)

func TestBaseCases(t *testing.T) {
	a, err := New(3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	// n <= m: exactly one leaf with occupancy n.
	for n := 0; n <= 3; n++ {
		for j := 0; j <= 3; j++ {
			want := 0.0
			if j == n {
				want = 1
			}
			if got := a.L[n][j]; got != want {
				t.Errorf("L_%d(%d) = %v, want %v", j, n, got, want)
			}
		}
		if got := a.ExpectedLeaves(n); got != 1 {
			t.Errorf("E[leaves](%d) = %v", n, got)
		}
	}
}

func TestMassConservation(t *testing.T) {
	// Σ_j j·L_j(n) = n: every point is in exactly one leaf.
	a, err := New(4, 4, 500)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{5, 17, 100, 499} {
		items := 0.0
		for j, l := range a.L[n] {
			items += float64(j) * l
		}
		if math.Abs(items-float64(n))/float64(n) > 1e-9 {
			t.Errorf("n=%d: expected items %v", n, items)
		}
	}
}

func TestLeafCountArithmetic(t *testing.T) {
	// Splits create leaves in multiples of F-1 plus 1:
	// E[leaves] = 1 + (F-1)·E[splits], so (E[leaves]-1)/(F-1) >= 0 and
	// leaves grow monotonically in n for n > m.
	a, err := New(2, 4, 400)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for n := 3; n <= 400; n++ {
		l := a.ExpectedLeaves(n)
		if l < prev-1e-9 {
			t.Fatalf("expected leaves decreased at n=%d: %v < %v", n, l, prev)
		}
		prev = l
	}
}

func TestMatchesSimulation(t *testing.T) {
	// The exact recursion must match the simulated PR quadtree
	// (averaged over many trees) within Monte Carlo error.
	const m, n, trials = 2, 200, 60
	a, err := New(m, 4, n)
	if err != nil {
		t.Fatal(err)
	}
	var leaves float64
	for trial := 0; trial < trials; trial++ {
		rng := xrand.New(uint64(trial) + 1000)
		tr := quadtree.MustNew[struct{}](quadtree.Config{Capacity: m})
		src := dist.NewUniform(tr.Region(), rng)
		for tr.Len() < n {
			if _, err := tr.Insert(src.Next(), struct{}{}); err != nil {
				t.Fatal(err)
			}
		}
		leaves += float64(tr.Census().Leaves)
	}
	simLeaves := leaves / trials
	exact := a.ExpectedLeaves(n)
	if math.Abs(simLeaves-exact)/exact > 0.05 {
		t.Errorf("simulated E[leaves] = %v, exact %v", simLeaves, exact)
	}
}

func TestStateVectorNormalized(t *testing.T) {
	a, err := New(8, 4, 300)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{10, 100, 300} {
		v := a.StateVector(n)
		sum := 0.0
		for _, p := range v {
			if p < 0 {
				t.Fatalf("negative proportion at n=%d", n)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("state vector at n=%d sums to %v", n, sum)
		}
	}
}

func TestPhasingDoesNotDamp(t *testing.T) {
	// Section IV: the oscillation amplitude of the occupancy sequence
	// does not decay with n for a uniform distribution (scale
	// invariance). Compare amplitude over [256,1024] and [1024,4096].
	a, err := New(8, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	mid := a.Oscillation(256, 1024)
	late := a.Oscillation(1024, 4096)
	if mid.Amplitude < 0.3 {
		t.Fatalf("mid-range amplitude %v suspiciously small", mid.Amplitude)
	}
	if late.Amplitude < 0.75*mid.Amplitude {
		t.Errorf("amplitude damping: mid %v, late %v — phasing should persist", mid.Amplitude, late.Amplitude)
	}
	// Period: maxima near powers of four apart. The occupancy at 90
	// and at 4·90 = 362ish should both be near local maxima (paper's
	// Table 4 shows 90 → 4.15 and 1448 → 4.13, quadrupling twice).
	occ90 := a.AverageOccupancy(90)
	occ360 := a.AverageOccupancy(360)
	if math.Abs(occ90-occ360) > 0.25 {
		t.Errorf("log-periodicity broken: occ(90)=%v, occ(360)=%v", occ90, occ360)
	}
}

func TestMatchesPaperTable4Shape(t *testing.T) {
	// The exact analysis should land near the paper's Table 4 values
	// (which are 10-tree averages, so allow a generous band).
	a, err := New(8, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	paper := map[int]float64{
		64: 3.79, 90: 4.15, 128: 3.64, 181: 3.33, 256: 3.80,
		362: 3.99, 512: 3.53, 724: 3.35, 1024: 3.84, 1448: 4.13,
		2048: 3.65, 2896: 3.30, 4096: 3.81,
	}
	for n, want := range paper {
		got := a.AverageOccupancy(n)
		if math.Abs(got-want) > 0.30 {
			t.Errorf("n=%d: exact occupancy %v, paper measured %v", n, got, want)
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New(0, 4, 10); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := New(1, 1, 10); err == nil {
		t.Error("fanout 1 accepted")
	}
	if _, err := New(1, 4, -1); err == nil {
		t.Error("negative maxN accepted")
	}
}

func TestFanout2(t *testing.T) {
	// The recursion generalizes to other fanouts; sanity-check mass
	// conservation for a binary structure.
	a, err := New(3, 2, 200)
	if err != nil {
		t.Fatal(err)
	}
	items := 0.0
	for j, l := range a.L[200] {
		items += float64(j) * l
	}
	if math.Abs(items-200)/200 > 1e-9 {
		t.Errorf("fanout-2 mass %v", items)
	}
}

func TestOscillationBoundsClamped(t *testing.T) {
	a, err := New(2, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	st := a.Oscillation(-5, 500) // out-of-range bounds are clamped
	if st.Amplitude < 0 {
		t.Fatal("negative amplitude")
	}
}

func TestCycleMeanStateVector(t *testing.T) {
	a, err := New(4, 4, 2048)
	if err != nil {
		t.Fatal(err)
	}
	v := a.CycleMeanStateVector(512, 2048)
	sum := 0.0
	for _, p := range v {
		if p < 0 {
			t.Fatal("negative cycle-mean component")
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("cycle mean sums to %v", sum)
	}
	// Out-of-range bounds clamp without panicking.
	_ = a.CycleMeanStateVector(-5, 1<<30)
}
