// Package vecmat implements the small dense linear algebra kernel needed
// by the population model: vectors, row-major matrices, and an
// LU-decomposition linear solver used by the Newton iteration in
// internal/solver.
//
// The systems involved are tiny (the transform matrix for node capacity m
// is (m+1)×(m+1), with m ≤ a few dozen), so clarity wins over blocking or
// SIMD tricks. All operations allocate their results; none mutate their
// inputs unless the name says so.
package vecmat

import (
	"fmt"
	"math"
	"strings"

	"popana/internal/fmath"
)

// Vec is a dense vector of float64.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("vecmat: Dot length mismatch %d vs %d", len(v), len(w)))
	}
	s := 0.0
	for i, x := range v {
		s += x * w[i]
	}
	return s
}

// Sum returns the sum of the components of v.
func (v Vec) Sum() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Norm1 returns the L1 norm of v.
func (v Vec) Norm1() float64 {
	s := 0.0
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// NormInf returns the maximum absolute component of v.
func (v Vec) NormInf() float64 {
	s := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > s {
			s = a
		}
	}
	return s
}

// Scale returns c*v as a new vector.
func (v Vec) Scale(c float64) Vec {
	w := make(Vec, len(v))
	for i, x := range v {
		w[i] = c * x
	}
	return w
}

// Add returns v+w as a new vector. It panics on length mismatch.
func (v Vec) Add(w Vec) Vec {
	if len(v) != len(w) {
		panic("vecmat: Add length mismatch")
	}
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] + w[i]
	}
	return u
}

// Sub returns v-w as a new vector. It panics on length mismatch.
func (v Vec) Sub(w Vec) Vec {
	if len(v) != len(w) {
		panic("vecmat: Sub length mismatch")
	}
	u := make(Vec, len(v))
	for i := range v {
		u[i] = v[i] - w[i]
	}
	return u
}

// Normalize1 returns v scaled so its components sum to one. It panics if
// the component sum is zero.
func (v Vec) Normalize1() Vec {
	s := v.Sum()
	if fmath.Zero(s) {
		panic("vecmat: Normalize1 of zero-sum vector")
	}
	return v.Scale(1 / s)
}

// String renders v with enough precision for debugging.
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.6g", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Mat is a dense row-major matrix.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len Rows*Cols, Data[r*Cols+c]
}

// NewMat returns a zero matrix of the given shape.
func NewMat(rows, cols int) *Mat {
	if rows <= 0 || cols <= 0 {
		panic("vecmat: NewMat with non-positive dimension")
	}
	return &Mat{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (r, c).
func (m *Mat) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Mat) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	n := NewMat(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Row returns a copy of row r as a Vec.
func (m *Mat) Row(r int) Vec {
	v := make(Vec, m.Cols)
	copy(v, m.Data[r*m.Cols:(r+1)*m.Cols])
	return v
}

// SetRow assigns row r from v. It panics on length mismatch.
func (m *Mat) SetRow(r int, v Vec) {
	if len(v) != m.Cols {
		panic("vecmat: SetRow length mismatch")
	}
	copy(m.Data[r*m.Cols:(r+1)*m.Cols], v)
}

// RowSums returns the vector of row sums.
func (m *Mat) RowSums() Vec {
	s := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		for c := 0; c < m.Cols; c++ {
			s[r] += m.At(r, c)
		}
	}
	return s
}

// VecMul returns the row-vector product v·M. It panics if len(v) != Rows.
func (m *Mat) VecMul(v Vec) Vec {
	if len(v) != m.Rows {
		panic(fmt.Sprintf("vecmat: VecMul length %d vs %d rows", len(v), m.Rows))
	}
	out := make(Vec, m.Cols)
	for r := 0; r < m.Rows; r++ {
		x := v[r]
		if fmath.Zero(x) {
			continue
		}
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		for c, t := range row {
			out[c] += x * t
		}
	}
	return out
}

// MulVec returns the matrix-vector product M·v. It panics if len(v) != Cols.
func (m *Mat) MulVec(v Vec) Vec {
	if len(v) != m.Cols {
		panic("vecmat: MulVec length mismatch")
	}
	out := make(Vec, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Data[r*m.Cols : (r+1)*m.Cols]
		s := 0.0
		for c, t := range row {
			s += t * v[c]
		}
		out[r] = s
	}
	return out
}

// Mul returns the matrix product m·n.
func (m *Mat) Mul(n *Mat) *Mat {
	if m.Cols != n.Rows {
		panic("vecmat: Mul shape mismatch")
	}
	out := NewMat(m.Rows, n.Cols)
	for r := 0; r < m.Rows; r++ {
		for k := 0; k < m.Cols; k++ {
			x := m.At(r, k)
			if fmath.Zero(x) {
				continue
			}
			for c := 0; c < n.Cols; c++ {
				out.Data[r*out.Cols+c] += x * n.At(k, c)
			}
		}
	}
	return out
}

// String renders the matrix row by row.
func (m *Mat) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		b.WriteString(m.Row(r).String())
		if r < m.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// LU holds an LU decomposition with partial pivoting: P·A = L·U.
type LU struct {
	lu    *Mat  // packed L (unit lower) and U
	pivot []int // row permutation
	sign  int   // permutation sign, for Det
}

// Factor computes the LU decomposition of the square matrix a.
// It returns an error if a is singular to working precision.
func Factor(a *Mat) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("vecmat: Factor of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	lu := a.Clone()
	pivot := make([]int, n)
	sign := 1
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest magnitude in column k.
		p := k
		max := math.Abs(lu.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(lu.At(i, k)); v > max {
				max, p = v, i
			}
		}
		if fmath.Zero(max) {
			return nil, fmt.Errorf("vecmat: singular matrix at pivot %d", k)
		}
		pivot[k] = p
		if p != k {
			sign = -sign
			for c := 0; c < n; c++ {
				lu.Data[k*n+c], lu.Data[p*n+c] = lu.Data[p*n+c], lu.Data[k*n+c]
			}
		}
		inv := 1 / lu.At(k, k)
		for i := k + 1; i < n; i++ {
			l := lu.At(i, k) * inv
			lu.Set(i, k, l)
			if fmath.Zero(l) {
				continue
			}
			for c := k + 1; c < n; c++ {
				lu.Data[i*n+c] -= l * lu.Data[k*n+c]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// Solve returns x such that A·x = b for the factored matrix A.
func (f *LU) Solve(b Vec) Vec {
	n := f.lu.Rows
	if len(b) != n {
		panic("vecmat: LU.Solve length mismatch")
	}
	x := b.Clone()
	// Apply permutation and forward-substitute through L.
	for k := 0; k < n; k++ {
		if p := f.pivot[k]; p != k {
			x[k], x[p] = x[p], x[k]
		}
		for i := k + 1; i < n; i++ {
			x[i] -= f.lu.At(i, k) * x[k]
		}
	}
	// Back-substitute through U.
	for i := n - 1; i >= 0; i-- {
		for c := i + 1; c < n; c++ {
			x[i] -= f.lu.At(i, c) * x[c]
		}
		x[i] /= f.lu.At(i, i)
	}
	return x
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.lu.Rows; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}

// Solve is a convenience wrapper: factor a and solve A·x = b.
func Solve(a *Mat, b Vec) (Vec, error) {
	f, err := Factor(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b), nil
}
