package vecmat

import (
	"math"
	"testing"
	"testing/quick"

	"popana/internal/xrand"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecBasics(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Errorf("Dot = %v", got)
	}
	if got := v.Sum(); got != 6 {
		t.Errorf("Sum = %v", got)
	}
	if got := (Vec{-1, 2, -3}).Norm1(); got != 6 {
		t.Errorf("Norm1 = %v", got)
	}
	if got := (Vec{-1, 2, -3}).NormInf(); got != 3 {
		t.Errorf("NormInf = %v", got)
	}
	if got := v.Add(w); got[0] != 5 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); got[0] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got[1] != 4 {
		t.Errorf("Scale = %v", got)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestNormalize1(t *testing.T) {
	v := Vec{1, 3}.Normalize1()
	if !almostEq(v[0], 0.25, 1e-15) || !almostEq(v[1], 0.75, 1e-15) {
		t.Errorf("Normalize1 = %v", v)
	}
}

func TestNormalize1PanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(Vec{1, -1}).Normalize1()
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	(Vec{1}).Dot(Vec{1, 2})
}

func TestMatVecMul(t *testing.T) {
	m := NewMat(2, 3)
	m.SetRow(0, Vec{1, 2, 3})
	m.SetRow(1, Vec{4, 5, 6})
	// Row vector times matrix.
	got := m.VecMul(Vec{1, 1})
	want := Vec{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("VecMul = %v, want %v", got, want)
		}
	}
	// Matrix times column vector.
	got = m.MulVec(Vec{1, 0, 1})
	want = Vec{4, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVec = %v, want %v", got, want)
		}
	}
}

func TestMatMul(t *testing.T) {
	a := NewMat(2, 2)
	a.SetRow(0, Vec{1, 2})
	a.SetRow(1, Vec{3, 4})
	b := NewMat(2, 2)
	b.SetRow(0, Vec{5, 6})
	b.SetRow(1, Vec{7, 8})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for r := 0; r < 2; r++ {
		for cc := 0; cc < 2; cc++ {
			if c.At(r, cc) != want[r][cc] {
				t.Fatalf("Mul = %v", c)
			}
		}
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	v := Vec{2, 5, 9}
	got := id.VecMul(v)
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("I·v = %v", got)
		}
	}
}

func TestRowSums(t *testing.T) {
	m := NewMat(2, 2)
	m.SetRow(0, Vec{1, 2})
	m.SetRow(1, Vec{3, 4})
	s := m.RowSums()
	if s[0] != 3 || s[1] != 7 {
		t.Fatalf("RowSums = %v", s)
	}
}

func TestLUSolveKnown(t *testing.T) {
	a := NewMat(2, 2)
	a.SetRow(0, Vec{2, 1})
	a.SetRow(1, Vec{1, 3})
	x, err := Solve(a, Vec{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(x[0], 1, 1e-12) || !almostEq(x[1], 3, 1e-12) {
		t.Fatalf("solution %v, want (1, 3)", x)
	}
}

func TestLUSolveRandomSystems(t *testing.T) {
	rng := xrand.New(77)
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(10)
		a := NewMat(n, n)
		for i := range a.Data {
			a.Data[i] = rng.Float64()*2 - 1
		}
		// Diagonal dominance guarantees non-singularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make(Vec, n)
		for i := range want {
			want[i] = rng.Float64()*10 - 5
		}
		b := a.MulVec(want)
		got, err := Solve(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if !almostEq(got[i], want[i], 1e-8) {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewMat(2, 2)
	a.SetRow(0, Vec{1, 2})
	a.SetRow(1, Vec{2, 4})
	if _, err := Factor(a); err == nil {
		t.Fatal("singular matrix factored without error")
	}
}

func TestLUNonSquare(t *testing.T) {
	if _, err := Factor(NewMat(2, 3)); err == nil {
		t.Fatal("non-square matrix factored without error")
	}
}

func TestDet(t *testing.T) {
	a := NewMat(2, 2)
	a.SetRow(0, Vec{3, 1})
	a.SetRow(1, Vec{2, 4})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 10, 1e-12) {
		t.Fatalf("Det = %v", f.Det())
	}
}

func TestDetPermutationSign(t *testing.T) {
	// A matrix requiring a row swap: det([[0,1],[1,0]]) = -1.
	a := NewMat(2, 2)
	a.SetRow(0, Vec{0, 1})
	a.SetRow(1, Vec{1, 0})
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), -1, 1e-12) {
		t.Fatalf("Det = %v, want -1", f.Det())
	}
}

func TestVecMulLinearity(t *testing.T) {
	rng := xrand.New(3)
	f := func(seed uint32) bool {
		r := xrand.New(uint64(seed) + rng.Uint64())
		n := 1 + r.Intn(6)
		m := NewMat(n, n)
		for i := range m.Data {
			m.Data[i] = r.Float64()
		}
		u, v := make(Vec, n), make(Vec, n)
		for i := 0; i < n; i++ {
			u[i], v[i] = r.Float64(), r.Float64()
		}
		lhs := m.VecMul(u.Add(v))
		rhs := m.VecMul(u).Add(m.VecMul(v))
		for i := range lhs {
			if !almostEq(lhs[i], rhs[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringRendering(t *testing.T) {
	if s := (Vec{1, 2}).String(); s == "" {
		t.Error("empty Vec string")
	}
	m := NewMat(2, 2)
	if s := m.String(); s == "" {
		t.Error("empty Mat string")
	}
}
