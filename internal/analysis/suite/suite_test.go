package suite

import "testing"

func TestAllNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing a name, doc, or run function", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	if len(seen) < 4 {
		t.Fatalf("suite has %d analyzers, want at least 4", len(seen))
	}
}

func TestByName(t *testing.T) {
	if got := ByName([]string{"detrand", "floatcmp"}); len(got) != 2 {
		t.Fatalf("ByName(detrand, floatcmp) returned %d analyzers, want 2", len(got))
	}
	if got := ByName([]string{"detrand", "nope"}); got != nil {
		t.Fatalf("ByName with an unknown name = %v, want nil", got)
	}
}
