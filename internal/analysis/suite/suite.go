// Package suite registers the popvet analyzers. cmd/popvet and any
// future driver (editor integration, pre-commit hook) get the same set
// from one place.
package suite

import (
	"popana/internal/analysis"
	"popana/internal/analysis/allocfree"
	"popana/internal/analysis/budgetflow"
	"popana/internal/analysis/detrand"
	"popana/internal/analysis/faultpoint"
	"popana/internal/analysis/floatcmp"
	"popana/internal/analysis/lockdiscipline"
	"popana/internal/analysis/syncdiscipline"
)

// All returns every popvet analyzer, in reporting order. The first
// four are the AST-level checks from the original popvet; the last
// three are control-flow-aware (built on internal/analysis/cfg).
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		detrand.Analyzer,
		floatcmp.Analyzer,
		lockdiscipline.Analyzer,
		faultpoint.Analyzer,
		syncdiscipline.Analyzer,
		allocfree.Analyzer,
		budgetflow.Analyzer,
	}
}

// ByName returns the named analyzers, or nil if any name is unknown.
func ByName(names []string) []*analysis.Analyzer {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil
		}
		out = append(out, a)
	}
	return out
}
