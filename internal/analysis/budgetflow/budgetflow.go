// Package budgetflow checks the node-visit budget discipline that
// Explain's cost accounting and the planned admission controller
// depend on. Any function that threads a budget parameter (an int
// named maxNodes or budget) must uphold two path properties, checked
// over the internal/analysis/cfg control-flow graph:
//
//  1. Check-before-advance: inside a loop, every cursor advance
//     (a call to a method named Next or SeekGE) and every visit-count
//     consumption (writing a .NodesVisited field) must be preceded by
//     a budget comparison on the same iteration — the budget fact is
//     killed on every edge into a loop header, so a check before the
//     loop does not excuse iteration N. A priming advance before any
//     loop is exempt (the first SeekGE positions the cursor; nothing
//     has been consumed yet). Self-recursive calls must instead be
//     dominated by a budget check since function entry (the repo
//     convention is callee-side entry checks, as in
//     quadtree.rangeCounted).
//
//  2. Exhaustion-sets-Truncated: in a branch entered because the
//     budget is exhausted (st.NodesVisited >= maxNodes,
//     remaining <= 0, optionally guarded by maxNodes > 0 &&), every
//     return or break must happen after Truncated is set to true —
//     a budget stop that forgets Truncated silently reports a partial
//     count as exact, which poisons every consumer of RangeStats.
package budgetflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"popana/internal/analysis"
	"popana/internal/analysis/cfg"
)

// Analyzer is the popvet entry point.
var Analyzer = &analysis.Analyzer{
	Name: "budgetflow",
	Doc: "in budget-threading functions (int param named maxNodes/budget), require a " +
		"budget check before every cursor advance on every loop iteration and before " +
		"self-recursion, and require Truncated = true before every budget-exhaustion exit",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c := newChecker(pass, fn)
			if c == nil {
				continue
			}
			c.checkFlow()
			c.checkExhaustionExits()
		}
	}
	return nil
}

// checker analyzes one budget-threading function.
type checker struct {
	pass *analysis.Pass
	fn   *ast.FuncDecl
	// budget holds the budget parameter plus every local derived from
	// it (remaining := maxNodes, remaining -= n, ...).
	budget map[*types.Var]bool
	// derived is the subset of budget that is a decremented-remaining
	// local rather than the original parameter: only for these does
	// `x <= 0` mean exhaustion (for the parameter itself, <= 0 means
	// unlimited by repo convention).
	derived map[*types.Var]bool
	self    *types.Func
}

// budgetParamNames are the parameter names that mark a function as
// budget-threading.
var budgetParamNames = map[string]bool{
	"maxNodes": true,
	"budget":   true,
}

// newChecker returns nil when fn does not thread a budget.
func newChecker(pass *analysis.Pass, fn *ast.FuncDecl) *checker {
	c := &checker{pass: pass, fn: fn, budget: map[*types.Var]bool{}, derived: map[*types.Var]bool{}}
	c.self, _ = pass.Info.Defs[fn.Name].(*types.Func)
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if !budgetParamNames[name.Name] {
				continue
			}
			if v, ok := pass.Info.Defs[name].(*types.Var); ok && isInt(v.Type()) {
				c.budget[v] = true
			}
		}
	}
	if len(c.budget) == 0 {
		return nil
	}
	// Derived budget locals: `remaining := maxNodes` and friends.
	// Two passes handle forward chains in source order.
	for i := 0; i < 2; i++ {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if !c.refsBudget(as.Rhs[j]) && !refsMaxNodesField(as.Rhs[j]) {
					continue
				}
				if v := c.varOf(id); v != nil && isInt(v.Type()) && !c.budget[v] {
					c.budget[v] = true
					c.derived[v] = true
				}
			}
			return true
		})
	}
	return c
}

// flowFact tracks whether a budget comparison has executed (a) since
// the current loop iteration began and (b) since function entry.
type flowFact struct {
	iter  bool // checked since the innermost loop-iteration boundary
	entry bool // checked since function entry
}

// checkFlow runs the check-before-advance dataflow.
func (c *checker) checkFlow() {
	g := cfg.New(c.fn.Body)
	heads := g.LoopHeads()
	inCycle := cyclicBlocks(g)

	flow := &cfg.Forward[flowFact]{
		Init:  func() flowFact { return flowFact{} },
		Clone: func(f flowFact) flowFact { return f },
		Join: func(into *flowFact, from flowFact) bool {
			// Must-analysis: checked only if checked on all paths.
			merged := flowFact{iter: into.iter && from.iter, entry: into.entry && from.entry}
			changed := merged != *into
			*into = merged
			return changed
		},
		Transfer: func(f *flowFact, n ast.Node) {
			if c.nodeChecksBudget(n) {
				f.iter = true
				f.entry = true
			}
		},
		Edge: func(from *cfg.Block, edge int, f *flowFact) {
			if heads[from.Succs[edge]] {
				f.iter = false // each iteration must re-check
			}
		},
	}
	entry := flow.Solve(g)

	reach := g.Reachable()
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		f := entry[blk.Index]
		for _, n := range blk.Nodes {
			c.reportUnchecked(n, f, inCycle[blk])
			if c.nodeChecksBudget(n) {
				f.iter = true
				f.entry = true
			}
		}
	}
}

// reportUnchecked flags consumption nodes the dataflow reached in an
// unchecked state.
func (c *checker) reportUnchecked(n ast.Node, f flowFact, inLoop bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false // closures are separate functions
		case *ast.CallExpr:
			if name, isAdvance := advanceCall(m); isAdvance && inLoop && !f.iter {
				c.pass.Reportf(m.Pos(), "cursor advance %s without a budget check this iteration (check maxNodes before every advance)", name)
			}
			if c.isSelfCall(m) && !f.entry {
				c.pass.Reportf(m.Pos(), "recursive call without a dominating budget check since entry (check-and-truncate before recursing)")
			}
		case *ast.IncDecStmt:
			if m.Tok == token.INC && isNodesVisited(m.X) && inLoop && !f.iter {
				c.pass.Reportf(m.Pos(), "NodesVisited consumed without a budget check this iteration")
			}
		case *ast.AssignStmt:
			if m.Tok == token.ADD_ASSIGN && len(m.Lhs) == 1 && isNodesVisited(m.Lhs[0]) && inLoop && !f.iter {
				c.pass.Reportf(m.Pos(), "NodesVisited consumed without a budget check this iteration")
			}
		}
		return true
	})
}

// nodeChecksBudget reports whether the node contains a comparison
// referencing a budget variable (outside closures).
func (c *checker) nodeChecksBudget(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		bin, ok := m.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if c.refsBudget(bin.X) || c.refsBudget(bin.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// refsBudget reports whether e mentions a budget variable.
func (c *checker) refsBudget(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := c.varOf(id); v != nil && c.budget[v] {
				found = true
			}
		}
		return true
	})
	return found
}

// refsDerived reports whether e mentions a derived budget local.
func (c *checker) refsDerived(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if v := c.varOf(id); v != nil && c.derived[v] {
				found = true
			}
		}
		return true
	})
	return found
}

func (c *checker) varOf(id *ast.Ident) *types.Var {
	if v, ok := c.pass.Info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := c.pass.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// isSelfCall reports whether call invokes the enclosing function.
func (c *checker) isSelfCall(call *ast.CallExpr) bool {
	if c.self == nil {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return c.pass.Info.Uses[fun] == c.self
	case *ast.SelectorExpr:
		return c.pass.Info.Uses[fun.Sel] == c.self
	case *ast.IndexExpr: // generic instantiation: rangeCounted[V](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			return c.pass.Info.Uses[id] == c.self
		}
	}
	return false
}

// --- exhaustion-sets-Truncated (rule 2, syntactic) ---

// checkExhaustionExits walks every if whose condition is a budget
// exhaustion test and requires Truncated = true before any
// return/break inside the exhausted branch.
func (c *checker) checkExhaustionExits() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		ifStmt, ok := n.(*ast.IfStmt)
		if !ok || !c.isExhaustionTest(ifStmt.Cond) {
			return true
		}
		c.scanExhaustedBranch(ifStmt.Body.List, false)
		return true
	})
}

// scanExhaustedBranch walks the exhausted branch in order, tracking
// whether Truncated has been set, and flags exits that precede it.
func (c *checker) scanExhaustedBranch(stmts []ast.Stmt, set bool) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if setsTruncated(s) {
				set = true
			}
		case *ast.ReturnStmt:
			if !set {
				c.pass.Reportf(s.Pos(), "budget-exhaustion return without setting Truncated (partial result would read as exact)")
			}
		case *ast.BranchStmt:
			if s.Tok == token.BREAK && !set {
				c.pass.Reportf(s.Pos(), "budget-exhaustion break without setting Truncated (partial result would read as exact)")
			}
		case *ast.BlockStmt:
			set = c.scanExhaustedBranch(s.List, set)
		case *ast.IfStmt:
			c.scanExhaustedBranch(s.Body.List, set)
			if els, ok := s.Else.(*ast.BlockStmt); ok {
				c.scanExhaustedBranch(els.List, set)
			}
		}
	}
	return set
}

// setsTruncated matches `x.Truncated = true`.
func setsTruncated(as *ast.AssignStmt) bool {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	sel, ok := as.Lhs[0].(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Truncated" {
		return false
	}
	id, ok := as.Rhs[0].(*ast.Ident)
	return ok && id.Name == "true"
}

// isExhaustionTest recognizes the repo's budget-exhaustion guards:
//
//	st.NodesVisited >= maxNodes
//	remaining <= 0            (also < 1, == 0)
//	maxNodes > 0 && <either>
func (c *checker) isExhaustionTest(e ast.Expr) bool {
	bin, ok := e.(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LAND {
		return c.isExhaustionTest(bin.X) || c.isExhaustionTest(bin.Y)
	}
	switch bin.Op {
	case token.GEQ, token.GTR:
		// visited >= budget (budget on the right). `maxNodes > 0` has
		// the budget on the LEFT and is the enablement guard, not an
		// exhaustion test.
		return c.refsBudget(bin.Y) && !c.refsBudget(bin.X)
	case token.LEQ, token.LSS:
		// remaining <= 0: only a DERIVED remaining-counter hitting
		// zero is exhaustion; for the parameter itself `maxNodes <= 0`
		// means unlimited.
		return c.refsDerived(bin.X) && isZeroish(bin.Y)
	case token.EQL:
		return c.refsDerived(bin.X) && isZeroish(bin.Y)
	}
	return false
}

// isZeroish matches the literals 0 and 1 (for `< 1` spellings).
func isZeroish(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return false
	}
	return lit.Value == "0" || lit.Value == "1"
}

// refsMaxNodesField matches selectors like q.MaxNodes, seeding the
// derived-budget set for `remaining := q.MaxNodes`.
func refsMaxNodesField(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(m ast.Node) bool {
		if sel, ok := m.(*ast.SelectorExpr); ok && sel.Sel.Name == "MaxNodes" {
			found = true
		}
		return true
	})
	return found
}

// advanceCall matches calls to cursor-advancing methods.
func advanceCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Next", "SeekGE":
		return sel.Sel.Name, true
	}
	return "", false
}

// isNodesVisited matches the selector x.NodesVisited.
func isNodesVisited(e ast.Expr) bool {
	sel, ok := e.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "NodesVisited"
}

// cyclicBlocks returns the blocks that lie on a cycle (inside some
// loop): the blocks from which a nonempty path leads back to itself.
func cyclicBlocks(g *cfg.Graph) map[*cfg.Block]bool {
	// Successive reachability: B is cyclic iff B is reachable from
	// one of its successors. Graphs here are tiny; quadratic is fine.
	out := map[*cfg.Block]bool{}
	for _, b := range g.Blocks {
		seen := map[*cfg.Block]bool{}
		stack := append([]*cfg.Block{}, b.Succs...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			if n == b {
				out[b] = true
				break
			}
			stack = append(stack, n.Succs...)
		}
	}
	return out
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
