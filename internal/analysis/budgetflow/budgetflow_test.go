package budgetflow_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/budgetflow"
)

func TestFixtures(t *testing.T) {
	atest.Run(t, "testdata", budgetflow.Analyzer, "linearquad")
}
