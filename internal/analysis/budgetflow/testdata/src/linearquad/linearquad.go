// Package linearquad is a budgetflow fixture mirroring the budgeted
// scan patterns of the real read kernels.
package linearquad

// stats is a stand-in for quadtree.RangeStats.
type stats struct {
	NodesVisited int
	Matched      int
	Truncated    bool
}

// cursor is a stand-in for segment.EntryCursor.
type cursor struct{ pos int }

func (c *cursor) Next() (uint64, bool)           { c.pos++; return uint64(c.pos), c.pos < 100 }
func (c *cursor) SeekGE(v uint64) (uint64, bool) { c.pos = int(v); return v, true }

// scanBudgeted is the clean pattern: loop-top check, then consume,
// then advance. Allowed — including the priming SeekGE before the
// loop, which positions the cursor without consuming budget.
func scanBudgeted(c *cursor, zmin uint64, maxNodes int) stats {
	var st stats
	code, ok := c.SeekGE(zmin)
	for ok {
		if maxNodes > 0 && st.NodesVisited >= maxNodes {
			st.Truncated = true
			break
		}
		st.NodesVisited++
		if code%2 == 0 {
			st.Matched++
		}
		code, ok = c.Next()
	}
	return st
}

// advanceUnchecked never re-checks the budget inside the loop.
func advanceUnchecked(c *cursor, zmin uint64, maxNodes int) stats {
	var st stats
	code, ok := c.SeekGE(zmin)
	for ok {
		st.NodesVisited++ // want `NodesVisited consumed without a budget check this iteration`
		_ = code
		code, ok = c.Next() // want `cursor advance Next without a budget check this iteration`
	}
	return st
}

// checkBeforeLoopOnly checks once before the loop: iteration N still
// advances unchecked.
func checkBeforeLoopOnly(c *cursor, zmin uint64, maxNodes int) stats {
	var st stats
	if st.NodesVisited >= maxNodes {
		st.Truncated = true
		return st
	}
	code, ok := c.SeekGE(zmin)
	for ok {
		_ = code
		code, ok = c.Next() // want `cursor advance Next without a budget check this iteration`
	}
	return st
}

// forgetsTruncated stops on exhaustion but forgets to mark the result
// partial.
func forgetsTruncated(c *cursor, zmin uint64, maxNodes int) stats {
	var st stats
	code, ok := c.SeekGE(zmin)
	for ok {
		if maxNodes > 0 && st.NodesVisited >= maxNodes {
			break // want `budget-exhaustion break without setting Truncated`
		}
		st.NodesVisited++
		_ = code
		code, ok = c.Next()
	}
	return st
}

// remainderLoop hands the budget down shard by shard: the derived
// remaining counter hitting zero is exhaustion. Allowed.
func remainderLoop(shards []*cursor, maxNodes int) stats {
	var st stats
	remaining := maxNodes
	for _, c := range shards {
		if remaining <= 0 {
			st.Truncated = true
			break
		}
		sub := scanBudgeted(c, 0, remaining)
		st.Matched += sub.Matched
		remaining -= sub.NodesVisited
	}
	return st
}

// remainderForgets returns early on exhaustion without Truncated.
func remainderForgets(shards []*cursor, maxNodes int) stats {
	var st stats
	remaining := maxNodes
	for _, c := range shards {
		if remaining <= 0 {
			return st // want `budget-exhaustion return without setting Truncated`
		}
		sub := scanBudgeted(c, 0, remaining)
		st.Matched += sub.Matched
		remaining -= sub.NodesVisited
	}
	return st
}

// node is a stand-in for the recursive quadtree.
type node struct {
	children []*node
	count    int
}

// rangeCounted is the clean recursion pattern: the entry check
// dominates every recursive call. Allowed.
func rangeCounted(n *node, st *stats, maxNodes int) bool {
	if maxNodes > 0 && st.NodesVisited >= maxNodes {
		st.Truncated = true
		return false
	}
	st.NodesVisited++
	for _, ch := range n.children {
		if !rangeCounted(ch, st, maxNodes) {
			return false
		}
	}
	return true
}

// recurseUnchecked recurses without ever consulting the budget.
func recurseUnchecked(n *node, st *stats, maxNodes int) {
	st.NodesVisited++
	for _, ch := range n.children {
		recurseUnchecked(ch, st, maxNodes) // want `recursive call without a dominating budget check`
	}
}

// suppressedDrain intentionally drains without budget checks (e.g. a
// teardown path) and says so.
func suppressedDrain(c *cursor, maxNodes int) int {
	n := 0
	for {
		//popvet:allow budgetflow -- teardown drain: budget no longer applies after seal
		_, ok := c.Next()
		if !ok {
			return n
		}
		n++
	}
}

// unbudgeted has no budget parameter: out of scope, advances freely.
func unbudgeted(c *cursor) int {
	n := 0
	for {
		_, ok := c.Next()
		if !ok {
			return n
		}
		n++
	}
}
