// Package faultpoint implements the popvet analyzer that keeps
// fault-injection point names honest.
//
// A chaos test arms failure points by name (faultinject.Point); the
// production code consults them by name. Nothing ties the two together
// at compile time: a typo in a point name — or a point constant someone
// removes while a call site still references a stale string — fails
// open, and the chaos test silently stops injecting anything. That rot
// is invisible until an incident.
//
// faultpoint closes the loop statically: in every package that imports
// a faultinject package, each argument of type faultinject.Point passed
// to a call must be a compile-time constant whose value is registered
// among the Point constants declared in that faultinject package (the
// canonical list that faultinject.Points() exposes at runtime and
// TestPointRegistryComplete pins). Unregistered names and dynamic
// (non-constant) point expressions are both flagged.
package faultpoint

import (
	"go/ast"
	"go/constant"
	"go/types"

	"popana/internal/analysis"
)

// Analyzer is the faultpoint popvet check.
var Analyzer = &analysis.Analyzer{
	Name: "faultpoint",
	Doc:  "every faultinject point name used at a call site must be a registered Point constant",
	Run:  run,
}

// faultinjectBase is the basename identifying a fault-injection package
// (the real popana/internal/faultinject, or a fixture named
// faultinject).
const faultinjectBase = "faultinject"

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.PkgPath) == faultinjectBase {
		return nil // the registry itself declares the constants
	}
	pointType, canonical := canonicalPoints(pass.Pkg)
	if pointType == nil {
		return nil // does not import a faultinject package
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				tv, ok := pass.Info.Types[arg]
				if !ok || tv.Type == nil || !types.Identical(tv.Type, pointType) {
					continue
				}
				if tv.Value == nil {
					pass.Reportf(arg.Pos(), "dynamic fault point name of type %s; pass a registered Point constant so chaos tests cannot rot", pointType)
					continue
				}
				name := constant.StringVal(tv.Value)
				if !canonical[name] {
					pass.Reportf(arg.Pos(), "fault point %q is not registered in the canonical point list of %s", name, pointType.(*types.Named).Obj().Pkg().Path())
				}
			}
			return true
		})
	}
	return nil
}

// canonicalPoints finds the faultinject package among pkg's imports and
// returns its Point type together with the set of registered point
// names (the values of every Point constant it declares).
func canonicalPoints(pkg *types.Package) (types.Type, map[string]bool) {
	for _, imp := range pkg.Imports() {
		if analysis.PathBase(imp.Path()) != faultinjectBase {
			continue
		}
		obj, ok := imp.Scope().Lookup("Point").(*types.TypeName)
		if !ok {
			continue
		}
		pointType := obj.Type()
		canonical := map[string]bool{}
		scope := imp.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !types.Identical(c.Type(), pointType) {
				continue
			}
			canonical[constant.StringVal(c.Val())] = true
		}
		return pointType, canonical
	}
	return nil, nil
}
