package faultpoint_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/faultpoint"
)

// TestFaultpoint drives the fixture tree: injector (typos and dynamic
// names flagged, registered constants allowed) and faultinject itself
// (the registry is exempt — it declares the names).
func TestFaultpoint(t *testing.T) {
	atest.Run(t, "testdata", faultpoint.Analyzer, "injector", "faultinject")
}
