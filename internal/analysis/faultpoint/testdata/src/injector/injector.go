// Package injector exercises the faultpoint rules against the fixture
// registry: registered constants pass; typos and dynamic names do not.
package injector

import "faultinject"

// Arm mixes every shape of point argument.
func Arm(inj *faultinject.Injector, dyn string) {
	_ = inj.Err(faultinject.InsertFault)     // registered constant: allowed
	_ = inj.Err("insert.falut")              // want `not registered in the canonical point list`
	faultinject.Fire(faultinject.Point(dyn)) // want `dynamic fault point name`
	//popvet:allow faultpoint -- fixture pins suppression: legacy name kept for a migration window
	faultinject.Fire("query.latency.slow")
}

// Status passes a registered point through a local constant: allowed.
func Status(inj *faultinject.Injector) error {
	const p = faultinject.QueryLatency
	return inj.Err(p)
}

// Crash arms the durability-path points: the registered names pass, a
// stale pre-registration spelling is flagged like any other typo.
func Crash(inj *faultinject.Injector) {
	_ = inj.Err(faultinject.WALTornWrite)        // registered constant: allowed
	_ = inj.Err(faultinject.SegmentPartialFlush) // registered constant: allowed
	faultinject.Fire(faultinject.CompactionInterrupted)
	_ = inj.Err("segment.compaction.interrupted") // want `not registered in the canonical point list`
}
