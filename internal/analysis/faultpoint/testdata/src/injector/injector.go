// Package injector exercises the faultpoint rules against the fixture
// registry: registered constants pass; typos and dynamic names do not.
package injector

import "faultinject"

// Arm mixes every shape of point argument.
func Arm(inj *faultinject.Injector, dyn string) {
	_ = inj.Err(faultinject.InsertFault)     // registered constant: allowed
	_ = inj.Err("insert.falut")              // want `not registered in the canonical point list`
	faultinject.Fire(faultinject.Point(dyn)) // want `dynamic fault point name`
	//popvet:allow faultpoint -- fixture pins suppression: legacy name kept for a migration window
	faultinject.Fire("query.latency.slow")
}

// Status passes a registered point through a local constant: allowed.
func Status(inj *faultinject.Injector) error {
	const p = faultinject.QueryLatency
	return inj.Err(p)
}
