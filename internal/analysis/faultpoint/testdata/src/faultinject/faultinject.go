// Package faultinject is a faultpoint fixture mirroring the real
// registry: a Point type, its canonical constants, and an injector. The
// analyzer skips this package itself (the registry declares the names)
// and polices every importer against the constants found here.
package faultinject

// Point names one fault-injection site.
type Point string

// The canonical point list, including the durability-path points the
// real registry grew with the tiered-storage engine.
const (
	InsertFault           Point = "insert.fault"
	QueryLatency          Point = "query.latency"
	WALTornWrite          Point = "wal.append.torn"
	SegmentPartialFlush   Point = "segment.flush.partial"
	CompactionInterrupted Point = "segment.compact.interrupt"
)

// Injector arms points by name.
type Injector struct{ armed map[Point]bool }

// Err reports an injected failure for p, if armed.
func (i *Injector) Err(p Point) error {
	_ = i.armed[p]
	return nil
}

// Fire is a plain function taking a point, to show the rule is not
// method-specific.
func Fire(p Point) {}
