// Package lockdiscipline implements the popvet analyzer that guards the
// spatialdb locking rules and the snapshot publish discipline.
//
// Three invariants, three rules:
//
// Rule 1 — no re-entrant table locking (spatialdb packages only).
// sync.Mutex and sync.RWMutex are not re-entrant: a Table method that
// calls another locking Table method while holding the table mutex
// deadlocks (Lock→Lock, RLock→Lock) or invites writer-starvation
// deadlock (RLock→RLock with a writer queued between them). The
// package's convention is that helpers expecting the lock to be held
// carry the ...Locked suffix and take no lock themselves. The analyzer
// finds every method that acquires a mutex field of its receiver type,
// computes the span over which the lock is held (a deferred unlock
// holds to the end of the method), and flags calls in that span to any
// other method of the same type that acquires the same mutex field.
//
// Rule 2 — sanctioned snapshot accessors (every package).
// The lock-free read path (PR 3) relies on a strict publish-after-build
// discipline on the atomically published snapshot pointer: Load only
// through the accessor that validates the epoch stamp, Store only after
// the frozen copy is fully built. A struct field opts into enforcement
// with a directive in its doc comment:
//
//	//popvet:accessors loadFresh rebuildLocked maybeRebuildLocked
//	snap atomic.Pointer[snapshot]
//
// Any Load/Store/Swap/CompareAndSwap on that field outside the named
// functions is flagged.
//
// Rule 3 — ordered multi-acquisition of striped mutexes (every
// package). A sharded table holds one mutex per spatial shard (and one
// per id stripe); two functions that each grab two of those mutexes in
// opposite orders deadlock. The repository's convention is a single
// table-wide lock order — shard mutexes ascending by shard index, then
// id stripes ascending — enforced by funneling every multi-lock
// acquisition through a handful of audited helpers. A mutex field opts
// in with a directive naming those helpers:
//
//	//popvet:ordered lockShards rlockShards
//	mu sync.RWMutex
//
// Any function that acquires such a mutex at two or more static
// Lock/RLock sites, or at a site inside a for/range loop (one static
// site, many dynamic acquisitions), must be one of the named helpers;
// everything else is flagged. Single straight-line acquisitions remain
// free.
package lockdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"popana/internal/analysis"
)

// Analyzer is the lockdiscipline popvet check.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "no re-entrant locking in spatialdb methods; snapshot atomics only through sanctioned accessors; striped mutexes multi-locked only via ordered helpers",
	Run:  run,
}

// accessorDirective marks a struct field whose atomic accesses are
// restricted to the named functions.
const accessorDirective = "//popvet:accessors"

// orderedDirective marks a mutex field whose multi-acquisitions are
// restricted to the named ascending-order helper functions.
const orderedDirective = "//popvet:ordered"

// atomicAccessors are the sync/atomic methods rule 2 polices.
var atomicAccessors = map[string]bool{
	"Load": true, "Store": true, "Swap": true, "CompareAndSwap": true,
}

func run(pass *analysis.Pass) error {
	checkAccessorDirectives(pass)
	checkOrderedDirectives(pass)
	if analysis.PathBase(pass.PkgPath) == "spatialdb" {
		checkReentrantLocks(pass)
	}
	return nil
}

// --- Rule 1: re-entrant locking ---

// lockUse identifies one mutex a method acquires: the receiver's named
// type and the mutex field name.
type lockUse struct {
	recv  *types.Named
	field string
}

// lockSpan is a source region over which a mutex is held.
type lockSpan struct {
	start, end token.Pos
}

// methodLocks describes one method's acquisitions.
type methodLocks struct {
	decl  *ast.FuncDecl
	recv  *types.Named
	locks map[string][]lockSpan // mutex field -> held spans
}

func checkReentrantLocks(pass *analysis.Pass) {
	// Pass 1: which methods acquire which receiver mutex fields, and
	// over which spans?
	var methods []*methodLocks
	locking := map[lockUse]map[string]bool{} // mutex -> method names acquiring it
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			named := receiverNamed(pass, fd)
			if named == nil {
				continue
			}
			ml := collectLocks(pass, fd, named)
			if len(ml.locks) == 0 {
				continue
			}
			methods = append(methods, ml)
			for field := range ml.locks {
				key := lockUse{named, field}
				if locking[key] == nil {
					locking[key] = map[string]bool{}
				}
				locking[key][fd.Name.Name] = true
			}
		}
	}
	// Pass 2: inside each held span, flag calls to other methods of the
	// same receiver type that acquire the same mutex.
	for _, ml := range methods {
		ast.Inspect(ml.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			calleeRecv := namedRecv(callee)
			if calleeRecv == nil || calleeRecv.Obj() != ml.recv.Obj() {
				return true
			}
			for field, spans := range ml.locks {
				if !locking[lockUse{ml.recv, field}][callee.Name()] {
					continue
				}
				for _, sp := range spans {
					if call.Pos() > sp.start && call.Pos() < sp.end {
						pass.Reportf(call.Pos(),
							"%s.%s calls %s while holding %s.%s, which %s acquires again: sync mutexes are not re-entrant; use a ...Locked helper",
							ml.recv.Obj().Name(), ml.decl.Name.Name, callee.Name(),
							ml.recv.Obj().Name(), field, callee.Name())
						break
					}
				}
			}
			return true
		})
	}
}

// collectLocks finds the spans of fd over which each receiver mutex
// field is held: from each Lock/RLock call to the next inline
// Unlock/RUnlock of the same field, or to the end of the body when the
// unlock is deferred (or missing).
func collectLocks(pass *analysis.Pass, fd *ast.FuncDecl, named *types.Named) *methodLocks {
	ml := &methodLocks{decl: fd, recv: named, locks: map[string][]lockSpan{}}
	acquires := map[string][]token.Pos{}
	releases := map[string][]token.Pos{} // inline (non-deferred) only
	deferred := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if ds, ok := n.(*ast.DeferStmt); ok {
			deferred[ds.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		field, op := receiverMutexOp(pass, call, named)
		if field == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			acquires[field] = append(acquires[field], call.Pos())
		case "Unlock", "RUnlock":
			if !deferred[call] {
				releases[field] = append(releases[field], call.End())
			}
		}
		return true
	})
	for field, starts := range acquires {
		for _, start := range starts {
			end := fd.Body.End()
			for _, rel := range releases[field] {
				if rel > start && rel < end {
					end = rel
				}
			}
			ml.locks[field] = append(ml.locks[field], lockSpan{start, end})
		}
	}
	return ml
}

// receiverMutexOp recognizes recv.field.(Lock|RLock|Unlock|RUnlock)()
// where field is a sync.Mutex or sync.RWMutex field of the receiver
// type, returning the field name and the operation.
func receiverMutexOp(pass *analysis.Pass, call *ast.CallExpr, named *types.Named) (string, string) {
	outer, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	op := outer.Sel.Name
	if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
		return "", ""
	}
	m, ok := pass.Info.Uses[outer.Sel].(*types.Func)
	if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", ""
	}
	inner, ok := outer.X.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fieldObj, ok := pass.Info.Uses[inner.Sel].(*types.Var)
	if !ok || !fieldObj.IsField() {
		return "", ""
	}
	if base := derefNamed(pass.Info.TypeOf(inner.X)); base == nil || base.Obj() != named.Obj() {
		return "", ""
	}
	return inner.Sel.Name, op
}

// receiverNamed resolves the named type a method's receiver points to.
func receiverNamed(pass *analysis.Pass, fd *ast.FuncDecl) *types.Named {
	obj, ok := pass.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	return namedRecv(obj)
}

func namedRecv(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

func derefNamed(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// --- Rule 2: sanctioned accessors for published atomics ---

func checkAccessorDirectives(pass *analysis.Pass) {
	restricted := collectDirectiveFields(pass, accessorDirective)
	if len(restricted) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			funcName := fd.Name.Name
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				outer, ok := n.(*ast.SelectorExpr)
				if !ok || !atomicAccessors[outer.Sel.Name] {
					return true
				}
				inner, ok := outer.X.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fieldObj, ok := pass.Info.Uses[inner.Sel].(*types.Var)
				if !ok {
					return true
				}
				allowed := restricted[fieldObj]
				if allowed == nil || allowed[funcName] {
					return true
				}
				pass.Reportf(outer.Pos(),
					"%s of published pointer %s outside its sanctioned accessors (%s): the lock-free read path depends on the publish-after-build discipline those accessors enforce",
					outer.Sel.Name, inner.Sel.Name, strings.Join(sortedNames(allowed), ", "))
				return true
			})
		}
	}
}

// --- Rule 3: ordered multi-acquisition of striped mutexes ---

func checkOrderedDirectives(pass *analysis.Pass) {
	restricted := collectDirectiveFields(pass, orderedDirective)
	if len(restricted) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkOrderedFunc(pass, fd, restricted)
		}
	}
}

// lockSite is one static Lock/RLock call on a restricted mutex field.
type lockSite struct {
	pos    token.Pos
	field  string
	inLoop bool
}

// checkOrderedFunc flags fd if it acquires a //popvet:ordered mutex at
// two or more static sites, or at a site inside a loop, without being
// one of the field's named helper functions.
func checkOrderedFunc(pass *analysis.Pass, fd *ast.FuncDecl, restricted map[types.Object]map[string]bool) {
	// Loop bodies: a single static acquisition inside one is many
	// dynamic acquisitions.
	var loops []lockSpan
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, lockSpan{l.Body.Pos(), l.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, lockSpan{l.Body.Pos(), l.Body.End()})
		}
		return true
	})
	inLoop := func(p token.Pos) bool {
		for _, l := range loops {
			if p > l.start && p < l.end {
				return true
			}
		}
		return false
	}
	sites := map[types.Object][]lockSite{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		outer, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		op := outer.Sel.Name
		if op != "Lock" && op != "RLock" {
			return true
		}
		m, ok := pass.Info.Uses[outer.Sel].(*types.Func)
		if !ok || m.Pkg() == nil || m.Pkg().Path() != "sync" {
			return true
		}
		inner, ok := outer.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fieldObj, ok := pass.Info.Uses[inner.Sel].(*types.Var)
		if !ok || restricted[fieldObj] == nil {
			return true
		}
		sites[fieldObj] = append(sites[fieldObj], lockSite{call.Pos(), inner.Sel.Name, inLoop(call.Pos())})
		return true
	})
	for fieldObj, ss := range sites {
		allowed := restricted[fieldObj]
		if allowed[fd.Name.Name] {
			continue
		}
		switch {
		case len(ss) >= 2:
			pass.Reportf(ss[0].pos,
				"%s acquires striped mutex %s at %d sites but is not an ordered-acquisition helper (%s): multi-lock of a sharded mutex must go through an audited ascending-order helper to stay deadlock-free",
				fd.Name.Name, ss[0].field, len(ss), strings.Join(sortedNames(allowed), ", "))
		case ss[0].inLoop:
			pass.Reportf(ss[0].pos,
				"%s acquires striped mutex %s inside a loop but is not an ordered-acquisition helper (%s): multi-lock of a sharded mutex must go through an audited ascending-order helper to stay deadlock-free",
				fd.Name.Name, ss[0].field, strings.Join(sortedNames(allowed), ", "))
		}
	}
}

// --- shared directive plumbing ---

// collectDirectiveFields maps each struct field carrying the given
// popvet directive to the set of function names the directive sanctions.
func collectDirectiveFields(pass *analysis.Pass, prefix string) map[types.Object]map[string]bool {
	restricted := map[types.Object]map[string]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				allowed := directiveNames(field.Doc, prefix)
				if allowed == nil {
					allowed = directiveNames(field.Comment, prefix)
				}
				if allowed == nil {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.Info.Defs[name]; obj != nil {
						restricted[obj] = allowed
					}
				}
			}
			return true
		})
	}
	return restricted
}

// directiveNames parses a popvet directive comment group into the set
// of sanctioned function names, or nil when the directive is absent.
func directiveNames(cg *ast.CommentGroup, prefix string) map[string]bool {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, prefix)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
			continue
		}
		names := map[string]bool{}
		for _, name := range strings.FieldsFunc(rest, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t'
		}) {
			names[name] = true
		}
		return names
	}
	return nil
}

func sortedNames(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for n := range set {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
