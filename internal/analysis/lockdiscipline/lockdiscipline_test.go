package lockdiscipline_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/lockdiscipline"
)

// TestLockdiscipline drives the fixture tree: spatialdb (deliberately
// wrong — re-entrant lock and accessor-bypassing atomics next to their
// correct counterparts) and notspatial (rule 1 out of scope).
func TestLockdiscipline(t *testing.T) {
	atest.Run(t, "testdata", lockdiscipline.Analyzer, "spatialdb", "notspatial")
}
