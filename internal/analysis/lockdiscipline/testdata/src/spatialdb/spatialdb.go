// Package spatialdb is the deliberately-wrong lockdiscipline fixture:
// its basename turns on the re-entrant-locking rule, and the snap field
// opts into accessor enforcement. Every bug the analyzer exists to
// catch appears here next to its correct counterpart.
package spatialdb

import (
	"sync"
	"sync/atomic"
)

type snapshot struct{ n int }

// Table mirrors the real spatialdb table: an RWMutex over mutable
// state, plus an atomically published snapshot.
type Table struct {
	mu    sync.RWMutex
	items []int

	// snap is published by rebuild and read by loadFresh, only.
	//popvet:accessors loadFresh rebuild
	snap atomic.Pointer[snapshot]
}

// Count takes the read lock.
func (t *Table) Count() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.items)
}

// countLocked expects the caller to hold the lock: the sanctioned
// helper shape.
func (t *Table) countLocked() int { return len(t.items) }

// Insert deadlocks: it calls Count while still holding mu.
func (t *Table) Insert(x int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.items = append(t.items, x)
	return t.Count() // want `calls Count while holding Table\.mu`
}

// InsertFixed routes through the Locked helper: allowed.
func (t *Table) InsertFixed(x int) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.items = append(t.items, x)
	return t.countLocked()
}

// Rebalance releases inline before re-locking through Count: allowed.
func (t *Table) Rebalance() int {
	t.mu.Lock()
	t.items = append(t.items, 0)
	t.mu.Unlock()
	return t.Count()
}

// loadFresh is the sanctioned read accessor.
func (t *Table) loadFresh() *snapshot { return t.snap.Load() }

// rebuild is the sanctioned publisher.
func (t *Table) rebuild() {
	t.mu.RLock()
	defer t.mu.RUnlock()
	t.snap.Store(&snapshot{n: len(t.items)})
}

// Peek reads the snapshot pointer around the accessor: flagged.
func (t *Table) Peek() int {
	s := t.snap.Load() // want `Load of published pointer snap outside its sanctioned accessors`
	if s == nil {
		return 0
	}
	return s.n
}

// Reset publishes outside the sanctioned writer: flagged.
func (t *Table) Reset() {
	t.snap.Store(nil) // want `Store of published pointer snap outside its sanctioned accessors`
}

// Drain has a justified one-off and carries a suppression: allowed.
func (t *Table) Drain() *snapshot {
	//popvet:allow lockdiscipline -- fixture pins suppression: shutdown path, no readers remain
	return t.snap.Swap(nil)
}

// shard mirrors one spatial partition of the sharded write path. The
// striped mutex opts into ordered-acquisition enforcement: only the
// named ascending-order helpers may take more than one shard lock.
type shard struct {
	//popvet:ordered lockAll rlockAll
	mu sync.RWMutex
	n  int
}

// Sharded mirrors the sharded table: one mutex per spatial shard.
type Sharded struct {
	shards []*shard
}

// lockAll is the audited ascending-order helper: its loop acquisition
// is sanctioned by the directive.
func lockAll(ss []*shard) {
	for _, s := range ss {
		s.mu.Lock()
	}
}

func unlockAll(ss []*shard) {
	for i := len(ss) - 1; i >= 0; i-- {
		ss[i].mu.Unlock()
	}
}

// rlockAll is the audited read-side helper.
func rlockAll(ss []*shard) {
	for _, s := range ss {
		s.mu.RLock()
	}
}

func runlockAll(ss []*shard) {
	for i := len(ss) - 1; i >= 0; i-- {
		ss[i].mu.RUnlock()
	}
}

// AddOne takes a single shard lock in a straight line: allowed.
func (t *Sharded) AddOne(i, x int) {
	s := t.shards[i]
	s.mu.Lock()
	s.n += x
	s.mu.Unlock()
}

// MovePair deadlocks against a concurrent MovePair(j, i): it grabs two
// shard mutexes in argument order, not shard order, so two calls with
// swapped arguments each hold the lock the other wants. Flagged.
func (t *Sharded) MovePair(i, j int) {
	t.shards[i].mu.Lock() // want `MovePair acquires striped mutex mu at 2 sites`
	t.shards[j].mu.Lock()
	t.shards[i].n--
	t.shards[j].n++
	t.shards[j].mu.Unlock()
	t.shards[i].mu.Unlock()
}

// Total hand-rolls the every-shard loop instead of using rlockAll: one
// static site, many dynamic acquisitions, no order audit. Flagged.
func (t *Sharded) Total() int {
	sum := 0
	for _, s := range t.shards {
		s.mu.RLock() // want `Total acquires striped mutex mu inside a loop`
		sum += s.n
		s.mu.RUnlock()
	}
	return sum
}

// TotalFixed routes the multi-acquisition through the helper: allowed.
func (t *Sharded) TotalFixed() int {
	rlockAll(t.shards)
	defer runlockAll(t.shards)
	sum := 0
	for _, s := range t.shards {
		sum += s.n
	}
	return sum
}
