// Package notspatial shows the re-entrant-locking rule is scoped to
// spatialdb packages: the same deadlocking shape goes unflagged here.
// (The accessor rule applies everywhere, but no field opts in.)
package notspatial

import "sync"

type Cache struct {
	mu sync.Mutex
	n  int
}

func (c *Cache) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bump re-enters through Get — a real bug, but outside this analyzer's
// jurisdiction.
func (c *Cache) Bump() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.Get()
}
