// Package segment is a syncdiscipline fixture mirroring the real
// segment package's atomic-write patterns.
package segment

import "os"

// SyncDir fsyncs a directory, completing the durability ladder.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// writeAtomic is the canonical ladder: temp → write → Sync → Close →
// rename → dir-sync, error paths cleaning up. Allowed.
func writeAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "seg-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// renameBeforeClose publishes the temp file while the handle is still
// open: the rename can land before the data does.
func renameBeforeClose(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "seg-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := os.Rename(name, path); err != nil { // want `os.Rename publishes tmp while synced but not closed`
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return SyncDir(dir)
}

// missingDirSync stops the ladder before the directory fsync: after a
// crash the rename itself may be lost.
func missingDirSync(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "seg-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		return err
	}
	return nil // want `temp file tmp is renamed but directory not synced`
}

// closeWithoutSync renames a never-synced temp file: the classic
// publish-before-durability bug.
func closeWithoutSync(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "seg-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil { // want `os.Rename publishes tmp while closed without Sync`
		return err
	}
	if err := SyncDir(dir); err != nil {
		return err
	}
	return nil
}
