// Package wal is a syncdiscipline fixture mirroring the real WAL's
// file-handling patterns, including a cross-package ladder finished
// by segment.SyncDir.
package wal

import (
	"os"

	"segment"
)

// handle adopts a file; ownership transfers to the caller.
type handle struct {
	f *os.File
}

// openClean closes on every path via defer. Allowed.
func openClean(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var buf [8]byte
	_, err = f.Read(buf[:])
	return err
}

// adopt hands the handle off to the returned struct. Allowed: escape
// transfers the Close obligation.
func adopt(path string) (*handle, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return &handle{f: f}, nil
}

// checkpoint publishes a WAL checkpoint through the full ladder,
// finishing with the cross-package segment.SyncDir. Allowed.
func checkpoint(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, "wal-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if err := segment.SyncDir(dir); err != nil {
		return err
	}
	return nil
}

// leakOnEarlyReturn forgets Close on one path.
func leakOnEarlyReturn(path string, skip bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if skip {
		return nil // want `f may still be open at this return`
	}
	return f.Close()
}

// tornWrite appends after the last Sync and then succeeds: the tail
// bytes may never reach the device.
func tornWrite(path string, tail []byte) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if _, err := f.Write(tail); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil // want `f has writes after its last Sync`
}

// parkedHandle is the suppressed case: the leak is acknowledged with
// a justification, so popvet stays quiet.
func parkedHandle(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	//popvet:allow syncdiscipline -- handle is parked in a process-lifetime registry below
	return f.Name(), nil
}
