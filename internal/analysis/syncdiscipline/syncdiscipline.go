// Package syncdiscipline checks the durability ladder in the storage
// packages (internal/wal, internal/segment): a file created for
// atomic publication must travel Sync → Close → rename → directory
// sync, in that order, on every non-error path; no locally opened
// *os.File may still be open at a return unless it was handed off
// (escaped) or has a deferred Close; and no write may land after a
// Sync on the same handle without a later re-sync — that is exactly
// the torn-write hole the WAL's CRC framing cannot detect, because the
// bytes made it to the page cache but were never forced to the device
// before the rename published them.
//
// The analyzer is built on the internal/analysis/cfg control-flow
// graphs: a forward dataflow pass tracks each locally opened file
// through a small state machine
//
//	created → synced → closed → renamed → dir-synced
//
// with a dirty state for write-after-sync, and inspects the state
// reaching every return. Escape (returning the handle, storing it in
// a struct, passing it to another function) transfers ownership and
// ends tracking — inter-procedural discipline is the callee's
// problem. Only files obtained from os.CreateTemp are held to the
// full ladder; files from os.Open / os.OpenFile are long-lived
// handles (the WAL keeps its file open) and are checked only for the
// leak and torn-write rules.
package syncdiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"popana/internal/analysis"
	"popana/internal/analysis/cfg"
)

// Analyzer is the popvet entry point.
var Analyzer = &analysis.Analyzer{
	Name: "syncdiscipline",
	Doc: "enforce the Sync→Close→rename→SyncDir durability ladder on temp files, " +
		"Close-or-escape on every locally opened *os.File, and no write after Sync " +
		"without re-sync, in internal/wal and internal/segment",
	Run: run,
}

// targets are the package basenames the ladder applies to. Fixture
// packages named wal/segment match via PathBase, like the real ones.
var targets = map[string]bool{
	"wal":     true,
	"segment": true,
}

func run(pass *analysis.Pass) error {
	if !targets[analysis.PathBase(pass.PkgPath)] {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// origin says how a tracked file was obtained.
type origin uint8

const (
	originTemp origin = iota // os.CreateTemp: full ladder required
	originOpen               // os.Open / os.OpenFile: leak + torn-write rules only
)

// state is a rung of the durability ladder.
type state uint8

const (
	stCreated     state = iota // open, never synced (writes fine)
	stDirty                    // open, written after a Sync — torn-write window
	stSynced                   // open, Sync'd, clean
	stClosedNS                 // closed without ever syncing
	stClosedDirty              // closed with writes after the last Sync
	stClosed                   // synced then closed
	stRenamed                  // closed then renamed into place
	stDirSynced                // renamed then directory synced: ladder complete
	stEscaped                  // ownership handed off; tracking ends
)

func (s state) String() string {
	switch s {
	case stCreated:
		return "unsynced"
	case stDirty:
		return "written after Sync"
	case stSynced:
		return "synced but not closed"
	case stClosedNS:
		return "closed without Sync"
	case stClosedDirty:
		return "closed with writes after its last Sync"
	case stClosed:
		return "closed but not renamed"
	case stRenamed:
		return "renamed but directory not synced"
	case stDirSynced:
		return "durable"
	case stEscaped:
		return "escaped"
	}
	return "?"
}

// open reports whether the handle still needs a Close.
func (s state) open() bool {
	return s == stCreated || s == stDirty || s == stSynced
}

// varFact is the dataflow fact for one tracked variable.
type varFact struct {
	origin      origin
	st          state
	deferClosed bool // a defer v.Close() has executed on this path
}

// fact maps each tracked file variable to its ladder state.
type fact map[*types.Var]varFact

// checker holds the per-function analysis state.
type checker struct {
	pass    *analysis.Pass
	fn      *ast.FuncDecl
	tracked map[*types.Var]origin
	// aliases maps a string variable assigned from v.Name() to the
	// file variable v, so os.Rename(tmpName, ...) is attributed.
	aliases map[*types.Var]*types.Var
	// errPair maps the error variable of `f, err := os.Open(...)` to
	// f, so the `if err != nil` edge can invalidate the handle (on
	// that branch f is nil — no Close owed).
	errPair map[*types.Var]*types.Var
	// errResult is the index of the trailing error result in the
	// function signature, or -1.
	errResult int
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	c := &checker{
		pass:      pass,
		fn:        fn,
		tracked:   map[*types.Var]origin{},
		aliases:   map[*types.Var]*types.Var{},
		errPair:   map[*types.Var]*types.Var{},
		errResult: errResultIndex(pass, fn),
	}
	c.collectTracked()
	if len(c.tracked) == 0 {
		return
	}
	c.collectAliases()

	g := cfg.New(fn.Body)
	flow := &cfg.Forward[fact]{
		Init:  func() fact { return fact{} },
		Clone: cloneFact,
		Join:  joinFact,
		Transfer: func(f *fact, n ast.Node) {
			c.step(*f, n, nil)
		},
		Edge: c.edge,
	}
	entry := flow.Solve(g)

	// Reporting pass: one sequential walk per reachable block with
	// the solved entry fact, so each violating node reports once.
	reach := g.Reachable()
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		f := cloneFact(entry[blk.Index])
		for _, n := range blk.Nodes {
			c.step(f, n, c.pass.Reportf)
		}
	}
}

func cloneFact(f fact) fact {
	c := make(fact, len(f))
	for k, v := range f {
		c[k] = v
	}
	return c
}

// joinFact merges path facts pessimistically: the least-advanced rung
// wins (a path where the file is still open makes the merge "open"),
// escape on any path wins (ownership left this function), and a
// deferred Close must hold on all paths to count.
func joinFact(into *fact, from fact) bool {
	changed := false
	for v, fv := range from {
		iv, ok := (*into)[v]
		if !ok {
			(*into)[v] = fv
			changed = true
			continue
		}
		merged := iv
		if fv.st == stEscaped || iv.st == stEscaped {
			merged.st = stEscaped
		} else if fv.st < iv.st {
			merged.st = fv.st
		}
		merged.deferClosed = iv.deferClosed && fv.deferClosed
		if merged != iv {
			(*into)[v] = merged
			changed = true
		}
	}
	return changed
}

// reporter is Pass.Reportf's shape; nil during fixpoint solving.
type reporter func(pos token.Pos, format string, args ...any)

// collectTracked finds local variables assigned directly from
// os.CreateTemp / os.Open / os.OpenFile.
func (c *checker) collectTracked() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		org, ok := openOrigin(call)
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true
		}
		if v := c.localVar(id); v != nil && isOSFile(v.Type()) {
			c.tracked[v] = org
			if len(as.Lhs) == 2 {
				if errID, ok := as.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
					if ev := c.localVar(errID); ev != nil {
						c.errPair[ev] = v
					}
				}
			}
		}
		return true
	})
}

// edge refines the fact along a branch: on the error edge of the
// `if err != nil` check paired with the open call, the handle is nil
// and owes nothing — but only while the file is still in its initial
// state (once written or synced, a reused err var proves nothing).
func (c *checker) edge(from *cfg.Block, edge int, f *fact) {
	if from.Kind != cfg.KindCond || len(from.Nodes) == 0 {
		return
	}
	bin, ok := from.Nodes[len(from.Nodes)-1].(*ast.BinaryExpr)
	if !ok {
		return
	}
	var errHolds int
	switch bin.Op {
	case token.NEQ:
		errHolds = 0 // err != nil: true edge
	case token.EQL:
		errHolds = 1 // err == nil: false edge
	default:
		return
	}
	if edge != errHolds {
		return
	}
	errID, ok := nilComparand(bin)
	if !ok {
		return
	}
	ev := c.localVar(errID)
	if ev == nil {
		return
	}
	fileVar, ok := c.errPair[ev]
	if !ok {
		return
	}
	if fv, ok := (*f)[fileVar]; ok && fv.st == stCreated {
		fv.st = stEscaped
		(*f)[fileVar] = fv
	}
}

// nilComparand returns the non-nil ident of an `x != nil` / `nil != x`
// comparison.
func nilComparand(bin *ast.BinaryExpr) (*ast.Ident, bool) {
	x, xok := bin.X.(*ast.Ident)
	y, yok := bin.Y.(*ast.Ident)
	if !xok || !yok {
		return nil, false
	}
	switch {
	case y.Name == "nil" && x.Name != "nil":
		return x, true
	case x.Name == "nil" && y.Name != "nil":
		return y, true
	}
	return nil, false
}

// collectAliases finds `name := v.Name()` for tracked v.
func (c *checker) collectAliases() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 1 {
			return true
		}
		fv := c.fileOfNameCall(as.Rhs[0])
		if fv == nil {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if v := c.localVar(id); v != nil {
				c.aliases[v] = fv
			}
		}
		return true
	})
}

// fileOfNameCall returns the tracked file variable when e is
// `v.Name()`, else nil.
func (c *checker) fileOfNameCall(e ast.Expr) *types.Var {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Name" {
		return nil
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if v := c.trackedIdent(id); v != nil {
			return v
		}
	}
	return nil
}

// localVar resolves an ident to its *types.Var (def or use).
func (c *checker) localVar(id *ast.Ident) *types.Var {
	if obj := c.pass.Info.Defs[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	if obj := c.pass.Info.Uses[id]; obj != nil {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}

// trackedIdent resolves an ident to a tracked file variable.
func (c *checker) trackedIdent(id *ast.Ident) *types.Var {
	v := c.localVar(id)
	if v == nil {
		return nil
	}
	if _, ok := c.tracked[v]; ok {
		return v
	}
	return nil
}

// step applies one CFG node's effect to the fact, reporting
// violations when report is non-nil (the post-solve walk).
func (c *checker) step(f fact, n ast.Node, report reporter) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		// Gen: v, err := os.CreateTemp(...)
		if len(n.Rhs) == 1 {
			if call, ok := n.Rhs[0].(*ast.CallExpr); ok {
				if org, ok := openOrigin(call); ok {
					if id, ok := n.Lhs[0].(*ast.Ident); ok {
						if v := c.trackedIdent(id); v != nil {
							f[v] = varFact{origin: org, st: stCreated}
							c.walkExpr(f, call, report, true) // args may reference other tracked vars
							return
						}
					}
				}
				// Alias assignment (name := v.Name()) has no effect.
				if c.fileOfNameCall(n.Rhs[0]) != nil {
					return
				}
			}
		}
		for _, e := range n.Rhs {
			c.walkExpr(f, e, report, false)
		}
		for _, e := range n.Lhs {
			// Writing a tracked var into an index/selector target
			// does not escape it; only RHS occurrences do.
			if _, ok := e.(*ast.Ident); !ok {
				c.walkExpr(f, e, report, false)
			}
		}

	case *ast.DeferStmt:
		// defer v.Close() satisfies the leak rule for all later
		// exits on this path. Any other deferred use of a tracked
		// var (closures included) escapes it.
		if v, method := c.methodCall(n.Call); v != nil {
			if method == "Close" {
				fv := f[v]
				fv.deferClosed = true
				f[v] = fv
				return
			}
		}
		c.walkExpr(f, n.Call, report, false)

	case *ast.ReturnStmt:
		for _, e := range n.Results {
			c.walkExpr(f, e, report, false)
		}
		c.checkReturn(f, n, report)

	case *ast.ExprStmt:
		c.walkExpr(f, n.X, report, false)

	case ast.Expr:
		c.walkExpr(f, n, report, false)

	case *ast.IncDecStmt:
		c.walkExpr(f, n.X, report, false)

	case *ast.SendStmt:
		c.walkExpr(f, n.Chan, report, false)
		c.walkExpr(f, n.Value, report, false)

	case *ast.GoStmt:
		c.walkExpr(f, n.Call, report, false)

	case *ast.DeclStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		// no effect

	default:
		if stmt, ok := n.(ast.Stmt); ok {
			// Remaining statements (range clauses land as exprs):
			// conservatively scan for tracked uses.
			ast.Inspect(stmt, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					c.walkExpr(f, e, report, false)
					return false
				}
				return true
			})
		}
	}
}

// walkExpr scans an expression for calls with ladder effects and for
// escaping uses of tracked variables. inCall marks that the immediate
// context already consumed the expression (origin calls).
func (c *checker) walkExpr(f fact, e ast.Expr, report reporter, inCall bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.call(f, n, report)
			return false
		case *ast.FuncLit:
			// A closure capturing a tracked var escapes it.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v := c.trackedIdent(id); v != nil {
						c.escape(f, v)
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if v := c.trackedIdent(n); v != nil {
				c.escape(f, v)
			}
		}
		return true
	})
}

// escape marks a tracked variable as handed off.
func (c *checker) escape(f fact, v *types.Var) {
	fv := f[v]
	fv.st = stEscaped
	f[v] = fv
}

// methodCall returns (trackedVar, methodName) when call is
// `v.Method(...)` on a tracked ident.
func (c *checker) methodCall(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, ""
	}
	if v := c.trackedIdent(id); v != nil {
		return v, sel.Sel.Name
	}
	return nil, ""
}

// call applies one call expression's ladder effect.
func (c *checker) call(f fact, call *ast.CallExpr, report reporter) {
	// Method on a tracked handle.
	if v, method := c.methodCall(call); v != nil {
		fv := f[v]
		switch method {
		case "Write", "WriteAt", "WriteString", "WriteTo", "ReadFrom", "Truncate":
			switch fv.st {
			case stSynced:
				fv.st = stDirty
			case stClosedNS, stClosed, stRenamed, stDirSynced:
				if report != nil {
					report(call.Pos(), "write to %s after Close", v.Name())
				}
			}
		case "Sync":
			if fv.st == stCreated || fv.st == stDirty || fv.st == stSynced {
				fv.st = stSynced
			}
		case "Close":
			switch fv.st {
			case stDirty:
				fv.st = stClosedDirty
			case stCreated:
				fv.st = stClosedNS
			case stSynced:
				fv.st = stClosed
			}
		case "Name", "Read", "ReadAt", "Seek", "Stat", "Fd":
			// neutral
		default:
			// Unknown method: keep tracking (methods cannot steal
			// ownership of the handle).
		}
		f[v] = fv
		for _, arg := range call.Args {
			c.walkExpr(f, arg, report, false)
		}
		return
	}

	// os.Rename(oldpath, ...) where oldpath names a tracked file.
	if isPkgCall(call, "os", "Rename") && len(call.Args) == 2 {
		if v := c.renameTarget(call.Args[0]); v != nil {
			fv := f[v]
			switch fv.st {
			case stClosed:
				fv.st = stRenamed
			case stEscaped:
				// not ours anymore
			default:
				if report != nil {
					report(call.Pos(), "os.Rename publishes %s while %s (ladder: Sync, Close, rename, SyncDir)", v.Name(), fv.st)
				}
				fv.st = stRenamed
			}
			f[v] = fv
			c.walkExpr(f, call.Args[1], report, false)
			return
		}
	}

	// os.Remove of a temp name: cleanup, no ladder effect.
	if isPkgCall(call, "os", "Remove") && len(call.Args) == 1 {
		if c.renameTarget(call.Args[0]) != nil {
			return
		}
	}

	// SyncDir(dir): the directory fsync completing the ladder for
	// every renamed file. Matched by name so both segment.SyncDir
	// and an in-package SyncDir count.
	if calleeName(call) == "SyncDir" {
		for v, fv := range f {
			if fv.st == stRenamed {
				fv.st = stDirSynced
				f[v] = fv
			}
		}
		for _, arg := range call.Args {
			c.walkExpr(f, arg, report, false)
		}
		return
	}

	// Any other call: tracked vars passed as arguments escape.
	c.walkExpr(f, call.Fun, report, false)
	for _, arg := range call.Args {
		c.walkExpr(f, arg, report, false)
	}
}

// renameTarget resolves a path argument to the tracked file it names:
// either `v.Name()` inline or a string variable assigned from it.
func (c *checker) renameTarget(e ast.Expr) *types.Var {
	if v := c.fileOfNameCall(e); v != nil {
		return v
	}
	if id, ok := e.(*ast.Ident); ok {
		if v := c.localVar(id); v != nil {
			return c.aliases[v]
		}
	}
	return nil
}

// checkReturn inspects the ladder state reaching a return statement.
func (c *checker) checkReturn(f fact, ret *ast.ReturnStmt, report reporter) {
	if report == nil {
		return
	}
	nonError := c.isNonErrorReturn(ret)
	for v, fv := range f {
		if fv.st == stEscaped {
			continue
		}
		// Leak rule: every return, error or not.
		if fv.st.open() && !fv.deferClosed {
			report(ret.Pos(), "%s may still be open at this return (close it or hand it off on every path)", v.Name())
			continue
		}
		if !nonError {
			continue
		}
		// Torn-write rule: succeeding with unsynced writes, whether
		// the handle was since closed or has a deferred Close.
		if fv.st == stDirty || fv.st == stClosedDirty {
			report(ret.Pos(), "%s has writes after its last Sync at this non-error return (torn-write hole: re-sync before Close)", v.Name())
			continue
		}
		// Full ladder: only for temp files on non-error returns.
		if c.tracked[v] == originTemp && fv.st != stDirSynced {
			report(ret.Pos(), "temp file %s is %s at this non-error return (ladder: Sync, Close, rename, SyncDir)", v.Name(), fv.st)
		}
	}
}

// isNonErrorReturn reports whether ret is provably a success return:
// the function's error result position holds a literal nil (or the
// signature has no error result and the return is explicit). Naked
// returns and computed error expressions are treated as error paths —
// the ladder is only enforced where success is certain, trading
// recall for zero false positives on error-unwinding paths.
func (c *checker) isNonErrorReturn(ret *ast.ReturnStmt) bool {
	if c.errResult < 0 {
		return true
	}
	if len(ret.Results) <= c.errResult {
		return false // naked return: unknowable
	}
	if id, ok := ret.Results[c.errResult].(*ast.Ident); ok {
		return id.Name == "nil"
	}
	return false
}

// errResultIndex finds the index of the last result of type error in
// fn's signature, or -1.
func errResultIndex(pass *analysis.Pass, fn *ast.FuncDecl) int {
	obj := pass.Info.Defs[fn.Name]
	if obj == nil {
		return -1
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return -1
	}
	res := sig.Results()
	for i := res.Len() - 1; i >= 0; i-- {
		if named, ok := res.At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return i
			}
		}
	}
	return -1
}

// openOrigin classifies a call as a tracked file source.
func openOrigin(call *ast.CallExpr) (origin, bool) {
	switch {
	case isPkgCall(call, "os", "CreateTemp"), isPkgCall(call, "os", "Create"):
		return originTemp, true
	case isPkgCall(call, "os", "Open"), isPkgCall(call, "os", "OpenFile"):
		return originOpen, true
	}
	return 0, false
}

// isPkgCall reports whether call is pkg.Fn(...) syntactically.
func isPkgCall(call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// calleeName returns the bare called function name for ident or
// selector callees.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// isOSFile reports whether t is *os.File.
func isOSFile(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
