package syncdiscipline_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/syncdiscipline"
)

// TestFixtures runs the analyzer over the wal+segment fixture pair.
// The wal fixture imports the segment fixture (segment.SyncDir
// finishing a checkpoint ladder), so this exercises multi-package
// loading with cross-package type info.
func TestFixtures(t *testing.T) {
	atest.Run(t, "testdata", syncdiscipline.Analyzer, "wal", "segment")
}
