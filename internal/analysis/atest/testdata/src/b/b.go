// Package b is the imported half of atest's own fixture: package a
// calls into it, so the runner must resolve cross-package type info.
package b

// Boom is flagged at call sites by the toy analyzer.
func Boom() {}

// Quiet is never flagged.
func Quiet() {}

func local() { Boom() } // want `call to Boom \(package b\)`
