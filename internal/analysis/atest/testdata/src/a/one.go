// Package a spans two files and imports fixture package b: wants must
// be honored in every file, and the b.Boom call only resolves if the
// loader carries b's type info across the import.
package a

import "b"

func f() { b.Boom() } // want `call to Boom \(package b\)`

func g() { b.Quiet() }
