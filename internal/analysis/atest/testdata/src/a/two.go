package a

// BoomTwo lives in the package's second file, proving multi-file
// fixtures collect wants beyond the first file.
func BoomTwo() {}

func h() { BoomTwo() } // want `call to BoomTwo \(package a\)`
