// Package atest runs popvet analyzers over testdata fixture trees, in
// the manner of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under <analyzer>/testdata/src/<pkg>/ and marks the
// lines an analyzer must flag with trailing comments:
//
//	x := rand.Int() // want `thread an xrand stream`
//
// The quoted text is a regular expression matched against the
// diagnostic message. Every want must be matched by exactly one
// diagnostic on its line and every diagnostic must match a want, so a
// fixture demonstrates both flagged and allowed cases. //popvet:allow
// suppressions are honored exactly as in cmd/popvet, which lets a
// fixture also pin the suppression behavior.
package atest

import (
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"popana/internal/analysis"
)

// T is the subset of *testing.T the runner uses. Tests of atest itself
// substitute a recorder to assert which mismatches are reported; a
// substitute's Fatal/Fatalf must stop the calling goroutine the way
// *testing.T does (panic works).
type T interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
	Errorf(format string, args ...any)
}

// want is one expectation: a line that must produce a diagnostic whose
// message matches rx.
type want struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRE = regexp.MustCompile("//\\s*want\\s+((?:[`\"][^`\"]*[`\"]\\s*)+)$")
var wantArgRE = regexp.MustCompile("[`\"]([^`\"]*)[`\"]")

// Run loads the named fixture packages from dir/src, applies the
// analyzer, and compares its diagnostics against the // want comments.
// Packages may span multiple files and import each other (imports
// resolve against dir/src, with full cross-package type info). With no
// pkgs, every package directory under dir/src is discovered and loaded
// — the default for fixtures, so adding a package to the tree cannot
// silently go unchecked.
func Run(t T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join(dir, "src"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		if pkgs, err = discover(root); err != nil {
			t.Fatalf("discovering fixture packages under %s: %v", root, err)
		}
		if len(pkgs) == 0 {
			t.Fatalf("no fixture packages under %s", root)
		}
	}
	loaded, fset, deps, err := analysis.Load(analysis.Config{Root: root}, pkgs)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", root, err)
	}
	if len(loaded) != len(pkgs) {
		t.Fatalf("loaded %d packages, want %d (%v)", len(loaded), len(pkgs), pkgs)
	}
	findings, err := analysis.Run(fset, loaded, deps, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, loaded)
	for _, f := range findings {
		if w := matchWant(wants, f); w != nil {
			w.matched = true
			continue
		}
		t.Errorf("unexpected diagnostic at %s:%d: %s", rel(root, f.Pos.Filename), f.Pos.Line, f.Message)
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", rel(root, w.file), w.line, w.rx)
		}
	}
}

// discover lists every directory under root that holds at least one
// non-test .go file, as a root-relative package path.
func discover(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return err
		}
		r, err := filepath.Rel(root, filepath.Dir(path))
		if err != nil {
			return err
		}
		seen[filepath.ToSlash(r)] = true
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	pkgs := make([]string, 0, len(seen))
	for p := range seen {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return pkgs, nil
}

func rel(root, file string) string {
	if r, err := filepath.Rel(root, file); err == nil {
		return r
	}
	return file
}

func matchWant(wants []*want, f analysis.Finding) *want {
	for _, w := range wants {
		if !w.matched && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
			return w
		}
	}
	return nil
}

// collectWants scans fixture comments for // want expectations.
func collectWants(t T, fset *token.FileSet, pkgs []*analysis.Package) []*want {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						if strings.Contains(c.Text, "want ") && strings.Contains(c.Text, "`") {
							t.Fatalf("%s: malformed want comment: %s", fset.Position(c.Pos()), c.Text)
						}
						continue
					}
					pos := fset.Position(c.Pos())
					for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
						rx, err := regexp.Compile(arg[1])
						if err != nil {
							t.Fatalf("%s: bad want regexp %s: %v", pos, strconv.Quote(arg[1]), err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
					}
				}
			}
		}
	}
	return wants
}

// MustFlag is a helper for negative tests outside fixture trees: it
// runs the analyzer over an ad-hoc tree and returns the findings.
func MustFlag(t *testing.T, root string, a *analysis.Analyzer, pkgs ...string) []analysis.Finding {
	t.Helper()
	loaded, fset, deps, err := analysis.Load(analysis.Config{Root: root}, pkgs)
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	findings, err := analysis.Run(fset, loaded, deps, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return findings
}
