package atest_test

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
	"testing"

	"popana/internal/analysis"
	"popana/internal/analysis/atest"
)

// boomAnalyzer flags every call to a function whose name starts with
// Boom, naming the callee's package — so a fixture want can only match
// when cross-package type info resolved the callee.
var boomAnalyzer = &analysis.Analyzer{
	Name: "boom",
	Doc:  "toy analyzer for atest's own tests",
	Run: func(pass *analysis.Pass) error {
		for _, file := range pass.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var id *ast.Ident
				switch fun := call.Fun.(type) {
				case *ast.Ident:
					id = fun
				case *ast.SelectorExpr:
					id = fun.Sel
				default:
					return true
				}
				if fn, ok := pass.Info.Uses[id].(*types.Func); ok &&
					strings.HasPrefix(fn.Name(), "Boom") && fn.Pkg() != nil {
					pass.Reportf(call.Pos(), "call to %s (package %s)", fn.Name(), fn.Pkg().Path())
				}
				return true
			})
		}
		return nil
	},
}

// silentAnalyzer reports nothing, so every want in the tree goes
// unmatched — the mismatch-reporting test's lever.
var silentAnalyzer = &analysis.Analyzer{
	Name: "silent",
	Doc:  "reports nothing",
	Run:  func(*analysis.Pass) error { return nil },
}

// TestRunDiscovery runs the fixture tree without naming packages: both
// a (two files) and b must be discovered, loaded together, and have
// every want matched.
func TestRunDiscovery(t *testing.T) {
	atest.Run(t, "testdata", boomAnalyzer)
}

// TestRunExplicit names the packages, pinning the original calling
// convention.
func TestRunExplicit(t *testing.T) {
	atest.Run(t, "testdata", boomAnalyzer, "a", "b")
}

// recorder satisfies atest.T, capturing reports instead of failing.
type recorder struct {
	errors []string
	fatal  bool
}

func (r *recorder) Helper() {}
func (r *recorder) Fatal(args ...any) {
	r.fatal = true
	panic("recorder.Fatal")
}
func (r *recorder) Fatalf(format string, args ...any) {
	r.fatal = true
	panic(fmt.Sprintf(format, args...))
}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, fmt.Sprintf(format, args...))
}

// TestRunReportsMismatches runs an analyzer that reports nothing over
// the same tree: every want must surface as an "expected diagnostic"
// error, proving the harness fails fixtures rather than silently
// passing them.
func TestRunReportsMismatches(t *testing.T) {
	rec := &recorder{}
	atest.Run(rec, "testdata", silentAnalyzer)
	if rec.fatal {
		t.Fatalf("harness died instead of reporting mismatches: %v", rec.errors)
	}
	if len(rec.errors) != 3 {
		t.Fatalf("got %d errors, want 3 (one per want in the tree): %v", len(rec.errors), rec.errors)
	}
	for _, e := range rec.errors {
		if !strings.Contains(e, "expected diagnostic matching") {
			t.Errorf("unexpected error shape: %s", e)
		}
	}
}
