// Package floatcmp implements the popvet analyzer that bans naked
// floating-point equality in the numeric packages.
//
// The transform-matrix and fixed-point machinery (core, solver, vecmat,
// statmodel) is exactly the kind of code where a careless == on float64
// silently degrades: a convergence check that compares a residual for
// exact equality spins forever on denormal noise, and an equality test
// between a recomputed and a cached value starts failing the day a
// compiler reassociates an expression. The repository's rule is that
// every float comparison states its intent through a named helper in
// internal/fmath — Zero/Eq for deliberate exactness, Near/NearZero for
// tolerance tests — so intent is visible at the call site and the
// analyzer can reject everything else.
//
// The analyzer flags ==/!= where either operand is a float (float64,
// float32, or an untyped float constant) in packages whose basename is
// core, solver, vecmat, or statmodel. Comparisons folded entirely from
// constants are ignored (they are evaluated at compile time, exactly).
// A site with a genuine reason to compare raw floats can carry a
// //popvet:allow floatcmp annotation with a justification.
package floatcmp

import (
	"go/ast"
	"go/token"
	"go/types"

	"popana/internal/analysis"
)

// Analyzer is the floatcmp popvet check.
var Analyzer = &analysis.Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= on floating-point values in core, solver, vecmat, statmodel; use internal/fmath helpers",
	Run:  run,
}

// targetBases are the numeric packages under the rule.
var targetBases = map[string]bool{
	"core":      true,
	"solver":    true,
	"vecmat":    true,
	"statmodel": true,
}

func run(pass *analysis.Pass) error {
	if !targetBases[analysis.PathBase(pass.PkgPath)] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xtv, ytv := pass.Info.Types[be.X], pass.Info.Types[be.Y]
			if !isFloat(xtv.Type) && !isFloat(ytv.Type) {
				return true
			}
			if xtv.Value != nil && ytv.Value != nil {
				return true // constant-folded: exact by construction
			}
			pass.Reportf(be.OpPos, "floating-point %s in %s; state intent with a fmath helper (fmath.Zero, fmath.Eq, fmath.Near) or annotate //popvet:allow floatcmp with a justification", be.Op, pass.PkgPath)
			return true
		})
	}
	return nil
}

// isFloat reports whether t is (or defaults to) a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Float32, types.Float64, types.UntypedFloat:
		return true
	}
	return false
}
