// Package core is a floatcmp fixture: its basename puts it under the
// numeric-package rule, so naked float equality is flagged while ints,
// orderings, constant folds, and fmath-style rewrites stay allowed.
package core

const eps = 1e-12

// Converged compares a residual for exact equality: flagged.
func Converged(residual float64) bool {
	return residual == 0 // want `floating-point ==`
}

// Changed tests two floats for inequality: flagged.
func Changed(a, b float64) bool {
	return a != b // want `floating-point !=`
}

// MixedConst still has a variable operand: flagged.
func MixedConst(x float64) bool {
	return x == 1.0 // want `floating-point ==`
}

// Narrow flags float32 too.
func Narrow(x float32) bool {
	return x == 0 // want `floating-point ==`
}

// Equal compares ints: allowed.
func Equal(a, b int) bool { return a == b }

// Below is an ordering, not an equality: allowed.
func Below(x float64) bool { return x < eps }

// exact is folded entirely from constants, evaluated exactly at
// compile time: allowed.
const exact = eps == 1e-12

// IsNaN has a genuine reason for raw self-comparison and carries a
// justified suppression: allowed.
func IsNaN(x float64) bool {
	//popvet:allow floatcmp -- fixture pins suppression: x != x is the NaN test
	return x != x
}
