// Package other is not one of the numeric packages (core, solver,
// vecmat, statmodel), so raw float comparison is allowed.
package other

// Same would be flagged in a numeric package.
func Same(a, b float64) bool { return a == b }
