package floatcmp_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/floatcmp"
)

// TestFloatcmp drives the fixture tree: core (under the rule) and
// other (outside it).
func TestFloatcmp(t *testing.T) {
	atest.Run(t, "testdata", floatcmp.Analyzer, "core", "other")
}
