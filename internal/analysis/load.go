package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Config locates a source tree for Load.
type Config struct {
	// Root is the directory holding the tree's packages.
	Root string
	// Module is the import-path prefix of packages under Root (the
	// module path). Empty means import paths equal the Root-relative
	// directory (the layout analyzer fixtures use).
	Module string
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Load parses and type-checks the requested packages (plus everything
// they import inside the tree) and returns them with the shared FileSet
// and the in-module import graph over every package loaded.
//
// paths lists Root-relative package directories ("." for the root
// package, "internal/core", ...); nil loads every package under Root.
// Test files (_test.go) and testdata directories are excluded: popvet
// checks the invariants of shipped code, and fixtures must not be
// swept into real runs.
//
// Standard-library imports are type-checked from GOROOT source via
// go/importer's "source" compiler, so loading works without compiled
// export data or network access.
func Load(cfg Config, paths []string) ([]*Package, *token.FileSet, map[string][]string, error) {
	if paths == nil {
		var err error
		paths, err = packageDirs(cfg.Root)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	l := &loader{
		cfg:  cfg,
		fset: token.NewFileSet(),
		pkgs: map[string]*Package{},
	}
	l.std = importer.ForCompiler(l.fset, "source", nil)
	var roots []*Package
	for _, rel := range paths {
		p, err := l.loadDir(l.importPath(rel), filepath.Join(cfg.Root, rel))
		if err != nil {
			return nil, nil, nil, err
		}
		if p != nil {
			roots = append(roots, p)
		}
	}
	deps := map[string][]string{}
	for path, p := range l.pkgs {
		var in []string
		for _, imp := range p.Types.Imports() {
			if _, ok := l.pkgs[imp.Path()]; ok {
				in = append(in, imp.Path())
			}
		}
		sort.Strings(in)
		deps[path] = in
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Path < roots[j].Path })
	return roots, l.fset, deps, nil
}

// packageDirs walks root and returns every Root-relative directory
// holding at least one non-test .go file, skipping testdata, hidden
// directories, and vendored trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			dirs = append(dirs, filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if isSourceFile(e) {
			return true
		}
	}
	return false
}

func isSourceFile(e fs.DirEntry) bool {
	name := e.Name()
	return !e.IsDir() && strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".")
}

type loader struct {
	cfg     Config
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading []string // stack for import-cycle reporting
}

// importPath converts a Root-relative directory to an import path.
func (l *loader) importPath(rel string) string {
	rel = filepath.ToSlash(rel)
	if rel == "." || rel == "" {
		if l.cfg.Module != "" {
			return l.cfg.Module
		}
		return "."
	}
	if l.cfg.Module != "" {
		return l.cfg.Module + "/" + rel
	}
	return rel
}

// dirFor resolves an import path to an in-tree directory, or reports
// that the path belongs to the standard library.
func (l *loader) dirFor(path string) (string, bool) {
	switch {
	case l.cfg.Module != "" && path == l.cfg.Module:
		return l.cfg.Root, true
	case l.cfg.Module != "" && strings.HasPrefix(path, l.cfg.Module+"/"):
		return filepath.Join(l.cfg.Root, path[len(l.cfg.Module)+1:]), true
	case l.cfg.Module == "":
		dir := filepath.Join(l.cfg.Root, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			return dir, true
		}
	}
	return "", false
}

// Import implements types.Importer over the tree plus the standard
// library, memoizing in-tree packages.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("analysis: package %s has no Go files in %s", path, dir)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks the package in dir under the given
// import path. It returns (nil, nil) for directories with no non-test
// Go files.
func (l *loader) loadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	for _, active := range l.loading {
		if active == path {
			return nil, fmt.Errorf("analysis: import cycle through %s (stack %s)", path, strings.Join(l.loading, " -> "))
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading %s: %w", dir, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !isSourceFile(e) {
			continue
		}
		fname := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	l.loading = append(l.loading, path)
	defer func() { l.loading = l.loading[:len(l.loading)-1] }()
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[path] = p
	return p, nil
}

// ModulePath reads the module path from the go.mod in dir.
func ModulePath(dir string) (string, error) {
	data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(rest); err == nil {
				return unq, nil
			}
			return rest, nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", dir)
}

// FindModuleRoot walks upward from dir to the nearest directory holding
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}
