// Package analysis is a small, dependency-free analog of
// golang.org/x/tools/go/analysis: just enough driver machinery to write
// type-checked static analyzers for this repository and run them from
// cmd/popvet.
//
// Why not the real thing? The invariants popvet guards (determinism of
// the parallel trial engine, the snapshot publish discipline, float
// comparison hygiene, fault-point registration) are repo-specific, and
// this module deliberately carries zero external dependencies. The
// subset implemented here — Analyzer, Pass, Reportf, a source loader
// with full type information, and an analysistest-style fixture runner
// (package atest) — is API-compatible enough that the analyzers could be
// ported to x/tools/go/analysis by changing imports.
//
// # Suppression
//
// A diagnostic can be silenced at a specific site with a justification
// comment on the flagged line or the line directly above it:
//
//	//popvet:allow detrand -- keys are sorted two lines down
//
// The analyzer name must match; a bare //popvet:allow without a name
// silences nothing. Suppressions are honored by both cmd/popvet and the
// fixture runner, so every analyzer's testdata includes a suppressed
// (allowed) case alongside flagged ones.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //popvet:allow comments.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed non-test source files, with
	// comments.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its expression
	// types, definitions, uses, and selections.
	Pkg  *types.Package
	Info *types.Info
	// PkgPath is the import path being analyzed.
	PkgPath string
	// ModuleDeps maps every loaded in-module package path to its
	// in-module imports. Analyzers that need whole-program facts (e.g.
	// "is this package reachable from the experiment runners?") derive
	// them from this graph.
	ModuleDeps map[string][]string

	diags []Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: analyzer, position, message, and
// whether a //popvet:allow directive suppressed it.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a diagnostic silenced by //popvet:allow. Run
	// drops these; RunAll keeps them so tooling (popvet -json, the
	// suppression-audit workflow) can see every acknowledged site.
	Suppressed bool
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// Run executes the analyzers over the loaded packages, drops suppressed
// diagnostics, and returns the remaining findings sorted by position.
// Analyzer errors (not findings) abort the run.
func Run(fset *token.FileSet, pkgs []*Package, deps map[string][]string, analyzers []*Analyzer) ([]Finding, error) {
	all, err := RunAll(fset, pkgs, deps, analyzers)
	if err != nil {
		return nil, err
	}
	out := all[:0]
	for _, f := range all {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out, nil
}

// RunAll is Run without the suppression filter: every diagnostic is
// returned, with Suppressed set on the ones a //popvet:allow directive
// covers, sorted by position.
func RunAll(fset *token.FileSet, pkgs []*Package, deps map[string][]string, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range pkgs {
		allow := allowedLines(fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:   a,
				Fset:       fset,
				Files:      pkg.Files,
				Pkg:        pkg.Types,
				Info:       pkg.Info,
				PkgPath:    pkg.Path,
				ModuleDeps: deps,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				pos := fset.Position(d.Pos)
				out = append(out, Finding{
					Analyzer:   a.Name,
					Pos:        pos,
					Message:    d.Message,
					Suppressed: allow.allows(pos, a.Name),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// allowSet records, per file and line, the analyzer names a
// //popvet:allow comment authorizes.
type allowSet map[string]map[int][]string

// allows reports whether a finding at pos is suppressed by an allow
// comment on its line or the line above.
func (s allowSet) allows(pos token.Position, analyzer string) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range [2]int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

const allowPrefix = "//popvet:allow"

// allowedLines scans every comment in the files for popvet:allow
// directives. The directive form is
//
//	//popvet:allow name1[,name2...] [-- justification]
func allowedLines(fset *token.FileSet, files []*ast.File) allowSet {
	set := allowSet{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, allowPrefix)
				if !ok {
					continue
				}
				names, _, _ := strings.Cut(strings.TrimSpace(text), "--")
				pos := fset.Position(c.Pos())
				lines := set[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					set[pos.Filename] = lines
				}
				for _, name := range strings.FieldsFunc(names, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				}) {
					lines[pos.Line] = append(lines[pos.Line], name)
				}
			}
		}
	}
	return set
}

// PathBase returns the last element of an import path: the package
// directory name the analyzers key their target sets on, so the same
// analyzer applies both to popana/internal/core and to a fixture package
// named core.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}
