package allocfree_test

import (
	"testing"

	"popana/internal/analysis/allocfree"
	"popana/internal/analysis/atest"
)

func TestFixtures(t *testing.T) {
	atest.Run(t, "testdata", allocfree.Analyzer, "linearquad")
}
