// Package allocfree rejects heap allocation in functions marked
// //popvet:noalloc — the static twin of linearquad's TestZeroAlloc,
// which pins every frozen read kernel at 0 allocs/op. The dynamic
// test only proves the inputs it runs; this analyzer proves the
// property over every reachable block of the marked functions, so an
// allocation hidden behind a rare branch (a fallback path, an error
// case) cannot slip past the benchmark-shaped test.
//
// The directive goes in the function's doc comment:
//
//	// Get reports the value stored at (x, y).
//	//popvet:noalloc
//	func (f *Frozen) Get(x, y uint32) (uint64, bool)
//
// Flagged constructs (in any block reachable from the entry):
// make/new/append, closures, slice/map literals and address-taken
// composite literals (struct and array value literals are stack
// values and pass), map writes, string concatenation,
// []byte/string/rune conversions, fmt calls, boxing a concrete value
// into an interface (arguments, assignments, returns),
// and calls to same-package functions that do not themselves carry
// //popvet:noalloc. Cross-package calls are exempt — the analyzer is
// intraprocedural plus a same-package closure rule, and the kernels
// by design only call math/bits-style leaf helpers across packages.
// A one-time setup allocation inside a kernel (growing a scratch
// buffer) is acknowledged with //popvet:allow allocfree and a
// justification, which keeps the hot path auditable.
package allocfree

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"popana/internal/analysis"
	"popana/internal/analysis/cfg"
)

// Directive is the marker comment, exported so the registry test that
// cross-checks the directive set against TestZeroAlloc's table and
// this analyzer cannot drift apart on the spelling.
const Directive = "//popvet:noalloc"

// Analyzer is the popvet entry point.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc: "reject heap allocation (make/new/append, closures, boxing, map writes, " +
		"string building, fmt) in any reachable block of a //popvet:noalloc function, " +
		"and require same-package callees to be marked too",
	Run: run,
}

func run(pass *analysis.Pass) error {
	marked := collectMarked(pass)
	if len(marked) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !HasDirective(fn) {
				continue
			}
			checkFunc(pass, fn, marked)
		}
	}
	return nil
}

// HasDirective reports whether fn's doc comment carries the noalloc
// marker.
func HasDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

// collectMarked gathers the *types.Func objects of every noalloc
// function in the package, for the same-package closure rule.
func collectMarked(pass *analysis.Pass) map[*types.Func]bool {
	marked := map[*types.Func]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || !HasDirective(fn) {
				continue
			}
			if obj, ok := pass.Info.Defs[fn.Name].(*types.Func); ok {
				marked[obj] = true
			}
		}
	}
	return marked
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl, marked map[*types.Func]bool) {
	g := cfg.New(fn.Body)
	reach := g.Reachable()
	c := &checker{pass: pass, fn: fn, marked: marked}
	for _, blk := range g.Blocks {
		if !reach[blk] {
			continue
		}
		for _, n := range blk.Nodes {
			c.node(n)
		}
	}
}

type checker struct {
	pass   *analysis.Pass
	fn     *ast.FuncDecl
	marked map[*types.Func]bool
}

// node scans one CFG node for allocating constructs.
func (c *checker) node(n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			c.report(m.Pos(), "closure literal allocates")
			return false // its body is the closure's problem
		case *ast.CompositeLit:
			// Struct and array value literals live on the stack; only
			// slice and map literals carry a backing allocation.
			if t := c.pass.Info.Types[m].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Slice:
					c.report(m.Pos(), "slice literal allocates")
				case *types.Map:
					c.report(m.Pos(), "map literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				if _, ok := m.X.(*ast.CompositeLit); ok {
					// &T{...} hands out a pointer the compiler may be
					// forced to heap-allocate; without escape analysis,
					// conservatively reject it in kernels.
					c.report(m.Pos(), "address of composite literal may allocate")
					return true
				}
				if c.escapingAddr(m) {
					c.report(m.Pos(), "taking an address that escapes allocates")
				}
			}
		case *ast.CallExpr:
			c.call(m)
		case *ast.BinaryExpr:
			if m.Op == token.ADD && c.isString(m.X) {
				c.report(m.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(m)
		case *ast.ReturnStmt:
			c.returnStmt(m)
		}
		return true
	})
}

func (c *checker) call(call *ast.CallExpr) {
	// Builtins and conversions.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			c.report(call.Pos(), "make allocates")
			return
		case "new":
			c.report(call.Pos(), "new allocates")
			return
		case "append":
			c.report(call.Pos(), "append may grow its backing array (reslice a pre-grown buffer instead)")
			return
		case "len", "cap", "copy", "min", "max", "delete", "clear", "panic", "print", "println", "recover":
			return
		}
	case *ast.SelectorExpr:
		if pkg, ok := fun.X.(*ast.Ident); ok {
			if obj, ok := c.pass.Info.Uses[pkg].(*types.PkgName); ok && obj.Imported().Path() == "fmt" {
				c.report(call.Pos(), "fmt.%s allocates (boxes arguments and builds strings)", fun.Sel.Name)
				return
			}
		}
	}

	// Conversion to an allocating type: string(b), []byte(s), []rune(s).
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to := tv.Type.Underlying()
		from := c.pass.Info.Types[call.Args[0]].Type
		if from != nil {
			switch to.(type) {
			case *types.Slice:
				if c.isString(call.Args[0]) {
					c.report(call.Pos(), "string-to-slice conversion allocates")
				}
			case *types.Basic:
				if to.(*types.Basic).Info()&types.IsString != 0 && !c.isString(call.Args[0]) {
					c.report(call.Pos(), "conversion to string allocates")
				}
			case *types.Interface:
				if _, concrete := from.Underlying().(*types.Interface); !concrete {
					// conversion from concrete to interface boxes
					c.report(call.Pos(), "conversion to interface boxes the value")
				}
			}
		}
		return
	}

	// Boxing at the call boundary: a concrete argument passed into an
	// interface parameter.
	if sig := c.signatureOf(call); sig != nil {
		params := sig.Params()
		for i, arg := range call.Args {
			var pt types.Type
			if sig.Variadic() && i >= params.Len()-1 {
				if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
					pt = s.Elem()
				}
			} else if i < params.Len() {
				pt = params.At(i).Type()
			}
			if pt != nil && c.boxes(arg, pt) {
				c.report(arg.Pos(), "argument boxes a concrete value into %s", pt)
			}
		}
	}

	// Same-package closure rule: a marked function may only call
	// same-package functions that are themselves marked. Cross-package
	// calls, builtins, and interface-method calls are exempt.
	if callee := c.calleeFunc(call); callee != nil {
		// Methods of instantiated generic types resolve to
		// instantiation objects; compare origins so countState[V]
		// methods match their declarations.
		callee = callee.Origin()
		self, _ := c.pass.Info.Defs[c.fn.Name].(*types.Func)
		if callee.Pkg() == c.pass.Pkg && !c.marked[callee] && callee != self {
			c.report(call.Pos(), "calls %s, which is not marked %s", callee.Name(), Directive)
		}
	}
}

func (c *checker) assign(as *ast.AssignStmt) {
	// Map writes allocate (bucket growth, key/value copying).
	for _, lhs := range as.Lhs {
		if idx, ok := lhs.(*ast.IndexExpr); ok {
			if t := c.pass.Info.Types[idx.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					c.report(lhs.Pos(), "map write allocates")
				}
			}
		}
	}
	// String += builds a new string.
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && c.isString(as.Lhs[0]) {
		c.report(as.Pos(), "string concatenation allocates")
	}
	// Boxing: concrete RHS into an interface-typed LHS.
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			if lt := c.pass.Info.Types[as.Lhs[i]].Type; lt != nil && c.boxes(as.Rhs[i], lt) {
				c.report(as.Rhs[i].Pos(), "assignment boxes a concrete value into %s", lt)
			}
		}
	}
}

func (c *checker) returnStmt(ret *ast.ReturnStmt) {
	obj, ok := c.pass.Info.Defs[c.fn.Name].(*types.Func)
	if !ok {
		return
	}
	results := obj.Type().(*types.Signature).Results()
	if len(ret.Results) != results.Len() {
		return
	}
	for i, e := range ret.Results {
		if c.boxes(e, results.At(i).Type()) {
			c.report(e.Pos(), "return boxes a concrete value into %s", results.At(i).Type())
		}
	}
}

// boxes reports whether assigning expr to a target of type to would
// box a concrete value into an interface. Untyped nil never boxes.
func (c *checker) boxes(e ast.Expr, to types.Type) bool {
	// A type parameter's underlying type is its constraint interface,
	// but passing a V into a V parameter is a plain copy, not a box.
	if _, isTP := to.(*types.TypeParam); isTP {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if b, ok := tv.Type.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
		return false // interface-to-interface: no box
	}
	return true
}

// escapingAddr reports whether &x plausibly escapes. Taking the
// address of a local that stays local is stack-allocated; without
// escape analysis we only flag &x of composite or index expressions
// when used outside simple field access — conservative no: the
// composite-literal rule already covers &T{...}. Keep this a hook.
func (c *checker) escapingAddr(*ast.UnaryExpr) bool { return false }

// signatureOf returns the callee's signature for ordinary calls.
func (c *checker) signatureOf(call *ast.CallExpr) *types.Signature {
	tv, ok := c.pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil || tv.IsType() {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// calleeFunc resolves the called function or method object, when it
// is a statically known func (not an interface method or func value).
func (c *checker) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if f, ok := c.pass.Info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := c.pass.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if f, ok := sel.Obj().(*types.Func); ok {
				// Interface-method calls have no body to audit;
				// exempt them (the kernels use none on hot paths).
				if _, isIface := sel.Recv().Underlying().(*types.Interface); !isIface {
					return f
				}
			}
			return nil
		}
		if f, ok := c.pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

func (c *checker) isString(e ast.Expr) bool {
	t := c.pass.Info.Types[e].Type
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *checker) report(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, "%s: "+format, append([]any{Directive}, args...)...)
}
