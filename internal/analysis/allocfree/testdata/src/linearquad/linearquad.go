// Package linearquad is an allocfree fixture mirroring the frozen
// read-kernel patterns the //popvet:noalloc directive protects.
package linearquad

import "fmt"

// frozen is a stand-in for the real Frozen snapshot.
type frozen struct {
	codes  []uint64
	vals   []uint64
	counts map[uint64]int
}

// get is a clean kernel: binary search over preallocated planes.
//
//popvet:noalloc
func (f *frozen) get(code uint64) (uint64, bool) {
	lo, hi := 0, len(f.codes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.codes[mid] < code {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.codes) && f.codes[lo] == code {
		return f.vals[lo], true
	}
	return 0, false
}

// contains delegates to a marked kernel: allowed.
//
//popvet:noalloc
func (f *frozen) contains(code uint64) bool {
	_, ok := f.get(code)
	return ok
}

// seek is self-recursive: allowed (recursion is not allocation).
//
//popvet:noalloc
func (f *frozen) seek(code uint64, depth int) int {
	if depth == 0 {
		return 0
	}
	return f.seek(code, depth-1)
}

// countBad allocates on the hot path in several ways.
//
//popvet:noalloc
func (f *frozen) countBad(codes []uint64) int {
	hits := make([]uint64, 0, len(codes)) // want `make allocates`
	for _, c := range codes {
		if _, ok := f.get(c); ok {
			hits = append(hits, c) // want `append may grow`
		}
	}
	f.counts[42] = len(hits) // want `map write allocates`
	return len(hits)
}

// describeBad boxes and formats.
//
//popvet:noalloc
func (f *frozen) describeBad(code uint64) string {
	return fmt.Sprintf("code=%d", code) // want `fmt.Sprintf allocates`
}

// labelBad builds strings and closures.
//
//popvet:noalloc
func (f *frozen) labelBad(prefix string, code uint64) func() string {
	s := prefix + "!"      // want `string concatenation allocates`
	return func() string { // want `closure literal allocates`
		return s
	}
}

// boxBad converts a concrete value into an interface argument.
//
//popvet:noalloc
func (f *frozen) boxBad(code uint64) {
	sink(code) // want `argument boxes a concrete value` `calls sink, which is not marked`
}

// helperBad calls an unmarked same-package helper: the closure rule.
//
//popvet:noalloc
func (f *frozen) helperBad(code uint64) bool {
	return unmarkedHelper(code) // want `calls unmarkedHelper, which is not marked`
}

func unmarkedHelper(code uint64) bool { return code != 0 }

func sink(v any) { _ = v }

// scratchGrow is the suppressed case: a one-time setup allocation
// acknowledged with a justification.
//
//popvet:noalloc
func (f *frozen) scratchGrow(n int) {
	if cap(f.vals) < n {
		//popvet:allow allocfree -- one-time scratch growth before the hot loop
		f.vals = make([]uint64, n)
	}
}

// deadBranch allocates only in unreachable code: allowed (the CFG
// reachability pass skips it).
//
//popvet:noalloc
func (f *frozen) deadBranch(code uint64) bool {
	_, ok := f.get(code)
	return ok
	f.vals = make([]uint64, 1) //nolint:govet // intentionally dead
	return false
}

// literals: struct and array value literals are stack values and
// pass; slice literals and address-taken literals allocate.
//
//popvet:noalloc
func (f *frozen) literals(code uint64) int {
	type pair struct{ a, b uint64 }
	p := pair{a: code, b: code + 1}
	cls := [2]int{int(p.a & 1), int(p.b & 1)}
	s := []uint64{code} // want `slice literal allocates`
	q := &pair{a: code} // want `address of composite literal may allocate`
	return cls[0] + len(s) + int(q.a)
}

// kernel is a generic stand-in: V-to-V passing is a copy, not a box,
// and calls to methods of instantiated generic types must resolve to
// their declarations.
type kernel[V any] struct{ vals []V }

//popvet:noalloc
func (k *kernel[V]) at(i int) V {
	return k.vals[i]
}

//popvet:noalloc
func firstOf[V any](k *kernel[V], visit func(V) bool) bool {
	return visit(k.at(0))
}

// unmarked allocates freely: no directive, no findings.
func (f *frozen) unmarked(n int) []uint64 {
	out := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, uint64(i))
	}
	return out
}
