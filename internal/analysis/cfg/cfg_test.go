package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildFunc parses src as a file and returns the CFG of the first
// function declaration plus the FileSet used.
func buildFunc(t *testing.T, src string) (*token.FileSet, *Graph) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "test.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fset, New(fd.Body)
		}
	}
	t.Fatal("no function in src")
	return nil, nil
}

// The golden corpus: each case is a function body exercising one
// control-flow shape, with the expected dump. These pin the block
// structure the analyzers depend on (cond edge order, loop back edges,
// return/panic kinds, defer recording).
var goldenCases = []struct {
	name string
	src  string
	want string
}{
	{
		name: "straightline",
		src: `package p
func f() {
	x := 1
	y := x + 1
	_ = y
}`,
		want: `b0 body: [x := 1; y := x + 1; _ = y] -> b1
b1 exit
`,
	},
	{
		name: "if_else_returns",
		src: `package p
func f(a int) int {
	if a > 0 {
		return 1
	} else {
		return 2
	}
}`,
		want: `b0 cond: [a > 0] -> b2 b4
b1 exit
b2 return: [return 1] -> b1
b3 body -> b1
b4 return: [return 2] -> b1
`,
	},
	{
		name: "if_no_else",
		src: `package p
func f(a int) int {
	if a > 0 {
		a++
	}
	return a
}`,
		want: `b0 cond: [a > 0] -> b2 b3
b1 exit
b2 body: [a++] -> b3
b3 return: [return a] -> b1
`,
	},
	{
		name: "for_cond_body_post",
		src: `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`,
		want: `b0 body: [s := 0; i := 0] -> b2
b1 exit
b2 cond: [i < n] -> b4 b3
b3 return: [return s] -> b1
b4 body: [s += i] -> b5
b5 body: [i++] -> b2
`,
	},
	{
		name: "for_infinite_with_break",
		src: `package p
func f() int {
	n := 0
	for {
		n++
		if n > 3 {
			break
		}
	}
	return n
}`,
		want: `b0 body: [n := 0] -> b2
b1 exit
b2 body -> b4
b3 return: [return n] -> b1
b4 cond: [n++; n > 3] -> b5 b6
b5 body: [break] -> b3
b6 body -> b2
`,
	},
	{
		name: "range_with_continue",
		src: `package p
func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		s += x
	}
	return s
}`,
		want: `b0 body: [s := 0; xs] -> b2
b1 exit
b2 cond -> b3 b4
b3 cond: [_; x; x < 0] -> b5 b6
b4 return: [return s] -> b1
b5 body: [continue] -> b2
b6 body: [s += x] -> b2
`,
	},
	{
		name: "labeled_outer_break_continue",
		src: `package p
func f(g [][]int) int {
	s := 0
outer:
	for _, row := range g {
		for _, v := range row {
			if v == 0 {
				continue outer
			}
			if v < 0 {
				break outer
			}
			s += v
		}
	}
	return s
}`,
		want: `b0 body: [s := 0; g] -> b2
b1 exit
b2 cond -> b3 b4
b3 body: [_; row; row] -> b5
b4 return: [return s] -> b1
b5 cond -> b6 b7
b6 cond: [_; v; v == 0] -> b8 b9
b7 body -> b2
b8 body: [continue outer] -> b2
b9 cond: [v < 0] -> b10 b11
b10 body: [break outer] -> b4
b11 body: [s += v] -> b5
`,
	},
	{
		name: "switch_with_fallthrough_and_default",
		src: `package p
func f(a int) int {
	switch a {
	case 1:
		a++
		fallthrough
	case 2:
		a += 2
	default:
		a = 0
	}
	return a
}`,
		want: `b0 body: [a] -> b2
b1 exit
b2 switch -> b4 b5 b6
b3 return: [return a] -> b1
b4 body: [1; a++; fallthrough] -> b5
b5 body: [2; a += 2] -> b3
b6 body: [a = 0] -> b3
`,
	},
	{
		name: "switch_no_default_falls_through",
		src: `package p
func f(a int) int {
	switch {
	case a > 0:
		a = 1
	}
	return a
}`,
		want: `b0 body -> b2
b1 exit
b2 switch -> b4 b3
b3 return: [return a] -> b1
b4 body: [a > 0; a = 1] -> b3
`,
	},
	{
		name: "type_switch",
		src: `package p
func f(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	}
	return 0
}`,
		want: `b0 body: [x := v.(type)] -> b2
b1 exit
b2 switch -> b4 b5 b3
b3 return: [return 0] -> b1
b4 return: [int; return x] -> b1
b5 return: [string; return len(x)] -> b1
`,
	},
	{
		name: "select_no_default_blocks",
		src: `package p
func f(c, d chan int) int {
	select {
	case x := <-c:
		return x
	case <-d:
		return 0
	}
}`,
		want: `b0 body -> b2
b1 exit
b2 switch -> b4 b5
b3 body -> b1
b4 return: [x := <-c; return x] -> b1
b5 return: [<-d; return 0] -> b1
`,
	},
	{
		name: "panic_terminates_path",
		src: `package p
func f(a int) int {
	if a < 0 {
		panic("negative")
	}
	return a
}`,
		want: `b0 cond: [a < 0] -> b2 b3
b1 exit
b2 panic: [panic("negative")]
b3 return: [return a] -> b1
`,
	},
	{
		name: "defer_heavy_with_recover",
		src: `package p
func f() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil
		}
	}()
	defer println("second")
	if err != nil {
		return err
	}
	return nil
}`,
		want: `b0 cond: [defer func() { ...; defer println("second"); err != nil] -> b2 b3
b1 exit
b2 return: [return err] -> b1
b3 return: [return nil] -> b1
`,
	},
	{
		name: "naked_return",
		src: `package p
func f(a int) (n int, err error) {
	n = a
	if a < 0 {
		return
	}
	n++
	return
}`,
		want: `b0 cond: [n = a; a < 0] -> b2 b3
b1 exit
b2 return: [return] -> b1
b3 return: [n++; return] -> b1
`,
	},
	{
		name: "goto_backward",
		src: `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`,
		want: `b0 body: [i := 0] -> b2
b1 exit
b2 cond: [i < n] -> b3 b4
b3 body: [i++; goto loop] -> b2
b4 return: [return i] -> b1
`,
	},
	{
		name: "unreachable_after_return",
		src: `package p
func f() int {
	return 1
	println("dead")
}`,
		want: `b0 return: [return 1] -> b1
b1 exit
b2 body: [println("dead")] -> b1
`,
	},
	{
		name: "os_exit_terminates",
		src: `package p
import "os"
func f(a int) int {
	if a < 0 {
		os.Exit(1)
	}
	return a
}`,
		want: `b0 cond: [a < 0] -> b2 b3
b1 exit
b2 panic: [os.Exit(1)]
b3 return: [return a] -> b1
`,
	},
}

func TestGoldenCFG(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			fset, g := buildFunc(t, tc.src)
			got := Dump(fset, g)
			if got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// The goto fixup in New appends the edge after the dump ordering is
// settled, so pin the backward-goto edge explicitly.
func TestGotoBackEdge(t *testing.T) {
	_, g := buildFunc(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`)
	// b3 (the goto block) must have exactly one successor: the
	// labeled block b1.
	var gotoBlk *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if br, ok := n.(*ast.BranchStmt); ok && br.Tok == token.GOTO {
				gotoBlk = blk
			}
		}
	}
	if gotoBlk == nil {
		t.Fatal("no goto block found")
	}
	if len(gotoBlk.Succs) != 1 || gotoBlk.Succs[0].Index != 2 {
		t.Errorf("goto block succs = %v, want [b2]", gotoBlk.Succs)
	}
	// And the loop-head detection must see the labeled block (b2) as
	// a loop head.
	heads := g.LoopHeads()
	if !heads[g.Blocks[2]] {
		t.Errorf("b2 not detected as loop head; heads=%v", heads)
	}
}

func TestDefersRecorded(t *testing.T) {
	_, g := buildFunc(t, `package p
func f() {
	defer println("a")
	if true {
		defer println("b")
	}
}`)
	if len(g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(g.Defers))
	}
}

func TestReachable(t *testing.T) {
	_, g := buildFunc(t, `package p
func f() int {
	return 1
	println("dead")
}`)
	reach := g.Reachable()
	var deadBlk *Block
	for _, blk := range g.Blocks {
		for _, n := range blk.Nodes {
			if es, ok := n.(*ast.ExprStmt); ok {
				if call, ok := es.X.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "println" {
						deadBlk = blk
					}
				}
			}
		}
	}
	if deadBlk == nil {
		t.Fatal("dead block not found")
	}
	if reach[deadBlk] {
		t.Error("dead block reported reachable")
	}
	if !reach[g.Blocks[0]] || !reach[g.Exit] {
		t.Error("entry or exit not reachable")
	}
}

func TestLoopHeads(t *testing.T) {
	_, g := buildFunc(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s++
		}
	}
	return s
}`)
	heads := g.LoopHeads()
	if len(heads) != 2 {
		t.Errorf("got %d loop heads, want 2", len(heads))
	}
	for blk := range heads {
		if blk.Kind != KindCond {
			t.Errorf("loop head b%d has kind %s, want cond", blk.Index, blk.Kind)
		}
	}
}

func TestNilBody(t *testing.T) {
	g := New(nil)
	if len(g.Blocks) != 2 {
		t.Fatalf("nil body: got %d blocks, want 2 (entry+exit)", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != g.Exit {
		t.Error("nil body entry does not flow to exit")
	}
}

// TestSolveForwardLiveness exercises the dataflow engine end to end on
// a tiny "was ident X assigned" may-analysis with a branch-sensitive
// edge refinement.
func TestSolveForward(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	_ = fset
	type fact = map[string]bool
	assigns := &Forward[fact]{
		Init: func() fact { return fact{} },
		Clone: func(f fact) fact {
			c := fact{}
			for k, v := range f {
				c[k] = v
			}
			return c
		},
		Join: func(into *fact, from fact) bool {
			changed := false
			for k := range from {
				if !(*into)[k] {
					(*into)[k] = true
					changed = true
				}
			}
			return changed
		},
		Transfer: func(f *fact, n ast.Node) {
			if as, ok := n.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						(*f)[id.Name] = true
					}
				}
			}
		},
	}
	entry := assigns.Solve(g)
	// The return block is the join point: x must be assigned there.
	var retBlk *Block
	for _, blk := range g.Blocks {
		if blk.Kind == KindReturn {
			retBlk = blk
		}
	}
	if retBlk == nil {
		t.Fatal("no return block")
	}
	if !entry[retBlk.Index]["x"] {
		t.Errorf("x not seen as assigned at return; entry=%v", entry[retBlk.Index])
	}
	exits := assigns.ExitFacts(g, entry)
	if !exits[retBlk.Index]["x"] {
		t.Error("ExitFacts lost x")
	}
}

// TestRepoSmoke feeds every function in the module through the
// builder: construction must never panic, every graph must have a
// reachable exit-or-panic path, and Solve must terminate on a trivial
// problem. This is the "fuzz smoke over the real corpus" gate.
func TestRepoSmoke(t *testing.T) {
	root := moduleRoot(t)
	fset := token.NewFileSet()
	nFuncs := 0
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil // unparseable files are out of scope
		}
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			nFuncs++
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("cfg.New panicked on %s: %v", fset.Position(n.Pos()), r)
					}
				}()
				g := New(body)
				if len(g.Blocks) < 2 {
					t.Errorf("%s: graph with %d blocks", fset.Position(n.Pos()), len(g.Blocks))
				}
				// A trivial counting problem must terminate.
				count := &Forward[int]{
					Init:  func() int { return 0 },
					Clone: func(v int) int { return v },
					Join: func(into *int, from int) bool {
						if from > *into {
							*into = from
							return true
						}
						return false
					},
					Transfer: func(v *int, _ ast.Node) {
						if *v < 1000 {
							*v++
						}
					},
				}
				count.Solve(g)
				g.Reachable()
				g.LoopHeads()
				g.Preds()
			}()
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nFuncs < 100 {
		t.Fatalf("smoke walked only %d functions — wrong root?", nFuncs)
	}
	t.Logf("built CFGs for %d functions", nFuncs)
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found")
		}
		dir = parent
	}
}
