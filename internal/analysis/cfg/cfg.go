// Package cfg builds per-function control-flow graphs over go/ast and
// provides a small forward-dataflow engine on top of them, for popvet
// analyzers whose invariants are about *ordering* and *paths* rather
// than about the shape of single expressions: the durability ladder
// (Sync before Close before rename before dir-sync, on every non-error
// path), the zero-allocation kernels (no allocation in any reachable
// block), and the budget discipline (a budget check between cursor
// advances on every path, Truncated set on every exhaustion exit).
//
// # Model
//
// A Graph is a list of basic blocks. Block 0 is the entry; a synthetic
// exit block (Kind KindExit) represents falling off the end of the
// function or returning. Each block holds the AST nodes executed
// straight-line through it, in order: statements, plus the controlling
// condition expression of the branch that ends it. Successor edges
// follow Go's control flow:
//
//   - An if-block's Succs are [then, else] in that order, so
//     edge-sensitive analyses can key on the branch taken.
//   - for/range loops produce a head block that is the target of the
//     back edge; break/continue (labeled or not) and goto resolve to
//     their syntactic targets.
//   - switch/type-switch/select fan out one successor per clause
//     (plus the implicit empty default when none is written).
//   - return statements end their block with an edge to the exit
//     block; calls to panic (and to functions the builder cannot see
//     past, like log.Fatal) end their block with an edge to nothing —
//     the block's Kind records why it terminated.
//
// Deferred calls do not get edges (they run during unwinding, in
// reverse order, on every exit); instead each DeferStmt node appears in
// its block in execution order, and Graph.Defers collects them so path
// analyses can model "runs on every exit reached after this point".
//
// The builder is total: any parseable function body yields a graph
// (golden tests pin the shapes, and a repo-wide smoke test feeds it
// every function in the module). Unreachable statements — code after a
// return, a break-less dead branch — land in blocks not reachable from
// the entry; Reachable reports the live set so analyzers skip them.
package cfg

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Kind says how a block terminates (or what role it plays).
type Kind uint8

const (
	// KindBody is an ordinary straight-line block whose single
	// successor is simply the next block.
	KindBody Kind = iota
	// KindCond ends with a branch condition: Succs[0] is the true
	// edge, Succs[1] the false edge.
	KindCond
	// KindSwitch ends at a switch/type-switch/select head: one
	// successor per clause, in source order (default last when
	// implicit).
	KindSwitch
	// KindReturn ends with a return statement; its successor is the
	// exit block.
	KindReturn
	// KindPanic ends with a call to panic (or a recognized
	// no-return function); it has no successors.
	KindPanic
	// KindExit is the synthetic function exit: normal returns and the
	// fall-off-the-end path converge here. It has no successors.
	KindExit
)

func (k Kind) String() string {
	switch k {
	case KindBody:
		return "body"
	case KindCond:
		return "cond"
	case KindSwitch:
		return "switch"
	case KindReturn:
		return "return"
	case KindPanic:
		return "panic"
	case KindExit:
		return "exit"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Block is one basic block.
type Block struct {
	Index int
	Kind  Kind
	// Nodes are the statements and controlling expressions executed
	// through the block, in order. Condition expressions of the
	// branch ending a KindCond block are the last node.
	Nodes []ast.Node
	Succs []*Block
	// Stmt is the controlling statement that created the block, when
	// one exists (the *ast.IfStmt for a then-branch, the *ast.ForStmt
	// for a loop head); nil for plain body blocks. Dump labels use it.
	Stmt ast.Stmt
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Blocks[0] is the entry. The exit block is Exit (also present in
	// Blocks). Block order follows construction order, which tracks
	// source order closely enough for stable dumps.
	Blocks []*Block
	Exit   *Block
	// Defers lists every defer statement in the body in source order.
	// A deferred call runs on every exit reached along a path that
	// executed its DeferStmt node.
	Defers []*ast.DeferStmt
}

// New builds the CFG of body. name is used only in panic messages from
// malformed-AST edge cases (the builder itself is total over parseable
// input). body may be nil (declared-only functions): the graph is then
// just entry→exit.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{},
		labels: map[string]*labelTarget{},
	}
	entry := b.newBlock(KindBody, nil)
	b.g.Exit = b.newBlock(KindExit, nil)
	b.cur = entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.jump(b.g.Exit)
	// Resolve pending gotos now that every label has been seen.
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok && t.head != nil {
			g.from.Succs = append(g.from.Succs, t.head)
		}
		// An unresolved goto (malformed input) leaves the block with
		// no successor — the path simply ends, which is safe for
		// every analysis built on the graph.
	}
	return b.g
}

// Reachable returns the set of blocks reachable from the entry.
func (g *Graph) Reachable() map[*Block]bool {
	seen := map[*Block]bool{}
	if len(g.Blocks) == 0 {
		return seen
	}
	stack := []*Block{g.Blocks[0]}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// Preds returns the predecessor lists of every block, indexed like
// Blocks. Dataflow solvers call it once per graph.
func (g *Graph) Preds() [][]*Block {
	preds := make([][]*Block, len(g.Blocks))
	for _, blk := range g.Blocks {
		for _, s := range blk.Succs {
			preds[s.Index] = append(preds[s.Index], blk)
		}
	}
	return preds
}

// LoopHeads returns the blocks that are targets of a back edge under a
// depth-first ordering from the entry — the loop headers. Analyses that
// must re-establish a fact on every iteration (a budget check per
// cursor advance) kill their facts at these blocks.
func (g *Graph) LoopHeads() map[*Block]bool {
	heads := map[*Block]bool{}
	if len(g.Blocks) == 0 {
		return heads
	}
	const (
		white = 0 // unvisited
		grey  = 1 // on the DFS stack
		black = 2 // done
	)
	state := make([]uint8, len(g.Blocks))
	var dfs func(*Block)
	dfs = func(blk *Block) {
		state[blk.Index] = grey
		for _, s := range blk.Succs {
			switch state[s.Index] {
			case white:
				dfs(s)
			case grey:
				heads[s] = true
			}
		}
		state[blk.Index] = black
	}
	dfs(g.Blocks[0])
	return heads
}

// --- builder ---

// labelTarget records where a label's statement starts (for goto and
// labeled continue) and the break/continue targets once the labeled
// loop or switch is entered.
type labelTarget struct {
	head     *Block // first block of the labeled statement (goto target)
	breakTo  *Block // block after the labeled loop/switch
	contTo   *Block // loop post/head block (labeled continue)
	isLoop   bool
	resolved bool
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g   *Graph
	cur *Block
	// break/continue targets of the innermost enclosing loop/switch.
	breakTo *Block
	contTo  *Block
	labels  map[string]*labelTarget
	gotos   []pendingGoto
	// label to attach to the next loop/switch statement built.
	pendingLabel string
}

func (b *builder) newBlock(kind Kind, stmt ast.Stmt) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind, Stmt: stmt}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// startBlock seals the current block and makes a fresh one the target
// of fall-through from it.
func (b *builder) startBlock(kind Kind, stmt ast.Stmt) *Block {
	blk := b.newBlock(kind, stmt)
	b.jump(blk)
	b.cur = blk
	return blk
}

// jump adds an edge cur→to unless cur already terminated (return,
// panic, break, ...). It leaves cur untouched.
func (b *builder) jump(to *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, to)
}

// terminate ends the current path: subsequent statements are
// unreachable and go into a fresh floating block with no predecessors.
func (b *builder) terminate() {
	b.cur = nil
}

// add appends a node to the current block, reviving a floating block
// for unreachable code so the builder stays total.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock(KindBody, nil)
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		if b.cur == nil { // unreachable if: add revived the block
			b.cur = b.newBlock(KindBody, nil)
		}
		cond := b.cur
		cond.Kind = KindCond
		if cond.Stmt == nil {
			cond.Stmt = s
		}
		thenBlk := b.newBlock(KindBody, s)
		cond.Succs = append(cond.Succs, thenBlk) // Succs[0]: true edge
		after := b.newBlock(KindBody, nil)
		b.cur = thenBlk
		b.stmt(s.Body)
		b.jump(after)
		if s.Else != nil {
			elseBlk := b.newBlock(KindBody, s.Else.(ast.Stmt))
			cond.Succs = append(cond.Succs, elseBlk) // Succs[1]: false edge
			b.cur = elseBlk
			b.stmt(s.Else)
			b.jump(after)
		} else {
			cond.Succs = append(cond.Succs, after) // false edge falls through
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.startBlock(KindBody, s)
		after := b.newBlock(KindBody, nil)
		var bodyEntry *Block
		if s.Cond != nil {
			b.add(s.Cond)
			head.Kind = KindCond
			bodyEntry = b.newBlock(KindBody, s)
			head.Succs = append(head.Succs, bodyEntry, after)
		} else {
			bodyEntry = b.newBlock(KindBody, s)
			head.Succs = append(head.Succs, bodyEntry)
		}
		// continue target: the post statement (its own block feeding
		// the back edge) or the head directly.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock(KindBody, nil)
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, head)
			contTo = post
		}
		b.setLabel(label, head, after, contTo, true)
		b.withTargets(after, contTo, func() {
			b.cur = bodyEntry
			b.stmt(s.Body)
			if post != nil {
				b.jump(post)
			} else {
				b.jump(head)
			}
		})
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.startBlock(KindCond, s)
		// The range head both re-tests (has the loop as one successor)
		// and exits (the after block as the other).
		bodyEntry := b.newBlock(KindBody, s)
		after := b.newBlock(KindBody, nil)
		head.Succs = append(head.Succs, bodyEntry, after)
		if s.Key != nil {
			bodyEntry.Nodes = append(bodyEntry.Nodes, s.Key)
		}
		if s.Value != nil {
			bodyEntry.Nodes = append(bodyEntry.Nodes, s.Value)
		}
		b.setLabel(label, head, after, head, true)
		b.withTargets(after, head, func() {
			b.cur = bodyEntry
			b.stmt(s.Body)
			b.jump(head)
		})
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchBody(s, s.Body, label, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchBody(s, s.Body, label, func(cc *ast.CaseClause) []ast.Node {
			nodes := make([]ast.Node, 0, len(cc.List))
			for _, e := range cc.List {
				nodes = append(nodes, e)
			}
			return nodes
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.startBlock(KindSwitch, s)
		after := b.newBlock(KindBody, nil)
		b.setLabel(label, head, after, nil, false)
		exhaustive := false
		b.withTargets(after, b.contTo, func() {
			for _, cs := range s.Body.List {
				cc := cs.(*ast.CommClause)
				clause := b.newBlock(KindBody, cc)
				head.Succs = append(head.Succs, clause)
				b.cur = clause
				if cc.Comm != nil {
					b.add(cc.Comm)
				} else {
					exhaustive = true // explicit default
				}
				b.stmtList(cc.Body)
				b.jump(after)
			}
		})
		// A select with no default blocks until a case is ready: every
		// path goes through some clause, so no fall-through edge. (With
		// zero cases it blocks forever; keep after unreachable then.)
		_ = exhaustive
		b.cur = after

	case *ast.LabeledStmt:
		name := s.Label.Name
		t := &labelTarget{}
		b.labels[name] = t
		switch s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			b.pendingLabel = name
			b.stmt(s.Stmt)
		default:
			// Plain labeled statement: a goto target.
			head := b.startBlock(KindBody, s)
			t.head = head
			t.resolved = true
			b.stmt(s.Stmt)
		}
		if t.head == nil {
			// The labeled statement didn't register itself (shouldn't
			// happen); resolve to wherever we are so gotos don't dangle.
			t.head = b.cur
		}

	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					target = t.breakTo
				}
			}
			if target != nil {
				b.jump(target)
			}
			b.terminate()
		case token.CONTINUE:
			target := b.contTo
			if s.Label != nil {
				if t, ok := b.labels[s.Label.Name]; ok {
					target = t.contTo
				}
			}
			if target != nil {
				b.jump(target)
			}
			b.terminate()
		case token.GOTO:
			if s.Label != nil {
				b.gotos = append(b.gotos, pendingGoto{b.cur, s.Label.Name})
			}
			b.terminate()
		case token.FALLTHROUGH:
			// Handled by switchBody (the clause's fall edge); as a
			// statement it just ends the clause body.
			b.terminate()
		}

	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Kind = KindReturn
		}
		b.jump(b.g.Exit)
		b.terminate()

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isNoReturn(s.X) {
			if b.cur != nil {
				b.cur.Kind = KindPanic
			}
			b.terminate()
		}

	case nil:
		// tolerated: malformed input

	default:
		// Assignments, declarations, go statements, sends, inc/dec,
		// empty statements: straight-line.
		b.add(s)
	}
}

// switchBody builds the clause fan-out shared by switch and type
// switch, including fallthrough edges and the implicit default.
func (b *builder) switchBody(stmt ast.Stmt, body *ast.BlockStmt, label string, caseNodes func(*ast.CaseClause) []ast.Node) {
	head := b.startBlock(KindSwitch, stmt)
	after := b.newBlock(KindBody, nil)
	b.setLabel(label, head, after, nil, false)
	hasDefault := false
	// First pass: create clause entry blocks so fallthrough can edge
	// into the next clause's body.
	clauses := make([]*Block, len(body.List))
	for i, cs := range body.List {
		cc := cs.(*ast.CaseClause)
		clauses[i] = b.newBlock(KindBody, cc)
		head.Succs = append(head.Succs, clauses[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	b.withTargets(after, b.contTo, func() {
		for i, cs := range body.List {
			cc := cs.(*ast.CaseClause)
			b.cur = clauses[i]
			for _, n := range caseNodes(cc) {
				b.add(n)
			}
			fell := false
			for _, cStmt := range cc.Body {
				if br, ok := cStmt.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
					if i+1 < len(clauses) {
						b.add(br)
						b.jump(clauses[i+1])
						b.terminate()
						fell = true
						continue
					}
				}
				b.stmt(cStmt)
			}
			if !fell {
				b.jump(after)
			}
		}
	})
	if !hasDefault {
		// No default: the switch can match nothing and fall through.
		head.Succs = append(head.Succs, after)
	}
	b.cur = after
}

// withTargets runs fn with the break/continue targets swapped in.
func (b *builder) withTargets(breakTo, contTo *Block, fn func()) {
	oldB, oldC := b.breakTo, b.contTo
	b.breakTo, b.contTo = breakTo, contTo
	fn()
	b.breakTo, b.contTo = oldB, oldC
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) setLabel(name string, head, breakTo, contTo *Block, isLoop bool) {
	if name == "" {
		return
	}
	t := b.labels[name]
	if t == nil {
		t = &labelTarget{}
		b.labels[name] = t
	}
	t.head = head
	t.breakTo = breakTo
	t.contTo = contTo
	t.isLoop = isLoop
	t.resolved = true
}

// isNoReturn recognizes expression statements that never return:
// panic(...) and the conventional os.Exit-style terminators the
// analyzers treat as path ends.
func isNoReturn(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "panic"
	case *ast.SelectorExpr:
		if pkg, ok := fn.X.(*ast.Ident); ok {
			switch {
			case pkg.Name == "os" && fn.Sel.Name == "Exit":
				return true
			case pkg.Name == "log" && (fn.Sel.Name == "Fatal" || fn.Sel.Name == "Fatalf" || fn.Sel.Name == "Fatalln"):
				return true
			case pkg.Name == "runtime" && fn.Sel.Name == "Goexit":
				return true
			}
		}
	}
	return false
}
