package cfg

import "go/ast"

// Forward is an intraprocedural forward-dataflow problem over a Graph.
// S is the per-block fact type (a gen/kill set, a state-machine map —
// anything value-copyable via Clone). The solver runs a worklist to a
// fixpoint and returns the fact holding at the *entry* of every block;
// analyzers then re-run Transfer through a block's nodes to inspect
// intermediate states.
//
// Facts must form a join-semilattice of finite height: Join must be
// monotone and idempotent, and Transfer monotone, or the worklist will
// not terminate.
type Forward[S any] struct {
	// Init is the fact at the function entry.
	Init func() S
	// Clone deep-copies a fact so Transfer can mutate freely.
	Clone func(S) S
	// Join merges a predecessor's exit fact into the accumulated
	// entry fact of a block, reporting whether anything changed.
	Join func(into *S, from S) bool
	// Transfer applies one node's effect to the fact, in place.
	Transfer func(fact *S, n ast.Node)
	// Edge, if non-nil, refines the fact flowing along a specific
	// edge after Transfer ran through the whole source block. It
	// receives the source block, the index of the edge in
	// from.Succs, and a mutable copy of the exit fact. Condition
	// blocks use it for branch-sensitive facts (edge 0 = condition
	// true, edge 1 = condition false).
	Edge func(from *Block, edge int, fact *S)
}

// Solve runs the problem to a fixpoint and returns entry facts indexed
// by Block.Index. Unreachable blocks keep Init-derived facts (they are
// seeded but never joined into), so analyzers should intersect with
// g.Reachable() before reporting.
func (f *Forward[S]) Solve(g *Graph) []S {
	n := len(g.Blocks)
	entry := make([]S, n)
	seeded := make([]bool, n)
	if n == 0 {
		return entry
	}
	entry[0] = f.Init()
	seeded[0] = true

	work := []*Block{g.Blocks[0]}
	inWork := make([]bool, n)
	inWork[0] = true

	for len(work) > 0 {
		blk := work[0]
		work = work[1:]
		inWork[blk.Index] = false

		out := f.Clone(entry[blk.Index])
		for _, node := range blk.Nodes {
			f.Transfer(&out, node)
		}
		for i, succ := range blk.Succs {
			flow := out
			if f.Edge != nil {
				flow = f.Clone(out)
				f.Edge(blk, i, &flow)
			} else if len(blk.Succs) > 1 {
				flow = f.Clone(out)
			}
			changed := false
			if !seeded[succ.Index] {
				entry[succ.Index] = f.Clone(flow)
				seeded[succ.Index] = true
				changed = true
			} else {
				changed = f.Join(&entry[succ.Index], flow)
			}
			if changed && !inWork[succ.Index] {
				work = append(work, succ)
				inWork[succ.Index] = true
			}
		}
	}
	return entry
}

// ExitFacts recomputes the fact at the *end* of each block from the
// solved entry facts (Transfer applied through the block's nodes).
// Useful for inspecting the state reaching a return or panic.
func (f *Forward[S]) ExitFacts(g *Graph, entry []S) []S {
	out := make([]S, len(g.Blocks))
	for _, blk := range g.Blocks {
		fact := f.Clone(entry[blk.Index])
		for _, node := range blk.Nodes {
			f.Transfer(&fact, node)
		}
		out[blk.Index] = fact
	}
	return out
}
