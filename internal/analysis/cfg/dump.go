package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"strings"
)

// Dump renders the graph in a compact, deterministic text form for
// golden tests:
//
//	b0 body: [stmt; stmt] -> b1 b2
//	b1 return: [return x] -> b3
//	b3 exit
//
// Node text is the first line of the node's source, truncated; edges
// list successor indices in order (so cond blocks read "-> then else").
func Dump(fset *token.FileSet, g *Graph) string {
	var sb strings.Builder
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "b%d %s", blk.Index, blk.Kind)
		if len(blk.Nodes) > 0 {
			sb.WriteString(": [")
			for i, n := range blk.Nodes {
				if i > 0 {
					sb.WriteString("; ")
				}
				sb.WriteString(nodeText(fset, n))
			}
			sb.WriteString("]")
		}
		if len(blk.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range blk.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func nodeText(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.RawFormat}
	if err := cfg.Fprint(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	s := buf.String()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	const max = 60
	if len(s) > max {
		s = s[:max] + "..."
	}
	return s
}
