// Package detrand implements the popvet analyzer that guards the
// determinism of the experiment engine.
//
// The paper's phasing oscillation (Section IV) can only be measured if
// parallel trials are bit-identical to sequential ones: the parallel
// engine (PR 2) derives one xrand stream per trial with xrand.Derive,
// and every paper_output.txt comparison in the tier-1 loop assumes the
// bytes never change. A single global math/rand draw, wall-clock read,
// or map-iteration-order dependence anywhere in the code a Runner can
// reach silently breaks that, and the breakage shows up as flaky output
// diffs far from the cause.
//
// detrand therefore bans three constructs inside the deterministic
// core — the experiment and xrand packages plus every in-module package
// the experiment runners can reach through imports:
//
//   - importing math/rand or math/rand/v2 (deterministic code must
//     thread an xrand stream);
//   - calling (or referencing) time.Now;
//   - ranging over a map, whose iteration order differs per run.
//
// A site that is genuinely order-insensitive can be annotated
// //popvet:allow detrand with a justification, as RangeSegments in
// internal/pmr does after sorting the keys it collects.
package detrand

import (
	"go/ast"
	"go/types"
	"sort"
	"strconv"

	"popana/internal/analysis"
)

// Analyzer is the detrand popvet check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid nondeterminism (global math/rand, time.Now, map iteration) in code reachable from experiment runners",
	Run:  run,
}

// rootBase names the package whose transitive imports form the
// deterministic core: the experiment runners live here.
const rootBase = "experiment"

// alwaysTargets are package basenames in the deterministic core even
// when not reachable from a loaded experiment package (fixtures, or an
// xrand used standalone).
var alwaysTargets = map[string]bool{"experiment": true, "xrand": true}

// deterministicCore reports whether pkgPath must obey detrand: it is an
// experiment/xrand package, or the experiment runners reach it through
// in-module imports.
func deterministicCore(pkgPath string, deps map[string][]string) bool {
	if alwaysTargets[analysis.PathBase(pkgPath)] {
		return true
	}
	// BFS through the import graph from every experiment package.
	var queue []string
	seen := map[string]bool{}
	for p := range deps {
		if analysis.PathBase(p) == rootBase {
			queue = append(queue, p)
			seen[p] = true
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if p == pkgPath {
			return true
		}
		for _, imp := range deps[p] {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !deterministicCore(pass.PkgPath, pass.ModuleDeps) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				path, err := strconv.Unquote(n.Path.Value)
				if err != nil {
					return true
				}
				if path == "math/rand" || path == "math/rand/v2" {
					pass.Reportf(n.Pos(), "deterministic package %s imports %s; thread an xrand stream (internal/xrand) instead", pass.PkgPath, path)
				}
			case *ast.SelectorExpr:
				if obj, ok := pass.Info.Uses[n.Sel].(*types.Func); ok {
					if pkg := obj.Pkg(); pkg != nil && pkg.Path() == "time" && obj.Name() == "Now" {
						pass.Reportf(n.Pos(), "time.Now in deterministic package %s: trial results must not depend on the wall clock", pass.PkgPath)
					}
				}
			case *ast.RangeStmt:
				if t := pass.Info.TypeOf(n.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						pass.Reportf(n.Pos(), "map iteration order is nondeterministic in deterministic package %s; iterate sorted keys, or annotate //popvet:allow detrand with a justification", pass.PkgPath)
					}
				}
			}
			return true
		})
	}
	return nil
}

// Targets returns the deterministic-core package paths for a loaded
// module graph, sorted; cmd/popvet -list uses it to show the blast
// radius of the detrand rules.
func Targets(deps map[string][]string) []string {
	var out []string
	for p := range deps {
		if deterministicCore(p, deps) {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}
