// Package determcore is not named experiment or xrand: it lands in the
// deterministic core only because the experiment fixture imports it, so
// it pins the reachability half of the detrand rule.
package determcore

import "math/rand" // want `imports math/rand`

// Sum folds a slice; slice iteration is deterministic and allowed.
func Sum(counts []int) int64 {
	var total int64
	for _, c := range counts {
		total += int64(c)
	}
	return total
}

// Shuffle exists to use the banned import.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// Index depends on map iteration order to pick among ties.
func Index(m map[int]bool) int {
	best := -1
	for k := range m { // want `map iteration order is nondeterministic`
		if k > best {
			best = k
		}
	}
	return best
}
