// Package other is outside the deterministic core — nothing named
// experiment imports it — so the very constructs detrand bans elsewhere
// go unflagged here.
package other

import (
	"math/rand"
	"time"
)

// Jitter freely uses the wall clock, global rand, and map iteration.
func Jitter(m map[string]int) int64 {
	total := time.Now().UnixNano()
	for _, v := range m {
		total += int64(v) + rand.Int63n(3)
	}
	return total
}
