// Package experiment is a detrand fixture standing in for the real
// trial runner: it is a target by basename, and its imports root the
// reachability analysis that pulls determcore into the core.
package experiment

import (
	"time"

	"determcore"
)

// Runner mimics the trial-loop shape of the real engine.
type Runner struct {
	Trials map[string]int
}

// Run mixes every banned construct with allowed neighbors.
func (r *Runner) Run() int64 {
	start := time.Now().UnixNano() // want `time\.Now in deterministic package`
	total := determcore.Sum([]int{1, 2, 3})
	for name, n := range r.Trials { // want `map iteration order is nondeterministic`
		total += int64(len(name)) + int64(n)
	}
	//popvet:allow detrand -- fixture pins suppression: summation is order-independent
	for _, n := range r.Trials {
		total += int64(n)
	}
	return start + total
}

// Elapsed uses the time package without time.Now: allowed.
func Elapsed(d time.Duration) float64 { return d.Seconds() }

// Names iterates a slice, not a map: allowed.
func Names(ns []string) int {
	total := 0
	for _, n := range ns {
		total += len(n)
	}
	return total
}
