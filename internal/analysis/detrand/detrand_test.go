package detrand_test

import (
	"testing"

	"popana/internal/analysis/atest"
	"popana/internal/analysis/detrand"
)

// TestDetrand drives the fixture tree: experiment (target by name,
// roots reachability), determcore (target by reachability only), and
// other (outside the core, everything allowed).
func TestDetrand(t *testing.T) {
	atest.Run(t, "testdata", detrand.Analyzer, "experiment", "determcore", "other")
}

// TestTargets pins which fixture packages the reachability analysis
// classifies as deterministic core.
func TestTargets(t *testing.T) {
	deps := map[string][]string{
		"experiment": {"determcore"},
		"determcore": nil,
		"other":      nil,
	}
	got := detrand.Targets(deps)
	want := []string{"determcore", "experiment"}
	if len(got) != len(want) {
		t.Fatalf("Targets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Targets = %v, want %v", got, want)
		}
	}
}
