package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"testing"
)

func TestPathBase(t *testing.T) {
	cases := []struct{ path, want string }{
		{"popana/internal/core", "core"},
		{"core", "core"},
		{"popana/internal/analysis/atest", "atest"},
		{"", ""},
	}
	for _, c := range cases {
		if got := PathBase(c.path); got != c.want {
			t.Errorf("PathBase(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestAllowedLines(t *testing.T) {
	src := `package p

func f() int {
	//popvet:allow detrand,floatcmp -- both silenced on the next line
	x := 1
	y := 2 //popvet:allow faultpoint -- same-line form
	return x + y
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	set := allowedLines(fset, []*ast.File{f})

	at := func(line int) token.Position { return token.Position{Filename: "p.go", Line: line} }
	if !set.allows(at(5), "detrand") || !set.allows(at(5), "floatcmp") {
		t.Error("line-above directive must silence both named analyzers on line 5")
	}
	if !set.allows(at(4), "detrand") {
		t.Error("directive must silence its own line")
	}
	if set.allows(at(5), "lockdiscipline") {
		t.Error("unnamed analyzer must not be silenced")
	}
	if set.allows(at(6), "detrand") {
		t.Error("directive reach is one line, not two")
	}
	if !set.allows(at(6), "faultpoint") {
		t.Error("trailing same-line directive must silence its line")
	}
	if set.allows(token.Position{Filename: "q.go", Line: 5}, "detrand") {
		t.Error("directives are per-file")
	}
}

func TestFindModuleRoot(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := FindModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := ModulePath(root)
	if err != nil {
		t.Fatal(err)
	}
	if mod != "popana" {
		t.Fatalf("ModulePath(%s) = %q, want popana", root, mod)
	}
}
