package faultinject

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestPointRegistryComplete machine-checks that allPoints is exactly the
// set of Point constants declared in this package: every declared
// constant is registered, every registered point is declared, and no two
// constants share a name string. This is the same canonical list the
// popvet faultpoint analyzer resolves call sites against, so a drift
// here would let chaos-test point names rot silently.
func TestPointRegistryComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "faultinject.go", nil, 0)
	if err != nil {
		t.Fatalf("parse faultinject.go: %v", err)
	}
	declared := map[string]bool{} // constant name -> seen
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			id, ok := vs.Type.(*ast.Ident)
			if !ok || id.Name != "Point" {
				continue
			}
			for _, name := range vs.Names {
				declared[name.Name] = true
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("found no Point constants in faultinject.go")
	}

	registered := map[Point]bool{}
	for _, p := range Points() {
		if registered[p] {
			t.Errorf("point %q registered twice", p)
		}
		registered[p] = true
	}
	if got, want := len(registered), len(declared); got != want {
		t.Errorf("Points() has %d entries, %d Point constants declared", got, want)
	}

	// Map declared constant names to values via a registry lookup: each
	// declared constant must be present among the registered values.
	byName := map[string]Point{
		"SolverNewton":          SolverNewton,
		"SolverFixedPoint":      SolverFixedPoint,
		"InsertFault":           InsertFault,
		"InsertLatency":         InsertLatency,
		"QueryLatency":          QueryLatency,
		"SnapshotRebuild":       SnapshotRebuild,
		"WALTornWrite":          WALTornWrite,
		"SegmentPartialFlush":   SegmentPartialFlush,
		"SegmentCorruption":     SegmentCorruption,
		"CompactionInterrupted": CompactionInterrupted,
		"SegmentBlockPoison":    SegmentBlockPoison,
		"DiskCursorSeal":        DiskCursorSeal,
	}
	for name := range declared {
		v, ok := byName[name]
		if !ok {
			t.Errorf("Point constant %s declared in source but missing from this test's name table; add it here and to allPoints", name)
			continue
		}
		if !registered[v] {
			t.Errorf("Point constant %s = %q not in Points()", name, v)
		}
	}
}

// TestPointNamingConvention pins the dotted lower-case naming scheme the
// analyzer's diagnostics quote: "<subsystem>.<operation>[.<aspect>]".
func TestPointNamingConvention(t *testing.T) {
	for _, p := range Points() {
		s := string(p)
		if s == "" {
			t.Fatal("empty point name")
		}
		if strings.ToLower(s) != s {
			t.Errorf("point %q is not lower-case", p)
		}
		parts := strings.Split(s, ".")
		if len(parts) < 2 {
			t.Errorf("point %q has no subsystem prefix", p)
		}
		for _, part := range parts {
			if part == "" {
				t.Errorf("point %q has an empty dotted component", p)
			}
		}
	}
}

// TestDurabilityPointsRegistered pins the durability chaos set: every
// point DurabilityPoints returns must be registered in Points(), and
// the returned slice must be caller-mutation-safe like Points() is.
func TestDurabilityPointsRegistered(t *testing.T) {
	registered := map[Point]bool{}
	for _, p := range Points() {
		registered[p] = true
	}
	dp := DurabilityPoints()
	if len(dp) == 0 {
		t.Fatal("no durability points registered")
	}
	for _, p := range dp {
		if !registered[p] {
			t.Errorf("durability point %q not in Points()", p)
		}
	}
	dp[0] = "mutated"
	if again := DurabilityPoints(); again[0] == "mutated" {
		t.Error("DurabilityPoints() exposed shared storage")
	}
}

// TestDiskReadPointsRegistered pins the disk-read chaos set the same
// way: registered points, caller-mutation-safe slice.
func TestDiskReadPointsRegistered(t *testing.T) {
	registered := map[Point]bool{}
	for _, p := range Points() {
		registered[p] = true
	}
	dp := DiskReadPoints()
	if len(dp) == 0 {
		t.Fatal("no disk-read points registered")
	}
	for _, p := range dp {
		if !registered[p] {
			t.Errorf("disk-read point %q not in Points()", p)
		}
	}
	dp[0] = "mutated"
	if again := DiskReadPoints(); again[0] == "mutated" {
		t.Error("DiskReadPoints() exposed shared storage")
	}
}

// TestPointsReturnsCopy guards the registry against caller mutation.
func TestPointsReturnsCopy(t *testing.T) {
	a := Points()
	a[0] = "mutated"
	if b := Points(); b[0] == "mutated" {
		t.Error("Points() exposed internal registry storage")
	}
}
