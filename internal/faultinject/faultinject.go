// Package faultinject provides deterministic, seedable failure points
// for chaos testing the layers above the quadtree: forced solver
// divergence, injected latency, and forced insert/split failures.
//
// A failure point is named by a Point constant and armed on an Injector
// with a firing probability (and optionally a latency or a fire budget).
// Production code consults the injector through nil-safe methods, so the
// default — a nil *Injector — costs one pointer comparison and allocates
// nothing; only test configurations that explicitly arm an injector pay
// for the RNG draw and bookkeeping.
//
// Firing decisions come from a seeded xrand generator, so a chaos run is
// reproducible from its seed even though the interleaving of goroutines
// is not: the k-th visit to the injector fires identically across runs
// with the same seed and visit order.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"popana/internal/xrand"
)

// ErrInjected is wrapped by every error an injector produces, so callers
// (and chaos tests) can distinguish injected faults from real ones with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Point names a failure site wired into the codebase.
type Point string

// Failure points consulted by the resilience layer.
const (
	// SolverNewton fails the Newton rung of a solver fallback ladder.
	SolverNewton Point = "solver.newton"
	// SolverFixedPoint fails a fixed-point rung (any damping) of a
	// solver fallback ladder.
	SolverFixedPoint Point = "solver.fixed-point"
	// InsertFault fails a spatialdb insert before it mutates the table,
	// simulating a failed block split or allocation.
	InsertFault Point = "spatialdb.insert"
	// InsertLatency delays a spatialdb insert.
	InsertLatency Point = "spatialdb.insert.latency"
	// QueryLatency delays a spatialdb select.
	QueryLatency Point = "spatialdb.query.latency"
	// SnapshotRebuild fails a per-shard frozen-snapshot rebuild before
	// the new snapshot is published, simulating a freeze that cannot
	// complete; queries on that shard keep falling back to its live
	// tree.
	SnapshotRebuild Point = "spatialdb.snapshot.rebuild"
	// WALTornWrite tears a write-ahead-log append mid-frame: only a
	// prefix of the record reaches the file, the append reports
	// failure, and the log poisons itself — exactly the state a crash
	// during the write syscall leaves behind. Recovery must discard the
	// torn tail.
	WALTornWrite Point = "wal.append.torn"
	// SegmentPartialFlush cuts a sealed-run write short: the segment
	// file ends mid-block with no footer, and the flush reports
	// failure before the WAL is truncated. Recovery must treat the run
	// as torn and fall back to the previous runs plus the WAL.
	SegmentPartialFlush Point = "segment.flush.partial"
	// SegmentCorruption damages a sealed-run block after its checksum
	// was computed (and suppresses the footer), simulating garbage
	// reaching the platter during a crash. The flush reports failure;
	// recovery must reject the run by checksum and fall back.
	SegmentCorruption Point = "segment.write.corrupt"
	// CompactionInterrupted kills a disk compaction after the merged
	// run is durable but before the superseded runs are deleted.
	// Recovery must prefer the newest sealed run and ignore the
	// leftovers.
	CompactionInterrupted Point = "segment.compact.interrupt"
	// SegmentBlockPoison damages the in-flight buffer of one sealed-run
	// entry-block read after it leaves the kernel — a poisoned cache
	// line or DMA bit flip — so the block's checksum fails on arrival.
	// The reader must detect the damage, discard the buffer, and
	// re-read from disk rather than serve or cache the poisoned bytes;
	// only a mismatch that survives the re-read is real corruption.
	SegmentBlockPoison Point = "segment.block.poison"
	// DiskCursorSeal fires inside a disk-serving query after it has
	// pinned its run stack and WAL-tail view, triggering a synchronous
	// flush that seals the tail into a new run mid-iteration. The
	// pinned cursor must keep serving its superseded — but internally
	// consistent — view: the refcounted run stack keeps sealed readers
	// open until the last cursor releases them.
	DiskCursorSeal Point = "spatialdb.disk.cursor.seal"
)

// allPoints is the canonical registry of every failure point wired into
// the codebase. A Point constant declared above MUST be listed here:
// the popvet faultpoint analyzer resolves every point name used at a
// call site against the constants of this package, and
// TestPointRegistryComplete keeps this list in lock-step with the
// declarations, so a chaos test can enumerate Points() and know the
// names cannot silently rot.
var allPoints = []Point{
	SolverNewton,
	SolverFixedPoint,
	InsertFault,
	InsertLatency,
	QueryLatency,
	SnapshotRebuild,
	WALTornWrite,
	SegmentPartialFlush,
	SegmentCorruption,
	CompactionInterrupted,
	SegmentBlockPoison,
	DiskCursorSeal,
}

// DiskReadPoints returns the registered failure points on the
// disk-serving read path — poisoned block reads and mid-iteration
// seals — the set the disk-query chaos suite must cover one by one.
// The returned slice is a copy.
func DiskReadPoints() []Point {
	return []Point{SegmentBlockPoison, DiskCursorSeal}
}

// DurabilityPoints returns the registered failure points on the
// durability path — WAL append, segment flush, and compaction — the set
// the crash-recovery chaos suite must cover one by one. The returned
// slice is a copy.
func DurabilityPoints() []Point {
	return []Point{WALTornWrite, SegmentPartialFlush, SegmentCorruption, CompactionInterrupted}
}

// Points returns the canonical list of registered failure points, in
// declaration order. The returned slice is a copy.
func Points() []Point {
	out := make([]Point, len(allPoints))
	copy(out, allPoints)
	return out
}

// rule is the armed behavior of one failure point.
type rule struct {
	prob      float64       // firing probability per visit
	remaining int           // fires left; negative means unlimited
	latency   time.Duration // sleep duration for Delay points
}

// Injector is a set of armed failure points. A nil *Injector is the
// production default: every method is safe to call on it and does
// nothing. The zero Injector is not usable; construct with New.
type Injector struct {
	mu    sync.Mutex
	rng   *xrand.Rand
	rules map[Point]*rule
	fired map[Point]int
}

// New returns an injector with no points armed, drawing firing decisions
// from the given seed.
func New(seed uint64) *Injector {
	return &Injector{
		rng:   xrand.New(seed),
		rules: map[Point]*rule{},
		fired: map[Point]int{},
	}
}

// Enable arms p to fire with the given probability on every visit.
func (in *Injector) Enable(p Point, prob float64) { in.EnableN(p, prob, -1) }

// EnableN arms p to fire with the given probability at most n times
// (n < 0 means unlimited).
func (in *Injector) EnableN(p Point, prob float64, n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = &rule{prob: prob, remaining: n}
}

// EnableLatency arms p so that Delay sleeps d with the given probability
// on each visit.
func (in *Injector) EnableLatency(p Point, prob float64, d time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules[p] = &rule{prob: prob, remaining: -1, latency: d}
}

// Disable disarms p.
func (in *Injector) Disable(p Point) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rules, p)
}

// Fire reports whether failure point p fires on this visit, consuming
// one fire from a bounded budget when it does. Nil-safe.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	fired, _ := in.fire(p)
	return fired
}

// fire decides one visit under the lock, returning whether p fired and
// the latency to apply if it did.
func (in *Injector) fire(p Point) (bool, time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rules[p]
	if r == nil || r.remaining == 0 {
		return false, 0
	}
	if r.prob < 1 && in.rng.Float64() >= r.prob {
		return false, 0
	}
	if r.remaining > 0 {
		r.remaining--
	}
	in.fired[p]++
	return true, r.latency
}

// Err returns an ErrInjected-wrapped error when p fires, nil otherwise.
// Nil-safe.
func (in *Injector) Err(p Point) error {
	if in == nil {
		return nil
	}
	if fired, _ := in.fire(p); fired {
		return fmt.Errorf("%w at %s", ErrInjected, p)
	}
	return nil
}

// Delay sleeps the armed latency when p fires. The sleep happens outside
// the injector lock so concurrent visits to other points are not
// serialized behind it. Nil-safe.
func (in *Injector) Delay(p Point) {
	if in == nil {
		return
	}
	if fired, d := in.fire(p); fired && d > 0 {
		time.Sleep(d)
	}
}

// Fired returns how many times p has fired, for test assertions that the
// chaos actually happened.
func (in *Injector) Fired(p Point) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}
