package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(InsertFault) {
		t.Fatal("nil injector fired")
	}
	if err := in.Err(SolverNewton); err != nil {
		t.Fatalf("nil injector errored: %v", err)
	}
	in.Delay(InsertLatency) // must not panic
	if in.Fired(InsertFault) != 0 {
		t.Fatal("nil injector counted fires")
	}
}

func TestUnarmedPointNeverFires(t *testing.T) {
	in := New(1)
	for i := 0; i < 100; i++ {
		if in.Fire(InsertFault) {
			t.Fatal("unarmed point fired")
		}
	}
}

func TestCertainFireAndCount(t *testing.T) {
	in := New(1)
	in.Enable(InsertFault, 1)
	for i := 0; i < 5; i++ {
		if !in.Fire(InsertFault) {
			t.Fatal("armed point did not fire at prob 1")
		}
	}
	if got := in.Fired(InsertFault); got != 5 {
		t.Fatalf("Fired = %d", got)
	}
	in.Disable(InsertFault)
	if in.Fire(InsertFault) {
		t.Fatal("disabled point fired")
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	in := New(1)
	in.Enable(SolverNewton, 1)
	err := in.Err(SolverNewton)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if in.Err(SolverFixedPoint) != nil {
		t.Fatal("unarmed point errored")
	}
}

func TestFireBudget(t *testing.T) {
	in := New(1)
	in.EnableN(InsertFault, 1, 3)
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Fire(InsertFault) {
			fires++
		}
	}
	if fires != 3 {
		t.Fatalf("fired %d times, budget was 3", fires)
	}
}

func TestProbabilisticFiringIsDeterministic(t *testing.T) {
	run := func() []bool {
		in := New(42)
		in.Enable(InsertFault, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Fire(InsertFault)
		}
		return out
	}
	a, b := run(), run()
	someFired, someDidNot := false, false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("visit %d differs across identical seeds", i)
		}
		if a[i] {
			someFired = true
		} else {
			someDidNot = true
		}
	}
	if !someFired || !someDidNot {
		t.Fatalf("prob 0.5 produced a constant sequence: %v", a)
	}
}

func TestDelaySleepsWhenArmed(t *testing.T) {
	in := New(1)
	in.EnableLatency(QueryLatency, 1, 5*time.Millisecond)
	start := time.Now()
	in.Delay(QueryLatency)
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("Delay returned after %v", elapsed)
	}
	if in.Fired(QueryLatency) != 1 {
		t.Fatalf("Fired = %d", in.Fired(QueryLatency))
	}
}
