package mxquadtree

import (
	"testing"

	"popana/internal/xrand"
)

func TestInsertGet(t *testing.T) {
	tr := MustNew(6) // 64x64
	rng := xrand.New(1)
	type cell struct{ x, y int }
	live := map[cell]int{}
	for i := 0; i < 500; i++ {
		c := cell{rng.Intn(64), rng.Intn(64)}
		_, had := live[c]
		replaced, err := tr.Insert(c.x, c.y, i)
		if err != nil {
			t.Fatal(err)
		}
		if replaced != had {
			t.Fatalf("replace flag wrong at %v", c)
		}
		live[c] = i
	}
	if tr.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(live))
	}
	for c, v := range live {
		got, ok := tr.Get(c.x, c.y)
		if !ok || got != v {
			t.Fatalf("Get(%v) = %v, %v", c, got, ok)
		}
	}
}

func TestBounds(t *testing.T) {
	tr := MustNew(4)
	if _, err := tr.Insert(16, 0, nil); err == nil {
		t.Error("x=16 accepted on 16-grid")
	}
	if _, err := tr.Insert(-1, 0, nil); err == nil {
		t.Error("negative accepted")
	}
	if _, ok := tr.Get(99, 0); ok {
		t.Error("out-of-grid Get ok")
	}
	if tr.Delete(99, 0) {
		t.Error("out-of-grid Delete ok")
	}
	if _, err := New(0); err == nil {
		t.Error("depth 0 accepted")
	}
	if _, err := New(31); err == nil {
		t.Error("depth 31 accepted")
	}
}

func TestDeleteAndPrune(t *testing.T) {
	tr := MustNew(5)
	rng := xrand.New(2)
	type cell struct{ x, y int }
	var cells []cell
	seen := map[cell]bool{}
	for len(cells) < 200 {
		c := cell{rng.Intn(32), rng.Intn(32)}
		if seen[c] {
			continue
		}
		seen[c] = true
		cells = append(cells, c)
		if _, err := tr.Insert(c.x, c.y, nil); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range cells {
		if !tr.Delete(c.x, c.y) {
			t.Fatalf("Delete(%v) failed", c)
		}
		if _, ok := tr.Get(c.x, c.y); ok {
			t.Fatalf("cell %v present after delete", c)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	// Fully pruned: the root is a leaf again.
	c := tr.Census()
	if c.Internal != 0 || c.Leaves != 1 {
		t.Fatalf("not pruned: %+v", c)
	}
	if tr.Delete(1, 1) {
		t.Fatal("deleted from empty tree")
	}
}

func TestRangeCountMatchesBruteForce(t *testing.T) {
	tr := MustNew(6)
	rng := xrand.New(3)
	grid := [64][64]bool{}
	for i := 0; i < 800; i++ {
		x, y := rng.Intn(64), rng.Intn(64)
		grid[x][y] = true
		if _, err := tr.Insert(x, y, nil); err != nil {
			t.Fatal(err)
		}
	}
	for trial := 0; trial < 100; trial++ {
		x0, x1 := rng.Intn(64), rng.Intn(64)
		y0, y1 := rng.Intn(64), rng.Intn(64)
		if x0 > x1 {
			x0, x1 = x1, x0
		}
		if y0 > y1 {
			y0, y1 = y1, y0
		}
		want := 0
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				if grid[x][y] {
					want++
				}
			}
		}
		if got := tr.RangeCount(x0, y0, x1, y1); got != want {
			t.Fatalf("RangeCount(%d,%d,%d,%d) = %d, want %d", x0, y0, x1, y1, got, want)
		}
	}
}

func TestCensusDegenerate(t *testing.T) {
	// MX leaves have occupancy 0 or 1 only — the negative control for
	// population analysis.
	tr := MustNew(5)
	rng := xrand.New(4)
	for i := 0; i < 300; i++ {
		if _, err := tr.Insert(rng.Intn(32), rng.Intn(32), nil); err != nil {
			t.Fatal(err)
		}
	}
	c := tr.Census()
	for occ, cnt := range c.ByOccupancy {
		if occ > 1 && cnt > 0 {
			t.Fatalf("MX leaf with occupancy %d", occ)
		}
	}
	// All occupied leaves at depth k.
	for d, dc := range c.ByDepth {
		if d != 5 && dc.Items > 0 {
			t.Fatalf("occupied leaf at depth %d", d)
		}
	}
	if c.Items != tr.Len() {
		t.Fatalf("census items %d, len %d", c.Items, tr.Len())
	}
}

func TestDeterministicShape(t *testing.T) {
	// Shape depends only on the occupied cells, not insertion order.
	cells := [][2]int{{1, 1}, {30, 2}, {17, 29}, {5, 5}, {9, 23}}
	build := func(order []int) (int, int) {
		tr := MustNew(5)
		for _, i := range order {
			if _, err := tr.Insert(cells[i][0], cells[i][1], nil); err != nil {
				t.Fatal(err)
			}
		}
		c := tr.Census()
		return c.Leaves, c.Internal
	}
	l1, i1 := build([]int{0, 1, 2, 3, 4})
	l2, i2 := build([]int{4, 2, 0, 3, 1})
	if l1 != l2 || i1 != i2 {
		t.Fatal("MX shape depends on insertion order")
	}
}
