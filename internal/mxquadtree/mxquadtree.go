// Package mxquadtree implements the MX quadtree [Same84b]: a regular
// quadtree for points drawn from a bounded integer grid, in which every
// stored point occupies a 1×1 cell at a fixed maximum depth. Unlike the
// PR quadtree the decomposition depth is data-independent (it equals the
// grid's log-resolution), which makes the MX quadtree the degenerate
// member of the family for population analysis: every leaf holds exactly
// zero or one point and lives at a fixed level, so there is no occupancy
// distribution to predict — a useful negative control for the model's
// scope, and another spatial index for the examples.
package mxquadtree

import (
	"errors"
	"fmt"

	"popana/internal/stats"
)

// ErrOutOfGrid is returned for coordinates outside [0, 2^k).
var ErrOutOfGrid = errors.New("mxquadtree: point outside grid")

type node struct {
	children *[4]*node
	occupied bool // leaves at max depth
	val      any
}

func (n *node) leaf() bool { return n.children == nil }

// Tree is an MX quadtree over a 2^k × 2^k grid.
type Tree struct {
	k    int // depth; grid side is 1<<k
	side int
	root *node
	size int
}

// New returns an empty MX quadtree of depth k (grid side 2^k), 1 <= k <= 30.
func New(k int) (*Tree, error) {
	if k < 1 || k > 30 {
		return nil, fmt.Errorf("mxquadtree: depth %d outside 1..30", k)
	}
	return &Tree{k: k, side: 1 << k, root: &node{}}, nil
}

// MustNew is New that panics on configuration errors.
func MustNew(k int) *Tree {
	t, err := New(k)
	if err != nil {
		panic(err)
	}
	return t
}

// Side returns the grid side length 2^k.
func (t *Tree) Side() int { return t.side }

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.size }

// quadrant returns the child index for (x, y) within a block of side s
// whose origin is implied by the caller's coordinate reduction; the
// caller updates x, y in place.
func quadrant(x, y, half int) (int, int, int) {
	q := 0
	if x >= half {
		q |= 1
		x -= half
	}
	if y >= half {
		q |= 2
		y -= half
	}
	return q, x, y
}

// Insert stores val at grid cell (x, y), replacing any previous value.
func (t *Tree) Insert(x, y int, val any) (replaced bool, err error) {
	if x < 0 || y < 0 || x >= t.side || y >= t.side {
		return false, fmt.Errorf("%w: (%d,%d) outside %dx%d", ErrOutOfGrid, x, y, t.side, t.side)
	}
	n := t.root
	for s := t.side; s > 1; s /= 2 {
		if n.children == nil {
			n.children = &[4]*node{{}, {}, {}, {}}
		}
		var q int
		q, x, y = quadrant(x, y, s/2)
		n = n.children[q]
	}
	if n.occupied {
		n.val = val
		return true, nil
	}
	n.occupied = true
	n.val = val
	t.size++
	return false, nil
}

// Get returns the value stored at cell (x, y).
func (t *Tree) Get(x, y int) (any, bool) {
	if x < 0 || y < 0 || x >= t.side || y >= t.side {
		return nil, false
	}
	n := t.root
	for s := t.side; s > 1; s /= 2 {
		if n.children == nil {
			return nil, false
		}
		var q int
		q, x, y = quadrant(x, y, s/2)
		n = n.children[q]
	}
	if n.occupied {
		return n.val, true
	}
	return nil, false
}

// Delete removes the point at (x, y), pruning empty subtrees so the
// tree stays minimal.
func (t *Tree) Delete(x, y int) bool {
	if x < 0 || y < 0 || x >= t.side || y >= t.side {
		return false
	}
	removed, _ := del(t.root, t.side, x, y)
	if removed {
		t.size--
	}
	return removed
}

// del returns (removed, subtreeNowEmpty).
func del(n *node, s, x, y int) (bool, bool) {
	if s == 1 {
		if !n.occupied {
			return false, true
		}
		n.occupied = false
		n.val = nil
		return true, true
	}
	if n.children == nil {
		return false, true
	}
	q, x2, y2 := quadrant(x, y, s/2)
	removed, childEmpty := del(n.children[q], s/2, x2, y2)
	if !removed {
		return false, false
	}
	if childEmpty {
		n.children[q] = &node{} // normalize to a fresh empty leaf
	}
	// Prune: if all children are empty leaves, drop them.
	empty := true
	for _, c := range n.children {
		if !c.leaf() || c.occupied {
			empty = false
			break
		}
	}
	if empty {
		n.children = nil
	}
	return true, empty
}

// RangeCount returns the number of stored points with x in [x0, x1] and
// y in [y0, y1] (inclusive grid ranges).
func (t *Tree) RangeCount(x0, y0, x1, y1 int) int {
	return rangeCount(t.root, 0, 0, t.side, x0, y0, x1, y1)
}

func rangeCount(n *node, ox, oy, s, x0, y0, x1, y1 int) int {
	if n == nil || x1 < ox || y1 < oy || x0 >= ox+s || y0 >= oy+s {
		return 0
	}
	if s == 1 {
		if n.occupied {
			return 1
		}
		return 0
	}
	if n.children == nil {
		return 0
	}
	h := s / 2
	total := 0
	total += rangeCount(n.children[0], ox, oy, h, x0, y0, x1, y1)
	total += rangeCount(n.children[1], ox+h, oy, h, x0, y0, x1, y1)
	total += rangeCount(n.children[2], ox, oy+h, h, x0, y0, x1, y1)
	total += rangeCount(n.children[3], ox+h, oy+h, h, x0, y0, x1, y1)
	return total
}

// Census reports the node populations. MX leaves are all at depth k (or
// pruned empty leaves higher up); occupancy is 0 or 1 by construction —
// the degenerate distribution that makes the MX quadtree the negative
// control for population analysis.
func (t *Tree) Census() stats.Census {
	var b stats.CensusBuilder
	total := float64(t.side) * float64(t.side)
	var walk func(n *node, s, depth int)
	walk = func(n *node, s, depth int) {
		if n.leaf() {
			occ := 0
			if n.occupied {
				occ = 1
			}
			b.AddLeaf(depth, occ, float64(s)*float64(s)/total)
			return
		}
		b.AddInternal(depth)
		for _, c := range n.children {
			walk(c, s/2, depth+1)
		}
	}
	walk(t.root, t.side, 0)
	return b.Census()
}
