package dist

import (
	"math"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func TestUniformInRegion(t *testing.T) {
	r := geom.R(2, 3, 5, 7)
	u := NewUniform(r, xrand.New(1))
	for i := 0; i < 10000; i++ {
		p := u.Next()
		if !r.Contains(p) {
			t.Fatalf("point %v outside %v", p, r)
		}
	}
	if u.Region() != r {
		t.Fatal("Region mismatch")
	}
}

func TestUniformCoverage(t *testing.T) {
	// All four quadrants get roughly a quarter of the mass.
	r := geom.UnitSquare
	u := NewUniform(r, xrand.New(2))
	counts := [4]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.QuadrantOf(u.Next())]++
	}
	for q, c := range counts {
		if math.Abs(float64(c)-n/4) > 5*math.Sqrt(n/4) {
			t.Errorf("quadrant %d: %d draws", q, c)
		}
	}
}

func TestGaussianInRegionAndCentered(t *testing.T) {
	r := geom.UnitSquare
	g := NewGaussian(r, xrand.New(3))
	const n = 20000
	var sx, sy float64
	center := 0
	for i := 0; i < n; i++ {
		p := g.Next()
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
		sx += p.X
		sy += p.Y
		if p.X > 0.25 && p.X < 0.75 && p.Y > 0.25 && p.Y < 0.75 {
			center++
		}
	}
	if math.Abs(sx/n-0.5) > 0.01 || math.Abs(sy/n-0.5) > 0.01 {
		t.Errorf("mean (%v, %v), want (0.5, 0.5)", sx/n, sy/n)
	}
	// With sigma = 1/4, the central half-square holds ~(0.683)² ≈ 47%
	// before truncation — far more than the uniform 25%.
	if frac := float64(center) / n; frac < 0.35 {
		t.Errorf("central mass %v, expected concentration", frac)
	}
}

func TestGaussianSigmaValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for sigma <= 0")
		}
	}()
	NewGaussianSigma(geom.UnitSquare, 0, 1, xrand.New(1))
}

func TestClustersInRegion(t *testing.T) {
	r := geom.UnitSquare
	c := NewClusters(r, 5, 0.03, xrand.New(5))
	for i := 0; i < 5000; i++ {
		if p := c.Next(); !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
	}
}

func TestClustersAreClustered(t *testing.T) {
	// Mean nearest-centroid distance must be about sigma, far below
	// the uniform expectation.
	r := geom.UnitSquare
	c := NewClusters(r, 3, 0.02, xrand.New(6))
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		p := c.Next()
		best := math.Inf(1)
		for _, ct := range c.centers {
			best = math.Min(best, p.Dist(ct))
		}
		sum += best
	}
	if mean := sum / n; mean > 0.1 {
		t.Errorf("mean distance to nearest center %v — not clustered", mean)
	}
}

func TestClustersValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewClusters(geom.UnitSquare, 0, 0.1, xrand.New(1)) },
		func() { NewClusters(geom.UnitSquare, 2, 0, xrand.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			fn()
		}()
	}
}

func TestDiagonal(t *testing.T) {
	r := geom.UnitSquare
	d := NewDiagonal(r, 0.02, xrand.New(7))
	for i := 0; i < 3000; i++ {
		p := d.Next()
		if !r.Contains(p) {
			t.Fatalf("point %v outside region", p)
		}
		if math.Abs(p.X-p.Y) > 0.05 {
			t.Fatalf("point %v far from diagonal", p)
		}
	}
}

func TestChordsOnBoundary(t *testing.T) {
	r := geom.UnitSquare
	c := NewChords(r, xrand.New(8))
	onBoundary := func(p geom.Point) bool {
		const eps = 1e-12
		onX := math.Abs(p.X-r.MinX) < eps || math.Abs(p.X-r.MaxX) < eps
		onY := math.Abs(p.Y-r.MinY) < eps || math.Abs(p.Y-r.MaxY) < eps
		inX := p.X >= r.MinX-eps && p.X <= r.MaxX+eps
		inY := p.Y >= r.MinY-eps && p.Y <= r.MaxY+eps
		return (onX && inY) || (onY && inX)
	}
	for i := 0; i < 5000; i++ {
		s := c.Next()
		if !onBoundary(s.A) || !onBoundary(s.B) {
			t.Fatalf("chord %v endpoints not on boundary", s)
		}
		if s.A == s.B {
			t.Fatal("degenerate chord")
		}
	}
}

func TestShortSegments(t *testing.T) {
	r := geom.UnitSquare
	src := NewShortSegments(r, 0.05, xrand.New(9))
	for i := 0; i < 3000; i++ {
		s := src.Next()
		if l := s.Length(); l <= 0 || l > 0.05+1e-9 {
			t.Fatalf("segment length %v", l)
		}
		// Clipped to region: both endpoints inside its closure.
		for _, p := range []geom.Point{s.A, s.B} {
			if p.X < -1e-9 || p.X > 1+1e-9 || p.Y < -1e-9 || p.Y > 1+1e-9 {
				t.Fatalf("endpoint %v outside region", p)
			}
		}
	}
}

func TestPointsHelper(t *testing.T) {
	u := NewUniform(geom.UnitSquare, xrand.New(10))
	pts := Points(u, 17)
	if len(pts) != 17 {
		t.Fatalf("Points returned %d", len(pts))
	}
}

func TestSourceValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for empty rect")
		}
	}()
	NewUniform(geom.R(1, 1, 1, 1), xrand.New(1))
}

func TestDeterminism(t *testing.T) {
	a := NewUniform(geom.UnitSquare, xrand.New(55))
	b := NewUniform(geom.UnitSquare, xrand.New(55))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed, different stream")
		}
	}
}

func TestRegionAccessors(t *testing.T) {
	r := geom.R(0, 0, 2, 2)
	rng := xrand.New(20)
	sources := []PointSource{
		NewUniform(r, rng),
		NewGaussian(r, rng),
		NewClusters(r, 2, 0.1, rng),
		NewDiagonal(r, 0.01, rng),
	}
	for i, s := range sources {
		if s.Region() != r {
			t.Errorf("source %d Region = %v", i, s.Region())
		}
	}
	if NewChords(r, rng).Region() != r {
		t.Error("chords Region wrong")
	}
	if NewShortSegments(r, 0.1, rng).Region() != r {
		t.Error("short segments Region wrong")
	}
}

func TestGeneratorValidationPanics(t *testing.T) {
	rng := xrand.New(21)
	cases := []func(){
		func() { NewDiagonal(geom.UnitSquare, -1, rng) },
		func() { NewChords(geom.R(0, 0, 0, 0), rng) },
		func() { NewShortSegments(geom.UnitSquare, 0, rng) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}
