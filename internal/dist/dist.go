// Package dist generates the synthetic workloads used throughout the
// paper's evaluation: uniformly distributed points (Tables 1-4, Figure 2),
// Gaussian-distributed points (Table 5, Figure 3), and the extra
// distributions used by this repository's extension experiments
// (clusters, grids, and random line segments for the PMR quadtree).
//
// Every generator draws from an explicit *xrand.Rand so experiments are
// reproducible, and every generator confines its output to a target
// rectangle because the trees cover a fixed region.
package dist

import (
	"fmt"
	"math"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// PointSource yields a stream of points inside a fixed region.
type PointSource interface {
	// Next returns the next point. Implementations must return points
	// inside their region (rejection-sampling if necessary).
	Next() geom.Point
	// Region returns the rectangle all generated points lie in.
	Region() geom.Rect
}

// Points draws n points from src.
func Points(src PointSource, n int) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = src.Next()
	}
	return pts
}

// Uniform generates independent points uniformly distributed over a
// rectangle. This is the data model under which the paper derives the
// transform matrices.
type Uniform struct {
	rect geom.Rect
	rng  *xrand.Rand
}

// NewUniform returns a uniform source over rect seeded by rng.
func NewUniform(rect geom.Rect, rng *xrand.Rand) *Uniform {
	if rect.Empty() {
		panic("dist: NewUniform with empty rect")
	}
	return &Uniform{rect: rect, rng: rng}
}

// Next implements PointSource.
func (u *Uniform) Next() geom.Point {
	return geom.Point{
		X: u.rect.MinX + u.rng.Float64()*u.rect.Width(),
		Y: u.rect.MinY + u.rng.Float64()*u.rect.Height(),
	}
}

// Region implements PointSource.
func (u *Uniform) Region() geom.Rect { return u.rect }

// Gaussian generates points from an isotropic normal distribution
// centered in a rectangle, truncated to the rectangle by rejection.
//
// The paper describes "a Gaussian distribution of points two standard
// deviations wide centered in the square region": the region's half-width
// equals two standard deviations, i.e. sigma = side/4, so about 95% of
// the mass falls inside each axis before truncation. NewGaussian uses
// that default; NewGaussianSigma lets extension experiments vary it.
type Gaussian struct {
	rect   geom.Rect
	center geom.Point
	sigmaX float64
	sigmaY float64
	rng    *xrand.Rand
}

// NewGaussian returns the paper's Gaussian source over rect.
func NewGaussian(rect geom.Rect, rng *xrand.Rand) *Gaussian {
	return NewGaussianSigma(rect, rect.Width()/4, rect.Height()/4, rng)
}

// NewGaussianSigma returns a Gaussian source with explicit per-axis
// standard deviations.
func NewGaussianSigma(rect geom.Rect, sigmaX, sigmaY float64, rng *xrand.Rand) *Gaussian {
	if rect.Empty() {
		panic("dist: NewGaussianSigma with empty rect")
	}
	if sigmaX <= 0 || sigmaY <= 0 {
		panic(fmt.Sprintf("dist: non-positive sigma (%g, %g)", sigmaX, sigmaY))
	}
	return &Gaussian{
		rect:   rect,
		center: rect.Center(),
		sigmaX: sigmaX,
		sigmaY: sigmaY,
		rng:    rng,
	}
}

// Next implements PointSource, rejection-sampling until the deviate lands
// inside the region.
func (g *Gaussian) Next() geom.Point {
	for {
		p := geom.Point{
			X: g.center.X + g.rng.NormFloat64()*g.sigmaX,
			Y: g.center.Y + g.rng.NormFloat64()*g.sigmaY,
		}
		if g.rect.Contains(p) {
			return p
		}
	}
}

// Region implements PointSource.
func (g *Gaussian) Region() geom.Rect { return g.rect }

// Clusters generates points from a mixture of k Gaussian clusters whose
// centers are drawn uniformly at construction time. It models the
// clustered geographic data (cities, road endpoints) that motivated the
// authors' GIS work, and is used by extension experiments to probe how
// far from uniform the model stays useful.
type Clusters struct {
	rect    geom.Rect
	centers []geom.Point
	sigma   float64
	rng     *xrand.Rand
}

// NewClusters returns a k-cluster source with per-cluster standard
// deviation sigma.
func NewClusters(rect geom.Rect, k int, sigma float64, rng *xrand.Rand) *Clusters {
	if k <= 0 {
		panic("dist: NewClusters needs k >= 1")
	}
	if sigma <= 0 {
		panic("dist: NewClusters needs sigma > 0")
	}
	c := &Clusters{rect: rect, sigma: sigma, rng: rng}
	u := NewUniform(rect, rng)
	c.centers = Points(u, k)
	return c
}

// Next implements PointSource.
func (c *Clusters) Next() geom.Point {
	center := c.centers[c.rng.Intn(len(c.centers))]
	for {
		p := geom.Point{
			X: center.X + c.rng.NormFloat64()*c.sigma,
			Y: center.Y + c.rng.NormFloat64()*c.sigma,
		}
		if c.rect.Contains(p) {
			return p
		}
	}
}

// Region implements PointSource.
func (c *Clusters) Region() geom.Rect { return c.rect }

// Diagonal generates points spread uniformly along the main diagonal with
// small isotropic jitter — a pathological, strongly one-dimensional
// distribution used by the failure-injection tests (hierarchical
// structures degrade gracefully but the population model's uniformity
// assumption is maximally violated).
type Diagonal struct {
	rect   geom.Rect
	jitter float64
	rng    *xrand.Rand
}

// NewDiagonal returns a diagonal source with the given jitter amplitude
// (as a fraction of the region's width).
func NewDiagonal(rect geom.Rect, jitter float64, rng *xrand.Rand) *Diagonal {
	if jitter < 0 {
		panic("dist: NewDiagonal with negative jitter")
	}
	return &Diagonal{rect: rect, jitter: jitter, rng: rng}
}

// Next implements PointSource.
func (d *Diagonal) Next() geom.Point {
	for {
		t := d.rng.Float64()
		p := geom.Point{
			X: d.rect.MinX + t*d.rect.Width() + (d.rng.Float64()-0.5)*d.jitter*d.rect.Width(),
			Y: d.rect.MinY + t*d.rect.Height() + (d.rng.Float64()-0.5)*d.jitter*d.rect.Height(),
		}
		if d.rect.Contains(p) {
			return p
		}
	}
}

// Region implements PointSource.
func (d *Diagonal) Region() geom.Rect { return d.rect }

// SegmentSource yields a stream of line segments for the PMR quadtree
// experiments.
type SegmentSource interface {
	Next() geom.Segment
	Region() geom.Rect
}

// Chords generates random chords of the region: segments whose endpoints
// are drawn uniformly and independently on the region's boundary. This is
// the "random lines" model under which the line population analysis
// [Nels86b] is reconstructed.
type Chords struct {
	rect geom.Rect
	rng  *xrand.Rand
}

// NewChords returns a chord source over rect.
func NewChords(rect geom.Rect, rng *xrand.Rand) *Chords {
	if rect.Empty() {
		panic("dist: NewChords with empty rect")
	}
	return &Chords{rect: rect, rng: rng}
}

// Next implements SegmentSource. Endpoints are resampled until distinct
// so zero-length chords never appear.
func (c *Chords) Next() geom.Segment {
	for {
		a, b := c.boundaryPoint(), c.boundaryPoint()
		if a != b {
			return geom.Segment{A: a, B: b}
		}
	}
}

// boundaryPoint returns a point uniform (by perimeter length) on the
// boundary of the region.
func (c *Chords) boundaryPoint() geom.Point {
	w, h := c.rect.Width(), c.rect.Height()
	t := c.rng.Float64() * 2 * (w + h)
	switch {
	case t < w:
		return geom.Point{X: c.rect.MinX + t, Y: c.rect.MinY}
	case t < w+h:
		return geom.Point{X: c.rect.MaxX, Y: c.rect.MinY + (t - w)}
	case t < 2*w+h:
		return geom.Point{X: c.rect.MaxX - (t - w - h), Y: c.rect.MaxY}
	default:
		return geom.Point{X: c.rect.MinX, Y: c.rect.MaxY - (t - 2*w - h)}
	}
}

// Region implements SegmentSource.
func (c *Chords) Region() geom.Rect { return c.rect }

// ShortSegments generates segments with uniformly random start points and
// a fixed length at a uniformly random angle, clipped to the region.
// This approximates the road-segment data of the authors' GIS system.
type ShortSegments struct {
	rect   geom.Rect
	length float64
	rng    *xrand.Rand
}

// NewShortSegments returns a source of segments of the given length
// (as a fraction of the region width) clipped to rect.
func NewShortSegments(rect geom.Rect, lengthFrac float64, rng *xrand.Rand) *ShortSegments {
	if lengthFrac <= 0 {
		panic("dist: NewShortSegments needs a positive length")
	}
	return &ShortSegments{rect: rect, length: lengthFrac * rect.Width(), rng: rng}
}

// Next implements SegmentSource.
func (s *ShortSegments) Next() geom.Segment {
	u := NewUniform(s.rect, s.rng)
	for {
		a := u.Next()
		// Uniform angle via a random point on the unit circle.
		x, y := s.rng.NormFloat64(), s.rng.NormFloat64()
		n := x*x + y*y
		if n == 0 {
			continue
		}
		inv := s.length / sqrt(n)
		b := geom.Point{X: a.X + x*inv, Y: a.Y + y*inv}
		seg := geom.Segment{A: a, B: b}
		if clipped, ok := seg.ClipToRect(s.rect); ok && clipped.Length() > 0 {
			return clipped
		}
	}
}

// Region implements SegmentSource.
func (s *ShortSegments) Region() geom.Rect { return s.rect }

func sqrt(x float64) float64 { return math.Sqrt(x) }
