package spatialdb

// Disk read path tests: a lazy durable table — queries served from the
// sealed run stack plus the WAL tail — must answer exactly like an
// in-memory table that saw the same mutations, under cache pressure,
// block poisoning, and seals racing a cursor mid-merge. This file's
// TestDurable* names put it inside the CI crash-recovery chaos step's
// -run filter.

import (
	"testing"

	"popana/internal/faultinject"
	"popana/internal/geom"
)

// buildLazyLadder drives a lazy table through the full storage ladder
// and returns it alongside an in-memory control that saw the same
// mutations: a compacted full run, a sealed delta run, and a live WAL
// tail, with deletes landing in every layer.
func buildLazyLadder(t *testing.T, db *DB, dir string, opts TableOptions, dopts DurableOptions) (*Table, *Table) {
	t.Helper()
	dopts.Dir = dir
	dopts.Lazy = true
	tab, err := db.CreateDurableTable("lazy", opts, dopts)
	if err != nil {
		t.Fatal(err)
	}
	control := controlFor(t, opts, nil)
	recs := uniqueRecords(1100, 7331)

	apply := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	both := func(f func(tb *Table) error) {
		t.Helper()
		apply(f(tab))
		apply(f(control))
	}

	// Layer 1: a batch plus deletes, compacted into one full run per shard.
	both(func(tb *Table) error { return tb.InsertBatch(recs[:600]) })
	for id := uint64(0); id < 600; id += 5 {
		if !tab.Delete(id) || !control.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	apply(tab.CompactDisk())
	// Layer 2: singles plus deletes, sealed as delta runs.
	for _, r := range recs[600:900] {
		both(func(tb *Table) error { return tb.Insert(r) })
	}
	for id := uint64(600); id < 900; id += 7 {
		if !tab.Delete(id) || !control.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	apply(tab.Flush())
	// Layer 3: the WAL tail — singles and deletes never sealed.
	for _, r := range recs[900:] {
		both(func(tb *Table) error { return tb.Insert(r) })
	}
	for id := uint64(900); id < 1100; id += 9 {
		if !tab.Delete(id) || !control.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	return tab, control
}

// TestDurableDiskQueryEquivalence is the disk-vs-memory acceptance
// gate: a lazy table whose state spans full run + delta run + WAL tail
// — then crashed and lazily recovered — answers 1000 randomized
// queries (and Get for every record) exactly like an in-memory control,
// reading through a cache far smaller than the sealed data.
func TestDurableDiskQueryEquivalence(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	db := NewDB()
	dopts := DurableOptions{CacheBytes: 16 << 10} // a handful of blocks
	tab, control := buildLazyLadder(t, db, dir, opts, dopts)

	// First: the live lazy table (write path + serving stack).
	assertSameRecords(t, "lazy-live", tab, control)
	assertEquivalentQueries(t, "lazy-live", tab, control, 2024, 500)

	// Then: crash, recover lazily, and require the same answers again
	// (recovery path: stack + tail rebuilt from disk).
	tab.Kill()
	if err := db.DropTable("lazy"); err != nil {
		t.Fatal(err)
	}
	dopts.Dir = dir
	dopts.Lazy = true
	reopened, err := db.OpenDurableTable("lazy", TableOptions{}, dopts)
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.lazyMode() {
		t.Fatal("reopened table is not in lazy mode")
	}
	assertSameRecords(t, "lazy-recovered", reopened, control)
	assertEquivalentQueries(t, "lazy-recovered", reopened, control, 4242, 1000)

	st := reopened.Stats()
	if st.DiskRuns == 0 {
		t.Error("Stats.DiskRuns is 0 on a table with sealed runs")
	}
	if st.CacheMisses == 0 {
		t.Error("Stats.CacheMisses is 0 after serving queries from disk")
	}
	if st.CacheBudgetBytes != 16<<10 {
		t.Errorf("Stats.CacheBudgetBytes = %d, want %d", st.CacheBudgetBytes, 16<<10)
	}
}

// TestDurableLazyNewestWinsAcrossLadder pins the merge invariant at one
// location living in every layer at once: the full run holds v1, a
// delta run deletes it and writes v2, the WAL tail deletes that and
// writes v3. Queries and Get must see exactly v3.
func TestDurableLazyNewestWinsAcrossLadder(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: SingleShard}
	db := NewDB()
	tab, err := db.CreateDurableTable("ladder", opts, DurableOptions{Dir: dir, Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	loc := geom.Pt(0.375, 0.625)
	if err := tab.Insert(Record{ID: 1, Loc: loc, Data: "v1"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.CompactDisk(); err != nil { // v1 → full run
		t.Fatal(err)
	}
	if !tab.Delete(1) {
		t.Fatal("delete v1")
	}
	if err := tab.Insert(Record{ID: 2, Loc: loc, Data: "v2"}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Flush(); err != nil { // tombstone(v1)+v2 → delta run
		t.Fatal(err)
	}
	if !tab.Delete(2) {
		t.Fatal("delete v2")
	}
	if err := tab.Insert(Record{ID: 3, Loc: loc, Data: "v3"}); err != nil { // tail
		t.Fatal(err)
	}

	w := geom.R(0.25, 0.5, 0.5, 0.75)
	got, _, err := tab.Select(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 3 || got[0].Data != "v3" {
		t.Fatalf("window over the ladder location returned %+v, want the single tail record v3", got)
	}
	if cnt, _, err := tab.CountRange(w, 0); err != nil || cnt != 1 {
		t.Fatalf("CountRange = %d, %v, want 1", cnt, err)
	}
	if _, ok := tab.Get(1); ok {
		t.Error("Get(1) found the full-run version through two deletes")
	}
	if _, ok := tab.Get(2); ok {
		t.Error("Get(2) found the delta-run version through its delete")
	}
	if rec, ok := tab.Get(3); !ok || rec.Data != "v3" {
		t.Fatalf("Get(3) = %+v, %v, want v3", rec, ok)
	}
	if n := tab.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}

// TestDurableDiskBlockPoisonHeals arms the SegmentBlockPoison fault on
// every block read of a lazy query workload: each first fetch hands the
// reader a damaged buffer, the checksum catches it, and the retry heals
// it — so results stay exactly right and nothing poisoned is cached.
func TestDurableDiskBlockPoisonHeals(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	inj := faultinject.New(1)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, control := buildLazyLadder(t, db, dir, opts, DurableOptions{CacheBytes: 64 << 10})

	// The write path's occupied-checks warmed every block; drop them so
	// the query workload actually reads disk.
	tab.DropBlockCache()
	inj.Enable(faultinject.SegmentBlockPoison, 1) // every uncached block read
	assertEquivalentQueries(t, "poisoned", tab, control, 99, 200)
	if inj.Fired(faultinject.SegmentBlockPoison) == 0 {
		t.Fatal("SegmentBlockPoison never fired: the chaos schedule did not execute")
	}
}

// TestDurableDiskCursorMidSeal arms the DiskCursorSeal fault: the first
// query pins its shard views, then every pinned shard's WAL tail is
// sealed into a delta run before the merged cursors run — the exact
// schedule where a cursor must keep serving its pinned state while the
// run ladder grows underneath it.
func TestDurableDiskCursorMidSeal(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	inj := faultinject.New(7)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, control := buildLazyLadder(t, db, dir, opts, DurableOptions{})

	runsBefore := tab.Stats().DiskRuns
	inj.EnableN(faultinject.DiskCursorSeal, 1, 1) // exactly one mid-query seal
	assertEquivalentQueries(t, "mid-seal", tab, control, 1234, 200)
	if got := inj.Fired(faultinject.DiskCursorSeal); got != 1 {
		t.Fatalf("DiskCursorSeal fired %d times, want 1", got)
	}
	if runsAfter := tab.Stats().DiskRuns; runsAfter <= runsBefore {
		t.Fatalf("mid-query seal did not grow the ladder: %d runs before, %d after", runsBefore, runsAfter)
	}
}

// TestDurableLazyLargerThanCache serves a table whose sealed runs
// dwarf the block-cache budget: full scans must stay correct while the
// cache churns (misses and evictions), and a small hot window must
// still hit once warm.
func TestDurableLazyLargerThanCache(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	db := NewDB()
	// ~8 KiB of cache against hundreds of KiB of sealed entries.
	tab, control := buildLazyLadder(t, db, dir, opts, DurableOptions{CacheBytes: 8 << 10})

	full := control.region
	got, _, err := tab.Select(Query{Window: &full})
	if err != nil {
		t.Fatal(err)
	}
	if want := control.Len(); len(got) != want {
		t.Fatalf("full scan returned %d records, control holds %d", len(got), want)
	}
	st := tab.Stats()
	if st.CacheMisses == 0 {
		t.Fatal("full scan over a tiny cache produced no misses")
	}
	if st.CacheEvictions == 0 {
		t.Fatal("full scan over a tiny cache produced no evictions")
	}
	if st.CacheUsedBytes > st.CacheBudgetBytes {
		t.Fatalf("cache used %d bytes over its %d budget", st.CacheUsedBytes, st.CacheBudgetBytes)
	}

	// A hot window rereads the same few blocks: the second pass must hit.
	w := geom.R(0.4, 0.4, 0.45, 0.45)
	if _, _, err := tab.Select(Query{Window: &w}); err != nil {
		t.Fatal(err)
	}
	hitsBefore := tab.Stats().CacheHits
	if _, _, err := tab.Select(Query{Window: &w}); err != nil {
		t.Fatal(err)
	}
	if hitsAfter := tab.Stats().CacheHits; hitsAfter <= hitsBefore {
		t.Fatalf("warm re-scan of a small window produced no cache hits (%d before, %d after)", hitsBefore, hitsAfter)
	}
}
