package spatialdb

// Lazy mode: a durable table that serves queries straight from its
// sealed runs instead of materializing every record in RAM. The shard's
// in-memory quadtree stays empty; writes buffer in a per-shard tail map
// mirroring the WAL, Flush seals the tail into a delta run and pushes
// an open reader onto the shard's run stack, and queries stream a k-way
// merged cursor over the stack plus the tail. The id→location index
// stays in RAM (index-in-memory, payload-on-disk), so Get and Delete
// keep their O(1) lookup while the working set of record payloads is
// bounded by the table's block-cache budget.
//
// # Run stack lifetime
//
// Each shard's stack holds one *openRun per serving run file, ascending
// by sequence. The stack owns one reference per run; a query pins the
// stack under stackMu (while a run is listed, its stack reference
// guarantees refs >= 1, so the acquire can never resurrect a closed
// reader) and releases its references when the scan ends. Compaction
// retires runs by removing them from the stack, marking them dead, and
// dropping the stack's reference — the reader closes when the last
// in-flight query lets go, and POSIX keeps the unlinked file readable
// until then. Queries therefore never block flushes or compactions, and
// a cursor mid-merge keeps a consistent view while the ladder changes
// underneath it (the DiskCursorSeal fault point drives exactly that
// schedule in the chaos tests).

import (
	"errors"
	"fmt"
	"os"
	"sync/atomic"

	"popana/internal/geom"
	"popana/internal/segment"
)

// tailRec is one folded WAL operation in a lazy shard's tail: the net
// effect on its location — a live record or a tombstone.
type tailRec struct {
	rec  Record
	tomb bool
}

// openRun is one sealed run with an open reader and a reference count.
// The owning stack holds one reference; each in-flight query holds one
// per pinned run. dead marks a run retired from its stack (compacted
// away, or the table closed); the last release closes the reader.
type openRun struct {
	reader *segment.Reader
	seq    uint64
	kind   segment.Kind
	refs   atomic.Int64
	dead   atomic.Bool
}

// release drops one reference, closing the reader when the run is dead
// and this was the last holder.
func (or *openRun) release() {
	if or.refs.Add(-1) == 0 && or.dead.Load() {
		or.reader.Close()
	}
}

// acquireStack returns the shard's current run stack with one reference
// taken per run; pair with releaseRuns.
func (ds *durableShard) acquireStack() []*openRun {
	ds.stackMu.Lock()
	defer ds.stackMu.Unlock()
	out := make([]*openRun, len(ds.stack))
	copy(out, ds.stack)
	for _, or := range out {
		or.refs.Add(1)
	}
	return out
}

// pushStack appends a freshly sealed run to the serving stack.
func (ds *durableShard) pushStack(or *openRun) {
	ds.stackMu.Lock()
	ds.stack = append(ds.stack, or)
	ds.stackMu.Unlock()
}

// swapStack replaces the whole stack with the single merged run,
// returning the retired runs for the caller to close.
func (ds *durableShard) swapStack(or *openRun) []*openRun {
	ds.stackMu.Lock()
	old := ds.stack
	ds.stack = []*openRun{or}
	ds.stackMu.Unlock()
	return old
}

// releaseRuns drops one reference per run (a query unpinning its view).
func releaseRuns(runs []*openRun) {
	for _, or := range runs {
		or.release()
	}
}

// closeRuns retires runs no stack lists any more: marks each dead and
// drops the stack's reference, closing readers with no queries pinned.
func closeRuns(runs []*openRun) {
	for _, or := range runs {
		or.dead.Store(true)
		or.release()
	}
}

// openRunReader opens a reader on a sealed run, wired to the table's
// shared block cache and fault injector, holding the stack's reference.
func (d *durableTable) openRunReader(path string, seq uint64, kind segment.Kind) (*openRun, error) {
	r, err := segment.OpenReader(path)
	if err != nil {
		return nil, err
	}
	r.SetCache(d.cache)
	r.SetInjector(d.inj)
	or := &openRun{reader: r, seq: seq, kind: kind}
	or.refs.Store(1)
	return or, nil
}

// lazyMode reports whether the table serves queries from sealed runs.
func (t *Table) lazyMode() bool { return t.dur != nil && t.dur.lazy }

// initLazyTails allocates every shard's tail map. Called before the
// table is shared.
func (t *Table) initLazyTails() {
	for _, s := range t.shards {
		s.tail = map[geom.Point]tailRec{}
	}
}

// DropBlockCache empties the table's block cache (keeping its hit/miss
// history), so the next query on every block goes to disk — the
// cold-cache state the benchmarks measure from. A no-op on non-lazy
// tables and when caching is disabled.
func (t *Table) DropBlockCache() {
	if t.dur != nil {
		t.dur.cache.Drop()
	}
}

// recoverLazyFromDisk rebuilds a lazy table's serving state: per shard,
// the run stack (open readers, no entry materialization beyond one
// streaming merge pass to rebuild the id index) and the WAL tail map.
// The same torn-run, corrupt-run, and batch-atomicity rules as
// recoverFromDisk apply.
func (t *Table) recoverLazyFromDisk() error {
	committed, ops, err := t.decodeWALs()
	if err != nil {
		return err
	}
	t.initLazyTails()
	for si := range t.shards {
		if err := t.recoverLazyShard(si, committed, ops[si]); err != nil {
			return err
		}
	}
	return nil
}

// recoverLazyShard validates one shard's runs by metadata, opens the
// serving stack (newest full run onward — older runs are fully
// shadowed), streams the merged stack once to rebuild the id index and
// record count, and folds the WAL ops into the tail map.
func (t *Table) recoverLazyShard(si int, committed map[uint64]bool, ops []walOp) error {
	ds := t.dur.shards[si]
	s := t.shards[si]
	// A torn newest run is an interrupted flush; the WAL still covers
	// its records (invariant 2), so drop it.
	runs := ds.runs
	if n := len(runs); n > 0 {
		if _, rerr := segment.ReadMeta(runs[n-1].path); errors.Is(rerr, segment.ErrTorn) {
			if err := os.Remove(runs[n-1].path); err != nil {
				return fmt.Errorf("recover shard %d: drop torn run: %w", si, err)
			}
			if err := segment.SyncDir(t.dur.dir); err != nil {
				return err
			}
			runs = runs[:n-1]
			ds.runs = runs
		}
	}
	// Learn every run's kind from its (cheap) metadata probe and find
	// the newest full run; the stack serves from there onward.
	baseIdx := -1
	for i, rf := range runs {
		m, err := segment.ReadMeta(rf.path)
		if err != nil {
			return fmt.Errorf("recover shard %d: %w", si, err)
		}
		if int(m.Shard) != si || m.Region != s.region {
			return fmt.Errorf("recover shard %d: %w: run %s belongs to another layout (shard %d, region %v)",
				si, ErrCorruptRun, rf.path, m.Shard, m.Region)
		}
		ds.runs[i].kind = m.Kind
		if m.Kind == segment.Full {
			baseIdx = i
		}
	}
	start := baseIdx
	if start < 0 {
		start = 0
	}
	var stack []*openRun
	for _, rf := range runs[start:] {
		or, err := t.dur.openRunReader(rf.path, rf.seq, rf.kind)
		if err != nil {
			closeRuns(stack)
			return fmt.Errorf("recover shard %d: %w", si, err)
		}
		stack = append(stack, or)
	}
	// One streaming pass over the merged stack rebuilds the disk half of
	// the id index: newest-wins, tombstones already filtered. Entries are
	// decoded block by block and dropped again; only (location, id)
	// pairs stay resident — the index-in-memory half of the split.
	cursors := make([]segment.EntryCursor, len(stack))
	for i, or := range stack {
		cursors[i] = or.reader.Cursor()
	}
	merged := segment.NewMergedCursor(cursors...)
	locID := map[geom.Point]uint64{}
	for {
		e, ok, err := merged.Next()
		if err != nil {
			closeRuns(stack)
			return fmt.Errorf("recover shard %d: %w", si, err)
		}
		if !ok {
			break
		}
		locID[geom.Pt(e.X, e.Y)] = e.ID
	}
	// Fold the WAL tail on top (frames of uncommitted batches dropped).
	for _, op := range ops {
		switch op.op {
		case opInsert:
			s.tail[op.loc] = tailRec{rec: Record{ID: op.id, Loc: op.loc, Data: op.data}}
		case opDelete:
			s.tail[op.loc] = tailRec{rec: Record{ID: op.id, Loc: op.loc}, tomb: true}
		case opBatch:
			if committed[op.batch.id] {
				for _, rec := range op.batch.recs {
					s.tail[rec.Loc] = tailRec{rec: rec}
				}
			}
		}
	}
	// Count and id-index: disk locations not shadowed by the tail, plus
	// the tail's live records. Recovery runs before the table is shared,
	// so the stripe maps are written directly.
	count := 0
	for loc, id := range locID {
		if _, shadowed := s.tail[loc]; shadowed {
			continue
		}
		t.ids.stripe(id).m[id] = loc
		count++
	}
	for loc, tr := range s.tail {
		if !tr.tomb {
			t.ids.stripe(tr.rec.ID).m[tr.rec.ID] = loc
			count++
		}
	}
	s.count.Store(int64(count))
	ds.stackMu.Lock()
	ds.stack = stack
	ds.stackMu.Unlock()
	return nil
}

// lazyOccupied reports whether a location holds a live record, checking
// the tail first and then the run stack newest-first. The caller holds
// the shard's write lock, so the tail check and the stack acquisition
// see one consistent seal state. A run that cannot be read reports the
// location free — the write-ahead log still records whatever the caller
// then does, and newest-wins merging keeps the stream consistent.
func (t *Table) lazyOccupied(si int, loc geom.Point) bool {
	s := t.shards[si]
	if tr, ok := s.tail[loc]; ok {
		return !tr.tomb
	}
	stack := t.dur.shards[si].acquireStack()
	defer releaseRuns(stack)
	code := cellCodeOf(s, loc)
	pruned, consulted := 0, 0
	defer func() { t.dur.notePruning(pruned, consulted) }()
	for i := len(stack) - 1; i >= 0; i-- {
		if !stack[i].reader.MayContain(code) {
			pruned++
			continue
		}
		consulted++
		e, ok, err := stack[i].reader.Find(code, loc.X, loc.Y)
		if err != nil {
			return false
		}
		if ok {
			return !e.Tombstone
		}
	}
	return false
}

// notePruning folds one read's run-filter outcome into the table-wide
// counters surfaced by Stats and Explain.
func (d *durableTable) notePruning(pruned, consulted int) {
	if pruned != 0 {
		d.runsPruned.Add(int64(pruned))
	}
	if consulted != 0 {
		d.runsConsulted.Add(int64(consulted))
	}
}

// getLazy serves Get on a lazy table: the tail under the shard read
// lock, then the pinned run stack newest-first — each run's
// Morton-prefix filter consulted before its reader, so a probe loads
// at most one block per run that could actually hold the code. Read
// errors report "not found" — Get's signature has no error channel;
// Select surfaces disk errors.
func (t *Table) getLazy(id uint64, loc geom.Point) (Record, bool) {
	si := t.shardIndexOf(loc)
	s := t.shards[si]
	s.mu.RLock()
	if tr, ok := s.tail[loc]; ok {
		s.mu.RUnlock()
		if tr.tomb || tr.rec.ID != id {
			return Record{}, false
		}
		return tr.rec, true
	}
	stack := t.dur.shards[si].acquireStack()
	s.mu.RUnlock()
	defer releaseRuns(stack)
	code := cellCodeOf(s, loc)
	pruned, consulted := 0, 0
	defer func() { t.dur.notePruning(pruned, consulted) }()
	for i := len(stack) - 1; i >= 0; i-- {
		if !stack[i].reader.MayContain(code) {
			pruned++
			continue
		}
		consulted++
		e, ok, err := stack[i].reader.Find(code, loc.X, loc.Y)
		if err != nil {
			return Record{}, false
		}
		if !ok {
			continue
		}
		if e.Tombstone || e.ID != id {
			return Record{}, false
		}
		data, derr := decodePayload(e.Payload)
		if derr != nil {
			return Record{}, false
		}
		return Record{ID: id, Loc: loc, Data: data}, true
	}
	return Record{}, false
}
