package spatialdb

// The lazy-mode half of the batch read APIs. The shard partition from
// batch.go carries over unchanged; what differs is how each group is
// resolved. Point probes (GetBatch, ContainsBatch) settle against the
// WAL tail under one read-lock acquisition per shard, then the
// survivors walk the pinned run stack newest-first in Morton order:
// each run's prefix filter is consulted for the whole group before its
// reader is touched, and a run the filter cannot exclude is visited
// once for all surviving probes — per-run batching instead of the
// scalar path's per-probe stack walk. Window batches (CountRangeBatch)
// pin each involved shard once and stream one filtered Z-range scan
// per (shard, window) pair. Lazy paths allocate (cursor merges and
// stack pins always have); the zero-alloc guarantee belongs to the
// in-memory paths.

import (
	"fmt"
	"sort"

	"popana/internal/geom"
	"popana/internal/segment"
)

// resolveTailGet settles what the WAL tail can settle for one shard
// group of a lazy GetBatch and pins the run stack, all under a single
// read-lock acquisition so the tail state and the stack form one
// consistent seal state (the same pairing getLazy relies on). Probes
// the tail does not shadow are staged into sc.pending with their
// Morton codes in sc.codes.
func (t *Table) resolveTailGet(sc *BatchScratch, si, lo, hi int, ids []uint64, out []Record, found []bool) (npend, nfound int, stack []*openRun) {
	s := t.shards[si]
	s.mu.RLock()
	for j := lo; j < hi; j++ {
		i := sc.perm[j]
		loc := sc.locs[i]
		if tr, ok := s.tail[loc]; ok {
			if !tr.tomb && tr.rec.ID == ids[i] {
				out[i] = tr.rec
				found[i] = true
				nfound++
			}
			continue
		}
		sc.pending[npend] = i
		sc.codes[npend] = cellCodeOf(s, loc)
		npend++
	}
	if npend > 0 {
		stack = t.dur.shards[si].acquireStack()
	}
	s.mu.RUnlock()
	return npend, nfound, stack
}

// getBatchLazy serves GetBatch on a lazy table. Within each shard
// group the unresolved probes are sorted by Morton code, then the run
// stack is walked newest-first: per run, the group interval
// [codes[0], codes[last]] and each surviving probe consult the run's
// prefix filter before any block is read, and all of the run's lookups
// happen together while its blocks are hot in the cache. A probe is
// settled by the newest run that holds its key — record, tombstone, or
// foreign ID all stop the walk for that probe, exactly like getLazy.
func (t *Table) getBatchLazy(sc *BatchScratch, ids []uint64, out []Record, found []bool) int {
	n := len(ids)
	ns := len(t.shards)
	sc.ensureProbes(n)
	sc.ensureShards(ns)
	t.stageByID(sc, ids, found)
	sc.scatterByShard(n, ns)
	nfound := 0
	for si := 0; si < ns; si++ {
		lo, hi := int(sc.starts[si]), int(sc.starts[si+1])
		if lo == hi {
			continue
		}
		npend, nf, stack := t.resolveTailGet(sc, si, lo, hi, ids, out, found)
		nfound += nf
		if npend == 0 {
			continue
		}
		pend := sc.pending[:npend]
		codes := sc.codes[:npend]
		sort.Sort(pendingByCode{pend, codes})
		pruned, consulted := 0, 0
		for r := len(stack) - 1; r >= 0 && len(pend) > 0; r-- {
			rd := stack[r].reader
			if !rd.MayContainRange(codes[0], codes[len(codes)-1]) {
				pruned++
				continue
			}
			touched := false
			keep := 0
			for k := range pend {
				i := pend[k]
				loc := sc.locs[i]
				if !rd.MayContain(codes[k]) {
					pend[keep], codes[keep] = pend[k], codes[k]
					keep++
					continue
				}
				touched = true
				e, ok, err := rd.Find(codes[k], loc.X, loc.Y)
				if err != nil {
					continue // settled: read errors report "not found", like Get
				}
				if !ok {
					pend[keep], codes[keep] = pend[k], codes[k]
					keep++
					continue
				}
				if !e.Tombstone && e.ID == ids[i] {
					if data, derr := decodePayload(e.Payload); derr == nil {
						out[i] = Record{ID: ids[i], Loc: loc, Data: data}
						found[i] = true
						nfound++
					}
				}
			}
			if touched {
				consulted++
			} else {
				pruned++
			}
			pend, codes = pend[:keep], codes[:keep]
		}
		releaseRuns(stack)
		t.dur.notePruning(pruned, consulted)
	}
	// Misses get their zero Record in one pass at the end, matching
	// getBatchMem's contract without zeroing the whole array up front.
	for i := 0; i < n; i++ {
		if !found[i] {
			out[i] = Record{}
		}
	}
	return nfound
}

// pendingByCode co-sorts a shard group's unresolved probes by Morton
// code, so each run is probed in its on-disk order.
type pendingByCode struct {
	pend  []int32
	codes []uint64
}

func (p pendingByCode) Len() int           { return len(p.pend) }
func (p pendingByCode) Less(i, j int) bool { return p.codes[i] < p.codes[j] }
func (p pendingByCode) Swap(i, j int) {
	p.pend[i], p.pend[j] = p.pend[j], p.pend[i]
	p.codes[i], p.codes[j] = p.codes[j], p.codes[i]
}

// containsBatchLazy serves ContainsBatch on a lazy table with the same
// tail-then-filtered-stack walk as getBatchLazy; presence is decided
// by the newest run holding the key (tombstone = absent), so no
// payload is ever decoded.
func (t *Table) containsBatchLazy(sc *BatchScratch, pts []geom.Point, found []bool) int {
	n := len(pts)
	ns := len(t.shards)
	sc.ensureProbes(n)
	sc.ensureShards(ns)
	starts := sc.starts[:ns+1]
	for s := range starts {
		starts[s] = 0
	}
	for i := 0; i < n; i++ {
		found[i] = false
		sc.locs[i] = pts[i]
		si := int32(t.shardIndexOf(pts[i]))
		sc.shard[i] = si
		starts[si+1]++
	}
	sc.scatterByShard(n, ns)
	npresent := 0
	for si := 0; si < ns; si++ {
		lo, hi := int(sc.starts[si]), int(sc.starts[si+1])
		if lo == hi {
			continue
		}
		s := t.shards[si]
		npend := 0
		s.mu.RLock() //popvet:allow lockdiscipline -- one shard held at a time: released before the next group, never two shards at once
		for j := lo; j < hi; j++ {
			i := sc.perm[j]
			if tr, ok := s.tail[sc.locs[i]]; ok {
				if !tr.tomb {
					found[i] = true
					npresent++
				}
				continue
			}
			sc.pending[npend] = i
			sc.codes[npend] = cellCodeOf(s, sc.locs[i])
			npend++
		}
		var stack []*openRun
		if npend > 0 {
			stack = t.dur.shards[si].acquireStack()
		}
		s.mu.RUnlock()
		if npend == 0 {
			continue
		}
		pend := sc.pending[:npend]
		codes := sc.codes[:npend]
		sort.Sort(pendingByCode{pend, codes})
		pruned, consulted := 0, 0
		for r := len(stack) - 1; r >= 0 && len(pend) > 0; r-- {
			rd := stack[r].reader
			if !rd.MayContainRange(codes[0], codes[len(codes)-1]) {
				pruned++
				continue
			}
			touched := false
			keep := 0
			for k := range pend {
				i := pend[k]
				loc := sc.locs[i]
				if !rd.MayContain(codes[k]) {
					pend[keep], codes[keep] = pend[k], codes[k]
					keep++
					continue
				}
				touched = true
				e, ok, err := rd.Find(codes[k], loc.X, loc.Y)
				if err != nil {
					continue // settled as absent, like lazyOccupied
				}
				if !ok {
					pend[keep], codes[keep] = pend[k], codes[k]
					keep++
					continue
				}
				if !e.Tombstone {
					found[i] = true
					npresent++
				}
			}
			if touched {
				consulted++
			} else {
				pruned++
			}
			pend, codes = pend[:keep], codes[:keep]
		}
		releaseRuns(stack)
		t.dur.notePruning(pruned, consulted)
	}
	return npresent
}

// countRangeBatchLazy serves CountRangeBatch on a lazy table: every
// involved shard is pinned once for the whole batch, then each
// (shard, window) pair streams one scanZRange — which consults the
// run filters over the window's Z-interval, so runs with no codes in
// range never open a cursor. The per-window counts accumulate across
// shards exactly as the scalar countLazy sums its shard scans.
func (t *Table) countRangeBatchLazy(sc *BatchScratch, windows []geom.Rect, counts []int) error {
	ns := len(t.shards)
	sc.ensureShards(ns)
	sc.ensureWindows(len(windows), len(windows)*ns)
	t.stageWindows(sc, windows)
	sis := make([]int, 0, ns)
	for s := 0; s < ns; s++ {
		if sc.starts[s] != sc.starts[s+1] {
			sis = append(sis, s)
		}
	}
	if len(sis) == 0 {
		return nil
	}
	views := t.pinShards(sis)
	defer releaseViews(views)
	t.fireCursorSeal(sis)
	for vi, si := range sis {
		v := views[vi]
		for j := int(sc.starts[si]); j < int(sc.starts[si+1]); j++ {
			w := int(sc.perm[j])
			window := windows[w]
			cnt := 0
			_, err := t.scanZRange(v, window, 0, func(e segment.Entry) bool {
				if window.ContainsClosed(geom.Pt(e.X, e.Y)) {
					cnt++
				}
				return true
			})
			if err != nil {
				return fmt.Errorf("spatialdb: count batch in %q: %w", t.name, err)
			}
			counts[w] += cnt
		}
	}
	return nil
}
