// Package spatialdb is a small spatial query layer over the PR
// quadtree, in the spirit of the geographic information system that
// motivated the paper [Same85c]: named tables of located records,
// window / nearest / radius queries, and — the point of the exercise —
// an EXPLAIN whose cost estimates come from the population model.
//
// The population model turns the paper's analysis into an optimizer
// statistic: from nothing but the node capacity it predicts the
// expected number of leaf blocks per record, hence the expected number
// of blocks a window query must touch, before a single page is read.
// Explain returns that estimate next to the measured traversal cost so
// callers can see the model earning its keep.
//
// # Resilience
//
// The layer is built to serve concurrent traffic and to degrade rather
// than fail:
//
//   - DB and Table are safe for concurrent readers and writers: the DB
//     guards its catalog with an RWMutex and every table is internally
//     sharded, so traffic on one table — or one region of space —
//     never blocks another.
//   - Inputs are validated at the API boundary: NaN/Inf coordinates and
//     degenerate regions are rejected with the typed errors
//     ErrInvalidPoint and ErrInvalidRegion before they can corrupt the
//     index or send a traversal into undefined territory.
//   - Queries accept an optional node-visit budget (Query.MaxNodes);
//     a query that exhausts it returns the partial result with
//     Cost.Truncated set instead of traversing without bound.
//   - CreateTable solves the population model through a fallback
//     ladder (Newton → fixed point → escalating damping); if every
//     rung fails it falls back to a closed-form occupancy heuristic
//     and marks the table's estimates approximate rather than failing
//     table creation. Solved distributions are cached per
//     (capacity, fanout), so repeated CreateTable calls are O(1)
//     after the first solve.
//   - Deterministic failure points (package faultinject) can be armed
//     for chaos testing; the production default is a nil injector that
//     costs one pointer comparison per operation.
//
// # Sharded write path
//
// Each table is partitioned into P = 4^k spatial shards keyed by the
// top k Morton bit-pairs of the record location — equivalently, the
// level-k cell of the table region containing it. The paper's
// population model is per-subtree and composes across disjoint
// quadrants (the partial-match and cascade analyses in PAPERS.md treat
// quadrants as independent sub-processes), which is exactly what makes
// this partition sound: each shard is a self-contained PR quadtree
// over its cell, with its own mutex, mutation epoch, record counter,
// and frozen snapshot. Insert and Delete lock only the target shard;
// InsertBatch groups the batch by shard and takes the involved shard
// locks in ascending index order — the single table-wide lock order —
// so the all-or-nothing guarantee stays deadlock-free. k defaults to
// the smallest value with 4^k >= GOMAXPROCS (so a single-core process
// pays no sharding overhead) and is configurable via
// TableOptions.ShardBits; with one shard the engine is bit-identical
// to the unsharded layout this package had before sharding.
//
// # Snapshot read path
//
// Each shard keeps an atomically-published linear-quadtree snapshot
// (package linearquad): a pointerless, Morton-coded frozen copy of its
// index, stamped with the shard's mutation epoch. Window and radius
// Selects, CountRange, and Explain on quiescent shards — those whose
// epoch still matches the snapshot's — are served entirely from the
// snapshots without taking any shard lock; a cross-shard query
// revalidates every target shard's epoch after scanning (a seqlock) so
// the merged result is still one consistent cut. When a snapshot is
// stale the query falls back to that shard's live tree under its read
// lock, and the snapshot is rebuilt lazily once the shard has absorbed
// SnapshotThreshold mutations since the last build (or immediately on
// Compact, which rebuilds shard by shard so one hot region compacting
// never stalls the others). Query budgets (MaxNodes), Cost accounting,
// and the faultinject query points apply identically on both paths.
package spatialdb

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"popana/internal/core"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
	"popana/internal/solver"
)

// ErrNoTable is returned for operations on unknown table names.
var ErrNoTable = errors.New("spatialdb: no such table")

// ErrDuplicateID is returned when inserting a record whose ID exists.
var ErrDuplicateID = errors.New("spatialdb: duplicate record id")

// ErrInvalidPoint is returned when a record location or query point has
// a NaN or infinite coordinate.
var ErrInvalidPoint = errors.New("spatialdb: invalid point")

// ErrInvalidRegion is returned when a table region or query window is
// degenerate: non-finite corners, inverted extents, or zero area.
var ErrInvalidRegion = errors.New("spatialdb: invalid region")

// quadFanout is the fanout of the backing PR quadtree.
const quadFanout = 4

// Record is a located row: a caller-assigned ID, a position, and an
// arbitrary payload.
type Record struct {
	ID   uint64
	Loc  geom.Point
	Data any
}

// validatePoint rejects coordinates the index cannot reason about.
func validatePoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("%w: %v", ErrInvalidPoint, p)
	}
	return nil
}

// validateRegion rejects degenerate rectangles. The zero Rect is allowed
// where documented (it selects the unit square).
func validateRegion(r geom.Rect) error {
	for _, c := range [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: non-finite corner in %v", ErrInvalidRegion, r)
		}
	}
	if r.MinX >= r.MaxX || r.MinY >= r.MaxY {
		return fmt.Errorf("%w: zero or negative area %v", ErrInvalidRegion, r)
	}
	return nil
}

// DB is a collection of named spatial tables, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	inj    *faultinject.Injector
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// SetFaultInjector arms the database and all tables created afterwards
// with deterministic failure points for chaos testing. Call it before
// creating tables and before sharing the DB across goroutines; the
// default nil injector costs nothing.
func (db *DB) SetFaultInjector(inj *faultinject.Injector) { db.inj = inj }

// solveCache memoizes the population-model occupancy per
// (capacity, fanout): repeated table creation pays the iterative solve
// only once per process. Only exact (non-heuristic) solves are cached,
// and the cache is bypassed entirely while a fault injector is armed so
// chaos runs stay deterministic.
var solveCache sync.Map // solveKey -> float64

type solveKey struct{ capacity, fanout int }

// solveOccupancy returns the model-predicted records per block for a
// node capacity. The solve runs through the fallback ladder; when every
// rung fails the closed-form occupancy heuristic is returned with
// approx=true, and the table's estimates are marked approximate.
func solveOccupancy(capacity int, inj *faultinject.Injector) (occ float64, approx bool, attempts []solver.Attempt, err error) {
	key := solveKey{capacity, quadFanout}
	if inj == nil {
		if v, ok := solveCache.Load(key); ok {
			return v.(float64), false, nil, nil
		}
	}
	model, err := core.NewPointModel(capacity, quadFanout)
	if err != nil {
		return 0, false, nil, err
	}
	cfg := solver.LadderConfig{}
	if inj != nil {
		cfg.Fault = func(method string, _ float64) error {
			if method == "newton" {
				return inj.Err(faultinject.SolverNewton)
			}
			return inj.Err(faultinject.SolverFixedPoint)
		}
	}
	d, attempts, serr := model.SolveLadder(cfg)
	if serr != nil {
		// Every rung failed: degrade to the closed-form heuristic so
		// table creation still succeeds, with estimates flagged.
		return model.OccupancyHeuristic(), true, attempts, nil
	}
	occ = d.AverageOccupancy()
	if inj == nil {
		solveCache.Store(key, occ)
	}
	return occ, false, attempts, nil
}

// SingleShard, passed as TableOptions.ShardBits, forces exactly one
// shard: the table is then bit-identical in structure and behavior to
// the pre-sharding engine (one quadtree over the whole region, one
// lock, one snapshot).
const SingleShard = -1

// MaxShardBits caps the shard-key depth: at k = 3 a table has 64
// shards, past the point of diminishing returns for any core count
// this repository targets, while keeping the per-shard depth headroom
// (DefaultMaxDepth - k) essentially intact.
const MaxShardBits = 3

// TableOptions parameterizes CreateTableWith.
type TableOptions struct {
	// Capacity is the node capacity of the backing PR quadtrees.
	Capacity int
	// Region is the table's universe; the zero Rect selects the unit
	// square.
	Region geom.Rect
	// ShardBits selects the number of leading Morton bit-pairs that key
	// a record's shard: the table is split into 4^ShardBits spatial
	// shards, one per level-ShardBits cell of the region. Zero picks
	// the smallest k with 4^k >= GOMAXPROCS (capped at MaxShardBits),
	// so a single-core process gets one shard and pays no sharding
	// overhead; SingleShard forces one shard explicitly. Values above
	// MaxShardBits are clamped.
	ShardBits int
	// SnapshotThreshold overrides DefaultSnapshotThreshold; zero keeps
	// the default.
	SnapshotThreshold int
}

// autoShardBits picks the default shard-key depth: the smallest k with
// 4^k >= GOMAXPROCS, capped at MaxShardBits, so the shard count tracks
// the parallelism actually available to writers.
func autoShardBits() int {
	p := runtime.GOMAXPROCS(0)
	k := 0
	for k < MaxShardBits && 1<<(2*k) < p {
		k++
	}
	return k
}

// CreateTable creates a table with the given node capacity over the
// unit square (the region every generator in this repository uses);
// pass a non-zero region to cover other extents. The shard count
// defaults to GOMAXPROCS rounded up to a power of four; use
// CreateTableWith to pin it.
func (db *DB) CreateTable(name string, capacity int, region geom.Rect) (*Table, error) {
	return db.CreateTableWith(name, TableOptions{Capacity: capacity, Region: region})
}

// resolveShardBits maps a TableOptions.ShardBits value to the actual
// shard-key depth: SingleShard forces one shard, zero auto-sizes to
// GOMAXPROCS, values above MaxShardBits are clamped.
func resolveShardBits(bits int) (int, error) {
	switch {
	case bits == SingleShard:
		return 0, nil
	case bits == 0:
		return autoShardBits(), nil
	case bits < 0:
		return 0, fmt.Errorf("ShardBits %d out of range", bits)
	case bits > MaxShardBits:
		return MaxShardBits, nil
	}
	return bits, nil
}

// resolveTableShape validates and defaults the region and shard layout
// of a new table.
func resolveTableShape(name string, opts TableOptions) (geom.Rect, int, error) {
	region := opts.Region
	if region == (geom.Rect{}) {
		region = geom.UnitSquare
	} else if err := validateRegion(region); err != nil {
		return geom.Rect{}, 0, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	bits, err := resolveShardBits(opts.ShardBits)
	if err != nil {
		return geom.Rect{}, 0, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	return region, bits, nil
}

// CreateTableWith creates a table with explicit options.
func (db *DB) CreateTableWith(name string, opts TableOptions) (*Table, error) {
	region, bits, err := resolveTableShape(name, opts)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("spatialdb: table %q already exists", name)
	}
	t, err := db.buildTable(name, opts, region, bits)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// buildTable constructs a Table and its shards from resolved options.
// The caller holds db.mu and registers the table in the catalog.
func (db *DB) buildTable(name string, opts TableOptions, region geom.Rect, bits int) (*Table, error) {
	occ, approx, attempts, err := solveOccupancy(opts.Capacity, db.inj)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	t := &Table{
		name:        name,
		capacity:    opts.Capacity,
		inj:         db.inj,
		region:      region,
		shardLevels: bits,
		ids:         newIDIndex(),
		snapEvery:   DefaultSnapshotThreshold,
		occ:         occ,
		occApprox:   approx,
		attempts:    attempts,
	}
	if opts.SnapshotThreshold > 0 {
		t.snapEvery = uint64(opts.SnapshotThreshold)
	}
	t.shards = make([]*shard, 1<<(2*bits))
	for i := range t.shards {
		cell := region.Cell(uint64(i), bits)
		idx, err := quadtree.New[Record](quadtree.Config{
			Capacity: opts.Capacity,
			Region:   cell,
			// A shard root sits k levels below the table root; shrink
			// its depth budget so the deepest reachable cell of the
			// global decomposition is the same as in a single-shard
			// table.
			MaxDepth: quadtree.DefaultMaxDepth - bits,
		})
		if err != nil {
			return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
		}
		t.shards[i] = &shard{
			region: cell,
			inj:    db.inj,
			index:  idx,
			coder:  linearquad.NewCellCoder(cell, linearquad.MaxDepth),
			dirty:  linearquad.NewDirty(dirtyLevel),
		}
	}
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

// DefaultSnapshotThreshold is the number of mutations a shard absorbs
// before a falling-back query rebuilds its frozen snapshot. Small
// enough that read-mostly shards regain the lock-free path quickly;
// large enough that a write burst does not pay an O(n) freeze per
// handful of inserts.
const DefaultSnapshotThreshold = 64

// Table is one spatially indexed record collection, safe for concurrent
// readers and writers. Records are partitioned across 4^k spatial
// shards by the top k Morton bit-pairs of their location (see the
// package comment); all exported methods hide the sharding.
type Table struct {
	name     string
	capacity int
	inj      *faultinject.Injector

	// region is the table universe; immutable.
	region geom.Rect
	// shardLevels is k: the number of quadrant-descent levels (Morton
	// bit-pairs) in the shard key. Immutable.
	shardLevels int
	// shards holds the 4^k shards in Z-order of their level-k cell
	// codes; the slice and its cells are immutable, so shard lookup is
	// lock-free.
	shards []*shard
	// ids maps record ID to location, lock-striped independently of the
	// spatial shards.
	ids *idIndex

	// snapEvery is the per-shard staleness (in mutations) at which a
	// falling-back query triggers a snapshot rebuild; immutable after
	// creation except via SetSnapshotThreshold.
	snapEvery uint64

	// occ is the model-predicted records per block; occApprox marks it
	// as the closed-form heuristic (every solver rung failed). Both are
	// immutable after creation.
	occ       float64
	occApprox bool
	attempts  []solver.Attempt

	// dur is the durable-storage state — per-shard WALs and sealed run
	// ladders — or nil for an in-memory table. Set once at creation.
	dur *durableTable
}

// SetSnapshotThreshold overrides DefaultSnapshotThreshold: the number
// of mutations after which a query that found a shard's snapshot stale
// rebuilds it. n <= 0 restores the default. Call before the table is
// shared across goroutines.
func (t *Table) SetSnapshotThreshold(n int) {
	if n <= 0 {
		t.snapEvery = DefaultSnapshotThreshold
		return
	}
	t.snapEvery = uint64(n)
}

// Shards returns the number of spatial shards (4^ShardBits).
func (t *Table) Shards() int { return len(t.shards) }

// shardIndexOf returns the index of the shard owning p: the locational
// code of p's level-k cell. Points outside the region land in the
// nearest boundary shard, whose tree then rejects them with the same
// out-of-region error a single-shard table produces.
//
//popvet:noalloc
func (t *Table) shardIndexOf(p geom.Point) int {
	return int(t.region.CellOf(p, t.shardLevels))
}

// shardOf returns the shard owning p.
func (t *Table) shardOf(p geom.Point) *shard {
	return t.shards[t.shardIndexOf(p)]
}

// shardsOverlapping returns the shards whose cell touches the closed
// query rectangle, ascending by shard index — the order every
// multi-shard lock acquisition and result merge uses. The overlap test
// is the same closed-vs-half-open predicate the tree traversals prune
// with, so shard pruning can never drop a boundary match.
func (t *Table) shardsOverlapping(query geom.Rect) []*shard {
	if len(t.shards) == 1 {
		if t.shards[0].region.OverlapsClosed(query) {
			return t.shards
		}
		return nil
	}
	out := make([]*shard, 0, 4)
	for _, s := range t.shards {
		if s.region.OverlapsClosed(query) {
			out = append(out, s)
		}
	}
	return out
}

// Compact rebuilds every shard's frozen snapshot immediately, restoring
// the lock-free read path after a write burst without waiting for the
// mutation threshold. Each shard compacts under its own read lock
// (concurrent queries proceed; writers to that shard wait briefly), so
// one hot region never stalls the others. The returned error is the
// first rebuild failure — a tree too deep to Morton-encode
// (linearquad.ErrTooDeep) or an injected fault — in which case reads on
// the affected shards keep falling back to their live trees.
func (t *Table) Compact() error {
	// A lazy table has no snapshots to rebuild; its compaction is the
	// disk one — merge each shard's run ladder into a single full run.
	if t.lazyMode() {
		return t.CompactDisk()
	}
	var firstErr error
	for _, s := range t.shards {
		if err := s.compact(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of records. It reads the shards' atomic
// counters and never blocks behind a writer; a Len that overlaps
// in-flight writes reflects some subset of them.
func (t *Table) Len() int {
	n := int64(0)
	for _, s := range t.shards {
		n += s.count.Load()
	}
	return int(n)
}

// SolveAttempts returns the solver fallback-ladder log from table
// creation: one entry per rung tried, in order. Empty when the
// occupancy came from the per-capacity cache.
func (t *Table) SolveAttempts() []solver.Attempt { return t.attempts }

// Insert adds a record; IDs must be unique and locations distinct (two
// records at the same exact point would be a single map key for the
// underlying structure). Locations with NaN or infinite coordinates are
// rejected with ErrInvalidPoint. An injected fault fails the insert
// before any state changes, so a failed insert never leaves a partial
// record behind. Only the target shard (and the ID's stripe) is
// locked, so concurrent inserts into different regions of space do not
// contend.
func (t *Table) Insert(rec Record) error {
	if err := validatePoint(rec.Loc); err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	// Durable write-ahead ordering requires every failure mode of the
	// in-memory apply to be ruled out before the WAL append, so the
	// region check and payload encoding happen up front (an in-memory
	// table defers the region check to the tree, which produces the
	// same ErrOutOfRegion).
	var payload []byte
	if t.dur != nil {
		if !t.region.Contains(rec.Loc) {
			return fmt.Errorf("spatialdb: insert into %q: %w: %v not in %v",
				t.name, quadtree.ErrOutOfRegion, rec.Loc, t.region)
		}
		var perr error
		if payload, perr = encodePayload(rec.Data); perr != nil {
			return fmt.Errorf("spatialdb: insert into %q: %w", t.name, perr)
		}
	}
	t.inj.Delay(faultinject.InsertLatency)
	if err := t.inj.Err(faultinject.InsertFault); err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	si := t.shardIndexOf(rec.Loc)
	s := t.shards[si]
	st := t.ids.stripe(rec.ID)
	// Lock order: shard, then stripe.
	s.mu.Lock()
	defer s.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, exists := st.m[rec.ID]; exists {
		return fmt.Errorf("%w: %d", ErrDuplicateID, rec.ID)
	}
	lazy := t.lazyMode()
	occupied := false
	if lazy {
		occupied = t.lazyOccupied(si, rec.Loc)
	} else {
		occupied = s.index.Contains(rec.Loc)
	}
	if occupied {
		return fmt.Errorf("spatialdb: insert into %q: location %v already occupied", t.name, rec.Loc)
	}
	if t.dur != nil {
		// Write-ahead: a failed append leaves no partial record (the
		// in-memory state is untouched and recovery discards the torn
		// frame); a successful append cannot fail to apply.
		if err := t.dur.logInsert(si, rec, payload); err != nil {
			return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
		}
		defer t.dur.notifyFlush()
	}
	s.epoch.Add(1) // invalidate the frozen snapshot before mutating
	if lazy {
		s.tail[rec.Loc] = tailRec{rec: rec}
	} else {
		s.markDirty(rec.Loc)
		if _, err := s.index.Insert(rec.Loc, rec); err != nil {
			return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
		}
	}
	st.m[rec.ID] = rec.Loc
	s.count.Add(1)
	return nil
}

// InsertBatch adds a batch of records atomically: the whole batch is
// validated — points finite and in-region, IDs unique (within the batch
// and against the table), locations distinct — before anything is
// inserted, so on error the table is unchanged. The batch is then
// partitioned by shard and each sub-batch bulk-loaded into its shard's
// tree, with every involved shard write lock (ascending index order,
// deadlock-free) held until the last sub-batch lands — so concurrent
// readers, which hold all their target shards' read locks for the whole
// scan, never observe a partially applied batch.
func (t *Table) InsertBatch(recs []Record) error {
	var payloads [][]byte
	if t.dur != nil {
		payloads = make([][]byte, len(recs))
	}
	for i := range recs {
		if err := validatePoint(recs[i].Loc); err != nil {
			return fmt.Errorf("spatialdb: insert batch into %q: record %d: %w", t.name, i, err)
		}
		if !t.region.Contains(recs[i].Loc) {
			return fmt.Errorf("spatialdb: insert batch into %q: %w: %v not in %v",
				t.name, quadtree.ErrOutOfRegion, recs[i].Loc, t.region)
		}
		if t.dur != nil {
			var perr error
			if payloads[i], perr = encodePayload(recs[i].Data); perr != nil {
				return fmt.Errorf("spatialdb: insert batch into %q: record %d: %w", t.name, i, perr)
			}
		}
	}
	t.inj.Delay(faultinject.InsertLatency)
	if err := t.inj.Err(faultinject.InsertFault); err != nil {
		return fmt.Errorf("spatialdb: insert batch into %q: %w", t.name, err)
	}
	if len(recs) == 0 {
		return nil
	}
	// Partition by shard; involved shards in ascending index order.
	byShard := make([][]int, len(t.shards))
	involved := make([]int, 0, 4)
	var stripeMask uint32
	for i := range recs {
		si := t.shardIndexOf(recs[i].Loc)
		if byShard[si] == nil {
			involved = append(involved, si)
		}
		byShard[si] = append(byShard[si], i)
		stripeMask |= 1 << (recs[i].ID % idStripes)
	}
	sort.Ints(involved)
	targets := make([]*shard, len(involved))
	for i, si := range involved {
		targets[i] = t.shards[si]
	}
	lockShards(targets)
	defer unlockShards(targets)
	t.ids.lockStripes(stripeMask)
	defer t.ids.unlockStripes(stripeMask)
	// Validate against the locked state.
	seenID := make(map[uint64]struct{}, len(recs))
	seenLoc := make(map[geom.Point]struct{}, len(recs))
	for i := range recs {
		id, loc := recs[i].ID, recs[i].Loc
		if _, dup := seenID[id]; dup {
			return fmt.Errorf("spatialdb: insert batch into %q: %w: %d repeated in batch", t.name, ErrDuplicateID, id)
		}
		if _, exists := t.ids.stripe(id).m[id]; exists {
			return fmt.Errorf("%w: %d", ErrDuplicateID, id)
		}
		if _, dup := seenLoc[loc]; dup {
			return fmt.Errorf("spatialdb: insert batch into %q: location %v repeated in batch", t.name, loc)
		}
		occupied := false
		if t.lazyMode() {
			occupied = t.lazyOccupied(t.shardIndexOf(loc), loc)
		} else {
			occupied = t.shardOf(loc).index.Contains(loc)
		}
		if occupied {
			return fmt.Errorf("spatialdb: insert batch into %q: location %v already occupied", t.name, loc)
		}
		seenID[id] = struct{}{}
		seenLoc[loc] = struct{}{}
	}
	if t.dur != nil {
		// Write-ahead, all shards logged under the held locks: if any
		// per-shard append fails the batch is marked failed (frames
		// already written are dropped by Flush and by recovery's
		// completeness check) and nothing is applied.
		if err := t.dur.logBatch(involved, byShard, recs, payloads); err != nil {
			return fmt.Errorf("spatialdb: insert batch into %q: %w", t.name, err)
		}
		defer t.dur.notifyFlush()
	}
	// Apply per shard. Validation above covered every BulkLoad failure
	// mode (region membership, duplicate locations), so the loop cannot
	// fail partway.
	for _, si := range involved {
		s := t.shards[si]
		idxs := byShard[si]
		s.epoch.Add(uint64(len(idxs))) // invalidate the snapshot before mutating
		if t.lazyMode() {
			for _, ri := range idxs {
				s.tail[recs[ri].Loc] = tailRec{rec: recs[ri]}
			}
		} else {
			points := make([]geom.Point, len(idxs))
			vals := make([]Record, len(idxs))
			for j, ri := range idxs {
				points[j] = recs[ri].Loc
				vals[j] = recs[ri]
				s.markDirty(recs[ri].Loc)
			}
			if _, err := s.index.BulkLoad(points, vals); err != nil {
				return fmt.Errorf("spatialdb: insert batch into %q: %w", t.name, err)
			}
		}
		s.count.Add(int64(len(idxs)))
		for _, ri := range idxs {
			t.ids.stripe(recs[ri].ID).m[recs[ri].ID] = recs[ri].Loc
		}
	}
	return nil
}

// Get returns the record with the given ID. On a quiescent shard it is
// served from the frozen snapshot without locking.
func (t *Table) Get(id uint64) (Record, bool) {
	loc, ok := t.ids.lookup(id)
	if !ok {
		return Record{}, false
	}
	if t.lazyMode() {
		return t.getLazy(id, loc)
	}
	s := t.shardOf(loc)
	if f, _ := s.loadFresh(); f != nil {
		if rec, ok := f.Get(loc); ok && rec.ID == id {
			return rec, true
		}
		// A concurrent delete/re-insert may have raced the lookup; the
		// locked read below is authoritative.
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.index.Get(loc)
	if !ok || rec.ID != id {
		return Record{}, false
	}
	return rec, true
}

// Delete removes the record with the given ID, locking only the shard
// that holds it. The location is looked up first and re-verified under
// the shard lock; if a concurrent delete+insert moved the ID between
// the two reads, the deletion retries against the new location. On a
// durable table a WAL failure aborts the delete and reports "not
// deleted"; use DeleteChecked to observe the error itself.
func (t *Table) Delete(id uint64) bool {
	deleted, _ := t.DeleteChecked(id)
	return deleted
}

// DeleteChecked is Delete with the durable write-ahead error surfaced:
// a delete whose WAL append fails is not applied, and the error says
// why. In-memory tables never return an error.
func (t *Table) DeleteChecked(id uint64) (bool, error) {
	for {
		loc, ok := t.ids.lookup(id)
		if !ok {
			return false, nil
		}
		done, deleted, err := t.deleteAt(id, loc)
		if err != nil {
			return false, fmt.Errorf("spatialdb: delete from %q: %w", t.name, err)
		}
		if done {
			return deleted, nil
		}
	}
}

// deleteAt removes id if it still lives at loc. done=false means the ID
// relocated between lookup and lock (retry with a fresh lookup).
func (t *Table) deleteAt(id uint64, loc geom.Point) (done, deleted bool, err error) {
	si := t.shardIndexOf(loc)
	s := t.shards[si]
	st := t.ids.stripe(id)
	// Lock order: shard, then stripe.
	s.mu.Lock()
	defer s.mu.Unlock()
	st.mu.Lock()
	defer st.mu.Unlock()
	cur, ok := st.m[id]
	if !ok {
		return true, false, nil
	}
	if cur != loc {
		return false, false, nil
	}
	if t.dur != nil {
		// Write-ahead: a failed append leaves the record in place.
		if err := t.dur.logDelete(si, id, loc); err != nil {
			return true, false, err
		}
		defer t.dur.notifyFlush()
	}
	s.epoch.Add(1) // invalidate the frozen snapshot before mutating
	delete(st.m, id)
	if t.lazyMode() {
		// The id index vouched for the record (cur == loc), so the
		// tombstone always deletes exactly one live record.
		s.tail[loc] = tailRec{rec: Record{ID: id, Loc: loc}, tomb: true}
		s.count.Add(-1)
		return true, true, nil
	}
	s.markDirty(loc)
	if s.index.Delete(loc) {
		s.count.Add(-1)
		return true, true, nil
	}
	return true, false, nil
}
