// Package spatialdb is a small spatial query layer over the PR
// quadtree, in the spirit of the geographic information system that
// motivated the paper [Same85c]: named tables of located records,
// window / nearest / radius queries, and — the point of the exercise —
// an EXPLAIN whose cost estimates come from the population model.
//
// The population model turns the paper's analysis into an optimizer
// statistic: from nothing but the node capacity it predicts the
// expected number of leaf blocks per record, hence the expected number
// of blocks a window query must touch, before a single page is read.
// Explain returns that estimate next to the measured traversal cost so
// callers can see the model earning its keep.
//
// # Resilience
//
// The layer is built to serve concurrent traffic and to degrade rather
// than fail:
//
//   - DB and Table are safe for concurrent readers and writers: the DB
//     guards its catalog with an RWMutex and every table has its own,
//     so traffic on one table never blocks another.
//   - Inputs are validated at the API boundary: NaN/Inf coordinates and
//     degenerate regions are rejected with the typed errors
//     ErrInvalidPoint and ErrInvalidRegion before they can corrupt the
//     index or send a traversal into undefined territory.
//   - Queries accept an optional node-visit budget (Query.MaxNodes);
//     a query that exhausts it returns the partial result with
//     Cost.Truncated set instead of traversing without bound.
//   - CreateTable solves the population model through a fallback
//     ladder (Newton → fixed point → escalating damping); if every
//     rung fails it falls back to a closed-form occupancy heuristic
//     and marks the table's estimates approximate rather than failing
//     table creation. Solved distributions are cached per
//     (capacity, fanout), so repeated CreateTable calls are O(1)
//     after the first solve.
//   - Deterministic failure points (package faultinject) can be armed
//     for chaos testing; the production default is a nil injector that
//     costs one pointer comparison per operation.
//
// # Snapshot read path
//
// Each table keeps an atomically-published linear-quadtree snapshot
// (package linearquad): a pointerless, Morton-coded frozen copy of the
// index, stamped with the table's mutation epoch. Window and radius
// Selects, CountRange, and Explain on a quiescent table — one whose
// epoch still matches the snapshot's — are served entirely from the
// snapshot without taking the table RWMutex, so steady read traffic is
// lock-free and never contends with a writer on another key range.
// When the snapshot is stale the query falls back to the live tree
// under the read lock, and the snapshot is rebuilt lazily once the
// table has absorbed SnapshotThreshold mutations since the last build
// (or immediately on Compact). Query budgets (MaxNodes), Cost
// accounting, and the faultinject query points apply identically on
// both paths.
package spatialdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"popana/internal/core"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
	"popana/internal/solver"
)

// ErrNoTable is returned for operations on unknown table names.
var ErrNoTable = errors.New("spatialdb: no such table")

// ErrDuplicateID is returned when inserting a record whose ID exists.
var ErrDuplicateID = errors.New("spatialdb: duplicate record id")

// ErrInvalidPoint is returned when a record location or query point has
// a NaN or infinite coordinate.
var ErrInvalidPoint = errors.New("spatialdb: invalid point")

// ErrInvalidRegion is returned when a table region or query window is
// degenerate: non-finite corners, inverted extents, or zero area.
var ErrInvalidRegion = errors.New("spatialdb: invalid region")

// quadFanout is the fanout of the backing PR quadtree.
const quadFanout = 4

// Record is a located row: a caller-assigned ID, a position, and an
// arbitrary payload.
type Record struct {
	ID   uint64
	Loc  geom.Point
	Data any
}

// validatePoint rejects coordinates the index cannot reason about.
func validatePoint(p geom.Point) error {
	if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
		return fmt.Errorf("%w: %v", ErrInvalidPoint, p)
	}
	return nil
}

// validateRegion rejects degenerate rectangles. The zero Rect is allowed
// where documented (it selects the unit square).
func validateRegion(r geom.Rect) error {
	for _, c := range [4]float64{r.MinX, r.MinY, r.MaxX, r.MaxY} {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return fmt.Errorf("%w: non-finite corner in %v", ErrInvalidRegion, r)
		}
	}
	if r.MinX >= r.MaxX || r.MinY >= r.MaxY {
		return fmt.Errorf("%w: zero or negative area %v", ErrInvalidRegion, r)
	}
	return nil
}

// DB is a collection of named spatial tables, safe for concurrent use.
type DB struct {
	mu     sync.RWMutex
	tables map[string]*Table
	inj    *faultinject.Injector
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// SetFaultInjector arms the database and all tables created afterwards
// with deterministic failure points for chaos testing. Call it before
// creating tables and before sharing the DB across goroutines; the
// default nil injector costs nothing.
func (db *DB) SetFaultInjector(inj *faultinject.Injector) { db.inj = inj }

// solveCache memoizes the population-model occupancy per
// (capacity, fanout): repeated table creation pays the iterative solve
// only once per process. Only exact (non-heuristic) solves are cached,
// and the cache is bypassed entirely while a fault injector is armed so
// chaos runs stay deterministic.
var solveCache sync.Map // solveKey -> float64

type solveKey struct{ capacity, fanout int }

// solveOccupancy returns the model-predicted records per block for a
// node capacity. The solve runs through the fallback ladder; when every
// rung fails the closed-form occupancy heuristic is returned with
// approx=true, and the table's estimates are marked approximate.
func solveOccupancy(capacity int, inj *faultinject.Injector) (occ float64, approx bool, attempts []solver.Attempt, err error) {
	key := solveKey{capacity, quadFanout}
	if inj == nil {
		if v, ok := solveCache.Load(key); ok {
			return v.(float64), false, nil, nil
		}
	}
	model, err := core.NewPointModel(capacity, quadFanout)
	if err != nil {
		return 0, false, nil, err
	}
	cfg := solver.LadderConfig{}
	if inj != nil {
		cfg.Fault = func(method string, _ float64) error {
			if method == "newton" {
				return inj.Err(faultinject.SolverNewton)
			}
			return inj.Err(faultinject.SolverFixedPoint)
		}
	}
	d, attempts, serr := model.SolveLadder(cfg)
	if serr != nil {
		// Every rung failed: degrade to the closed-form heuristic so
		// table creation still succeeds, with estimates flagged.
		return model.OccupancyHeuristic(), true, attempts, nil
	}
	occ = d.AverageOccupancy()
	if inj == nil {
		solveCache.Store(key, occ)
	}
	return occ, false, attempts, nil
}

// CreateTable creates a table with the given node capacity over the
// unit square (the region every generator in this repository uses);
// pass a non-zero region to cover other extents.
func (db *DB) CreateTable(name string, capacity int, region geom.Rect) (*Table, error) {
	if region != (geom.Rect{}) {
		if err := validateRegion(region); err != nil {
			return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("spatialdb: table %q already exists", name)
	}
	idx, err := quadtree.New[Record](quadtree.Config{Capacity: capacity, Region: region})
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	occ, approx, attempts, err := solveOccupancy(capacity, db.inj)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	t := &Table{
		name:      name,
		capacity:  capacity,
		inj:       db.inj,
		index:     idx,
		byID:      map[uint64]geom.Point{},
		snapEvery: DefaultSnapshotThreshold,
		occ:       occ,
		occApprox: approx,
		attempts:  attempts,
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

// DefaultSnapshotThreshold is the number of mutations a table absorbs
// before a falling-back query rebuilds the frozen snapshot. Small
// enough that read-mostly tables regain the lock-free path quickly;
// large enough that a write burst does not pay an O(n) freeze per
// handful of inserts.
const DefaultSnapshotThreshold = 64

// snapshot is one atomically-published frozen view of a table's index.
// frozen == nil records a freeze attempt that failed (tree too deep) at
// this epoch, so the table does not retry until more mutations arrive.
type snapshot struct {
	frozen *linearquad.Frozen[Record]
	epoch  uint64
}

// Table is one spatially indexed record collection, safe for concurrent
// readers and writers.
type Table struct {
	name     string
	capacity int
	inj      *faultinject.Injector

	mu    sync.RWMutex
	index *quadtree.Tree[Record]
	byID  map[uint64]geom.Point

	// epoch counts mutations (each batched record counts once). Bumped
	// under the write lock before the index changes, so a reader that
	// observes a snapshot matching the current epoch is guaranteed the
	// snapshot reflects every completed write.
	epoch atomic.Uint64
	// snap is the latest frozen snapshot; nil until the first build.
	// The publish-after-build discipline the lock-free read path relies
	// on lives entirely in the three accessors below; popvet's
	// lockdiscipline analyzer rejects any other Load or Store.
	//popvet:accessors loadFresh rebuildLocked maybeRebuildLocked
	snap atomic.Pointer[snapshot]
	// rebuilding serializes snapshot builds so a thundering herd of
	// stale readers freezes the tree once, not once per reader.
	rebuilding atomic.Bool
	// snapEvery is the staleness (in mutations) at which a falling-back
	// query triggers a rebuild; immutable after creation except via
	// SetSnapshotThreshold.
	snapEvery uint64

	// occ is the model-predicted records per block; occApprox marks it
	// as the closed-form heuristic (every solver rung failed). Both are
	// immutable after creation.
	occ       float64
	occApprox bool
	attempts  []solver.Attempt
}

// SetSnapshotThreshold overrides DefaultSnapshotThreshold: the number
// of mutations after which a query that found the snapshot stale
// rebuilds it. n <= 0 restores the default. Call before the table is
// shared across goroutines.
func (t *Table) SetSnapshotThreshold(n int) {
	if n <= 0 {
		t.snapEvery = DefaultSnapshotThreshold
		return
	}
	t.snapEvery = uint64(n)
}

// loadFresh returns the frozen snapshot when it exactly matches the
// table's current mutation epoch, nil otherwise. Lock-free: two atomic
// loads.
func (t *Table) loadFresh() *linearquad.Frozen[Record] {
	s := t.snap.Load()
	if s != nil && s.frozen != nil && s.epoch == t.epoch.Load() {
		return s.frozen
	}
	return nil
}

// rebuildLocked freezes the index and publishes the snapshot. The
// caller must hold t.mu (read or write); under either the epoch is
// stable, so the published snapshot is exact for its stamp. A freeze
// failure (ErrTooDeep) is published as an empty marker so queries stop
// retrying until the table changes again.
func (t *Table) rebuildLocked() (*linearquad.Frozen[Record], error) {
	f, err := linearquad.Freeze(t.index)
	t.snap.Store(&snapshot{frozen: f, epoch: t.epoch.Load()})
	return f, err
}

// maybeRebuildLocked rebuilds the snapshot if it is missing or stale by
// at least the threshold, returning a frozen view that matches the live
// index exactly (nil when no rebuild happened or the tree cannot be
// frozen). The caller must hold at least the read lock.
func (t *Table) maybeRebuildLocked() *linearquad.Frozen[Record] {
	s := t.snap.Load()
	e := t.epoch.Load()
	if s != nil && e-s.epoch < t.snapEvery {
		return nil
	}
	if !t.rebuilding.CompareAndSwap(false, true) {
		return nil // another reader is already freezing this state
	}
	defer t.rebuilding.Store(false)
	f, _ := t.rebuildLocked()
	return f
}

// Compact rebuilds the table's frozen snapshot immediately, restoring
// the lock-free read path after a write burst without waiting for the
// mutation threshold. It runs under the read lock (concurrent queries
// proceed; writers wait). The only possible error is a tree too deep
// to Morton-encode (linearquad.ErrTooDeep), in which case reads keep
// falling back to the live tree.
func (t *Table) Compact() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, err := t.rebuildLocked()
	return err
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of records.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.index.Len()
}

// SolveAttempts returns the solver fallback-ladder log from table
// creation: one entry per rung tried, in order. Empty when the
// occupancy came from the per-capacity cache.
func (t *Table) SolveAttempts() []solver.Attempt { return t.attempts }

// Insert adds a record; IDs must be unique and locations distinct (two
// records at the same exact point would be a single map key for the
// underlying structure). Locations with NaN or infinite coordinates are
// rejected with ErrInvalidPoint. An injected fault fails the insert
// before any state changes, so a failed insert never leaves a partial
// record behind.
func (t *Table) Insert(rec Record) error {
	if err := validatePoint(rec.Loc); err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	t.inj.Delay(faultinject.InsertLatency)
	if err := t.inj.Err(faultinject.InsertFault); err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.byID[rec.ID]; exists {
		return fmt.Errorf("%w: %d", ErrDuplicateID, rec.ID)
	}
	t.epoch.Add(1) // invalidate the frozen snapshot before mutating
	replaced, err := t.index.Insert(rec.Loc, rec)
	if err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	if replaced {
		// Another record occupied this exact location; restore it and
		// report the conflict.
		return fmt.Errorf("spatialdb: insert into %q: location %v already occupied", t.name, rec.Loc)
	}
	t.byID[rec.ID] = rec.Loc
	return nil
}

// InsertBatch adds a batch of records atomically: the whole batch is
// validated — points finite, IDs unique (within the batch and against the
// table), locations distinct — before anything is inserted, so on error
// the table is unchanged. The records are then bulk-loaded into the index
// under a single write-lock acquisition, which both amortizes the lock
// and lets the quadtree route the batch in one partitioning pass instead
// of one root-to-leaf descent per record. Concurrent readers never
// observe a partially applied batch.
func (t *Table) InsertBatch(recs []Record) error {
	for i := range recs {
		if err := validatePoint(recs[i].Loc); err != nil {
			return fmt.Errorf("spatialdb: insert batch into %q: record %d: %w", t.name, i, err)
		}
	}
	t.inj.Delay(faultinject.InsertLatency)
	if err := t.inj.Err(faultinject.InsertFault); err != nil {
		return fmt.Errorf("spatialdb: insert batch into %q: %w", t.name, err)
	}
	if len(recs) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	seenID := make(map[uint64]struct{}, len(recs))
	seenLoc := make(map[geom.Point]struct{}, len(recs))
	for i := range recs {
		id, loc := recs[i].ID, recs[i].Loc
		if _, dup := seenID[id]; dup {
			return fmt.Errorf("spatialdb: insert batch into %q: %w: %d repeated in batch", t.name, ErrDuplicateID, id)
		}
		if _, exists := t.byID[id]; exists {
			return fmt.Errorf("%w: %d", ErrDuplicateID, id)
		}
		if _, dup := seenLoc[loc]; dup {
			return fmt.Errorf("spatialdb: insert batch into %q: location %v repeated in batch", t.name, loc)
		}
		if t.index.Contains(loc) {
			return fmt.Errorf("spatialdb: insert batch into %q: location %v already occupied", t.name, loc)
		}
		seenID[id] = struct{}{}
		seenLoc[loc] = struct{}{}
	}
	points := make([]geom.Point, len(recs))
	for i := range recs {
		points[i] = recs[i].Loc
	}
	t.epoch.Add(uint64(len(recs))) // invalidate the snapshot before mutating
	if _, err := t.index.BulkLoad(points, recs); err != nil {
		return fmt.Errorf("spatialdb: insert batch into %q: %w", t.name, err)
	}
	for i := range recs {
		t.byID[recs[i].ID] = recs[i].Loc
	}
	return nil
}

// Get returns the record with the given ID.
func (t *Table) Get(id uint64) (Record, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	loc, ok := t.byID[id]
	if !ok {
		return Record{}, false
	}
	rec, ok := t.index.Get(loc)
	return rec, ok
}

// Delete removes the record with the given ID.
func (t *Table) Delete(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	loc, ok := t.byID[id]
	if !ok {
		return false
	}
	t.epoch.Add(1) // invalidate the frozen snapshot before mutating
	delete(t.byID, id)
	return t.index.Delete(loc)
}

// Query is a spatial selection: exactly one of Window, Nearest, or
// Within must be set; Filter optionally post-filters records.
type Query struct {
	// Window selects records inside a closed rectangle.
	Window *geom.Rect
	// Nearest selects the K records closest to At.
	Nearest *NearestSpec
	// Within selects records within Radius of At.
	Within *WithinSpec
	// Filter keeps only records for which it returns true (applied
	// after the spatial predicate). Nil keeps everything. The filter
	// runs under the table's read lock and must not call back into the
	// same table's mutating methods.
	Filter func(Record) bool
	// MaxNodes, when positive, bounds the number of index nodes a
	// window or radius query may visit. A query that exhausts the
	// budget returns the partial result accumulated so far with
	// Cost.Truncated set, degrading gracefully instead of traversing
	// without bound. Zero means unlimited. Nearest queries ignore it
	// (their work is bounded by K).
	MaxNodes int
}

// NearestSpec parameterizes a k-nearest query.
type NearestSpec struct {
	At geom.Point
	K  int
}

// WithinSpec parameterizes a radius query.
type WithinSpec struct {
	At     geom.Point
	Radius float64
}

// Cost is the measured work of executing a query.
type Cost struct {
	NodesVisited   int
	LeavesVisited  int
	RecordsScanned int
	// Truncated reports that the query's MaxNodes budget stopped the
	// traversal early; the returned records are a partial result.
	Truncated bool
}

// ranger abstracts the two range-serving representations — the live
// quadtree and the frozen linear snapshot — which share the budgeted
// traversal signature, so Select and CountRange are written once.
type ranger interface {
	RangeBudgeted(geom.Rect, int, quadtree.Visit[Record]) quadtree.RangeStats
	CountRangeBudgeted(geom.Rect, int) quadtree.RangeStats
}

// Select executes the query and returns matching records with the
// measured cost. Results of window/radius queries are in no particular
// order; nearest queries return closest-first.
//
// Window and radius queries on a quiescent table — no mutation since
// the snapshot was built — are served from the frozen linear snapshot
// without acquiring the table lock; otherwise they fall back to the
// live tree under the read lock, rebuilding the snapshot once the
// mutation threshold is reached. Both paths honor MaxNodes and report
// the same Cost fields.
func (t *Table) Select(q Query) ([]Record, Cost, error) {
	if err := q.validate(); err != nil {
		return nil, Cost{}, err
	}
	t.inj.Delay(faultinject.QueryLatency)
	keep := q.Filter
	if keep == nil {
		keep = func(Record) bool { return true }
	}
	if q.Nearest == nil {
		// Lock-free fast path: a snapshot stamped with the current
		// epoch is an exact copy of the index.
		if f := t.loadFresh(); f != nil {
			out, cost := selectRange(f, q, keep)
			return out, cost, nil
		}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	if q.Nearest != nil {
		pts := t.index.KNearest(q.Nearest.At, q.Nearest.K)
		out := make([]Record, 0, len(pts))
		for _, p := range pts {
			if rec, ok := t.index.Get(p); ok && keep(rec) {
				out = append(out, rec)
			}
		}
		// KNearest is not instrumented; report the records touched.
		return out, Cost{RecordsScanned: len(pts)}, nil
	}
	// Stale (or absent) snapshot: rebuild it if the table has absorbed
	// enough mutations, and serve this query from whichever
	// representation is current under the read lock.
	var idx ranger = t.index
	if f := t.maybeRebuildLocked(); f != nil {
		idx = f
	}
	out, cost := selectRange(idx, q, keep)
	return out, cost, nil
}

// selectRange serves a window or radius query from idx (the live tree
// or a frozen snapshot; exactly one of q.Window/q.Within is set).
func selectRange(idx ranger, q Query, keep func(Record) bool) ([]Record, Cost) {
	var out []Record
	var st quadtree.RangeStats
	if q.Window != nil {
		st = idx.RangeBudgeted(*q.Window, q.MaxNodes, func(_ geom.Point, r Record) bool {
			if keep(r) {
				out = append(out, r)
			}
			return true
		})
	} else {
		w := q.Within
		r2 := w.Radius * w.Radius
		box := geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius)
		st = idx.RangeBudgeted(box, q.MaxNodes, func(p geom.Point, rec Record) bool {
			if p.Dist2(w.At) <= r2 && keep(rec) {
				out = append(out, rec)
			}
			return true
		})
	}
	return out, Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned, st.Truncated}
}

// CountRange returns the number of records inside the closed window
// with the measured cost, without materializing the records. It uses
// the same budgeted traversal as a window Select — Cost.Truncated is
// reported identically for the same window and budget — and the same
// snapshot fast path: on a quiescent table it runs lock-free and
// allocation-free.
func (t *Table) CountRange(window geom.Rect, maxNodes int) (int, Cost, error) {
	if err := validateRegion(window); err != nil {
		return 0, Cost{}, err
	}
	t.inj.Delay(faultinject.QueryLatency)
	if f := t.loadFresh(); f != nil {
		st := f.CountRangeBudgeted(window, maxNodes)
		return st.Matched, Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned, st.Truncated}, nil
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	var idx ranger = t.index
	if f := t.maybeRebuildLocked(); f != nil {
		idx = f
	}
	st := idx.CountRangeBudgeted(window, maxNodes)
	return st.Matched, Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned, st.Truncated}, nil
}

func (q Query) validate() error {
	set := 0
	if q.Window != nil {
		set++
		if err := validateRegion(*q.Window); err != nil {
			return err
		}
	}
	if q.Nearest != nil {
		set++
		if err := validatePoint(q.Nearest.At); err != nil {
			return err
		}
		if q.Nearest.K <= 0 {
			return fmt.Errorf("spatialdb: nearest K %d <= 0", q.Nearest.K)
		}
	}
	if q.Within != nil {
		set++
		if err := validatePoint(q.Within.At); err != nil {
			return err
		}
		if math.IsNaN(q.Within.Radius) || math.IsInf(q.Within.Radius, 0) || q.Within.Radius <= 0 {
			return fmt.Errorf("spatialdb: radius %g must be a positive finite number", q.Within.Radius)
		}
	}
	if set != 1 {
		return fmt.Errorf("spatialdb: query must set exactly one of Window, Nearest, Within (got %d)", set)
	}
	return nil
}

// Estimate is the model-based prediction Explain produces.
type Estimate struct {
	// Blocks is the expected number of leaf blocks the query touches.
	Blocks float64
	// Records is the expected number of records scanned.
	Records float64
	// Selectivity is the fraction of the table expected to match.
	Selectivity float64
	// Approximate marks estimates derived from the closed-form
	// occupancy heuristic because every solver rung failed at table
	// creation; treat them as order-of-magnitude guidance.
	Approximate bool
}

// Explain predicts the cost of a query from the population model before
// running it: the table holds ~n/occ blocks; a window of area fraction
// s touches about s·L interior blocks plus a boundary band of about
// perimeter/blockSide blocks, with blockSide = sqrt(region/L).
func (t *Table) Explain(q Query) (Estimate, error) {
	if err := q.validate(); err != nil {
		return Estimate{}, err
	}
	var n float64
	var region geom.Rect
	if f := t.loadFresh(); f != nil {
		// Quiescent table: estimate from the snapshot, lock-free.
		n = float64(f.Len())
		region = f.Region()
	} else {
		t.mu.RLock()
		n = float64(t.index.Len())
		region = t.index.Region()
		t.mu.RUnlock()
	}
	if n == 0 {
		return Estimate{Approximate: t.occApprox}, nil
	}
	leaves := math.Max(n/t.occ, 1)
	est := func(w geom.Rect) Estimate {
		// Clip the window to the region.
		minX := math.Max(w.MinX, region.MinX)
		minY := math.Max(w.MinY, region.MinY)
		maxX := math.Min(w.MaxX, region.MaxX)
		maxY := math.Min(w.MaxY, region.MaxY)
		if minX >= maxX || minY >= maxY {
			return Estimate{Approximate: t.occApprox}
		}
		cw, ch := maxX-minX, maxY-minY
		frac := cw * ch / region.Area()
		side := math.Sqrt(region.Area() / leaves) // typical block side
		boundary := 2 * (cw + ch) / side          // blocks straddling the edge
		blocks := math.Min(frac*leaves+boundary+1, leaves)
		return Estimate{
			Blocks:      blocks,
			Records:     blocks * t.occ,
			Selectivity: frac,
			Approximate: t.occApprox,
		}
	}
	switch {
	case q.Window != nil:
		return est(*q.Window), nil
	case q.Within != nil:
		w := q.Within
		e := est(geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius))
		// A disc covers π/4 of its bounding box.
		e.Selectivity *= math.Pi / 4
		return e, nil
	default:
		// K nearest: expect to inspect ~K records plus one block's
		// worth of neighbors.
		k := float64(q.Nearest.K)
		return Estimate{
			Blocks:      math.Min(k/t.occ+1, leaves),
			Records:     k + t.occ,
			Selectivity: k / n,
			Approximate: t.occApprox,
		}, nil
	}
}

// Stats summarizes the table for monitoring: measured occupancy next to
// the model prediction it should hover near.
type Stats struct {
	Records           int
	Blocks            int
	Height            int
	MeasuredOccupancy float64
	ModelOccupancy    float64
	// ModelApproximate marks ModelOccupancy as the closed-form
	// heuristic rather than a solved distribution.
	ModelApproximate bool
}

// Stats returns the table's current statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := t.index.Census()
	return Stats{
		Records:           t.index.Len(),
		Blocks:            c.Leaves,
		Height:            c.Height,
		MeasuredOccupancy: c.AverageOccupancy(),
		ModelOccupancy:    t.occ,
		ModelApproximate:  t.occApprox,
	}
}
