// Package spatialdb is a small spatial query layer over the PR
// quadtree, in the spirit of the geographic information system that
// motivated the paper [Same85c]: named tables of located records,
// window / nearest / radius queries, and — the point of the exercise —
// an EXPLAIN whose cost estimates come from the population model.
//
// The population model turns the paper's analysis into an optimizer
// statistic: from nothing but the node capacity it predicts the
// expected number of leaf blocks per record, hence the expected number
// of blocks a window query must touch, before a single page is read.
// Explain returns that estimate next to the measured traversal cost so
// callers can see the model earning its keep.
package spatialdb

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"popana/internal/core"
	"popana/internal/geom"
	"popana/internal/quadtree"
)

// ErrNoTable is returned for operations on unknown table names.
var ErrNoTable = errors.New("spatialdb: no such table")

// ErrDuplicateID is returned when inserting a record whose ID exists.
var ErrDuplicateID = errors.New("spatialdb: duplicate record id")

// Record is a located row: a caller-assigned ID, a position, and an
// arbitrary payload.
type Record struct {
	ID   uint64
	Loc  geom.Point
	Data any
}

// DB is a collection of named spatial tables.
type DB struct {
	tables map[string]*Table
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{tables: map[string]*Table{}}
}

// CreateTable creates a table with the given node capacity over the
// unit square (the region every generator in this repository uses);
// pass a non-zero region to cover other extents.
func (db *DB) CreateTable(name string, capacity int, region geom.Rect) (*Table, error) {
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("spatialdb: table %q already exists", name)
	}
	idx, err := quadtree.New[Record](quadtree.Config{Capacity: capacity, Region: region})
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	model, err := core.NewPointModel(capacity, 4)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	dist, err := model.Solve()
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create %q: %w", name, err)
	}
	t := &Table{
		name:     name,
		capacity: capacity,
		index:    idx,
		byID:     map[uint64]geom.Point{},
		occ:      dist.AverageOccupancy(),
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return t, nil
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable removes the named table.
func (db *DB) DropTable(name string) error {
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

// Table is one spatially indexed record collection.
type Table struct {
	name     string
	capacity int
	index    *quadtree.Tree[Record]
	byID     map[uint64]geom.Point
	occ      float64 // model-predicted records per block
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Len returns the number of records.
func (t *Table) Len() int { return t.index.Len() }

// Insert adds a record; IDs must be unique and locations distinct (two
// records at the same exact point would be a single map key for the
// underlying structure).
func (t *Table) Insert(rec Record) error {
	if _, exists := t.byID[rec.ID]; exists {
		return fmt.Errorf("%w: %d", ErrDuplicateID, rec.ID)
	}
	replaced, err := t.index.Insert(rec.Loc, rec)
	if err != nil {
		return fmt.Errorf("spatialdb: insert into %q: %w", t.name, err)
	}
	if replaced {
		// Another record occupied this exact location; restore it and
		// report the conflict.
		return fmt.Errorf("spatialdb: insert into %q: location %v already occupied", t.name, rec.Loc)
	}
	t.byID[rec.ID] = rec.Loc
	return nil
}

// Get returns the record with the given ID.
func (t *Table) Get(id uint64) (Record, bool) {
	loc, ok := t.byID[id]
	if !ok {
		return Record{}, false
	}
	rec, ok := t.index.Get(loc)
	return rec, ok
}

// Delete removes the record with the given ID.
func (t *Table) Delete(id uint64) bool {
	loc, ok := t.byID[id]
	if !ok {
		return false
	}
	delete(t.byID, id)
	return t.index.Delete(loc)
}

// Query is a spatial selection: exactly one of Window, Nearest, or
// Within must be set; Filter optionally post-filters records.
type Query struct {
	// Window selects records inside a closed rectangle.
	Window *geom.Rect
	// Nearest selects the K records closest to At.
	Nearest *NearestSpec
	// Within selects records within Radius of At.
	Within *WithinSpec
	// Filter keeps only records for which it returns true (applied
	// after the spatial predicate). Nil keeps everything.
	Filter func(Record) bool
}

// NearestSpec parameterizes a k-nearest query.
type NearestSpec struct {
	At geom.Point
	K  int
}

// WithinSpec parameterizes a radius query.
type WithinSpec struct {
	At     geom.Point
	Radius float64
}

// Cost is the measured work of executing a query.
type Cost struct {
	NodesVisited   int
	LeavesVisited  int
	RecordsScanned int
}

// Select executes the query and returns matching records with the
// measured cost. Results of window/radius queries are in no particular
// order; nearest queries return closest-first.
func (t *Table) Select(q Query) ([]Record, Cost, error) {
	if err := q.validate(); err != nil {
		return nil, Cost{}, err
	}
	keep := q.Filter
	if keep == nil {
		keep = func(Record) bool { return true }
	}
	switch {
	case q.Window != nil:
		var out []Record
		st := t.index.RangeCounted(*q.Window, func(_ geom.Point, r Record) bool {
			if keep(r) {
				out = append(out, r)
			}
			return true
		})
		return out, Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned}, nil
	case q.Nearest != nil:
		pts := t.index.KNearest(q.Nearest.At, q.Nearest.K)
		out := make([]Record, 0, len(pts))
		for _, p := range pts {
			if rec, ok := t.index.Get(p); ok && keep(rec) {
				out = append(out, rec)
			}
		}
		// KNearest is not instrumented; report the records touched.
		return out, Cost{RecordsScanned: len(pts)}, nil
	default:
		w := q.Within
		r2 := w.Radius * w.Radius
		box := geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius)
		var out []Record
		st := t.index.RangeCounted(box, func(p geom.Point, rec Record) bool {
			if p.Dist2(w.At) <= r2 && keep(rec) {
				out = append(out, rec)
			}
			return true
		})
		return out, Cost{st.NodesVisited, st.LeavesVisited, st.RecordsScanned}, nil
	}
}

func (q Query) validate() error {
	set := 0
	if q.Window != nil {
		set++
	}
	if q.Nearest != nil {
		set++
		if q.Nearest.K <= 0 {
			return fmt.Errorf("spatialdb: nearest K %d <= 0", q.Nearest.K)
		}
	}
	if q.Within != nil {
		set++
		if q.Within.Radius <= 0 {
			return fmt.Errorf("spatialdb: radius %g <= 0", q.Within.Radius)
		}
	}
	if set != 1 {
		return fmt.Errorf("spatialdb: query must set exactly one of Window, Nearest, Within (got %d)", set)
	}
	return nil
}

// Estimate is the model-based prediction Explain produces.
type Estimate struct {
	// Blocks is the expected number of leaf blocks the query touches.
	Blocks float64
	// Records is the expected number of records scanned.
	Records float64
	// Selectivity is the fraction of the table expected to match.
	Selectivity float64
}

// Explain predicts the cost of a query from the population model before
// running it: the table holds ~n/occ blocks; a window of area fraction
// s touches about s·L interior blocks plus a boundary band of about
// perimeter/blockSide blocks, with blockSide = sqrt(region/L).
func (t *Table) Explain(q Query) (Estimate, error) {
	if err := q.validate(); err != nil {
		return Estimate{}, err
	}
	n := float64(t.Len())
	if n == 0 {
		return Estimate{}, nil
	}
	leaves := math.Max(n/t.occ, 1)
	region := t.index.Region()
	est := func(w geom.Rect) Estimate {
		// Clip the window to the region.
		minX := math.Max(w.MinX, region.MinX)
		minY := math.Max(w.MinY, region.MinY)
		maxX := math.Min(w.MaxX, region.MaxX)
		maxY := math.Min(w.MaxY, region.MaxY)
		if minX >= maxX || minY >= maxY {
			return Estimate{}
		}
		cw, ch := maxX-minX, maxY-minY
		frac := cw * ch / region.Area()
		side := math.Sqrt(region.Area() / leaves) // typical block side
		boundary := 2 * (cw + ch) / side          // blocks straddling the edge
		blocks := math.Min(frac*leaves+boundary+1, leaves)
		return Estimate{
			Blocks:      blocks,
			Records:     blocks * t.occ,
			Selectivity: frac,
		}
	}
	switch {
	case q.Window != nil:
		return est(*q.Window), nil
	case q.Within != nil:
		w := q.Within
		e := est(geom.R(w.At.X-w.Radius, w.At.Y-w.Radius, w.At.X+w.Radius, w.At.Y+w.Radius))
		// A disc covers π/4 of its bounding box.
		e.Selectivity *= math.Pi / 4
		return e, nil
	default:
		// K nearest: expect to inspect ~K records plus one block's
		// worth of neighbors.
		k := float64(q.Nearest.K)
		return Estimate{
			Blocks:      math.Min(k/t.occ+1, leaves),
			Records:     k + t.occ,
			Selectivity: k / n,
		}, nil
	}
}

// Stats summarizes the table for monitoring: measured occupancy next to
// the model prediction it should hover near.
type Stats struct {
	Records           int
	Blocks            int
	Height            int
	MeasuredOccupancy float64
	ModelOccupancy    float64
}

// Stats returns the table's current statistics.
func (t *Table) Stats() Stats {
	c := t.index.Census()
	return Stats{
		Records:           t.index.Len(),
		Blocks:            c.Leaves,
		Height:            c.Height,
		MeasuredOccupancy: c.AverageOccupancy(),
		ModelOccupancy:    t.occ,
	}
}
