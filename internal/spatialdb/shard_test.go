package spatialdb

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"popana/internal/dist"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/xrand"
)

// tablePair builds a sharded table and a single-shard control holding
// the same n uniform records, so tests can prove the sharded engine
// answers exactly like the pre-sharding one.
func tablePair(t testing.TB, shardBits, capacity, n int, seed uint64) (sharded, control *Table) {
	t.Helper()
	db := NewDB()
	var err error
	sharded, err = db.CreateTableWith("sharded", TableOptions{Capacity: capacity, ShardBits: shardBits})
	if err != nil {
		t.Fatal(err)
	}
	control, err = db.CreateTableWith("control", TableOptions{Capacity: capacity, ShardBits: SingleShard})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.NewUniform(geom.UnitSquare, xrand.New(seed))
	recs := make([]Record, 0, n)
	seen := map[geom.Point]bool{}
	for len(recs) < n {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, Record{ID: uint64(len(recs)), Loc: p})
	}
	if err := sharded.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := control.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	return sharded, control
}

func TestShardCountSelection(t *testing.T) {
	db := NewDB()
	cases := []struct {
		bits string
		opts TableOptions
		want int
	}{
		{"single", TableOptions{Capacity: 4, ShardBits: SingleShard}, 1},
		{"two", TableOptions{Capacity: 4, ShardBits: 2}, 16},
		{"clamped", TableOptions{Capacity: 4, ShardBits: 9}, 1 << (2 * MaxShardBits)},
	}
	for _, c := range cases {
		tab, err := db.CreateTableWith(c.bits, c.opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := tab.Shards(); got != c.want {
			t.Errorf("%s: Shards() = %d, want %d", c.bits, got, c.want)
		}
	}
	if _, err := db.CreateTableWith("bad", TableOptions{Capacity: 4, ShardBits: -7}); err == nil {
		t.Error("ShardBits -7 accepted")
	}
}

// TestShardedEquivalence1kQueries is the acceptance gate for the
// sharded engine: over 1000 randomized window, radius, and nearest
// queries — unbudgeted and with an ample budget — a 16-shard table must
// return exactly the records, counts, and Truncated flags of a
// single-shard table holding the same data. It runs in three table
// states: snapshots fresh (lock-free fan-out), snapshots stale (locked
// fan-out), and mixed.
func TestShardedEquivalence1kQueries(t *testing.T) {
	sharded, control := tablePair(t, 2, 4, 4000, 77)

	states := []struct {
		name string
		prep func()
	}{
		{"fresh", func() {
			if err := sharded.Compact(); err != nil {
				t.Fatal(err)
			}
			if err := control.Compact(); err != nil {
				t.Fatal(err)
			}
		}},
		{"stale", func() {
			// One insert+delete staleness-pokes every representation
			// without changing the record set.
			for _, tab := range []*Table{sharded, control} {
				if err := tab.Insert(Record{ID: 1 << 40, Loc: geom.Pt(0.31415, 0.92653)}); err != nil {
					t.Fatal(err)
				}
				if !tab.Delete(1 << 40) {
					t.Fatal("staleness poke delete failed")
				}
			}
		}},
	}
	for _, st := range states {
		st.prep()
		assertEquivalentQueries(t, st.name, sharded, control, 123, 1000)
	}
}

// TestShardedBudgetRespected: on a multi-shard table a budgeted query
// sums NodesVisited across shards and must never exceed MaxNodes; when
// it stops early Truncated is set and the result is a subset.
func TestShardedBudgetRespected(t *testing.T) {
	sharded, _ := tablePair(t, 2, 4, 4000, 31)
	full := geom.R(0.01, 0.01, 0.99, 0.99)
	all, _, err := sharded.Select(Query{Window: &full})
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{1, 5, 37, 200, 1 << 20} {
		got, cost, err := sharded.Select(Query{Window: &full, MaxNodes: budget})
		if err != nil {
			t.Fatal(err)
		}
		if cost.NodesVisited > budget {
			t.Fatalf("budget %d: visited %d nodes", budget, cost.NodesVisited)
		}
		if !cost.Truncated && len(got) != len(all) {
			t.Fatalf("budget %d: not truncated but %d of %d records", budget, len(got), len(all))
		}
		if cost.Truncated && len(got) > len(all) {
			t.Fatalf("budget %d: truncated result larger than full", budget)
		}
		cnt, ccost, err := sharded.CountRange(full, budget)
		if err != nil {
			t.Fatal(err)
		}
		if ccost.NodesVisited > budget {
			t.Fatalf("budget %d: count visited %d nodes", budget, ccost.NodesVisited)
		}
		if cnt != len(got) || ccost.Truncated != cost.Truncated || ccost.NodesVisited != cost.NodesVisited {
			t.Fatalf("budget %d: CountRange (%d, trunc=%v, nodes=%d) disagrees with Select (%d, trunc=%v, nodes=%d)",
				budget, cnt, ccost.Truncated, ccost.NodesVisited, len(got), cost.Truncated, cost.NodesVisited)
		}
	}
}

// TestInsertBatchCrossShardAtomicity: a reader whose window spans every
// shard must never observe a partially applied batch, whichever path —
// seqlock or locked fan-out — serves it.
func TestInsertBatchCrossShardAtomicity(t *testing.T) {
	const batch = 32
	db := NewDB()
	tab, err := db.CreateTableWith("atomic", TableOptions{Capacity: 4, ShardBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := xrand.New(404)
		id := uint64(0)
		for b := 0; b < 120; b++ {
			recs := make([]Record, batch)
			for i := range recs {
				// Spread every batch across all four shards.
				q := i % 4
				recs[i] = Record{
					ID: id,
					Loc: geom.Pt(
						float64(q&1)*0.5+rng.Float64()*0.5,
						float64(q>>1)*0.5+rng.Float64()*0.5),
				}
				id++
			}
			if err := tab.InsertBatch(recs); err != nil {
				// Duplicate locations are possible; retry with new points.
				b--
				continue
			}
			// Occasionally restore the lock-free path mid-run so the
			// reader exercises both serving paths.
			if b%17 == 0 {
				_ = tab.Compact()
			}
		}
		stop.Store(true)
	}()
	window := geom.R(0, 0, 1, 1)
	for !stop.Load() {
		recs, _, err := tab.Select(Query{Window: &window})
		if err != nil {
			t.Errorf("Select: %v", err)
			break
		}
		if len(recs)%batch != 0 {
			t.Errorf("observed %d records: not a multiple of batch size %d", len(recs), batch)
			break
		}
		n, _, err := tab.CountRange(window, 0)
		if err != nil {
			t.Errorf("CountRange: %v", err)
			break
		}
		if n%batch != 0 {
			t.Errorf("counted %d records: not a multiple of batch size %d", n, batch)
			break
		}
	}
	wg.Wait()
}

// TestShardChaosAcrossBoundaries hammers one sharded table with
// concurrent Select, CountRange, InsertBatch, Insert, Delete, and
// Compact traffic whose windows and batches straddle shard boundaries.
// Run under -race it is the data-race gate for the sharded write path;
// the assertions are the cheap invariants that survive interleaving.
func TestShardChaosAcrossBoundaries(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTableWith("chaos", TableOptions{Capacity: 4, ShardBits: 2, SnapshotThreshold: 32})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 4
		readers = 4
		rounds  = 150
	)
	var writersWg, readersWg sync.WaitGroup
	var stop atomic.Bool
	for w := 0; w < writers; w++ {
		writersWg.Add(1)
		go func(w int) {
			defer writersWg.Done()
			rng := xrand.New(uint64(w)*7919 + 13)
			base := uint64(w) << 32
			alive := make([]uint64, 0, 256)
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0, 1: // cross-shard batch
					recs := make([]Record, 16)
					for j := range recs {
						recs[j] = Record{ID: base + uint64(i*16+j), Loc: geom.Pt(rng.Float64(), rng.Float64())}
					}
					if err := tab.InsertBatch(recs); err == nil {
						for _, r := range recs {
							alive = append(alive, r.ID)
						}
					}
				case 2: // single insert
					id := base + uint64(1<<20+i)
					if err := tab.Insert(Record{ID: id, Loc: geom.Pt(rng.Float64(), rng.Float64())}); err == nil {
						alive = append(alive, id)
					}
				case 3: // delete something we own
					if len(alive) > 0 {
						k := rng.Intn(len(alive))
						tab.Delete(alive[k])
						alive = append(alive[:k], alive[k+1:]...)
					}
				}
				if i%37 == 0 {
					if err := tab.Compact(); err != nil {
						t.Errorf("Compact: %v", err)
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		readersWg.Add(1)
		go func(r int) {
			defer readersWg.Done()
			rng := xrand.New(uint64(r)*104729 + 7)
			for !stop.Load() {
				w := geom.R(rng.Float64()*0.5, rng.Float64()*0.5, 0, 0)
				w.MaxX = w.MinX + 0.05 + rng.Float64()*0.5
				w.MaxY = w.MinY + 0.05 + rng.Float64()*0.5
				recs, _, err := tab.Select(Query{Window: &w})
				if err != nil {
					t.Errorf("Select: %v", err)
					return
				}
				for _, rec := range recs {
					if !w.OverlapsClosed(geom.Rect{MinX: rec.Loc.X, MinY: rec.Loc.Y, MaxX: rec.Loc.X, MaxY: rec.Loc.Y}) {
						t.Errorf("record %d at %v outside window %v", rec.ID, rec.Loc, w)
						return
					}
				}
				if n, _, err := tab.CountRange(w, 64); err != nil {
					t.Errorf("CountRange: %v", err)
					return
				} else if n < 0 {
					t.Errorf("negative count %d", n)
					return
				}
				if tab.Len() < 0 {
					t.Error("negative Len")
					return
				}
				_ = tab.Stats()
			}
		}(r)
	}
	writersWg.Wait()
	stop.Store(true)
	readersWg.Wait()
}

// TestSnapshotRebuildFaultPerShard arms the SnapshotRebuild fault point
// for exactly one firing: Compact must surface the injected error, the
// affected shard must fall back to its live tree (queries stay correct
// and do not retry the freeze), and every other shard must keep its
// lock-free snapshot. A later Compact restores the failed shard.
func TestSnapshotRebuildFaultPerShard(t *testing.T) {
	inj := faultinject.New(7)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTableWith("flaky", TableOptions{Capacity: 4, ShardBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.NewUniform(geom.UnitSquare, xrand.New(5))
	recs := make([]Record, 0, 800)
	seen := map[geom.Point]bool{}
	for len(recs) < 800 {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, Record{ID: uint64(len(recs)), Loc: p})
	}
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}

	inj.EnableN(faultinject.SnapshotRebuild, 1.0, 1) // exactly the first rebuild fails
	if err := tab.Compact(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Compact error = %v, want injected fault", err)
	}
	if inj.Fired(faultinject.SnapshotRebuild) != 1 {
		t.Fatalf("fault fired %d times, want 1", inj.Fired(faultinject.SnapshotRebuild))
	}
	fresh := 0
	var stale *shard
	for _, s := range tab.shards {
		if f, _ := s.loadFresh(); f != nil {
			fresh++
		} else {
			stale = s
		}
	}
	if fresh != len(tab.shards)-1 || stale == nil {
		t.Fatalf("%d of %d shards fresh after one injected rebuild failure, want %d",
			fresh, len(tab.shards), len(tab.shards)-1)
	}

	// Queries spanning all shards still answer exactly: the stale shard
	// serves from its live tree, the rest from their snapshots — and the
	// failed freeze is not retried (the nil marker holds until the shard
	// mutates or compacts again).
	window := geom.R(0, 0, 1, 1)
	got, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("Select returned %d records, want %d", len(got), len(recs))
	}
	if inj.Fired(faultinject.SnapshotRebuild) != 1 {
		t.Fatalf("query retried the failed freeze: fired %d", inj.Fired(faultinject.SnapshotRebuild))
	}
	if f, _ := stale.loadFresh(); f != nil {
		t.Fatal("failed shard regained a snapshot without a rebuild")
	}

	// The next Compact (fault exhausted) heals the shard.
	if err := tab.Compact(); err != nil {
		t.Fatalf("healing Compact: %v", err)
	}
	if !allFresh(tab) {
		t.Fatal("not all shards fresh after healing Compact")
	}
}

// TestLenAndStatsLockFreeUnderShardWriteLocks: Len always, and Stats on
// fresh shards, must complete while every shard's write lock is held —
// they serve from atomic counters and snapshots, not the locks.
func TestLenAndStatsLockFreeUnderShardWriteLocks(t *testing.T) {
	sharded, _ := tablePair(t, 1, 4, 500, 9)
	if err := sharded.Compact(); err != nil {
		t.Fatal(err)
	}
	lockShards(sharded.shards)
	done := make(chan Stats, 1)
	go func() {
		if n := sharded.Len(); n != 500 {
			t.Errorf("Len under write locks = %d, want 500", n)
		}
		done <- sharded.Stats()
	}()
	st := <-done
	unlockShards(sharded.shards)
	if st.Records != 500 || st.Blocks <= 0 {
		t.Fatalf("Stats under write locks = %+v", st)
	}
	if st.Height <= sharded.shardLevels {
		t.Fatalf("Height %d does not include shard levels %d", st.Height, sharded.shardLevels)
	}
}

// TestShardedStatsMatchesControl: aggregated Records across shards must
// equal the single-shard count, and measured occupancy must stay a
// sane per-leaf average.
func TestShardedStatsMatchesControl(t *testing.T) {
	sharded, control := tablePair(t, 2, 4, 3000, 21)
	ss, cs := sharded.Stats(), control.Stats()
	if ss.Records != cs.Records {
		t.Fatalf("sharded Records %d != control %d", ss.Records, cs.Records)
	}
	if ss.MeasuredOccupancy <= 0 || ss.MeasuredOccupancy > 4 {
		t.Fatalf("sharded MeasuredOccupancy %v outside (0, capacity]", ss.MeasuredOccupancy)
	}
	if ss.ModelOccupancy != cs.ModelOccupancy {
		t.Fatalf("model occupancy differs: %v vs %v", ss.ModelOccupancy, cs.ModelOccupancy)
	}
}
