package spatialdb

import (
	"sort"
	"sync"
	"testing"
	"time"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/xrand"
)

// fillTable bulk-loads n uniform records and returns the table.
func fillTable(t testing.TB, capacity, n int, seed uint64) *Table {
	t.Helper()
	db := NewDB()
	tab, err := db.CreateTable("snap", capacity, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	src := dist.NewUniform(geom.UnitSquare, xrand.New(seed))
	recs := make([]Record, 0, n)
	seen := map[geom.Point]bool{}
	for len(recs) < n {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, Record{ID: uint64(len(recs)), Loc: p})
	}
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	return tab
}

// allFresh reports whether every shard's snapshot matches its current
// mutation epoch — the table-wide "queries run lock-free" condition.
func allFresh(tab *Table) bool {
	for _, s := range tab.shards {
		if f, _ := s.loadFresh(); f == nil {
			return false
		}
	}
	return true
}

func recordIDs(recs []Record) []uint64 {
	ids := make([]uint64, len(recs))
	for i, r := range recs {
		ids[i] = r.ID
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// TestSelectServesFromSnapshotWithoutTableLock is the acceptance test
// for the lock-free read path: with the snapshot fresh and the table's
// write lock HELD by another goroutine, a window Select must still
// complete (served entirely from the snapshot, never touching the
// RWMutex).
func TestSelectServesFromSnapshotWithoutTableLock(t *testing.T) {
	tab := fillTable(t, 8, 5000, 1)
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	window := geom.R(0.2, 0.2, 0.7, 0.7)
	want, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}

	lockShards(tab.shards) // a writer stalls mid-critical-section on every shard
	done := make(chan struct{})
	var got []Record
	var cost Cost
	var serr error
	go func() {
		defer close(done)
		got, cost, serr = tab.Select(Query{Window: &window})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		unlockShards(tab.shards)
		t.Fatal("Select blocked on a shard RWMutex; snapshot path not lock-free")
	}
	unlockShards(tab.shards)

	if serr != nil {
		t.Fatal(serr)
	}
	if len(got) != len(want) {
		t.Fatalf("snapshot-served Select returned %d records, want %d", len(got), len(want))
	}
	if cost.LeavesVisited == 0 || cost.RecordsScanned == 0 {
		t.Fatalf("snapshot-served Select reported empty cost: %+v", cost)
	}

	// CountRange and Explain share the lock-free path.
	lockShards(tab.shards)
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		if n, _, err := tab.CountRange(window, 0); err != nil || n != len(want) {
			serr = err
		}
		if _, err := tab.Explain(Query{Window: &window}); err != nil {
			serr = err
		}
	}()
	select {
	case <-done2:
	case <-time.After(5 * time.Second):
		unlockShards(tab.shards)
		t.Fatal("CountRange/Explain blocked on a shard RWMutex")
	}
	unlockShards(tab.shards)
	if serr != nil {
		t.Fatal(serr)
	}
}

// TestSnapshotStaleFallsBackToLiveTree: after a mutation the snapshot
// is stale, and Select must see the new data immediately (served from
// the live tree under the read lock, never from the stale snapshot).
func TestSnapshotStaleFallsBackToLiveTree(t *testing.T) {
	tab := fillTable(t, 4, 1000, 2)
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	window := geom.R(0.4, 0.4, 0.6, 0.6)
	before, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	// Insert a record dead center; the snapshot predates it.
	if err := tab.Insert(Record{ID: 999999, Loc: geom.Pt(0.5, 0.5)}); err != nil {
		t.Fatal(err)
	}
	after, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before)+1 {
		t.Fatalf("stale snapshot served: got %d records, want %d", len(after), len(before)+1)
	}
	// Delete it again; the live tree must be consulted again.
	if !tab.Delete(999999) {
		t.Fatal("delete failed")
	}
	final, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(final) != len(before) {
		t.Fatalf("after delete got %d records, want %d", len(final), len(before))
	}
}

// TestSnapshotRebuildAfterThreshold: once a table absorbs snapEvery
// mutations, the next falling-back query rebuilds the snapshot and the
// table returns to lock-free serving.
func TestSnapshotRebuildAfterThreshold(t *testing.T) {
	tab := fillTable(t, 4, 500, 3)
	tab.SetSnapshotThreshold(10)
	window := geom.R(0, 0, 1, 1)

	// First query: no snapshot yet, staleness >= threshold logic treats
	// nil as must-build.
	if _, _, err := tab.Select(Query{Window: &window}); err != nil {
		t.Fatal(err)
	}
	if !allFresh(tab) {
		t.Fatal("first query did not build a snapshot")
	}

	// A few mutations below the threshold: queries serve live, snapshot
	// stays stale.
	for i := 0; i < 5; i++ {
		if err := tab.Insert(Record{ID: uint64(10000 + i), Loc: geom.Pt(0.001+float64(i)*1e-5, 0.001)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := tab.Select(Query{Window: &window}); err != nil {
		t.Fatal(err)
	}
	if allFresh(tab) {
		t.Fatal("snapshot rebuilt below the mutation threshold")
	}

	// Cross the threshold: the next query rebuilds.
	for i := 5; i < 12; i++ {
		if err := tab.Insert(Record{ID: uint64(10000 + i), Loc: geom.Pt(0.001+float64(i)*1e-5, 0.001)}); err != nil {
			t.Fatal(err)
		}
	}
	recs, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 512 {
		t.Fatalf("got %d records, want 512", len(recs))
	}
	if !allFresh(tab) {
		t.Fatal("snapshot not rebuilt after crossing the mutation threshold")
	}
}

// TestSnapshotSelectEquivalence: snapshot-served and live-served
// Selects return identical record sets for random windows and radius
// queries, with and without budgets and filters.
func TestSnapshotSelectEquivalence(t *testing.T) {
	tab := fillTable(t, 8, 4000, 4)
	rng := xrand.New(5)
	for trial := 0; trial < 300; trial++ {
		x, y := rng.Float64(), rng.Float64()
		w, h := rng.Float64()*0.3, rng.Float64()*0.3
		window := geom.R(x-w/2, y-h/2, x+w/2, y+h/2)
		if window.Empty() {
			continue
		}
		// Live-served (snapshot stale or absent after the churn below).
		liveRecs, liveCost, err := tab.Select(Query{Window: &window})
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.Compact(); err != nil {
			t.Fatal(err)
		}
		snapRecs, snapCost, err := tab.Select(Query{Window: &window})
		if err != nil {
			t.Fatal(err)
		}
		li, si := recordIDs(liveRecs), recordIDs(snapRecs)
		if len(li) != len(si) {
			t.Fatalf("window %v: live %d, snapshot %d records", window, len(li), len(si))
		}
		for i := range li {
			if li[i] != si[i] {
				t.Fatalf("window %v: IDs differ at %d", window, i)
			}
		}
		if snapCost.RecordsScanned > liveCost.RecordsScanned {
			t.Fatalf("window %v: snapshot scanned more records (%d) than live (%d)",
				window, snapCost.RecordsScanned, liveCost.RecordsScanned)
		}
		// Radius query equivalence on the snapshot path.
		within := &WithinSpec{At: geom.Pt(x, y), Radius: 0.05 + rng.Float64()*0.1}
		snapR, _, err := tab.Select(Query{Within: within})
		if err != nil {
			t.Fatal(err)
		}
		// Churn one record to force the live path, then compare.
		if err := tab.Insert(Record{ID: uint64(50000 + trial), Loc: geom.Pt(rng.Float64(), rng.Float64())}); err != nil {
			t.Fatal(err)
		}
		tab.Delete(uint64(50000 + trial))
		liveR, _, err := tab.Select(Query{Within: within})
		if err != nil {
			t.Fatal(err)
		}
		lr, sr := recordIDs(liveR), recordIDs(snapR)
		if len(lr) != len(sr) {
			t.Fatalf("radius %v: live %d, snapshot %d", within, len(lr), len(sr))
		}
		for i := range lr {
			if lr[i] != sr[i] {
				t.Fatalf("radius %v: IDs differ at %d", within, i)
			}
		}
	}
}

// TestCountRangeTruncationConsistency: Table.CountRange and a window
// Select with the same budget report the same Truncated flag and the
// same number of matches, on both the live and the snapshot path.
func TestCountRangeTruncationConsistency(t *testing.T) {
	tab := fillTable(t, 2, 3000, 6)
	window := geom.R(0.1, 0.1, 0.9, 0.9)
	for _, budget := range []int{0, 1, 5, 50, 1 << 20} {
		for _, compacted := range []bool{false, true} {
			if compacted {
				if err := tab.Compact(); err != nil {
					t.Fatal(err)
				}
			} else {
				// Force staleness so the live path serves.
				if err := tab.Insert(Record{ID: uint64(70000 + budget), Loc: geom.Pt(xrand.New(uint64(budget+9)).Float64(), 0.99999)}); err != nil {
					t.Fatal(err)
				}
			}
			recs, selCost, err := tab.Select(Query{Window: &window, MaxNodes: budget})
			if err != nil {
				t.Fatal(err)
			}
			n, cntCost, err := tab.CountRange(window, budget)
			if err != nil {
				t.Fatal(err)
			}
			if n != len(recs) {
				t.Fatalf("budget=%d compacted=%v: CountRange %d != Select %d", budget, compacted, n, len(recs))
			}
			if cntCost.Truncated != selCost.Truncated {
				t.Fatalf("budget=%d compacted=%v: Truncated disagrees (count=%v select=%v)",
					budget, compacted, cntCost.Truncated, selCost.Truncated)
			}
			if cntCost.NodesVisited != selCost.NodesVisited {
				t.Fatalf("budget=%d compacted=%v: NodesVisited %d != %d",
					budget, compacted, cntCost.NodesVisited, selCost.NodesVisited)
			}
		}
	}
}

// TestSnapshotConcurrentChurn hammers a table with concurrent writers,
// readers, and compactors under the race detector: every Select must
// return a consistent point-in-time result (no partial batches, no
// torn snapshots).
func TestSnapshotConcurrentChurn(t *testing.T) {
	tab := fillTable(t, 4, 2000, 7)
	tab.SetSnapshotThreshold(16)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writers: churn insert/delete pairs.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(100 + w))
			id := uint64(200000 + w*100000)
			for {
				select {
				case <-stop:
					return
				default:
				}
				p := geom.Pt(rng.Float64(), rng.Float64())
				if err := tab.Insert(Record{ID: id, Loc: p}); err == nil {
					tab.Delete(id)
				}
				id++
			}
		}(w)
	}
	// Compactor: rebuilds snapshots continuously.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = tab.Compact()
			}
		}
	}()
	// Readers: window selects must always see >= the 2000 stable
	// records that are never deleted... the churned IDs may or may not
	// appear; the stable population must always be complete.
	deadline := time.After(500 * time.Millisecond)
	window := geom.R(0, 0, 1, 1)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			return
		default:
		}
		recs, _, err := tab.Select(Query{Window: &window})
		if err != nil {
			t.Error(err)
			close(stop)
			wg.Wait()
			return
		}
		stable := 0
		for _, r := range recs {
			if r.ID < 2000 {
				stable++
			}
		}
		if stable != 2000 {
			t.Errorf("select saw %d of 2000 stable records", stable)
			close(stop)
			wg.Wait()
			return
		}
	}
}

// TestCompactTooDeep: a table whose tree exceeds the freezable depth
// reports the error from Compact and keeps serving from the live tree.
func TestCompactTooDeep(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("deep", 1, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1.0 / (1 << 38)
	if err := tab.Insert(Record{ID: 1, Loc: geom.Pt(0.1, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Record{ID: 2, Loc: geom.Pt(0.1+eps, 0.1)}); err != nil {
		t.Fatal(err)
	}
	if err := tab.Compact(); err == nil {
		t.Skip("tree not deep enough to exercise ErrTooDeep on this geometry")
	}
	window := geom.R(0, 0, 1, 1)
	recs, _, err := tab.Select(Query{Window: &window})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("live fallback after failed freeze returned %d records, want 2", len(recs))
	}
}
