package spatialdb

// Crash recovery: rebuild a durable table's in-memory state from the
// newest sealed runs plus the WAL tail. The invariants this relies on,
// in the order the write paths establish them:
//
//  1. Every applied mutation was WAL-appended first (write-ahead), so
//     the WAL plus the runs it was truncated over cover all acknowledged
//     state.
//  2. A WAL is truncated only after the run sealing it is fully durable,
//     so a torn or missing newest run file implies the WAL still covers
//     its records — discarding it loses nothing.
//  3. A run that validates (footer present, checksums match) is
//     immutable and complete; one that was durably sealed and later
//     fails validation is corruption, reported as ErrCorruptRun rather
//     than silently served as a hole.
//  4. A multi-shard batch is applied only if its opCommit record — one
//     frame in the table-level batch log, written after every per-shard
//     frame — survives; otherwise its frames are dropped on every shard,
//     preserving InsertBatch's all-or-nothing contract across a crash.
//     Frame counting would not work here: a per-shard seal folds one
//     shard's frames into a run and truncates them while sibling shards
//     still hold theirs, so frame presence says nothing about whether
//     the batch was fully logged. The commit does, atomically.
//
// Replay is idempotent over any base: inserts last-win on their
// location and deletes of absent locations are no-ops, so the
// crash-between-seal-and-truncate window (both the run and the WAL
// cover the same records) recovers to the same state.

import (
	"errors"
	"fmt"
	"os"

	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/segment"
)

// recoverFromDisk rebuilds every shard from its run ladder and WAL.
// Called from OpenDurableTable before the table is shared, so no locks
// are needed.
func (t *Table) recoverFromDisk() error {
	committed, ops, err := t.decodeWALs()
	if err != nil {
		return err
	}

	// Phase 2: per shard, merge the durable runs, replay the WAL tail on
	// top, and rebuild the live index.
	d := t.dur
	for si := range t.shards {
		base, entries, err := t.loadRuns(si)
		if err != nil {
			return err
		}
		state := map[geom.Point]Record{}
		for _, e := range entries {
			data, derr := decodePayload(e.Payload)
			if derr != nil {
				return fmt.Errorf("recover shard %d: run entry id %d: %w", si, e.ID, derr)
			}
			loc := geom.Pt(e.X, e.Y)
			state[loc] = Record{ID: e.ID, Loc: loc, Data: data}
		}
		for _, op := range ops[si] {
			switch op.op {
			case opInsert:
				state[op.loc] = Record{ID: op.id, Loc: op.loc, Data: op.data}
			case opDelete:
				delete(state, op.loc)
			case opBatch:
				if committed[op.batch.id] {
					for _, rec := range op.batch.recs {
						state[rec.Loc] = rec
					}
				}
			}
		}
		if err := t.installShardState(si, state); err != nil {
			return fmt.Errorf("recover shard %d: %w", si, err)
		}
		// A cleanly closed shard — checkpoint run with a leaf index, no
		// deltas over it, empty WAL — republishes its frozen snapshot
		// directly from the run, restoring the lock-free read path
		// without an O(n) re-freeze.
		if base != nil && base.Codes != nil && len(ops[si]) == 0 && onlyRun(d.shards[si].runs, base.Meta.Seq) {
			t.republishSnapshot(si, base)
		}
	}
	return nil
}

// decodeWALs is recovery phase 1, shared by the eager and lazy paths:
// read the batch-commit log — the committed set is the batch-atomicity
// verdict — then decode every shard's WAL. Frames of uncommitted
// batches are re-marked failed so a post-recovery flush cannot seal
// them into a run (the in-memory failed set died with the crashed
// process), and the batch-ID counter is re-seeded past the maximum
// seen.
func (t *Table) decodeWALs() (committed map[uint64]bool, ops [][]walOp, err error) {
	d := t.dur
	committed = map[uint64]bool{}
	var maxBatch uint64
	_, err = d.batchLog.Fold(func(payload []byte) error {
		op, err := decodeOp(payload)
		if err != nil {
			return err
		}
		if op.op != opCommit {
			return fmt.Errorf("recover batch log: unexpected op %d", op.op)
		}
		committed[op.batch.id] = true
		if op.batch.id > maxBatch {
			maxBatch = op.batch.id
		}
		return nil
	})
	if err != nil {
		return nil, nil, fmt.Errorf("recover batch log: %w", err)
	}
	ops = make([][]walOp, len(t.shards))
	for si := range t.shards {
		_, err := d.shards[si].log.Fold(func(payload []byte) error {
			op, err := decodeOp(payload)
			if err != nil {
				return err
			}
			if op.op == opBatch {
				if op.batch.id > maxBatch {
					maxBatch = op.batch.id
				}
				if !committed[op.batch.id] {
					d.markFailedBatch(op.batch.id)
				}
			}
			ops[si] = append(ops[si], op)
			return nil
		})
		if err != nil {
			return nil, nil, fmt.Errorf("recover shard %d WAL: %w", si, err)
		}
	}
	d.batchID.Store(maxBatch)
	return committed, ops, nil
}

// onlyRun reports whether seq is the only run in the ladder.
func onlyRun(runs []runFile, seq uint64) bool {
	return len(runs) == 1 && runs[0].seq == seq
}

// loadRuns validates one shard's run files and returns the newest full
// run (nil if none) plus the merged entries of that run and every delta
// sealed after it. A torn newest run — an interrupted flush — is
// deleted and skipped (invariant 2: the WAL still covers it). Any other
// invalid run was durably sealed once, so the open fails with the
// validation error (ErrCorruptRun, or ErrTorn for an impossible torn
// middle run) instead of serving a hole.
func (t *Table) loadRuns(si int) (base *segment.Run, entries []segment.Entry, err error) {
	ds := t.dur.shards[si]
	runs := ds.runs
	if n := len(runs); n > 0 {
		if _, rerr := segment.ReadMeta(runs[n-1].path); errors.Is(rerr, segment.ErrTorn) {
			if err := os.Remove(runs[n-1].path); err != nil {
				return nil, nil, fmt.Errorf("recover shard %d: drop torn run: %w", si, err)
			}
			if err := segment.SyncDir(t.dur.dir); err != nil {
				return nil, nil, err
			}
			runs = runs[:n-1]
			ds.runs = runs
		}
	}
	decoded := make([]*segment.Run, len(runs))
	baseIdx := -1
	for i, rf := range runs {
		r, rerr := segment.Read(rf.path)
		if rerr != nil {
			return nil, nil, fmt.Errorf("recover shard %d: %w", si, rerr)
		}
		if int(r.Meta.Shard) != si || r.Meta.Region != t.shards[si].region {
			return nil, nil, fmt.Errorf("recover shard %d: %w: run %s belongs to another layout (shard %d, region %v)",
				si, ErrCorruptRun, rf.path, r.Meta.Shard, r.Meta.Region)
		}
		ds.runs[i].kind = r.Meta.Kind
		decoded[i] = r
		if r.Meta.Kind == segment.Full {
			baseIdx = i
		}
	}
	// Merge the newest full run with every later delta; older runs are
	// superseded (an interrupted compaction leaves them behind).
	var layers [][]segment.Entry
	start := baseIdx
	if start < 0 {
		start = 0
	}
	for i := start; i < len(decoded); i++ {
		layers = append(layers, decoded[i].Entries)
	}
	if baseIdx >= 0 {
		base = decoded[baseIdx]
	}
	return base, segment.Merge(layers...), nil
}

// installShardState bulk-loads the recovered records into the shard's
// tree and rebuilds the id index and counters.
func (t *Table) installShardState(si int, state map[geom.Point]Record) error {
	s := t.shards[si]
	if len(state) > 0 {
		points := make([]geom.Point, 0, len(state))
		vals := make([]Record, 0, len(state))
		for loc, rec := range state {
			points = append(points, loc)
			vals = append(vals, rec)
		}
		if _, err := s.index.BulkLoad(points, vals); err != nil {
			return err
		}
	}
	s.count.Store(int64(len(state)))
	for _, rec := range state {
		t.ids.stripe(rec.ID).m[rec.ID] = rec.Loc
	}
	return nil
}

// republishSnapshot rebuilds the shard's frozen snapshot from a
// checkpoint run's leaf-index planes and publishes it at the recovered
// epoch. Best-effort: a plane set that fails validation just leaves
// the snapshot unpublished, and the first query rebuilds it from the
// live tree.
func (t *Table) republishSnapshot(si int, base *segment.Run) {
	s := t.shards[si]
	pts := make([]geom.Point, len(base.Entries))
	vals := make([]Record, len(base.Entries))
	for i, e := range base.Entries {
		data, err := decodePayload(e.Payload)
		if err != nil {
			return
		}
		pts[i] = geom.Pt(e.X, e.Y)
		vals[i] = Record{ID: e.ID, Loc: pts[i], Data: data}
	}
	f, err := linearquad.FromParts(s.region, base.Meta.Depth, base.Codes, base.Starts, pts, vals)
	if err != nil {
		return
	}
	s.publishRecovered(f)
}
