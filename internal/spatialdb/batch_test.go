package spatialdb

// Batched-read tests: the table-level batch APIs must answer exactly
// like their scalar counterparts — probe for probe, over every serving
// representation (live tree, frozen snapshot, sealed run stack), under
// chaos, and on a crashed-and-recovered table — and the in-memory
// paths must be allocation-free in the steady state.

import (
	"errors"
	"reflect"
	"testing"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/xrand"
)

// assertBatchMatchesScalar fires `probes` randomized probes through
// each batch API and checks every answer against the scalar path (or
// an independent oracle): GetBatch against Get, CountRangeBatch
// against CountRange, ContainsBatch against a tiny-window Select
// around each probe point. recs supplies the id/location universe;
// roughly a quarter of the probes are guaranteed misses.
func assertBatchMatchesScalar(t *testing.T, label string, tab *Table, recs []Record, seed uint64, probes int) {
	t.Helper()
	rng := xrand.New(seed)
	var sc BatchScratch

	ids := make([]uint64, probes)
	for i := range ids {
		if i%4 == 3 {
			ids[i] = uint64(len(recs)) + rng.Uint64()%1000 // never inserted
		} else {
			ids[i] = recs[rng.Uint64()%uint64(len(recs))].ID
		}
	}
	out := make([]Record, probes)
	found := make([]bool, probes)
	nf := tab.GetBatch(&sc, ids, out, found)
	wantFound := 0
	for i, id := range ids {
		wrec, wok := tab.Get(id)
		if wok {
			wantFound++
		}
		if found[i] != wok {
			t.Fatalf("%s: GetBatch probe %d (id %d): found=%v, scalar Get says %v", label, i, id, found[i], wok)
		}
		if wok && (out[i].ID != wrec.ID || out[i].Loc != wrec.Loc || !reflect.DeepEqual(out[i].Data, wrec.Data)) {
			t.Fatalf("%s: GetBatch probe %d (id %d): %+v, scalar Get returned %+v", label, i, id, out[i], wrec)
		}
		if !wok && (out[i] != Record{}) {
			t.Fatalf("%s: GetBatch probe %d (id %d): miss left residue %+v", label, i, id, out[i])
		}
	}
	if nf != wantFound {
		t.Fatalf("%s: GetBatch returned %d found, scalar loop found %d", label, nf, wantFound)
	}

	pts := make([]geom.Point, probes)
	for i := range pts {
		if i%3 == 0 {
			pts[i] = geom.Pt(rng.Float64(), rng.Float64()) // almost surely empty
		} else {
			pts[i] = recs[rng.Uint64()%uint64(len(recs))].Loc
		}
	}
	present := make([]bool, probes)
	np, err := tab.ContainsBatch(&sc, pts, present)
	if err != nil {
		t.Fatalf("%s: ContainsBatch: %v", label, err)
	}
	wantPresent := 0
	const eps = 1e-9
	for i, p := range pts {
		w := geom.R(p.X-eps, p.Y-eps, p.X+eps, p.Y+eps)
		got, _, serr := tab.Select(Query{Window: &w})
		if serr != nil {
			t.Fatalf("%s: oracle select: %v", label, serr)
		}
		want := false
		for _, r := range got {
			if r.Loc == p {
				want = true
			}
		}
		if want {
			wantPresent++
		}
		if present[i] != want {
			t.Fatalf("%s: ContainsBatch probe %d at %v: %v, window oracle says %v", label, i, p, present[i], want)
		}
	}
	if np != wantPresent {
		t.Fatalf("%s: ContainsBatch returned %d present, oracle found %d", label, np, wantPresent)
	}

	nw := 64
	windows := make([]geom.Rect, nw)
	for i := range windows {
		x, y := rng.Float64(), rng.Float64()
		windows[i] = geom.R(x, y, x+0.01+rng.Float64()*0.4, y+0.01+rng.Float64()*0.4)
	}
	counts := make([]int, nw)
	if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
		t.Fatalf("%s: CountRangeBatch: %v", label, err)
	}
	for i, w := range windows {
		want, _, cerr := tab.CountRange(w, 0)
		if cerr != nil {
			t.Fatalf("%s: scalar CountRange: %v", label, cerr)
		}
		if counts[i] != want {
			t.Fatalf("%s: CountRangeBatch window %d (%v): %d, scalar CountRange says %d", label, i, w, counts[i], want)
		}
	}
}

// TestBatchMatchesScalarInMemory runs the randomized equivalence
// harness over a sharded in-memory table in each serving state: live
// trees only, compacted snapshots, and snapshots knocked out by the
// SnapshotRebuild fault so every batch falls through to the locked
// path.
func TestBatchMatchesScalarInMemory(t *testing.T) {
	inj := faultinject.New(11)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTableWith("batch", TableOptions{Capacity: 8, ShardBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := uniqueRecords(4000, 515151)
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	for id := uint64(0); id < 4000; id += 5 {
		if !tab.Delete(id) {
			t.Fatalf("delete %d failed", id)
		}
	}
	assertBatchMatchesScalar(t, "live-tree", tab, recs, 616161, 1000)

	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	assertBatchMatchesScalar(t, "snapshots", tab, recs, 717171, 1000)

	// Dirty every shard and make every rebuild fail: the compaction
	// surfaces the injected fault, the shards lose their snapshots, and
	// the batch paths must fall back to the live trees under the read
	// locks — still agreeing with the scalar paths, which degrade
	// identically.
	for id := uint64(1); id < 4000; id += 101 {
		tab.Delete(id)
	}
	inj.Enable(faultinject.SnapshotRebuild, 1)
	if err := tab.Compact(); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Compact under SnapshotRebuild fault = %v, want injected error", err)
	}
	assertBatchMatchesScalar(t, "rebuild-fault", tab, recs, 818181, 1000)
	if inj.Fired(faultinject.SnapshotRebuild) == 0 {
		t.Error("SnapshotRebuild never fired: the fallback schedule did not execute")
	}
}

// TestDurableBatchMatchesScalarRecovered is the lazy-mode acceptance
// gate: a lazy table whose state spans full run + delta run + WAL tail
// is crashed, recovered, and then poisoned (every uncached block read
// hands back a damaged buffer) and mid-seal chaos is armed — and 1000
// randomized batch probes must still agree with the scalar paths,
// while the run-prefix filters demonstrably prune stack entries.
func TestDurableBatchMatchesScalarRecovered(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	inj := faultinject.New(3)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, control := buildLazyLadder(t, db, dir, opts, DurableOptions{CacheBytes: 16 << 10})
	recs := uniqueRecords(1100, 7331) // the ladder's record universe
	_ = control

	// Crash and recover: the batch paths must serve the rebuilt stack.
	tab.Kill()
	if err := db.DropTable("lazy"); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenDurableTable("lazy", TableOptions{}, DurableOptions{Dir: dir, Lazy: true, CacheBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if !reopened.lazyMode() {
		t.Fatal("reopened table is not in lazy mode")
	}
	assertBatchMatchesScalar(t, "lazy-recovered", reopened, recs, 929292, 1000)

	// Chaos pass: poison every uncached block read (the checksum retry
	// must heal it) and seal the tail under one mid-flight query.
	reopened.DropBlockCache()
	inj.Enable(faultinject.SegmentBlockPoison, 1)
	inj.EnableN(faultinject.DiskCursorSeal, 1, 1)
	assertBatchMatchesScalar(t, "lazy-chaos", reopened, recs, 939393, 1000)
	if inj.Fired(faultinject.SegmentBlockPoison) == 0 {
		t.Error("SegmentBlockPoison never fired")
	}

	// The acceptance criterion: the run filters must actually prune.
	// Explain consults the real per-run filters over each window's
	// Z-interval; across a spread of small windows some stack entries
	// must be excluded, and the lifetime Stats counters must agree.
	rng := xrand.New(41)
	prunedTotal, consultedTotal := 0, 0
	for i := 0; i < 100; i++ {
		x, y := rng.Float64(), rng.Float64()
		w := geom.R(x, y, x+0.01, y+0.01)
		e, err := reopened.Explain(Query{Window: &w})
		if err != nil {
			t.Fatal(err)
		}
		if !e.FromDisk {
			t.Fatal("lazy Explain did not set FromDisk")
		}
		prunedTotal += e.RunsPruned
		consultedTotal += e.RunsConsulted
	}
	if prunedTotal == 0 {
		t.Fatalf("Explain reported 0 pruned runs across 100 windows (%d consulted): filters never exclude", consultedTotal)
	}
	st := reopened.Stats()
	if st.RunsPruned == 0 {
		t.Error("Stats.RunsPruned is 0 after a pruning workload")
	}
	if st.RunsConsulted == 0 {
		t.Error("Stats.RunsConsulted is 0 after serving from the stack")
	}

	// ExplainBatch aggregates the same consult over a window batch.
	windows := []geom.Rect{geom.R(0.1, 0.1, 0.11, 0.11), geom.R(0.7, 0.7, 0.72, 0.72)}
	be, err := reopened.ExplainBatch(windows)
	if err != nil {
		t.Fatal(err)
	}
	if !be.Batched || !be.FromDisk {
		t.Fatalf("ExplainBatch estimate not marked batched+disk: %+v", be)
	}
	if be.RunsConsulted+be.RunsPruned == 0 {
		t.Fatal("ExplainBatch consulted no run filters on a lazy table")
	}
}

// TestBatchZeroAlloc pins the in-memory batch entry points at zero
// allocations per call in the steady state: once the scratch has grown
// to the batch shape, GetBatch, ContainsBatch, and CountRangeBatch
// allocate nothing above their documented growth sites.
func TestBatchZeroAlloc(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTableWith("pin", TableOptions{Capacity: 8, ShardBits: 2})
	if err != nil {
		t.Fatal(err)
	}
	recs := uniqueRecords(4096, 272727)
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}

	rng := xrand.New(88)
	const n = 256
	ids := make([]uint64, n)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			ids[i] = 1 << 40 // miss
			pts[i] = geom.Pt(rng.Float64(), rng.Float64())
		} else {
			r := recs[rng.Uint64()%uint64(len(recs))]
			ids[i] = r.ID
			pts[i] = r.Loc
		}
	}
	out := make([]Record, n)
	found := make([]bool, n)
	windows := make([]geom.Rect, 16)
	for i := range windows {
		x, y := rng.Float64()*0.8, rng.Float64()*0.8
		windows[i] = geom.R(x, y, x+0.1, y+0.1)
	}
	counts := make([]int, len(windows))

	var sc BatchScratch
	// Warm the scratch so the pinned runs measure steady state.
	tab.GetBatch(&sc, ids, out, found)
	if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
		t.Fatal(err)
	}

	sink := 0
	cases := []struct {
		name string
		op   func()
	}{
		{"GetBatch", func() { sink += tab.GetBatch(&sc, ids, out, found) }},
		{"ContainsBatch", func() {
			np, err := tab.ContainsBatch(&sc, pts, found)
			if err != nil {
				t.Fatal(err)
			}
			sink += np
		}},
		{"CountRangeBatch", func() {
			if err := tab.CountRangeBatch(&sc, windows, counts); err != nil {
				t.Fatal(err)
			}
			sink += counts[0]
		}},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(100, c.op); allocs != 0 {
			t.Errorf("%s: %.1f allocs/op, want 0", c.name, allocs)
		}
	}
	_ = sink
}

// TestBatchArgumentChecks pins the contract edges: mismatched slice
// lengths panic, invalid inputs error before any probe, and empty
// batches are no-ops.
func TestBatchArgumentChecks(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTableWith("edges", TableOptions{Capacity: 4, ShardBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sc BatchScratch
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s with mismatched lengths did not panic", name)
			}
		}()
		f()
	}
	mustPanic("GetBatch", func() { tab.GetBatch(&sc, make([]uint64, 3), make([]Record, 2), make([]bool, 3)) })
	mustPanic("ContainsBatch", func() { tab.ContainsBatch(&sc, make([]geom.Point, 2), make([]bool, 3)) })
	mustPanic("CountRangeBatch", func() { tab.CountRangeBatch(&sc, make([]geom.Rect, 2), make([]int, 1)) })

	if _, err := tab.ContainsBatch(&sc, []geom.Point{geom.Pt(0.5, 0.5), {X: 0.1, Y: geomNaN()}}, make([]bool, 2)); err == nil {
		t.Fatal("ContainsBatch accepted a NaN point")
	}
	if err := tab.CountRangeBatch(&sc, []geom.Rect{geom.R(0.5, 0.5, 0.4, 0.6)}, make([]int, 1)); err == nil {
		t.Fatal("CountRangeBatch accepted an inverted window")
	}
	if n := tab.GetBatch(&sc, nil, nil, nil); n != 0 {
		t.Fatalf("empty GetBatch returned %d", n)
	}
	if err := tab.CountRangeBatch(&sc, nil, nil); err != nil {
		t.Fatalf("empty CountRangeBatch errored: %v", err)
	}
}

func geomNaN() float64 {
	f := 0.0
	return f / f
}
