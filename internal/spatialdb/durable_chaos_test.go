package spatialdb

// Crash-recovery chaos: every registered durability fault point is
// fired mid-workload, the table is killed at that exact moment, and the
// recovered table must be bit-identical — record sets, payloads, and
// 1000 randomized queries — to a never-crashed in-memory control that
// saw exactly the acknowledged mutations. The invariant under test is
// the durable contract: an acknowledged op survives any crash, an
// unacknowledged op vanishes entirely.

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"popana/internal/dist"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/wal"
	"popana/internal/xrand"
)

// TestDurableCrashRecoveryEveryFaultPoint arms each durability fault
// point at several positions in a seeded workload, crashes on impact,
// and proves recovery against a control.
func TestDurableCrashRecoveryEveryFaultPoint(t *testing.T) {
	for _, p := range faultinject.DurabilityPoints() {
		for _, armAfter := range []int{0, 13, 37} {
			p, armAfter := p, armAfter
			t.Run(fmt.Sprintf("%s/arm%d", p, armAfter), func(t *testing.T) {
				runCrashRecoveryScript(t, p, armAfter)
			})
		}
	}
}

// runCrashRecoveryScript drives a seeded op mix — inserts, deletes,
// multi-shard batches, periodic Flush and CompactDisk — against a
// durable table with fault point p armed (single shot, certain) from op
// armAfter on. Every op that succeeds is mirrored onto an in-memory
// control. When the fault fires, the table is killed, reopened, and
// compared to the control.
func runCrashRecoveryScript(t *testing.T, p faultinject.Point, armAfter int) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	inj := faultinject.New(uint64(armAfter)*997 + 1)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateDurableTable("chaos", opts, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	control := controlFor(t, opts, nil)

	rng := xrand.New(uint64(armAfter)*31 + 7)
	src := dist.NewUniform(geom.UnitSquare, xrand.New(uint64(armAfter)*13+5))
	seen := map[geom.Point]bool{}
	nextLoc := func() geom.Point {
		for {
			if p := src.Next(); !seen[p] {
				seen[p] = true
				return p
			}
		}
	}
	var nextID uint64
	var live []uint64

	const maxOps = 220
	for i := 0; i < maxOps && inj.Fired(p) == 0; i++ {
		if i == armAfter {
			inj.EnableN(p, 1, 1)
		}
		switch r := rng.Intn(100); {
		case r < 60: // single insert
			nextID++
			rec := Record{ID: nextID, Loc: nextLoc(), Data: durablePayload(int(nextID))}
			if err := tab.Insert(rec); err == nil {
				if err := control.Insert(rec); err != nil {
					t.Fatalf("op %d: control diverged on insert: %v", i, err)
				}
				live = append(live, rec.ID)
			}
		case r < 80 && len(live) > 0: // delete a live record
			id := live[rng.Intn(len(live))]
			if deleted, err := tab.DeleteChecked(id); err == nil && deleted {
				if !control.Delete(id) {
					t.Fatalf("op %d: control diverged on delete %d", i, id)
				}
			}
		default: // multi-shard batch
			batch := make([]Record, 6)
			for j := range batch {
				nextID++
				batch[j] = Record{ID: nextID, Loc: nextLoc(), Data: durablePayload(int(nextID))}
			}
			if err := tab.InsertBatch(batch); err == nil {
				if err := control.InsertBatch(batch); err != nil {
					t.Fatalf("op %d: control diverged on batch: %v", i, err)
				}
				for _, rec := range batch {
					live = append(live, rec.ID)
				}
			}
		}
		// Periodic maintenance gives the segment-layer faults a place to
		// fire; errors are the injected crashes themselves, so they are
		// checked via Fired, not the return.
		if i%25 == 24 {
			_ = tab.Flush()
		}
		if i%90 == 89 {
			_ = tab.CompactDisk()
		}
	}
	if inj.Fired(p) == 0 {
		t.Fatalf("fault %s armed at op %d never fired in %d ops", p, armAfter, maxOps)
	}

	tab.Kill()
	if err := db.DropTable("chaos"); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenDurableTable("chaos", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after %s: %v", p, err)
	}
	label := fmt.Sprintf("%s/arm%d", p, armAfter)
	assertSameRecords(t, label, reopened, control)
	assertEquivalentQueries(t, label, reopened, control, uint64(armAfter)*101+9, 1000)

	// The recovered table must accept new mutations and survive a clean
	// close — the crash left no lingering poison.
	rec := Record{ID: 1 << 50, Loc: nextLoc(), Data: "post-recovery"}
	if err := reopened.Insert(rec); err != nil {
		t.Fatalf("insert after recovery: %v", err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatalf("close after recovery: %v", err)
	}
}

// TestDurableConcurrentKillRecover kills a durable table under
// concurrent mutators — background flush worker running — three times
// in a row, recovering between rounds. Each worker owns a disjoint ID
// space and mirrors exactly the ops the table acknowledged; after every
// recovery the table must hold precisely the union of the mirrors:
// acknowledged ops survive, unacknowledged ops vanish.
func TestDurableConcurrentKillRecover(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	dopts := DurableOptions{Dir: dir, AutoFlush: 32, CompactAfter: 4}
	db := NewDB()
	tab, err := db.CreateDurableTable("cc", opts, dopts)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 4
	acked := map[uint64]Record{} // merged across rounds; owned by the main goroutine

	for round := 0; round < 3; round++ {
		mirrors := make([]map[uint64]Record, workers)
		var wg sync.WaitGroup
		tb := tab // pin this round's table before it is reassigned
		for w := 0; w < workers; w++ {
			w := w
			mirrors[w] = map[uint64]Record{}
			wg.Add(1)
			go func() {
				defer wg.Done()
				mutateUntilKilled(tb, mirrors[w], uint64(round), uint64(w))
			}()
		}
		time.Sleep(30 * time.Millisecond)
		tab.Kill()
		wg.Wait()
		for _, m := range mirrors {
			for id, rec := range m {
				if rec.ID == 0 { // tombstone marker: acknowledged delete
					delete(acked, id)
				} else {
					acked[id] = rec
				}
			}
		}
		if err := db.DropTable("cc"); err != nil {
			t.Fatal(err)
		}
		tab, err = db.OpenDurableTable("cc", TableOptions{}, dopts)
		if err != nil {
			t.Fatalf("round %d: recovery: %v", round, err)
		}
		if got, want := tab.Len(), len(acked); got != want {
			t.Fatalf("round %d: recovered %d records, %d acknowledged", round, got, want)
		}
		for id, want := range acked {
			got, ok := tab.Get(id)
			if !ok {
				t.Fatalf("round %d: acknowledged record %d lost", round, id)
			}
			if got.Loc != want.Loc || !payloadEqual(got.Data, want.Data) {
				t.Fatalf("round %d: record %d recovered as %+v, acknowledged %+v", round, id, got, want)
			}
		}
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
}

// mutateUntilKilled runs inserts, batches, and deletes in worker w's
// private ID space until the table reports itself closed, recording
// every acknowledged op in mirror (deletes as Record{ID: 0}
// tombstones). The mirror is single-owner during the run; the main
// goroutine reads it only after wg.Wait.
func mutateUntilKilled(tab *Table, mirror map[uint64]Record, round, w uint64) {
	src := dist.NewUniform(geom.UnitSquare, xrand.New(round*1031+w*257+11))
	rng := xrand.New(round*877 + w*419 + 3)
	base := (round*16 + w + 1) << 40 // disjoint per (round, worker)
	var n uint64
	var ownIDs []uint64
	for {
		var err error
		switch r := rng.Intn(10); {
		case r < 6:
			n++
			rec := Record{ID: base + n, Loc: src.Next(), Data: int64(n)}
			if err = tab.Insert(rec); err == nil {
				mirror[rec.ID] = rec
				ownIDs = append(ownIDs, rec.ID)
			}
		case r < 8 && len(ownIDs) > 0:
			id := ownIDs[rng.Intn(len(ownIDs))]
			var deleted bool
			if deleted, err = tab.DeleteChecked(id); err == nil && deleted {
				mirror[id] = Record{} // tombstone
			}
		default:
			batch := make([]Record, 4)
			for j := range batch {
				n++
				batch[j] = Record{ID: base + n, Loc: src.Next(), Data: int64(n)}
			}
			if err = tab.InsertBatch(batch); err == nil {
				for _, rec := range batch {
					mirror[rec.ID] = rec
					ownIDs = append(ownIDs, rec.ID)
				}
			}
		}
		if errors.Is(err, ErrTableClosed) || errors.Is(err, wal.ErrClosed) || errors.Is(err, wal.ErrPoisoned) {
			return
		}
		// Any other error (occupied location from a coordinate collision,
		// say) is an unacknowledged op: skip the mirror and keep going.
	}
}
