package spatialdb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/xrand"
)

// TestChaosConcurrentTableUnderFaults hammers one table from many
// goroutines — inserts interleaved with window selects, EXPLAIN, stats,
// and point lookups — while the injector fails a fifth of the inserts
// and sprinkles latency on both paths. Invariants checked afterwards:
// the record count equals the number of successful inserts, every
// successful insert is retrievable (no lost writes), every injected
// failure left no trace (no phantom writes), and no query or EXPLAIN
// ever errored or panicked. Run under -race this also certifies the
// locking.
func TestChaosConcurrentTableUnderFaults(t *testing.T) {
	const (
		workers   = 10
		perWorker = 250
	)
	inj := faultinject.New(99)
	inj.Enable(faultinject.InsertFault, 0.2)
	inj.EnableLatency(faultinject.InsertLatency, 0.02, 100*time.Microsecond)
	inj.EnableLatency(faultinject.QueryLatency, 0.02, 100*time.Microsecond)

	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTable("chaos", 4, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	inserted := make([][]Record, workers)
	failed := make([][]Record, workers)
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w)*7919 + 1)
			for i := 0; i < perWorker; i++ {
				rec := Record{
					ID:   uint64(w*perWorker + i),
					Loc:  geom.Pt(rng.Float64(), rng.Float64()),
					Data: w,
				}
				switch err := tab.Insert(rec); {
				case err == nil:
					inserted[w] = append(inserted[w], rec)
				case errors.Is(err, faultinject.ErrInjected):
					failed[w] = append(failed[w], rec)
				default:
					errCh <- fmt.Errorf("worker %d: unexpected insert error: %w", w, err)
				}
				if i%5 == 0 {
					cx, cy := rng.Float64(), rng.Float64()
					win := geom.R(cx*0.5, cy*0.5, cx*0.5+0.3, cy*0.5+0.3)
					if _, _, err := tab.Select(Query{Window: &win, MaxNodes: 64}); err != nil {
						errCh <- fmt.Errorf("worker %d: select: %w", w, err)
					}
					if _, err := tab.Explain(Query{Window: &win}); err != nil {
						errCh <- fmt.Errorf("worker %d: explain: %w", w, err)
					}
				}
				if i%11 == 0 {
					tab.Stats()
					tab.Get(uint64(rng.Intn(workers * perWorker)))
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	total := 0
	for _, recs := range inserted {
		total += len(recs)
	}
	if got := tab.Len(); got != total {
		t.Fatalf("Len = %d, successful inserts = %d", got, total)
	}
	for w, recs := range inserted {
		for _, rec := range recs {
			got, ok := tab.Get(rec.ID)
			if !ok || got.Loc != rec.Loc {
				t.Fatalf("worker %d: lost insert %d (got %+v, %v)", w, rec.ID, got, ok)
			}
		}
	}
	for w, recs := range failed {
		for _, rec := range recs {
			if _, ok := tab.Get(rec.ID); ok {
				t.Fatalf("worker %d: injected failure %d left a phantom record", w, rec.ID)
			}
		}
	}
	// The chaos must actually have happened for the run to mean anything.
	if inj.Fired(faultinject.InsertFault) == 0 {
		t.Error("no insert faults fired")
	}
	// The full table is still consistent under a clean scan.
	w := geom.UnitSquare
	out, cost, err := tab.Select(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if cost.Truncated || len(out) != total {
		t.Fatalf("final scan: %d records (want %d), cost %+v", len(out), total, cost)
	}
}

// TestChaosInsertDeleteChurn mixes concurrent inserts and deletes on
// disjoint ID ranges and checks the final count and membership exactly.
func TestChaosInsertDeleteChurn(t *testing.T) {
	const (
		workers   = 8
		perWorker = 200
	)
	inj := faultinject.New(5)
	inj.Enable(faultinject.InsertFault, 0.1)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTable("churn", 2, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	kept := make([]map[uint64]geom.Point, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 101)
			kept[w] = map[uint64]geom.Point{}
			for i := 0; i < perWorker; i++ {
				id := uint64(w*perWorker + i)
				rec := Record{ID: id, Loc: geom.Pt(rng.Float64(), rng.Float64())}
				if err := tab.Insert(rec); err != nil {
					continue // injected; must leave no trace
				}
				kept[w][id] = rec.Loc
				// Delete every third successful insert again.
				if len(kept[w])%3 == 0 {
					if !tab.Delete(id) {
						t.Errorf("worker %d: delete of fresh insert %d failed", w, id)
					}
					delete(kept[w], id)
				}
			}
		}(w)
	}
	wg.Wait()
	want := 0
	for _, m := range kept {
		want += len(m)
	}
	if got := tab.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	for w, m := range kept {
		for id, loc := range m {
			got, ok := tab.Get(id)
			if !ok || got.Loc != loc {
				t.Fatalf("worker %d: record %d lost", w, id)
			}
		}
	}
}

// TestConcurrentDDLAndTraffic exercises the catalog lock: goroutines
// create, use, list, and drop their own tables simultaneously.
func TestConcurrentDDLAndTraffic(t *testing.T) {
	const workers = 8
	db := NewDB()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(w) + 1)
			for round := 0; round < 5; round++ {
				name := fmt.Sprintf("t%d-%d", w, round)
				tab, err := db.CreateTable(name, 1+w%4, geom.UnitSquare)
				if err != nil {
					t.Errorf("create %s: %v", name, err)
					return
				}
				for i := 0; i < 50; i++ {
					rec := Record{ID: uint64(i), Loc: geom.Pt(rng.Float64(), rng.Float64())}
					if err := tab.Insert(rec); err != nil {
						t.Errorf("insert into %s: %v", name, err)
					}
				}
				if got, err := db.Table(name); err != nil || got != tab {
					t.Errorf("lookup %s: %v", name, err)
				}
				db.Tables()
				if err := db.DropTable(name); err != nil {
					t.Errorf("drop %s: %v", name, err)
				}
			}
		}(w)
	}
	wg.Wait()
	if names := db.Tables(); len(names) != 0 {
		t.Fatalf("tables left behind: %v", names)
	}
}
