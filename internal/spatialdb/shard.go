package spatialdb

import (
	"sync"
	"sync/atomic"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
)

// snapshot is one atomically-published frozen view of a shard's index.
// frozen == nil records a freeze attempt that failed (tree too deep, or
// an injected rebuild fault) at this epoch, so the shard does not retry
// until more mutations arrive.
type snapshot struct {
	frozen *linearquad.Frozen[Record]
	epoch  uint64
}

// shard is one spatial partition of a table: the records whose level-k
// cell of the table region has this shard's locational code. Each shard
// owns its own quadtree, mutex, mutation counter, and epoch-stamped
// frozen snapshot, so writes to one region of space never contend with
// writes — or snapshot rebuilds — in another.
type shard struct {
	// region is this shard's level-k cell; immutable.
	region geom.Rect
	inj    *faultinject.Injector

	// mu guards index. The single table-wide lock order is: shard
	// mutexes in ascending shard index, then id stripes in ascending
	// stripe index; any function that acquires more than one shard
	// mutex must be one of the audited ascending-order helpers named
	// by the directive.
	//popvet:ordered lockShards rlockShards
	mu    sync.RWMutex
	index *quadtree.Tree[Record]

	// coder Morton-encodes points of this shard's region at the deepest
	// grid; shared by the durable merge key and the dirty-cell map so
	// the two never disagree. Immutable after construction.
	coder linearquad.CellCoder
	// dirty marks the level-dirtyLevel cells mutated since the last
	// published snapshot, letting rebuilds splice unchanged leaf runs
	// from the previous frozen copy instead of rewalking the whole
	// tree. Marked under the write lock (every index mutation holds
	// it); read and reset only under rebuildMu.
	dirty *linearquad.Dirty
	// rebuildMu serializes snapshot builds that bypass the rebuilding
	// CAS (compact, checkpoint): FreezeDelta reads dirty and the
	// previous snapshot, and a concurrent Reset under another build
	// would race with it.
	rebuildMu sync.Mutex

	// tail is the lazy-mode write buffer: the shard's WAL tail folded to
	// its net effect per location (an insert or a tombstone), guarded by
	// mu like index. Flush seals it into a delta run and clears it. Nil
	// in non-lazy tables, where index holds the records instead.
	tail map[geom.Point]tailRec

	// count is the record count, maintained under mu but readable
	// lock-free, so Len never queues behind a writer.
	count atomic.Int64
	// epoch counts this shard's mutations (each batched record counts
	// once). Bumped under the write lock before the index changes, so a
	// reader that observes a snapshot matching the current epoch is
	// guaranteed the snapshot reflects every completed write.
	epoch atomic.Uint64
	// snap is the latest frozen snapshot; nil until the first build.
	// The publish-after-build discipline the lock-free read path relies
	// on lives entirely in the three accessors below; popvet's
	// lockdiscipline analyzer rejects any other Load or Store.
	//popvet:accessors loadFresh rebuildLocked maybeRebuildLocked publishRecovered frozenLocked
	snap atomic.Pointer[snapshot]
	// rebuilding serializes snapshot builds so a thundering herd of
	// stale readers freezes the shard once, not once per reader.
	rebuilding atomic.Bool
}

// loadFresh returns the frozen snapshot and its epoch stamp when the
// snapshot exactly matches the shard's current mutation epoch, (nil, 0)
// otherwise. Lock-free: two atomic loads. The returned epoch lets the
// cross-shard seqlock path revalidate that no write landed while it
// scanned.
//
//popvet:noalloc
func (s *shard) loadFresh() (*linearquad.Frozen[Record], uint64) {
	sn := s.snap.Load()
	if sn != nil && sn.frozen != nil && sn.epoch == s.epoch.Load() {
		return sn.frozen, sn.epoch
	}
	return nil, 0
}

// dirtyLevel is the grid level of each shard's dirty bitmap: 4096
// cells (512 bytes) per shard, roughly leaf granularity for a
// 64k-point shard, so a localized burst of churn dirties a handful of
// cells and the rebuild splices everything else from the previous
// snapshot.
const dirtyLevel = 6

// markDirty records that p's dirty-grid cell mutated. Must be called
// under the shard write lock, alongside the index mutation itself.
func (s *shard) markDirty(p geom.Point) {
	s.dirty.Mark(s.coder.Code(p) >> uint(2*(linearquad.MaxDepth-dirtyLevel)))
}

// rebuildLocked freezes the shard's index and publishes the snapshot.
// The caller must hold s.mu (read or write); under either the epoch is
// stable, so the published snapshot is exact for its stamp. The build
// is incremental: leaf runs of subtrees with no dirty-cell marks are
// spliced from the previous snapshot, and the dirty bitmap is reset
// only when the new snapshot publishes. A failure — a tree too deep to
// Morton-encode, or an injected SnapshotRebuild fault — is published
// as an empty marker so queries fall back to the live tree without
// retrying the freeze until the shard changes again.
func (s *shard) rebuildLocked() (*linearquad.Frozen[Record], error) {
	if err := s.inj.Err(faultinject.SnapshotRebuild); err != nil {
		s.snap.Store(&snapshot{frozen: nil, epoch: s.epoch.Load()})
		return nil, err
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	var prev *linearquad.Frozen[Record]
	if sn := s.snap.Load(); sn != nil {
		prev = sn.frozen
	}
	f, err := linearquad.FreezeDelta(s.index, prev, s.dirty)
	if err == nil {
		s.dirty.Reset()
	}
	s.snap.Store(&snapshot{frozen: f, epoch: s.epoch.Load()})
	return f, err
}

// frozenLocked returns a frozen view of the index for a checkpoint:
// the fresh published snapshot when there is one, an incremental
// (unpublished) freeze otherwise. Unlike rebuildLocked it neither
// fires the SnapshotRebuild fault point nor consumes the dirty marks —
// a checkpoint is an observer, not the snapshot publisher. The caller
// must hold at least the read lock.
func (s *shard) frozenLocked() (*linearquad.Frozen[Record], error) {
	if f, _ := s.loadFresh(); f != nil {
		return f, nil
	}
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	var prev *linearquad.Frozen[Record]
	if sn := s.snap.Load(); sn != nil {
		prev = sn.frozen
	}
	return linearquad.FreezeDelta(s.index, prev, s.dirty)
}

// maybeRebuildLocked rebuilds the snapshot if it is missing or stale by
// at least every mutations, returning a frozen view that matches the
// live index exactly (nil when no rebuild happened or the shard cannot
// be frozen). The caller must hold at least the read lock.
func (s *shard) maybeRebuildLocked(every uint64) *linearquad.Frozen[Record] {
	sn := s.snap.Load()
	e := s.epoch.Load()
	if sn != nil && e-sn.epoch < every {
		return nil
	}
	if !s.rebuilding.CompareAndSwap(false, true) {
		return nil // another reader is already freezing this state
	}
	defer s.rebuilding.Store(false)
	f, _ := s.rebuildLocked()
	return f
}

// rangerLocked returns the representation queries should scan: the
// fresh frozen snapshot if there is one (possibly rebuilt just now
// because the shard crossed the staleness threshold), the live tree
// otherwise. The caller must hold at least the read lock, under which
// either representation is exact.
func (s *shard) rangerLocked(every uint64) ranger {
	if f, _ := s.loadFresh(); f != nil {
		return f
	}
	if f := s.maybeRebuildLocked(every); f != nil {
		return f
	}
	return s.index
}

// publishRecovered publishes a snapshot reconstructed from a durable
// checkpoint run at the shard's current (recovered) epoch. Called only
// from recovery, before the table is shared, so the fully-built frozen
// copy is published before any reader can load it — the same
// publish-after-build discipline rebuildLocked enforces.
func (s *shard) publishRecovered(f *linearquad.Frozen[Record]) {
	s.dirty.Reset()
	s.snap.Store(&snapshot{frozen: f, epoch: s.epoch.Load()})
}

// compact rebuilds this shard's snapshot immediately under its read
// lock: concurrent queries proceed, writers to this shard wait, and
// other shards are untouched.
func (s *shard) compact() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err := s.rebuildLocked()
	return err
}

// statsPart returns this shard's contribution to Table.Stats — record
// count, leaf-block count, and local tree height — from the fresh
// snapshot when there is one (lock-free) and from a Census of the live
// tree under the read lock otherwise.
func (s *shard) statsPart() (records, blocks, height int) {
	if f, _ := s.loadFresh(); f != nil {
		return f.Len(), f.Leaves(), f.Depth()
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := s.index.Census()
	return s.index.Len(), c.Leaves, c.Height
}

// lockShards write-locks shards in slice order. Callers must pass
// shards in ascending shard-index order: with every multi-shard
// acquisition ascending (and id stripes always taken after shards),
// two batches whose shard sets overlap cannot deadlock.
func lockShards(ss []*shard) {
	for _, s := range ss {
		s.mu.Lock()
	}
}

func unlockShards(ss []*shard) {
	for i := len(ss) - 1; i >= 0; i-- {
		ss[i].mu.Unlock()
	}
}

// rlockShards read-locks shards in slice order (ascending shard index,
// see lockShards). Holding every target shard's read lock for the whole
// scan is what makes a multi-shard query a consistent cut: an
// InsertBatch holds all its shard write locks until every sub-batch is
// applied, so a reader can never observe half a batch.
//
//popvet:noalloc
func rlockShards(ss []*shard) {
	for _, s := range ss {
		s.mu.RLock()
	}
}

//popvet:noalloc
func runlockShards(ss []*shard) {
	for i := len(ss) - 1; i >= 0; i-- {
		ss[i].mu.RUnlock()
	}
}

// idStripes is the number of stripes the id→location map is split
// into. Sequential IDs round-robin across stripes, so id-map contention
// stays negligible next to the spatial work.
const idStripes = 16

// idStripe is one lock-striped slice of the id→location map.
type idStripe struct {
	// mu guards m. Taken after any shard mutex, never before; the only
	// function allowed to take more than one stripe is the ascending
	// lockStripes helper.
	//popvet:ordered lockStripes
	mu sync.RWMutex
	m  map[uint64]geom.Point
}

// idIndex maps record ID to location, striped so concurrent inserts of
// unrelated records rarely share a lock.
type idIndex struct {
	stripes [idStripes]idStripe
}

func newIDIndex() *idIndex {
	ix := &idIndex{}
	for i := range ix.stripes {
		ix.stripes[i].m = map[uint64]geom.Point{}
	}
	return ix
}

// stripe returns the stripe owning id.
func (ix *idIndex) stripe(id uint64) *idStripe {
	return &ix.stripes[id%idStripes]
}

// lookup returns id's location under the stripe read lock. Callers must
// not hold the returned location authoritative across other lock
// acquisitions: Delete re-verifies it under the shard lock.
func (ix *idIndex) lookup(id uint64) (geom.Point, bool) {
	st := ix.stripe(id)
	st.mu.RLock()
	defer st.mu.RUnlock()
	p, ok := st.m[id]
	return p, ok
}

// lockStripes write-locks the stripes selected by mask in ascending
// index order; see lockShards for the lock-order rule.
func (ix *idIndex) lockStripes(mask uint32) {
	for i := 0; i < idStripes; i++ {
		if mask&(1<<i) != 0 {
			ix.stripes[i].mu.Lock()
		}
	}
}

func (ix *idIndex) unlockStripes(mask uint32) {
	for i := idStripes - 1; i >= 0; i-- {
		if mask&(1<<i) != 0 {
			ix.stripes[i].mu.Unlock()
		}
	}
}
