package spatialdb

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/xrand"
)

// durablePayload cycles through every payload kind the durable codec
// supports, so round-trip tests cover all of them.
func durablePayload(i int) any {
	switch i % 8 {
	case 0:
		return nil
	case 1:
		return []byte{byte(i), byte(i >> 8), 0xFF}
	case 2:
		return "payload-" + string(rune('a'+i%26))
	case 3:
		return int64(-i)
	case 4:
		return uint64(i) << 32
	case 5:
		return float64(i) * 0.25
	case 6:
		return i%2 == 0
	default:
		return i
	}
}

// uniqueRecords builds n records at distinct uniform locations with
// payloads cycling through every durable kind.
func uniqueRecords(n int, seed uint64) []Record {
	src := dist.NewUniform(geom.UnitSquare, xrand.New(seed))
	recs := make([]Record, 0, n)
	seen := map[geom.Point]bool{}
	for len(recs) < n {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, Record{ID: uint64(len(recs)), Loc: p, Data: durablePayload(len(recs))})
	}
	return recs
}

// controlFor builds an in-memory control table holding recs.
func controlFor(t *testing.T, opts TableOptions, recs []Record) *Table {
	t.Helper()
	c, err := NewDB().CreateTableWith("control", opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDurableRoundTrip is the happy path: create, mutate through every
// write path (Insert, InsertBatch, Delete), close gracefully, reopen,
// and require the recovered table to answer 1000 randomized queries
// exactly like an in-memory control that saw the same mutations.
func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 2}
	db := NewDB()
	tab, err := db.CreateDurableTable("pts", opts, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if !tab.Durable() {
		t.Fatal("CreateDurableTable returned a non-durable table")
	}

	recs := uniqueRecords(1200, 99)
	if err := tab.InsertBatch(recs[:800]); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[800:] {
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for id := uint64(0); id < 1200; id += 7 {
		if ok, err := tab.DeleteChecked(id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	// A closed table rejects further durable mutations.
	if err := tab.Insert(Record{ID: 9999, Loc: geom.Pt(0.123, 0.456)}); !errors.Is(err, ErrTableClosed) {
		t.Fatalf("insert after Close: %v, want ErrTableClosed", err)
	}
	if _, err := tab.DeleteChecked(1); !errors.Is(err, ErrTableClosed) {
		t.Fatalf("delete after Close: %v, want ErrTableClosed", err)
	}
	if err := db.DropTable("pts"); err != nil {
		t.Fatal(err)
	}

	reopened, err := db.OpenDurableTable("pts", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	control := controlFor(t, opts, recs)
	for id := uint64(0); id < 1200; id += 7 {
		if !control.Delete(id) {
			t.Fatalf("control delete %d failed", id)
		}
	}
	assertSameRecords(t, "roundtrip", reopened, control)
	assertEquivalentQueries(t, "roundtrip", reopened, control, 4242, 1000)

	// The reopened table keeps working: mutate and recover once more.
	if err := reopened.Insert(Record{ID: 50_000, Loc: geom.Pt(0.5, 0.25), Data: "late"}); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("pts"); err != nil {
		t.Fatal(err)
	}
	again, err := db.OpenDurableTable("pts", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := again.Get(50_000)
	if !ok || got.Data != "late" {
		t.Fatalf("post-reopen insert lost: ok=%v rec=%+v", ok, got)
	}
}

// TestDurableFlushCompactLadder drives the full storage ladder — WAL →
// delta runs → compacted full run — then crashes and recovers, checking
// the merged result against a control.
func TestDurableFlushCompactLadder(t *testing.T) {
	dir := t.TempDir()
	opts := TableOptions{Capacity: 4, ShardBits: 1}
	db := NewDB()
	tab, err := db.CreateDurableTable("ladder", opts, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	recs := uniqueRecords(600, 7)
	control := controlFor(t, opts, nil)

	for i, chunk := 0, 200; i < len(recs); i += chunk {
		if err := tab.InsertBatch(recs[i : i+chunk]); err != nil {
			t.Fatal(err)
		}
		if err := control.InsertBatch(recs[i : i+chunk]); err != nil {
			t.Fatal(err)
		}
		if err := tab.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if countRunFiles(t, dir) < 3 {
		t.Fatalf("expected >=3 sealed runs after 3 flushes, found %d", countRunFiles(t, dir))
	}
	// Deletes land in the WAL on top of sealed runs; compaction must
	// respect them as tombstone-free WAL replay (they are folded into
	// the next delta, then merged away).
	for id := uint64(0); id < 600; id += 5 {
		if ok, err := tab.DeleteChecked(id); err != nil || !ok {
			t.Fatalf("delete %d: ok=%v err=%v", id, ok, err)
		}
		if !control.Delete(id) {
			t.Fatalf("control delete %d failed", id)
		}
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tab.CompactDisk(); err != nil {
		t.Fatal(err)
	}
	if got, want := countRunFiles(t, dir), tab.Shards(); got > want {
		t.Fatalf("after CompactDisk: %d run files, want <=%d (one per shard)", got, want)
	}

	tab.Kill()
	if err := db.DropTable("ladder"); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenDurableTable("ladder", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRecords(t, "ladder", reopened, control)
	assertEquivalentQueries(t, "ladder", reopened, control, 31337, 1000)
}

// TestDurableAutoFlushWorker checks the background worker seals runs on
// its own once the WAL crosses the AutoFlush threshold.
func TestDurableAutoFlushWorker(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("auto", TableOptions{Capacity: 4, ShardBits: SingleShard},
		DurableOptions{Dir: dir, AutoFlush: 16, CompactAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range uniqueRecords(400, 55) {
		if err := tab.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for countRunFiles(t, dir) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background worker sealed no runs within 10s")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoverEmptyWAL: a table killed before any mutation
// recovers to an empty, fully functional table.
func TestDurableRecoverEmptyWAL(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("empty", TableOptions{Capacity: 4, ShardBits: 2}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tab.Kill()
	if err := db.DropTable("empty"); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenDurableTable("empty", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 0 {
		t.Fatalf("empty table recovered %d records", reopened.Len())
	}
	if err := reopened.Insert(Record{ID: 1, Loc: geom.Pt(0.5, 0.5), Data: int64(7)}); err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoverTornFirstRecord: a WAL whose only record is torn —
// a crash mid-first-append — recovers to an empty table: the record was
// never acknowledged, so discarding it is correct, and the reopened WAL
// must accept appends (Open truncates the torn tail).
func TestDurableRecoverTornFirstRecord(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("torn", TableOptions{Capacity: 4, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Record{ID: 1, Loc: geom.Pt(0.25, 0.75), Data: "gone"}); err != nil {
		t.Fatal(err)
	}
	tab.Kill()
	if err := db.DropTable("torn"); err != nil {
		t.Fatal(err)
	}
	// Shear the only frame mid-payload: 4 bytes is inside the 8-byte
	// frame header, so not even the length survives.
	walFile := filepath.Join(dir, "shard-0.wal")
	if err := os.Truncate(walFile, 4); err != nil {
		t.Fatal(err)
	}
	reopened, err := db.OpenDurableTable("torn", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 0 {
		t.Fatalf("torn-first-record table recovered %d records", reopened.Len())
	}
	if err := reopened.Insert(Record{ID: 2, Loc: geom.Pt(0.1, 0.1)}); err != nil {
		t.Fatalf("append after torn-tail truncation: %v", err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoverCorruptFooter: a newest run whose footer is damaged
// is indistinguishable from an interrupted flush, so recovery discards
// it (deleting the file) and opens what the WAL and older runs cover.
func TestDurableRecoverCorruptFooter(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("footer", TableOptions{Capacity: 4, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(uniqueRecords(100, 3)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil { // seals one checkpoint run, truncates the WAL
		t.Fatal(err)
	}
	if err := db.DropTable("footer"); err != nil {
		t.Fatal(err)
	}
	run := onlyRunFile(t, dir)
	flipLastByte(t, run)

	reopened, err := db.OpenDurableTable("footer", TableOptions{}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatalf("corrupt-footer open failed: %v (a damaged footer must be treated as torn)", err)
	}
	if reopened.Len() != 0 {
		t.Fatalf("recovered %d records from a discarded run", reopened.Len())
	}
	if _, err := os.Stat(run); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("torn newest run not deleted: stat=%v", err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoverCorruptBody: a run with a valid footer but a
// damaged body was durably sealed and has since rotted; recovery must
// refuse to open rather than silently serve a hole.
func TestDurableRecoverCorruptBody(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("rot", TableOptions{Capacity: 4, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertBatch(uniqueRecords(100, 5)); err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("rot"); err != nil {
		t.Fatal(err)
	}
	run := onlyRunFile(t, dir)
	flipBodyByte(t, run)

	if _, err := db.OpenDurableTable("rot", TableOptions{}, DurableOptions{Dir: dir}); !errors.Is(err, ErrCorruptRun) {
		t.Fatalf("corrupt-body open: %v, want ErrCorruptRun", err)
	}
}

// TestDurableShardLayoutMismatch: the shard layout is pinned by the
// manifest; reopening under a different layout must fail with the typed
// error, because the on-disk runs are keyed by the created layout's
// cells.
func TestDurableShardLayoutMismatch(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("layout", TableOptions{Capacity: 4, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("layout"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenDurableTable("layout", TableOptions{ShardBits: 2}, DurableOptions{Dir: dir}); !errors.Is(err, ErrShardLayoutMismatch) {
		t.Fatalf("ShardBits 2 over SingleShard manifest: %v, want ErrShardLayoutMismatch", err)
	}
	// Re-pinning the created layout is fine.
	reopened, err := db.OpenDurableTable("layout", TableOptions{ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableManifestMismatch covers the remaining manifest pins: name,
// capacity, and a second create in an occupied directory.
func TestDurableManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("pinned", TableOptions{Capacity: 8, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("pinned"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.OpenDurableTable("other", TableOptions{}, DurableOptions{Dir: dir}); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("wrong name: %v, want ErrManifestMismatch", err)
	}
	if _, err := db.OpenDurableTable("pinned", TableOptions{Capacity: 16}, DurableOptions{Dir: dir}); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("wrong capacity: %v, want ErrManifestMismatch", err)
	}
	if _, err := db.CreateDurableTable("pinned2", TableOptions{Capacity: 4}, DurableOptions{Dir: dir}); err == nil ||
		!strings.Contains(err.Error(), "OpenDurableTable") {
		t.Fatalf("create over occupied dir: %v, want pointer to OpenDurableTable", err)
	}
	if _, err := db.CreateDurableTable("nodir", TableOptions{Capacity: 4}, DurableOptions{}); err == nil {
		t.Fatal("create with empty Dir accepted")
	}
	if _, err := db.OpenDurableTable("nodir", TableOptions{}, DurableOptions{}); err == nil {
		t.Fatal("open with empty Dir accepted")
	}
}

// TestDurablePayloadNotDurable: a payload the codec cannot frame is
// rejected before the WAL is touched, leaving the table unchanged —
// while the same payload stays legal on an in-memory table.
func TestDurablePayloadNotDurable(t *testing.T) {
	dir := t.TempDir()
	db := NewDB()
	tab, err := db.CreateDurableTable("codec", TableOptions{Capacity: 4, ShardBits: SingleShard}, DurableOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	bad := Record{ID: 1, Loc: geom.Pt(0.5, 0.5), Data: map[string]int{"not": 1}}
	if err := tab.Insert(bad); !errors.Is(err, ErrPayloadNotDurable) {
		t.Fatalf("map payload insert: %v, want ErrPayloadNotDurable", err)
	}
	if err := tab.InsertBatch([]Record{bad}); !errors.Is(err, ErrPayloadNotDurable) {
		t.Fatalf("map payload batch: %v, want ErrPayloadNotDurable", err)
	}
	if tab.Len() != 0 {
		t.Fatalf("rejected payload left %d records behind", tab.Len())
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}

	mem, err := db.CreateTableWith("mem", TableOptions{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Insert(bad); err != nil {
		t.Fatalf("in-memory table rejected a non-durable payload: %v", err)
	}
}

// TestPayloadCodecRoundTrip pins the wire format of every payload kind.
func TestPayloadCodecRoundTrip(t *testing.T) {
	vals := []any{nil, []byte{}, []byte{1, 2, 3}, "", "hello", int64(-42),
		uint64(1) << 63, 3.14159, true, false, int(-7)}
	for _, v := range vals {
		buf, err := encodePayload(v)
		if err != nil {
			t.Fatalf("encode %#v: %v", v, err)
		}
		got, err := decodePayload(buf)
		if err != nil {
			t.Fatalf("decode %#v: %v", v, err)
		}
		if !payloadEqual(got, v) {
			t.Fatalf("round trip %#v -> %#v", v, got)
		}
	}
	if _, err := encodePayload(struct{ X int }{1}); !errors.Is(err, ErrPayloadNotDurable) {
		t.Fatalf("struct payload: %v, want ErrPayloadNotDurable", err)
	}
}

// countRunFiles counts sealed .seg files in dir.
func countRunFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			n++
		}
	}
	return n
}

// onlyRunFile returns the single .seg file in dir, failing if there is
// not exactly one.
func onlyRunFile(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var runs []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".seg") {
			runs = append(runs, filepath.Join(dir, e.Name()))
		}
	}
	if len(runs) != 1 {
		t.Fatalf("expected exactly one run file, found %d: %v", len(runs), runs)
	}
	return runs[0]
}

// flipLastByte XORs the file's final byte — the tail of the footer
// magic.
func flipLastByte(t *testing.T, path string) {
	t.Helper()
	flipByteAt(t, path, -1)
}

// flipBodyByte XORs one byte in the middle of the file body, past the
// header but well before the footer.
func flipBodyByte(t *testing.T, path string) {
	t.Helper()
	flipByteAt(t, path, 100)
}

func flipByteAt(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	if off < 0 {
		off = st.Size() + off
	}
	if off >= st.Size() {
		t.Fatalf("offset %d beyond file size %d", off, st.Size())
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
