package spatialdb

import (
	"errors"
	"math"
	"sync"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

func batchRecords(seed uint64, base uint64, n int) []Record {
	rng := xrand.New(seed)
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{ID: base + uint64(i), Loc: geom.Pt(rng.Float64(), rng.Float64())}
	}
	return recs
}

// TestInsertBatchBasic checks a batch lands fully and is queryable.
func TestInsertBatchBasic(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("pts", 8, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	recs := batchRecords(1, 0, 500)
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 500 {
		t.Fatalf("len %d after batch of 500", tab.Len())
	}
	for _, r := range recs[:20] {
		got, ok := tab.Get(r.ID)
		if !ok || got.Loc != r.Loc {
			t.Fatalf("record %d lost or moved: %+v", r.ID, got)
		}
	}
	out, _, err := tab.Select(Query{Window: &geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 500 {
		t.Fatalf("window over the universe returned %d of 500", len(out))
	}
	if err := tab.InsertBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestInsertBatchAtomicity checks a rejected batch changes nothing: bad
// point, duplicate ID (in-batch and vs table), duplicate location.
func TestInsertBatchAtomicity(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("pts", 4, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	seedRecs := batchRecords(2, 0, 10)
	if err := tab.InsertBatch(seedRecs); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		batch []Record
		want  error
	}{
		{"id exists in table", []Record{{ID: 5, Loc: geom.Pt(0.9, 0.9)}}, ErrDuplicateID},
		{"id repeated in batch", []Record{
			{ID: 100, Loc: geom.Pt(0.91, 0.9)},
			{ID: 100, Loc: geom.Pt(0.92, 0.9)},
		}, ErrDuplicateID},
		{"invalid point", []Record{{ID: 101, Loc: geom.Pt(0.93, 0.9)}, {ID: 102, Loc: badPoint()}}, ErrInvalidPoint},
		{"location occupied", []Record{{ID: 103, Loc: seedRecs[0].Loc}}, nil},
		{"location repeated in batch", []Record{
			{ID: 104, Loc: geom.Pt(0.94, 0.9)},
			{ID: 105, Loc: geom.Pt(0.94, 0.9)},
		}, nil},
	}
	for _, c := range cases {
		err := tab.InsertBatch(c.batch)
		if err == nil {
			t.Fatalf("%s: batch accepted", c.name)
		}
		if c.want != nil && !errors.Is(err, c.want) {
			t.Fatalf("%s: error %v does not wrap %v", c.name, err, c.want)
		}
		if tab.Len() != 10 {
			t.Fatalf("%s: failed batch mutated the table (len %d)", c.name, tab.Len())
		}
		for _, r := range c.batch {
			if _, ok := tab.Get(r.ID); ok && r.ID >= 100 {
				t.Fatalf("%s: record %d leaked from failed batch", c.name, r.ID)
			}
		}
	}
}

func badPoint() geom.Point {
	return geom.Pt(math.Inf(1), 0)
}

// TestInsertBatchConcurrentWithQueries hammers one table with batch
// writers and window/nearest readers; run under -race this is the proof
// that InsertBatch holds the table lock correctly. Readers must always
// observe a multiple of the batch size (no partially applied batch).
func TestInsertBatchConcurrentWithQueries(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("pts", 8, geom.Rect{})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers   = 4
		batches   = 8
		batchSize = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				base := uint64(w*batches+b) * batchSize
				recs := batchRecords(uint64(1000+w*batches+b), base, batchSize)
				if err := tab.InsertBatch(recs); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			window := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, _, err := tab.Select(Query{Window: &window})
				if err != nil {
					t.Error(err)
					return
				}
				if len(out)%batchSize != 0 {
					t.Errorf("reader saw partial batch: %d records", len(out))
					return
				}
				if _, _, err := tab.Select(Query{Nearest: &NearestSpec{At: geom.Pt(0.5, 0.5), K: 3}}); err != nil {
					t.Error(err)
					return
				}
				tab.Stats()
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	if want := writers * batches * batchSize; tab.Len() != want {
		t.Fatalf("table has %d records, want %d", tab.Len(), want)
	}
}
