package spatialdb

// The shared query-equivalence harness: the acceptance gate for every
// engine change that must preserve observable behavior. It drives two
// tables — a subject and a control holding (supposedly) the same
// records — through randomized window, radius, and nearest queries,
// budgeted and not, and fails on the first divergence in record sets,
// counts, or Truncated flags. The sharding suite uses it to prove a
// 16-shard table answers like a single-shard one; the durability suite
// uses it to prove a crash-recovered table answers like one that never
// crashed.

import (
	"fmt"
	"sort"
	"testing"

	"popana/internal/geom"
	"popana/internal/xrand"
)

// assertEquivalentQueries runs `queries` randomized queries against
// both tables and fails on the first divergence. The seed pins the
// query mix, so a failure replays exactly.
func assertEquivalentQueries(t *testing.T, label string, subject, control *Table, seed uint64, queries int) {
	t.Helper()
	rng := xrand.New(seed)
	for i := 0; i < queries; i++ {
		var q Query
		switch i % 3 {
		case 0:
			w := geom.R(rng.Float64(), rng.Float64(), 0, 0)
			w.MaxX = w.MinX + 0.01 + rng.Float64()*0.6
			w.MaxY = w.MinY + 0.01 + rng.Float64()*0.6
			q = Query{Window: &w}
		case 1:
			q = Query{Within: &WithinSpec{
				At:     geom.Pt(rng.Float64(), rng.Float64()),
				Radius: 0.01 + rng.Float64()*0.4,
			}}
		case 2:
			q = Query{Nearest: &NearestSpec{
				At: geom.Pt(rng.Float64(), rng.Float64()),
				K:  1 + rng.Intn(20),
			}}
		}
		if q.Nearest == nil && i%2 == 0 {
			q.MaxNodes = 1 << 20 // ample: never truncates
		}
		name := fmt.Sprintf("%s/q%d", label, i)

		got, gotCost, err := subject.Select(q)
		if err != nil {
			t.Fatalf("%s: subject Select: %v", name, err)
		}
		want, wantCost, err := control.Select(q)
		if err != nil {
			t.Fatalf("%s: control Select: %v", name, err)
		}
		gi, wi := recordIDs(got), recordIDs(want)
		if len(gi) != len(wi) {
			t.Fatalf("%s: subject returned %d records, control %d", name, len(gi), len(wi))
		}
		for j := range gi {
			if gi[j] != wi[j] {
				t.Fatalf("%s: record sets differ at %d: %d vs %d", name, j, gi[j], wi[j])
			}
		}
		if gotCost.Truncated != wantCost.Truncated {
			t.Fatalf("%s: Truncated %v vs %v", name, gotCost.Truncated, wantCost.Truncated)
		}

		if q.Window != nil {
			gc, gCost, err := subject.CountRange(*q.Window, q.MaxNodes)
			if err != nil {
				t.Fatalf("%s: subject CountRange: %v", name, err)
			}
			wc, wCost, err := control.CountRange(*q.Window, q.MaxNodes)
			if err != nil {
				t.Fatalf("%s: control CountRange: %v", name, err)
			}
			if gc != wc || gc != len(want) {
				t.Fatalf("%s: CountRange %d vs %d (Select %d)", name, gc, wc, len(want))
			}
			if gCost.Truncated != wCost.Truncated {
				t.Fatalf("%s: count Truncated %v vs %v", name, gCost.Truncated, wCost.Truncated)
			}
		}
	}
}

// assertSameRecords asserts the two tables hold bit-identical record
// sets: same IDs, same locations, same payloads.
func assertSameRecords(t *testing.T, label string, subject, control *Table) {
	t.Helper()
	if sl, cl := subject.Len(), control.Len(); sl != cl {
		t.Fatalf("%s: subject holds %d records, control %d", label, sl, cl)
	}
	full := control.region
	want, _, err := control.Select(Query{Window: &full})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
	for _, w := range want {
		g, ok := subject.Get(w.ID)
		if !ok {
			t.Fatalf("%s: record %d missing from subject", label, w.ID)
		}
		if g.Loc != w.Loc {
			t.Fatalf("%s: record %d at %v, control has %v", label, w.ID, g.Loc, w.Loc)
		}
		if !payloadEqual(g.Data, w.Data) {
			t.Fatalf("%s: record %d payload %#v, control has %#v", label, w.ID, g.Data, w.Data)
		}
	}
}

// payloadEqual compares durable payload values ([]byte needs an
// element-wise comparison; everything else the codec supports is
// comparable).
func payloadEqual(a, b any) bool {
	ab, aok := a.([]byte)
	bb, bok := b.([]byte)
	if aok || bok {
		if !aok || !bok || len(ab) != len(bb) {
			return false
		}
		for i := range ab {
			if ab[i] != bb[i] {
				return false
			}
		}
		return true
	}
	return a == b
}
