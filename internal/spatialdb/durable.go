package spatialdb

// Durable tiered storage: each shard of a durable table owns a
// write-ahead log (package wal) and a ladder of sealed, immutable
// Morton run files (package segment). Mutations append to the shard's
// WAL before touching the in-memory index; Flush folds the WAL into a
// sorted delta run and truncates it; CompactDisk k-way-merges a shard's
// runs into one full run; a graceful Close checkpoints each shard's
// frozen snapshot — leaf index included — so reopening republishes the
// lock-free read path without re-freezing. Crash recovery replays the
// newest durable runs plus the WAL tail, dropping torn frames and
// incomplete multi-shard batches, and rebuilds state bit-identical to a
// table that never crashed.
//
// # Fsync policy
//
// Run files and the manifest are always written via temp-file + fsync +
// rename + directory fsync: a crash leaves either the old file or the
// complete new one. The WAL is synced when a run seals over it (Flush,
// CompactDisk, Close) and optionally on every append
// (DurableOptions.SyncAppends); the default covers the process-crash
// model every chaos suite in this repository uses, while SyncAppends
// extends durability to power loss at a per-mutation fsync cost.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/segment"
	"popana/internal/wal"
)

// ErrShardLayoutMismatch is returned by OpenDurableTable when the
// caller pins a shard layout (TableOptions.ShardBits) that differs from
// the one the table was created with: the on-disk runs are keyed by the
// created layout's cells and cannot be served under another.
var ErrShardLayoutMismatch = errors.New("spatialdb: shard layout differs from the durable table's manifest")

// ErrManifestMismatch is returned by OpenDurableTable when a pinned
// option (capacity, region, snapshot threshold) or the table name
// disagrees with the manifest.
var ErrManifestMismatch = errors.New("spatialdb: options differ from the durable table's manifest")

// ErrCorruptRun is returned when recovery meets a sealed run whose
// checksums no longer validate: re-exported from package segment so
// callers match it without importing the storage internals.
var ErrCorruptRun = segment.ErrCorrupt

// ErrTableClosed is returned by durable operations after Close or Kill.
var ErrTableClosed = errors.New("spatialdb: durable table closed")

// DurableOptions parameterizes the durable storage of a table.
type DurableOptions struct {
	// Dir is the directory holding the manifest, per-shard WALs, and run
	// files. Required.
	Dir string
	// AutoFlush, when positive, starts a background worker that folds a
	// shard's WAL into a sealed delta run once the WAL holds at least
	// this many records. Zero disables the worker: flushes happen only
	// via Flush, CompactDisk, and Close, which keeps chaos tests
	// deterministic.
	AutoFlush int
	// CompactAfter, when positive and the worker is running, merges a
	// shard's runs into one full run once it has accumulated this many.
	CompactAfter int
	// SyncAppends fsyncs the WAL after every append, extending the crash
	// contract from process death to power loss.
	SyncAppends bool
	// Lazy serves the table straight from its sealed runs instead of
	// materializing every entry in RAM: OpenDurableTable maps run
	// manifests and block indexes only, queries stream merged cursors
	// over the run stack plus the WAL tail, and the working set is
	// bounded by CacheBytes — tables larger than memory are first-class.
	// The id index stays in RAM (index-in-memory, payload-on-disk).
	Lazy bool
	// CacheBytes bounds the shared block cache a lazy table reads
	// through, in bytes of decoded entry-block payload. Zero selects
	// DefaultCacheBytes; negative disables caching entirely. Ignored
	// unless Lazy is set.
	CacheBytes int64
}

// DefaultCacheBytes is the block-cache budget of a lazy durable table
// when DurableOptions.CacheBytes is zero: 4 MiB, a thousand 4 KiB
// blocks — enough to keep a hot query region resident while staying
// negligible next to the tables lazy mode exists for.
const DefaultCacheBytes = 4 << 20

// durableShard is the storage half of one shard: its WAL and the
// sorted ladder of sealed runs.
type durableShard struct {
	log *wal.Log
	// flushMu serializes flush/compact/checkpoint on this shard; it is
	// ordered strictly before the shard's tree lock and is never held
	// across another shard's locks.
	flushMu sync.Mutex
	// seq is the last run sequence number used (next run gets seq+1);
	// runs lists the current run files ascending by seq. Both guarded by
	// flushMu.
	seq  uint64
	runs []runFile

	// stackMu guards stack, the shard's open run readers in lazy mode,
	// ascending by seq and trimmed to the newest full run onward (older
	// runs are fully shadowed). It is a leaf lock: nothing else is
	// acquired while holding it, so it may be taken under flushMu, the
	// shard tree lock, or neither. Empty in non-lazy tables.
	stackMu sync.Mutex
	stack   []*openRun
}

// runFile identifies one sealed run on disk.
type runFile struct {
	path string
	seq  uint64
	kind segment.Kind
}

// runCount returns the shard's current number of sealed runs.
func (ds *durableShard) runCount() int {
	ds.flushMu.Lock()
	defer ds.flushMu.Unlock()
	return len(ds.runs)
}

// durableTable is the durable state attached to a Table.
type durableTable struct {
	dir  string
	opts DurableOptions
	inj  *faultinject.Injector

	shards []*durableShard

	// lazy marks a table opened with DurableOptions.Lazy: queries are
	// served from the shard run stacks plus the WAL tail instead of the
	// in-memory trees, which stay empty.
	lazy bool
	// cache is the table's shared block cache for lazy reads; nil when
	// caching is disabled (every *segment.Cache method is nil-safe).
	cache *segment.Cache

	// batchLog is the table-level batch-commit log: one opCommit record
	// per batch whose per-shard frames all reached their WALs. A batch is
	// recovered iff its commit survives here — the single-log append
	// makes the commit point atomic. batchMu serializes commit appends
	// against the truncation in maybeTruncateBatchLog; it is taken after
	// shard locks (logBatch) or with none held, never before them.
	batchLog *wal.Log
	batchMu  sync.Mutex

	// batchID numbers multi-shard batches within one WAL generation;
	// re-seeded past the maximum seen ID at recovery.
	batchID atomic.Uint64

	// failedMu guards failedBatches: batches whose WAL append failed on
	// a later shard after succeeding on an earlier one. Their frames are
	// skipped by Flush so a half-logged batch can never leak into a
	// sealed run; a restart recomputes completeness from the WALs
	// directly. The set only grows while the process lives — each entry
	// is one failed batch, so it stays negligible.
	failedMu      sync.Mutex
	failedBatches map[uint64]struct{}

	// runsConsulted and runsPruned count, across the table's lifetime,
	// the sealed runs a lazy read opened a cursor on versus the runs its
	// Morton-prefix filter excluded before any block was touched.
	// Surfaced through Stats and (per query) Explain.
	runsConsulted atomic.Int64
	runsPruned    atomic.Int64

	closed atomic.Bool
	notify chan struct{}
	stop   chan struct{}
	done   chan struct{}
}

func (d *durableTable) walPath(si int) string {
	return filepath.Join(d.dir, fmt.Sprintf("shard-%d.wal", si))
}

func (d *durableTable) batchLogPath() string {
	return filepath.Join(d.dir, "batches.wal")
}

func (d *durableTable) runPath(si int, seq uint64) string {
	return filepath.Join(d.dir, fmt.Sprintf("run-%d-%09d.seg", si, seq))
}

// parseRunName inverts runPath.
func parseRunName(name string) (si int, seq uint64, ok bool) {
	var tail string
	if n, err := fmt.Sscanf(name, "run-%d-%d.seg%s", &si, &seq, &tail); err == nil && n == 2 && tail == "" {
		return si, seq, true
	}
	// Sscanf refuses the trailing %s when nothing follows; retry exact.
	if n, err := fmt.Sscanf(name, "run-%d-%d.seg", &si, &seq); err == nil && n == 2 &&
		name == fmt.Sprintf("run-%d-%09d.seg", si, seq) {
		return si, seq, true
	}
	return 0, 0, false
}

// markFailedBatch records a batch whose per-shard WAL appends did not
// all succeed.
func (d *durableTable) markFailedBatch(id uint64) {
	d.failedMu.Lock()
	defer d.failedMu.Unlock()
	d.failedBatches[id] = struct{}{}
}

func (d *durableTable) batchFailed(id uint64) bool {
	d.failedMu.Lock()
	defer d.failedMu.Unlock()
	_, ok := d.failedBatches[id]
	return ok
}

// Durable reports whether the table persists its mutations.
func (t *Table) Durable() bool { return t.dur != nil }

// CreateDurableTable creates a table whose mutations are persisted
// under dopts.Dir: a manifest pins the table's layout, each shard gets
// a write-ahead log, and Flush/Close seal the log into immutable run
// files. The directory must not already hold a durable table — reopen
// an existing one with OpenDurableTable.
func (db *DB) CreateDurableTable(name string, opts TableOptions, dopts DurableOptions) (*Table, error) {
	if dopts.Dir == "" {
		return nil, fmt.Errorf("spatialdb: create durable %q: DurableOptions.Dir required", name)
	}
	region, bits, err := resolveTableShape(name, opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("spatialdb: create durable %q: %w", name, err)
	}
	manifestPath := filepath.Join(dopts.Dir, manifestName)
	if _, err := os.Stat(manifestPath); err == nil {
		return nil, fmt.Errorf("spatialdb: create durable %q: %s already holds a durable table (use OpenDurableTable)", name, dopts.Dir)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("spatialdb: table %q already exists", name)
	}
	t, err := db.buildTable(name, opts, region, bits)
	if err != nil {
		return nil, err
	}
	if err := writeManifest(manifestPath, manifest{
		name:      name,
		capacity:  t.capacity,
		shardBits: bits,
		snapEvery: t.snapEvery,
		region:    region,
	}); err != nil {
		return nil, fmt.Errorf("spatialdb: create durable %q: %w", name, err)
	}
	d, err := newDurableState(t, dopts, db.inj)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: create durable %q: %w", name, err)
	}
	t.dur = d
	if d.lazy {
		t.initLazyTails()
	}
	d.startWorker(t)
	db.tables[name] = t
	return t, nil
}

// OpenDurableTable reopens the durable table stored under dopts.Dir,
// recovering its state from the newest sealed runs plus the WAL tail:
// torn run files and torn WAL frames are discarded, incomplete
// multi-shard batches are dropped on every shard, and a run that was
// durably sealed but has since been damaged fails the open with
// ErrCorruptRun. Zero-valued fields of opts default to the manifest;
// pinning a field to a different value than the table was created with
// returns ErrShardLayoutMismatch (sharding) or ErrManifestMismatch
// (anything else).
func (db *DB) OpenDurableTable(name string, opts TableOptions, dopts DurableOptions) (*Table, error) {
	if dopts.Dir == "" {
		return nil, fmt.Errorf("spatialdb: open durable %q: DurableOptions.Dir required", name)
	}
	man, err := readManifest(filepath.Join(dopts.Dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w", name, err)
	}
	if name != man.name {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w: directory holds table %q", name, ErrManifestMismatch, man.name)
	}
	if opts.Capacity != 0 && opts.Capacity != man.capacity {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w: capacity %d, created with %d",
			name, ErrManifestMismatch, opts.Capacity, man.capacity)
	}
	if opts.Region != (geom.Rect{}) && opts.Region != man.region {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w: region %v, created with %v",
			name, ErrManifestMismatch, opts.Region, man.region)
	}
	if opts.SnapshotThreshold != 0 && uint64(opts.SnapshotThreshold) != man.snapEvery {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w: snapshot threshold %d, created with %d",
			name, ErrManifestMismatch, opts.SnapshotThreshold, man.snapEvery)
	}
	if opts.ShardBits != 0 {
		bits, err := resolveShardBits(opts.ShardBits)
		if err != nil {
			return nil, fmt.Errorf("spatialdb: open durable %q: %w", name, err)
		}
		if bits != man.shardBits {
			return nil, fmt.Errorf("spatialdb: open durable %q: %w: ShardBits %d resolves to %d shards, created with %d",
				name, ErrShardLayoutMismatch, opts.ShardBits, 1<<(2*bits), 1<<(2*man.shardBits))
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, exists := db.tables[name]; exists {
		return nil, fmt.Errorf("spatialdb: table %q already exists", name)
	}
	t, err := db.buildTable(name, TableOptions{
		Capacity:          man.capacity,
		SnapshotThreshold: int(man.snapEvery),
	}, man.region, man.shardBits)
	if err != nil {
		return nil, err
	}
	d, err := newDurableState(t, dopts, db.inj)
	if err != nil {
		return nil, fmt.Errorf("spatialdb: open durable %q: %w", name, err)
	}
	t.dur = d
	recover := t.recoverFromDisk
	if d.lazy {
		recover = t.recoverLazyFromDisk
	}
	if err := recover(); err != nil {
		d.closeFiles()
		return nil, fmt.Errorf("spatialdb: open durable %q: %w", name, err)
	}
	d.startWorker(t)
	db.tables[name] = t
	return t, nil
}

// newDurableState opens the per-shard WALs (truncating torn tails) and
// indexes the sealed runs already on disk.
func newDurableState(t *Table, dopts DurableOptions, inj *faultinject.Injector) (*durableTable, error) {
	d := &durableTable{
		dir:           dopts.Dir,
		opts:          dopts,
		inj:           inj,
		lazy:          dopts.Lazy,
		shards:        make([]*durableShard, len(t.shards)),
		failedBatches: map[uint64]struct{}{},
		notify:        make(chan struct{}, 1),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	if dopts.Lazy {
		budget := dopts.CacheBytes
		if budget == 0 {
			budget = DefaultCacheBytes
		}
		d.cache = segment.NewCache(budget) // nil when budget < 0: caching off
	}
	entries, err := os.ReadDir(dopts.Dir)
	if err != nil {
		return nil, err
	}
	if d.batchLog, err = wal.Open(d.batchLogPath(), wal.Options{Injector: inj}); err != nil {
		return nil, err
	}
	bySi := make([][]runFile, len(t.shards))
	for _, e := range entries {
		si, seq, ok := parseRunName(e.Name())
		if !ok || si < 0 || si >= len(t.shards) {
			continue
		}
		bySi[si] = append(bySi[si], runFile{path: filepath.Join(dopts.Dir, e.Name()), seq: seq})
	}
	for si := range d.shards {
		runs := bySi[si]
		sort.Slice(runs, func(a, b int) bool { return runs[a].seq < runs[b].seq })
		l, err := wal.Open(d.walPath(si), wal.Options{Injector: inj})
		if err != nil {
			for _, prev := range d.shards[:si] {
				prev.log.Close()
			}
			d.batchLog.Close()
			return nil, err
		}
		ds := &durableShard{log: l, runs: runs}
		if n := len(runs); n > 0 {
			ds.seq = runs[n-1].seq
		}
		d.shards[si] = ds
	}
	return d, nil
}

// closeFiles closes every WAL without flushing, and in lazy mode
// drains every shard's run stack: each open reader is marked dead and
// the stack's reference released, so readers close as soon as any
// in-flight pinned query lets go (such queries may then surface read
// errors — the intended crash simulation under Kill).
func (d *durableTable) closeFiles() {
	for _, ds := range d.shards {
		ds.log.Close()
		ds.stackMu.Lock()
		stack := ds.stack
		ds.stack = nil
		ds.stackMu.Unlock()
		for _, or := range stack {
			or.dead.Store(true)
			or.release()
		}
	}
	d.batchLog.Close()
}

// startWorker launches the background flush/compact worker when
// AutoFlush is enabled; otherwise the done channel is closed
// immediately so stopWorker never blocks.
func (d *durableTable) startWorker(t *Table) {
	if d.opts.AutoFlush <= 0 {
		close(d.done)
		return
	}
	go func() {
		defer close(d.done)
		for {
			select {
			case <-d.stop:
				return
			case <-d.notify:
			}
			for si, ds := range d.shards {
				if ds.log.Records() >= d.opts.AutoFlush {
					// Background maintenance is best-effort: a failed flush
					// leaves the WAL covering the records, and the next
					// synchronous Flush/Close surfaces the error.
					_ = t.flushShard(si)
				}
				if d.opts.CompactAfter > 0 && ds.runCount() >= d.opts.CompactAfter {
					_ = t.compactShardDisk(si)
				}
			}
		}
	}()
}

// notifyFlush nudges the worker; never blocks.
func (d *durableTable) notifyFlush() {
	if d.opts.AutoFlush <= 0 {
		return
	}
	select {
	case d.notify <- struct{}{}:
	default:
	}
}

// stopWorker stops the background worker and waits for it to exit.
func (d *durableTable) stopWorker() {
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	<-d.done
}

// Close gracefully shuts the durable table down: the background worker
// stops, every shard is checkpointed — its frozen snapshot sealed as a
// full run with the leaf index, the WAL truncated, superseded runs
// deleted — and the WAL files are closed. A closed table rejects
// further durable mutations; reopen it with OpenDurableTable (after
// DropTable when reusing the same DB). Close on a non-durable table is
// a no-op. Idempotent.
func (t *Table) Close() error {
	d := t.dur
	if d == nil {
		return nil
	}
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.stopWorker()
	var firstErr error
	for si := range t.shards {
		// A lazy table has no frozen tree to checkpoint; sealing the WAL
		// tail into a delta run gives the same durability (reopen replays
		// nothing) without materializing entries.
		seal := t.checkpointShard
		if d.lazy {
			seal = t.flushShard
		}
		if err := seal(si); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := d.maybeTruncateBatchLog(); err != nil && firstErr == nil {
		firstErr = err
	}
	d.closeFiles()
	return firstErr
}

// Kill simulates a crash for chaos testing: the background worker
// stops and every file handle is closed with no flush, no WAL
// truncation, and no checkpoint. In-flight mutations fail without
// applying. The on-disk state is exactly what a process death at this
// moment would leave; reopen with OpenDurableTable to recover.
func (t *Table) Kill() {
	d := t.dur
	if d == nil {
		return
	}
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.stopWorker()
	d.closeFiles()
}

// logInsert appends one insert to the owning shard's WAL. Called with
// the shard (and stripe) locks held, after every validation that could
// fail the in-memory apply — so a logged mutation always applies.
func (d *durableTable) logInsert(si int, rec Record, payload []byte) error {
	if d.closed.Load() {
		return ErrTableClosed
	}
	return d.append(si, encodeInsertOp(rec.ID, rec.Loc, payload))
}

// logDelete appends one delete to the owning shard's WAL.
func (d *durableTable) logDelete(si int, id uint64, loc geom.Point) error {
	if d.closed.Load() {
		return ErrTableClosed
	}
	return d.append(si, encodeDeleteOp(id, loc))
}

// logBatch appends one opBatch record per involved shard and then the
// batch's opCommit record to the table-level batch log, all under the
// already-held shard locks. If any append — frame or commit — fails,
// the batch is marked failed: frames already written are skipped by
// Flush, and recovery drops them because no commit survives. Only a
// durable commit makes the batch recoverable, and only a successful
// return applies it, so the in-memory, on-disk, and acknowledged
// outcomes always agree.
func (d *durableTable) logBatch(involved []int, byShard [][]int, recs []Record, payloads [][]byte) error {
	if d.closed.Load() {
		return ErrTableClosed
	}
	id := d.batchID.Add(1)
	for _, si := range involved {
		idxs := byShard[si]
		part := make([]Record, len(idxs))
		parts := make([][]byte, len(idxs))
		for j, ri := range idxs {
			part[j] = recs[ri]
			parts[j] = payloads[ri]
		}
		if err := d.append(si, encodeBatchOp(id, len(involved), part, parts)); err != nil {
			d.markFailedBatch(id)
			return err
		}
	}
	if err := d.appendCommit(id); err != nil {
		d.markFailedBatch(id)
		return err
	}
	return nil
}

// appendCommit writes the batch's commit record, honoring SyncAppends.
func (d *durableTable) appendCommit(id uint64) error {
	d.batchMu.Lock()
	defer d.batchMu.Unlock()
	if err := d.batchLog.Append(encodeCommitOp(id)); err != nil {
		return err
	}
	if d.opts.SyncAppends {
		return d.batchLog.Sync()
	}
	return nil
}

// maybeTruncateBatchLog restarts the batch-commit log when no shard WAL
// holds frames any more — every batch the commits could vouch for is
// sealed into runs, so the commits are dead weight. batchMu excludes a
// concurrent commit append; a batch mid-flight has frames in some shard
// WAL (appended before its commit), so the Records check keeps its
// commit safe.
func (d *durableTable) maybeTruncateBatchLog() error {
	d.batchMu.Lock()
	defer d.batchMu.Unlock()
	for _, ds := range d.shards {
		if ds.log.Records() != 0 {
			return nil
		}
	}
	if d.batchLog.Records() == 0 {
		return nil
	}
	if err := d.batchLog.Sync(); err != nil {
		return err
	}
	return d.batchLog.Truncate()
}

// append writes one WAL record, honoring the SyncAppends policy.
func (d *durableTable) append(si int, rec []byte) error {
	ds := d.shards[si]
	if err := ds.log.Append(rec); err != nil {
		return err
	}
	if d.opts.SyncAppends {
		return ds.log.Sync()
	}
	return nil
}

// cellCodeOf is the canonical merge key of a location within its
// shard: the Morton code of its cell at the deepest encodable grid.
// Every run of a shard keys entries this way, so entries from any mix
// of snapshots merge in one total order. The shard's precomputed coder
// takes the single-division fast path on dyadic shard extents.
func cellCodeOf(s *shard, p geom.Point) uint64 {
	return s.coder.Code(p)
}
