package spatialdb

// Flush, disk compaction, and the graceful-close checkpoint: the paths
// that seal a shard's WAL tail into immutable run files. All three
// hold the shard's flushMu (serializing against each other) and the
// shard's tree read lock (excluding writers, so the WAL is stable and
// the tree matches it) for the fold-seal-truncate window; queries keep
// running throughout.
//
// The sealing order is the recovery invariant: the run file is fully
// durable — fsynced under its final name, directory synced — before
// the WAL it covers is truncated. A crash between the two leaves both
// the run and the WAL; replaying the WAL over the run is idempotent
// (inserts last-win on their location, deletes of absent locations are
// no-ops), so the double-covered window is harmless.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/segment"
)

// Flush folds every shard's WAL into a sealed delta run and truncates
// the log. Shards with empty WALs are untouched. Concurrent queries
// proceed; writers to a shard wait only while that shard seals.
func (t *Table) Flush() error {
	if t.dur == nil {
		return nil
	}
	var firstErr error
	for si := range t.shards {
		if err := t.flushShard(si); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := t.dur.maybeTruncateBatchLog(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// flushShard seals one shard's WAL tail into a delta run. A lazy shard
// takes the write lock — the seal clears its tail map — where an eager
// one needs only the read lock to hold the WAL stable.
func (t *Table) flushShard(si int) error {
	ds := t.dur.shards[si]
	ds.flushMu.Lock()
	defer ds.flushMu.Unlock()
	s := t.shards[si]
	if t.dur.lazy {
		s.mu.Lock() //popvet:allow lockdiscipline -- single shard si: the two sites are the exclusive lazy/eager branch, never two shards held
		defer s.mu.Unlock()
	} else {
		s.mu.RLock()
		defer s.mu.RUnlock()
	}
	return t.sealWALLocked(si)
}

// sealWALLocked folds the WAL into a delta run and truncates it. The
// caller holds the shard's flushMu and tree read lock.
func (t *Table) sealWALLocked(si int) error {
	ds := t.dur.shards[si]
	if ds.log.Records() == 0 {
		return nil
	}
	entries, err := t.foldWAL(si)
	if err != nil {
		return fmt.Errorf("spatialdb: flush %q shard %d: %w", t.name, si, err)
	}
	if len(entries) == 0 {
		// Every record belonged to a failed batch; nothing to seal, but
		// the WAL can restart empty.
		return ds.truncateWAL()
	}
	s := t.shards[si]
	seq := ds.seq + 1
	path := t.dur.runPath(si, seq)
	meta := segment.Meta{
		Kind:   segment.Delta,
		Shard:  uint32(si),
		Seq:    seq,
		Region: s.region,
		Depth:  linearquad.MaxDepth,
	}
	if err := segment.Write(path, meta, nil, nil, entries, t.dur.inj); err != nil {
		return fmt.Errorf("spatialdb: flush %q shard %d: %w", t.name, si, err)
	}
	ds.seq = seq
	ds.runs = append(ds.runs, runFile{path: path, seq: seq, kind: segment.Delta})
	if t.dur.lazy {
		// Publish the run to the serving stack before dropping the tail
		// it supersedes; a query pinning between the two sees the run and
		// possibly a stale tail copy, which newest-wins merging collapses
		// to the same entries. (The caller holds the write lock, so no
		// query actually interleaves here — the order is for reading.)
		or, oerr := t.dur.openRunReader(path, seq, segment.Delta)
		if oerr != nil {
			// The run is durable but not yet serving: leave the tail and
			// WAL in place — both still cover the records, and replaying
			// the WAL over the run at the next open is idempotent.
			return fmt.Errorf("spatialdb: flush %q shard %d: %w", t.name, si, oerr)
		}
		ds.pushStack(or)
		clear(s.tail)
	}
	return ds.truncateWAL()
}

// truncateWAL restarts the WAL empty once a sealed run covers it.
func (ds *durableShard) truncateWAL() error {
	if err := ds.log.Sync(); err != nil {
		return err
	}
	return ds.log.Truncate()
}

// foldWAL replays the shard's WAL into sorted run entries: for each
// location the last operation wins — a surviving insert becomes an
// entry, a surviving delete a tombstone. Frames of failed batches are
// skipped (see durableTable.failedBatches).
func (t *Table) foldWAL(si int) ([]segment.Entry, error) {
	s := t.shards[si]
	type lastOp struct {
		rec  Record
		tomb bool
	}
	state := map[geom.Point]lastOp{}
	apply := func(op walOp) {
		switch op.op {
		case opInsert:
			state[op.loc] = lastOp{rec: Record{ID: op.id, Loc: op.loc, Data: op.data}}
		case opDelete:
			state[op.loc] = lastOp{rec: Record{ID: op.id, Loc: op.loc}, tomb: true}
		case opBatch:
			for _, r := range op.batch.recs {
				state[r.Loc] = lastOp{rec: r}
			}
		}
	}
	_, err := t.dur.shards[si].log.Fold(func(payload []byte) error {
		op, err := decodeOp(payload)
		if err != nil {
			return err
		}
		if op.op == opBatch && t.dur.batchFailed(op.batch.id) {
			return nil
		}
		apply(op)
		return nil
	})
	if err != nil {
		return nil, err
	}
	entries := make([]segment.Entry, 0, len(state))
	for loc, o := range state {
		e := segment.Entry{
			Code:      cellCodeOf(s, loc),
			ID:        o.rec.ID,
			X:         loc.X,
			Y:         loc.Y,
			Tombstone: o.tomb,
		}
		if !o.tomb {
			payload, perr := encodePayload(o.rec.Data)
			if perr != nil {
				// Unreachable: payloads were validated before logging.
				return nil, perr
			}
			e.Payload = payload
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Less(entries[b]) })
	return entries, nil
}

// CompactDisk seals every shard's WAL and then k-way-merges each
// shard's run ladder into a single full run, deleting the superseded
// files. An injected CompactionInterrupted fault returns after the
// merged run is durable but before the old runs are deleted — the
// state every crash-at-that-point leaves — and recovery ignores the
// stale runs because the merged run supersedes them by sequence.
func (t *Table) CompactDisk() error {
	if t.dur == nil {
		return nil
	}
	var firstErr error
	for si := range t.shards {
		if err := t.compactShardDisk(si); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := t.dur.maybeTruncateBatchLog(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// compactShardDisk merges one shard's runs into a single full run.
func (t *Table) compactShardDisk(si int) error {
	ds := t.dur.shards[si]
	ds.flushMu.Lock()
	defer ds.flushMu.Unlock()
	s := t.shards[si]
	var err error
	if t.dur.lazy {
		s.mu.Lock() //popvet:allow lockdiscipline -- single shard si: the two sites are the exclusive lazy/eager branch, never two shards held
		err = t.sealWALLocked(si)
		s.mu.Unlock()
	} else {
		s.mu.RLock()
		err = t.sealWALLocked(si)
		s.mu.RUnlock()
	}
	if err != nil {
		return err
	}
	if len(ds.runs) <= 1 && (len(ds.runs) == 0 || ds.runs[0].kind == segment.Full) {
		return nil // already a single full run (or nothing at all)
	}
	// Merge from the newest full run onward. Runs below it are fully
	// shadowed — a crash mid-cleanup can leave any subset of them behind
	// — and folding one back in could resurrect a key that a shadowing
	// delta deleted and the full run therefore lacks. Cleanup below still
	// removes every superseded file.
	start := 0
	for i, rf := range ds.runs {
		if rf.kind == segment.Full {
			start = i
		}
	}
	// Runs are immutable once sealed, so the merge needs no table locks.
	live := ds.runs[start:]
	runEntries := make([][]segment.Entry, 0, len(live))
	for _, rf := range live {
		r, err := segment.Read(rf.path)
		if err != nil {
			return fmt.Errorf("spatialdb: compact %q shard %d: %w", t.name, si, err)
		}
		runEntries = append(runEntries, r.Entries)
	}
	merged := segment.Merge(runEntries...)
	seq := ds.seq + 1
	path := t.dur.runPath(si, seq)
	meta := segment.Meta{
		Kind:   segment.Full,
		Shard:  uint32(si),
		Seq:    seq,
		Region: s.region,
		Depth:  linearquad.MaxDepth,
	}
	if err := segment.Write(path, meta, nil, nil, merged, t.dur.inj); err != nil {
		return fmt.Errorf("spatialdb: compact %q shard %d: %w", t.name, si, err)
	}
	old := ds.runs
	ds.seq = seq
	ds.runs = []runFile{{path: path, seq: seq, kind: segment.Full}}
	if t.dur.lazy {
		or, oerr := t.dur.openRunReader(path, seq, segment.Full)
		if oerr != nil {
			return fmt.Errorf("spatialdb: compact %q shard %d: %w", t.name, si, oerr)
		}
		// Swap the serving stack to the merged run and retire the old
		// readers: each closes when its last pinned query releases it,
		// and POSIX keeps the unlinked files readable until then.
		closeRuns(ds.swapStack(or))
	}
	if t.dur.inj.Fire(faultinject.CompactionInterrupted) {
		// Crash window: the merged run is durable, the old files are not
		// yet deleted. Recovery takes the newest full run and ignores the
		// superseded ones, so we keep running with the same view.
		return fmt.Errorf("spatialdb: compact %q shard %d: %w at %s",
			t.name, si, faultinject.ErrInjected, faultinject.CompactionInterrupted)
	}
	for _, rf := range old {
		if err := os.Remove(rf.path); err != nil {
			return fmt.Errorf("spatialdb: compact %q shard %d: %w", t.name, si, err)
		}
	}
	return segment.SyncDir(t.dur.dir)
}

// checkpointShard seals the shard's full state — frozen snapshot, leaf
// index included — as one full run, truncates the WAL, and deletes the
// superseded runs. Used by Close so a clean reopen can republish the
// lock-free snapshot without re-freezing. If the shard cannot be frozen
// (linearquad.ErrTooDeep), it falls back to sealing just the WAL tail,
// which is durable but republishes nothing.
func (t *Table) checkpointShard(si int) error {
	ds := t.dur.shards[si]
	ds.flushMu.Lock()
	defer ds.flushMu.Unlock()
	s := t.shards[si]
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, err := s.frozenLocked()
	if err != nil {
		return t.sealWALLocked(si)
	}
	entries, err := entriesFromFrozen(s, f)
	if err != nil {
		return fmt.Errorf("spatialdb: checkpoint %q shard %d: %w", t.name, si, err)
	}
	seq := ds.seq + 1
	path := t.dur.runPath(si, seq)
	meta := segment.Meta{
		Kind:   segment.Full,
		Shard:  uint32(si),
		Seq:    seq,
		Region: s.region,
		Depth:  f.Depth(),
	}
	if err := segment.Write(path, meta, f.Codes(), f.Starts(), entries, t.dur.inj); err != nil {
		return fmt.Errorf("spatialdb: checkpoint %q shard %d: %w", t.name, si, err)
	}
	old := ds.runs
	ds.seq = seq
	ds.runs = []runFile{{path: path, seq: seq, kind: segment.Full}}
	if err := ds.truncateWAL(); err != nil {
		return err
	}
	for _, rf := range old {
		if err := os.Remove(rf.path); err != nil {
			return fmt.Errorf("spatialdb: checkpoint %q shard %d: %w", t.name, si, err)
		}
	}
	return segment.SyncDir(t.dur.dir)
}

// entriesFromFrozen converts a frozen snapshot's flat entry array into
// run entries sorted by the canonical (code, x, y) key. Max-depth cell
// codes refine the leaf grid without reordering it, so the sort
// permutes entries only within leaves and the snapshot's leaf-index
// planes (codes, starts) remain exact over the sorted array — which is
// what lets recovery rebuild the Frozen via FromParts.
func entriesFromFrozen(s *shard, f *linearquad.Frozen[Record]) ([]segment.Entry, error) {
	xs, ys := f.XYs()
	vals := f.Values()
	entries := make([]segment.Entry, len(xs))
	for i := range xs {
		payload, err := encodePayload(vals[i].Data)
		if err != nil {
			return nil, err
		}
		entries[i] = segment.Entry{
			Code:    s.coder.Code(geom.Pt(xs[i], ys[i])),
			ID:      vals[i].ID,
			X:       xs[i],
			Y:       ys[i],
			Payload: payload,
		}
	}
	sort.Slice(entries, func(a, b int) bool { return entries[a].Less(entries[b]) })
	return entries, nil
}

// --- manifest ---

// manifest pins the table shape the on-disk runs are keyed by.
type manifest struct {
	name      string
	capacity  int
	shardBits int
	snapEvery uint64
	region    geom.Rect
}

const manifestName = "MANIFEST"

var manifestMagic = [6]byte{'P', 'Q', 'M', 'A', 'N', 1}

// writeManifest serializes the manifest atomically.
func writeManifest(path string, m manifest) error {
	b := append([]byte(nil), manifestMagic[:]...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.name)))
	b = append(b, m.name...)
	b = binary.LittleEndian.AppendUint32(b, uint32(m.capacity))
	b = binary.LittleEndian.AppendUint32(b, uint32(m.shardBits))
	b = binary.LittleEndian.AppendUint64(b, m.snapEvery)
	for _, f := range [4]float64{m.region.MinX, m.region.MinY, m.region.MaxX, m.region.MaxY} {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crc32.MakeTable(crc32.Castagnoli)))
	return segment.WriteAtomic(path, b)
}

// readManifest inverts writeManifest.
func readManifest(path string) (manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	if len(b) < len(manifestMagic)+2+4+4+8+32+4 {
		return manifest{}, fmt.Errorf("manifest truncated (%d bytes)", len(b))
	}
	if [6]byte(b[:6]) != manifestMagic {
		return manifest{}, fmt.Errorf("bad manifest magic")
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.Checksum(body, crc32.MakeTable(crc32.Castagnoli)) != sum {
		return manifest{}, fmt.Errorf("manifest checksum mismatch")
	}
	nameLen := int(binary.LittleEndian.Uint16(body[6:8]))
	rest := body[8:]
	if len(rest) != nameLen+4+4+8+32 {
		return manifest{}, fmt.Errorf("manifest length mismatch")
	}
	m := manifest{name: string(rest[:nameLen])}
	rest = rest[nameLen:]
	m.capacity = int(binary.LittleEndian.Uint32(rest[0:4]))
	m.shardBits = int(binary.LittleEndian.Uint32(rest[4:8]))
	m.snapEvery = binary.LittleEndian.Uint64(rest[8:16])
	m.region = geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(rest[16:24])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(rest[24:32])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(rest[32:40])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(rest[40:48])),
	}
	return m, nil
}
