package spatialdb

import (
	"math"
	"testing"

	"popana/internal/dist"
	"popana/internal/geom"
	"popana/internal/xrand"
)

func fill(t *testing.T, tab *Table, n int, seed uint64) []Record {
	t.Helper()
	rng := xrand.New(seed)
	src := dist.NewUniform(geom.UnitSquare, rng)
	recs := make([]Record, 0, n)
	for len(recs) < n {
		rec := Record{ID: uint64(len(recs)), Loc: src.Next(), Data: len(recs)}
		if err := tab.Insert(rec); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec)
	}
	return recs
}

func TestCreateInsertGetDelete(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("cities", 8, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	recs := fill(t, tab, 500, 1)
	if tab.Len() != 500 {
		t.Fatalf("Len = %d", tab.Len())
	}
	for _, r := range recs {
		got, ok := tab.Get(r.ID)
		if !ok || got.ID != r.ID || got.Loc != r.Loc {
			t.Fatalf("Get(%d) = %+v, %v", r.ID, got, ok)
		}
	}
	if _, ok := tab.Get(99999); ok {
		t.Fatal("found absent id")
	}
	if !tab.Delete(recs[0].ID) {
		t.Fatal("delete failed")
	}
	if _, ok := tab.Get(recs[0].ID); ok {
		t.Fatal("record present after delete")
	}
	if tab.Delete(recs[0].ID) {
		t.Fatal("double delete succeeded")
	}
	if tab.Len() != 499 {
		t.Fatalf("Len = %d after delete", tab.Len())
	}
}

func TestInsertConflicts(t *testing.T) {
	db := NewDB()
	tab, err := db.CreateTable("t", 4, geom.UnitSquare)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{ID: 1, Loc: geom.Pt(0.5, 0.5)}
	if err := tab.Insert(rec); err != nil {
		t.Fatal(err)
	}
	if err := tab.Insert(Record{ID: 1, Loc: geom.Pt(0.1, 0.1)}); err == nil {
		t.Fatal("duplicate id accepted")
	}
	if err := tab.Insert(Record{ID: 2, Loc: geom.Pt(0.5, 0.5)}); err == nil {
		t.Fatal("duplicate location accepted")
	}
	if err := tab.Insert(Record{ID: 3, Loc: geom.Pt(5, 5)}); err == nil {
		t.Fatal("out-of-region accepted")
	}
}

func TestDBTableManagement(t *testing.T) {
	db := NewDB()
	if _, err := db.CreateTable("a", 4, geom.UnitSquare); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", 4, geom.UnitSquare); err == nil {
		t.Fatal("duplicate table accepted")
	}
	if _, err := db.CreateTable("b", 0, geom.UnitSquare); err == nil {
		t.Fatal("bad capacity accepted")
	}
	if _, err := db.Table("missing"); err == nil {
		t.Fatal("missing table returned")
	}
	if _, err := db.CreateTable("b", 2, geom.UnitSquare); err != nil {
		t.Fatal(err)
	}
	names := db.Tables()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tables %v", names)
	}
	if err := db.DropTable("a"); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("a"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func TestWindowSelect(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	recs := fill(t, tab, 800, 2)
	w := geom.R(0.2, 0.2, 0.6, 0.6)
	out, cost, err := tab.Select(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range recs {
		if w.ContainsClosed(r.Loc) {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("window select: %d, want %d", len(out), want)
	}
	if cost.NodesVisited == 0 || cost.LeavesVisited == 0 || cost.RecordsScanned < want {
		t.Fatalf("cost %+v implausible", cost)
	}
	// Pruning: a small window must not scan the whole table.
	small := geom.R(0.4, 0.4, 0.45, 0.45)
	_, cost2, err := tab.Select(Query{Window: &small})
	if err != nil {
		t.Fatal(err)
	}
	if cost2.RecordsScanned > tab.Len()/4 {
		t.Fatalf("small window scanned %d of %d records", cost2.RecordsScanned, tab.Len())
	}
}

func TestFilterApplied(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	fill(t, tab, 300, 3)
	w := geom.UnitSquare
	out, _, err := tab.Select(Query{
		Window: &w,
		Filter: func(r Record) bool { return r.ID%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out {
		if r.ID%2 != 0 {
			t.Fatalf("filter leaked record %d", r.ID)
		}
	}
	if len(out) != 150 {
		t.Fatalf("filtered count %d", len(out))
	}
}

func TestNearestSelect(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	recs := fill(t, tab, 400, 4)
	at := geom.Pt(0.3, 0.7)
	out, _, err := tab.Select(Query{Nearest: &NearestSpec{At: at, K: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 5 {
		t.Fatalf("nearest returned %d", len(out))
	}
	// Verify against brute force.
	best := math.Inf(1)
	for _, r := range recs {
		if d := r.Loc.Dist2(at); d < best {
			best = d
		}
	}
	if out[0].Loc.Dist2(at) != best {
		t.Fatalf("nearest[0] at %v, brute force %v", out[0].Loc.Dist2(at), best)
	}
	for i := 1; i < len(out); i++ {
		if out[i-1].Loc.Dist2(at) > out[i].Loc.Dist2(at) {
			t.Fatal("nearest not sorted")
		}
	}
}

func TestWithinSelect(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	recs := fill(t, tab, 600, 5)
	at, radius := geom.Pt(0.5, 0.5), 0.2
	out, _, err := tab.Select(Query{Within: &WithinSpec{At: at, Radius: radius}})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, r := range recs {
		if r.Loc.Dist(at) <= radius {
			want++
		}
	}
	if len(out) != want {
		t.Fatalf("within: %d, want %d", len(out), want)
	}
	for _, r := range out {
		if r.Loc.Dist(at) > radius+1e-12 {
			t.Fatalf("record outside radius: %v", r.Loc)
		}
	}
}

func TestQueryValidation(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	if _, _, err := tab.Select(Query{}); err == nil {
		t.Fatal("empty query accepted")
	}
	w := geom.UnitSquare
	if _, _, err := tab.Select(Query{Window: &w, Nearest: &NearestSpec{At: geom.Pt(0, 0), K: 1}}); err == nil {
		t.Fatal("two predicates accepted")
	}
	if _, _, err := tab.Select(Query{Nearest: &NearestSpec{K: 0}}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, _, err := tab.Select(Query{Within: &WithinSpec{Radius: 0}}); err == nil {
		t.Fatal("radius 0 accepted")
	}
	if _, err := tab.Explain(Query{}); err == nil {
		t.Fatal("explain of empty query accepted")
	}
}

func TestExplainTracksMeasuredCost(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 8, geom.UnitSquare)
	fill(t, tab, 4000, 6)
	for _, side := range []float64{0.1, 0.3, 0.6} {
		w := geom.R(0.2, 0.2, 0.2+side, 0.2+side)
		est, err := tab.Explain(Query{Window: &w})
		if err != nil {
			t.Fatal(err)
		}
		_, cost, err := tab.Select(Query{Window: &w})
		if err != nil {
			t.Fatal(err)
		}
		// The estimate must be within a factor of 2.5 of reality (it
		// is a planner statistic, not an oracle).
		ratio := est.Blocks / float64(cost.LeavesVisited)
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("side %v: estimated %v blocks, measured %d (ratio %v)",
				side, est.Blocks, cost.LeavesVisited, ratio)
		}
		rratio := est.Records / float64(cost.RecordsScanned)
		if rratio < 0.4 || rratio > 2.5 {
			t.Errorf("side %v: estimated %v records, measured %d", side, est.Records, cost.RecordsScanned)
		}
	}
}

func TestExplainEdgeCases(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 4, geom.UnitSquare)
	w := geom.UnitSquare
	est, err := tab.Explain(Query{Window: &w})
	if err != nil {
		t.Fatal(err)
	}
	if est.Blocks != 0 {
		t.Fatalf("empty table estimate %+v", est)
	}
	fill(t, tab, 100, 7)
	// Window outside the region.
	out := geom.R(2, 2, 3, 3)
	est, err = tab.Explain(Query{Window: &out})
	if err != nil {
		t.Fatal(err)
	}
	if est.Blocks != 0 {
		t.Fatalf("outside window estimate %+v", est)
	}
	// Nearest and within estimates exist.
	if est, err = tab.Explain(Query{Nearest: &NearestSpec{At: geom.Pt(0.5, 0.5), K: 3}}); err != nil || est.Records <= 0 {
		t.Fatalf("nearest estimate %+v err %v", est, err)
	}
	if est, err = tab.Explain(Query{Within: &WithinSpec{At: geom.Pt(0.5, 0.5), Radius: 0.1}}); err != nil || est.Blocks <= 0 {
		t.Fatalf("within estimate %+v err %v", est, err)
	}
}

func TestStats(t *testing.T) {
	db := NewDB()
	tab, _ := db.CreateTable("t", 8, geom.UnitSquare)
	fill(t, tab, 2000, 8)
	s := tab.Stats()
	if s.Records != 2000 || s.Blocks == 0 || s.Height == 0 {
		t.Fatalf("stats %+v", s)
	}
	// Measured occupancy within the documented band of the model.
	if math.Abs(s.ModelOccupancy-s.MeasuredOccupancy)/s.MeasuredOccupancy > 0.25 {
		t.Errorf("occupancy %v vs model %v", s.MeasuredOccupancy, s.ModelOccupancy)
	}
}
