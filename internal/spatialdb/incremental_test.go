package spatialdb

import (
	"errors"
	"testing"

	"popana/internal/dist"
	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/xrand"
)

// requireShardSnapshotExact asserts that a shard's published snapshot
// is bit-identical — codes, starts, coordinate planes, record IDs — to
// a from-scratch freeze of its live tree. This is the incremental
// rebuild's whole contract: splicing clean runs from the previous
// snapshot must be indistinguishable from rewalking the tree.
func requireShardSnapshotExact(t *testing.T, si int, s *shard) {
	t.Helper()
	s.mu.RLock()
	defer s.mu.RUnlock()
	f, _ := s.loadFresh()
	if f == nil {
		t.Fatalf("shard %d: no fresh snapshot after compact", si)
	}
	want, err := linearquad.Freeze(s.index)
	if err != nil {
		t.Fatalf("shard %d: reference freeze: %v", si, err)
	}
	if f.Region() != want.Region() || f.Depth() != want.Depth() {
		t.Fatalf("shard %d header: (%v, %d) vs (%v, %d)",
			si, f.Region(), f.Depth(), want.Region(), want.Depth())
	}
	gc, wc := f.Codes(), want.Codes()
	gs, ws := f.Starts(), want.Starts()
	if len(gc) != len(wc) {
		t.Fatalf("shard %d: %d leaves vs %d", si, len(gc)-1, len(wc)-1)
	}
	for i := range gc {
		if gc[i] != wc[i] || gs[i] != ws[i] {
			t.Fatalf("shard %d leaf %d: (code %d, start %d) vs (code %d, start %d)",
				si, i, gc[i], gs[i], wc[i], ws[i])
		}
	}
	gx, gy := f.XYs()
	wx, wy := want.XYs()
	gv, wv := f.Values(), want.Values()
	if len(gx) != len(wx) {
		t.Fatalf("shard %d: %d entries vs %d", si, len(gx), len(wx))
	}
	for k := range gx {
		if gx[k] != wx[k] || gy[k] != wy[k] || gv[k].ID != wv[k].ID {
			t.Fatalf("shard %d entry %d: (%v, %v, id %d) vs (%v, %v, id %d)",
				si, k, gx[k], gy[k], gv[k].ID, wx[k], wy[k], wv[k].ID)
		}
	}
}

// TestIncrementalCompactMatchesFullFreeze churns a sharded table
// through rounds of clustered inserts, deletes, and batch inserts, and
// after every Compact checks each shard's published snapshot against a
// from-scratch Freeze of its live tree. Midway it arms the
// SnapshotRebuild fault point to prove a failed rebuild keeps the
// dirty marks and the next successful rebuild is still exact.
func TestIncrementalCompactMatchesFullFreeze(t *testing.T) {
	inj := faultinject.New(11)
	db := NewDB()
	db.SetFaultInjector(inj)
	tab, err := db.CreateTableWith("inc", TableOptions{Capacity: 4, ShardBits: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(42)
	src := dist.NewClusters(geom.UnitSquare, 6, 0.03, rng.Split())
	seen := map[geom.Point]bool{}
	recs := make([]Record, 0, 6000)
	for len(recs) < 6000 {
		p := src.Next()
		if seen[p] {
			continue
		}
		seen[p] = true
		recs = append(recs, Record{ID: uint64(len(recs)), Loc: p})
	}
	if err := tab.InsertBatch(recs); err != nil {
		t.Fatal(err)
	}
	live := make([]Record, len(recs))
	copy(live, recs)
	nextID := uint64(len(recs))

	for round := 0; round < 10; round++ {
		if round == 5 {
			// One injected rebuild failure: Compact surfaces it, marks
			// stay, and the shard serves live until the next round.
			inj.EnableN(faultinject.SnapshotRebuild, 1.0, 1)
			if err := tab.Compact(); !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("round %d: Compact error = %v, want injected fault", round, err)
			}
		}
		// Clustered churn around one focus, plus a scattered batch.
		fx, fy := rng.Float64(), rng.Float64()
		for m := 0; m < 60; m++ {
			if rng.Uint64()%2 == 0 || len(live) == 0 {
				p := geom.Pt(
					clamp01(fx+(rng.Float64()-0.5)*0.04),
					clamp01(fy+(rng.Float64()-0.5)*0.04),
				)
				if seen[p] {
					continue
				}
				seen[p] = true
				if err := tab.Insert(Record{ID: nextID, Loc: p}); err != nil {
					t.Fatal(err)
				}
				live = append(live, Record{ID: nextID, Loc: p})
				nextID++
			} else {
				i := int(rng.Uint64() % uint64(len(live)))
				if !tab.Delete(live[i].ID) {
					t.Fatalf("round %d: live record %d missing", round, live[i].ID)
				}
				delete(seen, live[i].Loc)
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		batch := make([]Record, 0, 20)
		for len(batch) < 20 {
			p := src.Next()
			if seen[p] {
				continue
			}
			seen[p] = true
			batch = append(batch, Record{ID: nextID, Loc: p})
			nextID++
		}
		if err := tab.InsertBatch(batch); err != nil {
			t.Fatal(err)
		}
		live = append(live, batch...)

		if err := tab.Compact(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for si, s := range tab.shards {
			requireShardSnapshotExact(t, si, s)
		}
		// The snapshot-served query results match the ground truth.
		w := 0.05 + rng.Float64()*0.3
		x, y := rng.Float64(), rng.Float64()
		window := geom.R(x-w/2, y-w/2, x+w/2, y+w/2)
		want := 0
		for _, r := range live {
			if window.Contains(r.Loc) {
				want++
			}
		}
		if n, _, err := tab.CountRange(window, 0); err != nil || n != want {
			t.Fatalf("round %d window %v: CountRange (%d, %v), want %d", round, window, n, err, want)
		}
	}
	if inj.Fired(faultinject.SnapshotRebuild) != 1 {
		t.Fatalf("SnapshotRebuild fired %d times, want 1", inj.Fired(faultinject.SnapshotRebuild))
	}
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}
