package spatialdb

// The disk read path of a lazy durable table: Select, CountRange, and
// nearest answered by streaming a k-way merged cursor over each pinned
// shard's run stack plus its WAL-tail delta, jumping over Z-interval
// gaps with BIGMIN so a window scan loads O(matching blocks) rather
// than the whole interval. A query pins its shards once (stack
// references plus a folded tail snapshot, taken under the shard read
// locks so a cross-shard batch can never be seen half-applied), then
// scans entirely lock-free — flushes and compactions proceed
// underneath, and the pinned readers stay valid until the query
// releases them.

import (
	"fmt"
	"math"
	"sort"

	"popana/internal/faultinject"
	"popana/internal/geom"
	"popana/internal/linearquad"
	"popana/internal/quadtree"
	"popana/internal/segment"
)

// shardView is one shard's pinned, immutable query view: the run stack
// with references held plus the tail folded to sorted entries.
type shardView struct {
	s    *shard
	runs []*openRun
	tail []segment.Entry
}

// shardIndicesOverlapping returns the indices of shards whose cell
// touches the closed query rectangle, ascending (see shardsOverlapping
// for the predicate contract).
func (t *Table) shardIndicesOverlapping(query geom.Rect) []int {
	out := make([]int, 0, 4)
	for si, s := range t.shards {
		if s.region.OverlapsClosed(query) {
			out = append(out, si)
		}
	}
	return out
}

// pinShards takes a consistent cut of the given shards for a disk
// query: under every target's read lock (ascending, the table-wide
// order) it folds each tail to sorted entries and acquires each run
// stack. A cross-shard InsertBatch holds all its write locks until the
// last sub-batch lands, so the cut can never straddle a batch. The
// locks are released before scanning; the returned views are immutable.
func (t *Table) pinShards(sis []int) []shardView {
	shards := make([]*shard, len(sis))
	for i, si := range sis {
		shards[i] = t.shards[si]
	}
	rlockShards(shards)
	views := make([]shardView, len(sis))
	for i, si := range sis {
		s := t.shards[si]
		views[i] = shardView{s: s, runs: t.dur.shards[si].acquireStack(), tail: tailEntries(s)}
	}
	runlockShards(shards)
	return views
}

// releaseViews drops the query's run references.
func releaseViews(views []shardView) {
	for _, v := range views {
		releaseRuns(v.runs)
	}
}

// tailEntries folds the shard's tail map to sorted run entries,
// tombstones included — the same shape a flush would seal, so the
// merged cursor treats the tail as the newest delta. The caller holds
// the shard's read lock.
func tailEntries(s *shard) []segment.Entry {
	if len(s.tail) == 0 {
		return nil
	}
	es := make([]segment.Entry, 0, len(s.tail))
	for loc, tr := range s.tail {
		e := segment.Entry{
			Code:      cellCodeOf(s, loc),
			ID:        tr.rec.ID,
			X:         loc.X,
			Y:         loc.Y,
			Tombstone: tr.tomb,
		}
		if !tr.tomb {
			payload, err := encodePayload(tr.rec.Data)
			if err != nil {
				continue // unreachable: payloads were validated before logging
			}
			e.Payload = payload
		}
		es = append(es, e)
	}
	sort.Slice(es, func(a, b int) bool { return es[a].Less(es[b]) })
	return es
}

// fireCursorSeal drives the DiskCursorSeal chaos point: when armed, it
// seals every target shard's WAL tail into a delta run after the query
// pinned its view — the schedule where a cursor mid-merge must keep
// serving the pinned state while the ladder grows underneath it. Called
// with no locks held.
func (t *Table) fireCursorSeal(sis []int) {
	if !t.inj.Fire(faultinject.DiskCursorSeal) {
		return
	}
	for _, si := range sis {
		// Best-effort, like the background worker: a failed seal leaves
		// the WAL covering its records.
		_ = t.flushShard(si)
	}
}

// scanZRange streams one pinned shard view over the Z-interval of box,
// delivering every entry whose grid cell lies inside the box's cell
// rectangle to visit (which applies the exact floating-point
// predicate). Each pinned run's Morton-prefix filter is consulted over
// the interval first: a run the filter excludes joins no cursor merge
// and loads no block (never-false-negative, so exclusion is exact).
// Entries between matching cells are skipped with BIGMIN jumps
// translated into cursor SeekGE calls, so whole blocks whose code span
// falls in a gap are never read. Cost mapping: NodesVisited counts
// merged entries examined, LeavesVisited blocks consulted,
// RecordsScanned candidates inside the cell rectangle. maxNodes > 0
// bounds the entries examined; exhaustion sets Truncated.
func (t *Table) scanZRange(v shardView, box geom.Rect, maxNodes int, visit func(segment.Entry) bool) (quadtree.RangeStats, error) {
	var st quadtree.RangeStats
	zmin := v.s.coder.Code(geom.Pt(box.MinX, box.MinY))
	zmax := v.s.coder.Code(geom.Pt(box.MaxX, box.MaxY))
	cxmin, cymin := linearquad.Deinterleave(zmin)
	cxmax, cymax := linearquad.Deinterleave(zmax)

	runCursors := make([]*segment.Cursor, 0, len(v.runs))
	cursors := make([]segment.EntryCursor, 0, len(v.runs)+1)
	pruned := 0
	for _, or := range v.runs {
		if !or.reader.MayContainRange(zmin, zmax) {
			pruned++
			continue
		}
		c := or.reader.Cursor()
		runCursors = append(runCursors, c)
		cursors = append(cursors, c)
	}
	t.dur.notePruning(pruned, len(runCursors))

	if len(v.tail) > 0 {
		cursors = append(cursors, segment.NewSliceCursor(v.tail))
	}
	m := segment.NewMergedCursor(cursors...)
	collect := func() {
		for _, c := range runCursors {
			st.LeavesVisited += c.Stats().BlocksLoaded
		}
	}
	e, ok, err := m.SeekGE(zmin)
	for {
		if err != nil {
			collect()
			return st, err
		}
		if !ok || e.Code > zmax {
			break
		}
		if maxNodes > 0 && st.NodesVisited >= maxNodes {
			st.Truncated = true
			break
		}
		st.NodesVisited++
		cx, cy := linearquad.Deinterleave(e.Code)
		if cx >= cxmin && cx <= cxmax && cy >= cymin && cy <= cymax {
			st.RecordsScanned++
			if !visit(e) {
				break
			}
			e, ok, err = m.Next()
			continue
		}
		// The cell is inside the Z-interval but outside the rectangle:
		// jump to the next code that is inside, or stop if none is left.
		next, okJump := linearquad.BigMin(e.Code, zmin, zmax)
		if !okJump {
			break
		}
		e, ok, err = m.SeekGE(next)
	}
	collect()
	return st, nil
}

// selectShardDisk runs the window or radius scan of q over one pinned
// view, delivering spatially matching decoded records to emit.
func (t *Table) selectShardDisk(v shardView, q Query, maxNodes int, emit func(Record)) (quadtree.RangeStats, error) {
	within := q.Within
	var r2 float64
	if within != nil {
		r2 = within.Radius * within.Radius
	}
	var verr error
	st, err := t.scanZRange(v, queryBox(q), maxNodes, func(e segment.Entry) bool {
		p := geom.Pt(e.X, e.Y)
		if q.Window != nil {
			if !q.Window.ContainsClosed(p) {
				return true
			}
		} else if p.Dist2(within.At) > r2 {
			return true
		}
		data, derr := decodePayload(e.Payload)
		if derr != nil {
			verr = derr
			return false
		}
		emit(Record{ID: e.ID, Loc: p, Data: data})
		return true
	})
	if err == nil {
		err = verr
	}
	return st, err
}

// selectLazy serves Select on a lazy table. Budgeted queries scan the
// pinned shards sequentially, handing down the leftover budget exactly
// like selectMultiLocked; unbudgeted queries fan out across the worker
// pool and merge in shard order, with Query.Filter running on the
// querying goroutine.
func (t *Table) selectLazy(q Query, keep func(Record) bool) ([]Record, Cost, error) {
	if q.Nearest != nil {
		return t.nearestDisk(*q.Nearest, keep)
	}
	box := queryBox(q)
	sis := t.shardIndicesOverlapping(box)
	if len(sis) == 0 {
		return nil, Cost{}, nil
	}
	views := t.pinShards(sis)
	defer releaseViews(views)
	t.fireCursorSeal(sis)
	var cost Cost
	if q.MaxNodes > 0 {
		var out []Record
		emit := func(r Record) {
			if keep(r) {
				out = append(out, r)
			}
		}
		remaining := q.MaxNodes
		for _, v := range views {
			if remaining <= 0 {
				cost.Truncated = true
				break
			}
			st, err := t.selectShardDisk(v, q, remaining, emit)
			addCost(&cost, st)
			if err != nil {
				return nil, cost, fmt.Errorf("spatialdb: select from %q: %w", t.name, err)
			}
			remaining -= st.NodesVisited
			if st.Truncated {
				break
			}
		}
		return out, cost, nil
	}
	n := len(views)
	outs := make([][]Record, n)
	stats := make([]quadtree.RangeStats, n)
	errs := make([]error, n)
	forShards(n, func(i int) {
		stats[i], errs[i] = t.selectShardDisk(views[i], q, 0, func(r Record) { outs[i] = append(outs[i], r) })
	})
	var out []Record
	for i := range outs {
		addCost(&cost, stats[i])
		if errs[i] != nil {
			return nil, cost, fmt.Errorf("spatialdb: select from %q: %w", t.name, errs[i])
		}
		for _, r := range outs[i] {
			if keep(r) {
				out = append(out, r)
			}
		}
	}
	return out, cost, nil
}

// countLazy serves CountRange on a lazy table with the same pinning,
// budget hand-down, and fan-out shapes as selectLazy, without decoding
// a single payload.
func (t *Table) countLazy(window geom.Rect, maxNodes int) (int, Cost, error) {
	sis := t.shardIndicesOverlapping(window)
	if len(sis) == 0 {
		return 0, Cost{}, nil
	}
	views := t.pinShards(sis)
	defer releaseViews(views)
	t.fireCursorSeal(sis)
	countShard := func(v shardView, budget int) (int, quadtree.RangeStats, error) {
		cnt := 0
		st, err := t.scanZRange(v, window, budget, func(e segment.Entry) bool {
			if window.ContainsClosed(geom.Pt(e.X, e.Y)) {
				cnt++
			}
			return true
		})
		return cnt, st, err
	}
	var cost Cost
	if maxNodes > 0 {
		cnt := 0
		remaining := maxNodes
		for _, v := range views {
			if remaining <= 0 {
				cost.Truncated = true
				break
			}
			c, st, err := countShard(v, remaining)
			cnt += c
			addCost(&cost, st)
			if err != nil {
				return 0, cost, fmt.Errorf("spatialdb: count in %q: %w", t.name, err)
			}
			remaining -= st.NodesVisited
			if st.Truncated {
				break
			}
		}
		return cnt, cost, nil
	}
	n := len(views)
	cnts := make([]int, n)
	stats := make([]quadtree.RangeStats, n)
	errs := make([]error, n)
	forShards(n, func(i int) {
		cnts[i], stats[i], errs[i] = countShard(views[i], 0)
	})
	cnt := 0
	for i := range cnts {
		addCost(&cost, stats[i])
		if errs[i] != nil {
			return 0, cost, fmt.Errorf("spatialdb: count in %q: %w", t.name, errs[i])
		}
		cnt += cnts[i]
	}
	return cnt, cost, nil
}

// nearestDisk serves a k-nearest query from the pinned views with an
// expanding-box search: scan a box around the query point, count the
// candidates confirmed by distance (d2 <= r² — no unseen point outside
// the box can beat a confirmed one, because anything outside is farther
// than r), and double the box until K are confirmed or the box covers
// the region. Results merge by (distance, x, y) — the same
// deterministic order as the in-memory multi-shard path — with
// Query.Filter applied after the top-K cut, matching selectNearest.
func (t *Table) nearestDisk(spec NearestSpec, keep func(Record) bool) ([]Record, Cost, error) {
	sis := make([]int, len(t.shards))
	for i := range sis {
		sis[i] = i
	}
	views := t.pinShards(sis)
	defer releaseViews(views)
	t.fireCursorSeal(sis)

	r0 := math.Max(t.region.MaxX-t.region.MinX, t.region.MaxY-t.region.MinY) / 64
	type cand struct {
		e  segment.Entry
		d2 float64
	}
	var cost Cost
	for r := r0; ; r *= 2 {
		box := geom.R(spec.At.X-r, spec.At.Y-r, spec.At.X+r, spec.At.Y+r)
		covers := box.MinX <= t.region.MinX && box.MinY <= t.region.MinY &&
			box.MaxX >= t.region.MaxX && box.MaxY >= t.region.MaxY
		r2 := r * r
		var cands []cand
		for _, v := range views {
			if !v.s.region.OverlapsClosed(box) {
				continue
			}
			st, err := t.scanZRange(v, box, 0, func(e segment.Entry) bool {
				p := geom.Pt(e.X, e.Y)
				if box.ContainsClosed(p) {
					cands = append(cands, cand{e, p.Dist2(spec.At)})
				}
				return true
			})
			addCost(&cost, st)
			if err != nil {
				return nil, cost, fmt.Errorf("spatialdb: select from %q: %w", t.name, err)
			}
		}
		confirmed := 0
		for _, c := range cands {
			if c.d2 <= r2 {
				confirmed++
			}
		}
		if confirmed < spec.K && !covers {
			continue
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].d2 != cands[j].d2 {
				return cands[i].d2 < cands[j].d2
			}
			if cands[i].e.X != cands[j].e.X {
				return cands[i].e.X < cands[j].e.X
			}
			return cands[i].e.Y < cands[j].e.Y
		})
		if len(cands) > spec.K {
			cands = cands[:spec.K]
		}
		out := make([]Record, 0, len(cands))
		for _, c := range cands {
			data, derr := decodePayload(c.e.Payload)
			if derr != nil {
				return nil, cost, fmt.Errorf("spatialdb: select from %q: %w", t.name, derr)
			}
			rec := Record{ID: c.e.ID, Loc: geom.Pt(c.e.X, c.e.Y), Data: data}
			if keep(rec) {
				out = append(out, rec)
			}
		}
		return out, cost, nil
	}
}
