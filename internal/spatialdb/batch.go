package spatialdb

// Batched table reads: GetBatch, ContainsBatch, and CountRangeBatch
// plumb the linearquad kernels through the serving stack. Probes are
// partitioned by Morton shard prefix in one counting-sort pass (shard
// index order IS Z-order of the level-k cells, so the partition is the
// coarse radix of a Z-sort), fanned out to per-shard kernel calls
// through the same snapshot-first/read-lock-fallback ladder the scalar
// paths use, and reassembled in caller order through the permutation
// the partition produced. Point groups resolve as straight Frozen.Get
// sweeps — the frozen leaf directory makes a random point probe one
// table load, so fine-sorting point probes within a shard group costs
// more than it saves (measured; the batch win is the amortized
// synchronization, not probe order). Window groups go through the
// CountRangeBatch kernel, which answers them in Z-order. Every buffer
// lives in a caller-owned BatchScratch, so the steady state allocates
// nothing above the acknowledged growth sites (TestZeroAlloc pins it).
//
// On a lazy durable table the same partition feeds the disk path in
// batch_disk.go: probes are resolved against the WAL tail under one
// read-lock acquisition per shard, and the survivors walk the sealed
// run stack newest-first — consulting each run's Morton-prefix filter
// before touching it, and visiting each surviving run once for the
// whole group rather than once per probe.

import (
	"fmt"

	"popana/internal/geom"
	"popana/internal/linearquad"
)

// BatchScratch carries the reusable buffers of the table-level batch
// read APIs (GetBatch, ContainsBatch, CountRangeBatch). The zero value
// is ready to use; buffers grow to the largest batch passed and are
// reused across calls. A BatchScratch must not be shared between
// concurrent calls — give each serving goroutine its own.
type BatchScratch struct {
	// Per-probe staging: resolved location and owning shard (-1 marks
	// a probe with no record, which skips the partition entirely).
	locs  []geom.Point
	shard []int32
	// Counting-sort partition: probe positions grouped by shard, group
	// start offsets, and the scatter cursors that build them. sperm is
	// the same shape keyed by id stripe, used while staging IDs.
	perm   []int32
	sperm  []int32
	starts []int32
	fill   []int32
	// CountRangeBatch: gathered windows, their per-shard counts, and
	// the per-window accumulator summed across shards.
	rects []geom.Rect
	wcnts []int
	acc   []int
	// Seqlock state per involved shard.
	snaps  []*linearquad.Frozen[Record]
	epochs []uint64
	locked []*shard
	// Lazy-path staging: per-probe Morton codes and the unresolved
	// worklist that walks the run stack.
	codes   []uint64
	pending []int32
	// lq is the kernel scratch, shared across shard groups — the batch
	// engine reuses one sort buffer for every shard it fans out to.
	lq linearquad.Scratch
}

// ensureProbes sizes the per-probe buffers for a batch of n.
//
//popvet:noalloc
func (sc *BatchScratch) ensureProbes(n int) {
	if cap(sc.locs) < n {
		//popvet:allow allocfree -- the scratch grows once to the largest batch; steady state reuses it (TestZeroAlloc pins 0 allocs/op)
		sc.locs = make([]geom.Point, n)
		//popvet:allow allocfree -- scratch growth, see above
		sc.shard = make([]int32, n)
		//popvet:allow allocfree -- scratch growth, see above
		sc.perm = make([]int32, n)
		//popvet:allow allocfree -- scratch growth, see above
		sc.sperm = make([]int32, n)
		//popvet:allow allocfree -- scratch growth, see above
		sc.codes = make([]uint64, n)
		//popvet:allow allocfree -- scratch growth, see above
		sc.pending = make([]int32, n)
	}
	sc.locs = sc.locs[:n]
	sc.shard = sc.shard[:n]
	sc.perm = sc.perm[:n]
}

// ensureShards sizes the per-shard buffers for a table of ns shards.
//
//popvet:noalloc
func (sc *BatchScratch) ensureShards(ns int) {
	if cap(sc.starts) < ns+1 {
		//popvet:allow allocfree -- the scratch grows once to the shard count; steady state reuses it (TestZeroAlloc pins 0 allocs/op)
		sc.starts = make([]int32, ns+1)
		//popvet:allow allocfree -- scratch growth, see above
		sc.fill = make([]int32, ns)
		//popvet:allow allocfree -- scratch growth, see above
		sc.snaps = make([]*linearquad.Frozen[Record], ns)
		//popvet:allow allocfree -- scratch growth, see above
		sc.epochs = make([]uint64, ns)
		//popvet:allow allocfree -- scratch growth, see above
		sc.locked = make([]*shard, ns)
	}
	sc.starts = sc.starts[:ns+1]
	sc.fill = sc.fill[:ns]
	sc.snaps = sc.snaps[:ns]
	sc.epochs = sc.epochs[:ns]
}

// ensureWindows sizes the window buffers for a batch of nw windows
// whose shard-overlap pairs number at most npairs.
//
//popvet:noalloc
func (sc *BatchScratch) ensureWindows(nw, npairs int) {
	if cap(sc.rects) < nw {
		//popvet:allow allocfree -- the scratch grows once to the largest batch; steady state reuses it (TestZeroAlloc pins 0 allocs/op)
		sc.rects = make([]geom.Rect, nw)
		//popvet:allow allocfree -- scratch growth, see above
		sc.wcnts = make([]int, nw)
		//popvet:allow allocfree -- scratch growth, see above
		sc.acc = make([]int, nw)
	}
	if cap(sc.perm) < npairs {
		//popvet:allow allocfree -- scratch growth, see above
		sc.perm = make([]int32, npairs)
	}
	sc.acc = sc.acc[:nw]
	sc.perm = sc.perm[:npairs]
}

// scatterByShard finishes the counting sort the stagers started:
// sc.starts[s+1] already holds group s's probe count (the stagers
// count as they resolve shards), so one prefix-sum pass and one
// scatter leave group s at sc.perm[sc.starts[s]:sc.starts[s+1]], in
// input order within the group. Probes with shard < 0 are dropped.
//
//popvet:noalloc
func (sc *BatchScratch) scatterByShard(n, ns int) {
	starts := sc.starts[:ns+1]
	for s := 0; s < ns; s++ {
		starts[s+1] += starts[s]
	}
	fill := sc.fill[:ns]
	for s := 0; s < ns; s++ {
		fill[s] = starts[s]
	}
	shard, perm := sc.shard, sc.perm
	for i := 0; i < n; i++ {
		if si := shard[i]; si >= 0 {
			perm[fill[si]] = int32(i)
			fill[si]++
		}
	}
}

// GetBatch looks up every ID of ids, writing the record (or the zero
// Record) to out[i] and presence to found[i], and returns the number
// found. out and found must have the same length as ids; GetBatch
// panics otherwise, as with a mis-sized copy destination. Results are
// identical to calling Get per ID. The probes are partitioned by shard
// in one pass and each shard group is served through one snapshot (or
// one read-lock acquisition), so a batch touches each shard's
// synchronization once instead of once per probe; sc must not be
// shared between concurrent calls. Allocation-free in the steady state
// on an in-memory table once sc has grown to the batch size.
func (t *Table) GetBatch(sc *BatchScratch, ids []uint64, out []Record, found []bool) int {
	if len(out) != len(ids) || len(found) != len(ids) {
		panic("spatialdb: GetBatch: ids, out, found lengths differ")
	}
	if t.lazyMode() {
		return t.getBatchLazy(sc, ids, out, found)
	}
	return t.getBatchMem(sc, ids, out, found)
}

// stageByID resolves every probe ID to its location and owning shard,
// taking each id-stripe read lock once for the whole batch rather than
// once per probe. The probes are counting-sorted by stripe first, so
// each stripe pass touches only its own probes and the map reads run
// back to back: the CPU overlaps their cache misses instead of fencing
// on a lock acquisition per lookup. As a side effect the per-shard
// group counts accumulate into sc.starts[s+1], ready for
// scatterByShard; out is untouched — callers zero the missed entries
// once the batch is resolved.
//
//popvet:noalloc
func (t *Table) stageByID(sc *BatchScratch, ids []uint64, found []bool) {
	n := len(ids)
	ns := len(t.shards)
	starts := sc.starts[:ns+1]
	for s := range starts {
		starts[s] = 0
	}
	shard := sc.shard
	var cnt [idStripes + 1]int32
	for i := 0; i < n; i++ {
		found[i] = false
		shard[i] = -1
		cnt[ids[i]%idStripes+1]++
	}
	for st := 0; st < idStripes; st++ {
		cnt[st+1] += cnt[st]
	}
	sperm := sc.sperm
	fill := cnt // value copy: cnt keeps the group bounds
	for i := 0; i < n; i++ {
		st := ids[i] % idStripes
		sperm[fill[st]] = int32(i)
		fill[st]++
	}
	for st := 0; st < idStripes; st++ {
		if cnt[st] == cnt[st+1] {
			continue
		}
		stripe := &t.ids.stripes[st]
		stripe.mu.RLock() //popvet:allow lockdiscipline -- one stripe held at a time: released before the next acquire, never two stripes at once
		for k := cnt[st]; k < cnt[st+1]; k++ {
			i := sperm[k]
			if loc, ok := stripe.m[ids[i]]; ok {
				si := int32(t.shardIndexOf(loc))
				sc.locs[i] = loc
				shard[i] = si
				starts[si+1]++
			}
		}
		stripe.mu.RUnlock()
	}
}

// getBatchMem serves GetBatch on an in-memory table: stage IDs to
// locations stripe by stripe, partition by shard, then resolve each
// group against its shard's fresh snapshot (lock-free — a snapshot
// that was fresh at load time gives every probe exactly the semantics
// of a scalar Get) with a per-probe authoritative re-check under the
// read lock for misses, mirroring Get's delete/re-insert race note.
// The group resolves as a straight Frozen.Get sweep: the snapshot and
// epoch load happen once per group instead of once per probe, and the
// back-to-back probes let the CPU overlap their cache misses.
//
//popvet:noalloc
func (t *Table) getBatchMem(sc *BatchScratch, ids []uint64, out []Record, found []bool) int {
	n := len(ids)
	ns := len(t.shards)
	sc.ensureProbes(n)
	sc.ensureShards(ns)
	t.stageByID(sc, ids, found)
	sc.scatterByShard(n, ns)
	nfound := 0
	for s := 0; s < ns; s++ {
		lo, hi := int(sc.starts[s]), int(sc.starts[s+1])
		if lo == hi {
			continue
		}
		sh := t.shards[s]
		misses := 0
		if f, _ := sh.loadFresh(); f != nil {
			perm, locs := sc.perm, sc.locs
			for j := lo; j < hi; j++ {
				i := perm[j]
				// GetInto writes straight into the caller's slot; a hit
				// with a foreign ID (delete/re-insert race) leaves found[i]
				// false, so the final miss pass re-zeroes the slot.
				if f.GetInto(locs[i], &out[i]) && out[i].ID == ids[i] {
					found[i] = true
					nfound++
				} else {
					misses++
				}
			}
			if misses == 0 {
				continue
			}
		} else {
			misses = hi - lo
		}
		// Authoritative pass for probes the snapshot could not settle
		// (stale snapshot, or a concurrent delete/re-insert raced the id
		// lookup): the live tree under the read lock, like scalar Get.
		sh.mu.RLock() //popvet:allow lockdiscipline -- one shard held at a time: released before the next group, never two shards at once
		for j := lo; j < hi; j++ {
			i := sc.perm[j]
			if found[i] {
				continue
			}
			if rec, ok := sh.index.Get(sc.locs[i]); ok && rec.ID == ids[i] {
				out[i] = rec
				found[i] = true
				nfound++
			}
		}
		sh.mu.RUnlock()
	}
	// Misses get their zero Record in one pass at the end, instead of
	// zeroing the whole output array up front and overwriting most of it.
	for i := 0; i < n; i++ {
		if !found[i] {
			out[i] = Record{}
		}
	}
	return nfound
}

// ContainsBatch reports in found[i] whether a record occupies exactly
// the point pts[i], and returns the number present. found must have
// the same length as pts; ContainsBatch panics otherwise. Points with
// non-finite coordinates are rejected with ErrInvalidPoint before
// anything is probed. The batch is partitioned by shard in one pass;
// each group is answered from the shard's fresh snapshot when it has
// one and from the live tree under the read lock otherwise.
// Allocation-free in the steady state on an in-memory table once sc
// has grown to the batch size.
func (t *Table) ContainsBatch(sc *BatchScratch, pts []geom.Point, found []bool) (int, error) {
	if len(found) != len(pts) {
		panic("spatialdb: ContainsBatch: pts and found lengths differ")
	}
	for i := range pts {
		if err := validatePoint(pts[i]); err != nil {
			return 0, fmt.Errorf("spatialdb: contains batch in %q: point %d: %w", t.name, i, err)
		}
	}
	if t.lazyMode() {
		return t.containsBatchLazy(sc, pts, found), nil
	}
	return t.containsBatchMem(sc, pts, found), nil
}

// containsBatchMem serves ContainsBatch on an in-memory table. A miss
// against a fresh snapshot is definitive (no id index vouched for the
// point, so there is no race to re-check), which keeps the quiescent
// path lock-free end to end.
//
//popvet:noalloc
func (t *Table) containsBatchMem(sc *BatchScratch, pts []geom.Point, found []bool) int {
	n := len(pts)
	ns := len(t.shards)
	sc.ensureProbes(n)
	sc.ensureShards(ns)
	starts := sc.starts[:ns+1]
	for s := range starts {
		starts[s] = 0
	}
	for i := 0; i < n; i++ {
		found[i] = false
		sc.locs[i] = pts[i]
		si := int32(t.shardIndexOf(pts[i]))
		sc.shard[i] = si
		starts[si+1]++
	}
	sc.scatterByShard(n, ns)
	npresent := 0
	for s := 0; s < ns; s++ {
		lo, hi := int(sc.starts[s]), int(sc.starts[s+1])
		if lo == hi {
			continue
		}
		sh := t.shards[s]
		if f, _ := sh.loadFresh(); f != nil {
			for j := lo; j < hi; j++ {
				i := sc.perm[j]
				if f.Contains(sc.locs[i]) {
					found[i] = true
					npresent++
				}
			}
		} else {
			sh.mu.RLock() //popvet:allow lockdiscipline -- one shard held at a time: released before the next group, never two shards at once
			for j := lo; j < hi; j++ {
				i := sc.perm[j]
				if sh.index.Contains(sc.locs[i]) {
					found[i] = true
					npresent++
				}
			}
			sh.mu.RUnlock()
		}
	}
	return npresent
}

// CountRangeBatch answers every window, writing the number of records
// inside the closed rectangle windows[i] to counts[i] — identical to
// calling CountRange(window, 0) per window. counts must have the same
// length as windows; CountRangeBatch panics otherwise. Degenerate
// windows are rejected with ErrInvalidRegion before anything is
// counted. The whole batch is answered from one consistent cut: a
// cross-shard seqlock over every involved shard's fresh snapshot
// (revalidated against the shard epochs, retried once), falling back
// to the involved shards' read locks in ascending order.
// Allocation-free in the steady state on an in-memory table once sc
// has grown to the batch size.
func (t *Table) CountRangeBatch(sc *BatchScratch, windows []geom.Rect, counts []int) error {
	if len(counts) != len(windows) {
		panic("spatialdb: CountRangeBatch: windows and counts lengths differ")
	}
	for i := range windows {
		if err := validateRegion(windows[i]); err != nil {
			return fmt.Errorf("spatialdb: count batch in %q: window %d: %w", t.name, i, err)
		}
	}
	for i := range counts {
		counts[i] = 0
	}
	if t.lazyMode() {
		return t.countRangeBatchLazy(sc, windows, counts)
	}
	t.countRangeBatchMem(sc, windows, counts)
	return nil
}

// stageWindows builds the shard→windows CSR: group s of sc.perm holds
// the indices of the windows overlapping shard s's cell (the same
// closed-overlap predicate scalar shard pruning uses).
//
//popvet:noalloc
func (t *Table) stageWindows(sc *BatchScratch, windows []geom.Rect) {
	nw := len(windows)
	ns := len(t.shards)
	starts := sc.starts[:ns+1]
	for s := range starts {
		starts[s] = 0
	}
	for s := 0; s < ns; s++ {
		r := t.shards[s].region
		for w := 0; w < nw; w++ {
			if r.OverlapsClosed(windows[w]) {
				starts[s+1]++
			}
		}
	}
	for s := 0; s < ns; s++ {
		starts[s+1] += starts[s]
	}
	fill := sc.fill[:ns]
	for s := 0; s < ns; s++ {
		fill[s] = starts[s]
		r := t.shards[s].region
		for w := 0; w < nw; w++ {
			if r.OverlapsClosed(windows[w]) {
				sc.perm[fill[s]] = int32(w)
				fill[s]++
			}
		}
	}
}

// countRangeBatchMem serves CountRangeBatch on an in-memory table: two
// seqlock attempts over the involved shards' fresh snapshots (per
// shard group the windows go through the CountRangeBatch kernel, which
// answers them in Z-order of their corners), then the locked fallback.
//
//popvet:noalloc
func (t *Table) countRangeBatchMem(sc *BatchScratch, windows []geom.Rect, counts []int) {
	nw := len(windows)
	ns := len(t.shards)
	sc.ensureShards(ns)
	sc.ensureWindows(nw, nw*ns)
	t.stageWindows(sc, windows)
	for attempt := 0; attempt < 2; attempt++ {
		fresh := true
		for s := 0; s < ns && fresh; s++ {
			sc.snaps[s] = nil
			if sc.starts[s] == sc.starts[s+1] {
				continue
			}
			f, e := t.shards[s].loadFresh()
			if f == nil {
				fresh = false
				break
			}
			sc.snaps[s], sc.epochs[s] = f, e
		}
		if !fresh {
			break
		}
		for w := 0; w < nw; w++ {
			sc.acc[w] = 0
		}
		for s := 0; s < ns; s++ {
			lo, hi := int(sc.starts[s]), int(sc.starts[s+1])
			if lo == hi {
				continue
			}
			g := hi - lo
			gr := sc.rects[:g]
			gc := sc.wcnts[:g]
			for j := 0; j < g; j++ {
				gr[j] = windows[sc.perm[lo+j]]
			}
			sc.snaps[s].CountRangeBatch(&sc.lq, gr, gc)
			for j := 0; j < g; j++ {
				sc.acc[sc.perm[lo+j]] += gc[j]
			}
		}
		stable := true
		for s := 0; s < ns; s++ {
			if sc.snaps[s] != nil && t.shards[s].epoch.Load() != sc.epochs[s] {
				stable = false
				break
			}
		}
		if !stable {
			continue
		}
		copy(counts, sc.acc[:nw])
		return
	}
	// Locked fallback: every involved shard's read lock in ascending
	// order pins one consistent cut (the same order every multi-shard
	// acquisition uses).
	nl := 0
	for s := 0; s < ns; s++ {
		if sc.starts[s] != sc.starts[s+1] {
			sc.locked[nl] = t.shards[s]
			nl++
		}
	}
	rlockShards(sc.locked[:nl])
	for w := 0; w < nw; w++ {
		sc.acc[w] = 0
	}
	for s := 0; s < ns; s++ {
		lo, hi := int(sc.starts[s]), int(sc.starts[s+1])
		if lo == hi {
			continue
		}
		sh := t.shards[s]
		f, _ := sh.loadFresh()
		for j := lo; j < hi; j++ {
			w := int(sc.perm[j])
			if f != nil {
				sc.acc[w] += f.CountRange(windows[w])
			} else {
				sc.acc[w] += sh.index.CountRange(windows[w])
			}
		}
	}
	runlockShards(sc.locked[:nl])
	copy(counts, sc.acc[:nw])
}
